
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cache_tag_lookup.cpp" "examples/CMakeFiles/cache_tag_lookup.dir/cache_tag_lookup.cpp.o" "gcc" "examples/CMakeFiles/cache_tag_lookup.dir/cache_tag_lookup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/nemtcam_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/nemtcam_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nemtcam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/nemtcam_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nemtcam_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nemtcam_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nemtcam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
