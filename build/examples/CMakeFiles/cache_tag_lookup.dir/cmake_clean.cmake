file(REMOVE_RECURSE
  "CMakeFiles/cache_tag_lookup.dir/cache_tag_lookup.cpp.o"
  "CMakeFiles/cache_tag_lookup.dir/cache_tag_lookup.cpp.o.d"
  "cache_tag_lookup"
  "cache_tag_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_tag_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
