# Empty compiler generated dependencies file for cache_tag_lookup.
# This may be replaced when dependencies are built.
