# Empty compiler generated dependencies file for nemtcam_calibrate.
# This may be replaced when dependencies are built.
