file(REMOVE_RECURSE
  "CMakeFiles/nemtcam_calibrate.dir/calibrate_main.cpp.o"
  "CMakeFiles/nemtcam_calibrate.dir/calibrate_main.cpp.o.d"
  "nemtcam_calibrate"
  "nemtcam_calibrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemtcam_calibrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
