file(REMOVE_RECURSE
  "CMakeFiles/nemtcam_sim.dir/nemtcam_sim.cpp.o"
  "CMakeFiles/nemtcam_sim.dir/nemtcam_sim.cpp.o.d"
  "nemtcam_sim"
  "nemtcam_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemtcam_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
