# Empty compiler generated dependencies file for nemtcam_sim.
# This may be replaced when dependencies are built.
