file(REMOVE_RECURSE
  "libnemtcam_linalg.a"
)
