
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/DenseLu.cpp" "src/linalg/CMakeFiles/nemtcam_linalg.dir/DenseLu.cpp.o" "gcc" "src/linalg/CMakeFiles/nemtcam_linalg.dir/DenseLu.cpp.o.d"
  "/root/repo/src/linalg/DenseMatrix.cpp" "src/linalg/CMakeFiles/nemtcam_linalg.dir/DenseMatrix.cpp.o" "gcc" "src/linalg/CMakeFiles/nemtcam_linalg.dir/DenseMatrix.cpp.o.d"
  "/root/repo/src/linalg/SparseLu.cpp" "src/linalg/CMakeFiles/nemtcam_linalg.dir/SparseLu.cpp.o" "gcc" "src/linalg/CMakeFiles/nemtcam_linalg.dir/SparseLu.cpp.o.d"
  "/root/repo/src/linalg/SparseMatrix.cpp" "src/linalg/CMakeFiles/nemtcam_linalg.dir/SparseMatrix.cpp.o" "gcc" "src/linalg/CMakeFiles/nemtcam_linalg.dir/SparseMatrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nemtcam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
