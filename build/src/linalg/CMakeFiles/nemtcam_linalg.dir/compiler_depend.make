# Empty compiler generated dependencies file for nemtcam_linalg.
# This may be replaced when dependencies are built.
