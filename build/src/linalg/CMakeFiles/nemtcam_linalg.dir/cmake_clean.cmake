file(REMOVE_RECURSE
  "CMakeFiles/nemtcam_linalg.dir/DenseLu.cpp.o"
  "CMakeFiles/nemtcam_linalg.dir/DenseLu.cpp.o.d"
  "CMakeFiles/nemtcam_linalg.dir/DenseMatrix.cpp.o"
  "CMakeFiles/nemtcam_linalg.dir/DenseMatrix.cpp.o.d"
  "CMakeFiles/nemtcam_linalg.dir/SparseLu.cpp.o"
  "CMakeFiles/nemtcam_linalg.dir/SparseLu.cpp.o.d"
  "CMakeFiles/nemtcam_linalg.dir/SparseMatrix.cpp.o"
  "CMakeFiles/nemtcam_linalg.dir/SparseMatrix.cpp.o.d"
  "libnemtcam_linalg.a"
  "libnemtcam_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemtcam_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
