file(REMOVE_RECURSE
  "CMakeFiles/nemtcam_devices.dir/Controlled.cpp.o"
  "CMakeFiles/nemtcam_devices.dir/Controlled.cpp.o.d"
  "CMakeFiles/nemtcam_devices.dir/Diode.cpp.o"
  "CMakeFiles/nemtcam_devices.dir/Diode.cpp.o.d"
  "CMakeFiles/nemtcam_devices.dir/Fefet.cpp.o"
  "CMakeFiles/nemtcam_devices.dir/Fefet.cpp.o.d"
  "CMakeFiles/nemtcam_devices.dir/Inductor.cpp.o"
  "CMakeFiles/nemtcam_devices.dir/Inductor.cpp.o.d"
  "CMakeFiles/nemtcam_devices.dir/Mosfet.cpp.o"
  "CMakeFiles/nemtcam_devices.dir/Mosfet.cpp.o.d"
  "CMakeFiles/nemtcam_devices.dir/Mtj.cpp.o"
  "CMakeFiles/nemtcam_devices.dir/Mtj.cpp.o.d"
  "CMakeFiles/nemtcam_devices.dir/NemRelay.cpp.o"
  "CMakeFiles/nemtcam_devices.dir/NemRelay.cpp.o.d"
  "CMakeFiles/nemtcam_devices.dir/Passive.cpp.o"
  "CMakeFiles/nemtcam_devices.dir/Passive.cpp.o.d"
  "CMakeFiles/nemtcam_devices.dir/Rram.cpp.o"
  "CMakeFiles/nemtcam_devices.dir/Rram.cpp.o.d"
  "CMakeFiles/nemtcam_devices.dir/Sources.cpp.o"
  "CMakeFiles/nemtcam_devices.dir/Sources.cpp.o.d"
  "CMakeFiles/nemtcam_devices.dir/Switch.cpp.o"
  "CMakeFiles/nemtcam_devices.dir/Switch.cpp.o.d"
  "libnemtcam_devices.a"
  "libnemtcam_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemtcam_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
