# Empty compiler generated dependencies file for nemtcam_devices.
# This may be replaced when dependencies are built.
