
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/Controlled.cpp" "src/devices/CMakeFiles/nemtcam_devices.dir/Controlled.cpp.o" "gcc" "src/devices/CMakeFiles/nemtcam_devices.dir/Controlled.cpp.o.d"
  "/root/repo/src/devices/Diode.cpp" "src/devices/CMakeFiles/nemtcam_devices.dir/Diode.cpp.o" "gcc" "src/devices/CMakeFiles/nemtcam_devices.dir/Diode.cpp.o.d"
  "/root/repo/src/devices/Fefet.cpp" "src/devices/CMakeFiles/nemtcam_devices.dir/Fefet.cpp.o" "gcc" "src/devices/CMakeFiles/nemtcam_devices.dir/Fefet.cpp.o.d"
  "/root/repo/src/devices/Inductor.cpp" "src/devices/CMakeFiles/nemtcam_devices.dir/Inductor.cpp.o" "gcc" "src/devices/CMakeFiles/nemtcam_devices.dir/Inductor.cpp.o.d"
  "/root/repo/src/devices/Mosfet.cpp" "src/devices/CMakeFiles/nemtcam_devices.dir/Mosfet.cpp.o" "gcc" "src/devices/CMakeFiles/nemtcam_devices.dir/Mosfet.cpp.o.d"
  "/root/repo/src/devices/Mtj.cpp" "src/devices/CMakeFiles/nemtcam_devices.dir/Mtj.cpp.o" "gcc" "src/devices/CMakeFiles/nemtcam_devices.dir/Mtj.cpp.o.d"
  "/root/repo/src/devices/NemRelay.cpp" "src/devices/CMakeFiles/nemtcam_devices.dir/NemRelay.cpp.o" "gcc" "src/devices/CMakeFiles/nemtcam_devices.dir/NemRelay.cpp.o.d"
  "/root/repo/src/devices/Passive.cpp" "src/devices/CMakeFiles/nemtcam_devices.dir/Passive.cpp.o" "gcc" "src/devices/CMakeFiles/nemtcam_devices.dir/Passive.cpp.o.d"
  "/root/repo/src/devices/Rram.cpp" "src/devices/CMakeFiles/nemtcam_devices.dir/Rram.cpp.o" "gcc" "src/devices/CMakeFiles/nemtcam_devices.dir/Rram.cpp.o.d"
  "/root/repo/src/devices/Sources.cpp" "src/devices/CMakeFiles/nemtcam_devices.dir/Sources.cpp.o" "gcc" "src/devices/CMakeFiles/nemtcam_devices.dir/Sources.cpp.o.d"
  "/root/repo/src/devices/Switch.cpp" "src/devices/CMakeFiles/nemtcam_devices.dir/Switch.cpp.o" "gcc" "src/devices/CMakeFiles/nemtcam_devices.dir/Switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/nemtcam_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nemtcam_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nemtcam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
