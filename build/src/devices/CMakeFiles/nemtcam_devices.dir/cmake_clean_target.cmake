file(REMOVE_RECURSE
  "libnemtcam_devices.a"
)
