file(REMOVE_RECURSE
  "CMakeFiles/nemtcam_netlist.dir/Netlist.cpp.o"
  "CMakeFiles/nemtcam_netlist.dir/Netlist.cpp.o.d"
  "libnemtcam_netlist.a"
  "libnemtcam_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemtcam_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
