# Empty compiler generated dependencies file for nemtcam_netlist.
# This may be replaced when dependencies are built.
