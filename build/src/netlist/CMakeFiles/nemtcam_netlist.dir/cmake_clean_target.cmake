file(REMOVE_RECURSE
  "libnemtcam_netlist.a"
)
