file(REMOVE_RECURSE
  "CMakeFiles/nemtcam_util.dir/Log.cpp.o"
  "CMakeFiles/nemtcam_util.dir/Log.cpp.o.d"
  "CMakeFiles/nemtcam_util.dir/Stats.cpp.o"
  "CMakeFiles/nemtcam_util.dir/Stats.cpp.o.d"
  "CMakeFiles/nemtcam_util.dir/Table.cpp.o"
  "CMakeFiles/nemtcam_util.dir/Table.cpp.o.d"
  "libnemtcam_util.a"
  "libnemtcam_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemtcam_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
