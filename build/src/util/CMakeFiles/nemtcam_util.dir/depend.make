# Empty dependencies file for nemtcam_util.
# This may be replaced when dependencies are built.
