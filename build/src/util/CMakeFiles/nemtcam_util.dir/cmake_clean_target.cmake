file(REMOVE_RECURSE
  "libnemtcam_util.a"
)
