file(REMOVE_RECURSE
  "CMakeFiles/nemtcam_spice.dir/Circuit.cpp.o"
  "CMakeFiles/nemtcam_spice.dir/Circuit.cpp.o.d"
  "CMakeFiles/nemtcam_spice.dir/Newton.cpp.o"
  "CMakeFiles/nemtcam_spice.dir/Newton.cpp.o.d"
  "CMakeFiles/nemtcam_spice.dir/Trace.cpp.o"
  "CMakeFiles/nemtcam_spice.dir/Trace.cpp.o.d"
  "CMakeFiles/nemtcam_spice.dir/Transient.cpp.o"
  "CMakeFiles/nemtcam_spice.dir/Transient.cpp.o.d"
  "CMakeFiles/nemtcam_spice.dir/Waveform.cpp.o"
  "CMakeFiles/nemtcam_spice.dir/Waveform.cpp.o.d"
  "libnemtcam_spice.a"
  "libnemtcam_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemtcam_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
