# Empty compiler generated dependencies file for nemtcam_spice.
# This may be replaced when dependencies are built.
