file(REMOVE_RECURSE
  "libnemtcam_spice.a"
)
