
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/Circuit.cpp" "src/spice/CMakeFiles/nemtcam_spice.dir/Circuit.cpp.o" "gcc" "src/spice/CMakeFiles/nemtcam_spice.dir/Circuit.cpp.o.d"
  "/root/repo/src/spice/Newton.cpp" "src/spice/CMakeFiles/nemtcam_spice.dir/Newton.cpp.o" "gcc" "src/spice/CMakeFiles/nemtcam_spice.dir/Newton.cpp.o.d"
  "/root/repo/src/spice/Trace.cpp" "src/spice/CMakeFiles/nemtcam_spice.dir/Trace.cpp.o" "gcc" "src/spice/CMakeFiles/nemtcam_spice.dir/Trace.cpp.o.d"
  "/root/repo/src/spice/Transient.cpp" "src/spice/CMakeFiles/nemtcam_spice.dir/Transient.cpp.o" "gcc" "src/spice/CMakeFiles/nemtcam_spice.dir/Transient.cpp.o.d"
  "/root/repo/src/spice/Waveform.cpp" "src/spice/CMakeFiles/nemtcam_spice.dir/Waveform.cpp.o" "gcc" "src/spice/CMakeFiles/nemtcam_spice.dir/Waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/nemtcam_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nemtcam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
