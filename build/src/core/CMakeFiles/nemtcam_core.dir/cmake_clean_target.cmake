file(REMOVE_RECURSE
  "libnemtcam_core.a"
)
