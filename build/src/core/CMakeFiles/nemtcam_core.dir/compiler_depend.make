# Empty compiler generated dependencies file for nemtcam_core.
# This may be replaced when dependencies are built.
