
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/DynamicTcam.cpp" "src/core/CMakeFiles/nemtcam_core.dir/DynamicTcam.cpp.o" "gcc" "src/core/CMakeFiles/nemtcam_core.dir/DynamicTcam.cpp.o.d"
  "/root/repo/src/core/EnergyModel.cpp" "src/core/CMakeFiles/nemtcam_core.dir/EnergyModel.cpp.o" "gcc" "src/core/CMakeFiles/nemtcam_core.dir/EnergyModel.cpp.o.d"
  "/root/repo/src/core/PriorityEncoder.cpp" "src/core/CMakeFiles/nemtcam_core.dir/PriorityEncoder.cpp.o" "gcc" "src/core/CMakeFiles/nemtcam_core.dir/PriorityEncoder.cpp.o.d"
  "/root/repo/src/core/TcamModel.cpp" "src/core/CMakeFiles/nemtcam_core.dir/TcamModel.cpp.o" "gcc" "src/core/CMakeFiles/nemtcam_core.dir/TcamModel.cpp.o.d"
  "/root/repo/src/core/Ternary.cpp" "src/core/CMakeFiles/nemtcam_core.dir/Ternary.cpp.o" "gcc" "src/core/CMakeFiles/nemtcam_core.dir/Ternary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nemtcam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
