file(REMOVE_RECURSE
  "CMakeFiles/nemtcam_core.dir/DynamicTcam.cpp.o"
  "CMakeFiles/nemtcam_core.dir/DynamicTcam.cpp.o.d"
  "CMakeFiles/nemtcam_core.dir/EnergyModel.cpp.o"
  "CMakeFiles/nemtcam_core.dir/EnergyModel.cpp.o.d"
  "CMakeFiles/nemtcam_core.dir/PriorityEncoder.cpp.o"
  "CMakeFiles/nemtcam_core.dir/PriorityEncoder.cpp.o.d"
  "CMakeFiles/nemtcam_core.dir/TcamModel.cpp.o"
  "CMakeFiles/nemtcam_core.dir/TcamModel.cpp.o.d"
  "CMakeFiles/nemtcam_core.dir/Ternary.cpp.o"
  "CMakeFiles/nemtcam_core.dir/Ternary.cpp.o.d"
  "libnemtcam_core.a"
  "libnemtcam_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemtcam_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
