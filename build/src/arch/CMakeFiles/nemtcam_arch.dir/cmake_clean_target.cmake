file(REMOVE_RECURSE
  "libnemtcam_arch.a"
)
