file(REMOVE_RECURSE
  "CMakeFiles/nemtcam_arch.dir/AssocCache.cpp.o"
  "CMakeFiles/nemtcam_arch.dir/AssocCache.cpp.o.d"
  "CMakeFiles/nemtcam_arch.dir/BankedTcam.cpp.o"
  "CMakeFiles/nemtcam_arch.dir/BankedTcam.cpp.o.d"
  "CMakeFiles/nemtcam_arch.dir/Endurance.cpp.o"
  "CMakeFiles/nemtcam_arch.dir/Endurance.cpp.o.d"
  "CMakeFiles/nemtcam_arch.dir/LpmTable.cpp.o"
  "CMakeFiles/nemtcam_arch.dir/LpmTable.cpp.o.d"
  "CMakeFiles/nemtcam_arch.dir/PacketClassifier.cpp.o"
  "CMakeFiles/nemtcam_arch.dir/PacketClassifier.cpp.o.d"
  "CMakeFiles/nemtcam_arch.dir/RefreshController.cpp.o"
  "CMakeFiles/nemtcam_arch.dir/RefreshController.cpp.o.d"
  "libnemtcam_arch.a"
  "libnemtcam_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemtcam_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
