
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/AssocCache.cpp" "src/arch/CMakeFiles/nemtcam_arch.dir/AssocCache.cpp.o" "gcc" "src/arch/CMakeFiles/nemtcam_arch.dir/AssocCache.cpp.o.d"
  "/root/repo/src/arch/BankedTcam.cpp" "src/arch/CMakeFiles/nemtcam_arch.dir/BankedTcam.cpp.o" "gcc" "src/arch/CMakeFiles/nemtcam_arch.dir/BankedTcam.cpp.o.d"
  "/root/repo/src/arch/Endurance.cpp" "src/arch/CMakeFiles/nemtcam_arch.dir/Endurance.cpp.o" "gcc" "src/arch/CMakeFiles/nemtcam_arch.dir/Endurance.cpp.o.d"
  "/root/repo/src/arch/LpmTable.cpp" "src/arch/CMakeFiles/nemtcam_arch.dir/LpmTable.cpp.o" "gcc" "src/arch/CMakeFiles/nemtcam_arch.dir/LpmTable.cpp.o.d"
  "/root/repo/src/arch/PacketClassifier.cpp" "src/arch/CMakeFiles/nemtcam_arch.dir/PacketClassifier.cpp.o" "gcc" "src/arch/CMakeFiles/nemtcam_arch.dir/PacketClassifier.cpp.o.d"
  "/root/repo/src/arch/RefreshController.cpp" "src/arch/CMakeFiles/nemtcam_arch.dir/RefreshController.cpp.o" "gcc" "src/arch/CMakeFiles/nemtcam_arch.dir/RefreshController.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nemtcam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nemtcam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
