# Empty dependencies file for nemtcam_arch.
# This may be replaced when dependencies are built.
