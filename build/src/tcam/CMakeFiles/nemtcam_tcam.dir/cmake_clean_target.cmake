file(REMOVE_RECURSE
  "libnemtcam_tcam.a"
)
