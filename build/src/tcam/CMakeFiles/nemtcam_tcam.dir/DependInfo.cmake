
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcam/Dtcam5TRow.cpp" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Dtcam5TRow.cpp.o" "gcc" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Dtcam5TRow.cpp.o.d"
  "/root/repo/src/tcam/Fefet2FRow.cpp" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Fefet2FRow.cpp.o" "gcc" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Fefet2FRow.cpp.o.d"
  "/root/repo/src/tcam/Fefet4T2FRow.cpp" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Fefet4T2FRow.cpp.o" "gcc" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Fefet4T2FRow.cpp.o.d"
  "/root/repo/src/tcam/Harness.cpp" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Harness.cpp.o" "gcc" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Harness.cpp.o.d"
  "/root/repo/src/tcam/Mram4T2MRow.cpp" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Mram4T2MRow.cpp.o" "gcc" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Mram4T2MRow.cpp.o.d"
  "/root/repo/src/tcam/Nem3T2NRow.cpp" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Nem3T2NRow.cpp.o" "gcc" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Nem3T2NRow.cpp.o.d"
  "/root/repo/src/tcam/Rram2T2RRow.cpp" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Rram2T2RRow.cpp.o" "gcc" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Rram2T2RRow.cpp.o.d"
  "/root/repo/src/tcam/Sram16TRow.cpp" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Sram16TRow.cpp.o" "gcc" "src/tcam/CMakeFiles/nemtcam_tcam.dir/Sram16TRow.cpp.o.d"
  "/root/repo/src/tcam/TcamRow.cpp" "src/tcam/CMakeFiles/nemtcam_tcam.dir/TcamRow.cpp.o" "gcc" "src/tcam/CMakeFiles/nemtcam_tcam.dir/TcamRow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nemtcam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/nemtcam_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nemtcam_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nemtcam_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nemtcam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
