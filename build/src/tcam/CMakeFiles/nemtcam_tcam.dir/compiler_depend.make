# Empty compiler generated dependencies file for nemtcam_tcam.
# This may be replaced when dependencies are built.
