file(REMOVE_RECURSE
  "CMakeFiles/nemtcam_tcam.dir/Dtcam5TRow.cpp.o"
  "CMakeFiles/nemtcam_tcam.dir/Dtcam5TRow.cpp.o.d"
  "CMakeFiles/nemtcam_tcam.dir/Fefet2FRow.cpp.o"
  "CMakeFiles/nemtcam_tcam.dir/Fefet2FRow.cpp.o.d"
  "CMakeFiles/nemtcam_tcam.dir/Fefet4T2FRow.cpp.o"
  "CMakeFiles/nemtcam_tcam.dir/Fefet4T2FRow.cpp.o.d"
  "CMakeFiles/nemtcam_tcam.dir/Harness.cpp.o"
  "CMakeFiles/nemtcam_tcam.dir/Harness.cpp.o.d"
  "CMakeFiles/nemtcam_tcam.dir/Mram4T2MRow.cpp.o"
  "CMakeFiles/nemtcam_tcam.dir/Mram4T2MRow.cpp.o.d"
  "CMakeFiles/nemtcam_tcam.dir/Nem3T2NRow.cpp.o"
  "CMakeFiles/nemtcam_tcam.dir/Nem3T2NRow.cpp.o.d"
  "CMakeFiles/nemtcam_tcam.dir/Rram2T2RRow.cpp.o"
  "CMakeFiles/nemtcam_tcam.dir/Rram2T2RRow.cpp.o.d"
  "CMakeFiles/nemtcam_tcam.dir/Sram16TRow.cpp.o"
  "CMakeFiles/nemtcam_tcam.dir/Sram16TRow.cpp.o.d"
  "CMakeFiles/nemtcam_tcam.dir/TcamRow.cpp.o"
  "CMakeFiles/nemtcam_tcam.dir/TcamRow.cpp.o.d"
  "libnemtcam_tcam.a"
  "libnemtcam_tcam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemtcam_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
