# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_spice[1]_include.cmake")
include("/root/repo/build/tests/test_spice2[1]_include.cmake")
include("/root/repo/build/tests/test_devices[1]_include.cmake")
include("/root/repo/build/tests/test_devices2[1]_include.cmake")
include("/root/repo/build/tests/test_integrator[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_tcam[1]_include.cmake")
include("/root/repo/build/tests/test_mram[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_arch2[1]_include.cmake")
