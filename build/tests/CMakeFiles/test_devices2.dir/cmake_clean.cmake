file(REMOVE_RECURSE
  "CMakeFiles/test_devices2.dir/devices2_test.cpp.o"
  "CMakeFiles/test_devices2.dir/devices2_test.cpp.o.d"
  "test_devices2"
  "test_devices2.pdb"
  "test_devices2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_devices2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
