# Empty dependencies file for test_devices2.
# This may be replaced when dependencies are built.
