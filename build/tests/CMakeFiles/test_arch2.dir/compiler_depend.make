# Empty compiler generated dependencies file for test_arch2.
# This may be replaced when dependencies are built.
