file(REMOVE_RECURSE
  "CMakeFiles/test_arch2.dir/arch2_test.cpp.o"
  "CMakeFiles/test_arch2.dir/arch2_test.cpp.o.d"
  "test_arch2"
  "test_arch2.pdb"
  "test_arch2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
