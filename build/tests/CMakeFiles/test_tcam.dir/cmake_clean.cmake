file(REMOVE_RECURSE
  "CMakeFiles/test_tcam.dir/tcam_test.cpp.o"
  "CMakeFiles/test_tcam.dir/tcam_test.cpp.o.d"
  "test_tcam"
  "test_tcam.pdb"
  "test_tcam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
