file(REMOVE_RECURSE
  "CMakeFiles/test_mram.dir/mram_test.cpp.o"
  "CMakeFiles/test_mram.dir/mram_test.cpp.o.d"
  "test_mram"
  "test_mram.pdb"
  "test_mram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
