# Empty compiler generated dependencies file for test_mram.
# This may be replaced when dependencies are built.
