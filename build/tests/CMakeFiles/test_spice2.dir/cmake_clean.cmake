file(REMOVE_RECURSE
  "CMakeFiles/test_spice2.dir/spice2_test.cpp.o"
  "CMakeFiles/test_spice2.dir/spice2_test.cpp.o.d"
  "test_spice2"
  "test_spice2.pdb"
  "test_spice2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
