# Empty compiler generated dependencies file for test_spice2.
# This may be replaced when dependencies are built.
