# Empty compiler generated dependencies file for bench_ablation_refresh_interference.
# This may be replaced when dependencies are built.
