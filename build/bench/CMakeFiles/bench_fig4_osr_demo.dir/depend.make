# Empty dependencies file for bench_fig4_osr_demo.
# This may be replaced when dependencies are built.
