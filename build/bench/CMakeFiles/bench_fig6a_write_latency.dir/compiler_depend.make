# Empty compiler generated dependencies file for bench_fig6a_write_latency.
# This may be replaced when dependencies are built.
