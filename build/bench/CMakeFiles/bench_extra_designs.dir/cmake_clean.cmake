file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_designs.dir/bench_extra_designs.cpp.o"
  "CMakeFiles/bench_extra_designs.dir/bench_extra_designs.cpp.o.d"
  "bench_extra_designs"
  "bench_extra_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
