# Empty compiler generated dependencies file for bench_extra_designs.
# This may be replaced when dependencies are built.
