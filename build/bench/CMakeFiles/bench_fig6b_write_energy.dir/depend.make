# Empty dependencies file for bench_fig6b_write_energy.
# This may be replaced when dependencies are built.
