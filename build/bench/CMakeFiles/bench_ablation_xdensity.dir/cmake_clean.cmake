file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_xdensity.dir/bench_ablation_xdensity.cpp.o"
  "CMakeFiles/bench_ablation_xdensity.dir/bench_ablation_xdensity.cpp.o.d"
  "bench_ablation_xdensity"
  "bench_ablation_xdensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_xdensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
