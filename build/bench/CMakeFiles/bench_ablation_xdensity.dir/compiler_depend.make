# Empty compiler generated dependencies file for bench_ablation_xdensity.
# This may be replaced when dependencies are built.
