file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3b_hysteresis.dir/bench_fig3b_hysteresis.cpp.o"
  "CMakeFiles/bench_fig3b_hysteresis.dir/bench_fig3b_hysteresis.cpp.o.d"
  "bench_fig3b_hysteresis"
  "bench_fig3b_hysteresis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b_hysteresis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
