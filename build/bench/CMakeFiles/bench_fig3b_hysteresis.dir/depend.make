# Empty dependencies file for bench_fig3b_hysteresis.
# This may be replaced when dependencies are built.
