# Empty dependencies file for bench_fig7_search.
# This may be replaced when dependencies are built.
