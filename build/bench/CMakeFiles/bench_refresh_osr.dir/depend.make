# Empty dependencies file for bench_refresh_osr.
# This may be replaced when dependencies are built.
