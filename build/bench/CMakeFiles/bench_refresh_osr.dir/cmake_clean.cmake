file(REMOVE_RECURSE
  "CMakeFiles/bench_refresh_osr.dir/bench_refresh_osr.cpp.o"
  "CMakeFiles/bench_refresh_osr.dir/bench_refresh_osr.cpp.o.d"
  "bench_refresh_osr"
  "bench_refresh_osr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refresh_osr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
