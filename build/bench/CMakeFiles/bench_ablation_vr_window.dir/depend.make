# Empty dependencies file for bench_ablation_vr_window.
# This may be replaced when dependencies are built.
