#!/usr/bin/env sh
# Local CI chain for nemtcam. Run from the repo root:
#
#   tools/ci.sh
#
# Stages:
#   1. release build (preset `release`) + full ctest
#   2. ASan/UBSan build (preset `asan`) + the `robustness`, `hier`,
#      `array`, `lifetime` and `sta` test labels (elaboration, BBD
#      solver, threaded Schur accumulation, multi-rate engine and static
#      analysis code paths under the sanitizers)
#   3. TSan build (preset `tsan`) + the `array` and `solver` labels: the
#      threaded Schur accumulation and the integrator paths it calls are
#      the only concurrency in the repo, so those labels are the race
#      surface
#   4. lint build (preset `lint`): -Wall -Wextra -Wshadow -Werror, plus
#      clang-tidy when installed (the CMake option degrades gracefully)
#   5. static ERC + STA margin rules over the shipped example decks
#      (including the hierarchical .subckt deck) via
#      nemtcam_lint --sta --werror
#   6. bench smokes: the CI-sized datacenter-lifetime sweep
#      (bench_lifetime --smoke) and the STA bracketing/speedup gate
#      (bench_sta --smoke) must complete with their internal gates green
#
# Fails fast on the first broken stage.
set -eu

cd "$(dirname "$0")/.."

echo "==== [1/6] release build + tests ===="
cmake --preset release
cmake --build --preset release -j
ctest --preset all -j

echo "==== [2/6] asan build + robustness/hier/array/lifetime/sta labels ===="
cmake --preset asan
cmake --build --preset asan -j
ctest --preset robustness-asan -j
ctest --preset hier-asan -j
ctest --preset array-asan -j
ctest --preset lifetime-asan -j
ctest --preset sta-asan -j

echo "==== [3/6] tsan build + array/solver labels ===="
cmake --preset tsan
cmake --build --preset tsan -j
ctest --preset array-tsan -j
ctest --preset solver-tsan -j

echo "==== [4/6] lint build (-Werror, clang-tidy if installed) ===="
cmake --preset lint
cmake --build --preset lint -j

echo "==== [5/6] ERC + STA margins over example decks (warnings are errors) ===="
build/tools/nemtcam_lint --sta --werror examples/decks/*.sp

echo "==== [6/6] bench smokes (lifetime sweep, STA gate) ===="
(cd build/bench && ./bench_lifetime --smoke)
(cd build/bench && ./bench_sta --smoke)

echo "==== ci.sh: all stages passed ===="
