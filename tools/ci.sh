#!/usr/bin/env sh
# Local CI chain for nemtcam. Run from the repo root:
#
#   tools/ci.sh
#
# Stages:
#   1. release build (preset `release`) + full ctest
#   2. ASan/UBSan build (preset `asan`) + the `robustness`, `hier`,
#      `array` and `lifetime` test labels (elaboration, BBD solver,
#      threaded Schur accumulation and multi-rate engine code paths
#      under the sanitizers)
#   3. lint build (preset `lint`): -Wall -Wextra -Wshadow -Werror, plus
#      clang-tidy when installed (the CMake option degrades gracefully)
#   4. static ERC over the shipped example decks (including the
#      hierarchical .subckt deck) via nemtcam_lint --werror
#   5. lifetime-bench smoke: the CI-sized datacenter-lifetime sweep
#      (bench_lifetime --smoke) must complete with its internal gates
#      green (every point runs, remap extends NEM lifetime)
#
# Fails fast on the first broken stage.
set -eu

cd "$(dirname "$0")/.."

echo "==== [1/5] release build + tests ===="
cmake --preset release
cmake --build --preset release -j
ctest --preset all -j

echo "==== [2/5] asan build + robustness/hier/array/lifetime labels ===="
cmake --preset asan
cmake --build --preset asan -j
ctest --preset robustness-asan -j
ctest --preset hier-asan -j
ctest --preset array-asan -j
ctest --preset lifetime-asan -j

echo "==== [3/5] lint build (-Werror, clang-tidy if installed) ===="
cmake --preset lint
cmake --build --preset lint -j

echo "==== [4/5] ERC over example decks (warnings are errors) ===="
build/tools/nemtcam_lint --werror examples/decks/*.sp

echo "==== [5/5] lifetime-bench smoke sweep ===="
(cd build/bench && ./bench_lifetime --smoke)

echo "==== ci.sh: all stages passed ===="
