#!/usr/bin/env sh
# Local CI chain for nemtcam. Run from the repo root:
#
#   tools/ci.sh
#
# Stages:
#   1. release build (preset `release`) + full ctest
#   2. ASan/UBSan build (preset `asan`) + the `robustness`, `hier` and
#      `array` test labels (elaboration, BBD solver and threaded Schur
#      accumulation code paths under the sanitizers)
#   3. lint build (preset `lint`): -Wall -Wextra -Wshadow -Werror, plus
#      clang-tidy when installed (the CMake option degrades gracefully)
#   4. static ERC over the shipped example decks (including the
#      hierarchical .subckt deck) via nemtcam_lint --werror
#
# Fails fast on the first broken stage.
set -eu

cd "$(dirname "$0")/.."

echo "==== [1/4] release build + tests ===="
cmake --preset release
cmake --build --preset release -j
ctest --preset all -j

echo "==== [2/4] asan build + robustness/hier/array labels ===="
cmake --preset asan
cmake --build --preset asan -j
ctest --preset robustness-asan -j
ctest --preset hier-asan -j
ctest --preset array-asan -j

echo "==== [3/4] lint build (-Werror, clang-tidy if installed) ===="
cmake --preset lint
cmake --build --preset lint -j

echo "==== [4/4] ERC over example decks (warnings are errors) ===="
build/tools/nemtcam_lint --werror examples/decks/*.sp

echo "==== ci.sh: all stages passed ===="
