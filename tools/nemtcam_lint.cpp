// nemtcam_lint — static ERC/STA over SPICE-style netlists; no simulation.
//
//   nemtcam_lint <deck.sp> [more decks...] [--werror] [--quiet]
//                [--sta] [--json] [--refresh-period <s>]
//
// Parses each deck and runs the full ERC pass (connectivity, DC
// structural rank, value lint — see src/erc/Rules.h for the rule
// catalog), printing one line per finding:
//
//   deck.sp: error[connect.no-dc-path]: node 'sense' has no DC-conductive
//   path to ground (touched by C1) (hint: add a DC leak path ...)
//
// --sta additionally runs the static timing/energy/margin analysis
// (src/sta/Sta.h) over each deck — every top-level node named "ml*" is
// treated as a matchline — and registers the quantitative margin rules
// (sta.sense-margin, sta.sl-ladder-delay, sta.refresh-window) in the
// same checker pass, so their findings interleave with the structural
// ones and obey --werror. The STA summary (timing band, energy band,
// line settle bounds, retention) prints after the findings unless
// --quiet or --json. --refresh-period arms the sta.refresh-window
// inequality (disabled by default: decks carry no refresh schedule).
//
// --json replaces the human-readable output with one JSON document on
// stdout — an array with one object per deck:
//
//   [{"deck": "a.sp",
//     "status": "clean" | "findings" | "parse-error",
//     "error": "...",            // parse-error only
//     "findings": [{"rule": "connect.no-dc-path", "severity": "error",
//                   "message": "...", "hint": "...", "line": 12,
//                   "nodes": ["sense"], "devices": ["C1"]}, ...],
//     "sta": {"t_lo": ..., "t_nom": ..., "t_hi": ..., "e_lo": ...,
//             "e_nom": ..., "e_hi": ..., "t_sl_settle": ...,
//             "t_retention": ...}}]   // present under --sta
//
// "line" is the deck line of the finding's first attributed device, when
// the parser recorded one. Diagnostics still go to stderr.
//
// Exit status (identical with and without --json):
//   0  every deck parsed and is clean of errors (and of warnings,
//      under --werror)
//   1  at least one deck has an error finding (or, under --werror, a
//      warning) — including the sta.* rules when --sta is on
//   2  usage, file-IO, or parse problems (malformed deck); findings in
//      other decks are still reported
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "erc/Checker.h"
#include "netlist/Netlist.h"
#include "sta/Rules.h"
#include "sta/Sta.h"

using namespace nemtcam;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nemtcam_lint <deck.sp> [more decks...]"
               " [--werror] [--quiet] [--sta] [--json]"
               " [--refresh-period <seconds>]\n");
  return 2;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void json_string_list(std::string& out, const char* key,
                      const std::vector<std::string>& items) {
  out += '"';
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ',';
    out += '"' + json_escape(items[i]) + '"';
  }
  out += ']';
}

// One deck's worth of machine-readable output, built as we go.
struct DeckJson {
  std::string body;  // the object's fields, comma-joined
  void field(const std::string& f) {
    if (!body.empty()) body += ',';
    body += f;
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  bool werror = false;
  bool quiet = false;
  bool sta_pass = false;
  bool json = false;
  double refresh_period = -1.0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--werror") == 0) {
      werror = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--sta") == 0) {
      sta_pass = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--refresh-period") == 0) {
      if (i + 1 >= argc) return usage();
      try {
        refresh_period = spice::parse_spice_number(argv[++i]);
      } catch (const spice::NetlistError&) {
        return usage();
      }
      sta_pass = true;  // a period without --sta would silently do nothing
    } else if (argv[i][0] != '-') {
      paths.emplace_back(argv[i]);
    } else {
      return usage();
    }
  }
  if (paths.empty()) return usage();

  sta::StaOptions sta_opt;
  sta_opt.refresh_period = refresh_period;

  bool clean = true;
  bool broken = false;  // parse/IO failures → exit 2
  std::string json_out = "[";
  bool first_deck = true;
  for (const auto& path : paths) {
    DeckJson dj;
    dj.field("\"deck\":\"" + json_escape(path) + "\"");

    std::ifstream in(path);
    spice::ParsedNetlist deck;
    std::string parse_error;
    if (!in) {
      parse_error = "cannot open file";
    } else {
      std::stringstream buf;
      buf << in.rdbuf();
      try {
        deck = spice::parse_netlist(buf.str());
      } catch (const spice::NetlistError& e) {
        parse_error = e.what();
      }
    }
    if (!parse_error.empty()) {
      std::fprintf(stderr, "nemtcam_lint: %s: %s\n", path.c_str(),
                   parse_error.c_str());
      broken = true;
      if (json) {
        dj.field("\"status\":\"parse-error\"");
        dj.field("\"error\":\"" + json_escape(parse_error) + "\"");
        json_out += (first_deck ? "\n {" : ",\n {") + dj.body + "}";
        first_deck = false;
      }
      continue;
    }

    erc::Checker checker;
    if (sta_pass) checker.add_rule(sta::margin_rules({}, sta_opt));
    const erc::Report report = checker.run(*deck.circuit);

    if (!json && !quiet) {
      for (const auto& f : report.findings()) {
        std::string line = path + ": " + erc::severity_name(f.severity) +
                           "[" + f.rule + "]: " + f.message;
        if (!f.hint.empty()) line += " (hint: " + f.hint + ")";
        std::printf("%s\n", line.c_str());
      }
    }

    if (json) {
      dj.field("\"status\":\"" +
               std::string(report.empty() ? "clean" : "findings") + "\"");
      std::string arr = "\"findings\":[";
      bool first_f = true;
      for (const auto& f : report.findings()) {
        std::string obj = "{\"rule\":\"" + json_escape(f.rule) + "\"";
        obj += ",\"severity\":\"" +
               std::string(erc::severity_name(f.severity)) + "\"";
        obj += ",\"message\":\"" + json_escape(f.message) + "\"";
        if (!f.hint.empty())
          obj += ",\"hint\":\"" + json_escape(f.hint) + "\"";
        for (const auto& d : f.devices) {
          const auto it = deck.device_lines.find(d);
          if (it != deck.device_lines.end()) {
            obj += ",\"line\":" + std::to_string(it->second);
            break;
          }
        }
        obj += ',';
        json_string_list(obj, "nodes", f.nodes);
        obj += ',';
        json_string_list(obj, "devices", f.devices);
        obj += '}';
        if (!first_f) arr += ',';
        arr += obj;
        first_f = false;
      }
      arr += ']';
      dj.field(arr);
    }

    if (sta_pass) {
      const sta::StaReport rep = sta::analyze(*deck.circuit, {}, sta_opt);
      if (json) {
        const sta::RetentionReport* worst = rep.worst_retention();
        double t_lo = 0.0, t_nom = 0.0, t_hi = 0.0;
        for (const auto& ml : rep.mls) {
          if (!ml.valid || !ml.discharges) continue;
          if (t_nom == 0.0 || ml.t_cross_nom > t_nom) {
            t_lo = ml.t_cross_lo;
            t_nom = ml.t_cross_nom;
            t_hi = ml.t_cross_hi;
          }
        }
        std::string sj = "\"sta\":{";
        sj += "\"t_lo\":" + json_number(t_lo);
        sj += ",\"t_nom\":" + json_number(t_nom);
        sj += ",\"t_hi\":" + json_number(t_hi);
        sj += ",\"e_lo\":" + json_number(rep.e_search_lo);
        sj += ",\"e_nom\":" + json_number(rep.e_search_nom);
        sj += ",\"e_hi\":" + json_number(rep.e_search_hi);
        sj += ",\"t_sl_settle\":" + json_number(rep.t_sl_settle_max);
        sj += ",\"t_retention\":" +
              (worst ? json_number(worst->t_retention) : std::string("null"));
        sj += '}';
        dj.field(sj);
      } else if (!quiet) {
        std::printf("%s", rep.to_string().c_str());
      }
    }

    if (!json)
      std::printf("%s: %s\n", path.c_str(),
                  report.empty() ? "clean" : report.summary().c_str());
    else {
      json_out += (first_deck ? "\n {" : ",\n {") + dj.body + "}";
      first_deck = false;
    }
    if (report.has_errors() ||
        (werror && report.count(erc::Severity::Warning) > 0))
      clean = false;
  }
  if (json) {
    json_out += "\n]\n";
    std::fputs(json_out.c_str(), stdout);
  }
  if (broken) return 2;
  return clean ? 0 : 1;
}
