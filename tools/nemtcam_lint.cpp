// nemtcam_lint — static ERC over SPICE-style netlists; no simulation.
//
//   nemtcam_lint <deck.sp> [more decks...] [--werror] [--quiet]
//
// Parses each deck and runs the full ERC pass (connectivity, DC
// structural rank, value lint — see src/erc/Rules.h for the rule
// catalog), printing one line per finding:
//
//   deck.sp: error[connect.no-dc-path]: node 'sense' has no DC-conductive
//   path to ground (touched by C1) (hint: add a DC leak path ...)
//
// Exit status: 0 when every deck is clean of errors, 1 when any deck has
// an error (or, under --werror, a warning), 2 on usage/parse/IO problems.
// --quiet suppresses per-finding lines and prints only the per-deck
// summary, which is what tools/ci.sh greps.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "erc/Checker.h"
#include "netlist/Netlist.h"

using namespace nemtcam;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nemtcam_lint <deck.sp> [more decks...]"
               " [--werror] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  bool werror = false;
  bool quiet = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--werror") == 0) {
      werror = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] != '-') {
      paths.emplace_back(argv[i]);
    } else {
      return usage();
    }
  }
  if (paths.empty()) return usage();

  bool clean = true;
  bool broken = false;  // parse/IO failures → exit 2
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "nemtcam_lint: cannot open '%s'\n", path.c_str());
      broken = true;
      continue;
    }
    std::stringstream buf;
    buf << in.rdbuf();

    spice::ParsedNetlist deck;
    try {
      deck = spice::parse_netlist(buf.str());
    } catch (const spice::NetlistError& e) {
      std::fprintf(stderr, "nemtcam_lint: %s: %s\n", path.c_str(), e.what());
      broken = true;
      continue;
    }

    const erc::Report report = erc::Checker().run(*deck.circuit);
    if (!quiet) {
      for (const auto& f : report.findings()) {
        std::string line = path + ": " + erc::severity_name(f.severity) +
                           "[" + f.rule + "]: " + f.message;
        if (!f.hint.empty()) line += " (hint: " + f.hint + ")";
        std::printf("%s\n", line.c_str());
      }
    }
    std::printf("%s: %s\n", path.c_str(),
                report.empty() ? "clean" : report.summary().c_str());
    if (report.has_errors() ||
        (werror && report.count(erc::Severity::Warning) > 0))
      clean = false;
  }
  if (broken) return 2;
  return clean ? 0 : 1;
}
