// Calibration report: runs every paper experiment at a configurable width
// and prints measured vs target. Used while fixing the free parameters in
// tcam/Calibration.h (DESIGN.md §8); the benches regenerate the final
// numbers.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "tcam/Nem3T2NRow.h"
#include "tcam/TcamRow.h"
#include "util/Table.h"

using namespace nemtcam;
using namespace nemtcam::tcam;
using core::Ternary;
using core::TernaryWord;

int main(int argc, char** argv) {
  const int width = argc > 1 ? std::atoi(argv[1]) : 64;
  const int rows = 64;
  const Calibration& cal = Calibration::standard();

  // Stored word: alternating 1010...; write = its complement (worst case,
  // every cell flips). Search key = stored word with bit 0 flipped
  // (worst-case single-bit mismatch).
  TernaryWord stored(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i)
    stored[static_cast<std::size_t>(i)] = (i % 2) ? Ternary::Zero : Ternary::One;
  TernaryWord complement(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i)
    complement[static_cast<std::size_t>(i)] =
        (stored[static_cast<std::size_t>(i)] == Ternary::One) ? Ternary::Zero
                                                              : Ternary::One;
  TernaryWord key = stored;
  key[0] = (key[0] == Ternary::One) ? Ternary::Zero : Ternary::One;

  util::Table t({"design", "wr lat", "wr E", "srch lat", "srch E", "srch ok",
                 "ML final", "ML min"});

  for (TcamKind kind : {TcamKind::Sram16T, TcamKind::Nem3T2N,
                        TcamKind::Rram2T2R, TcamKind::Fefet2F}) {
    auto row = make_row(kind, width, rows, cal);
    row->store(complement);
    std::fprintf(stderr, "[%s] write...\n", kind_name(kind));
    const WriteMetrics w = row->write(stored);
    std::fprintf(stderr, "[%s] search...\n", kind_name(kind));
    const SearchMetrics s = row->search(key);
    t.add_row({kind_name(kind),
               w.ok ? util::si_format(w.latency, "s") : ("FAIL: " + w.note),
               util::si_format(w.energy, "J"),
               s.ok && !s.matched ? util::si_format(s.latency, "s")
                                  : ("FAIL/match: " + s.note),
               util::si_format(s.energy, "J"),
               s.ok ? "y" : "n",
               util::si_format(s.ml_final, "V"),
               util::si_format(s.ml_min, "V")});
  }
  t.print();

  // Match-case check (ML must hold) for each design.
  util::Table tm({"design", "match holds", "ML min (match)", "srch E (match)"});
  for (TcamKind kind : {TcamKind::Sram16T, TcamKind::Nem3T2N,
                        TcamKind::Rram2T2R, TcamKind::Fefet2F}) {
    auto row = make_row(kind, width, rows, cal);
    row->store(stored);
    std::fprintf(stderr, "[%s] match search...\n", kind_name(kind));
    const SearchMetrics s = row->search(stored);
    tm.add_row({kind_name(kind), s.matched ? "y" : "NO",
                util::si_format(s.ml_min, "V"),
                util::si_format(s.energy, "J")});
  }
  tm.print();

  // Refresh / retention for the 3T2N.
  Nem3T2NRow nem(width, rows, cal);
  nem.store(stored);
  std::fprintf(stderr, "[3T2N] refresh...\n");
  const RefreshMetrics r = nem.one_shot_refresh();
  if (!r.ok) std::printf("OSR FAIL note: %s\n", r.note.c_str());
  std::printf("OSR: ok=%d energy=%s latency=%s retention=%s power=%s\n",
              r.ok ? 1 : 0, util::si_format(r.energy_per_op, "J").c_str(),
              util::si_format(r.latency, "s").c_str(),
              util::si_format(r.retention_time, "s").c_str(),
              util::si_format(r.refresh_power, "W").c_str());
  return 0;
}
