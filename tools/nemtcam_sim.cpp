// nemtcam_sim — command-line circuit simulator over the nemtcam engine.
//
//   nemtcam_sim deck.sp [deck2.sp ...] [--points N] [--threads N]
//               [--reltol X] [--abstol X] [--fixed-step]
//
// Parses SPICE-style netlists (see spice/Netlist.h for the supported
// subset), runs the requested analysis (.op or .tran), and prints the
// .print node voltages — as a DC table or as N transient sample rows —
// plus the per-source delivered-energy ledger. Multiple decks are
// simulated concurrently (--threads, default NEMTCAM_THREADS or the core
// count); reports still print in argument order.
//
// Transients run under LTE-controlled adaptive stepping by default; the
// deck's .tran dt_max caps the step. --reltol/--abstol set the accuracy
// target, --fixed-step reverts to the legacy fixed-growth Backward Euler
// grid (where dt_max alone sets the accuracy).
//
// Every deck is ERC-checked before any solve (see src/erc/): errors abort
// the deck with the structured findings report, warnings print and the
// simulation proceeds. --no-erc (or NEMTCAM_NO_ERC) skips the pass.
//
// --no-hier (or NEMTCAM_NO_HIER) flips the process-wide hierarchical
// default off: .subckt decks still elaborate, but any row-builder code
// hosted in this process falls back to the legacy flat construction —
// the A/B switch used by the template-vs-flat equivalence runs.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "erc/Checker.h"
#include "hier/Elaborate.h"
#include "netlist/Netlist.h"
#include "spice/Newton.h"
#include "spice/Transient.h"
#include "util/Sweep.h"
#include "util/Table.h"

using namespace nemtcam;
using namespace nemtcam::spice;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nemtcam_sim <deck.sp> [more decks...]"
               " [--points N] [--threads N]"
               " [--reltol X] [--abstol X] [--fixed-step] [--no-erc]"
               " [--no-hier]\n");
  return 2;
}

struct DeckReport {
  bool ok = false;
  std::string text;  // full report (or the error message when !ok)
};

// Simulates one deck and renders its whole report into a string, so decks
// can run concurrently without interleaving their output.
DeckReport simulate_deck(const std::string& path, int points) {
  DeckReport rep;
  std::ostringstream out;

  std::ifstream in(path);
  if (!in) {
    rep.text = "nemtcam_sim: cannot open '" + path + "'\n";
    return rep;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  ParsedNetlist deck;
  try {
    deck = parse_netlist(buf.str());
  } catch (const NetlistError& e) {
    rep.text = std::string("nemtcam_sim: ") + e.what() + "\n";
    return rep;
  }
  out << "* " << deck.title << "\n";
  out << "* " << deck.circuit->node_count() << " nodes, "
      << deck.circuit->unknown_count() << " unknowns, "
      << deck.circuit->devices().size() << " devices\n";

  Circuit& ckt = *deck.circuit;

  // Static checks before any Newton iteration: a malformed deck aborts
  // with named findings instead of a singular-matrix failure mid-solve.
  if (erc::default_enforce()) {
    const erc::Report report = erc::Checker().run(ckt);
    if (report.has_errors()) {
      rep.text = "nemtcam_sim: ERC failed for '" + path + "' (" +
                 report.summary() + ")\n" + report.to_string();
      return rep;
    }
    if (!report.empty()) out << report.to_string();
  }

  if (deck.analysis.kind == ParsedAnalysis::Kind::Op ||
      deck.analysis.kind == ParsedAnalysis::Kind::None) {
    const auto dc = dc_operating_point(ckt);
    if (!dc.converged) {
      rep.text = "nemtcam_sim: DC operating point did not converge";
      if (!dc.singular_detail.empty())
        rep.text += " (" + dc.singular_detail + ")";
      rep.text += "\n";
      return rep;
    }
    util::Table t({"node", "voltage"});
    const auto& nodes = deck.print_nodes;
    if (nodes.empty()) {
      for (int n = 1; n < static_cast<int>(ckt.node_count()); ++n)
        t.add_row({ckt.node_name(n),
                   util::si_format(dc.v[static_cast<std::size_t>(n - 1)], "V")});
    } else {
      for (const auto& name : nodes) {
        const NodeId n = ckt.node(name);
        t.add_row({name,
                   util::si_format(dc.v[static_cast<std::size_t>(n - 1)], "V")});
      }
    }
    out << "\nDC operating point\n" << t.to_string();
    rep.ok = true;
    rep.text = out.str();
    return rep;
  }

  // Transient. The deck's dt_max sets the fixed grid; the adaptive cap may
  // exceed it (tolerances control accuracy there) but stays fine enough
  // that the printed sample table still resolves the waveform.
  const double t_end = deck.analysis.tran_t_end;
  const double dt_max = deck.analysis.tran_dt_max;
  TransientOptions opts =
      step_defaults(t_end, dt_max, std::max(dt_max, t_end / 50.0));
  opts.dt_init = dt_max / 100.0;
  const auto res = run_transient(ckt, opts);
  if (!res.finished) {
    rep.text = "nemtcam_sim: transient failed: " + res.failure + "\n";
    return rep;
  }

  std::vector<std::string> headers = {"t"};
  std::vector<Trace> traces;
  for (const auto& name : deck.print_nodes) {
    headers.push_back("v(" + name + ")");
    traces.push_back(res.node_trace(ckt.node(name)));
  }
  util::Table t(headers);
  for (int k = 0; k < points; ++k) {
    const double tp = opts.t_end * k / (points - 1);
    std::vector<std::string> row = {util::si_format(tp, "s", 3)};
    for (const auto& tr : traces)
      row.push_back(util::si_format(tr.at(tp), "V", 4));
    t.add_row(row);
  }
  out << "\nTransient (" << res.steps_taken << " accepted steps)\n"
      << t.to_string();

  util::Table e({"source", "delivered energy"});
  for (const auto& [name, energy] : res.source_energies())
    e.add_row({name, util::si_format(energy, "J")});
  out << "\nEnergy ledger\n" << e.to_string();
  rep.ok = true;
  rep.text = out.str();
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  int points = 25;
  std::size_t threads = 0;  // 0 → run_sweep default
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc) {
      points = std::atoi(argv[++i]);
      if (points < 2) points = 2;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n < 1) return usage();
      threads = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--reltol") == 0 && i + 1 < argc) {
      const double x = std::atof(argv[++i]);
      if (x <= 0.0) return usage();
      set_default_lte_tolerances(x, default_lte_abstol_v());
    } else if (std::strcmp(argv[i], "--abstol") == 0 && i + 1 < argc) {
      const double x = std::atof(argv[++i]);
      if (x <= 0.0) return usage();
      set_default_lte_tolerances(default_lte_reltol(), x);
    } else if (std::strcmp(argv[i], "--fixed-step") == 0) {
      set_default_step_control(StepControl::FixedGrowth);
    } else if (std::strcmp(argv[i], "--no-erc") == 0) {
      erc::set_default_enforce(false);
    } else if (std::strcmp(argv[i], "--no-hier") == 0) {
      hier::set_default_enabled(false);
    } else if (argv[i][0] != '-') {
      paths.emplace_back(argv[i]);
    } else {
      return usage();
    }
  }
  if (paths.empty()) return usage();

  util::SweepOptions sweep;
  sweep.threads = paths.size() == 1 ? 1 : threads;
  // Guarded sweep: a deck that throws past simulate_deck's own handling
  // (solver contract violation, bad_alloc, …) fails alone — the other
  // decks still simulate and print.
  const auto items = util::run_sweep_guarded<DeckReport>(
      paths.size(),
      [&paths, points](std::size_t i, std::uint64_t) {
        return simulate_deck(paths[i], points);
      },
      sweep);

  bool all_ok = true;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items.size() > 1)
      std::printf("%s==== %s ====\n", i == 0 ? "" : "\n", paths[i].c_str());
    if (items[i].ok && items[i].value.ok) {
      std::fputs(items[i].value.text.c_str(), stdout);
    } else {
      const std::string text =
          items[i].ok ? items[i].value.text
                      : "nemtcam_sim: " + paths[i] + ": " + items[i].error + "\n";
      std::fputs(text.c_str(), stderr);
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
