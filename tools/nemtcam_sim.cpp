// nemtcam_sim — command-line circuit simulator over the nemtcam engine.
//
//   nemtcam_sim deck.sp [--points N]
//
// Parses a SPICE-style netlist (see spice/Netlist.h for the supported
// subset), runs the requested analysis (.op or .tran), and prints the
// .print node voltages — as a DC table or as N transient sample rows —
// plus the per-source delivered-energy ledger.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "netlist/Netlist.h"
#include "spice/Newton.h"
#include "spice/Transient.h"
#include "util/Table.h"

using namespace nemtcam;
using namespace nemtcam::spice;

namespace {

int usage() {
  std::fprintf(stderr, "usage: nemtcam_sim <deck.sp> [--points N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  int points = 25;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc) {
      points = std::atoi(argv[++i]);
      if (points < 2) points = 2;
    } else if (argv[i][0] != '-') {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path == nullptr) return usage();

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "nemtcam_sim: cannot open '%s'\n", path);
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  ParsedNetlist deck;
  try {
    deck = parse_netlist(buf.str());
  } catch (const NetlistError& e) {
    std::fprintf(stderr, "nemtcam_sim: %s\n", e.what());
    return 1;
  }
  std::printf("* %s\n", deck.title.c_str());
  std::printf("* %d nodes, %d unknowns, %zu devices\n",
              static_cast<int>(deck.circuit->node_count()),
              deck.circuit->unknown_count(), deck.circuit->devices().size());

  Circuit& ckt = *deck.circuit;

  if (deck.analysis.kind == ParsedAnalysis::Kind::Op ||
      deck.analysis.kind == ParsedAnalysis::Kind::None) {
    const auto dc = dc_operating_point(ckt);
    if (!dc.converged) {
      std::fprintf(stderr, "nemtcam_sim: DC operating point did not converge\n");
      return 1;
    }
    util::Table t({"node", "voltage"});
    const auto& nodes = deck.print_nodes;
    if (nodes.empty()) {
      for (int n = 1; n < static_cast<int>(ckt.node_count()); ++n)
        t.add_row({ckt.node_name(n),
                   util::si_format(dc.v[static_cast<std::size_t>(n - 1)], "V")});
    } else {
      for (const auto& name : nodes) {
        const NodeId n = ckt.node(name);
        t.add_row({name,
                   util::si_format(dc.v[static_cast<std::size_t>(n - 1)], "V")});
      }
    }
    std::printf("\nDC operating point\n");
    t.print();
    return 0;
  }

  // Transient.
  TransientOptions opts;
  opts.t_end = deck.analysis.tran_t_end;
  opts.dt_max = deck.analysis.tran_dt_max;
  opts.dt_init = opts.dt_max / 100.0;
  const auto res = run_transient(ckt, opts);
  if (!res.finished) {
    std::fprintf(stderr, "nemtcam_sim: transient failed: %s\n",
                 res.failure.c_str());
    return 1;
  }

  std::vector<std::string> headers = {"t"};
  std::vector<Trace> traces;
  for (const auto& name : deck.print_nodes) {
    headers.push_back("v(" + name + ")");
    traces.push_back(res.node_trace(ckt.node(name)));
  }
  util::Table t(headers);
  for (int k = 0; k < points; ++k) {
    const double tp = opts.t_end * k / (points - 1);
    std::vector<std::string> row = {util::si_format(tp, "s", 3)};
    for (const auto& tr : traces)
      row.push_back(util::si_format(tr.at(tp), "V", 4));
    t.add_row(row);
  }
  std::printf("\nTransient (%zu accepted steps)\n", res.steps_taken);
  t.print();

  util::Table e({"source", "delivered energy"});
  for (const auto& [name, energy] : res.source_energies())
    e.add_row({name, util::si_format(energy, "J")});
  std::printf("\nEnergy ledger\n");
  e.print();
  return 0;
}
