// IP router example: longest-prefix-match forwarding on the 3T2N TCAM —
// the application the paper's introduction leads with (ref [1]).
//
// Builds a small FIB, routes a packet trace, and reports the lookup
// throughput/energy the dynamic TCAM would spend, including its automatic
// one-shot refreshes.
#include <cstdio>

#include "arch/LpmTable.h"
#include "util/Random.h"
#include "util/Table.h"

using namespace nemtcam;
using namespace nemtcam::arch;

int main() {
  LpmTable fib(/*capacity=*/64, core::TcamTech::Nem3T2N);

  struct Entry {
    const char* prefix;
    int len;
    std::uint32_t hop;
    const char* label;
  };
  const Entry entries[] = {
      {"0.0.0.0", 0, 1, "default -> upstream"},
      {"10.0.0.0", 8, 2, "corp aggregate"},
      {"10.1.0.0", 16, 3, "site A"},
      {"10.1.2.0", 24, 4, "site A / lab net"},
      {"10.2.0.0", 16, 5, "site B"},
      {"192.168.0.0", 16, 6, "mgmt"},
      {"172.16.0.0", 12, 7, "vpn pool"},
  };
  for (const auto& e : entries)
    fib.insert({parse_ipv4(e.prefix), e.len, e.hop});
  std::printf("FIB: %d routes in a %d-entry 3T2N TCAM\n\n", fib.size(),
              fib.capacity());

  util::Table t({"destination", "matched prefix", "next hop"});
  for (const char* dst : {"10.1.2.77", "10.1.9.9", "10.2.3.4", "10.200.0.1",
                          "192.168.4.4", "172.17.3.3", "8.8.8.8"}) {
    const auto r = fib.lookup(parse_ipv4(dst));
    t.add_row({dst,
               r ? (format_ipv4(r->prefix) + "/" + std::to_string(r->length))
                 : "(none)",
               r ? std::to_string(r->next_hop) : "-"});
  }
  t.print();

  // Route a random packet burst and account the hardware cost.
  util::Rng rng(2024);
  const int kPackets = 20000;
  int routed = 0;
  for (int i = 0; i < kPackets; ++i) {
    // Mostly intra-corp traffic with some internet-bound addresses.
    std::uint32_t addr;
    if (rng.bernoulli(0.7)) {
      addr = (10u << 24) | static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffff));
    } else {
      addr = static_cast<std::uint32_t>(rng.engine()());
    }
    if (fib.lookup(addr).has_value()) ++routed;
  }
  const auto& ledger = fib.ledger();
  std::printf("\nrouted %d/%d packets; TCAM ledger: %llu searches, "
              "%llu auto-refreshes, total energy %s "
              "(avg %s per lookup)\n",
              routed, kPackets,
              static_cast<unsigned long long>(ledger.searches),
              static_cast<unsigned long long>(ledger.refreshes),
              util::si_format(ledger.energy, "J").c_str(),
              util::si_format(ledger.energy / ledger.searches, "J").c_str());
  return 0;
}
