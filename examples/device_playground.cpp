// Device playground: drive a single NEM relay through its hysteresis loop
// with the circuit simulator and print the waveforms — a minimal example
// of using the spice/devices layers directly.
#include <cstdio>
#include <memory>

#include "devices/NemRelay.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "spice/Circuit.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"
#include "util/Table.h"

using namespace nemtcam;
using namespace nemtcam::spice;
using namespace nemtcam::devices;

int main() {
  Circuit c;
  const NodeId gate = c.node("gate");
  const NodeId drain = c.node("drain");
  const NodeId source = c.node("source");

  // Triangular gate drive 0 → 1 V → 0 over 80 ns; 0.5 V drain supply
  // through a 10 kΩ load on the source side.
  c.add<VSource>("Vg", gate, c.ground(),
                 std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
                     {0.0, 0.0}, {40e-9, 1.0}, {80e-9, 0.0}}));
  c.add<VSource>("Vd", drain, c.ground(), 0.5);
  c.add<Resistor>("Rload", source, c.ground(), 10e3);
  auto& relay = c.add<NemRelay>("N1", drain, gate, source, c.ground());

  TransientOptions opts;
  opts.t_end = 80e-9;
  opts.dt_max = 0.1e-9;
  const auto res = run_transient(c, opts);
  if (!res.finished) {
    std::printf("transient failed: %s\n", res.failure.c_str());
    return 1;
  }

  const Trace vg = res.node_trace(gate);
  const Trace vs = res.node_trace(source);
  util::Table t({"t (ns)", "V_GB", "V_source", "beam"});
  for (double tp = 0.0; tp <= 80.0001e-9; tp += 5e-9) {
    const double v = vg.at(tp);
    const double out = vs.at(tp);
    t.add_row({util::si_format(tp, "s", 3), util::si_format(v, "V", 3),
               util::si_format(out, "V", 3),
               out > 0.1 ? "CLOSED" : "open"});
  }
  t.print();
  std::printf("\npull-in at %s (V_PI=0.53 V + tau_mech), release at %s"
              " (V_PO=0.13 V + tau_mech)\n",
              util::si_format(relay.t_contact_closed(), "s").c_str(),
              util::si_format(relay.t_contact_opened(), "s").c_str());
  std::printf("energy delivered by the gate driver: %s (capacitive aF-scale"
              " load — this is why 3T2N writes are cheap)\n",
              util::si_format(res.source_energy("Vg"), "J").c_str());
  return 0;
}
