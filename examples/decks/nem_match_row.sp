Two-column NEM relay match row from one .subckt template
* One relay compare cell per column. Ports: matchline, searchline pair.
* Stored state arrives as relay flags + .ic on the scoped storage nodes;
* the bleeders stand in for the off write transistors' DC leak path.
.subckt relay_cell ml sl slb
N1 slb stg1 gs 0
N2 sl stg2 gs 0
Ms ml gs 0 NMOS w=1.5
C1 stg1 0 1f
C2 stg2 0 1f
R1 stg1 0 100g
R2 stg2 0 100g
.ends
* ML precharged to VDD, released at 0.25 ns; SLs assert at 0.3 ns.
Vpre ml 0 PWL(0 1 0.2n 1 0.25n 0)
Csense ml 0 5f
* Column 0 stores '1' (N1 closed via .ic below) and the key drives SL=1:
* a match — the closed relay sees the grounded SLB, ML stays up.
Vsl0 sl0 0 PWL(0 0 0.3n 0 0.32n 1)
Vslb0 slb0 0 0
* Column 1 stores 'X' (both relays open): never discharges the ML.
Vsl1 sl1 0 0
Vslb1 slb1 0 PWL(0 0 0.3n 0 0.32n 1)
X0 ml sl0 slb0 relay_cell
X1 ml sl1 slb1 relay_cell
.ic v(ml)=1 v(x0.stg1)=0.9
.tran 10p 2n
.print v(ml) v(x0.gs) v(x1.gs)
.end
