RC low-pass step response (nemtcam_sim demo)
V1 vin 0 PULSE(0 1 1n 0.05n 0.05n 20n)
R1 vin out 10k
C1 out 0 100f
.ic v(out)=0
.tran 10p 8n
.print v(vin) v(out)
.end
