NEM relay pull-down with resistive load (hysteresis demo)
V1 g 0 PWL(0 0 20n 1 40n 0)
V2 vdd 0 1
R1 vdd out 100k
N1 out g 0 0
.tran 50p 40n
.print v(g) v(out)
.end
