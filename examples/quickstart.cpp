// Quickstart: the two levels of the nemtcam API.
//
//  1. Functional level (core::DynamicTcam): a 3T2N TCAM with retention and
//     one-shot refresh on a virtual clock — fast, for architectural use.
//  2. Circuit level (tcam::TcamRow): transistor/relay netlists solved by
//     the bundled SPICE-like engine — the layer the paper's benchmarking
//     runs on.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/DynamicTcam.h"
#include "tcam/Nem3T2NRow.h"
#include "util/Table.h"

using namespace nemtcam;
using core::DynamicTcam;
using core::TcamTech;
using core::TernaryWord;

int main() {
  std::printf("== 1. Functional dynamic TCAM (3T2N semantics) ==\n");
  DynamicTcam tcam(TcamTech::Nem3T2N, /*rows=*/8, /*width=*/8);

  // Store three patterns; 'X' matches either value.
  tcam.write(0, TernaryWord("10110010"));
  tcam.write(1, TernaryWord("1011XXXX"));
  tcam.write(2, TernaryWord("XXXXXXXX"));

  const auto hits = tcam.search(TernaryWord("10111111"));
  std::printf("key 10111111 matches rows:");
  for (int r : hits) std::printf(" %d", r);
  std::printf("  (expected: 1 2)\n");

  // The array refreshes itself (one-shot) while time advances.
  tcam.advance(100e-6);  // 100 µs ≈ 3-4 retention periods
  std::printf("after 100 us: row 1 still live=%d, refreshes=%llu, "
              "energy so far=%s\n",
              static_cast<int>(tcam.live(1)),
              static_cast<unsigned long long>(tcam.ledger().refreshes),
              util::si_format(tcam.ledger().energy, "J").c_str());

  std::printf("\n== 2. Circuit-level 3T2N row (SPICE-level transaction) ==\n");
  tcam::Nem3T2NRow row(/*width=*/16, /*array_rows=*/64,
                       tcam::Calibration::standard());
  const TernaryWord word("1011001010110010");
  row.store(word);

  TernaryWord key = word;
  key[5] = (key[5] == core::Ternary::One) ? core::Ternary::Zero
                                          : core::Ternary::One;
  const tcam::SearchMetrics miss = row.search(key);
  const tcam::SearchMetrics hit = row.search(word);
  std::printf("1-bit mismatch: ML discharged in %s using %s (matched=%d)\n",
              util::si_format(miss.latency, "s").c_str(),
              util::si_format(miss.energy, "J").c_str(),
              static_cast<int>(miss.matched));
  std::printf("exact match:    ML held at %s (matched=%d)\n",
              util::si_format(hit.ml_min, "V").c_str(),
              static_cast<int>(hit.matched));

  const tcam::RefreshMetrics r = row.one_shot_refresh();
  std::printf("one-shot refresh: ok=%d energy=%s retention=%s power=%s\n",
              static_cast<int>(r.ok),
              util::si_format(r.energy_per_op, "J").c_str(),
              util::si_format(r.retention_time, "s").c_str(),
              util::si_format(r.refresh_power, "W").c_str());
  return 0;
}
