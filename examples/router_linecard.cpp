// End-to-end line-card study: a banked 3T2N TCAM FIB under sustained
// lookup traffic, with endurance accounting for the route-update stream —
// ties together the functional TCAM, banking, refresh, and endurance
// layers on one workload.
#include <cstdio>

#include "arch/BankedTcam.h"
#include "arch/Endurance.h"
#include "arch/LpmTable.h"
#include "util/Random.h"
#include "util/Table.h"

using namespace nemtcam;
using namespace nemtcam::arch;
using core::TcamTech;
using core::TernaryWord;

namespace {

TernaryWord prefix_word(std::uint32_t prefix, int len) {
  TernaryWord w = TernaryWord::from_uint(prefix, 32);
  for (int b = len; b < 32; ++b)
    w[static_cast<std::size_t>(b)] = core::Ternary::X;
  return w;
}

}  // namespace

int main() {
  // 4 banks × 256 rows of 32-bit entries.
  BankedTcam fib(TcamTech::Nem3T2N, 4, 256, 32);
  EnduranceTracker wear(TcamTech::Nem3T2N, fib.capacity(), 32);
  util::Rng rng(4242);

  // Seed the table: /16s and /24s under 10.0.0.0/8 plus a default route.
  int next_row = 0;
  auto install = [&](std::uint32_t prefix, int len) {
    if (next_row >= fib.capacity()) return;
    const TernaryWord w = prefix_word(prefix, len);
    fib.write(next_row, w);
    wear.record_write(next_row, w);
    ++next_row;
  };
  for (int site = 0; site < 200; ++site)
    install((10u << 24) | (static_cast<std::uint32_t>(site) << 16), 16);
  for (int lab = 0; lab < 300; ++lab)
    install((10u << 24) | (static_cast<std::uint32_t>(lab % 200) << 16) |
                (static_cast<std::uint32_t>(lab) << 8),
            24);
  install(0, 0);
  std::printf("installed %d prefixes into a %d-entry banked FIB (4x256)\n",
              next_row, fib.capacity());

  // Traffic phase: lookups with periodic route churn (BGP-flap style).
  const int kLookups = 50000;
  int hits = 0;
  for (int i = 0; i < kLookups; ++i) {
    const std::uint32_t addr =
        (10u << 24) | static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffff));
    if (fib.search_first(TernaryWord::from_uint(addr, 32)).has_value()) ++hits;
    if (i % 500 == 499) {
      // Route update: rewrite a random /24.
      const int row = rng.uniform_int(200, next_row - 2);
      const auto w = prefix_word(
          (10u << 24) | (static_cast<std::uint32_t>(rng.uniform_int(0, 199)) << 16) |
              (static_cast<std::uint32_t>(rng.uniform_int(0, 255)) << 8),
          24);
      fib.write(row, w);
      wear.record_write(row, w);
    }
    // Inter-arrival gap: 100 Mpps line rate.
    fib.advance(10e-9);
  }

  const auto ledger = fib.total_ledger();
  util::Table t({"metric", "value"});
  t.add_row({"lookups", std::to_string(kLookups)});
  t.add_row({"hit rate", util::si_format(100.0 * hits / kLookups, "%", 4)});
  t.add_row({"route updates", std::to_string(kLookups / 500)});
  t.add_row({"one-shot refreshes (all banks)", std::to_string(ledger.refreshes)});
  t.add_row({"retention losses", std::to_string(ledger.retention_losses)});
  t.add_row({"total TCAM energy", util::si_format(ledger.energy, "J")});
  t.add_row({"energy per lookup",
             util::si_format(ledger.energy / ledger.searches, "J")});
  t.add_row({"array busy fraction",
             util::si_format(100.0 * ledger.busy_time /
                                 (kLookups * 10e-9),
                             "%", 3)});
  t.add_row({"worst cell wear (cycles)",
             std::to_string(wear.worst_cell_cycles())});
  t.add_row({"lifetime at this update rate",
             util::si_format(
                 wear.lifetime_at_write_rate(kLookups / 500 /
                                             (kLookups * 10e-9)),
                 "s", 3)});
  t.print();
  std::printf("\nThe staggered one-shot refreshes keep every bank live with"
              " sub-ppm busy overhead, and the relay endurance budget at"
              " this churn rate outlives the hardware.\n");
  return 0;
}
