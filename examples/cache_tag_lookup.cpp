// Cache-tag example: a fully-associative victim-cache-style tag store on
// the TCAM, exercised with a loop-with-working-set access pattern, and a
// cost comparison across the four TCAM technologies for the same trace.
#include <cstdio>
#include <vector>

#include "arch/AssocCache.h"
#include "util/Random.h"
#include "util/Table.h"

using namespace nemtcam;
using namespace nemtcam::arch;
using core::TcamTech;

namespace {

// Strided loop over a working set with occasional random pointer chases.
std::vector<std::uint64_t> make_trace(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> trace;
  trace.reserve(static_cast<std::size_t>(n));
  std::uint64_t base = 0x10000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.1)) {
      trace.push_back(0x900000 + 64 * static_cast<std::uint64_t>(
                                          rng.uniform_int(0, 4096)));
    } else {
      trace.push_back(base + 64 * static_cast<std::uint64_t>(i % 48));
    }
    if (i % 500 == 499) base += 0x4000;  // phase change
  }
  return trace;
}

}  // namespace

int main() {
  const auto trace = make_trace(30000, 99);

  util::Table t({"technology", "hit rate", "evictions", "tag energy",
                 "avg energy/access", "refreshes"});
  for (const TcamTech tech : {TcamTech::Sram16T, TcamTech::Nem3T2N,
                              TcamTech::Rram2T2R, TcamTech::Fefet2F}) {
    AssocCache cache(/*ways=*/64, /*line_bytes=*/64, /*tag_bits=*/48, tech);
    for (const std::uint64_t addr : trace) cache.access(addr);
    const auto& s = cache.stats();
    const auto& l = cache.ledger();
    t.add_row({core::tech_name(tech),
               util::si_format(s.hit_rate() * 100.0, "%", 3),
               std::to_string(s.evictions),
               util::si_format(l.energy, "J"),
               util::si_format(l.energy / s.accesses, "J"),
               std::to_string(l.refreshes)});
  }
  std::printf("fully-associative 64-way tag store, 30k-access trace\n");
  t.print();
  std::printf("\nHit rates are identical by construction (same trace, same"
              " LRU); the technologies differ in energy — the write-heavy"
              " eviction traffic is where the NVM TCAMs pay and the 3T2N"
              " stays cheap.\n");
  return 0;
}
