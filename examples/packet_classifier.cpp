// Packet-classification example: a firewall-style 5-field rule set on the
// ternary CAM, including port-range-to-prefix expansion.
#include <cstdio>

#include "arch/PacketClassifier.h"
#include "arch/LpmTable.h"  // parse_ipv4
#include "util/Random.h"
#include "util/Table.h"

using namespace nemtcam;
using namespace nemtcam::arch;

int main() {
  PacketClassifier acl(/*capacity_rows=*/256, core::TcamTech::Nem3T2N);

  // Priority order: first inserted wins.
  int rows = 0;
  rows += acl.add_rule({0, 0, parse_ipv4("10.0.0.53"), 32, 17, 53, 53,
                        "allow: dns"});
  rows += acl.add_rule({0, 0, parse_ipv4("10.0.1.0"), 24, 6, 80, 80,
                        "allow: web http"});
  rows += acl.add_rule({0, 0, parse_ipv4("10.0.1.0"), 24, 6, 443, 443,
                        "allow: web https"});
  rows += acl.add_rule({parse_ipv4("10.9.0.0"), 16, 0, 0, 6, 22, 22,
                        "allow: admin ssh"});
  rows += acl.add_rule({0, 0, 0, 0, 6, 1024, 65535,
                        "allow: ephemeral tcp"});  // range-expanded
  rows += acl.add_rule({0, 0, 0, 0, std::nullopt, 0, 0xffff, "drop: default"});

  std::printf("installed %d rules using %d TCAM rows (range expansion)\n\n",
              acl.rule_count(), acl.rows_used());

  util::Table t({"src", "dst", "proto", "dport", "verdict"});
  struct Probe {
    const char* src;
    const char* dst;
    std::uint8_t proto;
    std::uint16_t port;
  };
  const Probe probes[] = {
      {"8.8.4.4", "10.0.0.53", 17, 53},
      {"8.8.4.4", "10.0.1.10", 6, 80},
      {"8.8.4.4", "10.0.1.10", 6, 443},
      {"10.9.3.3", "10.0.2.2", 6, 22},
      {"8.8.4.4", "10.0.2.2", 6, 22},
      {"8.8.4.4", "10.0.2.2", 6, 8080},
      {"8.8.4.4", "10.0.0.53", 6, 53},
  };
  for (const auto& p : probes) {
    const auto verdict =
        acl.classify({parse_ipv4(p.src), parse_ipv4(p.dst), p.proto, p.port});
    t.add_row({p.src, p.dst, std::to_string(p.proto), std::to_string(p.port),
               verdict.value_or("(no match)")});
  }
  t.print();

  // Throughput accounting over a synthetic flow mix.
  util::Rng rng(7);
  int allowed = 0, dropped = 0;
  for (int i = 0; i < 10000; ++i) {
    PacketHeader pkt;
    pkt.src = static_cast<std::uint32_t>(rng.engine()());
    pkt.dst = (10u << 24) | static_cast<std::uint32_t>(rng.uniform_int(0, 0xffff));
    pkt.protocol = rng.bernoulli(0.8) ? 6 : 17;
    pkt.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    const auto v = acl.classify(pkt);
    if (v && v->rfind("allow", 0) == 0) ++allowed;
    else ++dropped;
  }
  std::printf("\nflow mix: %d allowed / %d dropped; energy %s over %llu"
              " searches\n",
              allowed, dropped,
              util::si_format(acl.ledger().energy, "J").c_str(),
              static_cast<unsigned long long>(acl.ledger().searches));
  return 0;
}
