// ThreadPool / run_sweep determinism, plus solver fast-path equivalence:
// the parallel sweep must produce bit-identical results at any thread
// count, and the assembly-cache Newton path must agree with the legacy
// rebuild-everything path on a real TCAM transaction.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "spice/Newton.h"
#include "tcam/Calibration.h"
#include "tcam/Rram2T2RRow.h"
#include "util/Sweep.h"
#include "util/ThreadPool.h"

namespace {

using namespace nemtcam;
using nemtcam::tcam::Calibration;
using nemtcam::tcam::Rram2T2RRow;
using nemtcam::tcam::SearchMetrics;

TEST(ThreadPool, RunsEveryTask) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  util::ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(RunSweep, SeedsDependOnlyOnTrialIndex) {
  const auto a = util::sweep_trial_seed(42, 7);
  const auto b = util::sweep_trial_seed(42, 7);
  EXPECT_EQ(a, b);
  EXPECT_NE(util::sweep_trial_seed(42, 8), a);
  EXPECT_NE(util::sweep_trial_seed(43, 7), a);
}

TEST(RunSweep, ResultsAreOrderedAndThreadCountInvariant) {
  const auto body = [](std::size_t trial, std::uint64_t seed) {
    // Cheap but seed-sensitive computation.
    return static_cast<double>(seed % 1000003) + 1e-3 * static_cast<double>(trial);
  };
  util::SweepOptions serial;
  serial.threads = 1;
  util::SweepOptions parallel;
  parallel.threads = 4;
  const auto r1 = util::run_sweep<double>(64, body, serial);
  const auto r4 = util::run_sweep<double>(64, body, parallel);
  ASSERT_EQ(r1.size(), 64u);
  EXPECT_EQ(r1, r4);  // bit-identical, not just close
}

TEST(RunSweep, PropagatesTrialExceptions) {
  util::SweepOptions opts;
  opts.threads = 3;
  EXPECT_THROW(
      util::run_sweep<int>(
          8,
          [](std::size_t trial, std::uint64_t) -> int {
            if (trial == 5) throw std::runtime_error("trial 5 boom");
            return static_cast<int>(trial);
          },
          opts),
      std::runtime_error);
}

TEST(RunSweepGuarded, PoisonedItemYieldsPerIndexFailureRecord) {
  const auto body = [](std::size_t trial, std::uint64_t) -> int {
    if (trial == 5) throw std::runtime_error("trial 5 boom");
    return static_cast<int>(trial) * 10;
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    util::SweepOptions opts;
    opts.threads = threads;
    const auto items = util::run_sweep_guarded<int>(8, body, opts);
    ASSERT_EQ(items.size(), 8u);
    std::size_t ok_count = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i == 5) {
        EXPECT_FALSE(items[i].ok);
        EXPECT_EQ(items[i].error, "trial 5 boom");
        continue;
      }
      EXPECT_TRUE(items[i].ok);
      EXPECT_EQ(items[i].value, static_cast<int>(i) * 10);
      ++ok_count;
    }
    EXPECT_EQ(ok_count, 7u);  // N−1 usable results
  }
}

// The real consumer: a small RRAM variation Monte-Carlo, serial vs
// pooled. Every trial builds its own circuit and derives its variation
// seed from the trial index alone, so errors and margins must agree
// exactly between thread counts.
TEST(RunSweep, RramVariationSweepIsThreadCountInvariant) {
  struct Outcome {
    int errors;
    double ml_min_match;
    bool operator==(const Outcome& o) const {
      return errors == o.errors && ml_min_match == o.ml_min_match;
    }
  };
  const auto trial_body = [](std::size_t trial, std::uint64_t) {
    Rram2T2RRow row(8, 16, Calibration::standard());
    row.set_resistance_sigma(0.6);
    row.set_variation_seed(static_cast<std::uint64_t>(trial) + 1);
    core::TernaryWord word(8);
    for (std::size_t i = 0; i < 8; ++i)
      word[i] = (i % 2) ? core::Ternary::Zero : core::Ternary::One;
    row.store(word);
    core::TernaryWord miss = word;
    miss[0] = core::Ternary::Zero;
    const SearchMetrics mm = row.search(miss);
    const SearchMetrics mt = row.search(word);
    Outcome out{0, mt.ml_min};
    if (!mm.ok || !mt.ok || mm.matched || !mt.matched) out.errors = 1;
    return out;
  };
  util::SweepOptions serial;
  serial.threads = 1;
  util::SweepOptions pooled;
  pooled.threads = 3;
  const auto r1 = util::run_sweep<Outcome>(4, trial_body, serial);
  const auto rn = util::run_sweep<Outcome>(4, trial_body, pooled);
  ASSERT_EQ(r1.size(), rn.size());
  for (std::size_t i = 0; i < r1.size(); ++i) EXPECT_TRUE(r1[i] == rn[i]);
}

// Assembly-cache Newton path vs the legacy rebuild path on the same
// transaction. The two paths may pick different (equally valid) pivot
// sequences, so agreement is to solver tolerance, not bitwise.
TEST(SolverFastPath, MatchesLegacyNewtonPathOnTcamSearch) {
  const auto run_one = [] {
    Rram2T2RRow row(8, 16, Calibration::standard());
    core::TernaryWord word(8);
    for (std::size_t i = 0; i < 8; ++i)
      word[i] = (i % 2) ? core::Ternary::Zero : core::Ternary::One;
    row.store(word);
    return row.search(word);
  };
  spice::set_default_use_assembly_cache(true);
  const SearchMetrics fast = run_one();
  spice::set_default_use_assembly_cache(false);
  const SearchMetrics legacy = run_one();
  spice::set_default_use_assembly_cache(true);

  ASSERT_TRUE(fast.ok);
  ASSERT_TRUE(legacy.ok);
  EXPECT_EQ(fast.matched, legacy.matched);
  EXPECT_NEAR(fast.ml_min, legacy.ml_min, 1e-6);
  EXPECT_NEAR(fast.ml_final, legacy.ml_final, 1e-6);
  EXPECT_NEAR(fast.energy, legacy.energy, 1e-6 * std::abs(legacy.energy) + 1e-18);
}

}  // namespace
