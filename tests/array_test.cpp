// Full-array simulation: the BBD Schur solver against the monolithic
// SparseLu on identical circuits, determinism across thread counts, the
// elaborate-once/replay-many contract at array scale, and row-scoped
// fault injection. All tests here carry the ctest label `array`.
#include <gtest/gtest.h>

#include <vector>

#include "devices/NemRelay.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "fault/FaultInjector.h"
#include "hier/Elaborate.h"
#include "linalg/BbdSolver.h"
#include "linalg/SparseLu.h"
#include "spice/Partition.h"
#include "tcam/ArrayTemplate.h"
#include "tcam/RowSpecs.h"
#include "util/ThreadPool.h"

namespace {

using namespace nemtcam;
using core::Ternary;
using core::TernaryWord;
using tcam::ArrayOptions;
using tcam::ArraySearchMetrics;
using tcam::ArrayTemplate;
using tcam::Calibration;

// ---------------------------------------------------------------- linalg

struct Csr {
  std::size_t n = 0;
  std::vector<std::size_t> row_ptr, cols;
  std::vector<double> vals;
  linalg::CsrView view() const {
    return {n, row_ptr.data(), cols.data(), vals.data()};
  }
};

Csr from_dense(const std::vector<std::vector<double>>& a) {
  Csr m;
  m.n = a.size();
  m.row_ptr.push_back(0);
  for (const auto& row : a) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (row[j] != 0.0) {
        m.cols.push_back(j);
        m.vals.push_back(row[j]);
      }
    }
    m.row_ptr.push_back(m.cols.size());
  }
  return m;
}

// 3 blocks of 2 unknowns + a 2-wide border, diagonally dominant, with
// B/C couplings from every block into the border.
std::vector<std::vector<double>> bbd_dense(double scale) {
  std::vector<std::vector<double>> a(8, std::vector<double>(8, 0.0));
  for (int k = 0; k < 3; ++k) {
    const int i = 2 * k;
    a[i][i] = 4.0 + k;
    a[i + 1][i + 1] = 5.0 + k;
    a[i][i + 1] = -1.0;
    a[i + 1][i] = -0.5;
    a[i][6] = 0.7 + k;          // B
    a[i + 1][7] = -0.3;         // B
    a[6][i + 1] = 0.2 + 0.1 * k;  // C
    a[7][i] = -0.6;             // C
  }
  a[6][6] = 9.0;
  a[7][7] = 8.0;
  a[6][7] = 1.5;
  a[7][6] = -0.25;
  for (auto& row : a)
    for (double& v : row) v *= scale;
  return a;
}

std::shared_ptr<const linalg::BbdPartition> three_block_partition() {
  auto p = std::make_shared<linalg::BbdPartition>();
  p->block_of = {0, 0, 1, 1, 2, 2, -1, -1};
  p->n_blocks = 3;
  return p;
}

TEST(BbdSolver, MatchesSparseLuAndRefactorizes) {
  const std::vector<double> b0 = {1.0, -2.0, 3.0, 0.5, -1.5, 2.5, 4.0, -0.5};

  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    util::ThreadPool pool(threads);
    linalg::BbdSolver bbd;
    bbd.set_partition(three_block_partition(), &pool);

    const Csr a1 = from_dense(bbd_dense(1.0));
    ASSERT_TRUE(bbd.factorize(a1.view()));
    EXPECT_EQ(bbd.block_count(), 3u);
    EXPECT_EQ(bbd.border_size(), 2u);

    std::vector<double> x = b0;
    bbd.solve_inplace(x);
    linalg::SparseLu lu(a1.view());
    std::vector<double> x_ref = b0;
    lu.solve_inplace(x_ref);
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_NEAR(x[i], x_ref[i], 1e-12) << "unknown " << i;

    // Same pattern, new values: the numeric-only replay must agree with a
    // fresh monolithic factorization.
    const Csr a2 = from_dense(bbd_dense(1.37));
    ASSERT_TRUE(bbd.refactorize(a2.view()));
    EXPECT_GE(bbd.stats().block_refactorizations, 3u);
    std::vector<double> y = b0;
    bbd.solve_inplace(y);
    linalg::SparseLu lu2(a2.view());
    std::vector<double> y_ref = b0;
    lu2.solve_inplace(y_ref);
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_NEAR(y[i], y_ref[i], 1e-12) << "unknown " << i;
  }
}

TEST(BbdSolver, RejectsCrossBlockCoupling) {
  auto dense = bbd_dense(1.0);
  dense[0][2] = 0.5;  // couples block 0 to block 1
  const Csr a = from_dense(dense);
  linalg::BbdSolver bbd;
  bbd.set_partition(three_block_partition(), nullptr);
  EXPECT_FALSE(bbd.factorize(a.view()));
  EXPECT_FALSE(bbd.factored());
}

TEST(BbdSolver, SharesPatternAcrossIdenticalBlocks) {
  linalg::BbdSolver bbd;
  bbd.set_partition(three_block_partition(), nullptr);
  const Csr a = from_dense(bbd_dense(1.0));
  ASSERT_TRUE(bbd.factorize(a.view()));
  // The three blocks stamp the same local pattern: one full symbolic
  // analysis, two shares.
  EXPECT_EQ(bbd.stats().pattern_shares, 2u);
}

TEST(Partition, DerivesBlocksFromDeviceOwners) {
  spice::Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  const auto s = ckt.node("s");
  ckt.add<devices::Resistor>("R0", a, s, 10.0);   // owner 0
  ckt.add<devices::Resistor>("R1", b, s, 20.0);   // owner 1
  ckt.add<devices::Resistor>("Rs", s, ckt.ground(), 5.0);  // shared
  ckt.add<devices::VSource>("V0", a, ckt.ground(), 1.0);   // owner 0 branch

  const linalg::BbdPartition p =
      spice::make_bbd_partition(ckt, {0, 1, -1, 0}, 2);
  ASSERT_EQ(p.block_of.size(), 4u);  // 3 node + 1 branch unknowns
  EXPECT_EQ(p.n_blocks, 2);
  EXPECT_EQ(p.block_of[a - 1], 0);   // only owner-0 devices touch a
  EXPECT_EQ(p.block_of[b - 1], 1);
  EXPECT_EQ(p.block_of[s - 1], -1);  // multiple owners → border
  EXPECT_EQ(p.block_of[3], 0);       // V0's branch follows its owner
}

// ----------------------------------------------------------------- array

TernaryWord word_for_row(int r, int width) {
  TernaryWord w(static_cast<std::size_t>(width), Ternary::One);
  for (int c = 0; c < width; ++c) {
    if ((r + c) % 3 == 1) w[static_cast<std::size_t>(c)] = Ternary::Zero;
    if ((r + c) % 5 == 4) w[static_cast<std::size_t>(c)] = Ternary::X;
  }
  return w;
}

ArraySearchMetrics run_array(const tcam::SearchTemplateSpec& spec, int rows,
                             int width, const ArrayOptions& opt,
                             const TernaryWord& key) {
  ArrayTemplate arr(spec, rows, width, opt);
  for (int r = 0; r < rows; ++r) arr.store(r, word_for_row(r, width));
  return arr.search(key);
}

TEST(ArrayBbd, MatchesMonolithicAcrossRowKinds) {
  const Calibration& cal = Calibration::standard();
  const int R = 8, W = 8;
  const TernaryWord key = word_for_row(0, W);  // row 0 matches exactly

  const struct {
    const char* name;
    tcam::SearchTemplateSpec spec;
  } kinds[] = {
      {"nem3t2n", tcam::nem3t2n_search_spec(cal)},
      {"fefet2f", tcam::fefet2f_search_spec(cal)},
      {"dtcam5t", tcam::dtcam5t_search_spec(cal)},
  };

  for (const auto& kind : kinds) {
    SCOPED_TRACE(kind.name);
    ArrayOptions bbd;
    ArrayOptions mono;
    mono.use_bbd = false;

    const ArraySearchMetrics mb = run_array(kind.spec, R, W, bbd, key);
    const ArraySearchMetrics mm = run_array(kind.spec, R, W, mono, key);

    ASSERT_TRUE(mb.ok) << mb.note;
    ASSERT_TRUE(mm.ok) << mm.note;
    EXPECT_TRUE(mb.used_bbd);
    EXPECT_EQ(mb.bbd_fallbacks, 0u);
    EXPECT_FALSE(mm.used_bbd);
    // One block per column under the default partition axis.
    EXPECT_EQ(mb.bbd_blocks, static_cast<std::size_t>(W));

    EXPECT_GT(mb.match_count, 0);
    EXPECT_LT(mb.match_count, R);
    ASSERT_EQ(mb.rows.size(), mm.rows.size());
    for (int r = 0; r < R; ++r) {
      SCOPED_TRACE("row " + std::to_string(r));
      EXPECT_EQ(mb.rows[r].matched, mm.rows[r].matched);
      EXPECT_NEAR(mb.rows[r].ml_final, mm.rows[r].ml_final, 2e-3 * cal.vdd);
      EXPECT_NEAR(mb.rows[r].latency, mm.rows[r].latency, 1e-12);
    }
    EXPECT_NEAR(mb.energy, mm.energy, 1e-3 * std::abs(mm.energy));
  }
}

TEST(ArrayBbd, PartitionAxesAgree) {
  const Calibration& cal = Calibration::standard();
  const int R = 8, W = 8;
  const TernaryWord key = word_for_row(1, W);

  ArrayOptions col;  // ByColumn is the default
  ArrayOptions row;
  row.partition = tcam::ArrayPartition::ByRow;

  const auto spec = tcam::nem3t2n_search_spec(cal);
  const ArraySearchMetrics mc = run_array(spec, R, W, col, key);
  const ArraySearchMetrics mr = run_array(spec, R, W, row, key);
  ASSERT_TRUE(mc.ok) << mc.note;
  ASSERT_TRUE(mr.ok) << mr.note;
  EXPECT_TRUE(mc.used_bbd);
  EXPECT_TRUE(mr.used_bbd);
  EXPECT_EQ(mc.bbd_fallbacks, 0u);
  EXPECT_EQ(mr.bbd_fallbacks, 0u);

  // ByColumn: one block per column; the border is the N matchlines, the
  // vdd/pchgb rail nodes and the two ideal rail branches — segments stay
  // block-interior.
  EXPECT_EQ(mc.bbd_blocks, static_cast<std::size_t>(W));
  EXPECT_EQ(mc.bbd_border, static_cast<std::size_t>(R + 4));
  // ByRow: row blocks plus a 1×1 block per line driver; every segment
  // node of every ladder lands in the border.
  EXPECT_EQ(mr.bbd_blocks, static_cast<std::size_t>(R + 2 * W));
  EXPECT_EQ(mr.bbd_border, static_cast<std::size_t>(2 * W * 2 + 4));

  // Same circuit, same physics: only the elimination order differs.
  ASSERT_EQ(mc.rows.size(), mr.rows.size());
  for (int r = 0; r < R; ++r) {
    SCOPED_TRACE("row " + std::to_string(r));
    EXPECT_EQ(mc.rows[r].matched, mr.rows[r].matched);
    EXPECT_NEAR(mc.rows[r].latency, mr.rows[r].latency, 1e-12);
  }
  EXPECT_NEAR(mc.energy, mr.energy, 1e-3 * std::abs(mr.energy));
}

TEST(ArrayBbd, DeterministicAcrossThreadCounts) {
  const Calibration& cal = Calibration::standard();
  const int R = 8, W = 8;
  const TernaryWord key = word_for_row(2, W);

  std::vector<ArraySearchMetrics> runs;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::ThreadPool pool(threads);
    ArrayOptions opt;
    opt.pool = &pool;
    runs.push_back(run_array(tcam::nem3t2n_search_spec(cal), R, W, opt, key));
    ASSERT_TRUE(runs.back().ok) << runs.back().note;
    ASSERT_TRUE(runs.back().used_bbd);
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    SCOPED_TRACE("thread variant " + std::to_string(i));
    EXPECT_EQ(runs[i].steps, runs[0].steps);
    EXPECT_EQ(runs[i].newton_iters, runs[0].newton_iters);
    EXPECT_EQ(runs[i].energy, runs[0].energy);  // bitwise
    for (int r = 0; r < R; ++r) {
      EXPECT_EQ(runs[i].rows[r].matched, runs[0].rows[r].matched);
      EXPECT_EQ(runs[i].rows[r].ml_final, runs[0].rows[r].ml_final);
      EXPECT_EQ(runs[i].rows[r].latency, runs[0].rows[r].latency);
    }
  }
}

TEST(ArrayReplay, KeyChangeRebindsWithoutReconstruction) {
  const Calibration& cal = Calibration::standard();
  const int R = 4, W = 8;
  ArrayTemplate arr(tcam::nem3t2n_search_spec(cal), R, W);
  for (int r = 0; r < R; ++r) arr.store(r, word_for_row(r, W));

  const ArraySearchMetrics m1 = arr.search(word_for_row(0, W));
  ASSERT_TRUE(m1.ok) << m1.note;
  EXPECT_EQ(arr.builds(), 1u);

  const hier::Stats after_first = hier::stats();
  const ArraySearchMetrics m2 = arr.search(word_for_row(1, W));
  ASSERT_TRUE(m2.ok) << m2.note;
  // Different key, same stored image: waveform rebind only — no circuit
  // rebuild, no new elaborations, no new stamp pattern.
  EXPECT_EQ(arr.builds(), 1u);
  EXPECT_EQ(hier::stats().instances_elaborated,
            after_first.instances_elaborated);
  EXPECT_EQ(m2.stamp_pattern_builds, m1.stamp_pattern_builds);
  // Row 1 stores word_for_row(1): searching it must match row 1.
  EXPECT_TRUE(m2.rows[1].matched);
  EXPECT_FALSE(m2.rows[0].matched);

  // Re-storing the same words keeps the template; a new word rebuilds.
  arr.store(2, word_for_row(2, W));
  (void)arr.search(word_for_row(1, W));
  EXPECT_EQ(arr.builds(), 1u);
  arr.store(2, TernaryWord(static_cast<std::size_t>(W), Ternary::X));
  const ArraySearchMetrics m3 = arr.search(word_for_row(1, W));
  ASSERT_TRUE(m3.ok) << m3.note;
  EXPECT_EQ(arr.builds(), 2u);
  // All-X row 2 matches any key.
  EXPECT_TRUE(m3.rows[2].matched);
}

// ----------------------------------------------------------------- fault

TEST(ArrayFault, TwoLevelScopeTargetsSingleRow) {
  // Unit level: the injector must parse "Xrow<r>.Xcell<c>.<base>" and
  // honour the row coordinate (the flat and one-level forms stay
  // row-agnostic — they come from single-row circuits).
  spice::Circuit ckt;
  const auto g = ckt.ground();
  auto& r0 = ckt.add<devices::NemRelay>("Xrow0.Xcell2.N1", g, ckt.node("a"),
                                        ckt.node("b"), g);
  auto& r1 = ckt.add<devices::NemRelay>("Xrow1.Xcell2.N1", g, ckt.node("c"),
                                        ckt.node("d"), g);
  auto& r1n2 = ckt.add<devices::NemRelay>("Xrow1.Xcell2.N2", g, ckt.node("e"),
                                          ckt.node("f"), g);
  auto& r1c3 = ckt.add<devices::NemRelay>("Xrow1.Xcell3.N1", g, ckt.node("h"),
                                          ckt.node("i"), g);

  fault::FaultInjector injector;
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::RelayStuckClosed;
  spec.row = 1;
  spec.col = 2;
  spec.on_n1 = true;
  EXPECT_EQ(injector.apply(ckt, spec), 1);
  EXPECT_TRUE(r1.stuck());
  EXPECT_FALSE(r0.stuck());
  EXPECT_FALSE(r1n2.stuck());
  EXPECT_FALSE(r1c3.stuck());

  // Row-less names keep matching whatever row the spec carries.
  auto& flat = ckt.add<devices::NemRelay>("N1_2", g, ckt.node("j"),
                                          ckt.node("k"), g);
  spec.row = 7;
  EXPECT_EQ(injector.apply(ckt, spec), 1);
  EXPECT_TRUE(flat.stuck());
}

TEST(ArrayFault, InjectedRowFaultFlipsOnlyThatRow) {
  const Calibration& cal = Calibration::standard();
  const int R = 4, W = 4;
  ArrayTemplate arr(tcam::nem3t2n_search_spec(cal), R, W);
  const TernaryWord ones(static_cast<std::size_t>(W), Ternary::One);
  for (int r = 0; r < R; ++r) arr.store(r, ones);
  // Row 2 disagrees with the all-ones key in one bit: its stored-0 relay
  // (N2, drain on SL) closes and discharges the row on a search.
  TernaryWord mismatching = ones;
  mismatching[1] = Ternary::Zero;
  arr.store(2, mismatching);

  const ArraySearchMetrics clean = arr.search(ones);
  ASSERT_TRUE(clean.ok) << clean.note;
  for (int r = 0; r < R; ++r)
    EXPECT_EQ(clean.rows[r].matched, r != 2) << "row " << r;

  // Break that relay's beam in the open position: the discharge path is
  // gone and row 2 now reports a false match. Every other row keeps its
  // own cells — the two-level scope must confine the fault to row 2.
  fault::FaultInjector injector;
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::RelayStuckOpen;
  spec.row = 2;
  spec.col = 1;
  spec.on_n1 = false;
  ASSERT_NE(arr.fixture(), nullptr);
  EXPECT_EQ(injector.apply(arr.fixture()->circuit(), spec), 1);

  // The replay re-binds stored state; the broken beam must survive the
  // re-seed (NemRelay::set_state is a no-op on stuck devices).
  const ArraySearchMetrics faulty = arr.search(ones);
  ASSERT_TRUE(faulty.ok) << faulty.note;
  EXPECT_EQ(arr.builds(), 1u);  // fault mutation is not a topology change
  for (int r = 0; r < R; ++r) EXPECT_TRUE(faulty.rows[r].matched) << r;
}

}  // namespace
