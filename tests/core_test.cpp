#include <gtest/gtest.h>

#include "core/DynamicTcam.h"
#include "core/EnergyModel.h"
#include "core/PriorityEncoder.h"
#include "core/TcamModel.h"
#include "core/Ternary.h"
#include "util/Random.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::core;

// --- Ternary / TernaryWord ----------------------------------------------

TEST(Ternary, MatchTable) {
  EXPECT_TRUE(ternary_matches(Ternary::One, Ternary::One));
  EXPECT_TRUE(ternary_matches(Ternary::Zero, Ternary::Zero));
  EXPECT_FALSE(ternary_matches(Ternary::One, Ternary::Zero));
  EXPECT_FALSE(ternary_matches(Ternary::Zero, Ternary::One));
  EXPECT_TRUE(ternary_matches(Ternary::X, Ternary::One));
  EXPECT_TRUE(ternary_matches(Ternary::X, Ternary::Zero));
  EXPECT_TRUE(ternary_matches(Ternary::One, Ternary::X));
  EXPECT_TRUE(ternary_matches(Ternary::Zero, Ternary::X));
  EXPECT_TRUE(ternary_matches(Ternary::X, Ternary::X));
}

TEST(TernaryWord, ParseAndFormatRoundTrip) {
  const TernaryWord w("10X1x*0");
  EXPECT_EQ(w.size(), 7u);
  EXPECT_EQ(w.to_string(), "10X1XX0");
  EXPECT_EQ(w[0], Ternary::One);
  EXPECT_EQ(w[2], Ternary::X);
  EXPECT_EQ(w.count_x(), 3u);
}

TEST(TernaryWord, RejectsBadCharacters) {
  EXPECT_THROW(TernaryWord("10Z"), std::logic_error);
}

TEST(TernaryWord, FromUintMsbFirst) {
  const TernaryWord w = TernaryWord::from_uint(0b1010, 4);
  EXPECT_EQ(w.to_string(), "1010");
  EXPECT_EQ(TernaryWord::from_uint(0, 3).to_string(), "000");
  EXPECT_EQ(TernaryWord::from_uint(255, 8).to_string(), "11111111");
}

TEST(TernaryWord, MatchesWithWildcards) {
  const TernaryWord stored("1X0X");
  EXPECT_TRUE(stored.matches(TernaryWord("1000")));
  EXPECT_TRUE(stored.matches(TernaryWord("1101")));
  EXPECT_FALSE(stored.matches(TernaryWord("0000")));
  EXPECT_FALSE(stored.matches(TernaryWord("1010")));
  // Key-side wildcards also match.
  EXPECT_TRUE(stored.matches(TernaryWord("XXXX")));
  EXPECT_TRUE(TernaryWord("1111").matches(TernaryWord("1X1X")));
}

TEST(TernaryWord, MismatchCount) {
  EXPECT_EQ(TernaryWord("1100").mismatch_count(TernaryWord("1010")), 2u);
  EXPECT_EQ(TernaryWord("1100").mismatch_count(TernaryWord("1100")), 0u);
  EXPECT_EQ(TernaryWord("XXXX").mismatch_count(TernaryWord("1010")), 0u);
}

TEST(TernaryWord, WidthMismatchThrows) {
  EXPECT_THROW(TernaryWord("11").matches(TernaryWord("111")), std::logic_error);
}

TEST(TernaryWord, AllXMatchesEverything) {
  const auto w = TernaryWord::all_x(16);
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto key = TernaryWord::from_uint(
        static_cast<std::uint64_t>(rng.uniform_int(0, 65535)), 16);
    EXPECT_TRUE(w.matches(key));
  }
}

// --- TcamModel ------------------------------------------------------------

TEST(TcamModel, WriteSearchErase) {
  TcamModel t(8, 4);
  EXPECT_EQ(t.valid_count(), 0);
  t.write(2, TernaryWord("1010"));
  t.write(5, TernaryWord("10XX"));
  EXPECT_EQ(t.valid_count(), 2);

  const auto hits = t.search(TernaryWord("1010"));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 2);
  EXPECT_EQ(hits[1], 5);

  EXPECT_EQ(t.search_first(TernaryWord("1011")).value(), 5);
  EXPECT_FALSE(t.search_first(TernaryWord("0000")).has_value());

  t.erase(2);
  EXPECT_FALSE(t.valid(2));
  EXPECT_EQ(t.search(TernaryWord("1010")).size(), 1u);
}

TEST(TcamModel, InvalidRowsNeverMatch) {
  TcamModel t(4, 4);
  t.write(0, TernaryWord::all_x(4));
  t.erase(0);
  EXPECT_TRUE(t.search(TernaryWord("0000")).empty());
}

TEST(TcamModel, FindFreeRow) {
  TcamModel t(3, 2);
  EXPECT_EQ(t.find_free_row().value(), 0);
  t.write(0, TernaryWord("00"));
  t.write(1, TernaryWord("01"));
  EXPECT_EQ(t.find_free_row().value(), 2);
  t.write(2, TernaryWord("10"));
  EXPECT_FALSE(t.find_free_row().has_value());
}

TEST(TcamModel, OutOfRangeThrows) {
  TcamModel t(4, 4);
  EXPECT_THROW(t.write(4, TernaryWord("0000")), std::logic_error);
  EXPECT_THROW(t.write(-1, TernaryWord("0000")), std::logic_error);
  EXPECT_THROW(t.write(0, TernaryWord("00")), std::logic_error);
  EXPECT_THROW(t.search(TernaryWord("00")), std::logic_error);
}

// Property: search result equals brute-force row-by-row matching.
TEST(TcamModel, SearchEqualsBruteForce) {
  util::Rng rng(42);
  TcamModel t(32, 12);
  std::vector<TernaryWord> mirror(32, TernaryWord(12));
  std::vector<bool> valid(32, false);
  for (int i = 0; i < 24; ++i) {
    const int row = rng.uniform_int(0, 31);
    TernaryWord w(12);
    for (std::size_t b = 0; b < 12; ++b) {
      const int v = rng.uniform_int(0, 3);
      w[b] = v == 0 ? Ternary::X : (v % 2 ? Ternary::One : Ternary::Zero);
    }
    t.write(row, w);
    mirror[static_cast<std::size_t>(row)] = w;
    valid[static_cast<std::size_t>(row)] = true;
  }
  for (int trial = 0; trial < 200; ++trial) {
    const auto key = TernaryWord::from_uint(
        static_cast<std::uint64_t>(rng.uniform_int(0, 4095)), 12);
    std::vector<int> expect;
    for (int r = 0; r < 32; ++r)
      if (valid[static_cast<std::size_t>(r)] &&
          mirror[static_cast<std::size_t>(r)].matches(key))
        expect.push_back(r);
    EXPECT_EQ(t.search(key), expect);
  }
}

// --- PriorityEncoder -------------------------------------------------------

TEST(PriorityEncoder, FirstAndAll) {
  const std::vector<bool> m = {false, true, false, true};
  EXPECT_EQ(PriorityEncoder::first_match(m).value(), 1);
  EXPECT_EQ(PriorityEncoder::all_matches(m), (std::vector<int>{1, 3}));
  EXPECT_FALSE(PriorityEncoder::first_match({false, false}).has_value());
  EXPECT_TRUE(PriorityEncoder::all_matches({}).empty());
}

TEST(PriorityEncoder, TopK) {
  const std::vector<bool> m = {true, false, true, true};
  EXPECT_EQ(PriorityEncoder::top_k(m, 2), (std::vector<int>{0, 2}));
  EXPECT_EQ(PriorityEncoder::top_k(m, 0), (std::vector<int>{}));
  EXPECT_EQ(PriorityEncoder::top_k(m, 10), (std::vector<int>{0, 2, 3}));
}

TEST(PriorityEncoder, FromIndicesRoundTrip) {
  const std::vector<int> hits = {0, 3, 7};
  const auto v = PriorityEncoder::from_indices(hits, 8);
  EXPECT_EQ(PriorityEncoder::all_matches(v), hits);
  EXPECT_THROW(PriorityEncoder::from_indices({8}, 8), std::logic_error);
}

// --- EnergyModel ------------------------------------------------------------

TEST(EnergyModel, PaperShapeHolds) {
  const EnergyModel sram(TcamTech::Sram16T, 64, 64);
  const EnergyModel nem(TcamTech::Nem3T2N, 64, 64);
  const EnergyModel rram(TcamTech::Rram2T2R, 64, 64);
  const EnergyModel fefet(TcamTech::Fefet2F, 64, 64);

  // Write latency: SRAM fastest, NEM ~2 ns, NVMs ~10 ns.
  EXPECT_LT(sram.write_latency(), nem.write_latency());
  EXPECT_LT(nem.write_latency(), rram.write_latency());
  EXPECT_LT(nem.write_latency(), fefet.write_latency());

  // Write energy: NEM < SRAM < FeFET < RRAM.
  EXPECT_LT(nem.write_energy(), sram.write_energy());
  EXPECT_LT(sram.write_energy(), fefet.write_energy());
  EXPECT_LT(fefet.write_energy(), rram.write_energy());

  // Search latency: NEM fastest.
  EXPECT_LT(nem.search_latency(), rram.search_latency());
  EXPECT_LT(rram.search_latency(), fefet.search_latency());
  EXPECT_LT(fefet.search_latency(), sram.search_latency());

  // Search EDP: NEM best overall.
  EXPECT_LT(nem.search_edp(), sram.search_edp());
  EXPECT_LT(nem.search_edp(), rram.search_edp());
  EXPECT_LT(nem.search_edp(), fefet.search_edp());
}

TEST(EnergyModel, OnlyNemNeedsRefresh) {
  EXPECT_TRUE(EnergyModel(TcamTech::Nem3T2N, 64, 64).needs_refresh());
  EXPECT_FALSE(EnergyModel(TcamTech::Sram16T, 64, 64).needs_refresh());
  EXPECT_FALSE(EnergyModel(TcamTech::Rram2T2R, 64, 64).needs_refresh());
  EXPECT_FALSE(EnergyModel(TcamTech::Fefet2F, 64, 64).needs_refresh());
}

TEST(EnergyModel, EnergyScalesWithGeometry) {
  const EnergyModel small(TcamTech::Nem3T2N, 32, 32);
  const EnergyModel big(TcamTech::Nem3T2N, 64, 64);
  EXPECT_NEAR(big.write_energy() / small.write_energy(), 4.0, 1e-9);
  EXPECT_NEAR(big.search_latency() / small.search_latency(), 2.0, 1e-9);
  EXPECT_NEAR(big.refresh_energy() / small.refresh_energy(), 4.0, 1e-9);
}

TEST(EnergyModel, RefreshPowerIsNanowattScale) {
  const EnergyModel nem(TcamTech::Nem3T2N, 64, 64);
  EXPECT_GT(nem.refresh_power(), 1e-9);
  EXPECT_LT(nem.refresh_power(), 1e-6);
}

// --- DynamicTcam -------------------------------------------------------------

TEST(DynamicTcam, BasicWriteSearch) {
  DynamicTcam t(TcamTech::Nem3T2N, 8, 8);
  t.write(1, TernaryWord("1010XXXX"));
  const auto hits = t.search(TernaryWord("10101111"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(t.ledger().writes, 1u);
  EXPECT_EQ(t.ledger().searches, 1u);
  EXPECT_GT(t.ledger().energy, 0.0);
}

TEST(DynamicTcam, AutoRefreshPreservesData) {
  DynamicTcam t(TcamTech::Nem3T2N, 4, 4, /*auto_refresh=*/true);
  t.write(0, TernaryWord("1100"));
  // Advance well past many retention periods.
  t.advance(1e-3);  // 1 ms ≈ 37 retention periods
  EXPECT_TRUE(t.live(0));
  EXPECT_EQ(t.search(TernaryWord("1100")).size(), 1u);
  EXPECT_GT(t.ledger().refreshes, 30u);
  EXPECT_EQ(t.ledger().retention_losses, 0u);
}

TEST(DynamicTcam, DataDecaysWithoutRefresh) {
  DynamicTcam t(TcamTech::Nem3T2N, 4, 4, /*auto_refresh=*/false);
  t.write(0, TernaryWord("1100"));
  const double retention = t.costs().retention_time();
  t.advance(retention * 0.9);
  EXPECT_TRUE(t.live(0));
  EXPECT_EQ(t.search(TernaryWord("1100")).size(), 1u);
  t.advance(retention * 0.2);
  EXPECT_FALSE(t.live(0));
  EXPECT_TRUE(t.search(TernaryWord("1100")).empty());
  EXPECT_EQ(t.ledger().retention_losses, 1u);
}

TEST(DynamicTcam, ManualOneShotRefreshRearmsAllRows) {
  DynamicTcam t(TcamTech::Nem3T2N, 4, 4, /*auto_refresh=*/false);
  t.write(0, TernaryWord("0000"));
  t.write(1, TernaryWord("1111"));
  const double retention = t.costs().retention_time();
  t.advance(retention * 0.8);
  t.one_shot_refresh();
  t.advance(retention * 0.8);  // would have decayed without the refresh
  EXPECT_TRUE(t.live(0));
  EXPECT_TRUE(t.live(1));
  EXPECT_EQ(t.ledger().refreshes, 1u);
}

TEST(DynamicTcam, RowRefreshOnlyRearmsThatRow) {
  DynamicTcam t(TcamTech::Nem3T2N, 4, 4, /*auto_refresh=*/false);
  t.write(0, TernaryWord("0000"));
  t.write(1, TernaryWord("1111"));
  const double retention = t.costs().retention_time();
  t.advance(retention * 0.9);
  t.refresh_row(0);
  t.advance(retention * 0.5);
  EXPECT_TRUE(t.live(0));
  EXPECT_FALSE(t.live(1));
}

TEST(DynamicTcam, StaticTechnologyNeverDecays) {
  DynamicTcam t(TcamTech::Sram16T, 4, 4, /*auto_refresh=*/false);
  t.write(0, TernaryWord("1010"));
  t.advance(10.0);  // ten seconds
  EXPECT_TRUE(t.live(0));
  EXPECT_EQ(t.ledger().refreshes, 0u);
}

TEST(DynamicTcam, ClockAdvancesWithOperations) {
  DynamicTcam t(TcamTech::Nem3T2N, 4, 4);
  const double t0 = t.now();
  t.write(0, TernaryWord("0000"));
  EXPECT_GT(t.now(), t0);
  const double t1 = t.now();
  t.search(TernaryWord("0000"));
  EXPECT_GT(t.now(), t1);
}

TEST(DynamicTcam, RefreshEnergyAccumulates) {
  DynamicTcam t(TcamTech::Nem3T2N, 64, 64);
  t.write(0, TernaryWord::all_x(64));
  const double e0 = t.ledger().energy;
  t.advance(t.costs().retention_time() * 10.5);
  EXPECT_GE(t.ledger().refreshes, 10u);
  EXPECT_GT(t.ledger().energy, e0);
}

}  // namespace
