#include <gtest/gtest.h>

#include "arch/AssocCache.h"
#include "arch/LpmTable.h"
#include "arch/PacketClassifier.h"
#include "arch/RefreshController.h"
#include "util/Random.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::arch;
using core::TcamTech;

// --- IPv4 helpers ----------------------------------------------------------

TEST(Ipv4, ParseFormatRoundTrip) {
  EXPECT_EQ(parse_ipv4("10.0.0.1"), 0x0A000001u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xFFFFFFFFu);
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
  EXPECT_EQ(format_ipv4(0xC0A80101u), "192.168.1.1");
  EXPECT_EQ(format_ipv4(parse_ipv4("172.16.254.3")), "172.16.254.3");
}

TEST(Ipv4, ParseRejectsGarbage) {
  EXPECT_THROW(parse_ipv4("10.0.0"), std::logic_error);
  EXPECT_THROW(parse_ipv4("10.0.0.300"), std::logic_error);
  EXPECT_THROW(parse_ipv4("ten.zero.zero.one"), std::logic_error);
}

// --- LpmTable ---------------------------------------------------------------

TEST(LpmTable, LongestPrefixWins) {
  LpmTable t(16);
  ASSERT_TRUE(t.insert({parse_ipv4("10.0.0.0"), 8, 100}));
  ASSERT_TRUE(t.insert({parse_ipv4("10.1.0.0"), 16, 200}));
  ASSERT_TRUE(t.insert({parse_ipv4("10.1.2.0"), 24, 300}));

  EXPECT_EQ(t.lookup(parse_ipv4("10.1.2.3")).value().next_hop, 300u);
  EXPECT_EQ(t.lookup(parse_ipv4("10.1.9.9")).value().next_hop, 200u);
  EXPECT_EQ(t.lookup(parse_ipv4("10.9.9.9")).value().next_hop, 100u);
  EXPECT_FALSE(t.lookup(parse_ipv4("11.0.0.1")).has_value());
}

TEST(LpmTable, DefaultRouteCatchesAll) {
  LpmTable t(4);
  ASSERT_TRUE(t.insert({0, 0, 1}));  // 0.0.0.0/0
  EXPECT_EQ(t.lookup(parse_ipv4("8.8.8.8")).value().next_hop, 1u);
  ASSERT_TRUE(t.insert({parse_ipv4("8.8.8.0"), 24, 2}));
  EXPECT_EQ(t.lookup(parse_ipv4("8.8.8.8")).value().next_hop, 2u);
  EXPECT_EQ(t.lookup(parse_ipv4("9.9.9.9")).value().next_hop, 1u);
}

TEST(LpmTable, InsertNormalizesHostBits) {
  LpmTable t(4);
  ASSERT_TRUE(t.insert({parse_ipv4("192.168.1.77"), 24, 5}));
  const auto r = t.lookup(parse_ipv4("192.168.1.200"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->prefix, parse_ipv4("192.168.1.0"));
}

TEST(LpmTable, ReplaceExistingPrefix) {
  LpmTable t(4);
  ASSERT_TRUE(t.insert({parse_ipv4("10.0.0.0"), 8, 1}));
  ASSERT_TRUE(t.insert({parse_ipv4("10.0.0.0"), 8, 9}));
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.lookup(parse_ipv4("10.5.5.5")).value().next_hop, 9u);
}

TEST(LpmTable, RemoveRestoresShorterMatch) {
  LpmTable t(8);
  ASSERT_TRUE(t.insert({parse_ipv4("10.0.0.0"), 8, 1}));
  ASSERT_TRUE(t.insert({parse_ipv4("10.1.0.0"), 16, 2}));
  EXPECT_EQ(t.lookup(parse_ipv4("10.1.1.1")).value().next_hop, 2u);
  ASSERT_TRUE(t.remove(parse_ipv4("10.1.0.0"), 16));
  EXPECT_EQ(t.lookup(parse_ipv4("10.1.1.1")).value().next_hop, 1u);
  EXPECT_FALSE(t.remove(parse_ipv4("10.1.0.0"), 16));
}

TEST(LpmTable, CapacityEnforced) {
  LpmTable t(2);
  EXPECT_TRUE(t.insert({parse_ipv4("1.0.0.0"), 8, 1}));
  EXPECT_TRUE(t.insert({parse_ipv4("2.0.0.0"), 8, 2}));
  EXPECT_FALSE(t.insert({parse_ipv4("3.0.0.0"), 8, 3}));
  EXPECT_EQ(t.size(), 2);
}

TEST(LpmTable, LedgerTracksOperations) {
  LpmTable t(8);
  t.insert({parse_ipv4("10.0.0.0"), 8, 1});
  t.lookup(parse_ipv4("10.0.0.1"));
  t.lookup(parse_ipv4("10.0.0.2"));
  EXPECT_GE(t.ledger().writes, 1u);
  EXPECT_EQ(t.ledger().searches, 2u);
  EXPECT_GT(t.ledger().energy, 0.0);
}

// Property: LPM against a brute-force reference on random route sets.
TEST(LpmTable, MatchesBruteForceReference) {
  util::Rng rng(7);
  LpmTable t(64);
  std::vector<Route> routes;
  for (int i = 0; i < 40; ++i) {
    Route r;
    r.length = rng.uniform_int(4, 28);
    const auto raw = static_cast<std::uint32_t>(rng.engine()());
    r.prefix = r.length == 0 ? 0 : (raw & ~((1u << (32 - r.length)) - 1u));
    r.next_hop = static_cast<std::uint32_t>(i + 1);
    if (t.insert(r)) {
      // Mirror replacement semantics.
      bool replaced = false;
      for (auto& e : routes)
        if (e.prefix == r.prefix && e.length == r.length) {
          e = r;
          replaced = true;
        }
      if (!replaced) routes.push_back(r);
    }
  }
  for (int trial = 0; trial < 300; ++trial) {
    const auto addr = static_cast<std::uint32_t>(rng.engine()());
    const Route* best = nullptr;
    for (const auto& r : routes) {
      const std::uint32_t mask =
          r.length == 0 ? 0u : ~((1u << (32 - r.length)) - 1u);
      if ((addr & mask) == r.prefix && (!best || r.length > best->length))
        best = &r;
    }
    const auto got = t.lookup(addr);
    if (best == nullptr) {
      EXPECT_FALSE(got.has_value()) << format_ipv4(addr);
    } else {
      ASSERT_TRUE(got.has_value()) << format_ipv4(addr);
      EXPECT_EQ(got->length, best->length) << format_ipv4(addr);
    }
  }
}

// --- Port-range expansion -----------------------------------------------

TEST(PortRange, ExactPortIsOnePrefix) {
  const auto p = expand_port_range(80, 80);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].first, 80);
  EXPECT_EQ(p[0].second, 16);
}

TEST(PortRange, FullRangeIsOneWildcard) {
  const auto p = expand_port_range(0, 0xffff);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].second, 0);
}

TEST(PortRange, AlignedPowerOfTwoBlock) {
  const auto p = expand_port_range(1024, 2047);  // exactly 1024..2047
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].first, 1024);
  EXPECT_EQ(p[0].second, 6);  // 10 wildcard bits
}

TEST(PortRange, CoversExactlyTheRange) {
  util::Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const int lo = rng.uniform_int(0, 65535);
    const int hi = rng.uniform_int(lo, 65535);
    const auto prefixes =
        expand_port_range(static_cast<std::uint16_t>(lo),
                          static_cast<std::uint16_t>(hi));
    // Each port in [lo, hi] is covered exactly once; outside ports never.
    auto covered = [&](int port) {
      int count = 0;
      for (const auto& [val, len] : prefixes) {
        const int wild = 16 - len;
        const int base = val >> wild << wild;
        if (port >= base && port < base + (1 << wild)) ++count;
      }
      return count;
    };
    for (int probe : {lo, hi, (lo + hi) / 2}) EXPECT_EQ(covered(probe), 1);
    if (lo > 0) {
      EXPECT_EQ(covered(lo - 1), 0);
    }
    if (hi < 65535) {
      EXPECT_EQ(covered(hi + 1), 0);
    }
  }
}

TEST(PortRange, WorstCaseSizeIsBounded) {
  // Classic result: a 16-bit range expands to at most 2*16−2 = 30 prefixes.
  const auto p = expand_port_range(1, 65534);
  EXPECT_LE(p.size(), 30u);
  EXPECT_GT(p.size(), 20u);
}

// --- PacketClassifier --------------------------------------------------------

PacketHeader make_pkt(const std::string& src, const std::string& dst,
                      std::uint8_t proto, std::uint16_t port) {
  return {parse_ipv4(src), parse_ipv4(dst), proto, port};
}

TEST(PacketClassifier, FirstRuleWins) {
  PacketClassifier c(64);
  ASSERT_GT(c.add_rule({parse_ipv4("10.0.0.0"), 8, 0, 0, 6, 80, 80, "web"}), 0);
  ASSERT_GT(c.add_rule({parse_ipv4("10.0.0.0"), 8, 0, 0, std::nullopt, 0,
                        0xffff, "intranet"}), 0);
  ASSERT_GT(c.add_rule({0, 0, 0, 0, std::nullopt, 0, 0xffff, "drop"}), 0);

  EXPECT_EQ(c.classify(make_pkt("10.1.1.1", "8.8.8.8", 6, 80)).value(), "web");
  EXPECT_EQ(c.classify(make_pkt("10.1.1.1", "8.8.8.8", 6, 443)).value(),
            "intranet");
  EXPECT_EQ(c.classify(make_pkt("11.1.1.1", "8.8.8.8", 6, 80)).value(), "drop");
}

TEST(PacketClassifier, ProtocolFilter) {
  PacketClassifier c(16);
  ASSERT_GT(c.add_rule({0, 0, 0, 0, 17, 53, 53, "dns-udp"}), 0);
  EXPECT_EQ(c.classify(make_pkt("1.1.1.1", "2.2.2.2", 17, 53)).value(),
            "dns-udp");
  EXPECT_FALSE(c.classify(make_pkt("1.1.1.1", "2.2.2.2", 6, 53)).has_value());
}

TEST(PacketClassifier, PortRangeRuleUsesMultipleRows) {
  PacketClassifier c(64);
  const int rows = c.add_rule({0, 0, 0, 0, 6, 1000, 1999, "range"});
  EXPECT_GT(rows, 1);
  EXPECT_EQ(c.rows_used(), rows);
  EXPECT_EQ(c.classify(make_pkt("1.1.1.1", "2.2.2.2", 6, 1500)).value(),
            "range");
  EXPECT_EQ(c.classify(make_pkt("1.1.1.1", "2.2.2.2", 6, 1000)).value(),
            "range");
  EXPECT_EQ(c.classify(make_pkt("1.1.1.1", "2.2.2.2", 6, 1999)).value(),
            "range");
  EXPECT_FALSE(c.classify(make_pkt("1.1.1.1", "2.2.2.2", 6, 2000)).has_value());
  EXPECT_FALSE(c.classify(make_pkt("1.1.1.1", "2.2.2.2", 6, 999)).has_value());
}

TEST(PacketClassifier, RejectsWhenFull) {
  PacketClassifier c(2);
  EXPECT_GT(c.add_rule({0, 0, 0, 0, 6, 80, 80, "a"}), 0);
  EXPECT_GT(c.add_rule({0, 0, 0, 0, 6, 81, 81, "b"}), 0);
  EXPECT_EQ(c.add_rule({0, 0, 0, 0, 6, 82, 82, "c"}), 0);
  EXPECT_EQ(c.rule_count(), 2);
}

TEST(PacketClassifier, DstPrefixMatch) {
  PacketClassifier c(16);
  ASSERT_GT(c.add_rule({0, 0, parse_ipv4("192.168.0.0"), 16, std::nullopt, 0,
                        0xffff, "lan"}), 0);
  EXPECT_TRUE(c.classify(make_pkt("1.1.1.1", "192.168.55.3", 6, 22)).has_value());
  EXPECT_FALSE(c.classify(make_pkt("1.1.1.1", "192.169.0.1", 6, 22)).has_value());
}

// --- AssocCache ---------------------------------------------------------------

TEST(AssocCache, HitAfterMiss) {
  AssocCache cache(8, 64);
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1008));  // same 64 B line
  EXPECT_FALSE(cache.access(0x2000));
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(AssocCache, LruEviction) {
  AssocCache cache(2, 64);
  cache.access(0x0000);  // miss, fill way A
  cache.access(0x1000);  // miss, fill way B
  cache.access(0x0000);  // hit — A is now MRU
  cache.access(0x2000);  // miss — evicts B (LRU)
  EXPECT_TRUE(cache.contains(0x0000));
  EXPECT_FALSE(cache.contains(0x1000));
  EXPECT_TRUE(cache.contains(0x2000));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(AssocCache, InvalidateRemovesLine) {
  AssocCache cache(4, 64);
  cache.access(0x4000);
  EXPECT_TRUE(cache.invalidate(0x4000));
  EXPECT_FALSE(cache.contains(0x4000));
  EXPECT_FALSE(cache.invalidate(0x4000));
}

TEST(AssocCache, FullyAssociativeNoConflictMisses) {
  // 8 ways, 8 distinct lines accessed cyclically: after the first pass,
  // everything hits forever (no conflict evictions).
  AssocCache cache(8, 64);
  for (int pass = 0; pass < 3; ++pass)
    for (int i = 0; i < 8; ++i) cache.access(static_cast<std::uint64_t>(i) << 6);
  EXPECT_EQ(cache.stats().hits, 16u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(AssocCache, RejectsBadLineSize) {
  EXPECT_THROW(AssocCache(4, 48), std::logic_error);
}

TEST(AssocCache, LedgerCountsTcamOps) {
  AssocCache cache(4, 64);
  cache.access(0x1000);
  cache.access(0x1000);
  EXPECT_GE(cache.ledger().searches, 2u);
  EXPECT_GE(cache.ledger().writes, 1u);
}

// --- RefreshController -------------------------------------------------------

TEST(RefreshSim, OneShotBeatsRowByRowOnStalls) {
  RefreshSimConfig cfg;
  cfg.sim_time = 300e-6;
  cfg.search_rate_hz = 50e6;
  cfg.seed = 3;

  cfg.policy = RefreshPolicy::OneShot;
  const auto osr = simulate_refresh_interference(cfg);
  cfg.policy = RefreshPolicy::RowByRow;
  const auto row = simulate_refresh_interference(cfg);

  EXPECT_EQ(osr.searches_issued, row.searches_issued);  // same seed/trace
  EXPECT_LT(osr.refresh_busy_time, row.refresh_busy_time);
  EXPECT_LT(osr.refresh_energy, row.refresh_energy);
  EXPECT_LE(osr.avg_search_wait(), row.avg_search_wait());
  EXPECT_LT(osr.refresh_ops, row.refresh_ops);
}

TEST(RefreshSim, NonePolicyHasNoRefreshCost) {
  RefreshSimConfig cfg;
  cfg.policy = RefreshPolicy::None;
  cfg.sim_time = 100e-6;
  const auto r = simulate_refresh_interference(cfg);
  EXPECT_EQ(r.refresh_ops, 0u);
  EXPECT_EQ(r.refresh_energy, 0.0);
  EXPECT_EQ(r.refresh_busy_time, 0.0);
}

TEST(RefreshSim, AllSearchesServed) {
  RefreshSimConfig cfg;
  cfg.policy = RefreshPolicy::OneShot;
  cfg.sim_time = 100e-6;
  cfg.search_rate_hz = 10e6;
  const auto r = simulate_refresh_interference(cfg);
  EXPECT_EQ(r.searches_served, r.searches_issued);
  EXPECT_GT(r.searches_issued, 500u);
}

TEST(RefreshSim, RowByRowOpsCountMatchesRows) {
  RefreshSimConfig cfg;
  cfg.policy = RefreshPolicy::RowByRow;
  cfg.rows = 64;
  cfg.sim_time = 267e-6;  // ~10 retention periods at 26.7 µs
  cfg.search_rate_hz = 1e6;
  const auto r = simulate_refresh_interference(cfg);
  // ~64 row ops per retention period.
  EXPECT_GT(r.refresh_ops, 550u);
  EXPECT_LT(r.refresh_ops, 700u);
}

TEST(RefreshSim, PolicyNames) {
  EXPECT_STREQ(policy_name(RefreshPolicy::OneShot), "one-shot");
  EXPECT_STREQ(policy_name(RefreshPolicy::RowByRow), "row-by-row");
  EXPECT_STREQ(policy_name(RefreshPolicy::None), "none");
}

}  // namespace
