// Hierarchical-IR acceptance suite (ctest label: hier).
//
// Covers the elaborate-once contract end to end: every row design's
// template-path search must reproduce the legacy flat builder's metrics,
// a replayed search must not rebuild or re-stamp anything, and a textual
// .subckt deck must parse, elaborate, pass ERC and simulate.
#include <gtest/gtest.h>

#include <cmath>

#include "devices/NemRelay.h"
#include "erc/Checker.h"
#include "fault/FaultInjector.h"
#include "hier/Elaborate.h"
#include "netlist/Netlist.h"
#include "spice/Transient.h"
#include "tcam/Rram2T2RRow.h"
#include "tcam/TcamRow.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::tcam;
using core::Ternary;
using core::TernaryWord;

constexpr int kWidth = 8;
constexpr int kRows = 64;

// Scoped override of the process-wide template-path default, so tests can
// A/B the two builders without leaking state into each other.
class HierMode {
 public:
  explicit HierMode(bool on) : prev_(hier::default_enabled()) {
    hier::set_default_enabled(on);
  }
  ~HierMode() { hier::set_default_enabled(prev_); }

 private:
  bool prev_;
};

// |a - b| within 0.1% of |b| (or both ~0).
void expect_close(double a, double b, const char* what) {
  const double tol = 1e-3 * std::max(std::abs(b), 1e-30);
  EXPECT_NEAR(a, b, tol) << what << ": template=" << a << " flat=" << b;
}

void expect_equivalent(const SearchMetrics& tpl, const SearchMetrics& flat) {
  ASSERT_TRUE(tpl.ok) << tpl.note;
  ASSERT_TRUE(flat.ok) << flat.note;
  EXPECT_EQ(tpl.matched, flat.matched);
  expect_close(tpl.latency, flat.latency, "latency");
  expect_close(tpl.energy, flat.energy, "energy");
  // A replayed solve refactorizes on the cached pattern, so the ~nV
  // discharge residue can differ at rounding level; a 1 µV absolute floor
  // keeps the check meaningful against the 1 V signal scale.
  EXPECT_NEAR(tpl.ml_min, flat.ml_min,
              std::max(1e-3 * std::abs(flat.ml_min), 1e-6));
}

class AllKindsHier : public ::testing::TestWithParam<TcamKind> {};

INSTANTIATE_TEST_SUITE_P(
    Designs, AllKindsHier,
    ::testing::Values(TcamKind::Sram16T, TcamKind::Nem3T2N, TcamKind::Rram2T2R,
                      TcamKind::Fefet2F, TcamKind::Dtcam5T,
                      TcamKind::Fefet4T2F, TcamKind::Mram4T2M),
    [](const auto& param_info) {
      switch (param_info.param) {
        case TcamKind::Sram16T: return "Sram16T";
        case TcamKind::Nem3T2N: return "Nem3T2N";
        case TcamKind::Rram2T2R: return "Rram2T2R";
        case TcamKind::Fefet2F: return "Fefet2F";
        case TcamKind::Dtcam5T: return "Dtcam5T";
        case TcamKind::Fefet4T2F: return "Fefet4T2F";
        case TcamKind::Mram4T2M: return "Mram4T2M";
      }
      return "unknown";
    });

TEST_P(AllKindsHier, TemplatePathMatchesFlatPath) {
  const TernaryWord word("10X10010");
  const TernaryWord match_key("10110010");   // X columns are don't-care
  const TernaryWord mismatch_key("00110010");

  SearchMetrics tpl_match, tpl_miss, flat_match, flat_miss;
  {
    HierMode mode(true);
    auto row = make_row(GetParam(), kWidth, kRows);
    row->store(word);
    tpl_match = row->search(match_key);
    tpl_miss = row->search(mismatch_key);
  }
  {
    HierMode mode(false);
    auto row = make_row(GetParam(), kWidth, kRows);
    row->store(word);
    flat_match = row->search(match_key);
    flat_miss = row->search(mismatch_key);
  }
  EXPECT_TRUE(tpl_match.matched);
  EXPECT_FALSE(tpl_miss.matched);
  expect_equivalent(tpl_match, flat_match);
  expect_equivalent(tpl_miss, flat_miss);
}

TEST(HierTemplate, ReplayedSearchRebuildsNothing) {
  HierMode mode(true);
  auto row = make_row(TcamKind::Nem3T2N, kWidth, kRows);
  row->store(TernaryWord("1011X010"));

  const TernaryWord key("10110010");
  const SearchMetrics first = row->search(key);
  ASSERT_TRUE(first.ok) << first.note;

  // After the first search the template exists; replays — same key or a
  // rebound one — must not elaborate a single instance or rebuild the
  // stamp pattern.
  const hier::Stats before = hier::stats();
  const SearchMetrics second = row->search(key);
  const SearchMetrics third = row->search(key);
  const SearchMetrics rebound = row->search(TernaryWord("00110010"));
  const hier::Stats after = hier::stats();

  ASSERT_TRUE(second.ok && third.ok && rebound.ok);
  EXPECT_EQ(after.instances_elaborated, before.instances_elaborated);
  EXPECT_EQ(after.cards_emitted, before.cards_emitted);
  EXPECT_EQ(second.stamp_pattern_builds, third.stamp_pattern_builds);
  EXPECT_EQ(third.stamp_pattern_builds, rebound.stamp_pattern_builds);

  // And the replays still compute the right answers.
  EXPECT_TRUE(second.matched);
  EXPECT_TRUE(third.matched);
  EXPECT_FALSE(rebound.matched);
  EXPECT_NEAR(second.ml_min, third.ml_min, 1e-12);
}

TEST(HierTemplate, StoreOfNewWordRebuildsAndStaysCorrect) {
  HierMode mode(true);
  auto row = make_row(TcamKind::Nem3T2N, kWidth, kRows);
  row->store(TernaryWord("11110000"));
  EXPECT_TRUE(row->search(TernaryWord("11110000")).matched);

  // The ERC rules registered at build time are bound to the stored word;
  // a store() must therefore rebuild the template, not just re-seed it.
  row->store(TernaryWord("00001111"));
  const SearchMetrics m = row->search(TernaryWord("00001111"));
  ASSERT_TRUE(m.ok) << m.note;
  EXPECT_TRUE(m.matched);
  EXPECT_FALSE(row->search(TernaryWord("11110000")).matched);
}

TEST(HierTemplate, WriteTemplateMatchesFlatWrite) {
  const TernaryWord old_word("10110010");
  const TernaryWord new_word("01X01101");

  WriteMetrics tpl, flat;
  {
    HierMode mode(true);
    auto row = make_row(TcamKind::Nem3T2N, kWidth, kRows);
    row->store(old_word);
    tpl = row->write(new_word);
  }
  {
    HierMode mode(false);
    auto row = make_row(TcamKind::Nem3T2N, kWidth, kRows);
    row->store(old_word);
    flat = row->write(new_word);
  }
  ASSERT_TRUE(tpl.ok) << tpl.note;
  ASSERT_TRUE(flat.ok) << flat.note;
  expect_close(tpl.latency, flat.latency, "write latency");
  expect_close(tpl.energy, flat.energy, "write energy");
}

TEST(HierTemplate, ReplayedWriteRebuildsNothing) {
  HierMode mode(true);
  auto row = make_row(TcamKind::Nem3T2N, kWidth, kRows);
  row->store(TernaryWord("10110010"));
  ASSERT_TRUE(row->write(TernaryWord("01001101")).ok);

  const hier::Stats before = hier::stats();
  ASSERT_TRUE(row->write(TernaryWord("1111XXXX")).ok);
  ASSERT_TRUE(row->write(TernaryWord("00000000")).ok);
  const hier::Stats after = hier::stats();
  EXPECT_EQ(after.instances_elaborated, before.instances_elaborated);
  EXPECT_EQ(after.cards_emitted, before.cards_emitted);
}

TEST(HierTemplate, RramVariationFallsBackToFlatBuilder) {
  // Per-search lognormal draws are incompatible with elaborate-once; the
  // row must keep working (via the flat builder) when variation is on.
  HierMode mode(true);
  auto row = make_row(TcamKind::Rram2T2R, kWidth, kRows);
  auto* rram = dynamic_cast<Rram2T2RRow*>(row.get());
  ASSERT_NE(rram, nullptr);
  rram->set_resistance_sigma(0.3);
  row->store(TernaryWord("10110010"));
  const hier::Stats before = hier::stats();
  const SearchMetrics m = row->search(TernaryWord("10110010"));
  const hier::Stats after = hier::stats();
  ASSERT_TRUE(m.ok) << m.note;
  EXPECT_TRUE(m.matched);
  // No template was elaborated for the stochastic path.
  EXPECT_EQ(after.instances_elaborated, before.instances_elaborated);
}

TEST(HierDeck, SubcktDeckParsesErcCleanAndSimulates) {
  // A two-cell relay row: precharged ML, one matching and one mismatching
  // column — the textual twin of the elaborated search templates.
  const auto deck = spice::parse_netlist(
      "two-column NEM relay match test\n"
      ".subckt relay_cell ml sl slb stg1v=0 stg2v=0\n"
      "N1 slb stg1 gs 0 closed\n"
      "N2 sl stg2 gs 0\n"
      "Ms ml gs 0 NMOS w=1.5\n"
      "C1 stg1 0 1f\n"
      "C2 stg2 0 1f\n"
      "* bleeders stand in for the off write transistors' leak path\n"
      "R1 stg1 0 100g\n"
      "R2 stg2 0 100g\n"
      ".ends\n"
      "Vpre ml 0 PWL(0 1 0.2n 1 0.25n 0)\n"
      "Csense ml 0 5f\n"
      "Vsl0 sl0 0 PWL(0 0 0.3n 0 0.32n 1)\n"
      "Vslb0 slb0 0 0\n"
      "Vsl1 sl1 0 0\n"
      "Vslb1 slb1 0 PWL(0 0 0.3n 0 0.32n 1)\n"
      "X0 ml sl0 slb0 relay_cell\n"
      "X1 ml sl1 slb1 relay_cell\n"
      ".ic v(ml)=1 v(x0.stg1)=0.9\n"
      ".tran 10p 2n\n"
      ".print v(ml) v(x0.gs) v(x1.gs)\n"
      ".end\n");
  ASSERT_NE(deck.circuit, nullptr);
  ASSERT_EQ(deck.analysis.kind, spice::ParsedAnalysis::Kind::Tran);
  EXPECT_TRUE(deck.circuit->has_node("x0.stg1"));
  EXPECT_TRUE(deck.circuit->has_node("x1.gs"));

  // Structural lint: the elaborated deck is ERC-clean.
  erc::Checker checker;
  const erc::Report report = checker.run(*deck.circuit);
  EXPECT_FALSE(report.has_errors()) << report.to_string();

  const auto opts =
      spice::step_defaults(deck.analysis.tran_t_end, deck.analysis.tran_dt_max);
  const auto result = spice::run_transient(*deck.circuit, opts);
  ASSERT_TRUE(result.finished) << result.failure;
}

TEST(HierFault, InjectorUnderstandsScopedRelayNames) {
  // The elaborated templates name relays "Xcell<col>.N1"; the injector
  // must hit them exactly as it hits the flat "N1_<col>" names.
  spice::Circuit ckt;
  const auto g = ckt.ground();
  auto& hier_n1 = ckt.add<devices::NemRelay>("Xcell3.N1", g, ckt.node("a"),
                                             ckt.node("b"), g);
  auto& hier_n2 = ckt.add<devices::NemRelay>("Xcell3.N2", g, ckt.node("c"),
                                             ckt.node("d"), g);
  auto& other_col = ckt.add<devices::NemRelay>("Xcell2.N1", g, ckt.node("e"),
                                               ckt.node("f"), g);

  fault::FaultInjector injector;
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::RelayStuckClosed;
  spec.col = 3;
  spec.on_n1 = true;
  EXPECT_EQ(injector.apply(ckt, spec), 1);
  EXPECT_TRUE(hier_n1.stuck());
  EXPECT_FALSE(hier_n2.stuck());
  EXPECT_FALSE(other_col.stuck());

  spec.on_n1 = false;
  EXPECT_EQ(injector.apply(ckt, spec), 1);
  EXPECT_TRUE(hier_n2.stuck());
}

}  // namespace
