// Multi-rate lifetime co-simulation (lifetime/LifetimeEngine) and the
// degradation-feedback plumbing around it: multi-rate vs brute-force
// agreement, seed determinism across thread counts, spare-row remap
// extending NEM lifetime, refresh-window loss, FaultAwareness
// normalization, BankedTcam retirement × fault-aware refresh, and the
// physical saturation bounds on the device aging hooks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "arch/BankedTcam.h"
#include "arch/RefreshController.h"
#include "devices/Mosfet.h"
#include "devices/NemRelay.h"
#include "fault/FaultInjector.h"
#include "fault/FaultModel.h"
#include "lifetime/Degradation.h"
#include "lifetime/Hazard.h"
#include "lifetime/LifetimeEngine.h"
#include "spice/Circuit.h"
#include "util/Sweep.h"
#include "util/Units.h"

namespace nemtcam {
namespace {

using arch::BankedTcam;
using arch::FaultAwareness;
using lifetime::EventKind;
using lifetime::LifetimeConfig;
using lifetime::LifetimeEngine;
using lifetime::LifetimeResult;

// Short-horizon config with forced state changes: two faults land inside
// a 1 ms window so the multi-rate engine has segment boundaries to get
// right (the acceptance-criterion setup for brute-force agreement).
LifetimeConfig short_horizon_config() {
  LifetimeConfig cfg;
  cfg.tech = core::TcamTech::Nem3T2N;
  cfg.rows = 8;
  cfg.width = 8;
  cfg.spare_rows = 2;
  cfg.horizon = 1e-3;
  cfg.traffic.search_rate_hz = 2e4;  // 20 searches over the window
  cfg.traffic.write_rate_hz = 1e3;
  cfg.seed = 7;
  cfg.max_circuit_checks = 8;
  cfg.forced_faults.push_back(
      {0.3e-3, fault::FaultSpec{2, 1, fault::FaultKind::ContactDrift, true,
                               true}});
  cfg.forced_faults.push_back(
      {0.7e-3, fault::FaultSpec{2, 3, fault::FaultKind::MosVthOutlier, true,
                               false}});
  return cfg;
}

TEST(LifetimeEngine, MultiRateMatchesBruteForceWithinOnePercent) {
  LifetimeConfig cfg = short_horizon_config();
  LifetimeResult multi = LifetimeEngine(cfg).run();

  cfg.brute_force = true;
  LifetimeResult brute = LifetimeEngine(cfg).run();

  ASSERT_GT(multi.searches, 0.0);
  EXPECT_EQ(multi.searches, brute.searches);
  EXPECT_EQ(multi.writes, brute.writes);
  ASSERT_GT(brute.search_energy, 0.0);
  EXPECT_NEAR(multi.search_energy / brute.search_energy, 1.0, 0.01);
  EXPECT_NEAR(multi.search_time / brute.search_time, 1.0, 0.01);
  if (brute.refresh_energy > 0.0) {
    EXPECT_NEAR(multi.refresh_energy / brute.refresh_energy, 1.0, 0.01);
  }
  // Both modes saw the same forced state changes.
  const auto count = [](const LifetimeResult& r, EventKind k) {
    return std::count_if(r.events.begin(), r.events.end(),
                         [k](const auto& e) { return e.kind == k; });
  };
  EXPECT_EQ(count(multi, EventKind::Forced), 2);
  EXPECT_EQ(count(multi, EventKind::Forced), count(brute, EventKind::Forced));
}

TEST(LifetimeEngine, BitDeterministicForFixedSeed) {
  const LifetimeConfig cfg = short_horizon_config();
  const LifetimeResult a = LifetimeEngine(cfg).run();
  const LifetimeResult b = LifetimeEngine(cfg).run();
  EXPECT_EQ(a.search_energy, b.search_energy);
  EXPECT_EQ(a.search_time, b.search_time);
  EXPECT_EQ(a.refresh_energy, b.refresh_energy);
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.circuit_checks, b.circuit_checks);
}

TEST(LifetimeEngine, SweepResultsIdenticalAtAnyThreadCount) {
  // Year-scale runs, four sweep points, executed serially and on four
  // threads: each point is seeded from its index only, so the numbers
  // must be bit-identical (run_sweep determinism contract).
  const auto body = [](std::size_t i, std::uint64_t seed) {
    LifetimeConfig cfg;
    cfg.tech = core::TcamTech::Nem3T2N;
    cfg.rows = 12;
    cfg.width = 8;
    cfg.spare_rows = 2;
    cfg.horizon = 2.0 * units::year;
    cfg.traffic.write_rate_hz = 1e4 * static_cast<double>(i + 1);
    cfg.seed = seed;
    cfg.max_circuit_checks = 2;
    return LifetimeEngine(cfg).run();
  };
  util::SweepOptions serial;
  serial.threads = 1;
  util::SweepOptions wide;
  wide.threads = 4;
  const auto a = util::run_sweep_guarded<LifetimeResult>(4, body, serial);
  const auto b = util::run_sweep_guarded<LifetimeResult>(4, body, wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok && b[i].ok);
    EXPECT_EQ(a[i].value.t_death, b[i].value.t_death);
    EXPECT_EQ(a[i].value.search_energy, b[i].value.search_energy);
    EXPECT_EQ(a[i].value.refresh_energy, b[i].value.refresh_energy);
    EXPECT_EQ(a[i].value.events.size(), b[i].value.events.size());
  }
}

LifetimeConfig nem_wearout_config(bool remap) {
  LifetimeConfig cfg;
  cfg.tech = core::TcamTech::Nem3T2N;
  cfg.rows = 16;
  cfg.width = 16;
  cfg.spare_rows = 3;
  cfg.horizon = 5.0 * units::year;
  cfg.traffic.write_rate_hz = 1e5;
  cfg.seed = 11;
  cfg.remap_enabled = remap;
  cfg.max_circuit_checks = 2;
  return cfg;
}

TEST(LifetimeEngine, SpareRowRemapExtendsNemLifetime) {
  const LifetimeResult on = LifetimeEngine(nem_wearout_config(true)).run();
  const LifetimeResult off = LifetimeEngine(nem_wearout_config(false)).run();
  ASSERT_TRUE(off.died);
  ASSERT_TRUE(on.died);  // spare pool is finite: the array still dies
  EXPECT_GT(on.t_death, off.t_death);
  EXPECT_GT(on.rows_retired, 0);
  EXPECT_EQ(on.spares_left, 0);
  EXPECT_EQ(off.rows_retired, 0);
  // Remap-off dies at its first hard row failure.
  EXPECT_EQ(off.t_death, off.t_first_dead);
}

TEST(LifetimeEngine, RefreshWindowLossTriggersWearRunaway) {
  const LifetimeResult r = LifetimeEngine(nem_wearout_config(true)).run();
  ASSERT_GT(r.t_window_lost, 0.0);
  const auto it =
      std::find_if(r.events.begin(), r.events.end(), [](const auto& e) {
        return e.kind == EventKind::WindowLost;
      });
  ASSERT_NE(it, r.events.end());
  // Window loss happens when aged V_PI reaches V_R: at the default drift
  // law that is wear (v_pi - v_refresh) / drift_per_wear = 0.5 exactly.
  EXPECT_NEAR(it->wear, 0.5, 1e-9);
  // From then on one-shot refresh actuates THAT row: its wear runs away
  // (the refresh rate is orders of magnitude above any write rate), so
  // the same physical row reaches a hard failure shortly after — even
  // though other, hotter rows may have died from traffic much earlier.
  const int row = it->physical_row;
  const auto dead = std::find_if(
      it, r.events.end(), [row](const auto& e) {
        return e.physical_row == row && (e.kind == EventKind::DeadOnset ||
                                         e.kind == EventKind::FunctionalDead);
      });
  ASSERT_NE(dead, r.events.end());
  EXPECT_GT(dead->t, it->t);
  EXPECT_LT(dead->t - it->t, 0.1 * it->t);
}

TEST(FaultAwareness, NormalizationDedupesAndAppliesPrecedence) {
  FaultAwareness raw;
  raw.weak_rows = {5, 3, 3, 9, -1, 64, 7};   // dupes, out of range
  raw.dead_rows = {7, 2, 2, 80};             // 7 is also weak
  raw.retired_rows = {9, 2, 2, -3};          // 9 weak, 2 dead, dupes
  const FaultAwareness n = raw.normalized(64);
  // Retired wins over dead wins over weak.
  EXPECT_EQ(n.retired_rows, (std::vector<int>{2, 9}));
  EXPECT_EQ(n.dead_rows, (std::vector<int>{7}));
  EXPECT_EQ(n.weak_rows, (std::vector<int>{3, 5}));
}

TEST(FaultAwareness, RetiredRowsLeaveTheRefreshSchedule) {
  arch::RefreshSimConfig cfg;
  cfg.rows = 8;
  cfg.width = 8;
  cfg.policy = arch::RefreshPolicy::RowByRow;
  cfg.poisson_arrivals = false;
  cfg.sim_time = 5e-3;  // ~190 retention periods: schedule quantization ≪ 1%

  const arch::RefreshSimResult healthy =
      arch::simulate_refresh_interference(cfg);
  cfg.faults.retired_rows = {6, 7};
  const arch::RefreshSimResult retired =
      arch::simulate_refresh_interference(cfg);
  EXPECT_EQ(retired.rows_excluded, 2);
  ASSERT_GT(healthy.refresh_energy, 0.0);
  // Row-by-row: two of eight rows dropped from the schedule.
  EXPECT_LT(retired.refresh_energy, healthy.refresh_energy);
  EXPECT_NEAR(retired.refresh_energy / healthy.refresh_energy, 6.0 / 8.0,
              0.02);
}

// Satellite: spare-row retirement × fault-aware refresh. A retired row
// must drop out of the refresh schedule entirely; its replacement (the
// spare now holding the data) inherits the weak-row period if the spare
// itself is degraded.
TEST(BankedTcam, RetirementFeedsFaultAwareRefresh) {
  BankedTcam tcam(core::TcamTech::Nem3T2N, /*banks=*/1, /*rows_per_bank=*/8,
                  /*width=*/8, /*spare_rows=*/2);
  ASSERT_EQ(tcam.capacity(), 8);
  ASSERT_EQ(tcam.logical_capacity(), 6);

  // Physical-space campaign result: row 1 has a hard fault, row 2 and
  // spare row 6 leak.
  fault::FaultReport report;
  report.rows = 8;
  report.width = 8;
  report.faults = {
      {1, 0, fault::FaultKind::RelayStuckClosed, true, true},
      {2, 2, fault::FaultKind::GateLeak, true, true},
      {6, 4, fault::FaultKind::GateLeak, true, true},
  };

  // Before retirement: unused spares are out of the schedule, row 1 dead,
  // rows 2 and 6... 6 is an unused spare, so retired wins over weak.
  FaultAwareness before = tcam.refresh_awareness(report);
  EXPECT_EQ(before.retired_rows, (std::vector<int>{6, 7}));
  EXPECT_EQ(before.dead_rows, (std::vector<int>{1}));
  EXPECT_EQ(before.weak_rows, (std::vector<int>{2}));

  // Retire logical row 1: its data migrates to physical row 6 (first
  // spare). The dead physical row 1 is now retired — out of the schedule
  // entirely — and the replacement row 6 surfaces with its own gate-leak
  // fault, inheriting the weak-row period.
  ASSERT_TRUE(tcam.retire_row(1));
  EXPECT_TRUE(tcam.retired_physical(1));
  EXPECT_EQ(tcam.physical_row(1), 6);
  EXPECT_EQ(tcam.logical_at(6), 1);

  FaultAwareness after = tcam.refresh_awareness(report);
  EXPECT_EQ(after.retired_rows, (std::vector<int>{1, 7}));
  EXPECT_TRUE(after.dead_rows.empty());
  EXPECT_EQ(after.weak_rows, (std::vector<int>{2, 6}));

  // And the schedule actually honors it: the retired row costs nothing,
  // the weak replacement costs supplemental refreshes.
  arch::RefreshSimConfig cfg;
  cfg.rows = tcam.capacity();
  cfg.width = 8;
  cfg.policy = arch::RefreshPolicy::OneShot;
  cfg.poisson_arrivals = false;
  cfg.sim_time = 100e-6;
  cfg.faults = after;
  const arch::RefreshSimResult sim = arch::simulate_refresh_interference(cfg);
  EXPECT_EQ(sim.rows_excluded, 2);
  EXPECT_GT(sim.weak_refresh_ops, 0u);
}

// Regression: the lifetime engine re-injects a row's accumulated fault
// list into its persistent measurement template on every circuit check,
// so every injector hook must be absolute. A relative Vth shift here made
// aged delay/energy (and the FunctionalDead verdict) functions of
// max_circuit_checks for every technology whose wear/leak channels map to
// MosVthOutlier.
TEST(FaultInjector, ReapplyingAFaultListIsIdempotent) {
  spice::Circuit c;
  auto& mos =
      c.add<devices::Mosfet>("M1_3", c.node("d"), c.node("g"), c.ground(),
                             devices::MosfetParams::nmos_lp());
  auto& relay = c.add<devices::NemRelay>("N1_3", c.node("rd"), c.node("rs"),
                                         c.node("rg"), c.ground());
  const fault::FaultInjector injector;
  const std::vector<fault::FaultSpec> faults = {
      {0, 3, fault::FaultKind::MosVthOutlier, true, true},
      {0, 3, fault::FaultKind::ContactDrift, true, true},
      {0, 3, fault::FaultKind::GateLeak, true, true},
  };
  for (const auto& f : faults) ASSERT_GT(injector.apply(c, f), 0);
  const double vth_once = mos.params().vth;
  const double r_on_once = relay.params().r_on;
  const double leak_once = relay.params().gate_leak_g;
  EXPECT_GT(vth_once, devices::MosfetParams::nmos_lp().vth);
  for (int rep = 0; rep < 4; ++rep)
    for (const auto& f : faults) injector.apply(c, f);
  EXPECT_EQ(mos.params().vth, vth_once);
  EXPECT_EQ(relay.params().r_on, r_on_once);
  EXPECT_EQ(relay.params().gate_leak_g, leak_once);
}

TEST(DegradationHooks, SaturateAtPhysicalBounds) {
  spice::Circuit c;
  auto& relay = c.add<devices::NemRelay>("N1", c.node("d"), c.node("s"),
                                         c.node("g"), c.ground());
  relay.set_contact_resistance(-5.0);
  EXPECT_EQ(relay.params().r_on, devices::NemRelay::kROnMin);
  relay.set_contact_resistance(1e30);
  EXPECT_EQ(relay.params().r_on, devices::NemRelay::kROnMax);
  relay.set_gate_leakage(-1.0);
  EXPECT_EQ(relay.params().gate_leak_g, 0.0);
  relay.set_gate_leakage(1.0);
  EXPECT_EQ(relay.params().gate_leak_g, devices::NemRelay::kLeakMax);
  // Pull-in drift can never invert the hysteresis window nor push V_PI
  // beyond drivable levels.
  relay.shift_pull_in(-100.0);
  EXPECT_GE(relay.params().v_pi,
            relay.params().v_po + devices::NemRelay::kWindowMin);
  relay.shift_pull_in(+100.0);
  EXPECT_LE(relay.params().v_pi, devices::NemRelay::kVpiMax);

  auto& mos = c.add<devices::Mosfet>("M1", c.node("md"), c.node("mg"),
                                     c.ground(),
                                     devices::MosfetParams::nmos_lp());
  mos.shift_vth(-100.0);
  EXPECT_EQ(mos.params().vth, devices::Mosfet::kVthMin);
  mos.shift_vth(+100.0);
  EXPECT_EQ(mos.params().vth, devices::Mosfet::kVthMax);
}

TEST(Hazard, FatesAreDeterministicAndFaultListsOrdered) {
  const lifetime::HazardConfig hz;
  const lifetime::CellFate a = lifetime::cell_fate(42, 3, 5, hz);
  const lifetime::CellFate b = lifetime::cell_fate(42, 3, 5, hz);
  EXPECT_EQ(a.wear_dead, b.wear_dead);
  EXPECT_EQ(a.time_leak, b.time_leak);
  EXPECT_GT(a.wear_dead, 0.0);

  const auto faults = lifetime::faults_of_row(
      42, 3, 16, hz, core::TcamTech::Nem3T2N, /*wear=*/1.5, /*now=*/0.0);
  // High wear: every cell has at least crossed its dead threshold well
  // before w = 1.5 (Weibull η ≈ 1, β large), and the list is col-ordered.
  EXPECT_FALSE(faults.empty());
  for (std::size_t i = 1; i < faults.size(); ++i)
    EXPECT_LT(faults[i - 1].col, faults[i].col);
  for (const auto& f : faults) EXPECT_EQ(f.row, 3);
}

}  // namespace
}  // namespace nemtcam
