// MTJ device and 4T2M MRAM TCAM tests. The MRAM design is kept out of the
// common AllKinds suite deliberately: its TMR-limited sense margin makes
// don't-care-heavy rows droop — the very weakness the paper cites — so its
// guarantees are weaker and tested on their own terms here.
#include <gtest/gtest.h>

#include <memory>

#include "devices/Mtj.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "spice/Circuit.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"
#include "tcam/Mram4T2MRow.h"
#include "tcam/TcamRow.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::spice;
using namespace nemtcam::devices;
using namespace nemtcam::tcam;
using core::Ternary;
using core::TernaryWord;

// --- MTJ device -------------------------------------------------------------

TEST(Mtj, ResistanceStates) {
  Mtj m("m", 1, 0);
  m.set_parallel(true);
  EXPECT_NEAR(m.resistance(), 3e3, 1.0);
  m.set_parallel(false);
  EXPECT_NEAR(m.resistance(), 7.5e3, 1.0);
  // TMR = 150 %: the defining low ON/OFF ratio.
  EXPECT_NEAR(7.5e3 / 3e3, 2.5, 1e-9);
}

TEST(Mtj, SubCriticalCurrentDoesNotSwitch) {
  Circuit c;
  const NodeId top = c.node("top");
  // 0.1 V across R_AP = 13 µA ≪ I_c = 60 µA.
  c.add<VSource>("V1", top, c.ground(), 0.1);
  auto& m = c.add<Mtj>("M1", top, c.ground());
  m.set_parallel(false);
  TransientOptions opts;
  opts.t_end = 100e-9;
  opts.dt_max = 200e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_DOUBLE_EQ(m.state(), 0.0);
}

TEST(Mtj, PositiveCurrentSetsParallel) {
  Circuit c;
  const NodeId top = c.node("top");
  c.add<VSource>("V1", top, c.ground(),
                 std::make_unique<PulseWave>(0.0, 0.9, 0.1e-9, 10e-12, 10e-12,
                                             40e-9));
  auto& m = c.add<Mtj>("M1", top, c.ground());
  m.set_parallel(false);  // start AP: 0.9 V / 7.5 kΩ = 120 µA = 2×Ic
  TransientOptions opts;
  opts.t_end = 20e-9;
  opts.dt_max = 100e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_TRUE(m.is_parallel());
  EXPECT_GT(m.t_parallel_complete(), 0.0);
}

TEST(Mtj, NegativeCurrentSetsAntiparallel) {
  Circuit c;
  const NodeId top = c.node("top");
  c.add<VSource>("V1", top, c.ground(),
                 std::make_unique<PulseWave>(0.0, -0.9, 0.1e-9, 10e-12, 10e-12,
                                             40e-9));
  auto& m = c.add<Mtj>("M1", top, c.ground());
  m.set_parallel(true);
  TransientOptions opts;
  opts.t_end = 20e-9;
  opts.dt_max = 100e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_FALSE(m.is_parallel());
}

TEST(Mtj, HigherOverdriveSwitchesFaster) {
  auto switch_time = [](double volts) {
    Circuit c;
    const NodeId top = c.node("top");
    c.add<VSource>("V1", top, c.ground(),
                   std::make_unique<PulseWave>(0.0, volts, 0.1e-9, 10e-12,
                                               10e-12, 60e-9));
    auto& m = c.add<Mtj>("M1", top, c.ground());
    m.set_parallel(false);
    TransientOptions opts;
    opts.t_end = 50e-9;
    opts.dt_max = 100e-12;
    run_transient(c, opts);
    return m.t_parallel_complete();
  };
  const double slow = switch_time(0.6);
  const double fast = switch_time(1.2);
  ASSERT_GT(slow, 0.0);
  ASSERT_GT(fast, 0.0);
  EXPECT_LT(fast, slow / 2.0);
}

// --- 4T2M MRAM TCAM row -------------------------------------------------------

constexpr int kW = 8;

TEST(Mram4T2M, MatchHoldsAtStrobe) {
  Mram4T2MRow row(kW, 64, Calibration::standard());
  const TernaryWord word("10110010");
  row.store(word);
  const SearchMetrics m = row.search(word);
  ASSERT_TRUE(m.ok) << m.note;
  EXPECT_TRUE(m.matched);
}

TEST(Mram4T2M, SingleBitMismatchDischarges) {
  Mram4T2MRow row(kW, 64, Calibration::standard());
  const TernaryWord word("10110010");
  row.store(word);
  TernaryWord key = word;
  key[0] = Ternary::Zero;
  const SearchMetrics m = row.search(key);
  ASSERT_TRUE(m.ok) << m.note;
  EXPECT_FALSE(m.matched);
  EXPECT_GT(m.latency, 0.0);
}

TEST(Mram4T2M, SearchIsSlowestOfAllDesigns) {
  const TernaryWord word("10110010");
  TernaryWord key = word;
  key[0] = Ternary::Zero;
  Mram4T2MRow mram(kW, 64, Calibration::standard());
  mram.store(word);
  const double t_mram = mram.search(key).latency;
  auto sram = make_row(TcamKind::Sram16T, kW, 64);
  sram->store(word);
  const double t_sram = sram->search(key).latency;
  EXPECT_GT(t_mram, t_sram);  // even slower than the 16T SRAM
}

TEST(Mram4T2M, StaticDividerCurrentDominatesSearchEnergy) {
  // The resistive divider conducts statically whenever the searchlines are
  // complementary — search energy is an order of magnitude above the
  // charge-dominated designs.
  const TernaryWord word("10110010");
  Mram4T2MRow mram(kW, 64, Calibration::standard());
  mram.store(word);
  const double e_mram = mram.search(word).energy;
  auto nem = make_row(TcamKind::Nem3T2N, kW, 64);
  nem->store(word);
  const double e_nem = nem->search(word).energy;
  EXPECT_GT(e_mram, 10.0 * e_nem);
}

TEST(Mram4T2M, WriteReachesTargetAndIsCurrentHungry) {
  Mram4T2MRow row(kW, 64, Calibration::standard());
  row.store(TernaryWord("01010101"));
  const WriteMetrics w = row.write(TernaryWord("10101010"));
  ASSERT_TRUE(w.ok) << w.note;
  EXPECT_GT(w.latency, 2e-9);  // STT switching is slow
  // Current-driven: per-row energy well above the 3T2N's sub-pJ writes.
  EXPECT_GT(w.energy, 1e-12);
}

TEST(Mram4T2M, WriteThenSearchConsistent) {
  Mram4T2MRow row(kW, 64, Calibration::standard());
  row.store(TernaryWord("00000000"));
  const WriteMetrics w = row.write(TernaryWord("11001100"));
  ASSERT_TRUE(w.ok) << w.note;
  EXPECT_TRUE(row.search(TernaryWord("11001100")).matched);
  EXPECT_FALSE(row.search(TernaryWord("01001100")).matched);
}

TEST(Mram4T2M, StoredDontCareMatchesBothValuesButLeaks) {
  Mram4T2MRow row(kW, 64, Calibration::standard());
  TernaryWord word("1011X010");
  row.store(word);
  TernaryWord k0 = word, k1 = word;
  k0[4] = Ternary::Zero;
  k1[4] = Ternary::One;
  const SearchMetrics m0 = row.search(k0);
  const SearchMetrics m1 = row.search(k1);
  ASSERT_TRUE(m0.ok && m1.ok);
  EXPECT_TRUE(m0.matched);
  EXPECT_TRUE(m1.matched);
  // …but the X cell's mid-level divider leaks: the ML droops visibly by
  // the end of the window (the TMR margin problem).
  EXPECT_LT(m0.ml_min, 0.9);
}

}  // namespace
