// STA subsystem tests (ctest label: sta).
//
// Three layers, mirroring the ERC test philosophy:
//  - RcGraph math against closed-form RC networks: the exact nodal solve
//    (degree-<=2 elimination plus sparse LU on what survives), Thevenin
//    equivalents, and Elmore moments must match hand-computed values to
//    solver precision, not "roughly";
//  - seeded-defect goldens: each case plants exactly one quantitative
//    margin defect in a real row template and asserts the margin_rules
//    pass reports the right sta.* rule id at the right severity — and
//    that the matching clean fixture stays silent on that rule;
//  - bound bracketing: for every row kind, one matched and one one-bit
//    mismatched search at reduced width must land the measured transient
//    delay and energy inside the static bounds (the full-width version of
//    this contract is bench_sta's gate; this is the fast regression).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "devices/NemRelay.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "erc/Checker.h"
#include "sta/RcGraph.h"
#include "sta/Rules.h"
#include "sta/Sta.h"
#include "tcam/ArrayTemplate.h"
#include "tcam/RowSpecs.h"
#include "tcam/SearchTemplate.h"
#include "tcam/StaBridge.h"

namespace {

using namespace nemtcam;
using devices::Capacitor;
using devices::NemRelay;
using devices::Resistor;
using devices::VSource;
using erc::Severity;
using spice::Circuit;
using spice::NodeId;

// GCC 12's -Wrestrict misfires on inlined `"lit" + std::to_string(i)`
// concatenations at -O2 (GCC PR 105329); building names by append keeps
// the -Werror lint build clean.
std::string idx_name(const char* prefix, int i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

// --- RcGraph against closed-form networks -----------------------------

// A resistive divider has an exact DC level; the switch-level solve is a
// true nodal solve, so it must hit it to solver precision.
TEST(RcGraphExact, DividerLevelIsExact) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  c.add<VSource>("V1", in, c.ground(), 1.0);
  c.add<Resistor>("R1", in, mid, 1.0e3);
  c.add<Resistor>("R2", mid, c.ground(), 3.0e3);
  sta::RcGraph g(c);
  const sta::LevelSolution s = g.solve(/*use_final=*/false);
  EXPECT_NEAR(s.v[static_cast<std::size_t>(mid)], 0.75, 1e-9);
}

// A 10-stage series ladder collapses entirely in the degree-<=2
// elimination; the Thevenin resistance at the far end is the plain sum.
TEST(RcGraphExact, LadderTheveninIsSeriesSum) {
  Circuit c;
  std::vector<NodeId> n{c.node("n0")};
  c.add<VSource>("V1", n[0], c.ground(), 1.0);
  for (int i = 1; i <= 10; ++i) {
    n.push_back(c.node(idx_name("n", i)));
    c.add<Resistor>(idx_name("R", i), n[static_cast<std::size_t>(i - 1)],
                    n[static_cast<std::size_t>(i)], 1.0e3);
  }
  sta::RcGraph g(c);
  const sta::LevelSolution s = g.solve(false);
  EXPECT_NEAR(g.thevenin_r(n[10], s), 10.0e3, 1e-6);
  EXPECT_NEAR(g.thevenin_r(n[5], s), 5.0e3, 1e-6);
}

// A fully connected K4 of equal resistors never drops to degree 2, so it
// exercises the sparse-LU leg. Two-terminal resistance across K4 of R is
// R/2; all injected current must then leave through the single pin tie.
TEST(RcGraphExact, MeshHubGoesThroughLuExactly) {
  Circuit c;
  const NodeId p = c.node("p");
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  const NodeId d = c.node("d");
  const NodeId e = c.node("e");
  c.add<VSource>("V1", p, c.ground(), 1.0);
  c.add<Resistor>("Rp", p, a, 1.0e3);
  int k = 0;
  const NodeId quad[4] = {a, b, d, e};
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j)
      c.add<Resistor>(idx_name("Rm", k++), quad[i], quad[j], 1.0e3);
  sta::RcGraph g(c);
  const sta::LevelSolution s = g.solve(false);
  // From any non-tied K4 corner: R_K4 = 500 in series with the 1k tie.
  EXPECT_NEAR(g.thevenin_r(b, s), 1.5e3, 1e-6);
  EXPECT_NEAR(g.thevenin_r(a, s), 1.0e3, 1e-6);
}

// Uniform RC ladder: the worst-sink first moment has the textbook closed
// form m1 = C·(N·R_drv + R·ΣN) and the total load is N·C.
TEST(RcGraphExact, ElmoreLadderMatchesClosedForm) {
  Circuit c;
  std::vector<NodeId> n{c.node("n0")};
  c.add<VSource>("V1", n[0], c.ground(), 1.0, /*series_ohms=*/100.0);
  constexpr int kN = 4;
  constexpr double kR = 1.0e3, kC = 1.0e-12;
  for (int i = 1; i <= kN; ++i) {
    n.push_back(c.node(idx_name("n", i)));
    c.add<Resistor>(idx_name("R", i), n[static_cast<std::size_t>(i - 1)],
                    n[static_cast<std::size_t>(i)], kR);
    c.add<Capacitor>(idx_name("C", i), n[static_cast<std::size_t>(i)],
                     c.ground(), kC);
  }
  sta::RcGraph g(c);
  const sta::LevelSolution s = g.solve(false);
  ASSERT_EQ(g.pins().size(), 1u);
  const sta::RcGraph::Elmore el = g.elmore_from(g.pins()[0], s);
  EXPECT_NEAR(el.c_total, kN * kC, kN * kC * 1e-9);
  // m1(far) = Σ_i C·(R_drv + i·R) = C·(4·100 + (1+2+3+4)·1k).
  EXPECT_NEAR(el.m1, kC * (kN * 100.0 + 10.0 * kR), 1e-20);
  EXPECT_EQ(el.far_node, n[kN]);
  EXPECT_EQ(el.n_nodes, kN + 1);
}

// --- Seeded margin defects through the Checker ------------------------

core::TernaryWord all_ones(int width) {
  core::TernaryWord w(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i)
    w[static_cast<std::size_t>(i)] = core::Ternary::One;
  return w;
}

// Builds the 3T2N row template for `cal`, binds an all-ones matched
// search, and runs ONLY the STA margin rules over the elaborated circuit.
erc::Report margin_report(const tcam::Calibration& cal, int width,
                          double refresh_period = -1.0) {
  tcam::SearchTemplate tpl(tcam::nem3t2n_search_spec(cal), width, 64);
  const core::TernaryWord word = all_ones(width);
  tpl.ensure_built(word, word);
  const double strobe = tpl.spec().t_strobe * (0.25 + 0.75 * width / 64.0);
  sta::StaOptions opt = tcam::sta_options_for(cal, strobe);
  opt.refresh_period = refresh_period;
  erc::Checker checker;
  checker.add_rule(sta::margin_rules({"ml"}, opt));
  return checker.run(*tpl.circuit());
}

// An undersized precharge PMOS leaves the matched ML barely above the
// comparator threshold at the strobe: sense amp deciding a coin flip.
TEST(StaSeededDefect, UndersizedPrechargeFlagsSenseMargin) {
  tcam::Calibration cal;
  cal.w_precharge = 0.5;  // nominal 16: the 0.5 ns window can't charge ML
  const erc::Report rep = margin_report(cal, 16);
  const auto hits = rep.by_rule("sta.sense-margin");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->severity, Severity::Warning);
  ASSERT_EQ(hits[0]->nodes.size(), 1u);
  EXPECT_EQ(hits[0]->nodes[0], "ml");
}

TEST(StaSeededDefect, NominalPrechargeIsClean) {
  const erc::Report rep = margin_report(tcam::Calibration{}, 16);
  EXPECT_TRUE(rep.by_rule("sta.sense-margin").empty());
  EXPECT_TRUE(rep.by_rule("sta.sl-ladder-delay").empty());
}

// A feeble line driver (200x the nominal 500 ohm buffer) pushes the
// searchline settle bound past the sense strobe: the compare gates see a
// stale key when the ML is sampled.
TEST(StaSeededDefect, SlowSearchlineDriverFlagsSettleBound) {
  tcam::Calibration cal;
  cal.r_line_driver = 500.0 * 200.0;
  const erc::Report rep = margin_report(cal, 16);
  const auto hits = rep.by_rule("sta.sl-ladder-delay");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0]->severity, Severity::Warning);
  EXPECT_FALSE(hits[0]->devices.empty());
}

// The array fixture models the shared searchlines as real segmented RC
// ladders; an over-resistive wire recipe makes those ladders settle
// past the strobe, and the rule names the offending line and driver.
TEST(StaSeededDefect, OverlongArraySlLadderFlagsSettleBound) {
  tcam::Calibration cal;
  cal.r_wire_per_m = 2.0e6 * 20000.0;
  tcam::ArrayOptions aopt;
  aopt.sl_segments = 4;
  tcam::ArrayTemplate arr(tcam::nem3t2n_search_spec(cal), /*rows=*/4,
                          /*width=*/8, aopt);
  const core::TernaryWord word = all_ones(8);
  for (int r = 0; r < arr.rows(); ++r) arr.store(r, word);
  ASSERT_TRUE(arr.search(word).ok);
  erc::Checker checker;
  checker.add_rule(
      sta::margin_rules({}, tcam::sta_options_for(cal, arr.default_strobe())));
  const erc::Report rep = checker.run(arr.fixture()->circuit());
  const auto hits = rep.by_rule("sta.sl-ladder-delay");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0]->severity, Severity::Warning);
  EXPECT_FALSE(hits[0]->devices.empty());
}

// A leaky relay gate dielectric collapses the storage-node retention
// below 2x the scheduled 10 us refresh period: data loss, hence an
// Error. The relays declare their hold terminals only once a search has
// committed mechanical state, so one binding search runs first.
TEST(StaSeededDefect, LeakyRelayFlagsRefreshWindow) {
  tcam::Calibration cal;
  tcam::SearchTemplate tpl(tcam::nem3t2n_search_spec(cal), 16, 64);
  const core::TernaryWord word = all_ones(16);
  const double strobe = tpl.spec().t_strobe * (0.25 + 0.75 * 16 / 64.0);
  ASSERT_TRUE(tpl.search(word, word, strobe).ok);
  int relays = 0;
  for (const auto& dev : tpl.circuit()->devices())
    if (auto* relay = dynamic_cast<NemRelay*>(dev.get())) {
      relay->set_gate_leakage(1.0e-9);
      ++relays;
    }
  ASSERT_GT(relays, 0);
  sta::StaOptions opt = tcam::sta_options_for(cal, strobe);
  opt.refresh_period = 10.0e-6;
  erc::Checker checker;
  checker.add_rule(sta::margin_rules({"ml"}, opt));
  const erc::Report rep = checker.run(*tpl.circuit());
  const auto hits = rep.by_rule("sta.refresh-window");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0]->severity, Severity::Error);
  EXPECT_TRUE(rep.has_errors());
}

// Healthy relays retain for tens of microseconds: a 1 us refresh cadence
// clears the 2x safety factor, and the rule stays silent even with the
// hold terminals live after a binding search.
TEST(StaSeededDefect, HealthyRelaysMeetRefreshSchedule) {
  tcam::Calibration cal;
  tcam::SearchTemplate tpl(tcam::nem3t2n_search_spec(cal), 16, 64);
  const core::TernaryWord word = all_ones(16);
  const double strobe = tpl.spec().t_strobe * (0.25 + 0.75 * 16 / 64.0);
  ASSERT_TRUE(tpl.search(word, word, strobe).ok);
  sta::StaOptions opt = tcam::sta_options_for(cal, strobe);
  opt.refresh_period = 1.0e-6;
  erc::Checker checker;
  checker.add_rule(sta::margin_rules({"ml"}, opt));
  const erc::Report rep = checker.run(*tpl.circuit());
  EXPECT_TRUE(rep.by_rule("sta.refresh-window").empty());
}

// --- Bound bracketing across every row kind ---------------------------

class StaBracketing : public ::testing::TestWithParam<tcam::TcamKind> {};

TEST_P(StaBracketing, TransientDelayAndEnergyInsideStaticBounds) {
  constexpr int kTestWidth = 16;
  tcam::SearchTemplate tpl(
      tcam::search_spec_for(GetParam(), tcam::Calibration{}), kTestWidth, 64);
  const core::TernaryWord stored = all_ones(kTestWidth);
  core::TernaryWord miss = stored;
  miss[0] = core::Ternary::Zero;
  const double strobe =
      tpl.spec().t_strobe * (0.25 + 0.75 * kTestWidth / 64.0);

  const tcam::SearchMetrics hit = tpl.search(stored, stored, strobe);
  ASSERT_TRUE(hit.ok) << hit.note;
  ASSERT_TRUE(hit.sta.valid);
  EXPECT_TRUE(hit.matched);
  EXPECT_GT(hit.sta.margin, 0.0);
  EXPECT_GE(hit.energy, hit.sta.e_lo);
  EXPECT_LE(hit.energy, hit.sta.e_hi);

  const tcam::SearchMetrics mm = tpl.search(miss, stored, strobe);
  ASSERT_TRUE(mm.ok) << mm.note;
  ASSERT_TRUE(mm.sta.valid);
  EXPECT_FALSE(mm.matched);
  ASSERT_GT(mm.latency, 0.0);
  EXPECT_LE(mm.sta.t_lo, mm.latency);
  EXPECT_GE(mm.sta.t_hi, mm.latency);
  EXPECT_LT(mm.sta.t_lo, mm.sta.t_hi);
  EXPECT_GE(mm.energy, mm.sta.e_lo);
  EXPECT_LE(mm.energy, mm.sta.e_hi);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, StaBracketing,
    ::testing::Values(tcam::TcamKind::Sram16T, tcam::TcamKind::Nem3T2N,
                      tcam::TcamKind::Rram2T2R, tcam::TcamKind::Fefet2F,
                      tcam::TcamKind::Dtcam5T, tcam::TcamKind::Fefet4T2F,
                      tcam::TcamKind::Mram4T2M),
    [](const ::testing::TestParamInfo<tcam::TcamKind>& param_info) {
      std::string n = tcam::kind_name(param_info.param);
      std::string out;
      for (const char ch : n)
        if (std::isalnum(static_cast<unsigned char>(ch)))
          out.push_back(ch);
      return out;
    });

}  // namespace
