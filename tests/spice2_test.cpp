// Additional engine-level property tests: linear-network invariants
// (superposition, reciprocity-ish checks), sparse-vs-dense cross checks on
// MNA systems, trace utilities, and robustness edges.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "devices/Passive.h"
#include "devices/Sources.h"
#include "spice/Circuit.h"
#include "spice/Newton.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"
#include "util/Random.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::spice;
using namespace nemtcam::devices;

double node_v(const DcResult& dc, NodeId n) {
  return dc.v[static_cast<std::size_t>(n - 1)];
}

// Builds a random resistive ladder network with two sources whose values
// are injected; returns the DC voltage at a probe node.
double random_network_probe(std::uint64_t seed, double v1, double v2) {
  util::Rng rng(seed);
  Circuit c;
  const int n_nodes = 8;
  std::vector<NodeId> nodes;
  for (int i = 0; i < n_nodes; ++i) {
    // Built up in place: `"n" + std::to_string(i)` trips a GCC 12
    // -Wrestrict false positive (PR105329) under -Werror.
    std::string name = "n";
    name += std::to_string(i);
    nodes.push_back(c.node(name));
  }
  // Ladder plus random cross links (values fixed by the seed).
  for (int i = 0; i + 1 < n_nodes; ++i)
    c.add<Resistor>("Rl" + std::to_string(i), nodes[static_cast<std::size_t>(i)],
                    nodes[static_cast<std::size_t>(i + 1)],
                    rng.uniform(1e3, 20e3));
  for (int k = 0; k < 5; ++k) {
    const int a = rng.uniform_int(0, n_nodes - 1);
    const int b = rng.uniform_int(0, n_nodes - 1);
    if (a == b) continue;
    c.add<Resistor>("Rx" + std::to_string(k), nodes[static_cast<std::size_t>(a)],
                    nodes[static_cast<std::size_t>(b)],
                    rng.uniform(1e3, 50e3));
  }
  c.add<Resistor>("Rg", nodes[4], c.ground(), 5e3);
  c.add<VSource>("V1", nodes[0], c.ground(), v1);
  c.add<VSource>("V2", nodes[7], c.ground(), v2);
  const auto dc = dc_operating_point(c);
  if (!dc.converged) return NAN;
  return node_v(dc, nodes[3]);
}

TEST(LinearNetwork, SuperpositionHolds) {
  for (std::uint64_t seed : {1u, 7u, 42u, 99u, 1234u}) {
    const double both = random_network_probe(seed, 1.0, 0.7);
    const double only1 = random_network_probe(seed, 1.0, 0.0);
    const double only2 = random_network_probe(seed, 0.0, 0.7);
    ASSERT_FALSE(std::isnan(both));
    EXPECT_NEAR(both, only1 + only2, 1e-9) << "seed=" << seed;
  }
}

TEST(LinearNetwork, ScalingLinearity) {
  for (std::uint64_t seed : {3u, 21u}) {
    const double base = random_network_probe(seed, 0.5, 0.25);
    const double scaled = random_network_probe(seed, 1.5, 0.75);
    EXPECT_NEAR(scaled, 3.0 * base, 1e-9);
  }
}

TEST(Transient, LinearityOfResponses) {
  // For a linear RC network, doubling the source amplitude doubles the
  // response at every recorded instant.
  auto run_amp = [](double amp) {
    Circuit c;
    const NodeId vin = c.node("vin");
    const NodeId out = c.node("out");
    c.add<VSource>("V1", vin, c.ground(),
                   std::make_unique<PulseWave>(0.0, amp, 0.2e-9, 50e-12,
                                               50e-12, 3e-9));
    c.add<Resistor>("R", vin, out, 2e3);
    c.add<Capacitor>("C", out, c.ground(), 0.5e-12);
    TransientOptions opts;
    opts.t_end = 5e-9;
    opts.dt_max = 20e-12;
    return run_transient(c, opts);
  };
  const auto r1 = run_amp(0.4);
  const auto r2 = run_amp(0.8);
  ASSERT_TRUE(r1.finished && r2.finished);
  // Compare on a fixed sampling (adaptive steps differ between runs).
  const Trace t1 = r1.node_trace(2);
  const Trace t2 = r2.node_trace(2);
  for (double t = 0.4e-9; t < 5e-9; t += 0.4e-9)
    EXPECT_NEAR(t2.at(t), 2.0 * t1.at(t), 2e-3);
}

TEST(Transient, TimeInvarianceOfDelay) {
  // Shifting the stimulus shifts the response: measure 50% crossing
  // relative to the pulse edge for two different delays.
  auto crossing_after_edge = [](double delay) {
    Circuit c;
    const NodeId vin = c.node("vin");
    const NodeId out = c.node("out");
    c.add<VSource>("V1", vin, c.ground(),
                   std::make_unique<PulseWave>(0.0, 1.0, delay, 20e-12,
                                               20e-12, 10e-9));
    c.add<Resistor>("R", vin, out, 1e3);
    c.add<Capacitor>("C", out, c.ground(), 1e-12);
    TransientOptions opts;
    opts.t_end = delay + 6e-9;
    opts.dt_max = 10e-12;
    const auto res = run_transient(c, opts);
    const auto cross = res.node_trace(out).cross_time(0.5, true);
    return cross.value_or(-1.0) - delay;
  };
  const double d1 = crossing_after_edge(0.5e-9);
  const double d2 = crossing_after_edge(2.3e-9);
  ASSERT_GT(d1, 0.0);
  EXPECT_NEAR(d1, d2, 3e-12);
}

TEST(Transient, TwoCapacitorChargeSharing) {
  // Classic: C1 at 1 V dumped into C2 at 0 through a resistor → common
  // voltage C1/(C1+C2), energy halves (dissipated in R regardless of R).
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<Capacitor>("C1", a, c.ground(), 1e-12);
  c.add<Capacitor>("C2", b, c.ground(), 1e-12);
  c.add<Resistor>("R", a, b, 1e3);
  c.set_ic(a, 1.0);
  TransientOptions opts;
  opts.t_end = 20e-9;
  opts.dt_max = 20e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished);
  EXPECT_NEAR(res.node_trace(a).back(), 0.5, 1e-3);
  EXPECT_NEAR(res.node_trace(b).back(), 0.5, 1e-3);
  EXPECT_NEAR(res.device_dissipation("R"), 0.25e-12, 0.01e-12);
}

TEST(Transient, FailsGracefullyOnImpossibleCircuit) {
  // Two ideal voltage sources forcing different voltages on one node pair:
  // the MNA system is singular and the engine must report failure, not
  // crash or loop.
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VSource>("V1", a, c.ground(), 1.0);
  c.add<VSource>("V2", a, c.ground(), 2.0);
  TransientOptions opts;
  opts.t_end = 1e-9;
  const auto res = run_transient(c, opts);
  EXPECT_FALSE(res.finished);
  EXPECT_FALSE(res.failure.empty());
}

TEST(Transient, RecordOffStillAccumulatesEnergy) {
  Circuit c;
  const NodeId n = c.node("n");
  c.add<VSource>("V1", n, c.ground(), 1.0);
  c.add<Resistor>("R", n, c.ground(), 1e3);
  TransientOptions opts;
  opts.t_end = 1e-9;
  opts.dt_max = 10e-12;
  opts.record = false;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished);
  EXPECT_TRUE(res.times.empty());
  // P = V²/R = 1 mW for 1 ns = 1 pJ.
  EXPECT_NEAR(res.source_energy("V1"), 1e-12, 0.02e-12);
}

TEST(Trace, SettleTimeEdgeCases) {
  // Always inside the band → t_begin.
  Trace flat({0.0, 1.0, 2.0}, {0.5, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(flat.settle_time(0.5, 0.1).value(), 0.0);
  // Never settles → nullopt.
  Trace rising({0.0, 1.0, 2.0}, {0.0, 1.0, 2.0});
  EXPECT_FALSE(rising.settle_time(0.0, 0.1).has_value());
  // Settles mid-way: entry point interpolated.
  Trace step({0.0, 1.0, 2.0, 3.0}, {1.0, 1.0, 0.0, 0.0});
  const auto ts = step.settle_time(0.0, 0.2);
  ASSERT_TRUE(ts.has_value());
  EXPECT_NEAR(*ts, 1.8, 1e-12);
}

TEST(Trace, IntegralSubrangeConsistency) {
  util::Rng rng(5);
  std::vector<double> ts, vs;
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {
    ts.push_back(t);
    vs.push_back(rng.uniform(-1.0, 1.0));
    t += rng.uniform(0.01, 0.2);
  }
  Trace tr(ts, vs);
  const double whole = tr.integral();
  const double mid = ts[25];
  EXPECT_NEAR(whole, tr.integral(ts.front(), mid) + tr.integral(mid, ts.back()),
              1e-12);
}

TEST(Waveform, PwlBreakpointsExcludeEnds) {
  PwlWave w({{0.0, 0.0}, {1e-9, 1.0}, {5e-9, 0.0}});
  const auto bps = w.breakpoints(4e-9);
  ASSERT_EQ(bps.size(), 1u);
  EXPECT_DOUBLE_EQ(bps[0], 1e-9);
}

TEST(Circuit, AnonymousNodesAreUnique) {
  Circuit c;
  const NodeId a = c.make_node();
  const NodeId b = c.make_node();
  EXPECT_NE(a, b);
  EXPECT_NE(a, c.ground());
}

}  // namespace
