// Failure paths must produce diagnostics, not crashes: singular systems
// (floating nodes from fractured relay contacts), Newton stalls on
// bistable circuits, DC failures that still return a usable partial
// solution, and parse errors that name the offending token.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "arch/LpmTable.h"
#include "devices/Mosfet.h"
#include "devices/NemRelay.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "netlist/Netlist.h"
#include "spice/Newton.h"
#include "spice/Recovery.h"
#include "spice/Transient.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::spice;
using devices::Mosfet;
using devices::MosfetParams;
using devices::NemRelay;
using devices::NemRelayParams;
using devices::Resistor;
using devices::VSource;

// A fractured-beam cell fragment: the drain is driven, but the relay is
// stuck open with a true zero off-leakage (g_off = 0), so the source node
// has no DC path anywhere — its MNA row is exactly zero.
NodeId build_floating_node_circuit(Circuit& ckt) {
  const NodeId d = ckt.node("d");
  const NodeId s = ckt.node("s");
  ckt.add<VSource>("Vin", d, ckt.ground(), 1.0);
  NemRelayParams p;
  p.g_off = 0.0;  // fractured beam: the air gap is a true open
  auto& relay = ckt.add<NemRelay>("N1_0", d, ckt.ground(), s, ckt.ground(), p);
  relay.force_stuck(/*closed=*/false);
  return s;
}

// Cross-coupled NMOS latch with resistor pullups: bistable, and from the
// symmetric all-zero guess Newton needs many damped iterations to settle,
// so a tight iteration budget produces a clean stall (not a crash).
void build_bistable_latch(Circuit& ckt) {
  const NodeId vdd = ckt.node("vdd");
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add<VSource>("Vdd", vdd, ckt.ground(), 1.0);
  ckt.add<Resistor>("Ra", vdd, a, 10e3);
  ckt.add<Resistor>("Rb", vdd, b, 10e3);
  ckt.add<Mosfet>("M1", a, b, ckt.ground(), MosfetParams::nmos_lp());
  ckt.add<Mosfet>("M2", b, a, ckt.ground(), MosfetParams::nmos_lp());
}

TEST(SingularSystem, FloatingNodeSetsSingularFlagInsteadOfThrowing) {
  Circuit ckt;
  build_floating_node_circuit(ckt);
  std::vector<double> v(static_cast<std::size_t>(ckt.unknown_count()), 0.0);
  const std::vector<double> v_prev = v;
  NewtonOptions opts;  // gmin = 0: nothing holds the floating node
  NewtonResult r;
  ASSERT_NO_THROW(r = solve_newton(ckt, 0.0, 0.0, /*is_dc=*/true, v, v_prev,
                                   opts));
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.singular);
}

TEST(SingularSystem, RecoveryLadderRescuesFloatingNodeViaGminRamp) {
  Circuit ckt;
  const NodeId s = build_floating_node_circuit(ckt);
  std::vector<double> v(static_cast<std::size_t>(ckt.unknown_count()), 0.0);
  const std::vector<double> v_prev = v;
  NewtonOptions opts;  // gmin = 0, so plain Newton is singular
  SolverDiagnostics diag;
  const NewtonResult r = solve_newton_recovering(
      ckt, 0.0, 0.0, /*is_dc=*/true, v, v_prev, opts, RecoveryOptions{}, &diag);

  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(diag.recovered);
  EXPECT_EQ(diag.converged_stage, LadderStage::GminRamp);
  EXPECT_TRUE(diag.saw_singular);
  // The floating node is held by a residual gmin floor — reported, small.
  EXPECT_GT(diag.residual_gmin, 0.0);
  EXPECT_LE(diag.residual_gmin, 1e-9);
  ASSERT_FALSE(diag.attempts.empty());
  EXPECT_FALSE(diag.summary().empty());
  // The driven side of the circuit solved exactly.
  const NodeId d = ckt.node("d");
  EXPECT_NEAR(v[static_cast<std::size_t>(d - 1)], 1.0, 1e-6);
  // The floating node sits at ground through the gmin floor.
  EXPECT_NEAR(v[static_cast<std::size_t>(s - 1)], 0.0, 1e-3);
}

TEST(SingularSystem, TransientEngagesLadderAndKeepsStickyGmin) {
  Circuit ckt;
  build_floating_node_circuit(ckt);
  TransientOptions opts;
  opts.t_end = 1e-9;
  opts.dt_init = 1e-12;
  const TransientResult res = run_transient(ckt, opts);

  ASSERT_TRUE(res.finished) << res.failure;
  // The first step's singular solve engaged the ladder once; the accepted
  // residual gmin then sticks so later steps converge on plain Newton.
  EXPECT_GE(res.steps_recovered, 1u);
  EXPECT_TRUE(res.diagnostics.recovered);
  EXPECT_EQ(res.diagnostics.converged_stage, LadderStage::GminRamp);
  EXPECT_GT(res.residual_gmin, 0.0);
  EXPECT_LE(res.residual_gmin, 1e-9);
}

TEST(NewtonStall, BistableLatchStallReportsWorstUnknown) {
  Circuit ckt;
  build_bistable_latch(ckt);
  std::vector<double> v(static_cast<std::size_t>(ckt.unknown_count()), 0.0);
  const std::vector<double> v_prev = v;
  NewtonOptions opts;
  opts.max_iterations = 2;  // far too few for the damped climb from zero
  NewtonResult r;
  ASSERT_NO_THROW(r = solve_newton(ckt, 0.0, 0.0, /*is_dc=*/true, v, v_prev,
                                   opts));
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.singular);
  EXPECT_EQ(r.iterations, 2);
  ASSERT_GE(r.worst_unknown, 0);
  EXPECT_FALSE(unknown_name(ckt, r.worst_unknown).empty());
}

TEST(NewtonStall, RecoveryLadderRescuesLatchBeyondPlainNewton) {
  Circuit ckt;
  build_bistable_latch(ckt);
  std::vector<double> v(static_cast<std::size_t>(ckt.unknown_count()), 0.0);
  const std::vector<double> v_prev = v;
  NewtonOptions opts;
  opts.max_iterations = 2;
  RecoveryOptions rec;
  rec.max_iterations_scale = 40;  // recovery stages get a real budget
  SolverDiagnostics diag;
  const NewtonResult r = solve_newton_recovering(
      ckt, 0.0, 0.0, /*is_dc=*/true, v, v_prev, opts, rec, &diag);

  ASSERT_TRUE(r.converged) << diag.summary();
  EXPECT_TRUE(diag.recovered);
  EXPECT_NE(diag.converged_stage, LadderStage::Newton);
  ASSERT_GE(diag.attempts.size(), 2u);  // the plain attempt plus the rescue
  EXPECT_FALSE(diag.attempts.front().converged);
  // The latch settled on a real solution: pullups and pulldowns balance.
  const double va = v[static_cast<std::size_t>(ckt.node("a") - 1)];
  const double vb = v[static_cast<std::size_t>(ckt.node("b") - 1)];
  EXPECT_GE(va, 0.0);
  EXPECT_LE(va, 1.0 + 1e-6);
  EXPECT_GE(vb, 0.0);
  EXPECT_LE(vb, 1.0 + 1e-6);
}

TEST(DcPartial, FailedDcReturnsBestPartialWithAttribution) {
  Circuit ckt;
  build_bistable_latch(ckt);
  DcOptions opts;
  opts.newton.max_iterations = 2;
  opts.recover = false;  // exercise the bare gmin-ladder failure contract
  DcResult dc;
  ASSERT_NO_THROW(dc = dc_operating_point(ckt, opts));
  EXPECT_FALSE(dc.converged);
  // The partial solution is still a full-sized vector usable as a guess.
  ASSERT_EQ(dc.v.size(), static_cast<std::size_t>(ckt.unknown_count()));
  EXPECT_GT(dc.last_gmin, 0.0);
  ASSERT_GE(dc.worst_unknown, 0);
  EXPECT_FALSE(dc.worst_node.empty());
}

TEST(DcPartial, RecoveryLadderMarksRecoveredDcSolution) {
  Circuit ckt;
  build_bistable_latch(ckt);
  DcOptions opts;
  opts.newton.max_iterations = 2;  // plain ladder stalls at every rung
  DcResult dc;
  ASSERT_NO_THROW(dc = dc_operating_point(ckt, opts));
  EXPECT_TRUE(dc.converged);
  EXPECT_TRUE(dc.recovered);
  EXPECT_FALSE(dc.recovery_stage.empty());
  EXPECT_NE(dc.recovery_stage, "newton");
}

TEST(ParseErrors, Ipv4ErrorNamesOffendingOctetAndToken) {
  try {
    arch::parse_ipv4("10.999.0.1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("octet 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'999'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("exceeds 255"), std::string::npos) << msg;
  }
  try {
    arch::parse_ipv4("10.0.0");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("octet 3"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(arch::parse_ipv4("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(arch::parse_ipv4("a.b.c.d"), std::invalid_argument);
}

TEST(ParseErrors, NetlistNumberErrorCarriesTokenAndLine) {
  const std::string deck =
      "bad resistor deck\n"
      "R1 a 0 12x34\n"
      ".end\n";
  try {
    parse_netlist(deck);
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("12x34"), std::string::npos) << msg;
  }
}

}  // namespace
