#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/Expect.h"
#include "util/Random.h"
#include "util/Stats.h"
#include "util/Table.h"
#include "util/ThreadPool.h"
#include "util/Units.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::literals;

TEST(Units, LiteralsMatchConstants) {
  EXPECT_DOUBLE_EQ(2.0_ns, 2.0 * units::ns);
  EXPECT_DOUBLE_EQ(20.0_aF, 20.0 * units::aF);
  EXPECT_DOUBLE_EQ(1.0_kOhm, 1.0 * units::kOhm);
  EXPECT_DOUBLE_EQ(0.35_pJ, 0.35 * units::pJ);
  EXPECT_DOUBLE_EQ(500.0_mV, 0.5 * units::V);
}

TEST(Expect, ThrowsOnViolation) {
  EXPECT_THROW(NEMTCAM_EXPECT(1 == 2), std::logic_error);
  EXPECT_NO_THROW(NEMTCAM_EXPECT(1 == 1));
  try {
    NEMTCAM_EXPECT_MSG(false, "context message");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("context message"), std::string::npos);
  }
}

TEST(RunningStats, MeanAndVariance) {
  util::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  util::RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(util::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 62.5), 3.5);
}

TEST(Percentile, UnsortedInputIsHandled) {
  EXPECT_DOUBLE_EQ(util::percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
}

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, NormalMatchesMoments) {
  util::Rng rng(7);
  util::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(3.0, 0.5));
  EXPECT_NEAR(s.mean(), 3.0, 0.02);
  EXPECT_NEAR(s.stddev(), 0.5, 0.02);
}

TEST(Rng, LognormalMedian) {
  util::Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.lognormal_median(20e3, 0.3));
  EXPECT_NEAR(util::percentile(xs, 50.0), 20e3, 600.0);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, ZeroSigmaIsDeterministic) {
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(rng.lognormal_median(5.0, 0.0), 5.0);
}

TEST(Table, RendersAlignedRows) {
  util::Table t({"design", "energy"});
  t.add_row({"SRAM", "0.81 pJ"});
  t.add_row({"3T2N", "0.35 pJ"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("design"), std::string::npos);
  EXPECT_NE(s.find("3T2N"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRowWidth) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(SiFormat, PicksSensiblePrefix) {
  EXPECT_EQ(util::si_format(3.5e-13, "J"), "350 fJ");
  EXPECT_EQ(util::si_format(2e-9, "s"), "2 ns");
  EXPECT_EQ(util::si_format(1e3, "Ohm"), "1 kOhm");
  EXPECT_EQ(util::si_format(0.0, "V"), "0 V");
  EXPECT_EQ(util::si_format(19.6e-9, "W"), "19.6 nW");
}

TEST(RatioFormat, FormatsWithSuffix) {
  EXPECT_EQ(util::ratio_format(2.31), "2.31x");
  EXPECT_EQ(util::ratio_format(131.0, 0), "131x");
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  util::ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i] += static_cast<int>(i); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i], static_cast<int>(i));
}

TEST(ThreadPool, ParallelForRespectsGrainAndEmptyRange) {
  util::ThreadPool pool(2);
  std::vector<int> hits(37, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; },
                    /*grain=*/8);
  for (int h : hits) ASSERT_EQ(h, 1);
  pool.parallel_for(5, 5, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, NestedParallelForInsideTaskCompletes) {
  // A pool task fanning out its own parallel_for must not deadlock even
  // on a 1-thread pool: the blocked caller assists with queued work.
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::ThreadPool pool(threads);
    std::vector<int> hits(64, 0);
    pool.parallel_for(0, 4, [&](std::size_t outer) {
      pool.parallel_for(0, 16, [&](std::size_t inner) {
        hits[outer * 16 + inner] += 1;
      });
    });
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(ThreadPool, WaitIdleAssistsSubmittedWork) {
  util::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&] {
      // Tasks may submit further tasks; wait_idle must cover those too.
      if (done.fetch_add(1) < 50) pool.submit([&] { done.fetch_add(1); });
    });
  pool.wait_idle();
  EXPECT_GE(done.load(), 150);
}

TEST(ThreadPool, ParallelForRethrowsTaskException) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> n{0};
  pool.parallel_for(0, 8, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 8);
}

}  // namespace
