#include <gtest/gtest.h>

#include "netlist/Netlist.h"
#include "spice/Newton.h"
#include "spice/Transient.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::spice;

TEST(SpiceNumber, PlainAndSuffixed) {
  EXPECT_DOUBLE_EQ(parse_spice_number("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_spice_number("-3"), -3.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("1k"), 1e3);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5n"), 2.5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("100meg"), 1e8);
  EXPECT_DOUBLE_EQ(parse_spice_number("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("20a"), 2e-17);
  EXPECT_DOUBLE_EQ(parse_spice_number("100f"), 1e-13);
  EXPECT_DOUBLE_EQ(parse_spice_number("1.2u"), 1.2e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("4p"), 4e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("2g"), 2e9);
  EXPECT_DOUBLE_EQ(parse_spice_number("1t"), 1e12);
}

TEST(SpiceNumber, UnitLettersAfterSuffix) {
  EXPECT_DOUBLE_EQ(parse_spice_number("1kohm"), 1e3);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.2nF"), 2.2e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("5V"), 5.0);
}

TEST(SpiceNumber, RejectsGarbage) {
  EXPECT_THROW(parse_spice_number("abc"), NetlistError);
  EXPECT_THROW(parse_spice_number(""), NetlistError);
  EXPECT_THROW(parse_spice_number("1.2.3"), NetlistError);
}

TEST(SpiceNumber, CaseBlindMilliVsMeg) {
  // Classic SPICE trap: suffixes are case-blind, so "1M" is one milli,
  // NOT one mega. Only the spelled-out "meg" means 1e6.
  EXPECT_DOUBLE_EQ(parse_spice_number("1M"), 1e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("1m"), 1e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("1MEG"), 1e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("1Meg"), 1e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5MEGohm"), 2.5e6);
}

TEST(SpiceNumber, RejectsTrailingGarbageAfterSuffix) {
  // Digits after a scale suffix are ambiguous ("1k5" could be the European
  // 1.5k) — reject rather than guess. Pure unit letters stay tolerated.
  EXPECT_THROW(parse_spice_number("1k5"), NetlistError);
  EXPECT_THROW(parse_spice_number("1.5meg2"), NetlistError);
  EXPECT_THROW(parse_spice_number("3n2F"), NetlistError);
  EXPECT_THROW(parse_spice_number("2.2nF!"), NetlistError);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.2nF"), 2.2e-9);
}

TEST(Netlist, BadNumberErrorsCarryLineNumbers) {
  try {
    parse_netlist("t\nR1 a 0 1k\nC1 a 0 1k5\n.end\n");
    FAIL() << "should have thrown";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Netlist, PrintOfUnknownNodeIsAnError) {
  try {
    parse_netlist(
        "t\n"
        "V1 vin 0 1\n"
        "R1 vin out 1k\n"
        ".op\n"
        ".print v(out) v(typo)\n"
        ".end\n");
    FAIL() << "should have thrown";
  } catch (const NetlistError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 5"), std::string::npos) << what;
    EXPECT_NE(what.find("typo"), std::string::npos) << what;
  }
}

TEST(Netlist, TitleAndComments) {
  const auto deck = parse_netlist(
      "my title line\n"
      "* a comment\n"
      "R1 a 0 1k ; trailing comment\n"
      ".end\n");
  EXPECT_EQ(deck.title, "my title line");
  EXPECT_EQ(deck.circuit->devices().size(), 1u);
}

TEST(Netlist, VoltageDividerOp) {
  const auto deck = parse_netlist(
      "divider\n"
      "V1 vin 0 2.0\n"
      "R1 vin mid 1k\n"
      "R2 mid 0 1k\n"
      ".op\n"
      ".print v(mid)\n"
      ".end\n");
  ASSERT_EQ(deck.analysis.kind, ParsedAnalysis::Kind::Op);
  ASSERT_EQ(deck.print_nodes.size(), 1u);
  EXPECT_EQ(deck.print_nodes[0], "mid");
  const auto dc = dc_operating_point(*deck.circuit);
  ASSERT_TRUE(dc.converged);
  const NodeId mid = deck.circuit->node("mid");
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(mid - 1)], 1.0, 1e-9);
}

TEST(Netlist, PulseSourceAndTran) {
  const auto deck = parse_netlist(
      "rc\n"
      "V1 in 0 PULSE(0 1 1n 0.1n 0.1n 5n)\n"
      "R1 in out 1k\n"
      "C1 out 0 1p\n"
      ".tran 10p 8n\n"
      ".end\n");
  ASSERT_EQ(deck.analysis.kind, ParsedAnalysis::Kind::Tran);
  EXPECT_DOUBLE_EQ(deck.analysis.tran_dt_max, 10e-12);
  EXPECT_DOUBLE_EQ(deck.analysis.tran_t_end, 8e-9);
  TransientOptions opts;
  opts.t_end = deck.analysis.tran_t_end;
  opts.dt_max = deck.analysis.tran_dt_max;
  const auto res = run_transient(*deck.circuit, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  const Trace out = res.node_trace(deck.circuit->node("out"));
  EXPECT_GT(out.at(6e-9), 0.98);
}

TEST(Netlist, CommaSeparatedWaveArgs) {
  const auto deck = parse_netlist(
      "commas\n"
      "V1 in 0 PWL(0,0 1n,1 2n,0.5)\n"
      "R1 in 0 1k\n"
      ".end\n");
  EXPECT_EQ(deck.circuit->devices().size(), 2u);
}

TEST(Netlist, IcDirective) {
  const auto deck = parse_netlist(
      "ic\n"
      "C1 a 0 1p\n"
      "R1 a 0 1k\n"
      ".ic v(a)=0.7\n"
      ".end\n");
  const auto v0 = deck.circuit->initial_state();
  const NodeId a = deck.circuit->node("a");
  EXPECT_DOUBLE_EQ(v0[static_cast<std::size_t>(a - 1)], 0.7);
}

TEST(Netlist, MosfetInverter) {
  const auto deck = parse_netlist(
      "inverter\n"
      "V1 vdd 0 1\n"
      "V2 in 0 0\n"
      "M1 out in vdd PMOS w=1.4\n"
      "M2 out in 0 NMOS\n"
      ".op\n"
      ".end\n");
  const auto dc = dc_operating_point(*deck.circuit);
  ASSERT_TRUE(dc.converged);
  const NodeId out = deck.circuit->node("out");
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(out - 1)], 1.0, 0.03);
}

TEST(Netlist, NemRelayElement) {
  const auto deck = parse_netlist(
      "relay\n"
      "V1 g 0 1\n"
      "V2 d 0 0.5\n"
      "R1 s 0 10k\n"
      "N1 d g s 0 vpi=0.53 taumech=2n\n"
      ".tran 20p 5n\n"
      ".end\n");
  TransientOptions opts;
  opts.t_end = 5e-9;
  opts.dt_max = 20e-12;
  const auto res = run_transient(*deck.circuit, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  // Relay pulls in (gate above V_PI from t=0) and passes the drain level.
  EXPECT_NEAR(res.node_trace(deck.circuit->node("s")).back(),
              0.5 * 10.0 / 11.0, 0.02);
}

TEST(Netlist, RramAndFefetElements) {
  const auto deck = parse_netlist(
      "nvm\n"
      "V1 a 0 0.2\n"
      "Z1 a 0 state=1\n"
      "V2 g 0 1\n"
      "Q1 d g 0 low\n"
      "R1 d 0 1k\n"
      ".op\n"
      ".end\n");
  const auto dc = dc_operating_point(*deck.circuit);
  ASSERT_TRUE(dc.converged);
  // LRS RRAM at 0.2 V draws 10 µA through V1.
  EXPECT_EQ(deck.circuit->devices().size(), 5u);
}

TEST(Netlist, ControlledSources) {
  const auto deck = parse_netlist(
      "controlled\n"
      "V1 in 0 1\n"
      "R1 in 0 1k\n"
      "E1 e_out 0 in 0 3\n"
      "Rl e_out 0 1k\n"
      "F1 f_out 0 V1 2\n"
      "Rf f_out 0 1k\n"
      ".op\n"
      ".end\n");
  const auto dc = dc_operating_point(*deck.circuit);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(deck.circuit->node("e_out") - 1)],
              3.0, 1e-9);
  // i(V1) = −1 mA; F gain 2 injects −2 mA into f_out ⇒ +2 V across 1 kΩ.
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(deck.circuit->node("f_out") - 1)],
              2.0, 1e-9);
}

TEST(Netlist, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("title\nR1 a 0\n.end\n");
    FAIL() << "should have thrown";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_netlist("t\nW1 a 0 1k\n.end\n"), NetlistError);
  EXPECT_THROW(parse_netlist("t\n.bogus\n.end\n"), NetlistError);
  EXPECT_THROW(parse_netlist("t\nF1 a 0 R9 2\nR9 a 0 1k\n.end\n"),
               NetlistError);
}

TEST(Netlist, SubcktFlattensWithScopedNames) {
  const auto deck = parse_netlist(
      "two RC stages from one template\n"
      "V1 vin 0 1\n"
      ".subckt rcstage in out\n"
      "R1 in mid 1k\n"
      "R2 mid out 1k\n"
      "C1 out 0 1p\n"
      ".ends\n"
      "X1 vin a rcstage\n"
      "X2 a b rcstage\n"
      ".op\n"
      ".print v(b)\n"
      ".end\n");
  // V1 + 2 × (R1 R2 C1) flattened into the one circuit.
  EXPECT_EQ(deck.circuit->devices().size(), 7u);
  // Inner nodes are scoped; ports bound to the caller's nets.
  EXPECT_TRUE(deck.circuit->has_node("x1.mid"));
  EXPECT_TRUE(deck.circuit->has_node("x2.mid"));
  EXPECT_TRUE(deck.circuit->has_node("a"));
  EXPECT_FALSE(deck.circuit->has_node("x1.in"));
  const auto dc = dc_operating_point(*deck.circuit);
  ASSERT_TRUE(dc.converged);
  // No DC path pulls the ladder down: every stage floats at the source.
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(deck.circuit->node("b") - 1)], 1.0,
              1e-6);
}

TEST(Netlist, SubcktMayBeDefinedAfterUse) {
  const auto deck = parse_netlist(
      "forward reference\n"
      "V1 vin 0 2\n"
      "X1 vin out divider\n"
      ".subckt divider a b\n"
      "R1 a b 1k\n"
      "R2 b 0 1k\n"
      ".ends\n"
      ".op\n"
      ".end\n");
  const auto dc = dc_operating_point(*deck.circuit);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(deck.circuit->node("out") - 1)],
              1.0, 1e-6);
}

TEST(Netlist, SubcktParamsSubstitutePerInstance) {
  const auto deck = parse_netlist(
      "parameterized divider\n"
      ".param rbase=1k\n"
      "V1 vin 0 3\n"
      ".subckt divider a b rtop={rbase}\n"
      "R1 a b {rtop}\n"
      "R2 b 0 1k\n"
      ".ends\n"
      "X1 vin o1 divider\n"
      "X2 vin o2 divider rtop=2k\n"
      ".op\n"
      ".end\n");
  const auto dc = dc_operating_point(*deck.circuit);
  ASSERT_TRUE(dc.converged);
  const auto v = [&](const char* n) {
    return dc.v[static_cast<std::size_t>(deck.circuit->node(n) - 1)];
  };
  EXPECT_NEAR(v("o1"), 1.5, 1e-6);  // default: 1k over 1k
  EXPECT_NEAR(v("o2"), 1.0, 1e-6);  // override: 2k over 1k
}

TEST(Netlist, ScopedIcReachesInstanceNode) {
  const auto deck = parse_netlist(
      "ic on an inner node\n"
      ".subckt cell top\n"
      "R1 top stor 10k\n"
      "C1 stor 0 1p\n"
      ".ends\n"
      "X1 n1 cell\n"
      "R2 n1 0 1k\n"
      ".ic v(x1.stor)=0.8\n"
      ".tran 10p 1n\n"
      ".end\n");
  ASSERT_TRUE(deck.circuit->has_node("x1.stor"));
  const auto x0 = deck.circuit->initial_state();
  EXPECT_DOUBLE_EQ(
      x0[static_cast<std::size_t>(deck.circuit->node("x1.stor") - 1)], 0.8);
}

TEST(Netlist, SubcktErrors) {
  // Unclosed body points at the .subckt line.
  try {
    parse_netlist("t\n.subckt foo a\nR1 a 0 1k\n.end\n");
    FAIL() << "should have thrown";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  // Unknown subckt reference.
  EXPECT_THROW(parse_netlist("t\nX1 a b nosuch\n.end\n"), NetlistError);
  // Directives are not allowed inside a body.
  EXPECT_THROW(
      parse_netlist("t\n.subckt foo a\n.tran 1n 10n\n.ends\n.end\n"),
      NetlistError);
  // Redefinition.
  EXPECT_THROW(
      parse_netlist(
          "t\n.subckt foo a\nR1 a 0 1k\n.ends\n"
          ".subckt foo a\nR1 a 0 2k\n.ends\n.end\n"),
      NetlistError);
  // Port-count mismatch at the instance.
  EXPECT_THROW(
      parse_netlist("t\n.subckt foo a b\nR1 a b 1k\n.ends\nX1 n1 foo\n.end\n"),
      NetlistError);
}

TEST(Netlist, ContentAfterEndIgnored) {
  const auto deck = parse_netlist(
      "t\n"
      "R1 a 0 1k\n"
      ".end\n"
      "R2 a 0 1k\n");
  EXPECT_EQ(deck.circuit->devices().size(), 1u);
}

TEST(Netlist, SwitchElement) {
  const auto deck = parse_netlist(
      "sw\n"
      "V1 a 0 1\n"
      "S1 a b ron=10 on\n"
      "R1 b 0 10\n"
      ".op\n"
      ".end\n");
  const auto dc = dc_operating_point(*deck.circuit);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(deck.circuit->node("b") - 1)], 0.5,
              1e-6);
}

}  // namespace
