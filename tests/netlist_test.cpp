#include <gtest/gtest.h>

#include "netlist/Netlist.h"
#include "spice/Newton.h"
#include "spice/Transient.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::spice;

TEST(SpiceNumber, PlainAndSuffixed) {
  EXPECT_DOUBLE_EQ(parse_spice_number("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_spice_number("-3"), -3.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("1k"), 1e3);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5n"), 2.5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("100meg"), 1e8);
  EXPECT_DOUBLE_EQ(parse_spice_number("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("20a"), 2e-17);
  EXPECT_DOUBLE_EQ(parse_spice_number("100f"), 1e-13);
  EXPECT_DOUBLE_EQ(parse_spice_number("1.2u"), 1.2e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("4p"), 4e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("2g"), 2e9);
  EXPECT_DOUBLE_EQ(parse_spice_number("1t"), 1e12);
}

TEST(SpiceNumber, UnitLettersAfterSuffix) {
  EXPECT_DOUBLE_EQ(parse_spice_number("1kohm"), 1e3);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.2nF"), 2.2e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("5V"), 5.0);
}

TEST(SpiceNumber, RejectsGarbage) {
  EXPECT_THROW(parse_spice_number("abc"), NetlistError);
  EXPECT_THROW(parse_spice_number(""), NetlistError);
  EXPECT_THROW(parse_spice_number("1.2.3"), NetlistError);
}

TEST(Netlist, TitleAndComments) {
  const auto deck = parse_netlist(
      "my title line\n"
      "* a comment\n"
      "R1 a 0 1k ; trailing comment\n"
      ".end\n");
  EXPECT_EQ(deck.title, "my title line");
  EXPECT_EQ(deck.circuit->devices().size(), 1u);
}

TEST(Netlist, VoltageDividerOp) {
  const auto deck = parse_netlist(
      "divider\n"
      "V1 vin 0 2.0\n"
      "R1 vin mid 1k\n"
      "R2 mid 0 1k\n"
      ".op\n"
      ".print v(mid)\n"
      ".end\n");
  ASSERT_EQ(deck.analysis.kind, ParsedAnalysis::Kind::Op);
  ASSERT_EQ(deck.print_nodes.size(), 1u);
  EXPECT_EQ(deck.print_nodes[0], "mid");
  const auto dc = dc_operating_point(*deck.circuit);
  ASSERT_TRUE(dc.converged);
  const NodeId mid = deck.circuit->node("mid");
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(mid - 1)], 1.0, 1e-9);
}

TEST(Netlist, PulseSourceAndTran) {
  const auto deck = parse_netlist(
      "rc\n"
      "V1 in 0 PULSE(0 1 1n 0.1n 0.1n 5n)\n"
      "R1 in out 1k\n"
      "C1 out 0 1p\n"
      ".tran 10p 8n\n"
      ".end\n");
  ASSERT_EQ(deck.analysis.kind, ParsedAnalysis::Kind::Tran);
  EXPECT_DOUBLE_EQ(deck.analysis.tran_dt_max, 10e-12);
  EXPECT_DOUBLE_EQ(deck.analysis.tran_t_end, 8e-9);
  TransientOptions opts;
  opts.t_end = deck.analysis.tran_t_end;
  opts.dt_max = deck.analysis.tran_dt_max;
  const auto res = run_transient(*deck.circuit, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  const Trace out = res.node_trace(deck.circuit->node("out"));
  EXPECT_GT(out.at(6e-9), 0.98);
}

TEST(Netlist, CommaSeparatedWaveArgs) {
  const auto deck = parse_netlist(
      "commas\n"
      "V1 in 0 PWL(0,0 1n,1 2n,0.5)\n"
      "R1 in 0 1k\n"
      ".end\n");
  EXPECT_EQ(deck.circuit->devices().size(), 2u);
}

TEST(Netlist, IcDirective) {
  const auto deck = parse_netlist(
      "ic\n"
      "C1 a 0 1p\n"
      "R1 a 0 1k\n"
      ".ic v(a)=0.7\n"
      ".end\n");
  const auto v0 = deck.circuit->initial_state();
  const NodeId a = deck.circuit->node("a");
  EXPECT_DOUBLE_EQ(v0[static_cast<std::size_t>(a - 1)], 0.7);
}

TEST(Netlist, MosfetInverter) {
  const auto deck = parse_netlist(
      "inverter\n"
      "V1 vdd 0 1\n"
      "V2 in 0 0\n"
      "M1 out in vdd PMOS w=1.4\n"
      "M2 out in 0 NMOS\n"
      ".op\n"
      ".end\n");
  const auto dc = dc_operating_point(*deck.circuit);
  ASSERT_TRUE(dc.converged);
  const NodeId out = deck.circuit->node("out");
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(out - 1)], 1.0, 0.03);
}

TEST(Netlist, NemRelayElement) {
  const auto deck = parse_netlist(
      "relay\n"
      "V1 g 0 1\n"
      "V2 d 0 0.5\n"
      "R1 s 0 10k\n"
      "N1 d g s 0 vpi=0.53 taumech=2n\n"
      ".tran 20p 5n\n"
      ".end\n");
  TransientOptions opts;
  opts.t_end = 5e-9;
  opts.dt_max = 20e-12;
  const auto res = run_transient(*deck.circuit, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  // Relay pulls in (gate above V_PI from t=0) and passes the drain level.
  EXPECT_NEAR(res.node_trace(deck.circuit->node("s")).back(),
              0.5 * 10.0 / 11.0, 0.02);
}

TEST(Netlist, RramAndFefetElements) {
  const auto deck = parse_netlist(
      "nvm\n"
      "V1 a 0 0.2\n"
      "Z1 a 0 state=1\n"
      "V2 g 0 1\n"
      "Q1 d g 0 low\n"
      "R1 d 0 1k\n"
      ".op\n"
      ".end\n");
  const auto dc = dc_operating_point(*deck.circuit);
  ASSERT_TRUE(dc.converged);
  // LRS RRAM at 0.2 V draws 10 µA through V1.
  EXPECT_EQ(deck.circuit->devices().size(), 5u);
}

TEST(Netlist, ControlledSources) {
  const auto deck = parse_netlist(
      "controlled\n"
      "V1 in 0 1\n"
      "R1 in 0 1k\n"
      "E1 e_out 0 in 0 3\n"
      "Rl e_out 0 1k\n"
      "F1 f_out 0 V1 2\n"
      "Rf f_out 0 1k\n"
      ".op\n"
      ".end\n");
  const auto dc = dc_operating_point(*deck.circuit);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(deck.circuit->node("e_out") - 1)],
              3.0, 1e-9);
  // i(V1) = −1 mA; F gain 2 injects −2 mA into f_out ⇒ +2 V across 1 kΩ.
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(deck.circuit->node("f_out") - 1)],
              2.0, 1e-9);
}

TEST(Netlist, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("title\nR1 a 0\n.end\n");
    FAIL() << "should have thrown";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_netlist("t\nW1 a 0 1k\n.end\n"), NetlistError);
  EXPECT_THROW(parse_netlist("t\n.bogus\n.end\n"), NetlistError);
  EXPECT_THROW(parse_netlist("t\nF1 a 0 R9 2\nR9 a 0 1k\n.end\n"),
               NetlistError);
}

TEST(Netlist, ContentAfterEndIgnored) {
  const auto deck = parse_netlist(
      "t\n"
      "R1 a 0 1k\n"
      ".end\n"
      "R2 a 0 1k\n");
  EXPECT_EQ(deck.circuit->devices().size(), 1u);
}

TEST(Netlist, SwitchElement) {
  const auto deck = parse_netlist(
      "sw\n"
      "V1 a 0 1\n"
      "S1 a b ron=10 on\n"
      "R1 b 0 10\n"
      ".op\n"
      ".end\n");
  const auto dc = dc_operating_point(*deck.circuit);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(deck.circuit->node("b") - 1)], 0.5,
              1e-6);
}

}  // namespace
