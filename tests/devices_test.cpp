#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "devices/Fefet.h"
#include "devices/Mosfet.h"
#include "devices/NemRelay.h"
#include "devices/Passive.h"
#include "devices/Rram.h"
#include "devices/Sources.h"
#include "devices/Switch.h"
#include "spice/Circuit.h"
#include "spice/Newton.h"
#include "spice/Transient.h"
#include "util/Units.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::spice;
using namespace nemtcam::devices;

// --- MOSFET -----------------------------------------------------------

TEST(Mosfet, NmosCutoffConductsOnlyLeakage) {
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  c.add<VSource>("Vd", d, c.ground(), 1.0);
  c.add<VSource>("Vg", g, c.ground(), 0.0);
  auto& m = c.add<Mosfet>("M1", d, g, c.ground(), MosfetParams::nmos_lp());
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  StampContext ctx(0, 0, true, c.node_unknowns(), &dc.v, &dc.v);
  const double leak = m.ids(ctx);
  EXPECT_GT(leak, 0.0);
  EXPECT_LT(leak, 100e-12);  // low-power process: sub-100 pA off-state
}

TEST(Mosfet, NmosOnCurrentIsMicroampScale) {
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  c.add<VSource>("Vd", d, c.ground(), 1.0);
  c.add<VSource>("Vg", g, c.ground(), 1.0);
  auto& m = c.add<Mosfet>("M1", d, g, c.ground(), MosfetParams::nmos_lp());
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  StampContext ctx(0, 0, true, c.node_unknowns(), &dc.v, &dc.v);
  const double ion = m.ids(ctx);
  EXPECT_GT(ion, 5e-6);
  EXPECT_LT(ion, 500e-6);
}

TEST(Mosfet, OnOffRatioExceedsFiveOrders) {
  const MosfetParams p = MosfetParams::nmos_lp();
  const MosEval on = ekv_eval(p, p.vth, 1.0, 1.0, 0.0);
  const MosEval off = ekv_eval(p, p.vth, 0.0, 1.0, 0.0);
  EXPECT_GT(on.ids / off.ids, 1e5);
}

TEST(Mosfet, SymmetricUnderDrainSourceSwap) {
  const MosfetParams p = MosfetParams::nmos_lp();
  const MosEval fwd = ekv_eval(p, p.vth, 1.0, 0.7, 0.2);
  const MosEval rev = ekv_eval(p, p.vth, 1.0, 0.2, 0.7);
  EXPECT_NEAR(fwd.ids, -rev.ids, 1e-15);
}

TEST(Mosfet, PmosConductsWithLowGate) {
  const MosfetParams p = MosfetParams::pmos_lp();
  // Source at VDD (treat v_d=0, v_s=1): gate low turns it on, current S→D
  // (negative D→S convention).
  const MosEval on = ekv_eval(p, p.vth, /*g=*/0.0, /*d=*/0.0, /*s=*/1.0);
  const MosEval off = ekv_eval(p, p.vth, 1.0, 0.0, 1.0);
  EXPECT_LT(on.ids, 0.0);
  EXPECT_GT(std::fabs(on.ids) / std::fabs(off.ids), 1e4);
}

TEST(Mosfet, SaturationCurrentGrowsQuadratically) {
  const MosfetParams p = MosfetParams::nmos_lp();
  const double i1 = ekv_eval(p, p.vth, p.vth + 0.2, 1.2, 0.0).ids;
  const double i2 = ekv_eval(p, p.vth, p.vth + 0.4, 1.2, 0.0).ids;
  EXPECT_NEAR(i2 / i1, 4.0, 0.5);  // ~quadratic in overdrive
}

TEST(Mosfet, DerivativesMatchFiniteDifference) {
  const MosfetParams p = MosfetParams::nmos_lp();
  const double vg = 0.8, vd = 0.4, vs = 0.1, h = 1e-7;
  const MosEval e = ekv_eval(p, p.vth, vg, vd, vs);
  const double dg =
      (ekv_eval(p, p.vth, vg + h, vd, vs).ids - ekv_eval(p, p.vth, vg - h, vd, vs).ids) /
      (2 * h);
  const double dd =
      (ekv_eval(p, p.vth, vg, vd + h, vs).ids - ekv_eval(p, p.vth, vg, vd - h, vs).ids) /
      (2 * h);
  const double ds =
      (ekv_eval(p, p.vth, vg, vd, vs + h).ids - ekv_eval(p, p.vth, vg, vd, vs - h).ids) /
      (2 * h);
  EXPECT_NEAR(e.g_vg, dg, 1e-6 * std::fabs(dg) + 1e-12);
  EXPECT_NEAR(e.g_vd, dd, 1e-6 * std::fabs(dd) + 1e-12);
  EXPECT_NEAR(e.g_vs, ds, 1e-6 * std::fabs(ds) + 1e-12);
}

TEST(Mosfet, InverterSwitches) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VSource>("Vdd", vdd, c.ground(), 1.0);
  auto& vin = c.add<VSource>("Vin", in, c.ground(), 0.0);
  (void)vin;
  c.add<Mosfet>("Mp", out, in, vdd, MosfetParams::pmos_lp());
  c.add<Mosfet>("Mn", out, in, c.ground(), MosfetParams::nmos_lp());
  auto dc0 = dc_operating_point(c);
  ASSERT_TRUE(dc0.converged);
  EXPECT_NEAR(dc0.v[static_cast<std::size_t>(out - 1)], 1.0, 0.02);

  Circuit c1;
  const NodeId vdd1 = c1.node("vdd");
  const NodeId in1 = c1.node("in");
  const NodeId out1 = c1.node("out");
  c1.add<VSource>("Vdd", vdd1, c1.ground(), 1.0);
  c1.add<VSource>("Vin", in1, c1.ground(), 1.0);
  c1.add<Mosfet>("Mp", out1, in1, vdd1, MosfetParams::pmos_lp());
  c1.add<Mosfet>("Mn", out1, in1, c1.ground(), MosfetParams::nmos_lp());
  auto dc1 = dc_operating_point(c1);
  ASSERT_TRUE(dc1.converged);
  EXPECT_NEAR(dc1.v[static_cast<std::size_t>(out1 - 1)], 0.0, 0.02);
}

// --- NEM relay ---------------------------------------------------------

// Drives the relay gate with a pulse and returns (relay&, result).
struct RelayFixture {
  Circuit c;
  NemRelay* relay = nullptr;
  NodeId g, d, s;

  RelayFixture(double v_gate_high, double pulse_width_ns = 10.0) {
    g = c.node("g");
    d = c.node("d");
    s = c.node("s");
    c.add<VSource>("Vg", g, c.ground(),
                   std::make_unique<PulseWave>(0.0, v_gate_high, 0.1e-9,
                                               10e-12, 10e-12,
                                               pulse_width_ns * 1e-9));
    c.add<VSource>("Vd", d, c.ground(), 0.5);
    c.add<Resistor>("Rload", s, c.ground(), 10e3);
    relay = &c.add<NemRelay>("N1", d, g, s, c.ground());
  }

  spice::TransientResult run(double t_end) {
    TransientOptions opts;
    opts.t_end = t_end;
    opts.dt_init = 1e-12;
    opts.dt_max = 50e-12;
    return run_transient(c, opts);
  }
};

TEST(NemRelay, PullsInAboveVpi) {
  RelayFixture f(0.6);  // above V_PI = 0.53
  const auto res = f.run(5e-9);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_TRUE(f.relay->contact());
  // Source node follows drain through the 1 kΩ contact: 0.5 V divided
  // over 1k/10k → ~0.4545 V.
  const Trace vs = res.node_trace(f.s);
  EXPECT_NEAR(vs.back(), 0.5 * 10.0 / 11.0, 0.01);
}

TEST(NemRelay, StaysOpenBelowVpi) {
  RelayFixture f(0.4);  // inside the window, starting open
  const auto res = f.run(5e-9);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_FALSE(f.relay->contact());
  const Trace vs = res.node_trace(f.s);
  EXPECT_LT(vs.max_value(), 1e-3);
}

TEST(NemRelay, ContactDelayIsTauMech) {
  RelayFixture f(1.0);
  const auto res = f.run(5e-9);
  ASSERT_TRUE(res.finished) << res.failure;
  const Trace vs = res.node_trace(f.s);
  const auto t_on = vs.cross_time(0.2, true);
  ASSERT_TRUE(t_on.has_value());
  // Gate pulse starts at 0.1 ns and rises fast; the beam needs τ_mech=2 ns.
  EXPECT_NEAR(*t_on, 0.1e-9 + 2e-9, 0.2e-9);
}

TEST(NemRelay, HysteresisHoldsStateInsideWindow) {
  // Close the relay, then drop the gate to V_R = 0.3 V (inside window):
  // it must stay closed. This is the one-shot-refresh precondition.
  Circuit c;
  const NodeId g = c.node("g");
  const NodeId d = c.node("d");
  const NodeId s = c.node("s");
  c.add<VSource>("Vg", g, c.ground(),
                 std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
                     {0.0, 1.0}, {5e-9, 1.0}, {5.1e-9, 0.3}, {20e-9, 0.3}}));
  c.add<VSource>("Vd", d, c.ground(), 0.5);
  c.add<Resistor>("Rload", s, c.ground(), 10e3);
  auto& relay = c.add<NemRelay>("N1", d, g, s, c.ground());
  c.set_ic(g, 1.0);
  relay.set_state(true, 1.0);

  TransientOptions opts;
  opts.t_end = 20e-9;
  opts.dt_max = 100e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_TRUE(relay.contact());
}

TEST(NemRelay, ReleasesBelowVpo) {
  Circuit c;
  const NodeId g = c.node("g");
  const NodeId d = c.node("d");
  const NodeId s = c.node("s");
  c.add<VSource>("Vg", g, c.ground(),
                 std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
                     {0.0, 1.0}, {2e-9, 1.0}, {2.1e-9, 0.05}, {20e-9, 0.05}}));
  c.add<VSource>("Vd", d, c.ground(), 0.5);
  c.add<Resistor>("Rload", s, c.ground(), 10e3);
  auto& relay = c.add<NemRelay>("N1", d, g, s, c.ground());
  c.set_ic(g, 1.0);
  relay.set_state(true, 1.0);

  TransientOptions opts;
  opts.t_end = 20e-9;
  opts.dt_max = 100e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_FALSE(relay.contact());
  const Trace vs = res.node_trace(s);
  EXPECT_LT(vs.back(), 1e-3);
}

TEST(NemRelay, NoThresholdDropPassingHighLevel) {
  // A closed relay passes the full rail (unlike an NMOS pass gate).
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId s = c.node("s");
  const NodeId g = c.node("g");
  c.add<VSource>("Vg", g, c.ground(), 1.0);
  c.add<VSource>("Vd", d, c.ground(), 1.0);
  c.add<Capacitor>("Cload", s, c.ground(), 1e-15);
  auto& relay = c.add<NemRelay>("N1", d, g, s, c.ground());
  relay.set_state(true, 1.0);

  TransientOptions opts;
  opts.t_end = 2e-9;
  opts.dt_max = 20e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_NEAR(res.node_trace(s).back(), 1.0, 1e-6);  // full rail, no Vth drop
}

TEST(NemRelay, GateCapacitanceTracksState) {
  NemRelay r("n", 1, 2, 3, 0);
  r.set_state(false);
  EXPECT_DOUBLE_EQ(r.gate_capacitance(), 15e-18);
  r.set_state(true);
  EXPECT_DOUBLE_EQ(r.gate_capacitance(), 20e-18);
}

// --- RRAM --------------------------------------------------------------

TEST(Rram, SetTransitionTakesWriteTime) {
  Circuit c;
  const NodeId top = c.node("top");
  c.add<VSource>("Vw", top, c.ground(),
                 std::make_unique<PulseWave>(0.0, 1.8, 0.1e-9, 10e-12, 10e-12,
                                             30e-9));
  auto& r = c.add<Rram>("R1", top, c.ground());
  r.set_state(0.0);

  TransientOptions opts;
  opts.t_end = 20e-9;
  opts.dt_max = 100e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_GT(r.state(), 0.95);
  EXPECT_NEAR(r.resistance(), 20e3, 2e3);
}

TEST(Rram, NoDisturbBelowThreshold) {
  Circuit c;
  const NodeId top = c.node("top");
  c.add<VSource>("Vw", top, c.ground(), 0.5);  // search-level voltage
  auto& r = c.add<Rram>("R1", top, c.ground());
  r.set_state(0.0);
  TransientOptions opts;
  opts.t_end = 50e-9;
  opts.dt_max = 100e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_DOUBLE_EQ(r.state(), 0.0);
}

TEST(Rram, ResetWithNegativePolarity) {
  Circuit c;
  const NodeId top = c.node("top");
  c.add<VSource>("Vw", top, c.ground(),
                 std::make_unique<PulseWave>(0.0, -1.2, 0.1e-9, 10e-12, 10e-12,
                                             30e-9));
  auto& r = c.add<Rram>("R1", top, c.ground());
  r.set_state(1.0);
  TransientOptions opts;
  opts.t_end = 25e-9;
  opts.dt_max = 100e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_LT(r.state(), 0.05);
  EXPECT_GT(r.resistance(), 1e6);
}

TEST(Rram, ResistanceInterpolates) {
  Rram r("r", 1, 0);
  r.set_state(1.0);
  EXPECT_NEAR(r.resistance(), 20e3, 1.0);
  r.set_state(0.0);
  EXPECT_NEAR(r.resistance(), 2e6, 1.0);
  EXPECT_TRUE(r.low_resistance() == false);
}

// --- FeFET -------------------------------------------------------------

TEST(Fefet, ProgramsWithPositiveGatePulse) {
  Circuit c;
  const NodeId g = c.node("g");
  c.add<VSource>("Vg", g, c.ground(),
                 std::make_unique<PulseWave>(0.0, 4.0, 0.1e-9, 10e-12, 10e-12,
                                             15e-9));
  auto& f = c.add<Fefet>("F1", c.node("d"), g, c.ground());
  f.set_polarization(-1.0);
  TransientOptions opts;
  opts.t_end = 12e-9;
  opts.dt_max = 100e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_GT(f.polarization(), 0.9);
  EXPECT_TRUE(f.is_low_vth());
  EXPECT_NEAR(f.vth_eff(), f.params().vth_low, 0.1);
}

TEST(Fefet, ErasesWithNegativeGatePulse) {
  Circuit c;
  const NodeId g = c.node("g");
  c.add<VSource>("Vg", g, c.ground(),
                 std::make_unique<PulseWave>(0.0, -4.0, 0.1e-9, 10e-12, 10e-12,
                                             15e-9));
  auto& f = c.add<Fefet>("F1", c.node("d"), g, c.ground());
  f.set_polarization(1.0);
  TransientOptions opts;
  opts.t_end = 12e-9;
  opts.dt_max = 100e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_LT(f.polarization(), -0.9);
  EXPECT_FALSE(f.is_low_vth());
}

TEST(Fefet, SearchVoltageDoesNotDisturb) {
  Circuit c;
  const NodeId g = c.node("g");
  c.add<VSource>("Vg", g, c.ground(), 1.0);  // VDD-level search drive
  auto& f = c.add<Fefet>("F1", c.node("d"), g, c.ground());
  f.set_polarization(-1.0);
  TransientOptions opts;
  opts.t_end = 50e-9;
  opts.dt_max = 200e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  EXPECT_DOUBLE_EQ(f.polarization(), -1.0);
}

TEST(Fefet, LowVthStateConductsAtVdd) {
  FefetParams p;
  Fefet low("f", 1, 2, 0, p);
  low.set_low_vth(true);
  Fefet high("f2", 1, 2, 0, p);
  high.set_low_vth(false);
  const MosEval on = ekv_eval(p.fet, low.vth_eff(), 1.0, 1.0, 0.0);
  const MosEval off = ekv_eval(p.fet, high.vth_eff(), 1.0, 1.0, 0.0);
  EXPECT_GT(on.ids / off.ids, 1e3);
}

// --- Switch ------------------------------------------------------------

TEST(Switch, TogglesResistance) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VSource>("V", a, c.ground(), 1.0);
  const NodeId b = c.node("b");
  auto& sw = c.add<Switch>("S", a, b, 100.0, 1e12, false);
  c.add<Resistor>("R", b, c.ground(), 100.0);
  auto dc_open = dc_operating_point(c);
  ASSERT_TRUE(dc_open.converged);
  EXPECT_LT(dc_open.v[static_cast<std::size_t>(b - 1)], 1e-6);
  sw.set_closed(true);
  auto dc_closed = dc_operating_point(c);
  ASSERT_TRUE(dc_closed.converged);
  EXPECT_NEAR(dc_closed.v[static_cast<std::size_t>(b - 1)], 0.5, 1e-6);
}

// --- Energy bookkeeping across devices ----------------------------------

TEST(Energy, SourceEnergyEqualsDissipationPlusStored) {
  // V → R → C charge-up: E_src ≈ E_R + E_C(final).
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId out = c.node("out");
  c.add<VSource>("V1", vin, c.ground(),
                 std::make_unique<PulseWave>(0.0, 1.0, 0.05e-9, 1e-12, 1e-12, 1.0));
  c.add<Resistor>("R", vin, out, 5e3);
  c.add<Capacitor>("C", out, c.ground(), 50e-15);
  TransientOptions opts;
  opts.t_end = 5e-9;
  opts.dt_max = 5e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  const double e_src = res.source_energy("V1");
  const double e_r = res.device_dissipation("R");
  const double v_final = res.node_trace(out).back();
  const double e_c = 0.5 * 50e-15 * v_final * v_final;
  EXPECT_NEAR(e_src, e_r + e_c, 0.02 * e_src);
}

}  // namespace
