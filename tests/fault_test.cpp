// Fault layer: deterministic per-cell draws, behavioral compare under
// faults, device-level injection by name convention, spare-row remapping,
// and fault-aware refresh scheduling.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arch/BankedTcam.h"
#include "arch/RefreshController.h"
#include "core/Ternary.h"
#include "devices/Mosfet.h"
#include "devices/NemRelay.h"
#include "devices/Sources.h"
#include "fault/FaultInjector.h"
#include "fault/FaultModel.h"
#include "spice/Circuit.h"
#include "spice/Newton.h"
#include "spice/Recovery.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::fault;
using core::Ternary;
using core::TernaryWord;
using devices::Mosfet;
using devices::MosfetParams;
using devices::NemRelay;
using devices::NemRelayParams;
using devices::VSource;
using spice::Circuit;
using spice::NodeId;

TEST(FaultModel, DrawIsAPureFunctionOfSeedRowCol) {
  const FaultRates rates = FaultRates::uniform(0.3);
  for (int row = 0; row < 4; ++row) {
    for (int col = 0; col < 8; ++col) {
      const FaultSpec a = fault_at(99, row, col, rates);
      const FaultSpec b = fault_at(99, row, col, rates);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.on_n1, b.on_n1);
      EXPECT_EQ(a.positive, b.positive);
    }
  }
  const FaultReport r1 = draw_faults(7, 16, 16, rates);
  const FaultReport r2 = draw_faults(7, 16, 16, rates);
  ASSERT_EQ(r1.faults.size(), r2.faults.size());
  for (std::size_t i = 0; i < r1.faults.size(); ++i) {
    EXPECT_EQ(r1.faults[i].row, r2.faults[i].row);
    EXPECT_EQ(r1.faults[i].col, r2.faults[i].col);
    EXPECT_EQ(r1.faults[i].kind, r2.faults[i].kind);
  }
  // A different seed draws a different map (16×16 at 30%: collision odds
  // are negligible).
  const FaultReport r3 = draw_faults(8, 16, 16, rates);
  EXPECT_NE(r1.faults.size() == r3.faults.size() &&
                [&] {
                  for (std::size_t i = 0; i < r1.faults.size(); ++i)
                    if (r1.faults[i].row != r3.faults[i].row ||
                        r1.faults[i].col != r3.faults[i].col ||
                        r1.faults[i].kind != r3.faults[i].kind)
                      return false;
                  return true;
                }(),
            true);
}

TEST(FaultModel, ZeroRateDrawsNothingAndUniformSplitsTheRate) {
  const FaultReport empty = draw_faults(1, 32, 32, FaultRates{});
  EXPECT_TRUE(empty.faults.empty());
  EXPECT_TRUE(empty.dead_rows().empty());
  EXPECT_TRUE(empty.weak_rows().empty());

  const FaultRates u = FaultRates::uniform(0.01);
  EXPECT_NEAR(u.total(), 0.01, 1e-12);
  EXPECT_NEAR(u.stuck_closed, 0.002, 1e-12);
  EXPECT_NEAR(u.contact_drift, 0.0025, 1e-12);
  EXPECT_NEAR(u.vth_outlier, 0.0015, 1e-12);
}

TEST(FaultModel, HealthClassification) {
  EXPECT_EQ(health_of(FaultKind::None), CellHealth::Healthy);
  EXPECT_EQ(health_of(FaultKind::RelayStuckClosed), CellHealth::Dead);
  EXPECT_EQ(health_of(FaultKind::RelayStuckOpen), CellHealth::Dead);
  EXPECT_EQ(health_of(FaultKind::ContactDrift), CellHealth::Weak);
  EXPECT_EQ(health_of(FaultKind::GateLeak), CellHealth::Weak);
  EXPECT_EQ(health_of(FaultKind::MosVthOutlier), CellHealth::Weak);
}

TEST(FaultModel, HealthyCellCompareMatchesTernarySemantics) {
  const Ternary vals[] = {Ternary::Zero, Ternary::One, Ternary::X};
  for (Ternary stored : vals) {
    for (Ternary key : vals) {
      const CellBehavior b =
          faulty_cell_compare(stored, key, FaultKind::None, true);
      EXPECT_EQ(b.discharges, !core::ternary_matches(stored, key))
          << "stored=" << static_cast<int>(stored)
          << " key=" << static_cast<int>(key);
      EXPECT_DOUBLE_EQ(b.delay_scale, 1.0);
    }
  }
}

TEST(FaultModel, StuckFaultsFlipTheAffectedBranch) {
  // Stuck-closed N1: SL̄ (asserted by key 0) always finds a closed relay,
  // even when the cell stores 0 — a forced mismatch on that polarity.
  EXPECT_TRUE(faulty_cell_compare(Ternary::Zero, Ternary::Zero,
                                  FaultKind::RelayStuckClosed, true)
                  .discharges);
  // …but key 1 exercises N2, which is healthy: stored 0 still discharges.
  EXPECT_TRUE(faulty_cell_compare(Ternary::Zero, Ternary::One,
                                  FaultKind::RelayStuckClosed, true)
                  .discharges);
  // Stuck-open N1: stored 1 never discharges on key 0 — a false match.
  EXPECT_FALSE(faulty_cell_compare(Ternary::One, Ternary::Zero,
                                   FaultKind::RelayStuckOpen, true)
                   .discharges);
  // The sibling branch is unaffected: stored 0, key 1 still mismatches.
  EXPECT_TRUE(faulty_cell_compare(Ternary::Zero, Ternary::One,
                                  FaultKind::RelayStuckOpen, true)
                  .discharges);
  // Gate leak releases the affected branch: degrades toward X (no
  // discharge) on the leaky side.
  EXPECT_FALSE(faulty_cell_compare(Ternary::One, Ternary::Zero,
                                   FaultKind::GateLeak, true)
                   .discharges);
  // Contact drift: the discharge path exists but misses the strobe.
  const CellBehavior drift = faulty_cell_compare(
      Ternary::One, Ternary::Zero, FaultKind::ContactDrift, true);
  EXPECT_FALSE(drift.discharges);
  // A Vth outlier is a delay outlier, not a logic fault.
  const CellBehavior vth = faulty_cell_compare(
      Ternary::One, Ternary::Zero, FaultKind::MosVthOutlier, true);
  EXPECT_TRUE(vth.discharges);
  EXPECT_GT(vth.delay_scale, 1.0);
}

TEST(FaultModel, RowMatchAggregatesCellOutcomes) {
  FaultReport report;
  report.rows = 1;
  report.width = 4;
  report.faults = {FaultSpec{0, 0, FaultKind::RelayStuckOpen, true, true}};

  TernaryWord stored(4);
  stored[0] = Ternary::One;
  stored[1] = Ternary::Zero;
  stored[2] = Ternary::One;
  stored[3] = Ternary::X;

  // Exact key: healthy rows match, and the stuck-open cell can only make
  // matching *more* likely, so still a match.
  EXPECT_TRUE(faulty_row_match(stored, stored, report, 0).match);

  // Mismatch only at the faulty column (key 0 vs stored 1 exercises the
  // broken N1): the mismatch is silently dropped — a false match.
  TernaryWord key = stored;
  key[0] = Ternary::Zero;
  EXPECT_TRUE(faulty_row_match(stored, key, report, 0).match);

  // Mismatch at a healthy column is still detected.
  TernaryWord key2 = stored;
  key2[1] = Ternary::One;
  const RowOutcome out = faulty_row_match(stored, key2, report, 0);
  EXPECT_FALSE(out.match);
  EXPECT_DOUBLE_EQ(out.delay_scale, 1.0);

  EXPECT_EQ(report.row_health(0), CellHealth::Dead);
  ASSERT_EQ(report.dead_rows().size(), 1u);
  EXPECT_EQ(report.dead_rows()[0], 0);
}

// Minimal cell fragment with the fixtures' naming convention: relays
// "N1_<col>"/"N2_<col>" and a sense MOSFET "Ts_<col>".
struct CellFragment {
  Circuit ckt;
  NemRelay* n1 = nullptr;
  NemRelay* n2 = nullptr;
  Mosfet* ts = nullptr;
};

CellFragment build_cell_fragment() {
  CellFragment f;
  const NodeId sl = f.ckt.node("sl_0");
  const NodeId slb = f.ckt.node("slb_0");
  const NodeId stg1 = f.ckt.node("stg1_0");
  const NodeId stg2 = f.ckt.node("stg2_0");
  const NodeId gs = f.ckt.node("gs_0");
  const NodeId ml = f.ckt.node("ml_0");
  f.ckt.add<VSource>("Vslb", slb, f.ckt.ground(), 1.0);
  f.ckt.add<VSource>("Vsl", sl, f.ckt.ground(), 0.0);
  f.n1 = &f.ckt.add<NemRelay>("N1_0", slb, stg1, gs, f.ckt.ground());
  f.n2 = &f.ckt.add<NemRelay>("N2_0", sl, stg2, gs, f.ckt.ground());
  f.ts = &f.ckt.add<Mosfet>("Ts_0", ml, gs, f.ckt.ground(),
                            MosfetParams::nmos_lp());
  return f;
}

TEST(FaultInjector, MutatesDevicesByNameConvention) {
  FaultSeverity sev;
  const FaultInjector inj(sev);

  {
    CellFragment f = build_cell_fragment();
    EXPECT_EQ(inj.apply(f.ckt,
                        FaultSpec{0, 0, FaultKind::RelayStuckClosed, true,
                                  true}),
              1);
    EXPECT_TRUE(f.n1->stuck());
    EXPECT_TRUE(f.n1->contact());
    EXPECT_FALSE(f.n2->stuck());  // the sibling branch is untouched
  }
  {
    CellFragment f = build_cell_fragment();
    EXPECT_EQ(
        inj.apply(f.ckt,
                  FaultSpec{0, 0, FaultKind::RelayStuckOpen, false, true}),
        1);
    EXPECT_TRUE(f.n2->stuck());
    EXPECT_FALSE(f.n2->contact());
    EXPECT_EQ(f.n2->params().g_off, sev.g_off_broken);
  }
  {
    CellFragment f = build_cell_fragment();
    EXPECT_EQ(inj.apply(f.ckt,
                        FaultSpec{0, 0, FaultKind::ContactDrift, true, true}),
              1);
    EXPECT_DOUBLE_EQ(f.n1->params().r_on, sev.drift_r_on);
  }
  {
    CellFragment f = build_cell_fragment();
    EXPECT_EQ(inj.apply(f.ckt,
                        FaultSpec{0, 0, FaultKind::GateLeak, true, true}),
              1);
    EXPECT_DOUBLE_EQ(f.n1->params().gate_leak_g, sev.leak_g);
  }
  {
    CellFragment f = build_cell_fragment();
    const double vth0 = f.ts->params().vth;
    // Every MOSFET in the column shares the outlier's corner.
    EXPECT_GE(inj.apply(f.ckt,
                        FaultSpec{0, 0, FaultKind::MosVthOutlier, true, true}),
              1);
    EXPECT_NEAR(f.ts->params().vth, vth0 + sev.vth_shift, 1e-12);
  }
  {
    // A fault drawn for column 3 must not touch column 0's devices.
    CellFragment f = build_cell_fragment();
    EXPECT_EQ(inj.apply(f.ckt,
                        FaultSpec{0, 3, FaultKind::RelayStuckClosed, true,
                                  true}),
              0);
    EXPECT_FALSE(f.n1->stuck());
  }
}

TEST(FaultInjector, InjectDrawsAndAppliesDeterministically) {
  const FaultInjector inj;
  const FaultRates heavy = FaultRates::uniform(0.9);
  CellFragment a = build_cell_fragment();
  CellFragment b = build_cell_fragment();
  const auto fa = inj.inject(a.ckt, 5, 1, heavy);
  const auto fb = inj.inject(b.ckt, 5, 1, heavy);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].kind, fb[i].kind);
    EXPECT_EQ(fa[i].col, fb[i].col);
  }
}

// Acceptance-criterion demo at unit-test scale: a fractured-beam
// stuck-open injection (g_off = 0) on both relays leaves the cell's sense
// node gs_0 with no DC path anywhere — plain Newton is singular — yet the
// solve completes via the ladder's gmin ramp, visibly in the
// SolverDiagnostics. (In transient the sense MOSFET's gate capacitances
// hold the node, so the DC stamping is where the singularity bites.)
TEST(FaultInjector, InjectedStuckRelayCircuitRecoversViaLadder) {
  CellFragment f = build_cell_fragment();
  const FaultInjector inj;
  ASSERT_EQ(inj.apply(f.ckt,
                      FaultSpec{0, 0, FaultKind::RelayStuckOpen, true, true}),
            1);
  ASSERT_EQ(inj.apply(f.ckt,
                      FaultSpec{0, 0, FaultKind::RelayStuckOpen, false, true}),
            1);
  std::vector<double> v(static_cast<std::size_t>(f.ckt.unknown_count()), 0.0);
  const std::vector<double> v_prev = v;
  spice::NewtonOptions opts;  // gmin = 0: plain Newton sees the singularity
  const spice::NewtonResult plain =
      spice::solve_newton(f.ckt, 0.0, 0.0, /*is_dc=*/true, v, v_prev, opts);
  EXPECT_FALSE(plain.converged);
  EXPECT_TRUE(plain.singular);

  spice::SolverDiagnostics diag;
  spice::NewtonResult res;
  ASSERT_NO_THROW(res = spice::solve_newton_recovering(
                      f.ckt, 0.0, 0.0, /*is_dc=*/true, v, v_prev, opts,
                      spice::RecoveryOptions{}, &diag));
  ASSERT_TRUE(res.converged) << diag.summary();
  EXPECT_TRUE(diag.recovered);
  EXPECT_EQ(diag.converged_stage, spice::LadderStage::GminRamp);
  EXPECT_TRUE(diag.saw_singular);
  EXPECT_GT(diag.residual_gmin, 0.0);
  EXPECT_LE(diag.residual_gmin, 1e-9);
}

TEST(BankedTcamDegradation, RetiredRowKeepsItsLogicalIdentity) {
  arch::BankedTcam tcam(core::TcamTech::Nem3T2N, /*banks=*/2,
                        /*rows_per_bank=*/4, /*width=*/8, /*spare_rows=*/2);
  EXPECT_EQ(tcam.capacity(), 8);
  EXPECT_EQ(tcam.logical_capacity(), 6);
  EXPECT_EQ(tcam.spare_rows_free(), 2);

  for (int r = 0; r < tcam.logical_capacity(); ++r)
    tcam.write(r, TernaryWord::from_uint(static_cast<std::uint64_t>(r + 10),
                                         8));

  FaultReport report;
  report.rows = 6;
  report.width = 8;
  report.faults = {FaultSpec{1, 2, FaultKind::RelayStuckClosed, true, true}};
  EXPECT_EQ(tcam.apply_fault_report(report), 1);
  EXPECT_EQ(tcam.retired_rows(), 1);
  EXPECT_EQ(tcam.spare_rows_free(), 1);

  // Row 1's word migrated with it: it still answers at logical index 1.
  const auto hits = tcam.search(TernaryWord::from_uint(11, 8));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1);
  // Every other row is where it was.
  for (int r = 0; r < tcam.logical_capacity(); ++r) {
    const auto h =
        tcam.search_first(TernaryWord::from_uint(static_cast<std::uint64_t>(r + 10), 8));
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(*h, r);
  }
  // Rewriting the retired row lands on its new physical home.
  tcam.write(1, TernaryWord::from_uint(42, 8));
  const auto h42 = tcam.search_first(TernaryWord::from_uint(42, 8));
  ASSERT_TRUE(h42.has_value());
  EXPECT_EQ(*h42, 1);

  // Drain the pool: one spare left, then degradation without remap.
  EXPECT_TRUE(tcam.retire_row(2));
  EXPECT_EQ(tcam.spare_rows_free(), 0);
  EXPECT_FALSE(tcam.retire_row(3));
  EXPECT_EQ(tcam.retired_rows(), 2);
}

TEST(BankedTcamDegradation, SearchPriorityFollowsLogicalOrderAfterRemap) {
  arch::BankedTcam tcam(core::TcamTech::Nem3T2N, 2, 4, 8, /*spare_rows=*/2);
  const TernaryWord w = TernaryWord::from_uint(33, 8);
  tcam.write(0, w);
  tcam.write(1, w);
  tcam.write(4, w);
  ASSERT_TRUE(tcam.retire_row(0));  // physically moves to the spare region
  const auto hits = tcam.search(w);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], 0);
  EXPECT_EQ(hits[1], 1);
  EXPECT_EQ(hits[2], 4);
  const auto first = tcam.search_first(w);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 0);
}

TEST(RefreshController, FaultAwareScheduleRefreshesWeakRowsMoreOften) {
  arch::RefreshSimConfig healthy;
  healthy.tech = core::TcamTech::Nem3T2N;
  healthy.policy = arch::RefreshPolicy::OneShot;
  healthy.rows = 16;
  healthy.sim_time = 100e-6;
  healthy.search_rate_hz = 10e6;
  const auto base = arch::simulate_refresh_interference(healthy);
  EXPECT_EQ(base.weak_refresh_ops, 0u);
  EXPECT_EQ(base.rows_excluded, 0);

  arch::RefreshSimConfig faulty = healthy;
  faulty.faults.weak_rows = {2, 3};
  faulty.faults.dead_rows = {5};
  const auto deg = arch::simulate_refresh_interference(faulty);
  // Weak rows get supplemental refreshes on the shortened period…
  EXPECT_GT(deg.weak_refresh_ops, 0u);
  // …and the dead row is dropped from the schedule (and its energy share).
  EXPECT_EQ(deg.rows_excluded, 1);
  EXPECT_GT(deg.refresh_ops, 0u);
  EXPECT_GT(base.refresh_energy, 0.0);

  arch::RefreshSimConfig row_healthy = healthy;
  row_healthy.policy = arch::RefreshPolicy::RowByRow;
  const auto row_base = arch::simulate_refresh_interference(row_healthy);
  arch::RefreshSimConfig row_faulty = faulty;
  row_faulty.policy = arch::RefreshPolicy::RowByRow;
  const auto row_deg = arch::simulate_refresh_interference(row_faulty);
  EXPECT_GT(row_deg.weak_refresh_ops, 0u);
  EXPECT_EQ(row_deg.rows_excluded, 1);
  // Dead-row exclusion removes base refreshes; weak rows add extras on a
  // shorter period, so the extras outnumber the weak rows' base schedule.
  EXPECT_LT(row_deg.refresh_ops - row_deg.weak_refresh_ops,
            row_base.refresh_ops);
  EXPECT_GT(row_deg.weak_refresh_ops, 2u * (row_base.refresh_ops / 16));
}

}  // namespace
