// Integration-method tests: trapezoidal vs Backward Euler accuracy.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "devices/Inductor.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "spice/Circuit.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::spice;
using namespace nemtcam::devices;

// RC discharge error at a deliberately coarse fixed step.
double rc_error(Integrator method, double dt) {
  Circuit c;
  const NodeId n = c.node("cap");
  c.add<Resistor>("R", n, c.ground(), 1e3);
  c.add<Capacitor>("C", n, c.ground(), 1e-12);
  c.set_ic(n, 1.0);
  TransientOptions opts;
  opts.t_end = 3e-9;
  opts.dt_init = dt;
  opts.dt_max = dt;
  opts.dt_grow = 1.0;
  opts.integrator = method;
  const auto res = run_transient(c, opts);
  if (!res.finished) return 1e9;
  const Trace v = res.node_trace(n);
  double worst = 0.0;
  const double rc = 1e-9;
  for (double t = 0.3e-9; t <= 3e-9; t += 0.3e-9)
    worst = std::max(worst, std::fabs(v.at(t) - std::exp(-t / rc)));
  return worst;
}

TEST(Integrator, TrapezoidalBeatsBackwardEulerOnRc) {
  const double e_be = rc_error(Integrator::BackwardEuler, 100e-12);
  const double e_tr = rc_error(Integrator::Trapezoidal, 100e-12);
  EXPECT_LT(e_tr, e_be / 5.0);  // second order vs first order
  EXPECT_LT(e_tr, 0.01);
}

TEST(Integrator, BothConvergeWithStep) {
  for (const auto method :
       {Integrator::BackwardEuler, Integrator::Trapezoidal}) {
    const double coarse = rc_error(method, 200e-12);
    const double fine = rc_error(method, 20e-12);
    EXPECT_LT(fine, coarse);
  }
}

// LC tank amplitude: BE's numerical damping shrinks the oscillation;
// trapezoidal preserves it (it is symplectic for LC).
double lc_amplitude_after(Integrator method) {
  Circuit c;
  const NodeId n = c.node("tank");
  c.add<Inductor>("L1", n, c.ground(), 1e-6);
  c.add<Capacitor>("C1", n, c.ground(), 1e-12);
  c.add<Resistor>("Rp", n, c.ground(), 1e9);
  c.set_ic(n, 1.0);
  TransientOptions opts;
  opts.t_end = 50e-9;  // ~8 periods of the 159 MHz tank
  opts.dt_init = 50e-12;
  opts.dt_max = 50e-12;
  opts.dt_grow = 1.0;
  opts.integrator = method;
  const auto res = run_transient(c, opts);
  if (!res.finished) return -1.0;
  const Trace v = res.node_trace(n);
  double peak = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v.times()[i] > 40e-9) peak = std::max(peak, std::fabs(v.values()[i]));
  return peak;
}

TEST(Integrator, TrapezoidalPreservesLcAmplitude) {
  const double a_be = lc_amplitude_after(Integrator::BackwardEuler);
  const double a_tr = lc_amplitude_after(Integrator::Trapezoidal);
  ASSERT_GT(a_be, 0.0);
  ASSERT_GT(a_tr, 0.0);
  EXPECT_LT(a_be, 0.6);  // BE visibly damps after 8 periods at 125 steps/period
  EXPECT_GT(a_tr, 0.95);  // trapezoidal keeps the energy
}

TEST(Integrator, TrapezoidalChargeConsistency) {
  // Source charge delivered into a pure RC equals C·V at the end,
  // independent of the method.
  for (const auto method :
       {Integrator::BackwardEuler, Integrator::Trapezoidal}) {
    Circuit c;
    const NodeId vin = c.node("vin");
    const NodeId out = c.node("out");
    c.add<VSource>("V1", vin, c.ground(),
                   std::make_unique<PulseWave>(0.0, 1.0, 0.1e-9, 1e-12, 1e-12,
                                               1.0));
    c.add<Resistor>("R", vin, out, 1e3);
    c.add<Capacitor>("C", out, c.ground(), 1e-12);
    TransientOptions opts;
    opts.t_end = 10e-9;
    opts.dt_max = 20e-12;
    opts.integrator = method;
    const auto res = run_transient(c, opts);
    ASSERT_TRUE(res.finished);
    EXPECT_NEAR(res.node_trace(out).back(), 1.0, 1e-3);
    EXPECT_NEAR(res.source_energy("V1"), 1e-12, 0.05e-12);
  }
}

}  // namespace
