// Circuit-level TCAM row tests. Rows are built at width 8 (64-row column
// loading) so each transient stays fast; the benches run the full width-64
// experiments.
#include <gtest/gtest.h>

#include "core/TcamModel.h"
#include "tcam/Dtcam5TRow.h"
#include "tcam/Nem3T2NRow.h"
#include "tcam/Rram2T2RRow.h"
#include "tcam/TcamRow.h"
#include "util/Random.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::tcam;
using core::Ternary;
using core::TernaryWord;

constexpr int kWidth = 8;
constexpr int kRows = 64;

TernaryWord flip_bit(TernaryWord w, std::size_t i) {
  w[i] = (w[i] == Ternary::One) ? Ternary::Zero : Ternary::One;
  return w;
}

class AllKinds : public ::testing::TestWithParam<TcamKind> {};

INSTANTIATE_TEST_SUITE_P(Designs, AllKinds,
                         ::testing::Values(TcamKind::Sram16T, TcamKind::Nem3T2N,
                                           TcamKind::Rram2T2R,
                                           TcamKind::Fefet2F,
                                           TcamKind::Dtcam5T,
                                           TcamKind::Fefet4T2F),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case TcamKind::Sram16T: return "Sram16T";
                             case TcamKind::Nem3T2N: return "Nem3T2N";
                             case TcamKind::Rram2T2R: return "Rram2T2R";
                             case TcamKind::Fefet2F: return "Fefet2F";
                             case TcamKind::Dtcam5T: return "Dtcam5T";
                             case TcamKind::Fefet4T2F: return "Fefet4T2F";
                             case TcamKind::Mram4T2M: return "Mram4T2M";
                           }
                           return "unknown";
                         });

TEST_P(AllKinds, MatchHoldsMatchline) {
  auto row = make_row(GetParam(), kWidth, kRows);
  const TernaryWord word("10110010");
  row->store(word);
  const SearchMetrics m = row->search(word);
  ASSERT_TRUE(m.ok) << m.note;
  EXPECT_TRUE(m.matched);
}

TEST_P(AllKinds, SingleBitMismatchDischarges) {
  auto row = make_row(GetParam(), kWidth, kRows);
  const TernaryWord word("10110010");
  row->store(word);
  const SearchMetrics m = row->search(flip_bit(word, 3));
  ASSERT_TRUE(m.ok) << m.note;
  EXPECT_FALSE(m.matched);
  EXPECT_GT(m.latency, 0.0);
  EXPECT_LT(m.ml_min, 0.3);
}

TEST_P(AllKinds, AllBitsMismatchDischargesFaster) {
  auto row = make_row(GetParam(), kWidth, kRows);
  const TernaryWord word("11111111");
  row->store(word);
  const SearchMetrics one_bit = row->search(TernaryWord("11111110"));
  const SearchMetrics all_bits = row->search(TernaryWord("00000000"));
  ASSERT_TRUE(one_bit.ok && all_bits.ok);
  EXPECT_FALSE(one_bit.matched);
  EXPECT_FALSE(all_bits.matched);
  // More parallel pull-down paths discharge the ML strictly faster.
  EXPECT_LT(all_bits.latency, one_bit.latency);
}

TEST_P(AllKinds, StoredDontCareMatchesBothValues) {
  auto row = make_row(GetParam(), kWidth, kRows);
  TernaryWord word("1011X010");
  row->store(word);
  TernaryWord key0 = word;
  key0[4] = Ternary::Zero;
  TernaryWord key1 = word;
  key1[4] = Ternary::One;
  const SearchMetrics m0 = row->search(key0);
  const SearchMetrics m1 = row->search(key1);
  ASSERT_TRUE(m0.ok && m1.ok);
  EXPECT_TRUE(m0.matched);
  EXPECT_TRUE(m1.matched);
}

TEST_P(AllKinds, SearchKeyDontCareMasksMismatch) {
  auto row = make_row(GetParam(), kWidth, kRows);
  const TernaryWord word("10110010");
  row->store(word);
  // Flip bit 2 but search it as X: must match.
  TernaryWord key = flip_bit(word, 2);
  key[2] = Ternary::X;
  const SearchMetrics m = row->search(key);
  ASSERT_TRUE(m.ok) << m.note;
  EXPECT_TRUE(m.matched);
}

TEST_P(AllKinds, AllXRowMatchesAnyKey) {
  auto row = make_row(GetParam(), kWidth, kRows);
  row->store(TernaryWord::all_x(kWidth));
  util::Rng rng(9);
  const auto key = TernaryWord::from_uint(
      static_cast<std::uint64_t>(rng.uniform_int(0, 255)), kWidth);
  const SearchMetrics m = row->search(key);
  ASSERT_TRUE(m.ok) << m.note;
  EXPECT_TRUE(m.matched);
}

TEST_P(AllKinds, WriteTransactionReachesTargetState) {
  auto row = make_row(GetParam(), kWidth, kRows);
  row->store(TernaryWord("01010101"));
  const TernaryWord target("10101010");  // every cell flips
  const WriteMetrics w = row->write(target);
  ASSERT_TRUE(w.ok) << w.note;
  EXPECT_GT(w.latency, 0.0);
  EXPECT_GT(w.energy, 0.0);
  EXPECT_EQ(row->stored(), target);
}

TEST_P(AllKinds, WriteThenSearchIsConsistent) {
  auto row = make_row(GetParam(), kWidth, kRows);
  row->store(TernaryWord("00000000"));
  const TernaryWord word("1100X01X");
  const WriteMetrics w = row->write(word);
  ASSERT_TRUE(w.ok) << w.note;
  const SearchMetrics hit = row->search(TernaryWord("11000011"));
  const SearchMetrics miss = row->search(TernaryWord("01000011"));
  ASSERT_TRUE(hit.ok && miss.ok);
  EXPECT_TRUE(hit.matched);
  EXPECT_FALSE(miss.matched);
}

TEST_P(AllKinds, WriteDontCareWord) {
  auto row = make_row(GetParam(), kWidth, kRows);
  row->store(TernaryWord("11111111"));
  const WriteMetrics w = row->write(TernaryWord::all_x(kWidth));
  ASSERT_TRUE(w.ok) << w.note;
  const SearchMetrics m = row->search(TernaryWord("01100101"));
  ASSERT_TRUE(m.ok);
  EXPECT_TRUE(m.matched);
}

TEST_P(AllKinds, SearchEnergyIsPositiveAndBounded) {
  auto row = make_row(GetParam(), kWidth, kRows);
  row->store(TernaryWord("10101010"));
  const SearchMetrics m = row->search(TernaryWord("10101010"));
  ASSERT_TRUE(m.ok);
  EXPECT_GT(m.energy, 1e-18);
  EXPECT_LT(m.energy, 1e-9);  // far below a nanojoule at width 8
}

// Property check: circuit-level match/mismatch agrees with the behavioral
// golden model for random stored words and keys.
TEST_P(AllKinds, AgreesWithBehavioralModel) {
  util::Rng rng(GetParam() == TcamKind::Sram16T ? 11 : 23);
  auto row = make_row(GetParam(), kWidth, kRows);
  for (int trial = 0; trial < 4; ++trial) {
    TernaryWord word(kWidth);
    for (std::size_t b = 0; b < kWidth; ++b) {
      const int v = rng.uniform_int(0, 3);
      word[b] = v == 0 ? Ternary::X : (v % 2 ? Ternary::One : Ternary::Zero);
    }
    row->store(word);
    TernaryWord key(kWidth);
    for (std::size_t b = 0; b < kWidth; ++b)
      key[b] = rng.bernoulli(0.5) ? Ternary::One : Ternary::Zero;
    const SearchMetrics m = row->search(key);
    ASSERT_TRUE(m.ok) << m.note;
    EXPECT_EQ(m.matched, word.matches(key))
        << "word=" << word.to_string() << " key=" << key.to_string();
  }
}

// --- 3T2N-specific: one-shot refresh and retention -----------------------

TEST(Nem3T2N, OneShotRefreshPreservesArbitraryWord) {
  Nem3T2NRow row(kWidth, kRows, Calibration::standard());
  row.store(TernaryWord("1X010X10"));
  const RefreshMetrics r = row.one_shot_refresh();
  ASSERT_TRUE(r.ok) << r.note;
  EXPECT_GT(r.energy_per_op, 0.0);
  EXPECT_GT(r.latency, 0.0);
  // Data still searchable after the refresh (stored state unchanged).
  const SearchMetrics m = row.search(TernaryWord("10010110"));
  ASSERT_TRUE(m.ok);
  EXPECT_TRUE(m.matched);
}

TEST(Nem3T2N, RetentionIsTensOfMicroseconds) {
  Nem3T2NRow row(kWidth, kRows, Calibration::standard());
  const double t_ret = row.simulate_retention(Calibration::standard().v_refresh);
  EXPECT_GT(t_ret, 5e-6);
  EXPECT_LT(t_ret, 200e-6);
}

TEST(Nem3T2N, RetentionShrinksFromLowerStartVoltage) {
  Nem3T2NRow row(kWidth, kRows, Calibration::standard());
  const double high = row.simulate_retention(0.7);
  const double low = row.simulate_retention(0.3);
  EXPECT_GT(high, low);
  EXPECT_GT(low, 0.0);
}

TEST(Nem3T2N, RefreshPowerIsNanowattScale) {
  Nem3T2NRow row(kWidth, kRows, Calibration::standard());
  row.store(TernaryWord("10101010"));
  const RefreshMetrics r = row.one_shot_refresh();
  ASSERT_TRUE(r.ok) << r.note;
  EXPECT_GT(r.refresh_power, 0.1e-9);
  EXPECT_LT(r.refresh_power, 1e-6);
}

TEST(Nem3T2N, RefreshOutsideWindowCorruptsState) {
  // V_R above V_PI actuates every relay: stored '0' cells close — corrupt.
  Nem3T2NRow row(kWidth, kRows, Calibration::standard());
  row.store(TernaryWord("10101010"));
  const RefreshMetrics bad = row.refresh_at(/*v_refresh=*/0.8, 0.25);
  EXPECT_FALSE(bad.ok);
}

TEST(Nem3T2N, RefreshBelowWindowLosesOnes) {
  // V_R below V_PO cannot hold closed relays: stored '1's release.
  Nem3T2NRow row(kWidth, kRows, Calibration::standard());
  row.store(TernaryWord("10101010"));
  const RefreshMetrics bad = row.refresh_at(/*v_refresh=*/0.05, 0.25);
  EXPECT_FALSE(bad.ok);
}

TEST(Nem3T2N, SearchDoesNotDisturbStoredState) {
  // Twenty consecutive searches; data must remain intact (relays latched,
  // search voltages are far from the write path).
  Nem3T2NRow row(kWidth, kRows, Calibration::standard());
  const TernaryWord word("11001010");
  row.store(word);
  for (int i = 0; i < 3; ++i) {
    const SearchMetrics m = row.search(flip_bit(word, 1));
    ASSERT_TRUE(m.ok);
    EXPECT_FALSE(m.matched);
  }
  const SearchMetrics hit = row.search(word);
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.matched);
}

// --- 2T2R-specific: variation sensitivity --------------------------------

TEST(Rram2T2R, NominalSenseMarginExists) {
  Rram2T2RRow row(kWidth, kRows, Calibration::standard());
  const TernaryWord word("10101010");
  row.store(word);
  const SearchMetrics mm = row.search(flip_bit(word, 0));
  const SearchMetrics mt = row.search(word);
  ASSERT_TRUE(mm.ok && mt.ok);
  EXPECT_FALSE(mm.matched);
  EXPECT_TRUE(mt.matched);
}

TEST(Rram2T2R, HighVariationCanBreakSensing) {
  // With heavy resistance spread some seeds misclassify — the paper's
  // variation argument. We only assert the mechanism is exercised: across
  // several seeds, behaviour need not be uniform; at minimum the sim runs.
  const TernaryWord word("10101010");
  int failures = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rram2T2RRow row(kWidth, kRows, Calibration::standard());
    row.set_resistance_sigma(1.2);
    row.set_variation_seed(seed);
    row.store(word);
    const SearchMetrics mm = row.search(flip_bit(word, 0));
    const SearchMetrics mt = row.search(word);
    ASSERT_TRUE(mm.ok && mt.ok);
    if (mm.matched || !mt.matched) ++failures;
  }
  SUCCEED() << failures << "/4 seeds misclassified under sigma=1.2";
}

TEST(Rram2T2R, MatchedMatchlineDroopsThroughHrs) {
  // The finite ON/OFF ratio: a matched row's ML visibly droops within the
  // window (would eventually cross the threshold) — unlike SRAM/NEM.
  Rram2T2RRow row(kWidth, kRows, Calibration::standard());
  const TernaryWord word("10101010");
  row.store(word);
  const SearchMetrics m = row.search(word);
  ASSERT_TRUE(m.ok);
  EXPECT_TRUE(m.matched);
  EXPECT_LT(m.ml_min, 0.5);  // droops below the sense level by window end
}

TEST(Nem3T2N, MatchedMatchlineHoldsSolid) {
  Nem3T2NRow row(kWidth, kRows, Calibration::standard());
  const TernaryWord word("10101010");
  row.store(word);
  const SearchMetrics m = row.search(word);
  ASSERT_TRUE(m.ok);
  EXPECT_TRUE(m.matched);
  EXPECT_GT(m.ml_min, 0.9);  // near-zero leakage holds the precharge
}

// --- CMOS DTCAM (conventional dynamic baseline) ---------------------------

TEST(Dtcam5T, RetentionComparableToNem) {
  Dtcam5TRow row(kWidth, kRows, Calibration::standard());
  const double t_ret = row.simulate_retention(Calibration::standard().v_store_one);
  EXPECT_GT(t_ret, 5e-6);
  EXPECT_LT(t_ret, 500e-6);
}

TEST(Dtcam5T, RowRefreshCostExceedsOneShot) {
  Dtcam5TRow dtcam(kWidth, kRows, Calibration::standard());
  dtcam.store(TernaryWord("10101010"));
  const RefreshMetrics rr = dtcam.row_refresh_cost();
  ASSERT_TRUE(rr.ok) << rr.note;

  Nem3T2NRow nem(kWidth, kRows, Calibration::standard());
  nem.store(TernaryWord("10101010"));
  const RefreshMetrics osr = nem.one_shot_refresh();
  ASSERT_TRUE(osr.ok) << osr.note;

  // Row-by-row blocks the array rows× per period; the power comparison
  // includes the per-row energy × rows. One-shot wins on both.
  EXPECT_GT(rr.refresh_power, osr.refresh_power);
  EXPECT_GT(rr.latency * kRows, osr.latency);
}

TEST(Dtcam5T, RetentionGrowsWithStoredLevel) {
  Dtcam5TRow row(kWidth, kRows, Calibration::standard());
  EXPECT_GT(row.simulate_retention(0.9), row.simulate_retention(0.7));
}

// --- Row metadata ----------------------------------------------------------

TEST(TcamRowApi, KindNamesAreDistinct) {
  EXPECT_STRNE(kind_name(TcamKind::Sram16T), kind_name(TcamKind::Nem3T2N));
  EXPECT_STRNE(kind_name(TcamKind::Rram2T2R), kind_name(TcamKind::Fefet2F));
}

TEST(TcamRowApi, StoreRejectsWrongWidth) {
  auto row = make_row(TcamKind::Nem3T2N, 8, 64);
  EXPECT_THROW(row->store(TernaryWord("0101")), std::logic_error);
  EXPECT_THROW(row->write(TernaryWord("0101")), std::logic_error);
}

TEST(TcamRowApi, FailedWriteDoesNotUpdateStored) {
  // Writes into a healthy row always succeed; emulate failure via a
  // mis-calibrated refresh instead — covered above. Here: verify stored()
  // reflects the new word only after ok.
  auto row = make_row(TcamKind::Nem3T2N, 8, 64);
  row->store(TernaryWord("00000000"));
  const WriteMetrics w = row->write(TernaryWord("11111111"));
  ASSERT_TRUE(w.ok);
  EXPECT_EQ(row->stored().to_string(), "11111111");
}

}  // namespace
