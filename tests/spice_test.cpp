#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "devices/Passive.h"
#include "devices/Sources.h"
#include "spice/Circuit.h"
#include "spice/Newton.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"
#include "util/Units.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::spice;
using namespace nemtcam::devices;
using namespace nemtcam::literals;

TEST(Waveform, PulseShape) {
  // PULSE(0 1 | delay 1ns | rise 0.1ns | fall 0.1ns | width 2ns)
  PulseWave p(0.0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 2e-9);
  EXPECT_DOUBLE_EQ(p.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.value(0.999e-9), 0.0);
  EXPECT_NEAR(p.value(1.05e-9), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(p.value(2.0e-9), 1.0);
  EXPECT_NEAR(p.value(3.15e-9), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(p.value(5.0e-9), 0.0);
}

TEST(Waveform, PulseBreakpointsCoverEdges) {
  PulseWave p(0.0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 2e-9);
  const auto bps = p.breakpoints(10e-9);
  ASSERT_EQ(bps.size(), 4u);
  EXPECT_DOUBLE_EQ(bps[0], 1e-9);
  EXPECT_DOUBLE_EQ(bps[1], 1.1e-9);
  EXPECT_DOUBLE_EQ(bps[2], 3.1e-9);
  EXPECT_DOUBLE_EQ(bps[3], 3.2e-9);
}

TEST(Waveform, PeriodicPulseRepeats) {
  PulseWave p(0.0, 1.0, 0.0, 0.1e-9, 0.1e-9, 0.4e-9, 1e-9);
  EXPECT_DOUBLE_EQ(p.value(0.3e-9), 1.0);
  EXPECT_DOUBLE_EQ(p.value(1.3e-9), 1.0);
  EXPECT_DOUBLE_EQ(p.value(0.8e-9), 0.0);
  EXPECT_DOUBLE_EQ(p.value(1.8e-9), 0.0);
}

TEST(Waveform, PwlInterpolatesAndClamps) {
  PwlWave w({{0.0, 0.0}, {1e-9, 1.0}, {2e-9, 0.5}});
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.5e-9), 0.5);
  EXPECT_DOUBLE_EQ(w.value(1.5e-9), 0.75);
  EXPECT_DOUBLE_EQ(w.value(5e-9), 0.5);
}

TEST(Waveform, SinBasics) {
  SinWave w(0.5, 0.5, 1e9);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.5);
  EXPECT_NEAR(w.value(0.25e-9), 1.0, 1e-9);
}

TEST(Circuit, NodeNamingAndGround) {
  Circuit c;
  EXPECT_EQ(c.node("gnd"), kGround);
  EXPECT_EQ(c.node("0"), kGround);
  const NodeId a = c.node("a");
  EXPECT_EQ(c.node("a"), a);
  const NodeId b = c.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(c.node_count(), 3u);
  EXPECT_EQ(c.node_name(a), "a");
}

TEST(Circuit, InitialStateUsesIcs) {
  Circuit c;
  const NodeId a = c.node("a");
  c.node("b");
  c.set_ic(a, 0.7);
  const auto v0 = c.initial_state();
  EXPECT_DOUBLE_EQ(v0[static_cast<std::size_t>(a - 1)], 0.7);
}

TEST(Dc, VoltageDivider) {
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId mid = c.node("mid");
  c.add<VSource>("V1", vin, c.ground(), 1.0);
  c.add<Resistor>("R1", vin, mid, 1e3);
  c.add<Resistor>("R2", mid, c.ground(), 3e3);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(mid - 1)], 0.75, 1e-9);
  // The source branch current: 1 V across 4 kΩ = 0.25 mA flowing out of +,
  // i.e. −0.25 mA into the + terminal.
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(c.node_unknowns())], -0.25e-3, 1e-9);
}

TEST(Transient, RcDischargeMatchesAnalytic) {
  // 1 kΩ to ground discharging 1 pF from 1 V: v(t) = e^{-t/RC}.
  Circuit c;
  const NodeId n = c.node("cap");
  c.add<Resistor>("R", n, c.ground(), 1e3);
  c.add<Capacitor>("C", n, c.ground(), 1e-12);
  c.set_ic(n, 1.0);

  TransientOptions opts;
  opts.t_end = 5e-9;
  opts.dt_init = 1e-13;
  opts.dt_max = 2e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;

  const Trace v = res.node_trace(n);
  const double rc = 1e3 * 1e-12;
  for (double t : {0.5e-9, 1e-9, 2e-9, 4e-9}) {
    EXPECT_NEAR(v.at(t), std::exp(-t / rc), 5e-3) << "t=" << t;
  }
}

TEST(Transient, RcChargeDelayAndEnergy) {
  // Step-charging C through R: delay to 50% is RC·ln2; source delivers
  // C·V² total, half stored, half burned in R.
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId out = c.node("out");
  const double r = 10e3, cap = 100e-15, vdd = 1.0;
  c.add<VSource>("V1", vin, c.ground(),
                 std::make_unique<PulseWave>(0.0, vdd, 0.1e-9, 1e-12, 1e-12, 1.0));
  c.add<Resistor>("R", vin, out, r);
  c.add<Capacitor>("C", out, c.ground(), cap);

  TransientOptions opts;
  opts.t_end = 20e-9;
  opts.dt_init = 1e-13;
  opts.dt_max = 10e-12;
  auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;

  const Trace v = res.node_trace(out);
  const auto t50 = v.cross_time(0.5 * vdd, /*rising=*/true);
  ASSERT_TRUE(t50.has_value());
  EXPECT_NEAR(*t50 - 0.1e-9, r * cap * std::log(2.0), 0.03e-9);

  // Fully settled by 20 RC = 20 ns.
  EXPECT_NEAR(v.back(), vdd, 1e-3);
  EXPECT_NEAR(res.source_energy("V1"), cap * vdd * vdd, 0.03 * cap * vdd * vdd);
  EXPECT_NEAR(res.device_dissipation("R"), 0.5 * cap * vdd * vdd,
              0.03 * 0.5 * cap * vdd * vdd);
}

TEST(Transient, BreakpointsAreHit) {
  Circuit c;
  const NodeId vin = c.node("vin");
  c.add<VSource>("V1", vin, c.ground(),
                 std::make_unique<PulseWave>(0.0, 1.0, 1e-9, 10e-12, 10e-12, 1e-9));
  c.add<Resistor>("R", vin, c.ground(), 1e3);

  TransientOptions opts;
  opts.t_end = 4e-9;
  opts.dt_max = 0.5e-9;  // much larger than the pulse edges
  auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  const Trace v = res.node_trace(vin);
  // The full 1 V plateau must be visible even though dt_max (0.5 ns) is
  // wider than the rise; breakpoint landing guarantees it.
  EXPECT_NEAR(v.max_value(), 1.0, 1e-9);
  EXPECT_NEAR(v.at(1.5e-9), 1.0, 1e-9);
}

TEST(Transient, SeriesResistanceSource) {
  Circuit c;
  const NodeId out = c.node("out");
  c.add<VSource>("V1", out, c.ground(), 1.0, /*series_ohms=*/1e3);
  c.add<Resistor>("R", out, c.ground(), 1e3);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(out - 1)], 0.5, 1e-9);
}

TEST(Trace, CrossTimeAndIntegral) {
  Trace tr({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 1.0, 0.0});
  const auto up = tr.cross_time(0.5, true);
  ASSERT_TRUE(up.has_value());
  EXPECT_DOUBLE_EQ(*up, 0.5);
  const auto down = tr.cross_time(0.5, false);
  ASSERT_TRUE(down.has_value());
  EXPECT_DOUBLE_EQ(*down, 2.5);
  EXPECT_FALSE(tr.cross_time(2.0, true).has_value());
  EXPECT_DOUBLE_EQ(tr.integral(), 2.0);
  EXPECT_DOUBLE_EQ(tr.integral(1.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(tr.at(0.25), 0.25);
}

TEST(Trace, CrossTimeRespectsStartTime) {
  Trace tr({0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 1.0, 0.0, 1.0, 0.0});
  const auto second = tr.cross_time(0.5, true, 1.5);
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(*second, 2.5);
}

TEST(Newton, ReportsNonConvergenceAsFailure) {
  // A floating capacitor between two nodes with no DC path anywhere makes
  // the DC system singular; dc_operating_point must fail gracefully
  // (gmin keeps it solvable, so check the transient path instead with an
  // impossible dt) — here we just confirm the divider converges and a
  // truly disconnected node is caught by gmin.
  Circuit c;
  const NodeId a = c.node("a");
  c.node("floating");
  c.add<VSource>("V1", a, c.ground(), 1.0);
  c.add<Resistor>("R1", a, c.ground(), 1e3);
  const auto dc = dc_operating_point(c);
  // gmin ties the floating node to ground.
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.v[static_cast<std::size_t>(c.node("floating") - 1)], 0.0, 1e-9);
}

}  // namespace
