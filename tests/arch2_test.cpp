// Tests for the architecture extensions: endurance tracking and banking.
#include <gtest/gtest.h>

#include "arch/BankedTcam.h"
#include "arch/Endurance.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::arch;
using core::TcamTech;
using core::Ternary;
using core::TernaryWord;

// --- Endurance ---------------------------------------------------------------

TEST(Endurance, SpecOrderingMatchesLiterature) {
  EXPECT_GT(endurance_spec(TcamTech::Sram16T).rated_cycles,
            endurance_spec(TcamTech::Nem3T2N).rated_cycles);
  EXPECT_GT(endurance_spec(TcamTech::Nem3T2N).rated_cycles,
            endurance_spec(TcamTech::Fefet2F).rated_cycles);
  EXPECT_GT(endurance_spec(TcamTech::Fefet2F).rated_cycles,
            endurance_spec(TcamTech::Rram2T2R).rated_cycles);
}

TEST(Endurance, OnlyChangedBitsCycle) {
  EnduranceTracker t(TcamTech::Nem3T2N, 4, 8);
  // First write: everything counts (cells leave the unknown state).
  EXPECT_EQ(t.record_write(0, TernaryWord("10101010")), 8);
  // Same word again: nothing flips.
  EXPECT_EQ(t.record_write(0, TernaryWord("10101010")), 0);
  // Two bits change.
  EXPECT_EQ(t.record_write(0, TernaryWord("00101011")), 2);
  EXPECT_EQ(t.worst_cell_cycles(), 2u);
}

TEST(Endurance, OneShotRefreshDoesNotWearRelays) {
  EnduranceTracker t(TcamTech::Nem3T2N, 4, 8);
  t.record_write(0, TernaryWord("11111111"));
  const auto before = t.worst_cell_cycles();
  for (int i = 0; i < 1000; ++i) t.record_one_shot_refresh();
  EXPECT_EQ(t.worst_cell_cycles(), before);
}

TEST(Endurance, LifetimeScalesInverselyWithWriteRate) {
  EnduranceTracker t(TcamTech::Rram2T2R, 64, 64);
  const double slow = t.lifetime_at_write_rate(1e3);
  const double fast = t.lifetime_at_write_rate(1e6);
  EXPECT_NEAR(slow / fast, 1e3, 1.0);
  // 1e7 cycles / (1e6/64 cell-cycles per second) = 640 s.
  EXPECT_NEAR(fast, 640.0, 1.0);
}

TEST(Endurance, WearFractionTracksRating) {
  EnduranceTracker t(TcamTech::Rram2T2R, 1, 1);
  TernaryWord a("1"), b("0");
  for (int i = 0; i < 500; ++i) {
    t.record_write(0, a);
    t.record_write(0, b);
  }
  EXPECT_EQ(t.worst_cell_cycles(), 1000u);
  EXPECT_NEAR(t.worst_wear_fraction(), 1000.0 / 1e7, 1e-12);
}

TEST(Endurance, BoundsChecked) {
  EnduranceTracker t(TcamTech::Nem3T2N, 2, 4);
  EXPECT_THROW(t.record_write(2, TernaryWord("0000")), std::logic_error);
  EXPECT_THROW(t.record_write(0, TernaryWord("00")), std::logic_error);
}

// --- BankedTcam ----------------------------------------------------------------

TEST(BankedTcam, GlobalAddressingAndPriority) {
  BankedTcam t(TcamTech::Nem3T2N, /*banks=*/4, /*rows_per_bank=*/8, 8);
  EXPECT_EQ(t.capacity(), 32);
  t.write(3, TernaryWord("1010XXXX"));   // bank 0
  t.write(17, TernaryWord("10100000"));  // bank 2
  const auto hits = t.search(TernaryWord("10100000"));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 3);
  EXPECT_EQ(hits[1], 17);
  EXPECT_EQ(t.search_first(TernaryWord("10100000")).value(), 3);
}

TEST(BankedTcam, EraseRemovesEntry) {
  BankedTcam t(TcamTech::Nem3T2N, 2, 4, 4);
  t.write(5, TernaryWord("1111"));
  EXPECT_TRUE(t.search_first(TernaryWord("1111")).has_value());
  t.erase(5);
  EXPECT_FALSE(t.search_first(TernaryWord("1111")).has_value());
}

TEST(BankedTcam, RefreshesAreStaggered) {
  BankedTcam t(TcamTech::Nem3T2N, 4, 16, 16);
  for (int r = 0; r < t.capacity(); r += 5)
    t.write(r, TernaryWord::all_x(16));
  // Advance ~3 retention periods; every bank must have refreshed and no
  // data may be lost.
  const double retention = t.bank(0).costs().retention_time();
  t.advance(3.2 * retention);
  const auto ledger = t.total_ledger();
  EXPECT_GE(ledger.refreshes, 4u * 3u);
  EXPECT_EQ(ledger.retention_losses, 0u);
  // Staggering: the banks' next deadlines differ — verified indirectly by
  // the refresh counts being spread over time rather than synchronized at
  // construction (each bank was pre-advanced a different phase).
  for (int r = 0; r < t.capacity(); r += 5)
    EXPECT_TRUE(t.bank(r / 16).live(r % 16));
}

TEST(BankedTcam, SearchAggregatesAcrossBanks) {
  BankedTcam t(TcamTech::Sram16T, 3, 4, 4);
  for (int r = 0; r < t.capacity(); ++r) t.write(r, TernaryWord("XXXX"));
  EXPECT_EQ(t.search(TernaryWord("0000")).size(),
            static_cast<std::size_t>(t.capacity()));
  EXPECT_EQ(t.total_ledger().searches, 3u);  // one search op per bank
}

TEST(BankedTcam, BoundsChecked) {
  BankedTcam t(TcamTech::Nem3T2N, 2, 4, 4);
  EXPECT_THROW(t.write(8, TernaryWord("0000")), std::logic_error);
  EXPECT_THROW(t.write(-1, TernaryWord("0000")), std::logic_error);
}

}  // namespace
