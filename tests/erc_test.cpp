// ERC subsystem tests (ctest label: erc).
//
// Each seeded-defect case plants exactly one netlist bug and asserts the
// checker reports exactly the expected finding — right rule id, severity,
// and offending node/device names — before any Newton iteration runs.
// The clean-fixture cases run every TCAM row type through its real search
// path and assert the pre-simulation ERC pass comes back empty.
#include <gtest/gtest.h>

#include <string>

#include "devices/Mosfet.h"
#include "devices/NemRelay.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "erc/Checker.h"
#include "erc/TcamRules.h"
#include "netlist/Netlist.h"
#include "spice/Newton.h"
#include "tcam/TcamRow.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::devices;
using core::TernaryWord;
using erc::Checker;
using erc::CheckerOptions;
using erc::Report;
using erc::Severity;
using spice::Circuit;
using spice::NodeId;

bool names_contain(const std::vector<std::string>& names,
                   const std::string& wanted) {
  for (const auto& n : names)
    if (n == wanted) return true;
  return false;
}

// --- Report mechanics -------------------------------------------------

TEST(ErcReport, CountsAndFormatting) {
  Report r;
  r.add({"connect.island", Severity::Error, "nodes a, b float", {"a", "b"},
         {}, "connect them"});
  r.add({"value.nonpositive-r", Severity::Warning, "R1 is zero", {}, {"R1"},
         ""});
  EXPECT_EQ(r.count(Severity::Error), 1u);
  EXPECT_EQ(r.count(Severity::Warning), 1u);
  EXPECT_TRUE(r.has_errors());
  EXPECT_EQ(r.by_rule("connect.island").size(), 1u);
  EXPECT_NE(r.to_string().find("error[connect.island]"), std::string::npos);
  EXPECT_NE(r.to_string().find("hint: connect them"), std::string::npos);
  EXPECT_NE(r.summary().find("1 error"), std::string::npos);
}

// --- Seeded connectivity defects --------------------------------------

// A storage node reachable only through capacitors: legal wiring, but no
// DC path — the classic "gmin quietly fixed my netlist" bug.
TEST(ErcConnectivity, FloatingNodeHasNoDcPath) {
  const auto deck = spice::parse_netlist(
      "* cap-coupled floating node\n"
      "V1 in 0 1\n"
      "R1 in 0 1k\n"
      "C1 in mid 1n\n"
      "C2 mid 0 1n\n"
      ".op\n"
      ".end\n");
  const Report rep = Checker().run(*deck.circuit);
  ASSERT_EQ(rep.findings().size(), 1u);
  const auto& f = rep.findings().front();
  EXPECT_EQ(f.rule, "connect.no-dc-path");
  EXPECT_EQ(f.severity, Severity::Error);
  EXPECT_TRUE(names_contain(f.nodes, "mid"));
}

// A relay whose gate lands on a node nothing else touches.
TEST(ErcConnectivity, DanglingRelayTerminal) {
  Circuit c;
  const NodeId out = c.node("out");
  const NodeId floatg = c.node("floatg");
  c.add<VSource>("V1", out, c.ground(), 1.0);
  c.add<NemRelay>("N1", out, floatg, c.ground(), c.ground());
  const Report rep = Checker().run(c);
  ASSERT_EQ(rep.findings().size(), 1u);
  const auto& f = rep.findings().front();
  EXPECT_EQ(f.rule, "connect.dangling");
  EXPECT_EQ(f.severity, Severity::Error);
  EXPECT_TRUE(names_contain(f.nodes, "floatg"));
  EXPECT_TRUE(names_contain(f.devices, "N1"));
}

// A capacitor floating off on its own: one island finding, not a storm of
// per-node dangling/no-dc-path findings.
TEST(ErcConnectivity, CapOnlyIslandIsOneFinding) {
  const auto deck = spice::parse_netlist(
      "* cap island beside a working divider\n"
      "V1 in 0 1\n"
      "R1 in out 1k\n"
      "R2 out 0 1k\n"
      "C1 isla islb 1n\n"
      ".op\n"
      ".end\n");
  const Report rep = Checker().run(*deck.circuit);
  ASSERT_EQ(rep.findings().size(), 1u);
  const auto& f = rep.findings().front();
  EXPECT_EQ(f.rule, "connect.island");
  EXPECT_EQ(f.severity, Severity::Error);
  EXPECT_TRUE(names_contain(f.nodes, "isla"));
  EXPECT_TRUE(names_contain(f.nodes, "islb"));
  EXPECT_TRUE(names_contain(f.devices, "C1"));
}

// --- Seeded value defects ---------------------------------------------

TEST(ErcValues, HysteresisInversionIsCaught) {
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  c.add<VSource>("V1", d, c.ground(), 1.0);
  c.add<VSource>("V2", g, c.ground(), 0.0);
  NemRelayParams p;
  p.v_po = 0.6;  // above v_pi = 0.53: the window is inverted
  c.add<NemRelay>("N1", d, g, c.ground(), c.ground(), p);
  const Report rep = Checker().run(c);
  ASSERT_EQ(rep.findings().size(), 1u);
  const auto& f = rep.findings().front();
  EXPECT_EQ(f.rule, "value.hysteresis-inverted");
  EXPECT_EQ(f.severity, Severity::Error);
  EXPECT_TRUE(names_contain(f.devices, "N1"));
}

TEST(ErcValues, NonPositiveResistanceIsCaught) {
  Circuit c;
  const NodeId in = c.node("in");
  c.add<VSource>("V1", in, c.ground(), 1.0);
  c.add<Resistor>("R1", in, c.ground(), -5.0);
  const Report rep = Checker().run(c);
  ASSERT_EQ(rep.by_rule("value.nonpositive-r").size(), 1u);
  EXPECT_TRUE(
      names_contain(rep.by_rule("value.nonpositive-r").front()->devices,
                    "R1"));
}

// --- TCAM design rules -------------------------------------------------

namespace tcam_rules {

// Builds a minimal complementary pair, wired clean, with the checker
// restricted to the registered rule so the assertion sees it in isolation.
struct PairFixture {
  Circuit c;
  NemRelay* n1;
  NemRelay* n2;
  PairFixture() {
    const NodeId stg = c.node("stg");
    n1 = &c.add<NemRelay>("N1_0", c.ground(), stg, c.ground(), c.ground());
    n2 = &c.add<NemRelay>("N2_0", c.ground(), stg, c.ground(), c.ground());
  }
  Report run(const TernaryWord& word) {
    Checker ck(CheckerOptions{false, false, false});
    ck.add_rule(erc::nem_pair_rule(word));
    return ck.run(c);
  }
};

TEST(ErcTcamRules, StoredXMustBeOffOff) {
  PairFixture fx;
  fx.n1->set_state(true);  // X must be (open, open); this is (closed, open)
  const Report rep = fx.run(TernaryWord("X"));
  ASSERT_EQ(rep.findings().size(), 1u);
  const auto& f = rep.findings().front();
  EXPECT_EQ(f.rule, "tcam.x-encoding");
  EXPECT_EQ(f.severity, Severity::Error);
  EXPECT_TRUE(names_contain(f.devices, "N1_0"));
}

TEST(ErcTcamRules, PairInconsistentWithStoredBit) {
  PairFixture fx;  // stored One wants (closed, open); both are open
  const Report rep = fx.run(TernaryWord("1"));
  ASSERT_EQ(rep.findings().size(), 1u);
  EXPECT_EQ(rep.findings().front().rule, "tcam.relay-pair");
}

TEST(ErcTcamRules, ConsistentPairIsClean) {
  PairFixture fx;
  fx.n1->set_state(true);
  const Report rep = fx.run(TernaryWord("1"));
  EXPECT_TRUE(rep.empty()) << rep.to_string();
}

TEST(ErcTcamRules, StuckRelayIsNotANetlistBug) {
  PairFixture fx;
  fx.n1->force_stuck(true);  // injected fault holds N1 closed on a stored X
  const Report rep = fx.run(TernaryWord("X"));
  EXPECT_TRUE(rep.empty()) << rep.to_string();
}

TEST(ErcTcamRules, RefreshLevelOutsideWindow) {
  PairFixture fx;
  Checker ck(CheckerOptions{false, false, false});
  // Default relay window is (0.13 V, 0.53 V): 0.05 V would drop every
  // closed relay out during a one-shot refresh.
  ck.add_rule(erc::relay_refresh_window_rule(0.05));
  const Report rep = ck.run(fx.c);
  ASSERT_EQ(rep.findings().size(), 2u);  // both relays of the pair
  EXPECT_EQ(rep.findings().front().rule, "tcam.refresh-window");
  EXPECT_EQ(rep.findings().front().severity, Severity::Error);
}

TEST(ErcTcamRules, RefreshLevelInsideWindowIsClean) {
  PairFixture fx;
  Checker ck(CheckerOptions{false, false, false});
  ck.add_rule(erc::relay_refresh_window_rule(0.5));
  EXPECT_TRUE(ck.run(fx.c).empty());
}

TEST(ErcTcamRules, MlPrechargeReachability) {
  Circuit c;
  const NodeId ml = c.node("ml");
  const NodeId vdd = c.node("vdd");
  c.add<VSource>("Vdd", vdd, c.ground(), 1.0);
  c.add<Capacitor>("Cml", ml, c.ground(), 1e-15);  // no conductive path
  Checker ck(CheckerOptions{false, false, false});
  ck.add_rule(erc::ml_precharge_rule(ml, vdd));
  const Report rep = ck.run(c);
  ASSERT_EQ(rep.findings().size(), 1u);
  EXPECT_EQ(rep.findings().front().rule, "tcam.ml-precharge");

  // Adding the precharge device clears the finding.
  c.add<Mosfet>("Mpchg", ml, c.ground(), vdd, MosfetParams::pmos_lp(1.0));
  EXPECT_TRUE(ck.run(c).empty());
}

TEST(ErcTcamRules, MlFaninCountsDischargeDevices) {
  Circuit c;
  const NodeId ml = c.node("ml");
  const NodeId vdd = c.node("vdd");
  const NodeId g = c.node("g");
  c.add<VSource>("Vdd", vdd, c.ground(), 1.0);
  c.add<VSource>("Vg", g, c.ground(), 0.0);
  c.add<Mosfet>("Mpchg", ml, g, vdd, MosfetParams::pmos_lp(1.0));
  c.add<Mosfet>("Ts_0", ml, g, c.ground(), MosfetParams::nmos_lp(1.0));
  c.add<Mosfet>("Ts_1", ml, g, c.ground(), MosfetParams::nmos_lp(1.0));

  Checker match(CheckerOptions{false, false, false});
  match.add_rule(erc::ml_fanin_rule(ml, vdd, 2));
  EXPECT_TRUE(match.run(c).empty());

  Checker mismatch(CheckerOptions{false, false, false});
  mismatch.add_rule(erc::ml_fanin_rule(ml, vdd, 3));
  const Report rep = mismatch.run(c);
  ASSERT_EQ(rep.findings().size(), 1u);
  EXPECT_EQ(rep.findings().front().rule, "tcam.ml-fanin");
  EXPECT_EQ(rep.findings().front().severity, Severity::Warning);
}

}  // namespace tcam_rules

// --- Structural-rank pass and solver attribution ----------------------

TEST(ErcStructure, CleanCircuitHasFullStructuralRank) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VSource>("V1", in, c.ground(), 1.0);
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Resistor>("R2", out, c.ground(), 1e3);
  EXPECT_TRUE(spice::structural_singularity_report(c).empty());
  EXPECT_TRUE(Checker().run(c).empty());
}

TEST(ErcStructure, DcOperatingPointNamesStructurallySingularNode) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId sense = c.node("sense");
  c.add<VSource>("V1", in, c.ground(), 1.0);
  c.add<Capacitor>("C1", in, sense, 1e-9);
  c.add<Capacitor>("C2", sense, c.ground(), 1e-9);

  // Without the gmin crutch the factorization is singular; the failure
  // must name the offending node instead of a bare solver error.
  spice::DcOptions opts;
  opts.gmin_ladder = {0.0};
  opts.recover = false;
  const auto dc = dc_operating_point(c, opts);
  EXPECT_FALSE(dc.converged);
  EXPECT_NE(dc.singular_detail.find("sense"), std::string::npos)
      << dc.singular_detail;
}

// --- Clean fixtures: every row type's real search path ----------------

class AllRowKinds : public ::testing::TestWithParam<tcam::TcamKind> {};

INSTANTIATE_TEST_SUITE_P(
    Erc, AllRowKinds,
    ::testing::Values(tcam::TcamKind::Sram16T, tcam::TcamKind::Nem3T2N,
                      tcam::TcamKind::Rram2T2R, tcam::TcamKind::Fefet2F,
                      tcam::TcamKind::Dtcam5T, tcam::TcamKind::Fefet4T2F,
                      tcam::TcamKind::Mram4T2M),
    [](const auto& param_info) {
      switch (param_info.param) {
        case tcam::TcamKind::Sram16T: return "Sram16T";
        case tcam::TcamKind::Nem3T2N: return "Nem3T2N";
        case tcam::TcamKind::Rram2T2R: return "Rram2T2R";
        case tcam::TcamKind::Fefet2F: return "Fefet2F";
        case tcam::TcamKind::Dtcam5T: return "Dtcam5T";
        case tcam::TcamKind::Fefet4T2F: return "Fefet4T2F";
        case tcam::TcamKind::Mram4T2M: return "Mram4T2M";
      }
      return "unknown";
    });

TEST_P(AllRowKinds, SearchFixturePassesErcClean) {
  auto row = tcam::make_row(GetParam(), 8, 16);
  const TernaryWord word("10X10X10");
  row->store(word);
  const tcam::SearchMetrics m = row->search(word);
  ASSERT_TRUE(m.ok) << m.note;
  EXPECT_EQ(m.erc_errors, 0u);
  EXPECT_EQ(m.erc_warnings, 0u);
}

}  // namespace
