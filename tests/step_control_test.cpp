// LTE step-control tests: adaptive vs refined fixed-step accuracy, the
// rejection path, relay event bisection, end-of-run sliver handling, and
// probe-recording column lookup.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "devices/NemRelay.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "spice/Circuit.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::spice;
using namespace nemtcam::devices;

// Ramp-driven RC: vin --R-- n --C-- gnd, 0→1 V over 1 ns then hold.
// τ = 1 ns, so the 10 ns window covers both the driven edge and the tail.
NodeId build_ramp_rc(Circuit& c) {
  const NodeId vin = c.node("vin");
  const NodeId n = c.node("out");
  c.add<VSource>("Vin", vin, c.ground(),
                 std::make_unique<PwlWave>(
                     std::vector<std::pair<double, double>>{{0.0, 0.0},
                                                            {1e-9, 1.0}}));
  c.add<Resistor>("R", vin, n, 1e3);
  c.add<Capacitor>("C", n, c.ground(), 1e-12);
  return n;
}

TransientOptions adaptive_opts(double t_end, double dt_max) {
  TransientOptions o;
  o.t_end = t_end;
  o.dt_init = 1e-13;
  o.dt_max = dt_max;
  o.step_control = StepControl::Lte;
  o.integrator = Integrator::Trapezoidal;
  return o;
}

TransientOptions fixed_opts(double t_end, double dt) {
  TransientOptions o;
  o.t_end = t_end;
  o.dt_init = dt;
  o.dt_max = dt;
  o.dt_grow = 1.0;
  return o;
}

TEST(StepControl, AdaptiveMatchesRefinedFixedReferenceOnRc) {
  const double t_end = 10e-9;

  Circuit ref_c;
  const NodeId ref_n = build_ramp_rc(ref_c);
  const auto ref = run_transient(ref_c, fixed_opts(t_end, 2e-12));
  ASSERT_TRUE(ref.finished);

  Circuit ad_c;
  const NodeId ad_n = build_ramp_rc(ad_c);
  const auto ad = run_transient(ad_c, adaptive_opts(t_end, 1e-9));
  ASSERT_TRUE(ad.finished);

  // Same waveform within a few mV everywhere...
  const Trace vref = ref.node_trace(ref_n);
  const Trace vad = ad.node_trace(ad_n);
  double worst = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double t = t_end * k / 100.0;
    worst = std::max(worst, std::fabs(vad.at(t) - vref.at(t)));
  }
  EXPECT_LT(worst, 5e-3);

  // ...the same delivered energy within 1%...
  const double e_ref = ref.total_source_energy();
  const double e_ad = ad.total_source_energy();
  EXPECT_GT(e_ref, 0.0);
  EXPECT_LT(std::fabs(e_ad - e_ref) / e_ref, 0.01);

  // ...at better than 5x fewer accepted steps.
  EXPECT_LT(ad.steps_taken * 5, ref.steps_taken);
}

TEST(StepControl, RejectionPathShrinksOversizedSteps) {
  Circuit c;
  const NodeId n = build_ramp_rc(c);
  (void)n;
  // Start at a step the tolerance cannot possibly accept mid-ramp; the
  // controller must reject its way down and still finish.
  TransientOptions o = adaptive_opts(10e-9, 5e-9);
  o.dt_init = 1e-9;
  const auto res = run_transient(c, o);
  ASSERT_TRUE(res.finished);
  EXPECT_GT(res.steps_rejected, 0u);
}

TEST(StepControl, EventBisectionLocatesRelayPullInAndContact) {
  // Ideal ramp on the relay gate: 0→1.06 V over 2 ns crosses
  // V_PI = 0.53 V at exactly t_x = 1 ns; the beam then traverses the gap
  // in τ_mech, so contact closes at t_x + τ_mech.
  Circuit c;
  const NodeId g = c.node("gate");
  const NodeId d = c.node("drain");
  c.add<VSource>("Vg", g, c.ground(),
                 std::make_unique<PwlWave>(
                     std::vector<std::pair<double, double>>{{0.0, 0.0},
                                                            {2e-9, 1.06}}));
  c.add<VSource>("Vd", d, c.ground(), 1.0, /*series_ohms=*/10e3);
  auto& relay = c.add<NemRelay>("N", d, g, c.ground(), c.ground());
  const double t_x = 1e-9;
  const double tau = relay.params().tau_mech;

  TransientOptions o = adaptive_opts(t_x + tau + 1e-9, 0.5e-9);
  const auto res = run_transient(c, o);
  ASSERT_TRUE(res.finished);

  // Pull-in start and contact arrival were both located.
  EXPECT_GE(res.events_located, 2u);
  EXPECT_TRUE(relay.contact());

  // A step landed just past the pull-in crossing (bisection tolerance plus
  // the Newton bracket granularity).
  double nearest = 1.0;
  for (double t : res.times) nearest = std::min(nearest, std::fabs(t - t_x));
  EXPECT_LT(nearest, 5e-12);

  // Contact time telemetry agrees with the analytic t_x + τ_mech.
  EXPECT_NEAR(relay.t_contact_closed(), t_x + tau, 1e-11);

  // The whole run needed only a modest step count despite the ps-accurate
  // switch location (the fixed 20 ps grid would take ~200 steps).
  EXPECT_LT(res.steps_taken, 120u);
}

TEST(StepControl, EndOfRunSliverIsMergedIntoFinalStep) {
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId n = c.node("out");
  const double t_end = 1e-9;
  // A source corner a quarter of dt_min before t_end: landing on it would
  // schedule a sub-dt_min sliver, so it must merge into the final step.
  c.add<VSource>("Vin", vin, c.ground(),
                 std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
                     {0.0, 0.0}, {t_end - 2.5e-13, 1.0}, {t_end, 1.0}}));
  c.add<Resistor>("R", vin, n, 1e3);
  c.add<Capacitor>("C", n, c.ground(), 1e-13);

  TransientOptions o = adaptive_opts(t_end, 0.2e-9);
  o.dt_init = 1e-12;
  o.dt_min = 1e-12;
  const auto res = run_transient(c, o);
  ASSERT_TRUE(res.finished);
  ASSERT_GE(res.times.size(), 2u);
  EXPECT_DOUBLE_EQ(res.times.back(), t_end);
  for (std::size_t i = 1; i < res.times.size(); ++i)
    EXPECT_GE(res.times[i] - res.times[i - 1], o.dt_min * (1.0 - 1e-6));
}

TEST(StepControl, ProbeRecordingResolvesOnlyProbedColumns) {
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId n = c.node("out");
  c.add<VSource>("Vin", vin, c.ground(), 1.0);
  c.add<Resistor>("R", vin, n, 1e3);
  c.add<Capacitor>("C", n, c.ground(), 1e-12);

  TransientOptions o = adaptive_opts(5e-9, 1e-9);
  o.probe_nodes = {n};
  const auto res = run_transient(c, o);
  ASSERT_TRUE(res.finished);

  const Trace v = res.node_trace(n);
  EXPECT_NEAR(v.at(5e-9), 1.0, 0.01);          // fully charged
  EXPECT_THROW(res.node_trace(vin), std::logic_error);  // not probed
}

}  // namespace
