// Tests for the extended device set: diode, inductor, controlled sources.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "devices/Controlled.h"
#include "devices/Diode.h"
#include "devices/Inductor.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "spice/Circuit.h"
#include "spice/Newton.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"

namespace {

using namespace nemtcam;
using namespace nemtcam::spice;
using namespace nemtcam::devices;

double node_v(const DcResult& dc, NodeId n) {
  return dc.v[static_cast<std::size_t>(n - 1)];
}

// --- Diode ------------------------------------------------------------------

TEST(Diode, ForwardDropIsAbout0p6V) {
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId a = c.node("a");
  c.add<VSource>("V1", vin, c.ground(), 3.0);
  c.add<Resistor>("R1", vin, a, 10e3);
  c.add<Diode>("D1", a, c.ground());
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  const double vd = node_v(dc, a);
  EXPECT_GT(vd, 0.55);
  EXPECT_LT(vd, 0.75);
}

TEST(Diode, ReverseBiasBlocksCurrent) {
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId a = c.node("a");
  c.add<VSource>("V1", vin, c.ground(), -3.0);
  c.add<Resistor>("R1", vin, a, 10e3);
  c.add<Diode>("D1", a, c.ground());
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  // Only the (pico-scale) saturation current flows: node a ≈ −3 V.
  EXPECT_NEAR(node_v(dc, a), -3.0, 1e-3);
}

TEST(Diode, CurrentFollowsShockley) {
  DiodeParams p;
  Diode d("d", 1, 0, p);
  const double i1 = d.current_at(0.6);
  const double i2 = d.current_at(0.6 + 0.02585 * std::log(10.0));
  EXPECT_NEAR(i2 / i1, 10.0, 0.01);  // a decade per 59.6 mV at n=1
  EXPECT_LT(d.current_at(-1.0), 0.0);
  EXPECT_NEAR(d.current_at(-1.0), -p.i_sat, 1e-18);
}

TEST(Diode, HalfWaveRectifier) {
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId out = c.node("out");
  c.add<VSource>("V1", vin, c.ground(),
                 std::make_unique<SinWave>(0.0, 2.0, 100e6));
  c.add<Diode>("D1", vin, out);
  c.add<Resistor>("Rl", out, c.ground(), 1e3);
  c.add<Capacitor>("Cl", out, c.ground(), 100e-15);
  TransientOptions opts;
  opts.t_end = 30e-9;
  opts.dt_max = 50e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  const Trace v = res.node_trace(out);
  EXPECT_GT(v.max_value(), 1.0);     // peaks pass (minus the diode drop)
  EXPECT_GT(v.min_value(), -0.2);    // negative half-waves blocked
}

// --- Inductor ---------------------------------------------------------------

TEST(Inductor, DcActsAsShort) {
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId mid = c.node("mid");
  c.add<VSource>("V1", vin, c.ground(), 1.0);
  c.add<Resistor>("R1", vin, mid, 1e3);
  c.add<Inductor>("L1", mid, c.ground(), 1e-6);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(node_v(dc, mid), 0.0, 1e-9);
}

TEST(Inductor, RlRiseTimeMatchesAnalytic) {
  // i(t) = (V/R)(1 − e^{−tR/L}); τ = L/R = 1 µH / 1 kΩ = 1 ns.
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId mid = c.node("mid");
  c.add<VSource>("V1", vin, c.ground(),
                 std::make_unique<PulseWave>(0.0, 1.0, 0.1e-9, 1e-12, 1e-12, 1.0));
  c.add<Resistor>("R1", vin, mid, 1e3);
  auto& ind = c.add<Inductor>("L1", mid, c.ground(), 1e-6);
  TransientOptions opts;
  opts.t_end = 8e-9;
  opts.dt_max = 5e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  // Final current → 1 mA; check the 1τ point ≈ 63.2%.
  EXPECT_NEAR(ind.current(), 1e-3, 2e-5);
  const Trace vm = res.node_trace(mid);
  // v_mid(t) = e^{−t/τ} during the rise.
  EXPECT_NEAR(vm.at(0.1e-9 + 1e-9), std::exp(-1.0), 0.02);
}

TEST(Inductor, LcOscillationFrequency) {
  // LC tank: f = 1/(2π√(LC)) with L=1 µH, C=1 pF → ~159 MHz.
  Circuit c;
  const NodeId n = c.node("tank");
  c.add<Inductor>("L1", n, c.ground(), 1e-6);
  c.add<Capacitor>("C1", n, c.ground(), 1e-12);
  // Light damping so the numerical dissipation of BE doesn't kill it fast.
  c.add<Resistor>("Rp", n, c.ground(), 1e6);
  c.set_ic(n, 1.0);
  TransientOptions opts;
  opts.t_end = 20e-9;
  opts.dt_max = 10e-12;
  const auto res = run_transient(c, opts);
  ASSERT_TRUE(res.finished) << res.failure;
  const Trace v = res.node_trace(n);
  // Period from the first two downward zero crossings.
  const auto z1 = v.cross_time(0.0, false, 0.0);
  ASSERT_TRUE(z1.has_value());
  const auto z2 = v.cross_time(0.0, false, *z1 + 2e-9);
  ASSERT_TRUE(z2.has_value());
  const double period = *z2 - *z1;
  EXPECT_NEAR(period, 2 * M_PI * std::sqrt(1e-6 * 1e-12), 0.3e-9);
}

// --- Controlled sources ------------------------------------------------------

TEST(Vcvs, AmplifiesControlVoltage) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VSource>("V1", in, c.ground(), 0.2);
  c.add<Vcvs>("E1", out, c.ground(), in, c.ground(), 5.0);
  c.add<Resistor>("Rl", out, c.ground(), 1e3);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(node_v(dc, out), 1.0, 1e-9);
}

TEST(Vccs, InjectsProportionalCurrent) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VSource>("V1", in, c.ground(), 0.5);
  // 1 mS from the control voltage into a 1 kΩ load: v_out = −g·v_in·R.
  c.add<Vccs>("G1", out, c.ground(), in, c.ground(), 1e-3);
  c.add<Resistor>("Rl", out, c.ground(), 1e3);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  // Current g·v flows out→gnd through the source, so it pulls the node low.
  EXPECT_NEAR(node_v(dc, out), -0.5, 1e-9);
}

TEST(Cccs, MirrorsBranchCurrent) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  auto& vs = c.add<VSource>("V1", in, c.ground(), 1.0);
  c.add<Resistor>("R1", in, c.ground(), 1e3);  // 1 mA through V1 (out of +)
  c.add<Cccs>("F1", out, c.ground(), vs, 2.0);
  c.add<Resistor>("Rl", out, c.ground(), 1e3);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  // i(V1) = −1 mA (into +); F injects 2·i from out→gnd ⇒ v_out = +2 V.
  EXPECT_NEAR(node_v(dc, out), 2.0, 1e-9);
}

TEST(Ccvs, TransresistanceOutput) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  auto& vs = c.add<VSource>("V1", in, c.ground(), 1.0);
  c.add<Resistor>("R1", in, c.ground(), 1e3);
  c.add<Ccvs>("H1", out, c.ground(), vs, 500.0);
  c.add<Resistor>("Rl", out, c.ground(), 1e3);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  // v_out = r·i(V1) = 500 · (−1 mA) = −0.5 V.
  EXPECT_NEAR(node_v(dc, out), -0.5, 1e-9);
}

TEST(Controlled, RequireBranchOwningController) {
  Circuit c;
  const NodeId a = c.node("a");
  auto& r = c.add<Resistor>("R1", a, c.ground(), 1e3);
  EXPECT_THROW(c.add<Cccs>("F1", a, c.ground(), r, 1.0), std::logic_error);
}

}  // namespace
