#include <gtest/gtest.h>

#include <algorithm>

#include "linalg/DenseLu.h"
#include "linalg/DenseMatrix.h"
#include "linalg/SparseLu.h"
#include "linalg/SparseMatrix.h"
#include "util/Random.h"

namespace {

using namespace nemtcam::linalg;
using nemtcam::util::Rng;

TEST(DenseMatrix, MultiplyIdentity) {
  auto id = DenseMatrix::identity(3);
  std::vector<double> x = {1.0, -2.0, 3.0};
  EXPECT_EQ(id.multiply(x), x);
}

TEST(DenseLu, SolvesKnownSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  DenseLu lu(a);
  const auto x = lu.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLu, RequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  DenseMatrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  DenseLu lu(a);
  const auto x = lu.solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseLu, ThrowsOnSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_THROW(DenseLu bad(a), SingularMatrixError);
}

TEST(SparseMatrix, AccumulatesDuplicates) {
  SparseMatrix m(2, 2);
  m.add(0, 0, 1.0);
  m.add(0, 0, 2.5);
  m.add(1, 1, 1.0);
  EXPECT_EQ(m.nnz(), 2u);
  const auto y = m.multiply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
}

TEST(SparseMatrix, DropsExplicitZeros) {
  SparseMatrix m(2, 2);
  m.add(0, 1, 0.0);
  m.add(1, 1, 2.0);
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(SparseLu, MatchesDenseOnRandomSystems) {
  Rng rng(123);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 40));
    DenseMatrix d(n, n);
    SparseMatrix s(n, n);
    // Diagonally dominated random sparse pattern — MNA-like.
    for (std::size_t i = 0; i < n; ++i) {
      const double diag = rng.uniform(1.0, 5.0);
      d(i, i) += diag;
      s.add(i, i, diag);
      const int offdiag = rng.uniform_int(0, 4);
      for (int k = 0; k < offdiag; ++k) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(n) - 1));
        const double v = rng.uniform(-0.5, 0.5);
        d(i, j) += v;
        s.add(i, j, v);
      }
    }
    std::vector<double> b(n);
    for (auto& x : b) x = rng.uniform(-1.0, 1.0);

    DenseLu dlu(d);
    SparseLu slu(s);
    const auto xd = dlu.solve(b);
    const auto xs = slu.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
  }
}

TEST(SparseLu, HandlesPermutationRequiringMatrix) {
  SparseMatrix s(3, 3);
  s.add(0, 1, 1.0);
  s.add(1, 2, 1.0);
  s.add(2, 0, 1.0);
  SparseLu lu(s);
  const auto x = lu.solve({1.0, 2.0, 3.0});
  // Row0: x1 = 1, Row1: x2 = 2, Row2: x0 = 3.
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[2], 2.0, 1e-12);
}

TEST(SparseLu, ThrowsOnSingular) {
  SparseMatrix s(2, 2);
  s.add(0, 0, 1.0);
  s.add(1, 0, 2.0);  // column 1 empty
  EXPECT_THROW(SparseLu bad(s), SingularMatrixError);
}

TEST(SparseLu, ResidualIsSmallOnLargerSystem) {
  Rng rng(77);
  const std::size_t n = 500;
  SparseMatrix s(n, n);
  SparseMatrix s_copy(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double diag = rng.uniform(2.0, 6.0);
    s.add(i, i, diag);
    s_copy.add(i, i, diag);
    for (int k = 0; k < 3; ++k) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(n) - 1));
      const double v = rng.uniform(-0.4, 0.4);
      s.add(i, j, v);
      s_copy.add(i, j, v);
    }
  }
  std::vector<double> b(n);
  for (auto& x : b) x = rng.uniform(-1.0, 1.0);
  SparseLu lu(s);
  const auto x = lu.solve(b);
  const auto ax = s_copy.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

// Owning CSR buffer for the refactorize tests: the pattern is built once
// and the values mutated in place, exactly how AssemblyCache drives SparseLu.
struct CsrSystem {
  std::size_t n = 0;
  std::vector<std::size_t> row_ptr, cols;
  std::vector<double> vals;

  CsrView view() const { return {n, row_ptr.data(), cols.data(), vals.data()}; }

  DenseMatrix dense() const {
    DenseMatrix d(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
        d(r, cols[k]) += vals[k];
    return d;
  }
};

// Random diagonally-dominant MNA-like pattern (explicit zeros allowed so
// the structural schedule is exercised).
CsrSystem make_random_system(Rng& rng, std::size_t n) {
  CsrSystem s;
  s.n = n;
  s.row_ptr.push_back(0);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> row_cols = {i};
    const int offdiag = rng.uniform_int(0, 4);
    for (int k = 0; k < offdiag; ++k) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(n) - 1));
      if (j != i) row_cols.push_back(j);
    }
    std::sort(row_cols.begin(), row_cols.end());
    row_cols.erase(std::unique(row_cols.begin(), row_cols.end()),
                   row_cols.end());
    for (std::size_t j : row_cols) {
      s.cols.push_back(j);
      s.vals.push_back(j == i ? rng.uniform(3.0, 6.0)
                              : rng.uniform(-0.5, 0.5));
    }
    s.row_ptr.push_back(s.cols.size());
  }
  return s;
}

TEST(SparseLuRefactorize, MatchesDenseAcrossPerturbedValues) {
  Rng rng(321);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(3, 40));
    CsrSystem sys = make_random_system(rng, n);
    SparseLu lu(sys.view());  // symbolic analysis + first numeric factor

    for (int round = 0; round < 5; ++round) {
      // Same pattern, new values — the Newton-iteration situation.
      for (std::size_t k = 0; k < sys.vals.size(); ++k)
        sys.vals[k] *= rng.uniform(0.8, 1.25);
      ASSERT_TRUE(lu.refactorize(sys.view()));

      std::vector<double> b(n);
      for (auto& x : b) x = rng.uniform(-1.0, 1.0);
      DenseLu dlu(sys.dense());
      const auto xd = dlu.solve(b);
      const auto xs = lu.solve(b);
      for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
    }
  }
}

TEST(SparseLuRefactorize, HandlesEntryThatWasZeroAtAnalysisTime) {
  // The (2,0) coupling is an exact zero when the schedule is recorded; a
  // value-driven recording would drop it and silently mis-solve later.
  CsrSystem sys;
  sys.n = 3;
  sys.row_ptr = {0, 2, 4, 6};
  sys.cols = {0, 1, 1, 2, 0, 2};
  sys.vals = {4.0, 1.0, 3.0, 1.0, 0.0, 5.0};
  SparseLu lu(sys.view());

  sys.vals[4] = 2.0;  // the formerly-zero entry comes alive
  ASSERT_TRUE(lu.refactorize(sys.view()));
  const std::vector<double> b = {1.0, 2.0, 3.0};
  DenseLu dlu(sys.dense());
  const auto xd = dlu.solve(b);
  const auto xs = lu.solve(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-12);
}

TEST(SparseLuRefactorize, DegeneratePivotFallsBackToFullFactorization) {
  // Dense 2x2 pattern. The first factorization pivots on the dominant
  // (0,0); the new values make that pivot numerically dead while the
  // matrix itself stays well-conditioned, so refactorize must refuse and
  // a fresh factorize (free to re-pivot) must succeed.
  CsrSystem sys;
  sys.n = 2;
  sys.row_ptr = {0, 2, 4};
  sys.cols = {0, 1, 0, 1};
  sys.vals = {4.0, 1.0, 1.0, 1.0};
  SparseLu lu(sys.view());

  sys.vals = {1e-40, 1.0, 1.0, 1.0};
  EXPECT_FALSE(lu.refactorize(sys.view()));

  lu.factorize(sys.view());  // the caller-side fallback
  const auto x = lu.solve({1.0, 2.0});
  DenseLu dlu(sys.dense());
  const auto xd = dlu.solve({1.0, 2.0});
  EXPECT_NEAR(x[0], xd[0], 1e-9);
  EXPECT_NEAR(x[1], xd[1], 1e-9);
}

TEST(SparseLuRefactorize, UnanalyzedOrMismatchedPatternReturnsFalse) {
  SparseLu lu;
  CsrSystem sys;
  sys.n = 2;
  sys.row_ptr = {0, 2, 4};
  sys.cols = {0, 1, 0, 1};
  sys.vals = {2.0, 1.0, 1.0, 2.0};
  EXPECT_FALSE(lu.refactorize(sys.view()));  // never analyzed

  lu.factorize(sys.view());
  CsrSystem other;  // same n, different pattern
  other.n = 2;
  other.row_ptr = {0, 1, 2};
  other.cols = {0, 1};
  other.vals = {2.0, 2.0};
  EXPECT_FALSE(lu.refactorize(other.view()));
}

TEST(VectorOps, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_DOUBLE_EQ(norm_inf({1.0, -5.0, 2.0}), 5.0);
  const auto r = subtract({3.0, 3.0}, {1.0, 5.0});
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_DOUBLE_EQ(r[1], -2.0);
}

}  // namespace
