#include "tcam/StaBridge.h"

#include <cmath>
#include <limits>

namespace nemtcam::tcam {

sta::StaOptions sta_options_for(const Calibration& cal,
                                double strobe_delay) {
  sta::StaOptions opt;
  opt.vdd = cal.vdd;
  opt.v_sense = cal.ml_sense_level;
  opt.t_precharge = cal.t_precharge;
  opt.t_strobe = strobe_delay;
  opt.t_window = cal.t_search_window;
  opt.refresh_period = cal.t_refresh_period;
  return opt;
}

StaSummary sta_summary_from(const sta::StaReport& rep,
                            const std::string& ml_node) {
  StaSummary s;
  for (const auto& ml : rep.mls) {
    if (ml.node != ml_node || !ml.valid) continue;
    s.valid = true;
    s.t_lo = ml.t_cross_lo;
    s.t_nom = ml.t_cross_nom;
    s.t_hi = ml.t_cross_hi;
    s.v_strobe = ml.v_strobe_nom;
    s.margin = ml.sense_margin;
    break;
  }
  s.e_lo = rep.e_search_lo;
  s.e_hi = rep.e_search_hi;
  s.t_sl_settle = rep.t_sl_settle_max;
  s.t_retention = std::numeric_limits<double>::infinity();
  if (const sta::RetentionReport* worst = rep.worst_retention())
    s.t_retention = worst->t_retention;
  return s;
}

}  // namespace nemtcam::tcam
