// Column-coupled full-array search transactions.
//
// A SearchTemplate simulates one row against lumped stand-ins for the
// rest of the array. ArrayTemplate drops the stand-ins: it elaborates a
// true N×M array — N matchlines with their own precharge devices, N×M
// cells, and shared searchline pairs modelled as segmented RC ladders
// that every row taps — so all N rows load the SL drivers at once and
// evaluate the key in parallel, coupling through the lines exactly as
// the tiled silicon would.
//
// The resulting MNA system is bordered-block-diagonal by construction:
// the fixture records a device→owner map while it builds and installs
// the derived partition on the circuit's solver cache, so Newton solves
// run through linalg::BbdSolver — blocks factorized in parallel on a
// ThreadPool, one small dense Schur solve on the border. Two partition
// axes exist (ArrayOptions::partition): per-column blocks own their
// SL/SL̄ ladder and drivers outright, leaving only the N matchlines and
// the rails in the border; per-row blocks own their matchline but push
// every line-segment node into a 2·M·segments border. Set
// ArrayOptions::use_bbd = false for the monolithic-SparseLu A/B leg: the
// circuit is bit-identical, only the linear solver changes.
//
// The elaborate-once / replay-many contract matches SearchTemplate:
// key changes rebind the driver waveforms, stored-word changes to the
// same words re-seed device state; only a different stored image
// rebuilds. Cell instance paths are "Xrow<r>.Xcell<c>.<card>" — the ERC
// rules and the fault injector address cells through the same two-level
// scope.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/Ternary.h"
#include "erc/Checker.h"
#include "spice/Circuit.h"
#include "spice/Transient.h"
#include "tcam/SearchTemplate.h"

namespace nemtcam::util {
class ThreadPool;
}

namespace nemtcam::tcam {

// Which array axis becomes the diagonal blocks. The circuit is identical
// either way — only solver cost moves. ByColumn folds each column's
// cells, its SL/SL̄ ladder and both drivers into one block, so the border
// is just the N matchlines plus the rails regardless of sl_segments; it
// is the cheaper axis whenever M·segments outnumber N (always, for the
// square arrays here). ByRow keeps each row's matchline and cells as a
// block — the natural mirror of the paper's all-rows-in-parallel search —
// at the price of a 2·M·segments border.
enum class ArrayPartition { ByColumn, ByRow };

struct ArrayOptions {
  // Shared-searchline discretization: each SL/SL̄ runs as `sl_segments`
  // RC sections (per-cell wire R and C from the Calibration), rows
  // tapping their nearest section node. More segments → finer line model
  // but a larger border (2·M·segments shared nodes) under the ByRow
  // partition; ByColumn keeps segments block-interior. Clamped to [1, N].
  int sl_segments = 2;
  // Diagonal-block axis for the BBD partition (see ArrayPartition).
  ArrayPartition partition = ArrayPartition::ByColumn;
  // Route Newton solves through the BBD Schur solver (false = monolithic
  // SparseLu on the identical circuit — the A/B baseline).
  bool use_bbd = true;
  // Run the ERC pass before the transient. Worth disabling for the very
  // large bench arrays: the rules walk the full device list per row.
  bool run_erc = true;
  // Pool for the per-row block factorizations; nullptr → the process-wide
  // util::shared_pool(). Determinism tests pass their own fixed-size pool.
  util::ThreadPool* pool = nullptr;
};

// Per-matchline outcome of one array search.
struct ArrayRowResult {
  bool matched = false;  // ML above the sense level at the strobe
  double latency = 0.0;  // SL edge → ML crossing the sense level (s)
  double ml_final = 0.0;
  double ml_min = 0.0;  // minimum after the SL edge
  // This row's static bounds from the whole-array STA pass (the energy
  // band and line/retention worst cases repeat the array-level figures).
  StaSummary sta;
};

struct ArraySearchMetrics {
  bool ok = false;
  std::vector<ArrayRowResult> rows;
  int match_count = 0;
  double energy = 0.0;  // whole-array net source energy (J)
  // Solver-effort telemetry.
  std::size_t steps = 0;
  std::size_t steps_rejected = 0;
  std::size_t newton_iters = 0;
  std::size_t erc_errors = 0;
  std::size_t erc_warnings = 0;
  std::size_t stamp_pattern_builds = 0;  // replay ⇒ unchanged
  // BBD telemetry: solver actually in use at measurement time (a
  // partition-mismatch fallback clears used_bbd and bumps bbd_fallbacks).
  bool used_bbd = false;
  std::size_t bbd_blocks = 0;
  std::size_t bbd_border = 0;
  std::uint64_t bbd_fallbacks = 0;
  // Array-level STA aggregate: timing bounds span every discharging row
  // (t_lo = earliest, t_hi = latest), margin/v_strobe come from the row
  // closest to the sense threshold, energy band covers the whole array.
  StaSummary sta;
  std::string note;
};

// Design-independent array scaffolding: VDD/precharge rails, N matchlines
// with precharge PMOS and wire parasitics, M segmented SL/SL̄ ladders
// driven per the key. Owner bookkeeping: the fixture claims its own
// devices as it builds; the template claims each row's cells; everything
// left unclaimed when install_partition() runs is shared (border).
class ArrayFixture {
 public:
  ArrayFixture(const Calibration& cal, const CellGeometry& geo, int rows,
               int width, const core::TernaryWord& key,
               const ArrayOptions& opt);

  spice::Circuit& circuit() noexcept { return circuit_; }
  int rows() const noexcept { return rows_; }
  int width() const noexcept { return width_; }
  spice::NodeId vdd() const noexcept { return vdd_; }
  spice::NodeId ml(int row) const {
    return ml_.at(static_cast<std::size_t>(row));
  }
  // The searchline tap row `row` connects to: the RC-ladder section node
  // nearest that row.
  spice::NodeId sl(int row, int col) const;
  spice::NodeId slb(int row, int col) const;
  double t_edge() const noexcept { return t_edge_; }
  double t_end() const noexcept { return t_end_; }

  erc::Checker& checker() noexcept { return checker_; }
  const erc::Report& check();

  // Marks every device added since the previous claim as belonging to
  // `owner`: a block id in [0, n_owners()) or -1 = shared.
  void claim(int owner);
  // Owner ids under the selected partition axis. ByColumn: a cell, its
  // column's ladder wire and both its drivers all belong to block `col`;
  // per-row hardware (precharge PMOS, ML wire C) is shared. ByRow: a
  // cell and the row hardware belong to block `row`, the ladder wire is
  // shared, and each driver's branch unknown forms its own 1×1 block so
  // the border holds only genuinely shared nodes.
  int cell_owner(int row, int col) const {
    return opt_.partition == ArrayPartition::ByColumn ? col : row;
  }
  int row_hw_owner(int row) const {
    return opt_.partition == ArrayPartition::ByColumn ? -1 : row;
  }
  int line_owner(int col) const {
    return opt_.partition == ArrayPartition::ByColumn ? col : -1;
  }
  int sl_driver_owner(int col) const {
    return opt_.partition == ArrayPartition::ByColumn ? col : rows_ + 2 * col;
  }
  int slb_driver_owner(int col) const {
    return opt_.partition == ArrayPartition::ByColumn ? col
                                                      : rows_ + 2 * col + 1;
  }
  int n_owners() const {
    return opt_.partition == ArrayPartition::ByColumn ? width_
                                                      : rows_ + 2 * width_;
  }

  // Derives the BBD partition from the claimed owners and installs it on
  // the circuit's solver cache (no-op when options disable BBD). Call
  // after the last device is added.
  void install_partition();

  // ERC gate (when enabled) + transient over the search timeline, probing
  // every matchline.
  spice::TransientResult run(double dt_max = 20e-12);

  // Re-aims all 2M searchline drivers at a new key (waveform rebind; no
  // topology change, the partition and factorization pattern survive).
  void rebind_key(const core::TernaryWord& key);

  ArraySearchMetrics metrics(const spice::TransientResult& result,
                             double strobe_delay);

 private:
  Calibration cal_;
  ArrayOptions opt_;
  int rows_ = 0;
  int width_ = 0;
  int n_segments_ = 1;
  erc::Checker checker_;
  std::optional<erc::Report> report_;
  spice::Circuit circuit_;
  spice::NodeId vdd_{};
  std::vector<spice::NodeId> ml_;
  // [col][segment] ladder nodes; segment 0 carries the driver.
  std::vector<std::vector<spice::NodeId>> sl_seg_;
  std::vector<std::vector<spice::NodeId>> slb_seg_;
  std::vector<int> seg_of_row_;
  std::vector<int> rows_in_seg_;
  std::vector<int> owner_of_device_;
  double c_vline_ = 0.0;  // per-cell vertical-wire C (F)
  double r_vline_ = 0.0;  // per-cell vertical-wire R (Ω)
  double t_edge_ = 0.0;
  double t_end_ = 0.0;

  std::vector<spice::NodeId> build_ladder(const std::string& name,
                                          double v_drive, int driver_owner,
                                          int wire_owner);
};

// Elaborate-once / replay-many N×M array built from the same per-kind
// SearchTemplateSpec a single-row SearchTemplate uses (RowSpecs.h
// factories): same cells, same binder, same ERC hooks — the spec's
// array_rules run once per row with the row's scope and matchline.
class ArrayTemplate {
 public:
  ArrayTemplate(SearchTemplateSpec spec, int rows, int width,
                ArrayOptions opt = {});

  int rows() const noexcept { return rows_; }
  int width() const noexcept { return width_; }

  // Replaces row `row`'s stored word. The next search rebuilds the
  // template (ERC rules and cached report are bound to the stored image).
  void store(int row, const core::TernaryWord& word);
  const core::TernaryWord& stored(int row) const {
    return stored_.at(static_cast<std::size_t>(row));
  }

  // Searches every row against `key` in one coupled transient.
  // strobe_delay < 0 → the spec's nominal strobe scaled for this width.
  ArraySearchMetrics search(const core::TernaryWord& key,
                            double strobe_delay = -1.0, double dt_max = 20e-12);

  // Nominal sense strobe for this width (spec.t_strobe at the 64-bit
  // reference, scaled as TcamRow::strobe_scale does).
  double default_strobe() const {
    return spec_.t_strobe * (0.25 + 0.75 * static_cast<double>(width_) / 64.0);
  }

  std::uint64_t builds() const noexcept { return builds_; }
  const SearchTemplateSpec& spec() const noexcept { return spec_; }
  // For telemetry assertions and in-place circuit mutation (fault
  // injection between searches); null before the first search.
  const ArrayFixture* fixture() const noexcept { return fx_.get(); }
  ArrayFixture* fixture() noexcept { return fx_.get(); }

 private:
  void build(const core::TernaryWord& key);

  SearchTemplateSpec spec_;
  int rows_;
  int width_;
  ArrayOptions opt_;
  std::unique_ptr<ArrayFixture> fx_;
  std::vector<std::vector<hier::InstanceHandles>> cells_;  // [row][col]
  std::vector<core::TernaryWord> stored_;
  core::TernaryWord built_key_;
  std::vector<core::TernaryWord> built_stored_;
  std::uint64_t builds_ = 0;
};

}  // namespace nemtcam::tcam
