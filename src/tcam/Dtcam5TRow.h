// Conventional dynamic CMOS TCAM (after ref [4], Vinogradov et al.) — the
// paper's introduction baseline: denser than SRAM because the two ternary
// state bits are stored as charge on compare-transistor gates instead of
// in cross-coupled latches, but with plain capacitive storage and
// therefore row-by-row refresh (no hysteresis window, so one-shot refresh
// is impossible — exactly the contrast the 3T2N draws).
//
// Cell (per column, 6 transistors in this realization — ref [4] reports a
// 5T cell; the extra device here is the second write port that makes the
// ternary encoding symmetric; the dynamic-storage properties that matter
// for the comparison are identical):
//   BL  ── Tw1 ── stg1 (gate of Mc1)     path A: ML → Mc1 → Mc2(SL̄) → GND
//   BL̄ ── Tw2 ── stg2 (gate of Mc3)     path B: ML → Mc3 → Mc4(SL)  → GND
//
// Encoding: '1' → stg1 charged; '0' → stg2 charged; 'X' → both empty —
// the same XNOR wired-NOR compare as the 16T SRAM TCAM, with the storage
// gates isolated from searchline swings (a floating dynamic node directly
// on an active searchline would be disturbed by coupling on every search).
#pragma once

#include "tcam/TcamRow.h"

namespace nemtcam::tcam {

class Dtcam5TRow final : public TcamRow {
 public:
  Dtcam5TRow(int width, int array_rows, const Calibration& cal);

  TcamKind kind() const override { return TcamKind::Dtcam5T; }

  SearchMetrics search(const TernaryWord& key) override;

  // Dynamic storage retention from the written '1' level; the cell has no
  // hysteresis window, so data is lost when the stored level can no longer
  // keep the compare transistor decisively conductive (V_th + ~100 mV).
  double simulate_retention(double v_start) const;

  // Conventional refresh: one row read-and-write-back; reports per-op
  // energy/blocked time and the array refresh power (rows × E / retention).
  RefreshMetrics row_refresh_cost();

  struct StoredLevels {
    double v1;
    double v2;
  };
  static StoredLevels levels_for(Ternary t, double v_high);
  StoredLevels levels_for(Ternary t) const;

 protected:
  WriteMetrics simulate_write(const TernaryWord& old_word,
                              const TernaryWord& new_word) override;

};

}  // namespace nemtcam::tcam
