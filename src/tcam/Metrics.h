// Result records for circuit-level TCAM transactions.
#pragma once

#include <cstddef>
#include <string>

namespace nemtcam::tcam {

struct WriteMetrics {
  bool ok = false;          // all cells reached their target state
  double latency = 0.0;     // time from write assertion to last cell settled (s)
  double energy = 0.0;      // net energy delivered by all sources (J)
  std::string note;         // failure diagnostics
};

// Closed-form bounds from the sta:: engine, attached to transaction
// metrics when static analysis is enabled (sta::default_enabled()). The
// contract the STA bench enforces: t_lo ≤ measured mismatch latency ≤
// t_hi, e_lo ≤ measured search energy ≤ e_hi. All zeros when invalid.
struct StaSummary {
  bool valid = false;
  double t_lo = 0.0;        // earliest credible ML crossing (s)
  double t_nom = 0.0;       // nominal single-pole crossing estimate (s)
  double t_hi = 0.0;        // latest credible crossing incl. SL settle (s)
  double v_strobe = 0.0;    // predicted ML level at the sense strobe (V)
  double margin = 0.0;      // signed sense margin at the strobe (V)
  double e_lo = 0.0;        // search-energy band (J)
  double e_hi = 0.0;
  double t_sl_settle = 0.0;   // worst driven-line settle bound (s)
  double t_retention = 0.0;   // worst storage retention bound (s; inf = safe)
  double analysis_seconds = 0.0;  // wall time of the static pass
};

struct SearchMetrics {
  bool ok = false;            // simulation finished and ML behaved sanely
  bool matched = false;       // ML stayed up (match) vs discharged (mismatch)
  double latency = 0.0;       // SL edge → ML crossing sense level (s); 0 if match
  double energy = 0.0;        // net energy delivered by all sources (J)
  double ml_final = 0.0;      // ML voltage at the end of the window (V)
  double ml_min = 0.0;        // minimum ML voltage in the window (V)
  // Solver-effort telemetry (for fixed-vs-adaptive step-control A/B).
  std::size_t steps = 0;           // accepted transient steps
  std::size_t steps_rejected = 0;  // LTE rejections
  std::size_t newton_iters = 0;    // total Newton iterations
  // Static-analysis telemetry: findings from the pre-simulation ERC pass
  // (errors > 0 means no transient was run and ok stays false).
  std::size_t erc_errors = 0;
  std::size_t erc_warnings = 0;
  // Cumulative stamp-pattern builds on the transaction's circuit. A
  // replayed search on an elaborated template leaves this unchanged — the
  // assertion behind the "zero reconstruction after the first search"
  // contract (see hier/Elaborate.h).
  std::size_t stamp_pattern_builds = 0;
  // Static timing/energy bounds for this transaction's circuit (empty
  // when sta::default_enabled() is off).
  StaSummary sta;
  std::string note;

  double edp() const { return energy * latency; }
};

struct RefreshMetrics {
  bool ok = false;
  double energy_per_op = 0.0;   // J per one-shot refresh of the whole array
  double latency = 0.0;         // refresh operation duration (s)
  double retention_time = 0.0;  // worst-case data retention from refresh level (s)
  double refresh_power = 0.0;   // energy_per_op / retention_time (W)
  std::string note;
};

}  // namespace nemtcam::tcam
