// 4-transistor / 2-FeFET TCAM (Fig. 2(c), Yin et al. DATE'17).
//
// Per cell, two branches between the matchline and ground:
//   branch A: ML → Ma(gate=SL)  → mid_a → Fa → GND
//   branch B: ML → Mb(gate=SL̄) → mid_b → Fb → GND
// plus two access transistors that couple the FeFET gates to the bitlines
// when the wordline is asserted (program path). During a search the FeFET
// gates are biased at the read level through the same access devices, so —
// unlike the 2FeFET cell — program-level voltages never appear on
// half-selected cells (the disturb robustness the paper credits this
// design with, at the cost of twice the transistors).
//
// Encoding matches the 2FeFET row: stored '1' → Fa high-V_th, Fb low-V_th.
#pragma once

#include "tcam/TcamRow.h"

namespace nemtcam::tcam {

class Fefet4T2FRow final : public TcamRow {
 public:
  Fefet4T2FRow(int width, int array_rows, const Calibration& cal);

  TcamKind kind() const override { return TcamKind::Fefet4T2F; }

  SearchMetrics search(const TernaryWord& key) override;

  struct FefetStates {
    bool fa_low_vth;
    bool fb_low_vth;
  };
  static FefetStates states_for(Ternary t);

 protected:
  WriteMetrics simulate_write(const TernaryWord& old_word,
                              const TernaryWord& new_word) override;

};

}  // namespace nemtcam::tcam
