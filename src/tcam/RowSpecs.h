// Per-design search-transaction specs, factored out of the row classes so
// both consumers can elaborate the same cells against the same hooks:
//   - SearchTemplate builds ONE row (TcamRow's per-row methodology, line
//     parasitics standing in for the rest of the array), and
//   - ArrayTemplate tiles N rows of real cells on shared column lines
//     (the column-coupled full-array path).
// Each factory captures everything design-specific — the cell SubcktDef,
// the state binder, shared rails, ML loading, strobe timing, ERC rules —
// in one SearchTemplateSpec; the fixtures stay design-agnostic.
#pragma once

#include "tcam/SearchTemplate.h"
#include "tcam/TcamRow.h"

namespace nemtcam::tcam {

SearchTemplateSpec sram16t_search_spec(const Calibration& cal);
SearchTemplateSpec nem3t2n_search_spec(const Calibration& cal);
SearchTemplateSpec rram2t2r_search_spec(const Calibration& cal);
SearchTemplateSpec fefet2f_search_spec(const Calibration& cal);
SearchTemplateSpec dtcam5t_search_spec(const Calibration& cal);
SearchTemplateSpec fefet4t2f_search_spec(const Calibration& cal);
SearchTemplateSpec mram4t2m_search_spec(const Calibration& cal);

// Dispatch by kind (the per-kind factory, nothing else).
SearchTemplateSpec search_spec_for(TcamKind kind, const Calibration& cal);

}  // namespace nemtcam::tcam
