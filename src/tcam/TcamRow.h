// Circuit-level TCAM row simulator interface.
//
// A TcamRow models one word-row of `width` cells embedded in an array of
// `array_rows` rows: vertical lines (BL/SL) carry the parasitic load of the
// full column height, horizontal lines (ML/WL) the load of the full row
// width — matching the paper's "per-row measurement on a 64×64 array with
// line parasitics scaled by cell size" methodology.
//
// Every transaction (write / search / refresh) builds a fresh transistor-
// level netlist seeded from the currently stored word and runs a transient
// analysis on it; metrics come from the waveforms and device state
// telemetry, exactly like .measure on a SPICE deck.
#pragma once

#include <memory>
#include <string>

#include "core/Ternary.h"
#include "tcam/Calibration.h"
#include "tcam/Metrics.h"

namespace nemtcam::tcam {

using core::Ternary;
using core::TernaryWord;

// The paper's evaluated designs (Fig. 2 + the 3T2N contribution), plus two
// designs it describes but does not benchmark: the conventional 5T dynamic
// CMOS TCAM of ref [4] (the intro's row-by-row-refresh baseline) and the
// 4T2F FeFET TCAM of Fig. 2(c).
enum class TcamKind {
  Sram16T, Nem3T2N, Rram2T2R, Fefet2F,  // the paper's evaluated designs
  Dtcam5T, Fefet4T2F, Mram4T2M,         // designs it describes (Fig. 2 / §I-II)
};

const char* kind_name(TcamKind k);

class SearchTemplate;

class TcamRow {
 public:
  virtual ~TcamRow();  // out-of-line: SearchTemplate is incomplete here

  virtual TcamKind kind() const = 0;
  int width() const noexcept { return width_; }
  int array_rows() const noexcept { return array_rows_; }
  const Calibration& cal() const noexcept { return cal_; }

  // Establishes the stored word instantly (device-state poke, no transaction
  // simulated). Used to set up search experiments.
  void store(const TernaryWord& word);

  const TernaryWord& stored() const noexcept { return stored_; }

  // Simulates the full write transaction replacing the stored word.
  // On success the stored word is updated.
  WriteMetrics write(const TernaryWord& word);

  // Simulates a search against the stored word.
  virtual SearchMetrics search(const TernaryWord& key) = 0;

 protected:
  TcamRow(int width, int array_rows, const Calibration& cal);

  // Sense-strobe scaling for non-reference widths: the ML time constant
  // has a width-proportional wire/junction part and a fixed part (sense
  // amp, precharge junction), so the strobe shrinks sub-linearly.
  double strobe_scale() const {
    return 0.25 + 0.75 * static_cast<double>(width()) / 64.0;
  }

  virtual WriteMetrics simulate_write(const TernaryWord& old_word,
                                      const TernaryWord& new_word) = 0;

  TernaryWord stored_;

  // Lazily built elaborated search transaction (hier::default_enabled()
  // path). Row builders fill it on first search; replays rebind instead
  // of reconstructing. Rows with per-search stochastic device parameters
  // (RRAM variation) leave it unset and fall back to the flat builder.
  std::unique_ptr<SearchTemplate> search_tpl_;

 private:
  int width_;
  int array_rows_;
  Calibration cal_;
};

// Factory.
std::unique_ptr<TcamRow> make_row(TcamKind kind, int width, int array_rows,
                                  const Calibration& cal = Calibration::standard());

}  // namespace nemtcam::tcam
