// 16-transistor SRAM-based TCAM baseline (Fig. 2(a), Pagiamtzis survey).
//
// Per cell: two 6T SRAM bit cells (d1 stores the "match-on-0" enable,
// d2 the "match-on-1" enable) plus a 4-transistor NOR compare network:
//   path A: ML → Mc1(gate=d1) → Mc2(gate=SL̄) → GND
//   path B: ML → Mc3(gate=d2) → Mc4(gate=SL)  → GND
// Encoding: '1' → d1=1,d2=0; '0' → d1=0,d2=1; 'X' → d1=d2=0.
// Writes drive four bitlines per column through the access devices.
#pragma once

#include "tcam/TcamRow.h"

namespace nemtcam::tcam {

class Sram16TRow final : public TcamRow {
 public:
  Sram16TRow(int width, int array_rows, const Calibration& cal);

  TcamKind kind() const override { return TcamKind::Sram16T; }

  SearchMetrics search(const TernaryWord& key) override;

  struct CellBits {
    bool d1;
    bool d2;
  };
  static CellBits bits_for(Ternary t);

 protected:
  WriteMetrics simulate_write(const TernaryWord& old_word,
                              const TernaryWord& new_word) override;

};

}  // namespace nemtcam::tcam
