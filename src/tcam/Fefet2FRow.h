// Ultra-dense 2-FeFET TCAM baseline (Fig. 2(d), Yin et al. TCAS-II'18).
//
// Per cell, two FeFETs in parallel between the matchline and ground,
// gates on SL and SL̄:
//   F1: D=ML, G=SL,  S=GND     F2: D=ML, G=SL̄, S=GND
// Encoding: stored '1' → F1 high-V_th, F2 low-V_th; '0' → mirrored;
// 'X' → both high-V_th. A mismatch puts VDD on the gate of a low-V_th
// device, which discharges ML; matches see only HVT subthreshold leak.
//
// Writes drive SL/SL̄ to ±4 V for 10 ns (polarization switching). The
// 4 V line swing is what makes the write energy ~13× the 3T2N's.
#pragma once

#include "tcam/TcamRow.h"

namespace nemtcam::tcam {

class Fefet2FRow final : public TcamRow {
 public:
  Fefet2FRow(int width, int array_rows, const Calibration& cal);

  TcamKind kind() const override { return TcamKind::Fefet2F; }

  SearchMetrics search(const TernaryWord& key) override;

  struct FefetStates {
    bool f1_low_vth;
    bool f2_low_vth;
  };
  static FefetStates states_for(Ternary t);

 protected:
  WriteMetrics simulate_write(const TernaryWord& old_word,
                              const TernaryWord& new_word) override;

};

}  // namespace nemtcam::tcam
