#include "tcam/SearchTemplate.h"

#include "devices/Passive.h"
#include "sta/Rules.h"
#include "sta/Sta.h"
#include "tcam/StaBridge.h"

namespace nemtcam::tcam {

SearchTemplate::SearchTemplate(SearchTemplateSpec spec, int width,
                               int array_rows)
    : spec_(std::move(spec)), width_(width), array_rows_(array_rows) {
  NEMTCAM_EXPECT(static_cast<bool>(spec_.bind));
  NEMTCAM_EXPECT(!spec_.cell.ports.empty());
}

void SearchTemplate::build(const core::TernaryWord& key,
                           const core::TernaryWord& stored) {
  fx_ = std::make_unique<SearchFixture>(spec_.cal, spec_.geo, width_,
                                        array_rows_, key,
                                        spec_.c_sl_gate_per_row);
  cells_.clear();
  cells_.reserve(static_cast<std::size_t>(width_));

  std::map<std::string, spice::NodeId> extra;
  if (spec_.shared_rails)
    extra = spec_.shared_rails(fx_->circuit(), fx_->vdd());
  if (spec_.c_ml_load_per_cell > 0.0)
    fx_->circuit().add<devices::Capacitor>("Cel_ml", fx_->ml(),
                                           fx_->circuit().ground(),
                                           width_ * spec_.c_ml_load_per_cell);

  static const hier::Library kEmptyLib;  // cells carry no nested instances
  for (int i = 0; i < width_; ++i) {
    std::vector<spice::NodeId> ports;
    ports.reserve(spec_.cell.ports.size());
    for (const std::string& p : spec_.cell.ports) {
      if (p == "ml") ports.push_back(fx_->ml());
      else if (p == "vdd") ports.push_back(fx_->vdd());
      else if (p == "sl") ports.push_back(fx_->sl(i));
      else if (p == "slb") ports.push_back(fx_->slb(i));
      else if (const auto it = extra.find(p); it != extra.end())
        ports.push_back(it->second);
      else
        ports.push_back(spice::kGround);  // unused in this transaction
    }
    cells_.push_back(hier::elaborate(fx_->circuit(), kEmptyLib, spec_.cell,
                                     "Xcell" + std::to_string(i), ports,
                                     spec_.cell.params));
  }

  if (spec_.array_rules)
    spec_.array_rules(
        ArrayRowContext{fx_->checker(), fx_->ml(), fx_->vdd(), 0, width_, ""},
        stored);
  // Quantitative STA margin rules ride the same checker pass as the
  // structural rules, at this row's width-scaled strobe. They see the
  // circuit as bound for the first search after the (re)build.
  if (sta::default_enabled()) {
    const double strobe =
        spec_.t_strobe * (0.25 + 0.75 * width_ / 64.0);
    fx_->checker().add_rule(
        sta::margin_rules({"ml"}, sta_options_for(spec_.cal, strobe)));
  }
  built_key_ = key;
  built_stored_ = stored;
  ++builds_;
}

void SearchTemplate::ensure_built(const core::TernaryWord& key,
                                  const core::TernaryWord& stored) {
  if (!fx_ || built_stored_ != stored) {
    build(key, stored);
  } else if (built_key_ != key) {
    fx_->rebind_key(key);
    built_key_ = key;
  }
}

SearchMetrics SearchTemplate::search(const core::TernaryWord& key,
                                     const core::TernaryWord& stored,
                                     double strobe_delay, double dt_max) {
  ensure_built(key, stored);

  spice::Circuit& ckt = fx_->circuit();
  ckt.reset_device_states();
  for (int i = 0; i < width_; ++i)
    spec_.bind(ckt, cells_[static_cast<std::size_t>(i)],
               stored[static_cast<std::size_t>(i)]);

  const auto result = fx_->run(dt_max);
  return fx_->metrics(result, strobe_delay);
}

}  // namespace nemtcam::tcam
