// Elaborate-once / replay-many search transactions.
//
// Each row design describes its per-column cell as a hier::SubcktDef plus
// three hooks (prelude nets, a state binder, ERC rules). The first search
// builds a SearchFixture, elaborates one cell instance per column under
// the scope "Xcell<col>" and registers the rules. Every later search with
// the same stored word reuses that circuit verbatim: the key change is a
// waveform rebind on the SL drivers, the stored word a device-state
// re-seed — neither bumps the topology revision, so the solver cache's
// stamp pattern and symbolic LU carry over (zero reconstruction; the
// stamp_pattern_builds metric stays flat).
//
// A store() of a different word rebuilds the template: the registered ERC
// rules and the cached report are bound to the word they were built for.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/Ternary.h"
#include "hier/Elaborate.h"
#include "tcam/Calibration.h"
#include "tcam/Harness.h"
#include "tcam/Metrics.h"

namespace nemtcam::tcam {

// Facts a design's array_rules hook needs to register its ERC rules for
// one row: of an N-row array, or the single row of a SearchTemplate
// (row 0, empty scope).
struct ArrayRowContext {
  erc::Checker& checker;
  spice::NodeId ml;
  spice::NodeId vdd;
  int row = 0;
  int width = 0;
  // Instance-path prefix of this row's cells: cell c lives at
  // "<scope>Xcell<c>" — scope is "" in a single-row template, "Xrow<r>."
  // in an array.
  std::string scope;
};

struct SearchTemplateSpec {
  Calibration cal;  // possibly a locally adjusted copy (e.g. MRAM window)
  CellGeometry geo;
  double c_sl_gate_per_row = 0.0;

  // Nominal sense-strobe delay at the reference 64-bit width; callers
  // scale it for other widths (TcamRow::strobe_scale).
  double t_strobe = 0.0;

  // Extra ML loading per cell beyond the wire parasitics the fixture
  // already models (e.g. the RRAM MIM electrode plates).
  double c_ml_load_per_cell = 0.0;

  // Per-column cell. Ports are bound by name: "ml", "vdd", "sl", "slb"
  // resolve to the fixture nets (sl/slb per column), names returned by the
  // prelude resolve to those nets, anything else binds to ground — which
  // is how one all-ports cell definition serves both search (BL/WL
  // grounded) and write (ML/SL grounded) transactions.
  hier::SubcktDef cell;

  // Optional: builds design-specific rails shared by every cell — and, in
  // an array, by every row (read biases, always-on read wordlines). The
  // returned names become bindable cell ports.
  std::function<std::map<std::string, spice::NodeId>(spice::Circuit&,
                                                     spice::NodeId vdd)>
      shared_rails;

  // Seeds one elaborated cell with a stored trit: device-state pokes and
  // node ICs. Runs on the first build and on every replay (after
  // Circuit::reset_device_states), so it must write every IC it owns —
  // zeros included, or a replay inherits the previous word's level.
  std::function<void(spice::Circuit&, const hier::InstanceHandles&,
                     core::Ternary)>
      bind;

  // Optional: registers design-specific ERC rules for one row (first
  // build only; the fixture caches the report for replays). Rules that
  // inspect the whole circuit rather than one row's devices (the relay
  // refresh window) should register only for row 0.
  std::function<void(const ArrayRowContext&, const core::TernaryWord& stored)>
      array_rules;
};

class SearchTemplate {
 public:
  SearchTemplate(SearchTemplateSpec spec, int width, int array_rows);

  SearchMetrics search(const core::TernaryWord& key,
                       const core::TernaryWord& stored, double strobe_delay,
                       double dt_max = 20e-12);

  // Guarantees the circuit exists and is aimed at (key, stored) — building
  // or rebinding exactly as search() would — without running a transient.
  // The lifetime engine calls this, then mutates device parameters in
  // place (aging setters, fault injection) before search() replays; the
  // mutations survive because replays never rebuild for an unchanged word.
  void ensure_built(const core::TernaryWord& key,
                    const core::TernaryWord& stored);

  // The elaborated circuit, for in-place device mutation between replays.
  // Null until the first build/ensure_built.
  spice::Circuit* circuit() noexcept { return fx_ ? &fx_->circuit() : nullptr; }

  // How many times the underlying circuit was (re)built — for the
  // zero-reconstruction assertions.
  std::uint64_t builds() const noexcept { return builds_; }

  const SearchTemplateSpec& spec() const noexcept { return spec_; }

 private:
  void build(const core::TernaryWord& key, const core::TernaryWord& stored);

  SearchTemplateSpec spec_;
  int width_;
  int array_rows_;
  std::unique_ptr<SearchFixture> fx_;
  std::vector<hier::InstanceHandles> cells_;
  core::TernaryWord built_key_;
  core::TernaryWord built_stored_;
  std::uint64_t builds_ = 0;
};

}  // namespace nemtcam::tcam
