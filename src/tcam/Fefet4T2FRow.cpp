#include "tcam/Fefet4T2FRow.h"

#include <algorithm>

#include "devices/Fefet.h"
#include "devices/Mosfet.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "erc/TcamRules.h"
#include "hier/Elaborate.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"
#include "tcam/Harness.h"
#include "tcam/RowSpecs.h"
#include "tcam/SearchTemplate.h"

namespace nemtcam::tcam {

using namespace nemtcam::devices;
using spice::Circuit;
using spice::NodeId;
using spice::TransientOptions;

namespace {
// 4T2F geometry: twice the transistor count of the 2FeFET cell.
const CellGeometry kGeo{8.0, 6.0};  // 48 F²
}  // namespace

Fefet4T2FRow::Fefet4T2FRow(int width, int array_rows, const Calibration& cal)
    : TcamRow(width, array_rows, cal) {}

Fefet4T2FRow::FefetStates Fefet4T2FRow::states_for(Ternary t) {
  switch (t) {
    case Ternary::One: return {false, true};
    case Ternary::Zero: return {true, false};
    case Ternary::X: return {false, false};
  }
  return {false, false};
}

SearchTemplateSpec fefet4t2f_search_spec(const Calibration& c) {
  FefetParams fp;
  fp.fet = MosfetParams::nmos_lp(c.w_fefet);

  SearchTemplateSpec spec;
  spec.cal = c;
  spec.geo = kGeo;
  // The gated read path adds a series device to every discharge stack.
  spec.t_strobe = c.t_strobe_fefet * 1.6;
  spec.cell.name = "fefet4t2f_cell";
  spec.cell.ports = {"ml", "sl", "slb", "wl", "rd"};
  // Shared rails: the read bias and the always-on read wordline feed
  // every cell's access devices through the "rd"/"wl" ports. In an array
  // they are built once and shared by all rows.
  spec.shared_rails = [vdd_level = c.vdd, v_wl = c.v_wl_write](
                          Circuit& ckt, NodeId) {
    const NodeId rd = ckt.node("rd");
    ckt.add<VSource>("Vrd", rd, ckt.ground(), vdd_level);
    ckt.set_ic(rd, vdd_level);
    const NodeId wl = ckt.node("wl_rd");
    ckt.add<VSource>("Vwl_rd", wl, ckt.ground(), v_wl);
    ckt.set_ic(wl, v_wl);
    return std::map<std::string, NodeId>{{"rd", rd}, {"wl", wl}};
  };
  const auto fet = [](MosfetParams mp) {
    return [mp](Circuit& k, const std::string& n,
                const std::vector<NodeId>& nd,
                const hier::ParamEnv&) -> spice::Device& {
      return k.add<Mosfet>(n, nd[0], nd[1], nd[2], mp);
    };
  };
  spec.cell.emit("Ma", {"ml", "sl", "mida"},
                 fet(MosfetParams::nmos_lp(c.w_fefet)));
  spec.cell.emit("Mb", {"ml", "slb", "midb"},
                 fet(MosfetParams::nmos_lp(c.w_fefet)));
  spec.cell.emit("Tacc_a", {"fga", "wl", "rd"}, fet(c.nem_write_nmos()));
  spec.cell.emit("Tacc_b", {"fgb", "wl", "rd"}, fet(c.nem_write_nmos()));
  const auto fefet = [fp](Circuit& k, const std::string& n,
                          const std::vector<NodeId>& nd,
                          const hier::ParamEnv&) -> spice::Device& {
    return k.add<Fefet>(n, nd[0], nd[1], nd[2], fp);
  };
  spec.cell.emit("Fa", {"mida", "fga", "0"}, fefet);
  spec.cell.emit("Fb", {"midb", "fgb", "0"}, fefet);
  spec.bind = [vdd = c.vdd](Circuit& ckt, const hier::InstanceHandles& cell,
                            Ternary t) {
    const Fefet4T2FRow::FefetStates st = Fefet4T2FRow::states_for(t);
    auto* fa = dynamic_cast<Fefet*>(cell.device("Fa"));
    auto* fb = dynamic_cast<Fefet*>(cell.device("Fb"));
    NEMTCAM_EXPECT(fa != nullptr && fb != nullptr);
    fa->set_low_vth(st.fa_low_vth);
    fb->set_low_vth(st.fb_low_vth);
    ckt.set_ic(cell.node_at("fga"), vdd);
    ckt.set_ic(cell.node_at("fgb"), vdd);
  };
  spec.array_rules = [](const ArrayRowContext& rc, const TernaryWord&) {
    rc.checker.add_rule(erc::ml_fanin_rule(rc.ml, rc.vdd, 2 * rc.width));
  };
  return spec;
}

SearchMetrics Fefet4T2FRow::search(const TernaryWord& key) {
  const Calibration& c = cal();
  if (hier::default_enabled()) {
    if (!search_tpl_)
      search_tpl_ = std::make_unique<SearchTemplate>(fefet4t2f_search_spec(c),
                                                     width(), array_rows());
    return search_tpl_->search(key, stored_,
                               search_tpl_->spec().t_strobe * strobe_scale());
  }

  SearchFixture fx(c, kGeo, width(), array_rows(), key);
  Circuit& ckt = fx.circuit();

  FefetParams fp;
  fp.fet = MosfetParams::nmos_lp(c.w_fefet);

  // Read bias on the FeFET gates, reached through the on access devices
  // (WL at the boosted level, BLs at VDD): between V_th,low and V_th,high.
  const NodeId rd = ckt.node("rd");
  ckt.add<VSource>("Vrd", rd, ckt.ground(), c.vdd);
  ckt.set_ic(rd, c.vdd);
  const NodeId wl = ckt.node("wl_rd");
  ckt.add<VSource>("Vwl_rd", wl, ckt.ground(), c.v_wl_write);
  ckt.set_ic(wl, c.v_wl_write);

  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const FefetStates st = states_for(stored_[static_cast<std::size_t>(i)]);
    const NodeId mid_a = ckt.node("mida_" + sfx);
    const NodeId mid_b = ckt.node("midb_" + sfx);
    const NodeId fga = ckt.node("fga_" + sfx);
    const NodeId fgb = ckt.node("fgb_" + sfx);

    ckt.add<Mosfet>("Ma_" + sfx, fx.ml(), fx.sl(i), mid_a,
                    MosfetParams::nmos_lp(c.w_fefet));
    ckt.add<Mosfet>("Mb_" + sfx, fx.ml(), fx.slb(i), mid_b,
                    MosfetParams::nmos_lp(c.w_fefet));
    ckt.add<Mosfet>("Tacc_a_" + sfx, fga, wl, rd, c.nem_write_nmos());
    ckt.add<Mosfet>("Tacc_b_" + sfx, fgb, wl, rd, c.nem_write_nmos());

    auto& fa = ckt.add<Fefet>("Fa_" + sfx, mid_a, fga, ckt.ground(), fp);
    auto& fb = ckt.add<Fefet>("Fb_" + sfx, mid_b, fgb, ckt.ground(), fp);
    fa.set_low_vth(st.fa_low_vth);
    fb.set_low_vth(st.fb_low_vth);
    ckt.set_ic(fga, c.vdd);  // already biased when the search begins
    ckt.set_ic(fgb, c.vdd);
  }

  // Two compare transistors per cell load the ML.
  fx.checker().add_rule(erc::ml_fanin_rule(fx.ml(), fx.vdd(), 2 * width()));

  const auto result = fx.run();
  return fx.metrics(result, c.t_strobe_fefet * strobe_scale() * 1.6);
}

WriteMetrics Fefet4T2FRow::simulate_write(const TernaryWord& old_word,
                                          const TernaryWord& new_word) {
  const Calibration& c = cal();
  Circuit ckt;
  const double t0 = 0.1e-9;
  const double t_end = t0 + c.t_write_window_fefet;

  FefetParams fp;
  fp.fet = MosfetParams::nmos_lp(c.w_fefet);

  // Program path: WL boosted high enough to pass ±4 V from the bitlines
  // onto the FeFET gates.
  const double v_wl_prog = c.v_fefet_write + 1.0;
  const double c_wl = width() * c.c_hline_per_cell(kGeo);
  const NodeId wl = add_driven_line(ckt, c, "wl", c_wl, 0.0, v_wl_prog, t0);
  const double c_bl = array_rows() * c.c_vline_per_cell(kGeo);

  std::vector<Fefet*> fas(static_cast<std::size_t>(width()));
  std::vector<Fefet*> fbs(static_cast<std::size_t>(width()));

  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const FefetStates old_st = states_for(old_word[static_cast<std::size_t>(i)]);
    const FefetStates new_st = states_for(new_word[static_cast<std::size_t>(i)]);

    const double va = new_st.fa_low_vth ? c.v_fefet_write : -c.v_fefet_write;
    const double vb = new_st.fb_low_vth ? c.v_fefet_write : -c.v_fefet_write;
    const NodeId bla = add_driven_line(ckt, c, "bla" + sfx, c_bl, 0.0, va, t0);
    const NodeId blb = add_driven_line(ckt, c, "blb" + sfx, c_bl, 0.0, vb, t0);

    const NodeId fga = ckt.node("fga_" + sfx);
    const NodeId fgb = ckt.node("fgb_" + sfx);
    ckt.add<Mosfet>("Tacc_a_" + sfx, fga, wl, bla, c.nem_write_nmos());
    ckt.add<Mosfet>("Tacc_b_" + sfx, fgb, wl, blb, c.nem_write_nmos());

    // Search transistors off (SLs grounded); ML grounded.
    const NodeId mid_a = ckt.node("mida_" + sfx);
    const NodeId mid_b = ckt.node("midb_" + sfx);
    ckt.add<Mosfet>("Ma_" + sfx, ckt.ground(), ckt.ground(), mid_a,
                    MosfetParams::nmos_lp(c.w_fefet));
    ckt.add<Mosfet>("Mb_" + sfx, ckt.ground(), ckt.ground(), mid_b,
                    MosfetParams::nmos_lp(c.w_fefet));

    fas[static_cast<std::size_t>(i)] =
        &ckt.add<Fefet>("Fa_" + sfx, mid_a, fga, ckt.ground(), fp);
    fbs[static_cast<std::size_t>(i)] =
        &ckt.add<Fefet>("Fb_" + sfx, mid_b, fgb, ckt.ground(), fp);
    fas[static_cast<std::size_t>(i)]->set_low_vth(old_st.fa_low_vth);
    fbs[static_cast<std::size_t>(i)]->set_low_vth(old_st.fb_low_vth);
  }

  const TransientOptions opts = spice::step_defaults(t_end, 50e-12);
  const auto result = run_transient(ckt, opts);

  WriteMetrics m;
  if (!result.finished) {
    m.note = "transient failed: " + result.failure;
    return m;
  }
  m.energy = result.total_source_energy();

  bool all_ok = true;
  double latest = 0.0;
  for (int i = 0; i < width(); ++i) {
    const FefetStates new_st = states_for(new_word[static_cast<std::size_t>(i)]);
    const FefetStates old_st = states_for(old_word[static_cast<std::size_t>(i)]);
    for (const auto& [dev, want_low, was_low] :
         {std::tuple{fas[static_cast<std::size_t>(i)], new_st.fa_low_vth,
                     old_st.fa_low_vth},
          std::tuple{fbs[static_cast<std::size_t>(i)], new_st.fb_low_vth,
                     old_st.fb_low_vth}}) {
      const bool is_low = dev->polarization() > 0.9;
      const bool is_high = dev->polarization() < -0.9;
      if ((want_low && !is_low) || (!want_low && !is_high)) {
        all_ok = false;
        m.note = "FeFET " + dev->name() + " did not reach target state";
        continue;
      }
      if (want_low != was_low) {
        const double ts = want_low ? dev->t_program_complete()
                                   : dev->t_erase_complete();
        if (ts > 0.0) latest = std::max(latest, ts - t0);
      }
    }
  }
  m.ok = all_ok;
  m.latency = latest;
  return m;
}

}  // namespace nemtcam::tcam
