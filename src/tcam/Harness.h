// Shared transaction scaffolding for the circuit-level TCAM rows: match-
// line precharge, searchline drivers, line parasitics, and measurement.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/Ternary.h"
#include "erc/Checker.h"
#include "spice/Circuit.h"
#include "spice/Transient.h"
#include "tcam/Calibration.h"
#include "tcam/Metrics.h"

namespace nemtcam::tcam {

// Builds the design-independent part of a search transaction:
//  - VDD rail, matchline with precharge PMOS and wire/sense parasitics,
//  - per-column SL/SL̄ pairs driven according to the key
//    (key 1 → SL=VDD, SL̄=0; key 0 → SL=0, SL̄=VDD; key X → both 0),
//  - the transaction timeline: ML precharges during [0, t_precharge],
//    the precharge device turns off, then SLs switch at t_edge.
// The caller attaches one cell per column between ml and the sl/slb pair,
// runs the transient, and extracts SearchMetrics.
class SearchFixture {
 public:
  // c_sl_gate_per_row: additional SL loading contributed by each array row's
  // cell (e.g. the SRAM compare-stack gates hang directly on the
  // searchlines; the NVM cells present only small electrode stubs).
  SearchFixture(const Calibration& cal, const CellGeometry& geo, int width,
                int array_rows, const core::TernaryWord& key,
                double c_sl_gate_per_row = 0.0);

  spice::Circuit& circuit() noexcept { return circuit_; }
  int width() const noexcept { return static_cast<int>(sl_.size()); }
  spice::NodeId vdd() const noexcept { return vdd_; }
  spice::NodeId ml() const noexcept { return ml_; }
  spice::NodeId sl(int col) const { return sl_.at(static_cast<std::size_t>(col)); }
  spice::NodeId slb(int col) const { return slb_.at(static_cast<std::size_t>(col)); }
  double t_edge() const noexcept { return t_edge_; }
  double t_end() const noexcept { return t_end_; }

  // Static-analysis hook: the fixture pre-registers the generic rules
  // (ML precharge reachability); row builders add design-specific rules
  // (fan-in count, relay-pair consistency, …) before run().
  erc::Checker& checker() noexcept { return checker_; }

  // Runs the ERC pass over the assembled circuit (cached — rules run
  // once). run() calls this when erc::default_enforce() is on; tests call
  // it directly to assert fixtures are clean.
  const erc::Report& check();

  // Runs the transient with step control suited to the search timescale.
  // When ERC enforcement is on and check() reports errors, no transient is
  // run: the result carries the structured report as its failure text.
  spice::TransientResult run(double dt_max = 20e-12);

  // Re-aims the searchline drivers at a new key without touching the
  // topology: each Vdrv_sl/Vdrv_slb source gets a fresh step waveform
  // (Circuit::rebind_source), so the solver cache's stamp pattern and
  // symbolic LU survive. Part of the template-replay contract
  // (hier/Elaborate.h).
  void rebind_key(const core::TernaryWord& key);

  // Interprets the run. Match/mismatch is decided at the sense strobe
  // (t_edge + strobe_delay): matched = ML still above the sense level
  // there. Latency is the SL-edge → ML-crossing time when the ML crossed.
  // Non-const: reads the circuit's solver-cache telemetry. When
  // sta::default_enabled(), also attaches the closed-form STA bounds
  // (SearchMetrics::sta) from a fresh static pass over the bound circuit.
  SearchMetrics metrics(const spice::TransientResult& result,
                        double strobe_delay);

  // The static pass alone: timing/energy/margin bounds for the circuit
  // as currently bound (ICs seeded, key rebound), no transient needed.
  StaSummary sta_summary(double strobe_delay);

 private:
  Calibration cal_;  // by value: rows may pass a locally adjusted copy
  erc::Checker checker_;
  std::optional<erc::Report> report_;
  spice::Circuit circuit_;
  spice::NodeId vdd_;
  spice::NodeId ml_;
  std::vector<spice::NodeId> sl_;
  std::vector<spice::NodeId> slb_;
  double t_edge_;
  double t_end_;
};

// Adds a driven line: a node with wire capacitance `c_line` and a source
// stepping from `v0` to `v1` at `t_edge` (20 ps edge) through the line
// driver impedance. Returns the line node.
spice::NodeId add_driven_line(spice::Circuit& c, const Calibration& cal,
                              const std::string& name, double c_line,
                              double v0, double v1, double t_edge);

// Adds a line held at a constant level through the driver impedance.
spice::NodeId add_static_line(spice::Circuit& c, const Calibration& cal,
                              const std::string& name, double c_line,
                              double level);

}  // namespace nemtcam::tcam
