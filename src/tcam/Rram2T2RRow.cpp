#include "tcam/Rram2T2RRow.h"

#include <algorithm>

#include "devices/Mosfet.h"
#include "devices/Passive.h"
#include "devices/Rram.h"
#include "devices/Sources.h"
#include "erc/TcamRules.h"
#include "hier/Elaborate.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"
#include "tcam/Harness.h"
#include "tcam/RowSpecs.h"
#include "tcam/SearchTemplate.h"
#include "util/Random.h"

namespace nemtcam::tcam {

using namespace nemtcam::devices;
using spice::Circuit;
using spice::NodeId;
using spice::PwlWave;
using spice::TransientOptions;

Rram2T2RRow::Rram2T2RRow(int width, int array_rows, const Calibration& cal)
    : TcamRow(width, array_rows, cal) {}

Rram2T2RRow::RramStates Rram2T2RRow::states_for(Ternary t) {
  switch (t) {
    case Ternary::One: return {false, true};
    case Ternary::Zero: return {true, false};
    case Ternary::X: return {false, false};
  }
  return {false, false};
}

SearchTemplateSpec rram2t2r_search_spec(const Calibration& c) {
  SearchTemplateSpec spec;
  spec.cal = c;
  spec.geo = c.geo_rram;
  spec.t_strobe = c.t_strobe_rram;
  // RRAM MIM electrode plates load the matchline (two stacks per cell).
  spec.c_ml_load_per_cell = c.c_rram_electrode;
  spec.cell.name = "rram2t2r_cell";
  spec.cell.ports = {"ml", "sl", "slb"};
  const auto rram = [](Circuit& k, const std::string& n,
                       const std::vector<NodeId>& nd,
                       const hier::ParamEnv&) -> spice::Device& {
    return k.add<Rram>(n, nd[0], nd[1], RramParams{});
  };
  spec.cell.emit("Ra", {"ml", "mida"}, rram);
  spec.cell.emit("Rb", {"ml", "midb"}, rram);
  const auto access = [mp = MosfetParams::nmos_lp(c.w_rram_access)](
                          Circuit& k, const std::string& n,
                          const std::vector<NodeId>& nd,
                          const hier::ParamEnv&) -> spice::Device& {
    return k.add<Mosfet>(n, nd[0], nd[1], nd[2], mp);
  };
  spec.cell.emit("Ma", {"mida", "sl", "0"}, access);
  spec.cell.emit("Mb", {"midb", "slb", "0"}, access);
  spec.bind = [](Circuit&, const hier::InstanceHandles& cell, Ternary t) {
    const Rram2T2RRow::RramStates st = Rram2T2RRow::states_for(t);
    auto* ra = dynamic_cast<Rram*>(cell.device("Ra"));
    auto* rb = dynamic_cast<Rram*>(cell.device("Rb"));
    NEMTCAM_EXPECT(ra != nullptr && rb != nullptr);
    ra->set_state(st.a_lrs ? 1.0 : 0.0);
    rb->set_state(st.b_lrs ? 1.0 : 0.0);
  };
  spec.array_rules = [](const ArrayRowContext& rc, const TernaryWord&) {
    rc.checker.add_rule(erc::ml_fanin_rule(rc.ml, rc.vdd, 2 * rc.width));
  };
  return spec;
}

SearchMetrics Rram2T2RRow::search(const TernaryWord& key) {
  const Calibration& c = cal();
  // The variation ablation draws fresh per-device lognormal resistances
  // every search, which defeats elaborate-once reuse; the template path
  // covers the (default) nominal case only.
  if (hier::default_enabled() && sigma_log_ == 0.0) {
    if (!search_tpl_)
      search_tpl_ = std::make_unique<SearchTemplate>(rram2t2r_search_spec(c),
                                                     width(), array_rows());
    return search_tpl_->search(key, stored_,
                               search_tpl_->spec().t_strobe * strobe_scale());
  }

  SearchFixture fx(c, c.geo_rram, width(), array_rows(), key);
  Circuit& ckt = fx.circuit();
  util::Rng rng(seed_);

  // RRAM MIM electrode plates load the matchline.
  ckt.add<Capacitor>("Cel_ml", fx.ml(), ckt.ground(),
                     width() * c.c_rram_electrode);

  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const RramStates st = states_for(stored_[static_cast<std::size_t>(i)]);

    RramParams rp;
    if (sigma_log_ > 0.0) {
      // Device-to-device spread: each device draws its own R_ON and R_OFF
      // around the nominal medians.
      rp.r_on = rng.lognormal_median(rp.r_on, sigma_log_);
      rp.r_off = std::max(rng.lognormal_median(rp.r_off, sigma_log_),
                          2.0 * rp.r_on);
    }
    RramParams rp_b;
    if (sigma_log_ > 0.0) {
      rp_b.r_on = rng.lognormal_median(rp_b.r_on, sigma_log_);
      rp_b.r_off = std::max(rng.lognormal_median(rp_b.r_off, sigma_log_),
                            2.0 * rp_b.r_on);
    }

    const NodeId mid_a = ckt.node("mida_" + sfx);
    const NodeId mid_b = ckt.node("midb_" + sfx);
    auto& ra = ckt.add<Rram>("Ra_" + sfx, fx.ml(), mid_a, rp);
    auto& rb = ckt.add<Rram>("Rb_" + sfx, fx.ml(), mid_b, rp_b);
    ckt.add<Mosfet>("Ma_" + sfx, mid_a, fx.sl(i), ckt.ground(),
                    MosfetParams::nmos_lp(c.w_rram_access));
    ckt.add<Mosfet>("Mb_" + sfx, mid_b, fx.slb(i), ckt.ground(),
                    MosfetParams::nmos_lp(c.w_rram_access));
    ra.set_state(st.a_lrs ? 1.0 : 0.0);
    rb.set_state(st.b_lrs ? 1.0 : 0.0);
  }

  // Two RRAM branches per cell load the ML.
  fx.checker().add_rule(erc::ml_fanin_rule(fx.ml(), fx.vdd(), 2 * width()));

  const auto result = fx.run();
  return fx.metrics(result, cal().t_strobe_rram * strobe_scale());
}

WriteMetrics Rram2T2RRow::simulate_write(const TernaryWord& old_word,
                                         const TernaryWord& new_word) {
  const Calibration& c = cal();
  Circuit ckt;

  // Two-phase bipolar write on the matchline: set phase at +v_set during
  // [t0, t0+t_phase], then reset phase at −v_reset during
  // [t0+t_phase+gap, t0+2·t_phase+gap].
  const double t0 = 0.1e-9;
  const double t_phase = 12.5e-9;  // 10 ns nominal transition + the slowdown
                                   // from series-element voltage division
  const double gap = 1e-9;
  const double t_set_end = t0 + t_phase;
  const double t_reset_start = t_set_end + gap;
  const double t_end = t_reset_start + t_phase;

  // Write line = ML reused as a bipolar-driven row line.
  const double c_ml =
      width() * c.c_hline_per_cell(c.geo_rram) + c.c_ml_sense_load;
  const NodeId wline = ckt.node("wline");
  ckt.add<VSource>(
      "Vwrite", wline, ckt.ground(),
      std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0},
          {t0, 0.0},
          {t0 + 0.1e-9, c.v_rram_set},
          {t_set_end, c.v_rram_set},
          {t_set_end + 0.3e-9, 0.0},
          {t_reset_start, -c.v_rram_reset},
          {t_end - 0.3e-9, -c.v_rram_reset},
          {t_end, 0.0}}),
      c.r_write_driver);
  ckt.add<Capacitor>("Cml", wline, ckt.ground(),
                     c_ml + width() * c.c_rram_electrode);

  const double c_gl = array_rows() * c.c_vline_per_cell(c.geo_rram);

  std::vector<Rram*> ras(static_cast<std::size_t>(width()));
  std::vector<Rram*> rbs(static_cast<std::size_t>(width()));

  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const RramStates old_st = states_for(old_word[static_cast<std::size_t>(i)]);
    const RramStates new_st = states_for(new_word[static_cast<std::size_t>(i)]);

    // Gate lines: a branch is enabled during the set phase if its device
    // must end LRS, and during the reset phase if it must end HRS (and is
    // not already there).
    auto gate_wave = [&](bool want_lrs, bool was_lrs) {
      std::vector<std::pair<double, double>> pts = {{0.0, 0.0}, {t0, 0.0}};
      const double on = c.v_rram_wl;
      const bool need_set = want_lrs && !was_lrs;
      const bool need_reset = !want_lrs && was_lrs;
      pts.push_back({t0 + 0.05e-9, need_set ? on : 0.0});
      pts.push_back({t_set_end, need_set ? on : 0.0});
      pts.push_back({t_set_end + 0.3e-9, 0.0});
      pts.push_back({t_reset_start, need_reset ? on : 0.0});
      pts.push_back({t_end - 0.3e-9, need_reset ? on : 0.0});
      pts.push_back({t_end, 0.0});
      return std::make_unique<PwlWave>(std::move(pts));
    };

    const NodeId ga = ckt.node("ga_" + sfx);
    ckt.add<VSource>("Vga_" + sfx, ga, ckt.ground(),
                     gate_wave(new_st.a_lrs, old_st.a_lrs), c.r_line_driver);
    ckt.add<Capacitor>("Cga_" + sfx, ga, ckt.ground(), c_gl);
    const NodeId gb = ckt.node("gb_" + sfx);
    ckt.add<VSource>("Vgb_" + sfx, gb, ckt.ground(),
                     gate_wave(new_st.b_lrs, old_st.b_lrs), c.r_line_driver);
    ckt.add<Capacitor>("Cgb_" + sfx, gb, ckt.ground(), c_gl);

    const NodeId mid_a = ckt.node("mida_" + sfx);
    const NodeId mid_b = ckt.node("midb_" + sfx);
    ras[static_cast<std::size_t>(i)] =
        &ckt.add<Rram>("Ra_" + sfx, wline, mid_a);
    rbs[static_cast<std::size_t>(i)] =
        &ckt.add<Rram>("Rb_" + sfx, wline, mid_b);
    ckt.add<Mosfet>("Ma_" + sfx, mid_a, ga, ckt.ground(),
                    MosfetParams::nmos_lp(c.w_rram_access));
    ckt.add<Mosfet>("Mb_" + sfx, mid_b, gb, ckt.ground(),
                    MosfetParams::nmos_lp(c.w_rram_access));
    ras[static_cast<std::size_t>(i)]->set_state(old_st.a_lrs ? 1.0 : 0.0);
    rbs[static_cast<std::size_t>(i)]->set_state(old_st.b_lrs ? 1.0 : 0.0);
  }

  const TransientOptions opts = spice::step_defaults(t_end, 50e-12);
  const auto result = run_transient(ckt, opts);

  WriteMetrics m;
  if (!result.finished) {
    m.note = "transient failed: " + result.failure;
    return m;
  }
  m.energy = result.total_source_energy();

  bool all_ok = true;
  double latest = 0.0;
  for (int i = 0; i < width(); ++i) {
    const RramStates new_st = states_for(new_word[static_cast<std::size_t>(i)]);
    const RramStates old_st = states_for(old_word[static_cast<std::size_t>(i)]);
    for (const auto& [dev, want_lrs, was_lrs] :
         {std::tuple{ras[static_cast<std::size_t>(i)], new_st.a_lrs, old_st.a_lrs},
          std::tuple{rbs[static_cast<std::size_t>(i)], new_st.b_lrs, old_st.b_lrs}}) {
      const bool is_lrs = dev->state() > 0.9;
      const bool is_hrs = dev->state() < 0.1;
      if ((want_lrs && !is_lrs) || (!want_lrs && !is_hrs)) {
        all_ok = false;
        m.note = "RRAM " + dev->name() + " did not reach target state";
        continue;
      }
      if (want_lrs != was_lrs) {
        // Phase-relative settle time: the paper's array-level write latency
        // is the device transition time (~10 ns) and, like addressing, the
        // set/reset phase serialization is excluded; the energy, which is
        // what Fig. 6(b) compares, covers both phases in full.
        const double ts = want_lrs ? dev->t_set_complete() - t0
                                   : dev->t_reset_complete() - t_reset_start;
        if (ts > 0.0) latest = std::max(latest, ts);
      }
    }
  }
  m.ok = all_ok;
  m.latency = latest;
  return m;
}

}  // namespace nemtcam::tcam
