#include "tcam/Harness.h"

#include <chrono>

#include "devices/Mosfet.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "erc/TcamRules.h"
#include "spice/Waveform.h"
#include "sta/Sta.h"
#include "tcam/StaBridge.h"

namespace nemtcam::tcam {

using namespace nemtcam::devices;
using spice::NodeId;
using spice::PwlWave;

namespace {

std::unique_ptr<spice::Waveform> step_wave(double v0, double v1, double t_edge,
                                           double t_rise = 20e-12) {
  return std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
      {0.0, v0}, {t_edge, v0}, {t_edge + t_rise, v1}});
}

}  // namespace

NodeId add_driven_line(spice::Circuit& c, const Calibration& cal,
                       const std::string& name, double c_line, double v0,
                       double v1, double t_edge) {
  const NodeId n = c.node(name);
  c.add<VSource>("Vdrv_" + name, n, c.ground(), step_wave(v0, v1, t_edge),
                 cal.r_line_driver);
  c.add<Capacitor>("Cline_" + name, n, c.ground(),
                   c_line + cal.c_driver_load);
  return n;
}

NodeId add_static_line(spice::Circuit& c, const Calibration& cal,
                       const std::string& name, double c_line, double level) {
  const NodeId n = c.node(name);
  c.add<VSource>("Vdrv_" + name, n, c.ground(), level, cal.r_line_driver);
  c.add<Capacitor>("Cline_" + name, n, c.ground(),
                   c_line + cal.c_driver_load);
  if (level != 0.0) c.set_ic(n, level);
  return n;
}

SearchFixture::SearchFixture(const Calibration& cal, const CellGeometry& geo,
                             int width, int array_rows,
                             const core::TernaryWord& key,
                             double c_sl_gate_per_row)
    : cal_(cal) {
  NEMTCAM_EXPECT(static_cast<int>(key.size()) == width);
  t_edge_ = cal.t_precharge + 50e-12;
  t_end_ = t_edge_ + cal.t_search_window;

  vdd_ = circuit_.node("vdd");
  circuit_.add<VSource>("Vdd", vdd_, circuit_.ground(), cal.vdd);
  circuit_.set_ic(vdd_, cal.vdd);

  // Matchline: wire parasitics scale with the row width; the sense-amp
  // input load is added on top. Junction loading comes from the attached
  // cell devices themselves.
  ml_ = circuit_.node("ml");
  const double c_ml =
      width * cal.c_hline_per_cell(geo) + cal.c_ml_sense_load;
  circuit_.add<Capacitor>("Cml", ml_, circuit_.ground(), c_ml);

  // Precharge PMOS: on (gate low) during [0, t_precharge], then off.
  const NodeId pchgb = circuit_.node("pchgb");
  circuit_.add<VSource>("Vpchgb", pchgb, circuit_.ground(),
                        step_wave(0.0, cal.vdd, cal.t_precharge));
  circuit_.add<Mosfet>("Mpchg", ml_, pchgb, vdd_,
                       MosfetParams::pmos_lp(cal.w_precharge));

  // Searchlines: column-height wire load plus per-row cell loading,
  // driven per the key at t_edge.
  const double c_sl = array_rows * cal.c_vline_per_cell(geo) +
                      (array_rows - 1) * c_sl_gate_per_row;
  sl_.reserve(static_cast<std::size_t>(width));
  slb_.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const core::Ternary k = key[static_cast<std::size_t>(i)];
    const double v_sl = (k == core::Ternary::One) ? cal.vdd : 0.0;
    const double v_slb = (k == core::Ternary::Zero) ? cal.vdd : 0.0;
    sl_.push_back(add_driven_line(circuit_, cal, "sl" + std::to_string(i),
                                  c_sl, 0.0, v_sl, t_edge_));
    slb_.push_back(add_driven_line(circuit_, cal, "slb" + std::to_string(i),
                                   c_sl, 0.0, v_slb, t_edge_));
  }

  checker_.add_rule(erc::ml_precharge_rule(ml_, vdd_));
}

void SearchFixture::rebind_key(const core::TernaryWord& key) {
  NEMTCAM_EXPECT(key.size() == sl_.size());
  for (std::size_t i = 0; i < sl_.size(); ++i) {
    const core::Ternary k = key[i];
    const double v_sl = (k == core::Ternary::One) ? cal_.vdd : 0.0;
    const double v_slb = (k == core::Ternary::Zero) ? cal_.vdd : 0.0;
    const std::string sfx = std::to_string(i);
    NEMTCAM_EXPECT(circuit_.rebind_source("Vdrv_sl" + sfx,
                                          step_wave(0.0, v_sl, t_edge_)));
    NEMTCAM_EXPECT(circuit_.rebind_source("Vdrv_slb" + sfx,
                                          step_wave(0.0, v_slb, t_edge_)));
  }
}

const erc::Report& SearchFixture::check() {
  if (!report_.has_value()) report_ = checker_.run(circuit_);
  return *report_;
}

spice::TransientResult SearchFixture::run(double dt_max) {
  if (erc::default_enforce()) {
    const erc::Report& rep = check();
    if (rep.has_errors()) {
      spice::TransientResult r;
      r.failure = "ERC failed before simulation\n" + rep.to_string();
      return r;
    }
  }
  spice::TransientOptions opts = spice::step_defaults(t_end_, dt_max);
  // metrics() only reads the match line, so record just that node instead
  // of the full unknown vector (O(width) memory per step otherwise).
  opts.probe_nodes = {ml_};
  return spice::run_transient(circuit_, opts);
}

SearchMetrics SearchFixture::metrics(const spice::TransientResult& result,
                                     double strobe_delay) {
  SearchMetrics m;
  m.stamp_pattern_builds = circuit_.solver_cache().stats().pattern_builds;
  if (report_.has_value()) {
    m.erc_errors = report_->count(erc::Severity::Error);
    m.erc_warnings = report_->count(erc::Severity::Warning);
  }
  if (!result.finished) {
    m.note = "transient failed: " + result.failure;
    return m;
  }
  const spice::Trace ml_trace = result.node_trace(ml_);
  m.ml_final = ml_trace.back();
  // Only consider the evaluation window (after the SL edge).
  double ml_min = m.ml_final;
  for (std::size_t i = 0; i < ml_trace.size(); ++i) {
    if (ml_trace.times()[i] >= t_edge_)
      ml_min = std::min(ml_min, ml_trace.values()[i]);
  }
  m.ml_min = ml_min;
  m.energy = result.total_source_energy();
  m.steps = result.steps_taken;
  m.steps_rejected = result.steps_rejected;
  m.newton_iters = result.newton_iterations;

  const double ml_at_strobe = ml_trace.at(t_edge_ + strobe_delay);
  m.matched = ml_at_strobe > cal_.ml_sense_level;

  const auto cross =
      ml_trace.cross_time(cal_.ml_sense_level, /*rising=*/false, t_edge_);
  m.latency = cross.has_value() ? (*cross - t_edge_) : 0.0;
  m.ok = true;
  if (sta::default_enabled()) m.sta = sta_summary(strobe_delay);
  return m;
}

StaSummary SearchFixture::sta_summary(double strobe_delay) {
  const auto t0 = std::chrono::steady_clock::now();
  const sta::StaReport rep = sta::analyze(
      circuit_, {"ml"}, sta_options_for(cal_, strobe_delay));
  StaSummary s = sta_summary_from(rep, "ml");
  s.analysis_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return s;
}

}  // namespace nemtcam::tcam
