#include "tcam/Mram4T2MRow.h"

#include <algorithm>

#include "devices/Mosfet.h"
#include "devices/Mtj.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "erc/TcamRules.h"
#include "hier/Elaborate.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"
#include "tcam/Harness.h"
#include "tcam/RowSpecs.h"
#include "tcam/SearchTemplate.h"

namespace nemtcam::tcam {

using namespace nemtcam::devices;
using spice::Circuit;
using spice::NodeId;
using spice::TransientOptions;

namespace {

const CellGeometry kGeo{10.0, 9.0};  // 90 F² — 4T + BEOL MTJs

// The divider sense transistor needs a threshold above the don't-care mid
// level (0.5 V) and below the mismatch level (~0.71 V).
MosfetParams sense_fet(double w) {
  MosfetParams p = MosfetParams::nmos_lp(w);
  p.vth = 0.55;
  return p;
}

constexpr double kWriteDrive = 0.9;  // ±V_w across the MTJ stack

}  // namespace

Mram4T2MRow::Mram4T2MRow(int width, int array_rows, const Calibration& cal)
    : TcamRow(width, array_rows, cal) {}

Mram4T2MRow::MtjStates Mram4T2MRow::states_for(Ternary t) {
  switch (t) {
    case Ternary::One: return {false, true};   // M1 AP, M2 P
    case Ternary::Zero: return {true, false};
    case Ternary::X: return {false, false};    // both AP: mid = 0.5 V
  }
  return {false, false};
}

SearchTemplateSpec mram4t2m_search_spec(const Calibration& cal) {
  // The TMR-limited sense overdrive makes this by far the slowest search;
  // it needs a longer observation window than the CMOS-strength designs.
  Calibration c = cal;
  c.t_search_window = 10e-9;

  SearchTemplateSpec spec;
  spec.cal = c;  // carries the stretched search window
  spec.geo = kGeo;
  spec.t_strobe = 6e-9;
  spec.cell.name = "mram4t2m_cell";
  spec.cell.ports = {"ml", "sl", "slb"};
  const auto mtj = [](Circuit& k, const std::string& n,
                      const std::vector<NodeId>& nd,
                      const hier::ParamEnv&) -> spice::Device& {
    return k.add<Mtj>(n, nd[0], nd[1]);
  };
  spec.cell.emit("M1", {"sl", "mid"}, mtj);
  spec.cell.emit("M2", {"mid", "slb"}, mtj);
  const auto fet = [](MosfetParams mp) {
    return [mp](Circuit& k, const std::string& n,
                const std::vector<NodeId>& nd,
                const hier::ParamEnv&) -> spice::Device& {
      return k.add<Mosfet>(n, nd[0], nd[1], nd[2], mp);
    };
  };
  spec.cell.emit("Ts", {"ml", "mid", "0"}, fet(sense_fet(2.0)));
  spec.cell.emit("Tacc", {"mid", "0", "0"}, fet(c.nem_write_nmos()));
  spec.bind = [](Circuit&, const hier::InstanceHandles& cell, Ternary t) {
    const Mram4T2MRow::MtjStates st = Mram4T2MRow::states_for(t);
    auto* m1 = dynamic_cast<Mtj*>(cell.device("M1"));
    auto* m2 = dynamic_cast<Mtj*>(cell.device("M2"));
    NEMTCAM_EXPECT(m1 != nullptr && m2 != nullptr);
    m1->set_parallel(st.m1_parallel);
    m2->set_parallel(st.m2_parallel);
  };
  spec.array_rules = [](const ArrayRowContext& rc, const TernaryWord&) {
    rc.checker.add_rule(erc::ml_fanin_rule(rc.ml, rc.vdd, rc.width));
  };
  return spec;
}

SearchMetrics Mram4T2MRow::search(const TernaryWord& key) {
  // The TMR-limited sense overdrive makes this by far the slowest search;
  // it needs a longer observation window than the CMOS-strength designs.
  Calibration c = cal();
  c.t_search_window = 10e-9;
  if (hier::default_enabled()) {
    if (!search_tpl_)
      search_tpl_ = std::make_unique<SearchTemplate>(
          mram4t2m_search_spec(cal()), width(), array_rows());
    return search_tpl_->search(key, stored_,
                               search_tpl_->spec().t_strobe * strobe_scale());
  }

  SearchFixture fx(c, kGeo, width(), array_rows(), key);
  Circuit& ckt = fx.circuit();

  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const MtjStates st = states_for(stored_[static_cast<std::size_t>(i)]);
    const NodeId mid = ckt.node("mid_" + sfx);
    auto& m1 = ckt.add<Mtj>("M1_" + sfx, fx.sl(i), mid);
    auto& m2 = ckt.add<Mtj>("M2_" + sfx, mid, fx.slb(i));
    m1.set_parallel(st.m1_parallel);
    m2.set_parallel(st.m2_parallel);
    ckt.add<Mosfet>("Ts_" + sfx, fx.ml(), mid, ckt.ground(), sense_fet(2.0));
    // Off write-access device loads the divider node.
    ckt.add<Mosfet>("Tacc_" + sfx, mid, ckt.ground(), ckt.ground(),
                    c.nem_write_nmos());
  }

  // One sense NMOS per cell loads the ML.
  fx.checker().add_rule(erc::ml_fanin_rule(fx.ml(), fx.vdd(), width()));

  const auto result = fx.run();
  // The thin TMR-limited overdrive makes this the slowest search of all
  // the designs; the strobe is scaled accordingly.
  return fx.metrics(result, 6e-9 * strobe_scale());
}

WriteMetrics Mram4T2MRow::simulate_write(const TernaryWord& old_word,
                                         const TernaryWord& new_word) {
  const Calibration& c = cal();
  Circuit ckt;
  const double t0 = 0.1e-9;
  const double t_end = t0 + 14e-9;

  const double c_wl = width() * c.c_hline_per_cell(kGeo);
  const NodeId wl = add_driven_line(ckt, c, "wl", c_wl, 0.0, c.v_wl_write, t0);
  const double c_sl = array_rows() * c.c_vline_per_cell(kGeo);

  std::vector<Mtj*> m1s(static_cast<std::size_t>(width()));
  std::vector<Mtj*> m2s(static_cast<std::size_t>(width()));

  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const MtjStates old_st = states_for(old_word[static_cast<std::size_t>(i)]);
    const MtjStates new_st = states_for(new_word[static_cast<std::size_t>(i)]);

    // Bipolar searchline drive steers super-critical current through both
    // junctions at once (polarity per junction sets P vs AP); the access
    // transistor sinks the sum at the divider node.
    // Junction orientation: M1 is SL→mid (positive SL drive → parallel),
    // M2 is mid→SL̄ (positive SL̄ drive pushes current bottom-up → AP).
    const double v_sl = new_st.m1_parallel ? kWriteDrive : -kWriteDrive;
    const double v_slb = new_st.m2_parallel ? -kWriteDrive : kWriteDrive;
    const NodeId sl = add_driven_line(ckt, c, "sl" + sfx, c_sl, 0.0, v_sl, t0);
    const NodeId slb =
        add_driven_line(ckt, c, "slb" + sfx, c_sl, 0.0, v_slb, t0);
    const NodeId mid = ckt.node("mid_" + sfx);
    const NodeId wbl = ckt.node("wbl_" + sfx);
    ckt.add<VSource>("Vwbl_" + sfx, wbl, ckt.ground(), 0.0);

    m1s[static_cast<std::size_t>(i)] = &ckt.add<Mtj>("M1_" + sfx, sl, mid);
    m2s[static_cast<std::size_t>(i)] = &ckt.add<Mtj>("M2_" + sfx, mid, slb);
    m1s[static_cast<std::size_t>(i)]->set_parallel(old_st.m1_parallel);
    m2s[static_cast<std::size_t>(i)]->set_parallel(old_st.m2_parallel);
    // Strong write-access device (current compliance is not wanted here —
    // the junction currents must stay super-critical).
    ckt.add<Mosfet>("Tacc_" + sfx, mid, wl, wbl, MosfetParams::nmos_lp(4.0));
    ckt.add<Mosfet>("Ts_" + sfx, ckt.ground(), mid, ckt.ground(),
                    sense_fet(2.0));
  }

  const TransientOptions opts = spice::step_defaults(t_end, 50e-12);
  const auto result = run_transient(ckt, opts);

  WriteMetrics m;
  if (!result.finished) {
    m.note = "transient failed: " + result.failure;
    return m;
  }
  m.energy = result.total_source_energy();

  bool all_ok = true;
  double latest = 0.0;
  for (int i = 0; i < width(); ++i) {
    const MtjStates new_st = states_for(new_word[static_cast<std::size_t>(i)]);
    const MtjStates old_st = states_for(old_word[static_cast<std::size_t>(i)]);
    for (const auto& [dev, want_p, was_p] :
         {std::tuple{m1s[static_cast<std::size_t>(i)], new_st.m1_parallel,
                     old_st.m1_parallel},
          std::tuple{m2s[static_cast<std::size_t>(i)], new_st.m2_parallel,
                     old_st.m2_parallel}}) {
      const bool is_p = dev->state() > 0.9;
      const bool is_ap = dev->state() < 0.1;
      if ((want_p && !is_p) || (!want_p && !is_ap)) {
        all_ok = false;
        m.note = "MTJ " + dev->name() + " did not reach target state";
        continue;
      }
      if (want_p != was_p) {
        const double ts = want_p ? dev->t_parallel_complete()
                                 : dev->t_antiparallel_complete();
        if (ts > 0.0) latest = std::max(latest, ts - t0);
      }
    }
  }
  m.ok = all_ok;
  m.latency = latest;
  return m;
}

}  // namespace nemtcam::tcam
