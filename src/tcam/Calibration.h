// Calibration: the single home of every parameter the paper does not pin
// down explicitly (DESIGN.md §8). Device cardinal parameters (Table I,
// RRAM/FeFET write conditions) live in the device defaults and are taken
// from the paper verbatim; everything here is layout- or driver-derived
// and is set once, never tuned per experiment.
#pragma once

#include "devices/Fefet.h"
#include "devices/Mosfet.h"
#include "devices/NemRelay.h"
#include "devices/Rram.h"

namespace nemtcam::tcam {

// Physical footprint of one cell, in lithography feature units (F = 45 nm).
// The paper scales line parasitics "by the TCAM cell size" and attributes
// the search-energy ordering (SRAM ≫ 3T2N > 2T2R/2FeFET) to exactly this.
// Widths/heights below follow the usual literature staging: 16T SRAM TCAM
// is by far the largest; the 3T2N cell needs only 3 front-end transistors
// (relays sit in BEOL above); 2T2R and 2FeFET are the densest.
struct CellGeometry {
  double width_f;   // along the row (ML/WL direction)
  double height_f;  // along the column (BL/SL direction)
};

struct Calibration {
  // Supply and sensing.
  double vdd = 1.0;              // core supply (V)
  double ml_sense_level = 0.5;   // ML considered discharged below this (V)

  // Lithography + wiring.
  double feature_m = 45e-9;        // F
  double c_wire_per_m = 0.2e-9;    // wire capacitance (F/m) = 0.2 fF/µm
  double r_wire_per_m = 2.0e6;     // wire resistance (Ω/m) = 2 Ω/µm — thin
                                   // intermediate-level metal; used by the
                                   // array's distributed SL/BL RC ladders
  double c_ml_sense_load = 0.5e-15;  // ML sense-amp input load (F)
  double c_driver_load = 0.3e-15;    // driver diffusion load per line (F)
  // RRAM electrode plate capacitance presented to the matchline per cell
  // (MIM stack top plates of the two devices).
  double c_rram_electrode = 70e-18;
  // SRAM compare-stack gate loading per row on each searchline (off-state
  // gate: overlap-dominated). The NVM designs present only electrode stubs
  // to their searchlines, which is why their search energy undercuts the
  // 3T2N's despite the paper's wire-scaled-by-cell-size line model.
  double c_sl_offgate_sram = 150e-18;

  // Driver impedances.
  double r_line_driver = 500.0;  // SL/BL/WL buffer output impedance (Ω)
  double r_write_driver = 50.0;  // 2T2R bipolar row write driver (must sink
                                 // the aggregate ~mA set current unsagged)

  // Cell geometries (F units).
  CellGeometry geo_sram{28.0, 12.0};    // 336 F² — 16 transistors, wide & flat
  CellGeometry geo_nem{11.0, 11.5};     // 127 F² — 3T front-end, relays BEOL
  CellGeometry geo_rram{9.0, 8.0};      // 72 F²  — 2T2R
  CellGeometry geo_fefet{7.0, 3.5};     // 25 F²  — 2FeFET (ultra-dense)

  // Transistor sizing (width multiples of the minimal device). All cell
  // devices are near-minimal, per the paper's "minimized transistor size
  // for higher density".
  double w_nem_write = 1.0;    // Tw1/Tw2 write pass gates
  double w_nem_sense = 3.5;    // Ts matchline discharge transistor
  double w_sram_pullup = 0.7;  // keeper PMOS
  double w_sram_pulldn = 1.2;  // keeper NMOS
  double w_sram_access = 1.5;  // access NMOS (must overpower the keeper)
  double w_sram_cmp = 1.45;    // 4T compare stack (minimal for density)
  double w_rram_access = 2.5;  // 2T2R access device (also current compliance)
  double w_fefet = 4.5;        // 2FeFET search devices
  double w_precharge = 16.0;   // ML precharge PMOS (slew-sizes the 0.5 ns precharge)

  // 3T2N write wordline boost: a regular-Vt pass NMOS with a boosted WL
  // writes V_WL − V_th ≈ 0.72 V onto the relay gate — comfortably above
  // V_PI = 0.53 V — while keeping the standby (WL = 0) subthreshold leak
  // at the ~pA level that yields the paper's ~26.5 µs retention. Boosted
  // wordlines are standard practice in 1 V dynamic memories.
  double v_wl_write = 1.2;
  // Write pass-NMOS threshold: slightly below the nominal LP V_th (a
  // standard-V_t rather than high-V_t flavour). Sets the standby
  // subthreshold leak that determines retention (~26.5 µs from V_R).
  double vth_nem_write = 0.435;
  devices::MosfetParams nem_write_nmos() const {
    devices::MosfetParams p = devices::MosfetParams::nmos_lp(w_nem_write);
    p.vth = vth_nem_write;
    return p;
  }
  // Written '1' level on the relay gate (V_WL − V_th, verified by tests);
  // used to seed stored state in search experiments.
  double v_store_one = 0.76;

  // RRAM write drive (per the paper's settings).
  double v_rram_set = 1.8;
  double v_rram_reset = 1.2;
  double v_rram_wl = 2.5;  // write access gate overdrive

  // FeFET write drive.
  double v_fefet_write = 4.0;

  // One-shot refresh.
  double v_refresh = 0.5;  // V_R, inside (V_PO, V_PI) with noise margin
  // Refresh cadence the static sta.refresh-window rule checks retention
  // bounds against (s). 0 = unscheduled: the rule stays silent, matching
  // designs that refresh on demand. Set it (e.g. 10 µs) to assert every
  // state-holding node outlasts safety × period.
  double t_refresh_period = 0.0;

  // Search transaction timing.
  double t_precharge = 0.5e-9;     // ML precharge window
  double t_search_window = 2.5e-9; // observation window after SL edge

  // Sense strobe: the ML is latched a fixed delay after the SL edge, per
  // design (≈1.3× the nominal worst-case one-bit-mismatch delay). Match =
  // ML still above ml_sense_level at the strobe. The strobe is what makes
  // the 2T2R design usable at all — its matched MLs droop through the
  // 2 MΩ HRS paths and would eventually cross the threshold (the finite
  // ON/OFF-ratio array-size limit the paper describes).
  double t_strobe_sram = 1400e-12;
  double t_strobe_nem = 280e-12;
  double t_strobe_rram = 430e-12;
  double t_strobe_fefet = 900e-12;

  // Write transaction windows per technology (observation only; latency is
  // measured from waveforms/state settle, not from these).
  double t_write_window_sram = 3e-9;
  double t_write_window_nem = 6e-9;
  double t_write_window_rram = 16e-9;
  double t_write_window_fefet = 16e-9;

  // Helpers: per-cell line capacitance contributions (F).
  double cell_pitch_w(const CellGeometry& g) const { return g.width_f * feature_m; }
  double cell_pitch_h(const CellGeometry& g) const { return g.height_f * feature_m; }
  // A horizontal line (ML, WL) crossing one cell of geometry g.
  double c_hline_per_cell(const CellGeometry& g) const {
    return c_wire_per_m * cell_pitch_w(g);
  }
  // A vertical line (BL, SL) crossing one cell of geometry g.
  double c_vline_per_cell(const CellGeometry& g) const {
    return c_wire_per_m * cell_pitch_h(g);
  }
  // Series resistance of a vertical line across one cell of geometry g
  // (the per-segment resistance of the array's distributed line model).
  double r_vline_per_cell(const CellGeometry& g) const {
    return r_wire_per_m * cell_pitch_h(g);
  }

  static const Calibration& standard() {
    static const Calibration cal{};
    return cal;
  }
};

}  // namespace nemtcam::tcam
