// STT-MRAM TCAM baseline (after ref [5], Matsunaga et al.'s 9T/2MTJ cell;
// this realization uses the same divider-sense principle with 4
// transistors — the searchline drivers replace some of the original's
// per-cell buffering).
//
// Cell (per column):
//   SL ── M1 ── mid ── M2 ── SL̄          (MTJ resistive divider)
//   Ts: D=ML, G=mid, S=GND                (higher-V_t sense device)
//   Tacc_w: mid ↔ WBL, gate=WL            (write current steering)
//
// Encoding: stored '1' → M1 antiparallel, M2 parallel. With complementary
// searchline drive, the divider puts mid ≈ 0.71 V on a mismatch (Ts
// discharges ML) and ≈ 0.29 V on a match. The TMR of only 150 % is the
// design's defining weakness: the match level sits uncomfortably close to
// V_th, so matched matchlines leak and don't-care cells (both MTJs AP,
// mid = 0.5 V) leak more — the "low ON/OFF ratio … limits the achievable
// array size" problem the paper attributes to MRAM/RRAM TCAMs, and why
// search here is the slowest of all the designs.
//
// Writes drive ±V_w across the SL→M1→mid→M2→SL̄ stack with the access
// transistor grounding mid: both junctions see super-critical current of
// opposite polarity, programming (P, AP) or (AP, P) in one phase —
// current-driven, hence "higher write power" (paper §I).
#pragma once

#include "tcam/TcamRow.h"

namespace nemtcam::tcam {

class Mram4T2MRow final : public TcamRow {
 public:
  Mram4T2MRow(int width, int array_rows, const Calibration& cal);

  TcamKind kind() const override { return TcamKind::Mram4T2M; }

  SearchMetrics search(const TernaryWord& key) override;

  struct MtjStates {
    bool m1_parallel;
    bool m2_parallel;
  };
  static MtjStates states_for(Ternary t);

 protected:
  WriteMetrics simulate_write(const TernaryWord& old_word,
                              const TernaryWord& new_word) override;

};

}  // namespace nemtcam::tcam
