#include "tcam/ArrayTemplate.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <utility>

#include "devices/Mosfet.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "erc/TcamRules.h"
#include "spice/Partition.h"
#include "spice/Waveform.h"
#include "sta/Rules.h"
#include "sta/Sta.h"
#include "tcam/StaBridge.h"
#include "util/ThreadPool.h"

namespace nemtcam::tcam {

using namespace nemtcam::devices;
using spice::NodeId;

namespace {

std::unique_ptr<spice::Waveform> step_wave(double v0, double v1, double t_edge,
                                           double t_rise = 20e-12) {
  return std::make_unique<spice::PwlWave>(
      std::vector<std::pair<double, double>>{
          {0.0, v0}, {t_edge, v0}, {t_edge + t_rise, v1}});
}

double sl_drive(core::Ternary k, double vdd) {
  return k == core::Ternary::One ? vdd : 0.0;
}
double slb_drive(core::Ternary k, double vdd) {
  return k == core::Ternary::Zero ? vdd : 0.0;
}

}  // namespace

ArrayFixture::ArrayFixture(const Calibration& cal, const CellGeometry& geo,
                           int rows, int width, const core::TernaryWord& key,
                           const ArrayOptions& opt)
    : cal_(cal), opt_(opt), rows_(rows), width_(width) {
  NEMTCAM_EXPECT(rows >= 1 && width >= 1);
  NEMTCAM_EXPECT(static_cast<int>(key.size()) == width);
  t_edge_ = cal.t_precharge + 50e-12;
  t_end_ = t_edge_ + cal.t_search_window;

  // Shared rails. The ideal sources have no series impedance, so their
  // branch rows carry a zero diagonal — they must live in the border, not
  // in a 1×1 block of their own.
  vdd_ = circuit_.node("vdd");
  circuit_.add<VSource>("Vdd", vdd_, circuit_.ground(), cal.vdd);
  circuit_.set_ic(vdd_, cal.vdd);
  const NodeId pchgb = circuit_.node("pchgb");
  circuit_.add<VSource>("Vpchgb", pchgb, circuit_.ground(),
                        step_wave(0.0, cal.vdd, cal.t_precharge));
  claim(-1);

  // Row-to-segment map for the shared-line ladders.
  n_segments_ = std::clamp(opt.sl_segments, 1, rows);
  seg_of_row_.resize(static_cast<std::size_t>(rows));
  rows_in_seg_.assign(static_cast<std::size_t>(n_segments_), 0);
  for (int r = 0; r < rows; ++r) {
    const int s = static_cast<int>(
        (static_cast<long long>(r) * n_segments_) / rows);
    seg_of_row_[static_cast<std::size_t>(r)] = s;
    ++rows_in_seg_[static_cast<std::size_t>(s)];
  }

  // Searchline ladders: the column wire C that a single-row fixture lumps
  // onto one node is spread over the segments here (each section carries
  // its rows' worth of wire C and R); the cells' gate/electrode loading
  // is not added — every row is a real attached cell.
  c_vline_ = cal.c_vline_per_cell(geo);
  r_vline_ = cal.r_vline_per_cell(geo);
  sl_seg_.reserve(static_cast<std::size_t>(width));
  slb_seg_.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const core::Ternary k = key[static_cast<std::size_t>(i)];
    sl_seg_.push_back(build_ladder("sl" + std::to_string(i),
                                   sl_drive(k, cal.vdd), sl_driver_owner(i),
                                   line_owner(i)));
    slb_seg_.push_back(build_ladder("slb" + std::to_string(i),
                                    slb_drive(k, cal.vdd), slb_driver_owner(i),
                                    line_owner(i)));
  }

  // Per-row matchline hardware.
  const double c_ml = width * cal.c_hline_per_cell(geo) + cal.c_ml_sense_load;
  ml_.reserve(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    const std::string sfx = std::to_string(r);
    const NodeId ml = circuit_.node("ml" + sfx);
    circuit_.add<Capacitor>("Cml" + sfx, ml, circuit_.ground(), c_ml);
    circuit_.add<Mosfet>("Mpchg" + sfx, ml, pchgb, vdd_,
                         MosfetParams::pmos_lp(cal.w_precharge));
    claim(row_hw_owner(r));
    ml_.push_back(ml);
    checker_.add_rule(erc::ml_precharge_rule(ml, vdd_));
  }
}

std::vector<NodeId> ArrayFixture::build_ladder(const std::string& name,
                                               double v_drive,
                                               int driver_owner,
                                               int wire_owner) {
  std::vector<NodeId> ladder;
  ladder.reserve(static_cast<std::size_t>(n_segments_));

  const NodeId head = circuit_.node(name);
  circuit_.add<VSource>("Vdrv_" + name, head, circuit_.ground(),
                        step_wave(0.0, v_drive, t_edge_), cal_.r_line_driver);
  claim(driver_owner);  // nonzero branch diag (−R_drv), safe off the border
  circuit_.add<Capacitor>(
      "Cline_" + name, head, circuit_.ground(),
      rows_in_seg_[0] * c_vline_ + cal_.c_driver_load);
  ladder.push_back(head);
  for (int s = 1; s < n_segments_; ++s) {
    const std::string seg = name + "_s" + std::to_string(s);
    const NodeId n = circuit_.node(seg);
    circuit_.add<Resistor>("Rline_" + seg, ladder.back(), n,
                           rows_in_seg_[static_cast<std::size_t>(s)] * r_vline_);
    circuit_.add<Capacitor>(
        "Cline_" + seg, n, circuit_.ground(),
        rows_in_seg_[static_cast<std::size_t>(s)] * c_vline_);
    ladder.push_back(n);
  }
  claim(wire_owner);  // ByRow: between shared nodes; ByColumn: interior
  return ladder;
}

NodeId ArrayFixture::sl(int row, int col) const {
  return sl_seg_.at(static_cast<std::size_t>(col))
      .at(static_cast<std::size_t>(seg_of_row_.at(static_cast<std::size_t>(row))));
}

NodeId ArrayFixture::slb(int row, int col) const {
  return slb_seg_.at(static_cast<std::size_t>(col))
      .at(static_cast<std::size_t>(seg_of_row_.at(static_cast<std::size_t>(row))));
}

void ArrayFixture::claim(int owner) {
  NEMTCAM_EXPECT(owner >= -1 && owner < n_owners());
  owner_of_device_.resize(circuit_.devices().size(), owner);
}

void ArrayFixture::install_partition() {
  claim(-1);  // anything nobody claimed is shared
  if (!opt_.use_bbd) return;
  auto part = std::make_shared<linalg::BbdPartition>(spice::make_bbd_partition(
      circuit_, owner_of_device_, n_owners()));
  util::ThreadPool* pool = opt_.pool ? opt_.pool : &util::shared_pool();
  circuit_.set_solver_partition(std::move(part), pool);
}

const erc::Report& ArrayFixture::check() {
  if (!report_.has_value()) report_ = checker_.run(circuit_);
  return *report_;
}

spice::TransientResult ArrayFixture::run(double dt_max) {
  if (opt_.run_erc && erc::default_enforce()) {
    const erc::Report& rep = check();
    if (rep.has_errors()) {
      spice::TransientResult r;
      r.failure = "ERC failed before simulation\n" + rep.to_string();
      return r;
    }
  }
  spice::TransientOptions opts = spice::step_defaults(t_end_, dt_max);
  opts.probe_nodes = ml_;  // metrics only read the matchlines
  return spice::run_transient(circuit_, opts);
}

void ArrayFixture::rebind_key(const core::TernaryWord& key) {
  NEMTCAM_EXPECT(static_cast<int>(key.size()) == width_);
  for (int i = 0; i < width_; ++i) {
    const core::Ternary k = key[static_cast<std::size_t>(i)];
    const std::string sfx = std::to_string(i);
    NEMTCAM_EXPECT(circuit_.rebind_source(
        "Vdrv_sl" + sfx, step_wave(0.0, sl_drive(k, cal_.vdd), t_edge_)));
    NEMTCAM_EXPECT(circuit_.rebind_source(
        "Vdrv_slb" + sfx, step_wave(0.0, slb_drive(k, cal_.vdd), t_edge_)));
  }
}

ArraySearchMetrics ArrayFixture::metrics(const spice::TransientResult& result,
                                         double strobe_delay) {
  ArraySearchMetrics m;
  m.stamp_pattern_builds = circuit_.solver_cache().stats().pattern_builds;
  m.used_bbd = circuit_.solver_cache().using_bbd();
  m.bbd_fallbacks = circuit_.solver_cache().stats().bbd_fallbacks;
  if (const linalg::BbdSolver* b = circuit_.solver_cache().bbd()) {
    m.bbd_blocks = b->block_count();
    m.bbd_border = b->border_size();
  }
  if (report_.has_value()) {
    m.erc_errors = report_->count(erc::Severity::Error);
    m.erc_warnings = report_->count(erc::Severity::Warning);
  }
  if (!result.finished) {
    m.note = "transient failed: " + result.failure;
    return m;
  }
  m.energy = result.total_source_energy();
  m.steps = result.steps_taken;
  m.steps_rejected = result.steps_rejected;
  m.newton_iters = result.newton_iterations;

  m.rows.resize(static_cast<std::size_t>(rows_));
  for (int r = 0; r < rows_; ++r) {
    ArrayRowResult& rr = m.rows[static_cast<std::size_t>(r)];
    const spice::Trace tr = result.node_trace(ml_[static_cast<std::size_t>(r)]);
    rr.ml_final = tr.back();
    double ml_min = rr.ml_final;
    for (std::size_t i = 0; i < tr.size(); ++i) {
      if (tr.times()[i] >= t_edge_)
        ml_min = std::min(ml_min, tr.values()[i]);
    }
    rr.ml_min = ml_min;
    rr.matched = tr.at(t_edge_ + strobe_delay) > cal_.ml_sense_level;
    const auto cross =
        tr.cross_time(cal_.ml_sense_level, /*rising=*/false, t_edge_);
    rr.latency = cross.has_value() ? (*cross - t_edge_) : 0.0;
    if (rr.matched) ++m.match_count;
  }
  if (sta::default_enabled()) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::string> probes;
    probes.reserve(static_cast<std::size_t>(rows_));
    for (int r = 0; r < rows_; ++r)
      probes.push_back(circuit_.node_name(ml_[static_cast<std::size_t>(r)]));
    const sta::StaReport rep =
        sta::analyze(circuit_, probes, sta_options_for(cal_, strobe_delay));
    // Aggregate: timing band spans the rows STA predicts to discharge
    // (margin < 0) — matched rows only leak, their multi-ms "times" would
    // swamp the band. Margin comes from the row closest to the threshold.
    StaSummary agg;
    bool have_margin = false, have_band = false;
    for (int r = 0; r < rows_; ++r) {
      StaSummary& s = m.rows[static_cast<std::size_t>(r)].sta;
      s = sta_summary_from(rep, probes[static_cast<std::size_t>(r)]);
      if (!s.valid) continue;
      if (!agg.valid) agg = s;  // energy band / SL settle / retention are global
      if (!have_margin || std::abs(s.margin) < std::abs(agg.margin)) {
        agg.margin = s.margin;
        agg.v_strobe = s.v_strobe;
        have_margin = true;
      }
      if (s.margin < 0.0 && std::isfinite(s.t_nom) && s.t_nom > 0.0) {
        if (!have_band) {
          agg.t_lo = s.t_lo;
          agg.t_nom = s.t_nom;
          agg.t_hi = s.t_hi;
          have_band = true;
        } else {
          agg.t_lo = std::min(agg.t_lo, s.t_lo);
          agg.t_nom = std::max(agg.t_nom, s.t_nom);
          agg.t_hi = std::max(agg.t_hi, s.t_hi);
        }
      }
    }
    agg.analysis_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    m.sta = agg;
  }
  m.ok = true;
  return m;
}

ArrayTemplate::ArrayTemplate(SearchTemplateSpec spec, int rows, int width,
                             ArrayOptions opt)
    : spec_(std::move(spec)),
      rows_(rows),
      width_(width),
      opt_(opt),
      stored_(static_cast<std::size_t>(rows),
              core::TernaryWord(static_cast<std::size_t>(width),
                                core::Ternary::X)) {
  NEMTCAM_EXPECT(rows >= 1 && width >= 1);
  NEMTCAM_EXPECT(static_cast<bool>(spec_.bind));
  NEMTCAM_EXPECT(!spec_.cell.ports.empty());
}

void ArrayTemplate::store(int row, const core::TernaryWord& word) {
  NEMTCAM_EXPECT(static_cast<int>(word.size()) == width_);
  stored_.at(static_cast<std::size_t>(row)) = word;
}

void ArrayTemplate::build(const core::TernaryWord& key) {
  fx_ = std::make_unique<ArrayFixture>(spec_.cal, spec_.geo, rows_, width_,
                                       key, opt_);
  cells_.assign(static_cast<std::size_t>(rows_), {});
  spice::Circuit& ckt = fx_->circuit();

  std::map<std::string, NodeId> extra;
  if (spec_.shared_rails) {
    extra = spec_.shared_rails(ckt, fx_->vdd());
    fx_->claim(-1);  // rails feed every row
  }

  static const hier::Library kEmptyLib;  // cells carry no nested instances
  for (int r = 0; r < rows_; ++r) {
    const std::string row_scope = "Xrow" + std::to_string(r);
    auto& row_cells = cells_[static_cast<std::size_t>(r)];
    row_cells.reserve(static_cast<std::size_t>(width_));
    if (spec_.c_ml_load_per_cell > 0.0) {
      ckt.add<Capacitor>("Cel_ml" + std::to_string(r), fx_->ml(r),
                         ckt.ground(), width_ * spec_.c_ml_load_per_cell);
      fx_->claim(fx_->row_hw_owner(r));
    }
    for (int c = 0; c < width_; ++c) {
      std::vector<NodeId> ports;
      ports.reserve(spec_.cell.ports.size());
      for (const std::string& p : spec_.cell.ports) {
        if (p == "ml") ports.push_back(fx_->ml(r));
        else if (p == "vdd") ports.push_back(fx_->vdd());
        else if (p == "sl") ports.push_back(fx_->sl(r, c));
        else if (p == "slb") ports.push_back(fx_->slb(r, c));
        else if (const auto it = extra.find(p); it != extra.end())
          ports.push_back(it->second);
        else
          ports.push_back(spice::kGround);  // unused in this transaction
      }
      row_cells.push_back(hier::elaborate(
          ckt, kEmptyLib, spec_.cell, row_scope + ".Xcell" + std::to_string(c),
          ports, spec_.cell.params));
      fx_->claim(fx_->cell_owner(r, c));
    }
    if (spec_.array_rules)
      spec_.array_rules(
          ArrayRowContext{fx_->checker(), fx_->ml(r), fx_->vdd(), r, width_,
                          row_scope + "."},
          stored_[static_cast<std::size_t>(r)]);
  }
  // One STA margin-rule pass covers every matchline: the rules run over
  // the array as bound for the first search after the (re)build, at the
  // width-scaled nominal strobe.
  if (sta::default_enabled()) {
    std::vector<std::string> probes;
    probes.reserve(static_cast<std::size_t>(rows_));
    for (int r = 0; r < rows_; ++r) probes.push_back("ml" + std::to_string(r));
    fx_->checker().add_rule(sta::margin_rules(
        std::move(probes), sta_options_for(spec_.cal, default_strobe())));
  }
  fx_->install_partition();
  built_key_ = key;
  built_stored_ = stored_;
  ++builds_;
}

ArraySearchMetrics ArrayTemplate::search(const core::TernaryWord& key,
                                         double strobe_delay, double dt_max) {
  NEMTCAM_EXPECT(static_cast<int>(key.size()) == width_);
  if (!fx_ || built_stored_ != stored_) {
    build(key);
  } else if (built_key_ != key) {
    fx_->rebind_key(key);
    built_key_ = key;
  }

  spice::Circuit& ckt = fx_->circuit();
  ckt.reset_device_states();
  for (int r = 0; r < rows_; ++r) {
    const core::TernaryWord& word = stored_[static_cast<std::size_t>(r)];
    for (int c = 0; c < width_; ++c)
      spec_.bind(ckt, cells_[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)],
                 word[static_cast<std::size_t>(c)]);
  }

  const auto result = fx_->run(dt_max);
  return fx_->metrics(result,
                      strobe_delay >= 0.0 ? strobe_delay : default_strobe());
}

}  // namespace nemtcam::tcam
