#include "tcam/Nem3T2NRow.h"

#include <algorithm>

#include "devices/Mosfet.h"
#include "devices/NemRelay.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "erc/TcamRules.h"
#include "hier/Elaborate.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"
#include "tcam/Harness.h"
#include "tcam/RowSpecs.h"
#include "tcam/SearchTemplate.h"
#include "util/Random.h"

namespace nemtcam::tcam {

using namespace nemtcam::devices;
using spice::Circuit;
using spice::NodeId;
using spice::PwlWave;
using spice::TransientOptions;

namespace {

struct RelayTargets {
  bool n1_closed;
  bool n2_closed;
};

RelayTargets targets_for(Ternary t) {
  switch (t) {
    case Ternary::One: return {true, false};
    case Ternary::Zero: return {false, true};
    case Ternary::X: return {false, false};
  }
  return {false, false};
}

// Draws per-device pull-in/pull-out thresholds around the nominals.
NemRelayParams varied_relay_params(util::Rng& rng, double sigma) {
  NemRelayParams np;
  if (sigma > 0.0) {
    np.v_pi = rng.normal(np.v_pi, sigma);
    np.v_po = std::min(rng.normal(np.v_po, sigma), np.v_pi - 0.05);
  }
  return np;
}

// Same edge shape add_driven_line gives its sources — used when a replay
// rebinds a line driver to a new target level.
std::unique_ptr<spice::Waveform> drive_wave(double v0, double v1,
                                            double t_edge) {
  return std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
      {0.0, v0}, {t_edge, v0}, {t_edge + 20e-12, v1}});
}

// One 3T2N cell, all nets as ports. A search grounds bl/blb/wl; a write
// grounds ml/sl/slb — exactly the legacy flat builders' wiring, so an
// elaborated cell is device-for-device identical to the hand-built one.
hier::SubcktDef nem_cell_def(const Calibration& c) {
  hier::SubcktDef def;
  def.name = "nem3t2n_cell";
  def.ports = {"ml", "sl", "slb", "bl", "blb", "wl"};
  const auto write_nmos = [c](Circuit& k, const std::string& n,
                              const std::vector<NodeId>& nd,
                              const hier::ParamEnv&) -> spice::Device& {
    return k.add<Mosfet>(n, nd[0], nd[1], nd[2], c.nem_write_nmos());
  };
  def.emit("Tw1", {"stg1", "wl", "bl"}, write_nmos);
  def.emit("Tw2", {"stg2", "wl", "blb"}, write_nmos);
  const auto relay = [](Circuit& k, const std::string& n,
                        const std::vector<NodeId>& nd,
                        const hier::ParamEnv&) -> spice::Device& {
    return k.add<NemRelay>(n, nd[0], nd[1], nd[2], nd[3]);
  };
  def.emit("N1", {"slb", "stg1", "gs", "0"}, relay);
  def.emit("N2", {"sl", "stg2", "gs", "0"}, relay);
  def.emit("Ts", {"ml", "gs", "0"},
           [c](Circuit& k, const std::string& n,
               const std::vector<NodeId>& nd,
               const hier::ParamEnv&) -> spice::Device& {
             return k.add<Mosfet>(n, nd[0], nd[1], nd[2],
                                  MosfetParams::nmos_lp(c.w_nem_sense));
           });
  return def;
}

// Seeds one cell's relays and storage-node ICs for a stored trit. Writes
// the zero ICs too: a replayed template must not inherit the previous
// word's levels (an absent IC and an explicit 0 are equivalent at t=0).
void bind_nem_cell(Circuit& ckt, const hier::InstanceHandles& cell,
                   Ternary t, double v_store_one) {
  const RelayTargets tgt = targets_for(t);
  const double v1 = tgt.n1_closed ? v_store_one : 0.0;
  const double v2 = tgt.n2_closed ? v_store_one : 0.0;
  auto* n1 = dynamic_cast<NemRelay*>(cell.device("N1"));
  auto* n2 = dynamic_cast<NemRelay*>(cell.device("N2"));
  NEMTCAM_EXPECT(n1 != nullptr && n2 != nullptr);
  n1->set_state(tgt.n1_closed, v1);
  n2->set_state(tgt.n2_closed, v2);
  ckt.set_ic(cell.node_at("stg1"), v1);
  ckt.set_ic(cell.node_at("stg2"), v2);
}

std::string hier_relay_name(const char* base, std::size_t col) {
  return "Xcell" + std::to_string(col) + "." + base;
}

}  // namespace

SearchTemplateSpec nem3t2n_search_spec(const Calibration& c) {
  SearchTemplateSpec spec;
  spec.cal = c;
  spec.geo = c.geo_nem;
  spec.t_strobe = c.t_strobe_nem;
  spec.cell = nem_cell_def(c);
  spec.bind = [v1 = c.v_store_one](Circuit& ckt,
                                   const hier::InstanceHandles& cell,
                                   Ternary t) {
    bind_nem_cell(ckt, cell, t, v1);
  };
  spec.array_rules = [v_refresh = c.v_refresh](const ArrayRowContext& rc,
                                               const TernaryWord& stored) {
    rc.checker.add_rule(erc::ml_fanin_rule(rc.ml, rc.vdd, rc.width));
    rc.checker.add_rule(erc::nem_pair_rule(
        stored,
        [scope = rc.scope](std::size_t col) {
          return scope + hier_relay_name("N1", col);
        },
        [scope = rc.scope](std::size_t col) {
          return scope + hier_relay_name("N2", col);
        }));
    // Window check inspects every relay in the circuit — once per array.
    if (rc.row == 0)
      rc.checker.add_rule(erc::relay_refresh_window_rule(v_refresh));
  };
  return spec;
}

// The elaborated write transaction: WL/BL/BL̄ drivers plus one cell per
// column, built once. A replay rebinds the bitline waveforms to the new
// word, re-seeds the relays from the old word, and reruns the transient
// on the same stamp pattern.
struct NemWriteTemplate {
  Circuit ckt;
  std::vector<hier::InstanceHandles> cells;
  double t0 = 0.0;
  double t_end = 0.0;
};

Nem3T2NRow::Nem3T2NRow(int width, int array_rows, const Calibration& cal)
    : TcamRow(width, array_rows, cal) {}

Nem3T2NRow::~Nem3T2NRow() = default;

SearchMetrics Nem3T2NRow::search(const TernaryWord& key) {
  const Calibration& c = cal();
  if (hier::default_enabled()) {
    if (!search_tpl_)
      search_tpl_ = std::make_unique<SearchTemplate>(nem3t2n_search_spec(c),
                                                     width(), array_rows());
    return search_tpl_->search(key, stored_,
                               search_tpl_->spec().t_strobe * strobe_scale());
  }

  SearchFixture fx(c, c.geo_nem, width(), array_rows(), key);
  Circuit& ckt = fx.circuit();

  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const NodeId stg1 = ckt.node("stg1_" + sfx);
    const NodeId stg2 = ckt.node("stg2_" + sfx);
    const NodeId gs = ckt.node("gs_" + sfx);

    // Write transistors are off during search (WL = BL = 0 ⇒ ground);
    // they still load and leak the storage nodes.
    ckt.add<Mosfet>("Tw1_" + sfx, stg1, ckt.ground(), ckt.ground(),
                    c.nem_write_nmos());
    ckt.add<Mosfet>("Tw2_" + sfx, stg2, ckt.ground(), ckt.ground(),
                    c.nem_write_nmos());

    auto& n1 = ckt.add<NemRelay>("N1_" + sfx, fx.slb(i), stg1, gs, ckt.ground());
    auto& n2 = ckt.add<NemRelay>("N2_" + sfx, fx.sl(i), stg2, gs, ckt.ground());
    ckt.add<Mosfet>("Ts_" + sfx, fx.ml(), gs, ckt.ground(),
                    MosfetParams::nmos_lp(c.w_nem_sense));

    const RelayTargets t = targets_for(stored_[static_cast<std::size_t>(i)]);
    const double v1 = t.n1_closed ? c.v_store_one : 0.0;
    const double v2 = t.n2_closed ? c.v_store_one : 0.0;
    n1.set_state(t.n1_closed, v1);
    n2.set_state(t.n2_closed, v2);
    if (v1 > 0.0) ckt.set_ic(stg1, v1);
    if (v2 > 0.0) ckt.set_ic(stg2, v2);
  }

  // Design rules the fixture cannot know: one sense NMOS per cell loads
  // the ML, the relay pair must encode the stored word (X = OFF/OFF), and
  // every relay's hysteresis window must admit the calibration's one-shot
  // refresh level.
  fx.checker().add_rule(erc::ml_fanin_rule(fx.ml(), fx.vdd(), width()));
  fx.checker().add_rule(erc::nem_pair_rule(stored_));
  fx.checker().add_rule(erc::relay_refresh_window_rule(c.v_refresh));

  const auto result = fx.run();
  return fx.metrics(result, cal().t_strobe_nem * strobe_scale());
}

WriteMetrics Nem3T2NRow::simulate_write(const TernaryWord& old_word,
                                        const TernaryWord& new_word) {
  const Calibration& c = cal();
  if (hier::default_enabled()) {
    const double t0 = 0.1e-9;
    if (!write_tpl_) {
      auto tpl = std::make_unique<NemWriteTemplate>();
      tpl->t0 = t0;
      tpl->t_end = t0 + c.t_write_window_nem;
      Circuit& ckt = tpl->ckt;
      const double c_wl = width() * c.c_hline_per_cell(c.geo_nem);
      const NodeId wl =
          add_driven_line(ckt, c, "wl", c_wl, 0.0, c.v_wl_write, t0);
      const double c_bl = array_rows() * c.c_vline_per_cell(c.geo_nem);
      const hier::SubcktDef cell = nem_cell_def(c);
      static const hier::Library kEmptyLib;
      for (int i = 0; i < width(); ++i) {
        const std::string sfx = std::to_string(i);
        const RelayTargets tgt =
            targets_for(new_word[static_cast<std::size_t>(i)]);
        const NodeId bl = add_driven_line(ckt, c, "bl" + sfx, c_bl, 0.0,
                                          tgt.n1_closed ? c.vdd : 0.0, t0);
        const NodeId blb = add_driven_line(ckt, c, "blb" + sfx, c_bl, 0.0,
                                           tgt.n2_closed ? c.vdd : 0.0, t0);
        // Port order of nem_cell_def: ml, sl, slb grounded during a write.
        tpl->cells.push_back(hier::elaborate(
            ckt, kEmptyLib, cell, "Xcell" + sfx,
            {spice::kGround, spice::kGround, spice::kGround, bl, blb, wl}));
      }
      write_tpl_ = std::move(tpl);
    } else {
      for (int i = 0; i < width(); ++i) {
        const std::string sfx = std::to_string(i);
        const RelayTargets tgt =
            targets_for(new_word[static_cast<std::size_t>(i)]);
        NEMTCAM_EXPECT(write_tpl_->ckt.rebind_source(
            "Vdrv_bl" + sfx,
            drive_wave(0.0, tgt.n1_closed ? c.vdd : 0.0, t0)));
        NEMTCAM_EXPECT(write_tpl_->ckt.rebind_source(
            "Vdrv_blb" + sfx,
            drive_wave(0.0, tgt.n2_closed ? c.vdd : 0.0, t0)));
      }
    }

    Circuit& ckt = write_tpl_->ckt;
    ckt.reset_device_states();
    for (int i = 0; i < width(); ++i)
      bind_nem_cell(ckt, write_tpl_->cells[static_cast<std::size_t>(i)],
                    old_word[static_cast<std::size_t>(i)], c.v_store_one);

    const TransientOptions opts =
        spice::step_defaults(write_tpl_->t_end, 20e-12);
    const auto result = run_transient(ckt, opts);

    WriteMetrics m;
    if (!result.finished) {
      m.note = "transient failed: " + result.failure;
      return m;
    }
    m.energy = result.total_source_energy();

    double latest = 0.0;
    bool all_ok = true;
    for (int i = 0; i < width(); ++i) {
      const auto& cell = write_tpl_->cells[static_cast<std::size_t>(i)];
      const RelayTargets tgt =
          targets_for(new_word[static_cast<std::size_t>(i)]);
      for (const auto& [base, want_closed] :
           {std::pair{"N1", tgt.n1_closed}, std::pair{"N2", tgt.n2_closed}}) {
        auto* relay = dynamic_cast<NemRelay*>(cell.device(base));
        NEMTCAM_EXPECT(relay != nullptr);
        if (relay->contact() != want_closed) {
          all_ok = false;
          m.note = "relay " + relay->name() + " did not reach target state";
          continue;
        }
        const double t_settle = want_closed ? relay->t_contact_closed()
                                            : relay->t_contact_opened();
        if (t_settle > 0.0) latest = std::max(latest, t_settle - t0);
      }
    }
    m.ok = all_ok;
    m.latency = latest;
    return m;
  }

  Circuit ckt;
  const double t0 = 0.1e-9;
  const double t_end = t0 + c.t_write_window_nem;

  // Boosted wordline crossing the whole row.
  const double c_wl = width() * c.c_hline_per_cell(c.geo_nem);
  const NodeId wl =
      add_driven_line(ckt, c, "wl", c_wl, 0.0, c.v_wl_write, t0);

  std::vector<NemRelay*> relays1(static_cast<std::size_t>(width()));
  std::vector<NemRelay*> relays2(static_cast<std::size_t>(width()));

  const double c_bl = array_rows() * c.c_vline_per_cell(c.geo_nem);
  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const RelayTargets tgt = targets_for(new_word[static_cast<std::size_t>(i)]);
    const RelayTargets old = targets_for(old_word[static_cast<std::size_t>(i)]);

    const NodeId bl = add_driven_line(ckt, c, "bl" + sfx, c_bl, 0.0,
                                      tgt.n1_closed ? c.vdd : 0.0, t0);
    const NodeId blb = add_driven_line(ckt, c, "blb" + sfx, c_bl, 0.0,
                                       tgt.n2_closed ? c.vdd : 0.0, t0);

    const NodeId stg1 = ckt.node("stg1_" + sfx);
    const NodeId stg2 = ckt.node("stg2_" + sfx);
    const NodeId gs = ckt.node("gs_" + sfx);

    ckt.add<Mosfet>("Tw1_" + sfx, stg1, wl, bl,
                    c.nem_write_nmos());
    ckt.add<Mosfet>("Tw2_" + sfx, stg2, wl, blb,
                    c.nem_write_nmos());
    // During a write SL/SL̄ and ML are held at ground.
    relays1[static_cast<std::size_t>(i)] =
        &ckt.add<NemRelay>("N1_" + sfx, ckt.ground(), stg1, gs, ckt.ground());
    relays2[static_cast<std::size_t>(i)] =
        &ckt.add<NemRelay>("N2_" + sfx, ckt.ground(), stg2, gs, ckt.ground());
    ckt.add<Mosfet>("Ts_" + sfx, ckt.ground(), gs, ckt.ground(),
                    MosfetParams::nmos_lp(c.w_nem_sense));

    const double v1 = old.n1_closed ? c.v_store_one : 0.0;
    const double v2 = old.n2_closed ? c.v_store_one : 0.0;
    relays1[static_cast<std::size_t>(i)]->set_state(old.n1_closed, v1);
    relays2[static_cast<std::size_t>(i)]->set_state(old.n2_closed, v2);
    if (v1 > 0.0) ckt.set_ic(stg1, v1);
    if (v2 > 0.0) ckt.set_ic(stg2, v2);
  }

  const TransientOptions opts = spice::step_defaults(t_end, 20e-12);
  const auto result = run_transient(ckt, opts);

  WriteMetrics m;
  if (!result.finished) {
    m.note = "transient failed: " + result.failure;
    return m;
  }
  m.energy = result.total_source_energy();

  double latest = 0.0;
  bool all_ok = true;
  for (int i = 0; i < width(); ++i) {
    const RelayTargets tgt = targets_for(new_word[static_cast<std::size_t>(i)]);
    for (const auto& [relay, want_closed] :
         {std::pair{relays1[static_cast<std::size_t>(i)], tgt.n1_closed},
          std::pair{relays2[static_cast<std::size_t>(i)], tgt.n2_closed}}) {
      if (relay->contact() != want_closed) {
        all_ok = false;
        m.note = "relay " + relay->name() + " did not reach target state";
        continue;
      }
      const double t_settle =
          want_closed ? relay->t_contact_closed() : relay->t_contact_opened();
      if (t_settle > 0.0) latest = std::max(latest, t_settle - t0);
    }
  }
  m.ok = all_ok;
  m.latency = latest;
  return m;
}

double Nem3T2NRow::simulate_retention(double v_start) const {
  const Calibration& c = cal();
  Circuit ckt;
  const NodeId stg = ckt.node("stg");
  const NodeId gs = ckt.node("gs");
  // WL and BL grounded: the write transistor's subthreshold leak drains
  // the relay gate toward the bitline.
  ckt.add<Mosfet>("Tw", stg, ckt.ground(), ckt.ground(),
                  c.nem_write_nmos());
  auto& relay = ckt.add<NemRelay>("N1", ckt.ground(), stg, gs, ckt.ground());
  ckt.add<Mosfet>("Ts", ckt.ground(), gs, ckt.ground(),
                  MosfetParams::nmos_lp(c.w_nem_sense));
  relay.set_state(true, v_start);
  ckt.set_ic(stg, v_start);

  // Retention runs µs-scale: under LTE control the leakage decay sustains
  // µs steps and the relay release lands via event bisection (the legacy
  // fixed path quantized it to the 100 ns grid).
  TransientOptions opts = spice::step_defaults(500e-6, 100e-9, 1e-6);
  opts.record = false;
  const auto result = run_transient(ckt, opts);
  if (!result.finished) return 0.0;
  if (relay.contact()) return opts.t_end;  // never lost within the window
  return relay.t_contact_opened();
}

RefreshMetrics Nem3T2NRow::one_shot_refresh() const {
  const Calibration& c = cal();
  // Worst case: the refresh must arrive before a '1' written at the
  // refresh level itself decays below V_PO.
  return refresh_at(c.v_refresh, /*v_pre_one=*/0.25);
}

RefreshMetrics Nem3T2NRow::refresh_at(double v_refresh, double v_pre_one) const {
  const Calibration& c = cal();

  // Runs the row-level OSR netlist and returns {energy, latency, ok}.
  // with_bl_load toggles the column-height bitline capacitance so the
  // shared-line energy can be separated from the per-row energy.
  struct OsrRun {
    double energy = 0.0;
    double latency = 0.0;
    bool ok = false;
    std::string note;
  };
  auto run_osr = [&](bool with_bl_load) -> OsrRun {
    Circuit ckt;
    util::Rng rng(seed_);
    // Sequencing matters: the bitlines must already sit at V_R when the
    // wordlines open, otherwise a stored '1' gate transiently dips below
    // V_PO through the write transistor — and once the beam starts
    // releasing, V_R (< V_PI) cannot re-actuate it. OSR therefore raises
    // all BLs first, then asserts all WLs.
    const double t0 = 0.1e-9;
    const double t_wl = t0 + 0.5e-9;
    const double t_end = t_wl + 5e-9;
    const double c_wl = width() * c.c_hline_per_cell(c.geo_nem);
    const NodeId wl = add_driven_line(ckt, c, "wl", c_wl, 0.0, c.v_wl_write, t_wl);
    const double c_bl =
        with_bl_load ? array_rows() * c.c_vline_per_cell(c.geo_nem) : 1e-21;

    std::vector<NemRelay*> r1(static_cast<std::size_t>(width()));
    std::vector<NemRelay*> r2(static_cast<std::size_t>(width()));
    std::vector<NodeId> stg_nodes;
    for (int i = 0; i < width(); ++i) {
      const std::string sfx = std::to_string(i);
      const NodeId bl =
          add_driven_line(ckt, c, "bl" + sfx, c_bl, 0.0, v_refresh, t0);
      const NodeId blb =
          add_driven_line(ckt, c, "blb" + sfx, c_bl, 0.0, v_refresh, t0);
      const NodeId stg1 = ckt.node("stg1_" + sfx);
      const NodeId stg2 = ckt.node("stg2_" + sfx);
      const NodeId gs = ckt.node("gs_" + sfx);
      ckt.add<Mosfet>("Tw1_" + sfx, stg1, wl, bl,
                      c.nem_write_nmos());
      ckt.add<Mosfet>("Tw2_" + sfx, stg2, wl, blb,
                      c.nem_write_nmos());
      r1[static_cast<std::size_t>(i)] = &ckt.add<NemRelay>(
          "N1_" + sfx, ckt.ground(), stg1, gs, ckt.ground(),
          varied_relay_params(rng, sigma_vth_));
      r2[static_cast<std::size_t>(i)] = &ckt.add<NemRelay>(
          "N2_" + sfx, ckt.ground(), stg2, gs, ckt.ground(),
          varied_relay_params(rng, sigma_vth_));
      ckt.add<Mosfet>("Ts_" + sfx, ckt.ground(), gs, ckt.ground(),
                      MosfetParams::nmos_lp(c.w_nem_sense));

      const RelayTargets t = targets_for(stored_[static_cast<std::size_t>(i)]);
      const double v1 = t.n1_closed ? v_pre_one : 0.0;
      const double v2 = t.n2_closed ? v_pre_one : 0.0;
      r1[static_cast<std::size_t>(i)]->set_state(t.n1_closed, v1);
      r2[static_cast<std::size_t>(i)]->set_state(t.n2_closed, v2);
      if (v1 > 0.0) ckt.set_ic(stg1, v1);
      if (v2 > 0.0) ckt.set_ic(stg2, v2);
      stg_nodes.push_back(stg1);
      stg_nodes.push_back(stg2);
    }

    const TransientOptions opts = spice::step_defaults(t_end, 20e-12);
    const auto result = run_transient(ckt, opts);

    OsrRun out;
    if (!result.finished) {
      out.note = "transient failed: " + result.failure;
      return out;
    }
    out.energy = result.total_source_energy();
    out.ok = true;
    for (int i = 0; i < width(); ++i) {
      const RelayTargets t = targets_for(stored_[static_cast<std::size_t>(i)]);
      if (r1[static_cast<std::size_t>(i)]->contact() != t.n1_closed ||
          r2[static_cast<std::size_t>(i)]->contact() != t.n2_closed) {
        out.ok = false;
        out.note = "OSR corrupted stored state at column " + std::to_string(i);
      }
    }
    // Latency: all storage nodes settled to the refresh level.
    double latest = t0;
    for (const NodeId n : stg_nodes) {
      const auto ts = result.node_trace(n).settle_time(v_refresh,
                                                       0.05 * c.vdd);
      if (ts.has_value()) latest = std::max(latest, *ts);
    }
    out.latency = latest - t0;
    return out;
  };

  RefreshMetrics m;
  const OsrRun full = run_osr(/*with_bl_load=*/true);
  if (!full.ok) {
    m.note = full.note;
    return m;
  }
  const OsrRun cells_only = run_osr(/*with_bl_load=*/false);
  if (!cells_only.ok) {
    m.note = cells_only.note;
    return m;
  }

  // Whole-array decomposition: the bitline (and its driver) energy is
  // shared by every row and is spent once; wordline + cell-charge energy
  // repeats per row.
  const double e_shared = std::max(full.energy - cells_only.energy, 0.0);
  m.energy_per_op = e_shared + array_rows() * cells_only.energy;
  m.latency = full.latency;
  m.retention_time = simulate_retention(v_refresh);
  if (m.retention_time > 0.0)
    m.refresh_power = m.energy_per_op / m.retention_time;
  m.ok = m.retention_time > 0.0;
  if (!m.ok) m.note = "retention simulation failed";
  return m;
}

}  // namespace nemtcam::tcam
