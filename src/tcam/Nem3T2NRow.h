// The paper's contribution: the 3-transistor / 2-NEM-relay dynamic TCAM
// cell and its row-level transactions (Fig. 1).
//
// Cell structure per column:
//   BL  ── Tw1 ── stg1 (gate of relay N1)      N1: D=SL̄, S=gs, B=GND
//   BL̄ ── Tw2 ── stg2 (gate of relay N2)      N2: D=SL,  S=gs, B=GND
//   Ts: D=ML, G=gs, S=GND
//
// Encoding: stored '1' → N1 closed, N2 open; '0' → N1 open, N2 closed;
// 'X' → both open. During a search, a mismatch routes the asserted
// searchline through the closed relay (full rail — no V_th drop) onto the
// gate of Ts, which discharges the pre-charged matchline.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tcam/TcamRow.h"

namespace nemtcam::tcam {

// Elaborated write-transaction template (defined in the .cpp): the write
// netlist built once, replayed per transaction by rebinding the BL/BL̄
// drive waveforms and re-seeding the relay states.
struct NemWriteTemplate;

class Nem3T2NRow final : public TcamRow {
 public:
  Nem3T2NRow(int width, int array_rows, const Calibration& cal);
  ~Nem3T2NRow() override;  // out-of-line: NemWriteTemplate is incomplete

  TcamKind kind() const override { return TcamKind::Nem3T2N; }

  SearchMetrics search(const TernaryWord& key) override;

  // One-shot refresh (Fig. 4): every wordline of the array is asserted and
  // every bitline driven to V_R simultaneously; closed relays stay closed
  // (V_R > V_PO), open relays stay open (V_R < V_PI). Reports whole-array
  // energy, op latency, worst-case retention, and average refresh power.
  RefreshMetrics one_shot_refresh() const;

  // Time from a stored-'1' gate at `v_start` until the relay releases
  // (data loss) under write-transistor subthreshold leakage.
  double simulate_retention(double v_start) const;

  // One-shot refresh with a caller-chosen refresh level (V_R ablations).
  // `v_pre_one` is the decayed level a stored '1' holds just before the
  // refresh. ok=false if any relay ends in the wrong state.
  RefreshMetrics refresh_at(double v_refresh, double v_pre_one) const;

  // Device-to-device variation of the relay thresholds: every relay in
  // subsequently built netlists draws its own V_PI/V_PO as Gaussian around
  // the nominals (V_PO clamped below V_PI). Used by the variation
  // ablation: OSR correctness requires max(V_PO) < V_R < min(V_PI) across
  // the whole array, so threshold spread eats the refresh window.
  void set_threshold_sigma(double sigma_volts) { sigma_vth_ = sigma_volts; }
  void set_variation_seed(std::uint64_t seed) { seed_ = seed; }

 protected:
  WriteMetrics simulate_write(const TernaryWord& old_word,
                              const TernaryWord& new_word) override;

 private:
  std::unique_ptr<NemWriteTemplate> write_tpl_;
  double sigma_vth_ = 0.0;
  std::uint64_t seed_ = 1;
};

}  // namespace nemtcam::tcam
