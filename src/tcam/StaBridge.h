// Glue between the tcam calibration/metrics layer and the sta:: engine:
// derives StaOptions from a Calibration plus the transaction's strobe,
// and folds a full StaReport down to the StaSummary that rides on
// SearchMetrics / ArraySearchMetrics. Kept out of Harness.h so Metrics.h
// stays free of sta includes.
#pragma once

#include <string>

#include "sta/Sta.h"
#include "tcam/Calibration.h"
#include "tcam/Metrics.h"

namespace nemtcam::tcam {

// Analysis options matching how the search fixtures drive the circuit:
// the calibration's rails, precharge window and sense level, the caller's
// strobe delay, and the refresh cadence (0 = refresh-window rule silent).
sta::StaOptions sta_options_for(const Calibration& cal, double strobe_delay);

// Collapses a report to the single-matchline summary for `ml_node`
// (bounds of that ML, whole-circuit energy band, worst line/retention).
StaSummary sta_summary_from(const sta::StaReport& rep,
                            const std::string& ml_node);

}  // namespace nemtcam::tcam
