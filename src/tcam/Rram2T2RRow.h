// 2-transistor / 2-RRAM TCAM baseline (Fig. 2(b), Li et al. JSSC'14 style).
//
// Per cell, two branches between the matchline and ground:
//   branch A: ML → Ra → mid_a → Ma(gate=SL)  → GND
//   branch B: ML → Rb → mid_b → Mb(gate=SL̄) → GND
// Encoding: stored '1' → Ra=HRS, Rb=LRS; '0' → Ra=LRS, Rb=HRS;
// 'X' → both HRS. A mismatch routes the asserted searchline's branch
// through the LRS device and discharges ML; a match leaks only through
// the 2 MΩ HRS path (the finite ON/OFF-ratio weakness the paper notes).
//
// Writes reuse the matchline as the bipolar write line (Li et al.): a set
// phase at +1.8 V with the set-target branch gated on, then a reset phase
// at −1.2 V for the other branch. Writes are current-driven — this is
// where the ~46 pJ/row cost comes from.
#pragma once

#include "tcam/TcamRow.h"

namespace nemtcam::tcam {

class Rram2T2RRow final : public TcamRow {
 public:
  Rram2T2RRow(int width, int array_rows, const Calibration& cal);

  TcamKind kind() const override { return TcamKind::Rram2T2R; }

  SearchMetrics search(const TernaryWord& key) override;

  // Device-to-device LRS/HRS variation (log-normal sigma, natural log)
  // applied to every RRAM in subsequently built netlists; used by the
  // Monte-Carlo variation ablation.
  void set_resistance_sigma(double sigma_log) { sigma_log_ = sigma_log; }
  void set_variation_seed(std::uint64_t seed) { seed_ = seed; }

  struct RramStates {
    bool a_lrs;
    bool b_lrs;
  };
  static RramStates states_for(Ternary t);

 protected:
  WriteMetrics simulate_write(const TernaryWord& old_word,
                              const TernaryWord& new_word) override;

 private:

  double sigma_log_ = 0.0;
  std::uint64_t seed_ = 1;
};

}  // namespace nemtcam::tcam
