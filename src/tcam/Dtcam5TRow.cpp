#include "tcam/Dtcam5TRow.h"

#include <algorithm>

#include "devices/Mosfet.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "erc/TcamRules.h"
#include "hier/Elaborate.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"
#include "tcam/Harness.h"
#include "tcam/RowSpecs.h"
#include "tcam/SearchTemplate.h"

namespace nemtcam::tcam {

using namespace nemtcam::devices;
using spice::Circuit;
using spice::NodeId;
using spice::TransientOptions;

namespace {
// Between the 3T2N and the 16T SRAM cell: dynamic storage, 6 transistors.
const CellGeometry kGeo{14.0, 10.0};  // 140 F²
}  // namespace

Dtcam5TRow::Dtcam5TRow(int width, int array_rows, const Calibration& cal)
    : TcamRow(width, array_rows, cal) {}

Dtcam5TRow::StoredLevels Dtcam5TRow::levels_for(Ternary t, double v_high) {
  switch (t) {
    case Ternary::One: return {v_high, 0.0};
    case Ternary::Zero: return {0.0, v_high};
    case Ternary::X: return {0.0, 0.0};
  }
  return {0.0, 0.0};
}

Dtcam5TRow::StoredLevels Dtcam5TRow::levels_for(Ternary t) const {
  return levels_for(t, cal().v_store_one);
}

SearchTemplateSpec dtcam5t_search_spec(const Calibration& c) {
  SearchTemplateSpec spec;
  spec.cal = c;
  spec.geo = kGeo;
  // The stored level (~0.76 V) drives the top compare device with less
  // overdrive than the SRAM's full-rail latch, so this design is a bit
  // slower than the 16T: give the strobe headroom.
  spec.t_strobe = c.t_strobe_sram * 1.5;
  spec.cell.name = "dtcam5t_cell";
  spec.cell.ports = {"ml", "sl", "slb", "bl", "blb", "wl"};
  const auto fet = [](MosfetParams mp) {
    return [mp](Circuit& k, const std::string& n,
                const std::vector<NodeId>& nd,
                const hier::ParamEnv&) -> spice::Device& {
      return k.add<Mosfet>(n, nd[0], nd[1], nd[2], mp);
    };
  };
  spec.cell.emit("Tw1", {"stg1", "wl", "bl"}, fet(c.nem_write_nmos()));
  spec.cell.emit("Tw2", {"stg2", "wl", "blb"}, fet(c.nem_write_nmos()));
  const MosfetParams cmp = MosfetParams::nmos_lp(c.w_sram_cmp);
  spec.cell.emit("Mc1", {"ml", "stg1", "cmpa"}, fet(cmp));
  spec.cell.emit("Mc2", {"cmpa", "slb", "0"}, fet(cmp));
  spec.cell.emit("Mc3", {"ml", "stg2", "cmpb"}, fet(cmp));
  spec.cell.emit("Mc4", {"cmpb", "sl", "0"}, fet(cmp));
  spec.bind = [high = c.v_store_one](Circuit& ckt,
                                     const hier::InstanceHandles& cell,
                                     Ternary t) {
    const Dtcam5TRow::StoredLevels lv = Dtcam5TRow::levels_for(t, high);
    ckt.set_ic(cell.node_at("stg1"), lv.v1);
    ckt.set_ic(cell.node_at("stg2"), lv.v2);
  };
  spec.array_rules = [](const ArrayRowContext& rc, const TernaryWord&) {
    rc.checker.add_rule(erc::ml_fanin_rule(rc.ml, rc.vdd, 2 * rc.width));
  };
  return spec;
}

SearchMetrics Dtcam5TRow::search(const TernaryWord& key) {
  const Calibration& c = cal();
  if (hier::default_enabled()) {
    if (!search_tpl_)
      search_tpl_ = std::make_unique<SearchTemplate>(dtcam5t_search_spec(c),
                                                     width(), array_rows());
    return search_tpl_->search(key, stored_,
                               search_tpl_->spec().t_strobe * strobe_scale());
  }

  SearchFixture fx(c, kGeo, width(), array_rows(), key);
  Circuit& ckt = fx.circuit();

  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const StoredLevels lv = levels_for(stored_[static_cast<std::size_t>(i)]);

    const NodeId stg1 = ckt.node("stg1_" + sfx);
    const NodeId stg2 = ckt.node("stg2_" + sfx);
    const NodeId cmp_a = ckt.node("cmpa_" + sfx);
    const NodeId cmp_b = ckt.node("cmpb_" + sfx);

    // Off write transistors hold (and slowly leak) the storage nodes.
    ckt.add<Mosfet>("Tw1_" + sfx, stg1, ckt.ground(), ckt.ground(),
                    c.nem_write_nmos());
    ckt.add<Mosfet>("Tw2_" + sfx, stg2, ckt.ground(), ckt.ground(),
                    c.nem_write_nmos());

    ckt.add<Mosfet>("Mc1_" + sfx, fx.ml(), stg1, cmp_a,
                    MosfetParams::nmos_lp(c.w_sram_cmp));
    ckt.add<Mosfet>("Mc2_" + sfx, cmp_a, fx.slb(i), ckt.ground(),
                    MosfetParams::nmos_lp(c.w_sram_cmp));
    ckt.add<Mosfet>("Mc3_" + sfx, fx.ml(), stg2, cmp_b,
                    MosfetParams::nmos_lp(c.w_sram_cmp));
    ckt.add<Mosfet>("Mc4_" + sfx, cmp_b, fx.sl(i), ckt.ground(),
                    MosfetParams::nmos_lp(c.w_sram_cmp));

    if (lv.v1 > 0.0) ckt.set_ic(stg1, lv.v1);
    if (lv.v2 > 0.0) ckt.set_ic(stg2, lv.v2);
  }

  // Two compare-stack transistors per cell load the ML.
  fx.checker().add_rule(erc::ml_fanin_rule(fx.ml(), fx.vdd(), 2 * width()));

  const auto result = fx.run();
  // The stored level (~0.76 V) drives the top compare device with less
  // overdrive than the SRAM's full-rail latch, so this design is a bit
  // slower than the 16T: give the strobe headroom.
  return fx.metrics(result, c.t_strobe_sram * strobe_scale() * 1.5);
}

WriteMetrics Dtcam5TRow::simulate_write(const TernaryWord& old_word,
                                        const TernaryWord& new_word) {
  const Calibration& c = cal();
  Circuit ckt;
  const double t0 = 0.1e-9;
  const double t_end = t0 + 3e-9;

  const double c_wl = width() * c.c_hline_per_cell(kGeo);
  const NodeId wl = add_driven_line(ckt, c, "wl", c_wl, 0.0, c.v_wl_write, t0);
  const double c_bl = array_rows() * c.c_vline_per_cell(kGeo);

  struct Monitored {
    NodeId node;
    bool target_one;
  };
  std::vector<Monitored> monitored;

  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const StoredLevels old_lv = levels_for(old_word[static_cast<std::size_t>(i)]);
    const StoredLevels new_lv = levels_for(new_word[static_cast<std::size_t>(i)]);

    const NodeId bl = add_driven_line(ckt, c, "bl" + sfx, c_bl, 0.0,
                                      new_lv.v1 > 0.0 ? c.vdd : 0.0, t0);
    const NodeId blb = add_driven_line(ckt, c, "blb" + sfx, c_bl, 0.0,
                                       new_lv.v2 > 0.0 ? c.vdd : 0.0, t0);
    const NodeId stg1 = ckt.node("stg1_" + sfx);
    const NodeId stg2 = ckt.node("stg2_" + sfx);
    const NodeId cmp_a = ckt.node("cmpa_" + sfx);
    const NodeId cmp_b = ckt.node("cmpb_" + sfx);

    ckt.add<Mosfet>("Tw1_" + sfx, stg1, wl, bl, c.nem_write_nmos());
    ckt.add<Mosfet>("Tw2_" + sfx, stg2, wl, blb, c.nem_write_nmos());
    // Searchlines and ML grounded during the write.
    ckt.add<Mosfet>("Mc1_" + sfx, ckt.ground(), stg1, cmp_a,
                    MosfetParams::nmos_lp(c.w_sram_cmp));
    ckt.add<Mosfet>("Mc2_" + sfx, cmp_a, ckt.ground(), ckt.ground(),
                    MosfetParams::nmos_lp(c.w_sram_cmp));
    ckt.add<Mosfet>("Mc3_" + sfx, ckt.ground(), stg2, cmp_b,
                    MosfetParams::nmos_lp(c.w_sram_cmp));
    ckt.add<Mosfet>("Mc4_" + sfx, cmp_b, ckt.ground(), ckt.ground(),
                    MosfetParams::nmos_lp(c.w_sram_cmp));

    if (old_lv.v1 > 0.0) ckt.set_ic(stg1, old_lv.v1);
    if (old_lv.v2 > 0.0) ckt.set_ic(stg2, old_lv.v2);
    monitored.push_back({stg1, new_lv.v1 > 0.0});
    monitored.push_back({stg2, new_lv.v2 > 0.0});
  }

  const TransientOptions opts = spice::step_defaults(t_end, 20e-12);
  const auto result = run_transient(ckt, opts);

  WriteMetrics m;
  if (!result.finished) {
    m.note = "transient failed: " + result.failure;
    return m;
  }
  m.energy = result.total_source_energy();
  bool all_ok = true;
  double latest = 0.0;
  for (const auto& mon : monitored) {
    const spice::Trace tr = result.node_trace(mon.node);
    // A written '1' first reaches V_WL − V_th quickly and then creeps
    // toward the bitline level through moderate inversion, so the '1'
    // acceptance band is wide ([0.65, 1.05] V); '0' must settle near GND.
    const double target = mon.target_one ? 0.85 * c.vdd : 0.0;
    const double tol = mon.target_one ? 0.2 * c.vdd : 0.12 * c.vdd;
    const auto ts = tr.settle_time(target, tol);
    if (!ts.has_value()) {
      all_ok = false;
      m.note = "storage node " + ckt.node_name(mon.node) + " did not settle";
      continue;
    }
    latest = std::max(latest, std::max(*ts - t0, 0.0));
  }
  m.ok = all_ok;
  m.latency = latest;
  return m;
}

double Dtcam5TRow::simulate_retention(double v_start) const {
  const Calibration& c = cal();
  Circuit ckt;
  const NodeId stg = ckt.node("stg");
  ckt.add<Mosfet>("Tw", stg, ckt.ground(), ckt.ground(), c.nem_write_nmos());
  // Compare-transistor gate load on the storage node.
  auto p = MosfetParams::nmos_lp(c.w_sram_cmp);
  ckt.add<Mosfet>("Mc", ckt.ground(), stg, ckt.ground(), p);
  ckt.set_ic(stg, v_start);

  const TransientOptions opts = spice::step_defaults(500e-6, 100e-9, 1e-6);
  const auto result = run_transient(ckt, opts);
  if (!result.finished) return 0.0;
  // Data is lost once the stored level can no longer switch the compare
  // transistor decisively: V_th plus ~100 mV of overdrive margin.
  const double limit = p.vth + 0.1;
  const auto cross = result.node_trace(stg).cross_time(limit, false);
  return cross.value_or(opts.t_end);
}

RefreshMetrics Dtcam5TRow::row_refresh_cost() {
  RefreshMetrics m;
  const TernaryWord word = stored_;
  const WriteMetrics w = simulate_write(word, word);
  m.energy_per_op = w.energy;  // one row op
  m.latency = 2e-9;            // WL assertion window per row op
  m.retention_time = simulate_retention(cal().v_store_one);
  if (m.retention_time > 0.0)
    m.refresh_power = array_rows() * m.energy_per_op / m.retention_time;
  m.ok = w.ok && m.retention_time > 0.0;
  if (!w.ok) m.note = "row write-back failed: " + w.note;
  return m;
}

}  // namespace nemtcam::tcam
