#include "tcam/TcamRow.h"

#include "tcam/RowSpecs.h"
#include "tcam/SearchTemplate.h"

#include "tcam/Dtcam5TRow.h"
#include "tcam/Fefet2FRow.h"
#include "tcam/Fefet4T2FRow.h"
#include "tcam/Mram4T2MRow.h"
#include "tcam/Nem3T2NRow.h"
#include "tcam/Rram2T2RRow.h"
#include "tcam/Sram16TRow.h"

namespace nemtcam::tcam {

const char* kind_name(TcamKind k) {
  switch (k) {
    case TcamKind::Sram16T: return "16T SRAM";
    case TcamKind::Nem3T2N: return "3T2N NEM";
    case TcamKind::Rram2T2R: return "2T2R RRAM";
    case TcamKind::Fefet2F: return "2FeFET";
    case TcamKind::Dtcam5T: return "5T DTCAM";
    case TcamKind::Fefet4T2F: return "4T2F FeFET";
    case TcamKind::Mram4T2M: return "4T2M MRAM";
  }
  return "?";
}

TcamRow::~TcamRow() = default;

TcamRow::TcamRow(int width, int array_rows, const Calibration& cal)
    : stored_(TernaryWord(static_cast<std::size_t>(width), Ternary::X)),
      width_(width), array_rows_(array_rows), cal_(cal) {
  NEMTCAM_EXPECT(width >= 1);
  NEMTCAM_EXPECT(array_rows >= 1);
}

void TcamRow::store(const TernaryWord& word) {
  NEMTCAM_EXPECT(static_cast<int>(word.size()) == width());
  stored_ = word;
}

WriteMetrics TcamRow::write(const TernaryWord& word) {
  NEMTCAM_EXPECT(static_cast<int>(word.size()) == width());
  const TernaryWord old_word = stored_;
  WriteMetrics m = simulate_write(old_word, word);
  if (m.ok) stored_ = word;
  return m;
}

std::unique_ptr<TcamRow> make_row(TcamKind kind, int width, int array_rows,
                                  const Calibration& cal) {
  switch (kind) {
    case TcamKind::Sram16T:
      return std::make_unique<Sram16TRow>(width, array_rows, cal);
    case TcamKind::Nem3T2N:
      return std::make_unique<Nem3T2NRow>(width, array_rows, cal);
    case TcamKind::Rram2T2R:
      return std::make_unique<Rram2T2RRow>(width, array_rows, cal);
    case TcamKind::Fefet2F:
      return std::make_unique<Fefet2FRow>(width, array_rows, cal);
    case TcamKind::Dtcam5T:
      return std::make_unique<Dtcam5TRow>(width, array_rows, cal);
    case TcamKind::Fefet4T2F:
      return std::make_unique<Fefet4T2FRow>(width, array_rows, cal);
    case TcamKind::Mram4T2M:
      return std::make_unique<Mram4T2MRow>(width, array_rows, cal);
  }
  NEMTCAM_EXPECT_MSG(false, "unknown TcamKind");
  return nullptr;
}

SearchTemplateSpec search_spec_for(TcamKind kind, const Calibration& cal) {
  switch (kind) {
    case TcamKind::Sram16T: return sram16t_search_spec(cal);
    case TcamKind::Nem3T2N: return nem3t2n_search_spec(cal);
    case TcamKind::Rram2T2R: return rram2t2r_search_spec(cal);
    case TcamKind::Fefet2F: return fefet2f_search_spec(cal);
    case TcamKind::Dtcam5T: return dtcam5t_search_spec(cal);
    case TcamKind::Fefet4T2F: return fefet4t2f_search_spec(cal);
    case TcamKind::Mram4T2M: return mram4t2m_search_spec(cal);
  }
  NEMTCAM_EXPECT_MSG(false, "unknown TcamKind");
  return {};
}

}  // namespace nemtcam::tcam
