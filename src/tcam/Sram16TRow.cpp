#include "tcam/Sram16TRow.h"

#include <algorithm>

#include "devices/Mosfet.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "erc/TcamRules.h"
#include "hier/Elaborate.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"
#include "tcam/Harness.h"
#include "tcam/RowSpecs.h"
#include "tcam/SearchTemplate.h"

namespace nemtcam::tcam {

using namespace nemtcam::devices;
using spice::Circuit;
using spice::NodeId;
using spice::TransientOptions;

Sram16TRow::Sram16TRow(int width, int array_rows, const Calibration& cal)
    : TcamRow(width, array_rows, cal) {}

Sram16TRow::CellBits Sram16TRow::bits_for(Ternary t) {
  switch (t) {
    case Ternary::One: return {true, false};
    case Ternary::Zero: return {false, true};
    case Ternary::X: return {false, false};
  }
  return {false, false};
}

namespace {

// Adds one 6T SRAM bit cell; returns nothing (nodes are created by name).
// q/qb are the storage nodes; bl/blb the bitlines; wl the wordline.
void add_6t_cell(Circuit& ckt, const Calibration& c, const std::string& name,
                 NodeId vdd, NodeId q, NodeId qb, NodeId bl, NodeId blb,
                 NodeId wl) {
  ckt.add<Mosfet>(name + "_pu1", q, qb, vdd,
                  MosfetParams::pmos_lp(c.w_sram_pullup));
  ckt.add<Mosfet>(name + "_pd1", q, qb, ckt.ground(),
                  MosfetParams::nmos_lp(c.w_sram_pulldn));
  ckt.add<Mosfet>(name + "_pu2", qb, q, vdd,
                  MosfetParams::pmos_lp(c.w_sram_pullup));
  ckt.add<Mosfet>(name + "_pd2", qb, q, ckt.ground(),
                  MosfetParams::nmos_lp(c.w_sram_pulldn));
  ckt.add<Mosfet>(name + "_ax1", bl, wl, q,
                  MosfetParams::nmos_lp(c.w_sram_access));
  ckt.add<Mosfet>(name + "_ax2", blb, wl, qb,
                  MosfetParams::nmos_lp(c.w_sram_access));
}

void seed_cell_state(Circuit& ckt, NodeId q, NodeId qb, bool value,
                     double vdd) {
  ckt.set_ic(q, value ? vdd : 0.0);
  ckt.set_ic(qb, value ? 0.0 : vdd);
}

// Appends the six emit cards of one 6T bit cell to a cell definition.
// `tag` is the local device-name prefix ("c1"/"c2"); q/qb the local
// storage-node names; bl/blb/wl port names (grounded during a search).
void emit_6t_cards(hier::SubcktDef& def, const Calibration& c,
                   const std::string& tag, const std::string& q,
                   const std::string& qb, const std::string& bl,
                   const std::string& blb, const std::string& wl) {
  const auto fet = [](MosfetParams mp) {
    return [mp](Circuit& k, const std::string& n,
                const std::vector<NodeId>& nd,
                const hier::ParamEnv&) -> spice::Device& {
      return k.add<Mosfet>(n, nd[0], nd[1], nd[2], mp);
    };
  };
  def.emit(tag + "_pu1", {q, qb, "vdd"},
           fet(MosfetParams::pmos_lp(c.w_sram_pullup)));
  def.emit(tag + "_pd1", {q, qb, "0"},
           fet(MosfetParams::nmos_lp(c.w_sram_pulldn)));
  def.emit(tag + "_pu2", {qb, q, "vdd"},
           fet(MosfetParams::pmos_lp(c.w_sram_pullup)));
  def.emit(tag + "_pd2", {qb, q, "0"},
           fet(MosfetParams::nmos_lp(c.w_sram_pulldn)));
  def.emit(tag + "_ax1", {bl, wl, q},
           fet(MosfetParams::nmos_lp(c.w_sram_access)));
  def.emit(tag + "_ax2", {blb, wl, qb},
           fet(MosfetParams::nmos_lp(c.w_sram_access)));
}

// The 16T cell: two 6T bit cells plus the 4T compare network, all nets as
// ports (bitlines and wordline ground during a search).
hier::SubcktDef sram_cell_def(const Calibration& c) {
  hier::SubcktDef def;
  def.name = "sram16t_cell";
  def.ports = {"ml",  "sl",   "slb", "vdd", "bl1",
               "bl1b", "bl2", "bl2b", "wl"};
  emit_6t_cards(def, c, "c1", "d1", "d1b", "bl1", "bl1b", "wl");
  emit_6t_cards(def, c, "c2", "d2", "d2b", "bl2", "bl2b", "wl");
  const auto cmp = [c](Circuit& k, const std::string& n,
                       const std::vector<NodeId>& nd,
                       const hier::ParamEnv&) -> spice::Device& {
    return k.add<Mosfet>(n, nd[0], nd[1], nd[2],
                         MosfetParams::nmos_lp(c.w_sram_cmp));
  };
  def.emit("Mc1", {"ml", "d1", "cmpa"}, cmp);
  def.emit("Mc2", {"cmpa", "slb", "0"}, cmp);
  def.emit("Mc3", {"ml", "d2", "cmpb"}, cmp);
  def.emit("Mc4", {"cmpb", "sl", "0"}, cmp);
  return def;
}

}  // namespace

SearchTemplateSpec sram16t_search_spec(const Calibration& c) {
  SearchTemplateSpec spec;
  spec.cal = c;
  spec.geo = c.geo_sram;
  spec.c_sl_gate_per_row = c.c_sl_offgate_sram;
  spec.t_strobe = c.t_strobe_sram;
  spec.cell = sram_cell_def(c);
  spec.bind = [vdd = c.vdd](Circuit& ckt, const hier::InstanceHandles& cell,
                            Ternary t) {
    const Sram16TRow::CellBits bits = Sram16TRow::bits_for(t);
    seed_cell_state(ckt, cell.node_at("d1"), cell.node_at("d1b"), bits.d1,
                    vdd);
    seed_cell_state(ckt, cell.node_at("d2"), cell.node_at("d2b"), bits.d2,
                    vdd);
  };
  spec.array_rules = [](const ArrayRowContext& rc, const TernaryWord&) {
    rc.checker.add_rule(erc::ml_fanin_rule(rc.ml, rc.vdd, 2 * rc.width));
  };
  return spec;
}

SearchMetrics Sram16TRow::search(const TernaryWord& key) {
  const Calibration& c = cal();
  if (hier::default_enabled()) {
    if (!search_tpl_)
      search_tpl_ = std::make_unique<SearchTemplate>(sram16t_search_spec(c),
                                                     width(), array_rows());
    return search_tpl_->search(key, stored_,
                               search_tpl_->spec().t_strobe * strobe_scale());
  }

  SearchFixture fx(c, c.geo_sram, width(), array_rows(), key,
                   c.c_sl_offgate_sram);
  Circuit& ckt = fx.circuit();

  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const CellBits bits = bits_for(stored_[static_cast<std::size_t>(i)]);

    const NodeId d1 = ckt.node("d1_" + sfx);
    const NodeId d1b = ckt.node("d1b_" + sfx);
    const NodeId d2 = ckt.node("d2_" + sfx);
    const NodeId d2b = ckt.node("d2b_" + sfx);

    // Bitlines idle at 0, wordline off during search.
    add_6t_cell(ckt, c, "c1_" + sfx, fx.vdd(), d1, d1b, ckt.ground(),
                ckt.ground(), ckt.ground());
    add_6t_cell(ckt, c, "c2_" + sfx, fx.vdd(), d2, d2b, ckt.ground(),
                ckt.ground(), ckt.ground());
    seed_cell_state(ckt, d1, d1b, bits.d1, c.vdd);
    seed_cell_state(ckt, d2, d2b, bits.d2, c.vdd);

    // 4T compare network.
    const NodeId cmp_a = ckt.node("cmpa_" + sfx);
    const NodeId cmp_b = ckt.node("cmpb_" + sfx);
    ckt.add<Mosfet>("Mc1_" + sfx, fx.ml(), d1, cmp_a,
                    MosfetParams::nmos_lp(c.w_sram_cmp));
    ckt.add<Mosfet>("Mc2_" + sfx, cmp_a, fx.slb(i), ckt.ground(),
                    MosfetParams::nmos_lp(c.w_sram_cmp));
    ckt.add<Mosfet>("Mc3_" + sfx, fx.ml(), d2, cmp_b,
                    MosfetParams::nmos_lp(c.w_sram_cmp));
    ckt.add<Mosfet>("Mc4_" + sfx, cmp_b, fx.sl(i), ckt.ground(),
                    MosfetParams::nmos_lp(c.w_sram_cmp));
  }

  // Two compare-stack transistors per cell load the ML.
  fx.checker().add_rule(erc::ml_fanin_rule(fx.ml(), fx.vdd(), 2 * width()));

  const auto result = fx.run();
  return fx.metrics(result, cal().t_strobe_sram * strobe_scale());
}

WriteMetrics Sram16TRow::simulate_write(const TernaryWord& old_word,
                                        const TernaryWord& new_word) {
  const Calibration& c = cal();
  Circuit ckt;
  const double t0 = 0.1e-9;
  const double t_end = t0 + c.t_write_window_sram;

  const NodeId vdd = ckt.node("vdd");
  ckt.add<VSource>("Vdd", vdd, ckt.ground(), c.vdd);
  ckt.set_ic(vdd, c.vdd);

  const double c_wl = width() * c.c_hline_per_cell(c.geo_sram);
  const NodeId wl = add_driven_line(ckt, c, "wl", c_wl, 0.0, c.vdd, t0);

  const double c_bl = array_rows() * c.c_vline_per_cell(c.geo_sram);

  struct Monitored {
    NodeId node;
    double target;
  };
  std::vector<Monitored> monitored;

  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const CellBits old_bits = bits_for(old_word[static_cast<std::size_t>(i)]);
    const CellBits new_bits = bits_for(new_word[static_cast<std::size_t>(i)]);

    // Four bitlines per column (two per 6T cell).
    const NodeId bl1 = add_driven_line(ckt, c, "bl1_" + sfx, c_bl, 0.0,
                                       new_bits.d1 ? c.vdd : 0.0, t0);
    const NodeId bl1b = add_driven_line(ckt, c, "bl1b_" + sfx, c_bl, 0.0,
                                        new_bits.d1 ? 0.0 : c.vdd, t0);
    const NodeId bl2 = add_driven_line(ckt, c, "bl2_" + sfx, c_bl, 0.0,
                                       new_bits.d2 ? c.vdd : 0.0, t0);
    const NodeId bl2b = add_driven_line(ckt, c, "bl2b_" + sfx, c_bl, 0.0,
                                        new_bits.d2 ? 0.0 : c.vdd, t0);

    const NodeId d1 = ckt.node("d1_" + sfx);
    const NodeId d1b = ckt.node("d1b_" + sfx);
    const NodeId d2 = ckt.node("d2_" + sfx);
    const NodeId d2b = ckt.node("d2b_" + sfx);

    add_6t_cell(ckt, c, "c1_" + sfx, vdd, d1, d1b, bl1, bl1b, wl);
    add_6t_cell(ckt, c, "c2_" + sfx, vdd, d2, d2b, bl2, bl2b, wl);
    seed_cell_state(ckt, d1, d1b, old_bits.d1, c.vdd);
    seed_cell_state(ckt, d2, d2b, old_bits.d2, c.vdd);

    // Compare network loads the storage nodes during a write; ML and the
    // searchlines are grounded.
    const NodeId cmp_a = ckt.node("cmpa_" + sfx);
    const NodeId cmp_b = ckt.node("cmpb_" + sfx);
    ckt.add<Mosfet>("Mc1_" + sfx, ckt.ground(), d1, cmp_a,
                    MosfetParams::nmos_lp(c.w_sram_cmp));
    ckt.add<Mosfet>("Mc2_" + sfx, cmp_a, ckt.ground(), ckt.ground(),
                    MosfetParams::nmos_lp(c.w_sram_cmp));
    ckt.add<Mosfet>("Mc3_" + sfx, ckt.ground(), d2, cmp_b,
                    MosfetParams::nmos_lp(c.w_sram_cmp));
    ckt.add<Mosfet>("Mc4_" + sfx, cmp_b, ckt.ground(), ckt.ground(),
                    MosfetParams::nmos_lp(c.w_sram_cmp));

    monitored.push_back({d1, new_bits.d1 ? c.vdd : 0.0});
    monitored.push_back({d1b, new_bits.d1 ? 0.0 : c.vdd});
    monitored.push_back({d2, new_bits.d2 ? c.vdd : 0.0});
    monitored.push_back({d2b, new_bits.d2 ? 0.0 : c.vdd});
  }

  const TransientOptions opts = spice::step_defaults(t_end, 20e-12);
  const auto result = run_transient(ckt, opts);

  WriteMetrics m;
  if (!result.finished) {
    m.note = "transient failed: " + result.failure;
    return m;
  }
  m.energy = result.total_source_energy();

  bool all_ok = true;
  double latest = 0.0;
  for (const auto& mon : monitored) {
    const spice::Trace tr = result.node_trace(mon.node);
    const auto ts = tr.settle_time(mon.target, 0.1 * c.vdd);
    if (!ts.has_value()) {
      all_ok = false;
      m.note = "cell node " + ckt.node_name(mon.node) + " did not settle";
      continue;
    }
    latest = std::max(latest, std::max(*ts - t0, 0.0));
  }
  m.ok = all_ok;
  m.latency = latest;
  return m;
}

}  // namespace nemtcam::tcam
