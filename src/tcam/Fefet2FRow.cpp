#include "tcam/Fefet2FRow.h"

#include <algorithm>

#include "devices/Fefet.h"
#include "devices/Passive.h"
#include "devices/Sources.h"
#include "erc/TcamRules.h"
#include "hier/Elaborate.h"
#include "spice/Transient.h"
#include "spice/Waveform.h"
#include "tcam/Harness.h"
#include "tcam/RowSpecs.h"
#include "tcam/SearchTemplate.h"

namespace nemtcam::tcam {

using namespace nemtcam::devices;
using spice::Circuit;
using spice::NodeId;
using spice::TransientOptions;

Fefet2FRow::Fefet2FRow(int width, int array_rows, const Calibration& cal)
    : TcamRow(width, array_rows, cal) {}

Fefet2FRow::FefetStates Fefet2FRow::states_for(Ternary t) {
  switch (t) {
    case Ternary::One: return {false, true};
    case Ternary::Zero: return {true, false};
    case Ternary::X: return {false, false};
  }
  return {false, false};
}

SearchTemplateSpec fefet2f_search_spec(const Calibration& c) {
  FefetParams fp;
  fp.fet = MosfetParams::nmos_lp(c.w_fefet);

  SearchTemplateSpec spec;
  spec.cal = c;
  spec.geo = c.geo_fefet;
  spec.t_strobe = c.t_strobe_fefet;
  spec.cell.name = "fefet2f_cell";
  spec.cell.ports = {"ml", "sl", "slb"};
  const auto fefet = [fp](Circuit& k, const std::string& n,
                          const std::vector<spice::NodeId>& nd,
                          const hier::ParamEnv&) -> spice::Device& {
    return k.add<Fefet>(n, nd[0], nd[1], nd[2], fp);
  };
  spec.cell.emit("F1", {"ml", "sl", "0"}, fefet);
  spec.cell.emit("F2", {"ml", "slb", "0"}, fefet);
  spec.bind = [](Circuit&, const hier::InstanceHandles& cell, Ternary t) {
    const Fefet2FRow::FefetStates st = Fefet2FRow::states_for(t);
    auto* f1 = dynamic_cast<Fefet*>(cell.device("F1"));
    auto* f2 = dynamic_cast<Fefet*>(cell.device("F2"));
    NEMTCAM_EXPECT(f1 != nullptr && f2 != nullptr);
    f1->set_low_vth(st.f1_low_vth);
    f2->set_low_vth(st.f2_low_vth);
  };
  spec.array_rules = [](const ArrayRowContext& rc, const TernaryWord&) {
    rc.checker.add_rule(erc::ml_fanin_rule(rc.ml, rc.vdd, 2 * rc.width));
  };
  return spec;
}

SearchMetrics Fefet2FRow::search(const TernaryWord& key) {
  const Calibration& c = cal();
  if (hier::default_enabled()) {
    if (!search_tpl_)
      search_tpl_ = std::make_unique<SearchTemplate>(fefet2f_search_spec(c),
                                                     width(), array_rows());
    return search_tpl_->search(key, stored_,
                               search_tpl_->spec().t_strobe * strobe_scale());
  }

  SearchFixture fx(c, c.geo_fefet, width(), array_rows(), key);
  Circuit& ckt = fx.circuit();

  FefetParams fp;
  fp.fet = MosfetParams::nmos_lp(c.w_fefet);

  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const FefetStates st = states_for(stored_[static_cast<std::size_t>(i)]);
    auto& f1 = ckt.add<Fefet>("F1_" + sfx, fx.ml(), fx.sl(i), ckt.ground(), fp);
    auto& f2 = ckt.add<Fefet>("F2_" + sfx, fx.ml(), fx.slb(i), ckt.ground(), fp);
    f1.set_low_vth(st.f1_low_vth);
    f2.set_low_vth(st.f2_low_vth);
  }

  // Two FeFETs per cell load the ML.
  fx.checker().add_rule(erc::ml_fanin_rule(fx.ml(), fx.vdd(), 2 * width()));

  const auto result = fx.run();
  return fx.metrics(result, cal().t_strobe_fefet * strobe_scale());
}

WriteMetrics Fefet2FRow::simulate_write(const TernaryWord& old_word,
                                        const TernaryWord& new_word) {
  const Calibration& c = cal();
  Circuit ckt;
  const double t0 = 0.1e-9;
  const double t_end = t0 + c.t_write_window_fefet;

  FefetParams fp;
  fp.fet = MosfetParams::nmos_lp(c.w_fefet);

  const double c_sl = array_rows() * c.c_vline_per_cell(c.geo_fefet);
  std::vector<Fefet*> f1s(static_cast<std::size_t>(width()));
  std::vector<Fefet*> f2s(static_cast<std::size_t>(width()));

  for (int i = 0; i < width(); ++i) {
    const std::string sfx = std::to_string(i);
    const FefetStates old_st = states_for(old_word[static_cast<std::size_t>(i)]);
    const FefetStates new_st = states_for(new_word[static_cast<std::size_t>(i)]);

    // ±4 V program pulses on the search/program lines. Devices whose state
    // is unchanged still see the drive (the write is row-parallel), which
    // is fine: the pulse pushes them further into the same saturation.
    const double v1 = new_st.f1_low_vth ? c.v_fefet_write : -c.v_fefet_write;
    const double v2 = new_st.f2_low_vth ? c.v_fefet_write : -c.v_fefet_write;
    const NodeId sl = add_driven_line(ckt, c, "sl" + sfx, c_sl, 0.0, v1, t0);
    const NodeId slb = add_driven_line(ckt, c, "slb" + sfx, c_sl, 0.0, v2, t0);

    // ML held at ground during the write.
    f1s[static_cast<std::size_t>(i)] =
        &ckt.add<Fefet>("F1_" + sfx, ckt.ground(), sl, ckt.ground(), fp);
    f2s[static_cast<std::size_t>(i)] =
        &ckt.add<Fefet>("F2_" + sfx, ckt.ground(), slb, ckt.ground(), fp);
    f1s[static_cast<std::size_t>(i)]->set_low_vth(old_st.f1_low_vth);
    f2s[static_cast<std::size_t>(i)]->set_low_vth(old_st.f2_low_vth);
  }

  const TransientOptions opts = spice::step_defaults(t_end, 50e-12);
  const auto result = run_transient(ckt, opts);

  WriteMetrics m;
  if (!result.finished) {
    m.note = "transient failed: " + result.failure;
    return m;
  }
  m.energy = result.total_source_energy();

  bool all_ok = true;
  double latest = 0.0;
  for (int i = 0; i < width(); ++i) {
    const FefetStates new_st = states_for(new_word[static_cast<std::size_t>(i)]);
    const FefetStates old_st = states_for(old_word[static_cast<std::size_t>(i)]);
    for (const auto& [dev, want_low, was_low] :
         {std::tuple{f1s[static_cast<std::size_t>(i)], new_st.f1_low_vth,
                     old_st.f1_low_vth},
          std::tuple{f2s[static_cast<std::size_t>(i)], new_st.f2_low_vth,
                     old_st.f2_low_vth}}) {
      const bool is_low = dev->polarization() > 0.9;
      const bool is_high = dev->polarization() < -0.9;
      if ((want_low && !is_low) || (!want_low && !is_high)) {
        all_ok = false;
        m.note = "FeFET " + dev->name() + " did not reach target state";
        continue;
      }
      if (want_low != was_low) {
        const double ts = want_low ? dev->t_program_complete()
                                   : dev->t_erase_complete();
        if (ts > 0.0) latest = std::max(latest, ts - t0);
      }
    }
  }
  m.ok = all_ok;
  m.latency = latest;
  return m;
}

}  // namespace nemtcam::tcam
