#include "core/DynamicTcam.h"

#include <limits>

namespace nemtcam::core {

DynamicTcam::DynamicTcam(TcamTech tech, int rows, int width, bool auto_refresh)
    : model_(rows, width), energy_model_(tech, width, rows),
      auto_refresh_(auto_refresh),
      charged_at_(static_cast<std::size_t>(rows),
                  -std::numeric_limits<double>::infinity()) {
  next_deadline_ = energy_model_.needs_refresh()
                       ? energy_model_.retention_time()
                       : std::numeric_limits<double>::infinity();
}

void DynamicTcam::maybe_auto_refresh(double target_time) {
  if (!auto_refresh_ || !energy_model_.needs_refresh()) return;
  // Insert every refresh that would have fired before target_time.
  while (next_deadline_ <= target_time) {
    now_ = next_deadline_;
    one_shot_refresh();  // advances ledger + re-arms deadline
  }
}

void DynamicTcam::expire_rows() {
  if (!energy_model_.needs_refresh()) return;
  // Tolerance absorbs floating-point rounding when a refresh lands exactly
  // on the retention deadline (age == retention up to 1 ulp).
  const double retention = energy_model_.retention_time() * (1.0 + 1e-9);
  for (int r = 0; r < model_.rows(); ++r) {
    const auto idx = static_cast<std::size_t>(r);
    if (model_.valid(r) && now_ - charged_at_[idx] > retention) {
      model_.erase(r);
      ++ledger_.retention_losses;
    }
  }
}

void DynamicTcam::advance(double seconds) {
  NEMTCAM_EXPECT(seconds >= 0.0);
  const double target = now_ + seconds;
  maybe_auto_refresh(target);
  now_ = target;
  expire_rows();
}

void DynamicTcam::write(int row, const TernaryWord& word) {
  maybe_auto_refresh(now_);
  expire_rows();
  model_.write(row, word);
  charged_at_[static_cast<std::size_t>(row)] = now_;
  now_ += energy_model_.write_latency();
  ledger_.busy_time += energy_model_.write_latency();
  ledger_.energy += energy_model_.write_energy();
  ++ledger_.writes;
}

void DynamicTcam::erase(int row) {
  expire_rows();
  model_.erase(row);
}

std::vector<int> DynamicTcam::search(const TernaryWord& key) {
  maybe_auto_refresh(now_);
  expire_rows();
  auto hits = model_.search(key);
  now_ += energy_model_.search_latency();
  ledger_.busy_time += energy_model_.search_latency();
  ledger_.energy += energy_model_.search_energy();
  ++ledger_.searches;
  return hits;
}

std::optional<int> DynamicTcam::search_first(const TernaryWord& key) {
  maybe_auto_refresh(now_);
  expire_rows();
  auto hit = model_.search_first(key);
  now_ += energy_model_.search_latency();
  ledger_.busy_time += energy_model_.search_latency();
  ledger_.energy += energy_model_.search_energy();
  ++ledger_.searches;
  return hit;
}

void DynamicTcam::one_shot_refresh() {
  expire_rows();
  // Every still-valid row is re-armed simultaneously. The next deadline is
  // relative to the charge instant, not to the post-refresh clock —
  // otherwise each period would silently stretch by the refresh latency
  // and rows would expire right at the next deadline.
  const double charge_time = now_;
  for (int r = 0; r < model_.rows(); ++r)
    if (model_.valid(r)) charged_at_[static_cast<std::size_t>(r)] = charge_time;
  now_ += energy_model_.refresh_latency();
  ledger_.busy_time += energy_model_.refresh_latency();
  ledger_.energy += energy_model_.refresh_energy();
  ++ledger_.refreshes;
  if (energy_model_.needs_refresh())
    next_deadline_ = charge_time + energy_model_.retention_time();
}

void DynamicTcam::refresh_row(int row) {
  expire_rows();
  if (!model_.valid(row)) return;
  charged_at_[static_cast<std::size_t>(row)] = now_;
  // Read + write back: approximate as one write latency/energy for the row.
  now_ += energy_model_.write_latency();
  ledger_.busy_time += energy_model_.write_latency();
  ledger_.energy += energy_model_.write_energy();
  ++ledger_.row_refreshes;
}

bool DynamicTcam::live(int row) const {
  if (!model_.valid(row)) return false;
  if (!energy_model_.needs_refresh()) return true;
  return now_ - charged_at_[static_cast<std::size_t>(row)] <=
         energy_model_.retention_time();
}

}  // namespace nemtcam::core
