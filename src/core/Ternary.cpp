#include "core/Ternary.h"

namespace nemtcam::core {

char to_char(Ternary t) {
  switch (t) {
    case Ternary::Zero: return '0';
    case Ternary::One: return '1';
    case Ternary::X: return 'X';
  }
  return '?';
}

Ternary ternary_from_char(char c) {
  switch (c) {
    case '0': return Ternary::Zero;
    case '1': return Ternary::One;
    case 'x':
    case 'X':
    case '*': return Ternary::X;
    default:
      NEMTCAM_EXPECT_MSG(false, std::string("invalid ternary character '") + c + "'");
  }
  return Ternary::X;  // unreachable
}

TernaryWord::TernaryWord(const std::string& text) {
  bits_.reserve(text.size());
  for (char c : text) bits_.push_back(ternary_from_char(c));
}

TernaryWord TernaryWord::from_uint(std::uint64_t value, std::size_t width) {
  NEMTCAM_EXPECT(width <= 64);
  TernaryWord w(width);
  for (std::size_t i = 0; i < width; ++i) {
    const std::uint64_t bit = (value >> (width - 1 - i)) & 1u;
    w.bits_[i] = bit ? Ternary::One : Ternary::Zero;
  }
  return w;
}

bool TernaryWord::matches(const TernaryWord& key) const {
  return mismatch_count(key) == 0;
}

std::size_t TernaryWord::mismatch_count(const TernaryWord& key) const {
  NEMTCAM_EXPECT_MSG(key.size() == size(), "key width must equal word width");
  std::size_t n = 0;
  for (std::size_t i = 0; i < size(); ++i)
    if (!ternary_matches(bits_[i], key[i])) ++n;
  return n;
}

std::size_t TernaryWord::count_x() const {
  std::size_t n = 0;
  for (Ternary t : bits_)
    if (t == Ternary::X) ++n;
  return n;
}

std::string TernaryWord::to_string() const {
  std::string s;
  s.reserve(size());
  for (Ternary t : bits_) s.push_back(to_char(t));
  return s;
}

}  // namespace nemtcam::core
