#include "core/EnergyModel.h"

#include "util/Expect.h"
#include "util/Units.h"

namespace nemtcam::core {

using namespace nemtcam::units;

const char* tech_name(TcamTech t) {
  switch (t) {
    case TcamTech::Sram16T: return "16T SRAM";
    case TcamTech::Nem3T2N: return "3T2N NEM";
    case TcamTech::Rram2T2R: return "2T2R RRAM";
    case TcamTech::Fefet2F: return "2FeFET";
  }
  return "?";
}

OpCosts EnergyModel::reference(TcamTech tech) {
  // Measured by tools/nemtcam_calibrate and bench_fig6/7 at 64×64,
  // Calibration::standard(). Refresh figures apply to the dynamic 3T2N
  // only.
  switch (tech) {
    case TcamTech::Sram16T:
      return {0.221 * ns, 874 * fJ, 1.12 * ns, 904 * fJ, 0, 0, 0, false};
    case TcamTech::Nem3T2N:
      return {2.03 * ns, 312 * fJ, 0.204 * ns, 337 * fJ,
              2.17 * pJ, 0.565 * ns, 26.7 * us, true};
    case TcamTech::Rram2T2R:
      return {11.3 * ns, 74.8 * pJ, 0.325 * ns, 272 * fJ, 0, 0, 0, true};
    case TcamTech::Fefet2F:
      return {9.54 * ns, 7.8 * pJ, 0.746 * ns, 233 * fJ, 0, 0, 0, true};
  }
  NEMTCAM_EXPECT_MSG(false, "unknown TcamTech");
  return {};
}

EnergyModel::EnergyModel(TcamTech tech, int width, int rows)
    : tech_(tech), width_(width), rows_(rows), ref_(reference(tech)) {
  NEMTCAM_EXPECT(width >= 1 && rows >= 1);
}

double EnergyModel::write_latency() const {
  if (ref_.write_latency_device_limited) return ref_.write_latency;
  // SRAM flip time grows mildly with bitline height; keep the reference.
  return ref_.write_latency;
}

double EnergyModel::write_energy() const {
  // Lines per row and bitline height both scale energy.
  const double width_scale = static_cast<double>(width_) / 64.0;
  const double height_scale = static_cast<double>(rows_) / 64.0;
  return ref_.write_energy * width_scale * height_scale;
}

double EnergyModel::search_latency() const {
  // ML capacitance (and so the discharge time) scales with row width.
  return ref_.search_latency * static_cast<double>(width_) / 64.0;
}

double EnergyModel::search_energy() const {
  const double width_scale = static_cast<double>(width_) / 64.0;
  const double height_scale = static_cast<double>(rows_) / 64.0;
  return ref_.search_energy * width_scale * height_scale;
}

double EnergyModel::refresh_energy() const {
  const double cells_scale =
      static_cast<double>(width_) * rows_ / (64.0 * 64.0);
  return ref_.refresh_energy * cells_scale;
}

double EnergyModel::refresh_latency() const { return ref_.refresh_latency; }

double EnergyModel::retention_time() const { return ref_.retention_time; }

double EnergyModel::refresh_power() const {
  if (!needs_refresh()) return 0.0;
  return refresh_energy() / retention_time();
}

}  // namespace nemtcam::core
