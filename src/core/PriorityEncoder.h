// Matchline priority encoder — the block that turns the per-row match
// vector of a CAM array into a single address (plus multi-match survey
// helpers used by the classifier engine).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace nemtcam::core {

class PriorityEncoder {
 public:
  // Lowest index wins (row 0 is the highest priority, as in routing TCAMs
  // where longer prefixes are placed first).
  static std::optional<int> first_match(const std::vector<bool>& matches);

  // All matches, ascending priority order.
  static std::vector<int> all_matches(const std::vector<bool>& matches);

  // The k highest-priority matches (fewer if there aren't k).
  static std::vector<int> top_k(const std::vector<bool>& matches, int k);

  // Builds a match bitvector of the given size from hit indices.
  static std::vector<bool> from_indices(const std::vector<int>& hits, int rows);
};

}  // namespace nemtcam::core
