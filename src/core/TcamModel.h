// Behavioral (functional) TCAM array model.
//
// This is the fast golden model the circuit-level rows are checked against,
// and the substrate the architecture layer (routers, classifiers, caches)
// builds on. Semantics follow Fig. 1: every valid row is compared against
// the key in parallel; a row matches when no bit conflicts (stored X and
// key X are wildcards).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/Ternary.h"

namespace nemtcam::core {

class TcamModel {
 public:
  TcamModel(int rows, int width);

  int rows() const noexcept { return rows_; }
  int width() const noexcept { return width_; }

  // Writes a word into a row and marks it valid.
  void write(int row, const TernaryWord& word);
  // Invalidates a row (it matches nothing).
  void erase(int row);
  bool valid(int row) const;
  const TernaryWord& read(int row) const;

  // All matching row indices, ascending.
  std::vector<int> search(const TernaryWord& key) const;
  // Highest-priority (lowest index) match, or nullopt.
  std::optional<int> search_first(const TernaryWord& key) const;
  // Number of matching rows.
  int match_count(const TernaryWord& key) const;

  // First invalid row, or nullopt when full.
  std::optional<int> find_free_row() const;
  int valid_count() const;

 private:
  void check_row(int row) const;

  int rows_;
  int width_;
  std::vector<TernaryWord> words_;
  std::vector<bool> valid_;
};

}  // namespace nemtcam::core
