// Ternary logic values and words — the data model of a TCAM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/Expect.h"

namespace nemtcam::core {

// A stored or searched ternary symbol. X is "don't care": a stored X
// matches any key bit; a key X matches any stored bit.
enum class Ternary : std::uint8_t { Zero = 0, One = 1, X = 2 };

// True when a stored symbol and a key symbol do not conflict.
constexpr bool ternary_matches(Ternary stored, Ternary key) {
  if (stored == Ternary::X || key == Ternary::X) return true;
  return stored == key;
}

char to_char(Ternary t);
Ternary ternary_from_char(char c);

// Fixed-width ternary word.
class TernaryWord {
 public:
  TernaryWord() = default;
  explicit TernaryWord(std::size_t width, Ternary fill = Ternary::Zero)
      : bits_(width, fill) {}
  // Parses e.g. "10X1"; bit 0 is the leftmost character.
  explicit TernaryWord(const std::string& text);

  static TernaryWord all_x(std::size_t width) {
    return TernaryWord(width, Ternary::X);
  }
  // From binary value, MSB first, no X bits.
  static TernaryWord from_uint(std::uint64_t value, std::size_t width);

  std::size_t size() const noexcept { return bits_.size(); }
  bool empty() const noexcept { return bits_.empty(); }

  Ternary& operator[](std::size_t i) { return bits_[i]; }
  Ternary operator[](std::size_t i) const { return bits_[i]; }

  bool operator==(const TernaryWord& other) const = default;

  // Match semantics of one TCAM row against a search key.
  bool matches(const TernaryWord& key) const;
  // Number of conflicting bit positions (0 == match).
  std::size_t mismatch_count(const TernaryWord& key) const;
  std::size_t count_x() const;

  std::string to_string() const;

  auto begin() const { return bits_.begin(); }
  auto end() const { return bits_.end(); }

 private:
  std::vector<Ternary> bits_;
};

}  // namespace nemtcam::core
