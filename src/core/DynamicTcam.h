// Dynamic TCAM with retention and one-shot refresh, on a virtual clock.
//
// Wraps the behavioral TcamModel with the 3T2N's dynamic-memory semantics:
// stored charge decays, and a row whose last charge event (write or
// refresh) is older than the retention time loses its data (reads as
// invalid, matches nothing). One-shot refresh re-arms every valid row in a
// single operation (Fig. 4); a row-by-row refresh policy is also provided
// as the conventional baseline. An operation/energy ledger accumulates the
// EnergyModel costs so architectural studies can report totals.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/EnergyModel.h"
#include "core/TcamModel.h"

namespace nemtcam::core {

struct TcamLedger {
  std::uint64_t writes = 0;
  std::uint64_t searches = 0;
  std::uint64_t refreshes = 0;        // one-shot ops
  std::uint64_t row_refreshes = 0;    // row-by-row ops
  std::uint64_t retention_losses = 0; // rows that decayed before refresh
  double energy = 0.0;                // J
  double busy_time = 0.0;             // s the array was occupied
};

class DynamicTcam {
 public:
  // auto_refresh: when true, a one-shot refresh is inserted automatically
  // whenever the retention deadline would otherwise pass (the hardware
  // behaviour); when false, data genuinely decays (for loss studies).
  DynamicTcam(TcamTech tech, int rows, int width, bool auto_refresh = true);

  int rows() const noexcept { return model_.rows(); }
  int width() const noexcept { return model_.width(); }
  TcamTech tech() const noexcept { return energy_model_.tech(); }
  const EnergyModel& costs() const noexcept { return energy_model_; }

  double now() const noexcept { return now_; }
  // Advances the virtual clock (e.g. idle time between requests).
  void advance(double seconds);

  // Writes a word into a row; takes write latency on the clock.
  void write(int row, const TernaryWord& word);
  void erase(int row);

  // Searches; rows whose charge decayed do not match.
  std::vector<int> search(const TernaryWord& key);
  std::optional<int> search_first(const TernaryWord& key);

  // Explicit one-shot refresh of the whole array (all valid rows re-armed
  // in one operation).
  void one_shot_refresh();
  // Conventional refresh of a single row (read + write back).
  void refresh_row(int row);

  // True when the row currently holds live (non-decayed) data.
  bool live(int row) const;
  const TernaryWord& read(int row) const { return model_.read(row); }
  bool valid(int row) const { return model_.valid(row); }

  const TcamLedger& ledger() const noexcept { return ledger_; }
  const TcamModel& model() const noexcept { return model_; }

 private:
  void maybe_auto_refresh(double target_time);
  void expire_rows();

  TcamModel model_;
  EnergyModel energy_model_;
  bool auto_refresh_;
  double now_ = 0.0;
  double next_deadline_ = 0.0;  // next time a refresh must have happened
  std::vector<double> charged_at_;
  TcamLedger ledger_;
};

}  // namespace nemtcam::core
