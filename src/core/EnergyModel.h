// Per-operation latency/energy model for each TCAM technology.
//
// The default constants are the circuit-level results of this repository's
// benches (64×64 array, Calibration::standard()); see EXPERIMENTS.md for
// the paper-vs-measured comparison. Energies scale linearly with row width
// (lines and cells per row) relative to the 64-wide reference; latencies
// scale with width for the ML-discharge-limited searches and are
// device-limited (width-independent) for NVM/NEM writes.
#pragma once

#include <string>

namespace nemtcam::core {

enum class TcamTech { Sram16T, Nem3T2N, Rram2T2R, Fefet2F };

const char* tech_name(TcamTech t);

struct OpCosts {
  double write_latency;   // s, per row write
  double write_energy;    // J, per row write (64-wide reference)
  double search_latency;  // s, worst-case 1-bit mismatch (64-wide reference)
  double search_energy;   // J, per search (64-wide reference)
  // Dynamic-technology refresh (zero for the nonvolatile/static ones).
  double refresh_energy;  // J per whole-array one-shot refresh
  double refresh_latency; // s per refresh op
  double retention_time;  // s; 0 = no refresh needed
  bool write_latency_device_limited;  // true: write time ≈ device switching
};

class EnergyModel {
 public:
  // Reference costs measured by the circuit benches at width 64, 64 rows.
  static OpCosts reference(TcamTech tech);

  EnergyModel(TcamTech tech, int width, int rows);

  TcamTech tech() const noexcept { return tech_; }

  double write_latency() const;
  double write_energy() const;
  double search_latency() const;
  double search_energy() const;
  double search_edp() const { return search_latency() * search_energy(); }
  double refresh_energy() const;
  double refresh_latency() const;
  double retention_time() const;
  bool needs_refresh() const { return retention_time() > 0.0; }
  // Average background power spent on refresh (J/op ÷ retention).
  double refresh_power() const;

 private:
  TcamTech tech_;
  int width_;
  int rows_;
  OpCosts ref_;
};

}  // namespace nemtcam::core
