#include "core/TcamModel.h"

namespace nemtcam::core {

TcamModel::TcamModel(int rows, int width)
    : rows_(rows), width_(width),
      words_(static_cast<std::size_t>(rows),
             TernaryWord(static_cast<std::size_t>(width), Ternary::X)),
      valid_(static_cast<std::size_t>(rows), false) {
  NEMTCAM_EXPECT(rows >= 1 && width >= 1);
}

void TcamModel::check_row(int row) const {
  NEMTCAM_EXPECT_MSG(row >= 0 && row < rows_, "row index out of range");
}

void TcamModel::write(int row, const TernaryWord& word) {
  check_row(row);
  NEMTCAM_EXPECT(static_cast<int>(word.size()) == width_);
  words_[static_cast<std::size_t>(row)] = word;
  valid_[static_cast<std::size_t>(row)] = true;
}

void TcamModel::erase(int row) {
  check_row(row);
  valid_[static_cast<std::size_t>(row)] = false;
}

bool TcamModel::valid(int row) const {
  check_row(row);
  return valid_[static_cast<std::size_t>(row)];
}

const TernaryWord& TcamModel::read(int row) const {
  check_row(row);
  return words_[static_cast<std::size_t>(row)];
}

std::vector<int> TcamModel::search(const TernaryWord& key) const {
  NEMTCAM_EXPECT(static_cast<int>(key.size()) == width_);
  std::vector<int> hits;
  for (int r = 0; r < rows_; ++r) {
    if (valid_[static_cast<std::size_t>(r)] &&
        words_[static_cast<std::size_t>(r)].matches(key))
      hits.push_back(r);
  }
  return hits;
}

std::optional<int> TcamModel::search_first(const TernaryWord& key) const {
  NEMTCAM_EXPECT(static_cast<int>(key.size()) == width_);
  for (int r = 0; r < rows_; ++r) {
    if (valid_[static_cast<std::size_t>(r)] &&
        words_[static_cast<std::size_t>(r)].matches(key))
      return r;
  }
  return std::nullopt;
}

int TcamModel::match_count(const TernaryWord& key) const {
  return static_cast<int>(search(key).size());
}

std::optional<int> TcamModel::find_free_row() const {
  for (int r = 0; r < rows_; ++r)
    if (!valid_[static_cast<std::size_t>(r)]) return r;
  return std::nullopt;
}

int TcamModel::valid_count() const {
  int n = 0;
  for (bool v : valid_)
    if (v) ++n;
  return n;
}

}  // namespace nemtcam::core
