#include "core/PriorityEncoder.h"

#include "util/Expect.h"

namespace nemtcam::core {

std::optional<int> PriorityEncoder::first_match(const std::vector<bool>& matches) {
  for (std::size_t i = 0; i < matches.size(); ++i)
    if (matches[i]) return static_cast<int>(i);
  return std::nullopt;
}

std::vector<int> PriorityEncoder::all_matches(const std::vector<bool>& matches) {
  std::vector<int> hits;
  for (std::size_t i = 0; i < matches.size(); ++i)
    if (matches[i]) hits.push_back(static_cast<int>(i));
  return hits;
}

std::vector<int> PriorityEncoder::top_k(const std::vector<bool>& matches, int k) {
  NEMTCAM_EXPECT(k >= 0);
  std::vector<int> hits;
  for (std::size_t i = 0; i < matches.size() && static_cast<int>(hits.size()) < k;
       ++i)
    if (matches[i]) hits.push_back(static_cast<int>(i));
  return hits;
}

std::vector<bool> PriorityEncoder::from_indices(const std::vector<int>& hits,
                                                int rows) {
  NEMTCAM_EXPECT(rows >= 0);
  std::vector<bool> v(static_cast<std::size_t>(rows), false);
  for (int h : hits) {
    NEMTCAM_EXPECT(h >= 0 && h < rows);
    v[static_cast<std::size_t>(h)] = true;
  }
  return v;
}

}  // namespace nemtcam::core
