#include "spice/AssemblyCache.h"

#include <algorithm>
#include <utility>

#include "linalg/BbdSolver.h"
#include "util/Expect.h"
#include "util/Log.h"

namespace nemtcam::spice {

AssemblyCache::AssemblyCache() = default;
AssemblyCache::~AssemblyCache() = default;
AssemblyCache::AssemblyCache(AssemblyCache&&) noexcept = default;
AssemblyCache& AssemblyCache::operator=(AssemblyCache&&) noexcept = default;

void AssemblyCache::begin(std::size_t n) {
  ++stats_.assemblies;
  if (has_pattern() && n == n_) {
    fast_ = true;
    building_ = false;
    cursor_ = 0;
    std::fill(vals_.begin(), vals_.end(), 0.0);
    return;
  }
  invalidate();
  n_ = n;
  fast_ = false;
  building_ = true;
  seq_key_.clear();
  trip_val_.clear();
  ++stats_.pattern_builds;
}

bool AssemblyCache::finish() {
  if (fast_) {
    fast_ = false;
    if (cursor_ == seq_key_.size()) return true;
    invalidate();  // short pass: fewer stamps than recorded
    return false;
  }
  if (!building_) {
    // A fast pass that deviated mid-stream: drop the stale pattern so the
    // caller's retry runs in build mode.
    invalidate();
    return false;
  }
  building_ = false;

  // Finalize: distinct (r, c) positions -> CSR, one slot per position.
  std::vector<std::size_t> order(seq_key_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return seq_key_[a] < seq_key_[b];
  });

  row_ptr_.assign(n_ + 1, 0);
  cols_.clear();
  vals_.clear();
  seq_slot_.assign(seq_key_.size(), 0);
  std::size_t prev_key = 0;
  bool have_prev = false;
  for (const std::size_t i : order) {
    const std::size_t key = seq_key_[i];
    if (!have_prev || key != prev_key) {
      cols_.push_back(key % n_);
      vals_.push_back(0.0);
      ++row_ptr_[key / n_ + 1];
      prev_key = key;
      have_prev = true;
    }
    seq_slot_[i] = vals_.size() - 1;
    vals_.back() += trip_val_[i];
  }
  for (std::size_t r = 0; r < n_; ++r) row_ptr_[r + 1] += row_ptr_[r];
  trip_val_.clear();
  trip_val_.shrink_to_fit();
  return true;
}

void AssemblyCache::invalidate() {
  fast_ = false;
  building_ = false;
  cursor_ = 0;
  seq_key_.clear();
  seq_slot_.clear();
  trip_val_.clear();
  row_ptr_.clear();
  cols_.clear();
  vals_.clear();
  lu_analyzed_ = false;
  bbd_ready_ = false;  // the partition itself survives; see set_partition
}

void AssemblyCache::set_partition(
    std::shared_ptr<const linalg::BbdPartition> partition,
    util::ThreadPool* pool) {
  partition_ = std::move(partition);
  bbd_pool_ = partition_ ? pool : nullptr;
  bbd_ready_ = false;
  if (!partition_) bbd_.reset();
}

linalg::SparseLu& AssemblyCache::factorize() {
  NEMTCAM_EXPECT_MSG(has_pattern(), "AssemblyCache::factorize before finish");
  if (lu_analyzed_ && lu_.refactorize(view())) {
    ++stats_.refactorizations;
    return lu_;
  }
  lu_analyzed_ = false;
  lu_.factorize(view());  // throws SingularMatrixError on failure
  lu_analyzed_ = true;
  ++stats_.full_factorizations;
  return lu_;
}

void AssemblyCache::factorize_and_solve(std::vector<double>& rhs) {
  if (partition_) {
    if (!bbd_) bbd_ = std::make_unique<linalg::BbdSolver>();
    if (!bbd_->has_partition()) bbd_->set_partition(partition_, bbd_pool_);
    const linalg::CsrView a = view();
    bool ok = false;
    if (bbd_ready_ && bbd_->refactorize(a)) {
      ok = true;
      ++stats_.bbd_refactorizations;
    }
    if (!ok) {
      bbd_ready_ = false;
      // May throw SingularMatrixError — bbd_ready_ stays false so the
      // recovery ladder's retry re-splits from scratch.
      if (bbd_->factorize(a)) {
        ok = true;
        bbd_ready_ = true;
        ++stats_.bbd_factorizations;
      }
    }
    if (ok) {
      bbd_->solve_inplace(rhs);
      return;
    }
    // The matrix does not fit the partition (an entry couples two blocks
    // or the size is stale). Warn once and go monolithic for good.
    ++stats_.bbd_fallbacks;
    log::warn("AssemblyCache: matrix does not fit the BBD partition; "
              "falling back to monolithic SparseLu");
    clear_partition();
  }
  linalg::SparseLu& lu = factorize();
  lu.solve_inplace(rhs);
}

}  // namespace nemtcam::spice
