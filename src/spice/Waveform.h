// Time-domain source waveforms: DC, PULSE, PWL, SIN — the SPICE classics.
//
// A Waveform is a pure function of time plus a breakpoint list; the
// transient engine lands a step exactly on every breakpoint so that sharp
// source edges are never integrated across.
#pragma once

#include <memory>
#include <vector>

namespace nemtcam::spice {

class Waveform {
 public:
  virtual ~Waveform() = default;
  virtual double value(double t) const = 0;
  // Times where the waveform has a corner/discontinuity within [0, t_end).
  virtual std::vector<double> breakpoints(double t_end) const { (void)t_end; return {}; }
};

// Constant level.
class DcWave final : public Waveform {
 public:
  explicit DcWave(double level) : level_(level) {}
  double value(double) const override { return level_; }

 private:
  double level_;
};

// SPICE PULSE(v1 v2 delay rise fall width period). period <= 0 means
// a single pulse.
class PulseWave final : public Waveform {
 public:
  PulseWave(double v1, double v2, double delay, double rise, double fall,
            double width, double period = 0.0);
  double value(double t) const override;
  std::vector<double> breakpoints(double t_end) const override;

 private:
  double v1_, v2_, delay_, rise_, fall_, width_, period_;
};

// Piecewise-linear through (t, v) points; clamps at the ends.
class PwlWave final : public Waveform {
 public:
  explicit PwlWave(std::vector<std::pair<double, double>> points);
  double value(double t) const override;
  std::vector<double> breakpoints(double t_end) const override;

 private:
  std::vector<std::pair<double, double>> points_;
};

// offset + amplitude * sin(2*pi*freq*(t - delay)) for t >= delay.
class SinWave final : public Waveform {
 public:
  SinWave(double offset, double amplitude, double freq, double delay = 0.0);
  double value(double t) const override;

 private:
  double offset_, amplitude_, freq_, delay_;
};

}  // namespace nemtcam::spice
