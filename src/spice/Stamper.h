// MNA assembly helper.
//
// Unknown layout: node voltages for ids 1..N-1 occupy indices 0..N-2;
// branch currents follow. The assembled system is the Newton update
// equation J·v_new = rhs where rhs already folds in the nonlinear
// equivalent currents (rhs = J·v_iter − f(v_iter) contributions).
//
// Sign conventions:
//  - conductance(a, b, g): element between a and b.
//  - current(a, b, i): current i flows from a to b *through the device*
//    (it leaves node a and enters node b).
//  - vccs(a, b, c, d, gm): current gm·(v_c − v_d) flows from a to b.
//  - voltage_source(p, m, br, V): enforces v_p − v_m = V; the branch
//    unknown is the current flowing from p to m through the source
//    (i.e. into the + terminal).
#pragma once

#include "linalg/SparseMatrix.h"
#include "spice/AssemblyCache.h"
#include "spice/Types.h"
#include "util/Expect.h"

#include <vector>

namespace nemtcam::spice {

class Stamper {
 public:
  // Legacy backend: triplet accumulation into a SparseMatrix.
  Stamper(linalg::SparseMatrix& a, std::vector<double>& rhs, int n_node_unknowns)
      : a_(&a), rhs_(rhs), n_node_unknowns_(n_node_unknowns) {}

  // Fast-path backend: fixed-pattern assembly (see AssemblyCache).
  Stamper(AssemblyCache& cache, std::vector<double>& rhs, int n_node_unknowns)
      : cache_(&cache), rhs_(rhs), n_node_unknowns_(n_node_unknowns) {}

  void conductance(NodeId a, NodeId b, double g) {
    const int ia = idx(a);
    const int ib = idx(b);
    if (ia >= 0) madd(u(ia), u(ia), g);
    if (ib >= 0) madd(u(ib), u(ib), g);
    if (ia >= 0 && ib >= 0) {
      madd(u(ia), u(ib), -g);
      madd(u(ib), u(ia), -g);
    }
  }

  void current(NodeId a, NodeId b, double i) {
    const int ia = idx(a);
    const int ib = idx(b);
    if (ia >= 0) rhs_[u(ia)] -= i;
    if (ib >= 0) rhs_[u(ib)] += i;
  }

  void vccs(NodeId a, NodeId b, NodeId c, NodeId d, double gm) {
    const int ia = idx(a);
    const int ib = idx(b);
    const int ic = idx(c);
    const int id = idx(d);
    if (ia >= 0 && ic >= 0) madd(u(ia), u(ic), gm);
    if (ia >= 0 && id >= 0) madd(u(ia), u(id), -gm);
    if (ib >= 0 && ic >= 0) madd(u(ib), u(ic), -gm);
    if (ib >= 0 && id >= 0) madd(u(ib), u(id), gm);
  }

  // Convenience for a two-terminal nonlinear element: current i(v_ab)
  // flowing a→b, with derivative didv, both evaluated at iterate v_ab.
  void nonlinear_current(NodeId a, NodeId b, double i_at_iter, double didv,
                         double v_ab_iter) {
    conductance(a, b, didv);
    current(a, b, i_at_iter - didv * v_ab_iter);
  }

  void voltage_source(NodeId plus, NodeId minus, BranchId br, double volts) {
    NEMTCAM_EXPECT(br >= 0);
    const int ip = idx(plus);
    const int im = idx(minus);
    const std::size_t rb = static_cast<std::size_t>(n_node_unknowns_ + br);
    if (ip >= 0) {
      madd(u(ip), rb, 1.0);
      madd(rb, u(ip), 1.0);
    }
    if (im >= 0) {
      madd(u(im), rb, -1.0);
      madd(rb, u(im), -1.0);
    }
    rhs_[rb] += volts;
  }

  // Adds series resistance to a previously stamped voltage-source branch:
  // the branch row becomes v_p − v_m − r·i = V.
  void branch_series_resistance(BranchId br, double r) {
    NEMTCAM_EXPECT(br >= 0);
    const std::size_t rb = static_cast<std::size_t>(n_node_unknowns_ + br);
    madd(rb, rb, -r);
  }

  // Current gain·i(src_branch) flowing a→b (CCCS coupling).
  void branch_controlled_current(NodeId a, NodeId b, BranchId src_branch,
                                 double gain) {
    NEMTCAM_EXPECT(src_branch >= 0);
    const std::size_t cb = static_cast<std::size_t>(n_node_unknowns_ + src_branch);
    const int ia = idx(a);
    const int ib = idx(b);
    if (ia >= 0) madd(u(ia), cb, gain);
    if (ib >= 0) madd(u(ib), cb, -gain);
  }

  // Adds coeff·v(n) into a branch row (VCVS control term).
  void branch_row_node(BranchId row_branch, NodeId n, double coeff) {
    NEMTCAM_EXPECT(row_branch >= 0);
    const int in = idx(n);
    if (in < 0) return;
    const std::size_t rb = static_cast<std::size_t>(n_node_unknowns_ + row_branch);
    madd(rb, u(in), coeff);
  }

  // Adds coeff·i(ctrl_branch) into a branch row (CCVS control term).
  void branch_row_branch(BranchId row_branch, BranchId ctrl_branch,
                         double coeff) {
    NEMTCAM_EXPECT(row_branch >= 0 && ctrl_branch >= 0);
    const std::size_t rb = static_cast<std::size_t>(n_node_unknowns_ + row_branch);
    const std::size_t cb = static_cast<std::size_t>(n_node_unknowns_ + ctrl_branch);
    madd(rb, cb, coeff);
  }

  int node_unknowns() const noexcept { return n_node_unknowns_; }

 private:
  static int idx(NodeId n) { return n - 1; }  // -1 for ground
  static std::size_t u(int i) { return static_cast<std::size_t>(i); }

  void madd(std::size_t r, std::size_t c, double v) {
    if (cache_ != nullptr) {
      cache_->add(r, c, v);
    } else {
      a_->add(r, c, v);
    }
  }

  linalg::SparseMatrix* a_ = nullptr;
  AssemblyCache* cache_ = nullptr;
  std::vector<double>& rhs_;
  int n_node_unknowns_;
};

}  // namespace nemtcam::spice
