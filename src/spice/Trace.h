// Recorded scalar signal with the .measure-style post-processing the
// benches use: crossing times, interpolation, integrals.
#pragma once

#include <optional>
#include <vector>

namespace nemtcam::spice {

class Trace {
 public:
  Trace() = default;
  Trace(std::vector<double> times, std::vector<double> values);

  std::size_t size() const noexcept { return times_.size(); }
  bool empty() const noexcept { return times_.empty(); }

  const std::vector<double>& times() const noexcept { return times_; }
  const std::vector<double>& values() const noexcept { return values_; }

  double t_begin() const;
  double t_end() const;
  double front() const;
  double back() const;

  // Linear interpolation; clamps outside the recorded span.
  double at(double t) const;

  // First time the signal crosses `level` in the given direction at or
  // after `t_from`; nullopt if it never does. Linear interpolation between
  // samples gives sub-step resolution.
  std::optional<double> cross_time(double level, bool rising,
                                   double t_from = 0.0) const;

  // Trapezoidal ∫ v dt over [t_from, t_to] (defaults to the full span).
  double integral(double t_from, double t_to) const;
  double integral() const;

  double min_value() const;
  double max_value() const;

  // Last time the signal is outside the band target ± tol (i.e. the time
  // it finally settles). Returns t_begin() if it is always inside, and
  // nullopt if it never settles (still outside at the last sample).
  std::optional<double> settle_time(double target, double tol) const;

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace nemtcam::spice
