// Device interface for the MNA simulator.
//
// Each device stamps its Newton linearization into the system J·v = rhs.
// Devices carry their own internal state (mechanical position, memristor
// filament, polarization, capacitor charge history); state advances only in
// commit(), which the transient engine calls exactly once per *accepted*
// step, so rejected/retried steps never corrupt state.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "spice/Types.h"
#include "spice/Waveform.h"
#include "util/Expect.h"

namespace nemtcam::spice {

// Time-integration scheme for companion models. Backward Euler is the
// robust default (L-stable: right for the stiff switch/relay transients
// here); trapezoidal is second-order accurate and preserves oscillation
// amplitude, supported by the reactive elements that carry per-step
// current state (Capacitor, Inductor).
enum class Integrator { BackwardEuler, Trapezoidal };

// Evaluation context handed to devices during stamping and commit.
class StampContext {
 public:
  StampContext(double t, double dt, bool is_dc, int n_node_unknowns,
               const std::vector<double>* v_iter,
               const std::vector<double>* v_prev,
               Integrator integrator = Integrator::BackwardEuler)
      : t_(t), dt_(dt), is_dc_(is_dc), n_node_unknowns_(n_node_unknowns),
        v_iter_(v_iter), v_prev_(v_prev), integrator_(integrator) {}

  Integrator integrator() const noexcept { return integrator_; }

  // Multiplier applied by the independent sources to their drive value.
  // 1.0 except during source-stepping recovery (see spice/Recovery.h),
  // where the DC solve is continued from a relaxed circuit by ramping all
  // source values from a fraction of their level up to full drive.
  double source_scale() const noexcept { return source_scale_; }
  void set_source_scale(double scale) noexcept { source_scale_ = scale; }

  // Time at the end of the step being solved.
  double t() const noexcept { return t_; }
  // Step size; 0 for DC analysis.
  double dt() const noexcept { return dt_; }
  bool dc() const noexcept { return is_dc_; }

  // Voltage of a node at the current Newton iterate.
  double v(NodeId n) const {
    if (n == kGround) return 0.0;
    return (*v_iter_)[static_cast<std::size_t>(n - 1)];
  }
  // Voltage at the last accepted time point (start of this step).
  double v_prev(NodeId n) const {
    if (n == kGround) return 0.0;
    return (*v_prev_)[static_cast<std::size_t>(n - 1)];
  }
  // Branch current unknown at the current iterate.
  double branch_current(BranchId b) const {
    NEMTCAM_EXPECT(b >= 0);
    return (*v_iter_)[static_cast<std::size_t>(n_node_unknowns_ + b)];
  }

 private:
  double t_;
  double dt_;
  bool is_dc_;
  int n_node_unknowns_;
  const std::vector<double>* v_iter_;
  const std::vector<double>* v_prev_;
  Integrator integrator_;
  double source_scale_ = 1.0;
};

class Stamper;

// How a terminal pair couples at DC, for static (pre-solve) analysis.
enum class DcCoupling {
  Conductive,   // DC current path: resistor, channel, contact, V-defined branch
  Capacitive,   // charge coupling only — open at DC (capacitor, MOS gate)
  Open,         // no DC coupling (ideal current-source output)
};

// Static self-description consumed by the ERC/lint subsystem (nemtcam::erc)
// and the structural-singularity reporter: the device's terminals with
// their schematic roles, and how each terminal pair couples at DC. This is
// declarative topology, independent of the stamp values — a relay reports
// its drain–source contact as Conductive whether open or closed, because
// the open contact still stamps its g_off leakage slot.
//
// Beyond the structural kind, every terminal and coupling carries an
// optional *small-signal summary* — effective on-resistance, off-state
// leakage, capacitance, and gating — consumed by the static timing/energy
// engine (nemtcam::sta). The summary is a worst-case macro-model, not the
// Newton stamp: a MOSFET reports one switch resistance at full-rail gate
// drive, not its bias-dependent I–V. All summary members are defaulted so
// aggregate-initialized topologies from devices that predate the STA
// engine stay valid (r_on < 0 marks "no resistance model": the STA engine
// skips such edges for path enumeration but keeps them for connectivity).
struct DeviceTopology {
  // Sentinel for Terminal::v_hold: the terminal does not hold state.
  static constexpr double kNoHold = -std::numeric_limits<double>::infinity();

  struct Terminal {
    const char* label;  // schematic role, e.g. "d", "g", "plus"
    NodeId node;
    // --- small-signal summary (nemtcam::sta) ---
    // Parasitic capacitance from this terminal to ground (F) that is not
    // reported as a pair coupling: MOS junction caps, electrode plates.
    double c_ground = 0.0;
    // State-holding terminal: the device loses its committed state if this
    // terminal's level decays below v_hold — a closed NEM relay's floating
    // gate must stay at |V_GB| ≥ V_PO or the beam releases. kNoHold (the
    // default) marks a terminal with no retention requirement. This is the
    // hook behind the sta.refresh-window rule: the paper's one-shot-refresh
    // hazard reduces to "leakage must not cross v_hold within the refresh
    // period" for every terminal that sets it.
    double v_hold = kNoHold;
    bool holds_state() const noexcept { return v_hold != kNoHold; }
  };
  struct Coupling {
    int a, b;  // indices into `terminals`
    DcCoupling kind;
    // --- small-signal summary (nemtcam::sta) ---
    // Effective series resistance of the pair when conducting (Ω). For a
    // gated channel this is the switch resistance at full-rail drive
    // (the library's nominal 1 V rail; calibration factors absorb other
    // operating points). Negative = no resistance model: the edge exists
    // structurally but the STA engine must not put it on a timing path
    // (controlled sources, diodes).
    double r_on = -1.0;
    // Worst-case leakage conductance when NOT conducting (S): open relay
    // contact g_off, MOS subthreshold leak at V_GS = 0, switch 1/r_off.
    // Feeds matched-matchline droop and storage-node retention bounds.
    double g_off = 0.0;
    // Capacitance across the pair (F): explicit capacitor value, MOS gate
    // overlap, relay actuation gap. The STA engine lumps it to ground at
    // both ends (quiet-neighbor worst case).
    double c = 0.0;
    // Channel gating. ctrl < 0: conduction is static over an STA horizon
    // and `on` reports the committed state (resistor: always true; relay
    // contact: mechanical position — actuation is orders of magnitude
    // slower than an ML transient). ctrl ≥ 0: index into `terminals` of
    // the controlling gate; the edge conducts when the gate level clears
    // the channel by v_on (active_low: a PMOS conducts when the gate sits
    // v_on *below* the high channel side).
    int ctrl = -1;
    double v_on = 0.0;
    bool active_low = false;
    bool on = true;
    // Gate drive at which r_on was summarized (V). When > v_on, the STA
    // engine derates the channel for partial gate drive by the ratio of
    // saturation currents at the two overdrives — a divider-driven gate at
    // 0.6 V conducts far less than the rail-referenced chord. 0 = no
    // derating model.
    double v_gs_ref = 0.0;
    // Subthreshold slope voltage n·v_T (V) for the derate interpolation:
    // with it the near-threshold moderate-inversion tail is EKV-exact;
    // 0 falls back to hard square-law overdrive scaling.
    double v_slope = 0.0;
  };
  std::vector<Terminal> terminals;
  std::vector<Coupling> couplings;
  bool is_source = false;  // independent source: drives the circuit
  // Independent-source drive summary: the drive level at t = 0 and at the
  // settle horizon (after all waveform edges), plus the driver's series
  // resistance — the STA engine's pin model. Meaningful only for voltage-
  // defining sources (source_is_voltage).
  bool source_is_voltage = false;
  double source_v_init = 0.0;   // drive level at t = 0 (V)
  double source_v_final = 0.0;  // settled drive level as t → ∞ (V)
  double source_r_series = 0.0; // driver series resistance (Ω)
};

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const noexcept { return name_; }

  // Number of extra MNA branch-current unknowns this device needs.
  virtual int branch_count() const { return 0; }

  // Terminal/coupling self-description for static analysis. The default
  // (no terminals) keeps ad-hoc test devices valid; every shipped device
  // overrides it, and the ERC connectivity rules see only what is
  // reported here.
  virtual DeviceTopology topology() const { return {}; }

  // Stamps the Newton linearization at the context's iterate.
  virtual void stamp(Stamper& s, const StampContext& ctx) = 0;

  // Advances internal state after a step is accepted.
  virtual void commit(const StampContext& ctx) { (void)ctx; }

  // Largest step the device can tolerate from its current state (e.g. a
  // relay in mechanical flight bounds dt to resolve the traversal).
  virtual double max_dt_hint() const {
    return std::numeric_limits<double>::infinity();
  }

  // Signed distance to the device's nearest discrete state change: positive
  // before the event, zero/negative once the candidate step would commit it,
  // +inf when nothing is armed. Under LTE step control the transient engine
  // evaluates this at the step start (dt = 0, iterate = v_prev) and at the
  // candidate solution; a positive→non-positive change brackets the event
  // and the step is bisected to land just past the crossing, so relay
  // pull-in/pull-out and memory-cell threshold corners are resolved exactly
  // instead of being discovered by Newton thrashing over a long step.
  // Implementations must tolerate dt == 0 and must pick which surface they
  // report from *committed* state and v_prev only, never from the iterate —
  // otherwise the start and end of a step can disagree about which surface
  // is armed and the sign test is meaningless.
  virtual double event_function(const StampContext& ctx) const {
    (void)ctx;
    return std::numeric_limits<double>::infinity();
  }

  // Clears per-run dynamic scratch — companion-model current history,
  // event telemetry (t_closed/t_set/... markers), in-flight motion flags —
  // so an elaborated circuit can be replayed for a fresh transaction
  // starting at t = 0. Primary state (stored data, drive waveforms, device
  // parameters, fault mutations) is untouched; the transaction binder
  // re-seeds stored state explicitly. Devices without scratch need not
  // override.
  virtual void reset_state() {}

  // Replaces the device's drive waveform in place; returns false for
  // devices without one (only the independent sources accept it). This is
  // deliberately NOT a topology change: the stamp pattern and symbolic LU
  // recorded by the circuit's AssemblyCache stay valid, which is what lets
  // a cached template circuit be re-driven per transaction instead of
  // rebuilt (see hier/Elaborate.h).
  virtual bool rebind_wave(std::unique_ptr<Waveform> wave) {
    (void)wave;
    return false;
  }

  // Instantaneous dissipated power at the given solution, for breakdowns.
  virtual double power(const StampContext& ctx) const { (void)ctx; return 0.0; }

  // Instantaneous power *delivered to the circuit* by this device (nonzero
  // for sources only). The transient engine integrates this per device to
  // give the energy ledger used by the write/search energy benches.
  virtual double delivered_power(const StampContext& ctx) const {
    (void)ctx;
    return 0.0;
  }

  // Times within (0, t_end) where the device's drive has a corner; the
  // transient engine lands steps exactly on these (sources override).
  virtual std::vector<double> breakpoints(double t_end) const {
    (void)t_end;
    return {};
  }

  BranchId first_branch() const noexcept { return first_branch_; }
  void set_first_branch(BranchId b) noexcept { first_branch_ = b; }

 private:
  std::string name_;
  BranchId first_branch_ = kNoBranch;
};

}  // namespace nemtcam::spice
