// Netlist container: named nodes, devices, branch bookkeeping, initial
// conditions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/AssemblyCache.h"
#include "spice/Device.h"
#include "spice/Types.h"

namespace nemtcam::spice {

class Circuit {
 public:
  Circuit() = default;

  // Returns the node with the given name, creating it on first use.
  // The name "0" and "gnd" map to ground.
  NodeId node(const std::string& name);

  // Creates an anonymous node (named "_n<k>").
  NodeId make_node();

  NodeId ground() const noexcept { return kGround; }

  // Constructs a device in place; branch unknowns are assigned here.
  template <typename D, typename... Args>
  D& add(Args&&... args) {
    auto dev = std::make_unique<D>(std::forward<Args>(args)...);
    D& ref = *dev;
    if (dev->branch_count() > 0) {
      dev->set_first_branch(n_branches_);
      n_branches_ += dev->branch_count();
    }
    devices_.push_back(std::move(dev));
    ++topology_rev_;
    return ref;
  }

  // Number of nodes including ground.
  std::size_t node_count() const noexcept { return names_.size() + 1; }
  int node_unknowns() const noexcept { return static_cast<int>(names_.size()); }
  int branch_unknowns() const noexcept { return n_branches_; }
  int unknown_count() const noexcept { return node_unknowns() + n_branches_; }

  const std::vector<std::unique_ptr<Device>>& devices() const noexcept {
    return devices_;
  }

  // First device with the given instance name, or nullptr.
  Device* find(const std::string& name);

  // True when a node with this name already exists (without creating it);
  // "0"/"gnd"/"GND" always exist as ground.
  bool has_node(const std::string& name) const;

  // Replaces the drive waveform of the named source device in place (see
  // Device::rebind_wave). Returns false when no device has that name or
  // the device is not a source. Does not bump the topology revision, so
  // the cached stamp pattern and symbolic LU survive — this is the
  // transaction-replay fast path used by the hier template cache.
  bool rebind_source(const std::string& name, std::unique_ptr<Waveform> wave);

  // Calls reset_state() on every device: clears per-run scratch so the
  // same elaborated circuit can run another transaction from t = 0.
  void reset_device_states();

  // Name of a node id ("0" for ground).
  const std::string& node_name(NodeId n) const;

  // Initial condition for a node (used by transient-from-IC; unset nodes
  // start at 0 V).
  void set_ic(NodeId n, double volts);
  const std::map<NodeId, double>& ics() const noexcept { return ics_; }

  // Builds the initial unknown vector from ICs (branch currents start at 0).
  std::vector<double> initial_state() const;

  // Bumped whenever a device is added; lets the solver cache detect that
  // its recorded stamp pattern belongs to an older topology.
  std::uint64_t topology_revision() const noexcept { return topology_rev_; }

  // Solver-owned assembly/factorization scratch (see AssemblyCache). Kept
  // on the circuit so the fixed stamp pattern and symbolic LU survive
  // across Newton solves and transient steps. Invalidated automatically
  // when the topology changed since the last call. One cache per circuit
  // means a circuit must not be solved from two threads at once — sweep
  // parallelism runs one circuit per trial, never one circuit on many
  // threads.
  AssemblyCache& solver_cache() {
    if (cache_rev_ != topology_rev_) {
      solver_cache_.invalidate();
      // A partition indexes unknowns of the old topology — drop it; the
      // array fixture reinstalls one after it finishes building.
      solver_cache_.clear_partition();
      cache_rev_ = topology_rev_;
    }
    return solver_cache_;
  }

  // Installs a bordered-block-diagonal partition of this circuit's
  // unknowns (see spice/Partition.h); Newton solves then route through
  // linalg::BbdSolver on `pool`. Adding any device afterwards drops the
  // partition along with the stamp pattern.
  void set_solver_partition(
      std::shared_ptr<const linalg::BbdPartition> partition,
      util::ThreadPool* pool) {
    solver_cache().set_partition(std::move(partition), pool);
  }

 private:
  std::unordered_map<std::string, NodeId> name_to_id_;
  std::vector<std::string> names_;  // names_[i] is node id i+1
  std::vector<std::unique_ptr<Device>> devices_;
  int n_branches_ = 0;
  int anon_counter_ = 0;
  std::map<NodeId, double> ics_;
  std::uint64_t topology_rev_ = 0;
  std::uint64_t cache_rev_ = 0;
  AssemblyCache solver_cache_;
};

}  // namespace nemtcam::spice
