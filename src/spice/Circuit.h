// Netlist container: named nodes, devices, branch bookkeeping, initial
// conditions.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/Device.h"
#include "spice/Types.h"

namespace nemtcam::spice {

class Circuit {
 public:
  Circuit() = default;

  // Returns the node with the given name, creating it on first use.
  // The name "0" and "gnd" map to ground.
  NodeId node(const std::string& name);

  // Creates an anonymous node (named "_n<k>").
  NodeId make_node();

  NodeId ground() const noexcept { return kGround; }

  // Constructs a device in place; branch unknowns are assigned here.
  template <typename D, typename... Args>
  D& add(Args&&... args) {
    auto dev = std::make_unique<D>(std::forward<Args>(args)...);
    D& ref = *dev;
    if (dev->branch_count() > 0) {
      dev->set_first_branch(n_branches_);
      n_branches_ += dev->branch_count();
    }
    devices_.push_back(std::move(dev));
    return ref;
  }

  // Number of nodes including ground.
  std::size_t node_count() const noexcept { return names_.size() + 1; }
  int node_unknowns() const noexcept { return static_cast<int>(names_.size()); }
  int branch_unknowns() const noexcept { return n_branches_; }
  int unknown_count() const noexcept { return node_unknowns() + n_branches_; }

  const std::vector<std::unique_ptr<Device>>& devices() const noexcept {
    return devices_;
  }

  // First device with the given instance name, or nullptr.
  Device* find(const std::string& name);

  // Name of a node id ("0" for ground).
  const std::string& node_name(NodeId n) const;

  // Initial condition for a node (used by transient-from-IC; unset nodes
  // start at 0 V).
  void set_ic(NodeId n, double volts);
  const std::map<NodeId, double>& ics() const noexcept { return ics_; }

  // Builds the initial unknown vector from ICs (branch currents start at 0).
  std::vector<double> initial_state() const;

 private:
  std::unordered_map<std::string, NodeId> name_to_id_;
  std::vector<std::string> names_;  // names_[i] is node id i+1
  std::vector<std::unique_ptr<Device>> devices_;
  int n_branches_ = 0;
  int anon_counter_ = 0;
  std::map<NodeId, double> ics_;
};

}  // namespace nemtcam::spice
