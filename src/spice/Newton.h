// Newton–Raphson solve of the stamped MNA system at one time point,
// plus the DC operating-point driver (Newton with a gmin ladder).
#pragma once

#include <string>
#include <vector>

#include "spice/Circuit.h"

namespace nemtcam::spice {

// Process-wide default for NewtonOptions::use_assembly_cache. Starts true
// (set NEMTCAM_NO_ASSEMBLY_CACHE in the environment to start false); the
// setter exists for A/B perf comparisons like bench_solver.
bool default_use_assembly_cache();
void set_default_use_assembly_cache(bool on);

struct NewtonOptions {
  int max_iterations = 60;
  // Convergence: max |Δv| over node unknowns below abstol + reltol·|v|.
  double abstol = 1e-6;   // volts
  double reltol = 1e-6;
  // Per-iteration update clamp (volts) to keep exponential device models
  // inside their sane range. 0 disables damping.
  double damp_limit = 0.5;
  // Conductance to ground added on every node unknown (DC convergence aid).
  double gmin = 0.0;
  // Assemble into the circuit's fixed-pattern AssemblyCache and reuse the
  // symbolic LU across iterations/steps (the fast path). When false, the
  // MNA matrix is rebuilt and fully refactorized every iteration.
  bool use_assembly_cache = default_use_assembly_cache();
  // Multiplier on every independent source's drive value (source-stepping
  // continuation, see spice/Recovery.h). 1.0 = full drive.
  double source_scale = 1.0;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double max_delta = 0.0;
  // The factorization threw SingularMatrixError (floating node / degenerate
  // stamp) — distinct from a plain iteration stall.
  bool singular = false;
  // Unknown index with the largest |Δv| at the last iteration: the node (or
  // branch) that refused to settle. -1 when no iteration completed.
  int worst_unknown = -1;
};

// Solves f(v) = 0 at time t with step dt (dt == 0 → DC stamping).
// `v` holds the initial guess on entry and the solution on success;
// `v_prev` is the last accepted solution used by companion models.
NewtonResult solve_newton(Circuit& circuit, double t, double dt, bool is_dc,
                          std::vector<double>& v,
                          const std::vector<double>& v_prev,
                          const NewtonOptions& opts,
                          Integrator integrator = Integrator::BackwardEuler);

struct DcOptions {
  NewtonOptions newton;
  // gmin stepping ladder: solve repeatedly while relaxing gmin.
  std::vector<double> gmin_ladder = {1e-3, 1e-6, 1e-9, 1e-12};
  // On gmin-ladder failure, escalate through the recovery ladder
  // (spice/Recovery.h): tighter damping, gmin re-ramp, source stepping,
  // full-refactorize fallback.
  bool recover = true;
};

struct DcResult {
  bool converged = false;
  // Best solution found. On failure this is the *partial* solution from
  // the deepest gmin rung that converged (the zero/IC-seeded guess when
  // none did) — still useful as a transient starting point or for
  // diagnosing which node is stuck.
  std::vector<double> v;
  // Failure attribution: the gmin in effect at the last attempt, and the
  // unknown that refused to settle there.
  double last_gmin = 0.0;
  int worst_unknown = -1;
  std::string worst_node;
  // Set when a recovery stage beyond the plain gmin ladder produced the
  // solution (the stage name, e.g. "source-stepping").
  bool recovered = false;
  std::string recovery_stage;
  // When the failure is structural (the gmin-free DC pattern is rank-
  // deficient for every value assignment), the offending nodes/devices by
  // name — e.g. "node 'sense' (capacitor-only cut set?)". Empty when the
  // pattern has full structural rank, i.e. the failure is numerical.
  std::string singular_detail;
};

// Names the structurally undetermined unknowns of the circuit's gmin-free
// DC stamp pattern via the bipartite matching in linalg/StructuralRank.
// Returns "" when the pattern has full structural rank. dc_operating_point
// attaches this to failures so a floating sense node reads as
// "node 'sense' is structurally undetermined" instead of a bare
// singular-matrix throw; the full rule-level diagnosis lives in erc/.
std::string structural_singularity_report(Circuit& circuit);

// DC operating point from a zero (or IC-seeded) initial guess.
DcResult dc_operating_point(Circuit& circuit, const DcOptions& opts = {});

}  // namespace nemtcam::spice
