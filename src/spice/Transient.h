// Transient analysis: companion integration (Backward Euler / trapezoidal)
// with truncation-error-controlled adaptive stepping, Newton per step,
// breakpoint landing, device-event bisection, and per-source energy
// accounting.
//
// The engine starts from the circuit's initial conditions (SPICE "UIC"
// style) — the TCAM experiments always begin from a known stored state —
// or from a caller-provided state vector (e.g. a DC operating point).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "spice/Circuit.h"
#include "spice/Newton.h"
#include "spice/Recovery.h"
#include "spice/Trace.h"

namespace nemtcam::spice {

// How the engine sizes dt between breakpoints.
//  - FixedGrowth: the legacy policy — grow by dt_grow after every accepted
//    step up to dt_max, shrink only on Newton failure. Accuracy is whatever
//    dt_max buys; every fixture had to pin dt_max at 20–50 ps.
//  - Lte: estimate the local truncation error each step from a divided-
//    difference predictor (Milne-style BE/trap estimate), accept/reject
//    against reltol/abstol, and drive dt with a PI controller. dt_max can
//    be ns-scale; the tolerances are the accuracy knob.
enum class StepControl { FixedGrowth, Lte };

// Process-wide defaults consumed by TransientOptions (same pattern as
// Newton's default_use_assembly_cache). The step-control default starts at
// Lte (set NEMTCAM_FIXED_STEP in the environment to start FixedGrowth);
// the setters exist for A/B comparisons (bench_solver) and CLI overrides
// (nemtcam_sim --reltol/--abstol/--fixed-step). Note the struct-level
// default of TransientOptions::step_control stays FixedGrowth so bare
// TransientOptions{} users (unit tests exercising exact fixed grids) are
// unaffected; the TCAM fixtures opt in via step_defaults() below.
StepControl default_step_control();
void set_default_step_control(StepControl mode);
double default_lte_reltol();
double default_lte_abstol_v();
void set_default_lte_tolerances(double reltol, double abstol_v);
// Multiplier applied to every fixture's historical dt_max on the fixed
// path (step_defaults, FixedGrowth mode only). 1.0 reproduces the legacy
// grids; smaller values refine them uniformly — how bench_solver builds
// the dt_max-refined fixed reference the adaptive path is judged against.
// Env override: NEMTCAM_DT_SCALE.
double default_fixed_dt_scale();
void set_default_fixed_dt_scale(double scale);

struct TransientOptions {
  double t_end = 0.0;           // required
  double dt_init = 1e-12;
  double dt_min = 1e-16;
  double dt_max = 1e-10;
  double dt_grow = 1.4;         // FixedGrowth: growth factor after an easy step
  NewtonOptions newton;
  Integrator integrator = Integrator::BackwardEuler;
  // Convergence-recovery ladder engaged when a step's Newton solve cannot
  // be rescued by dt backoff alone: immediately on a singular system (dt
  // cannot un-float a node), otherwise once the per-step backoff budget
  // (recovery.retry_budget) or dt_min is hit. A residual gmin accepted by
  // the ladder is sticky for the rest of the run so later steps don't
  // re-pay the ladder for the same floating node.
  RecoveryOptions recovery;

  // --- LTE step control (used when step_control == StepControl::Lte) ---
  StepControl step_control = StepControl::FixedGrowth;
  // Per-unknown error tolerance: |lte_k| ≤ lte_factor·(abstol + reltol·|v_k|)
  // with abstol_v for node voltages and abstol_i for branch currents.
  // lte_factor is SPICE's TRTOL: the Milne estimate is conservative for
  // smooth solutions, so the raw bound is relaxed by this factor.
  double reltol = default_lte_reltol();
  double abstol_v = default_lte_abstol_v();   // volts
  double abstol_i = 1e-9;                     // amps
  double lte_factor = 3.5;
  // Largest per-step growth the PI controller may apply (the predictor has
  // no information beyond 3 points; regrowth after a breakpoint restart is
  // geometric at this rate).
  double dt_grow_max = 10.0;
  // Use the divided-difference predictor as Newton's initial guess.
  bool warm_start = true;
  // Watch Device::event_function for sign changes and bisect dt to land
  // steps just past relay pull-in/pull-out, contact arrival, and memory
  // write-threshold crossings.
  bool locate_events = true;
  double event_time_tol = 1e-12;

  bool record = true;           // keep full waveforms (needed for measures)
  // Selective recording: when either probe list is non-empty (and record
  // is true), only the listed node voltages / branch currents are stored
  // per step instead of the whole unknown vector. Energy accounting is
  // unaffected — energy-only runs can probe a single node instead of
  // paying O(unknowns) memory per step.
  std::vector<NodeId> probe_nodes;
  std::vector<BranchId> probe_branches;
};

// Canonical options for the TCAM fixtures: under the process default the
// engine runs adaptive — LTE step control with trapezoidal integration and
// a coarse dt cap, where the tolerances set the accuracy; when the fixed
// path is selected (set_default_step_control(StepControl::FixedGrowth) or
// NEMTCAM_FIXED_STEP) it reproduces the legacy fixed-growth Backward Euler
// configuration with the historical per-fixture dt_max.
TransientOptions step_defaults(double t_end, double dt_max_fixed,
                               double dt_max_adaptive = 1e-9);

class TransientResult {
 public:
  bool finished = false;        // reached t_end
  std::string failure;          // set when !finished
  std::size_t steps_taken = 0;
  std::size_t newton_iterations = 0;
  std::size_t steps_rejected = 0;   // LTE rejections (Lte step control only)
  std::size_t events_located = 0;   // device events landed by bisection
  std::size_t steps_recovered = 0;  // steps accepted via the recovery ladder
  // Sticky gmin floor in effect at run end (0 = none needed): nonzero means
  // a floating node was held to ground by the ladder for the whole run.
  double residual_gmin = 0.0;
  // Trace of the last recovery-ladder engagement (successful or not); empty
  // attempts when the ladder never ran.
  SolverDiagnostics diagnostics;

  // Waveform of a node voltage.
  Trace node_trace(NodeId n) const;
  // Waveform of a branch current (voltage-source current, into + terminal).
  Trace branch_trace(BranchId b) const;

  // Energy delivered to the circuit by the named source device over the
  // whole run (J). Throws if no such device was seen.
  double source_energy(const std::string& device_name) const;
  // Sum over all sources.
  double total_source_energy() const;
  // Energy dissipated in the named device (only devices reporting power()).
  double device_dissipation(const std::string& device_name) const;

  const std::map<std::string, double>& source_energies() const noexcept {
    return source_energy_;
  }

  // Raw recording (used by Transient and tests). When recorded_unknowns
  // is empty each sample holds the full unknown vector; otherwise sample
  // column j holds unknown recorded_unknowns[j] (probe recording).
  std::vector<double> times;
  std::vector<std::vector<double>> samples;
  std::vector<std::size_t> recorded_unknowns;
  int n_node_unknowns = 0;
  std::map<std::string, double> source_energy_;
  std::map<std::string, double> dissipation_;

  // Maps a raw unknown index to its sample column: identity when the full
  // vector was recorded, else a binary search in an index built lazily on
  // first use (once per result, not once per trace call). Throws when the
  // unknown was not probed.
  std::size_t sample_column(std::size_t unknown) const;

 private:
  // Lazily built sorted (unknown, column) pairs for probe recording.
  mutable std::vector<std::pair<std::size_t, std::size_t>> column_index_;
};

TransientResult run_transient(Circuit& circuit, const TransientOptions& opts);

// Same, but starting from an explicit unknown vector (e.g. DC op result).
TransientResult run_transient_from(Circuit& circuit, std::vector<double> v0,
                                   const TransientOptions& opts);

}  // namespace nemtcam::spice
