// Transient analysis: Backward-Euler companion integration with adaptive
// stepping, Newton per step, breakpoint landing, and per-source energy
// accounting.
//
// The engine starts from the circuit's initial conditions (SPICE "UIC"
// style) — the TCAM experiments always begin from a known stored state —
// or from a caller-provided state vector (e.g. a DC operating point).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/Circuit.h"
#include "spice/Newton.h"
#include "spice/Trace.h"

namespace nemtcam::spice {

struct TransientOptions {
  double t_end = 0.0;           // required
  double dt_init = 1e-12;
  double dt_min = 1e-16;
  double dt_max = 1e-10;
  double dt_grow = 1.4;         // growth factor after an easy step
  NewtonOptions newton;
  Integrator integrator = Integrator::BackwardEuler;
  bool record = true;           // keep full waveforms (needed for measures)
  // Selective recording: when either probe list is non-empty (and record
  // is true), only the listed node voltages / branch currents are stored
  // per step instead of the whole unknown vector. Energy accounting is
  // unaffected — energy-only runs can probe a single node instead of
  // paying O(unknowns) memory per step.
  std::vector<NodeId> probe_nodes;
  std::vector<BranchId> probe_branches;
};

class TransientResult {
 public:
  bool finished = false;        // reached t_end
  std::string failure;          // set when !finished
  std::size_t steps_taken = 0;
  std::size_t newton_iterations = 0;

  // Waveform of a node voltage.
  Trace node_trace(NodeId n) const;
  // Waveform of a branch current (voltage-source current, into + terminal).
  Trace branch_trace(BranchId b) const;

  // Energy delivered to the circuit by the named source device over the
  // whole run (J). Throws if no such device was seen.
  double source_energy(const std::string& device_name) const;
  // Sum over all sources.
  double total_source_energy() const;
  // Energy dissipated in the named device (only devices reporting power()).
  double device_dissipation(const std::string& device_name) const;

  const std::map<std::string, double>& source_energies() const noexcept {
    return source_energy_;
  }

  // Raw recording (used by Transient and tests). When recorded_unknowns
  // is empty each sample holds the full unknown vector; otherwise sample
  // column j holds unknown recorded_unknowns[j] (probe recording).
  std::vector<double> times;
  std::vector<std::vector<double>> samples;
  std::vector<std::size_t> recorded_unknowns;
  int n_node_unknowns = 0;
  std::map<std::string, double> source_energy_;
  std::map<std::string, double> dissipation_;
};

TransientResult run_transient(Circuit& circuit, const TransientOptions& opts);

// Same, but starting from an explicit unknown vector (e.g. DC op result).
TransientResult run_transient_from(Circuit& circuit, std::vector<double> v0,
                                   const TransientOptions& opts);

}  // namespace nemtcam::spice
