#include "spice/Trace.h"

#include <algorithm>
#include <cmath>

#include "util/Expect.h"

namespace nemtcam::spice {

Trace::Trace(std::vector<double> times, std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  NEMTCAM_EXPECT(times_.size() == values_.size());
  for (std::size_t i = 1; i < times_.size(); ++i)
    NEMTCAM_EXPECT_MSG(times_[i] > times_[i - 1], "trace times must increase");
}

double Trace::t_begin() const {
  NEMTCAM_EXPECT(!empty());
  return times_.front();
}

double Trace::t_end() const {
  NEMTCAM_EXPECT(!empty());
  return times_.back();
}

double Trace::front() const {
  NEMTCAM_EXPECT(!empty());
  return values_.front();
}

double Trace::back() const {
  NEMTCAM_EXPECT(!empty());
  return values_.back();
}

double Trace::at(double t) const {
  NEMTCAM_EXPECT(!empty());
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  const double frac = (t - times_[lo]) / span;
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

std::optional<double> Trace::cross_time(double level, bool rising,
                                        double t_from) const {
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (times_[i] < t_from) continue;
    const double v0 = values_[i - 1];
    const double v1 = values_[i];
    const bool crossed = rising ? (v0 < level && v1 >= level)
                                : (v0 > level && v1 <= level);
    if (!crossed) continue;
    const double frac = (level - v0) / (v1 - v0);
    const double t = times_[i - 1] + frac * (times_[i] - times_[i - 1]);
    if (t >= t_from) return t;
  }
  return std::nullopt;
}

double Trace::integral(double t_from, double t_to) const {
  NEMTCAM_EXPECT(!empty());
  NEMTCAM_EXPECT(t_to >= t_from);
  double acc = 0.0;
  for (std::size_t i = 1; i < times_.size(); ++i) {
    const double a = std::max(times_[i - 1], t_from);
    const double b = std::min(times_[i], t_to);
    if (b <= a) continue;
    acc += 0.5 * (at(a) + at(b)) * (b - a);
  }
  return acc;
}

double Trace::integral() const {
  NEMTCAM_EXPECT(!empty());
  return integral(times_.front(), times_.back());
}

double Trace::min_value() const {
  NEMTCAM_EXPECT(!empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Trace::max_value() const {
  NEMTCAM_EXPECT(!empty());
  return *std::max_element(values_.begin(), values_.end());
}

std::optional<double> Trace::settle_time(double target, double tol) const {
  NEMTCAM_EXPECT(!empty());
  NEMTCAM_EXPECT(tol > 0.0);
  if (std::fabs(values_.back() - target) > tol) return std::nullopt;
  for (std::size_t i = times_.size(); i-- > 0;) {
    if (std::fabs(values_[i] - target) > tol) {
      // Interpolate the band entry between samples i and i+1.
      if (i + 1 >= times_.size()) return times_.back();
      const double v0 = values_[i];
      const double v1 = values_[i + 1];
      const double edge = (v0 < target) ? target - tol : target + tol;
      if (v1 == v0) return times_[i + 1];
      const double frac = (edge - v0) / (v1 - v0);
      return times_[i] + frac * (times_[i + 1] - times_[i]);
    }
  }
  return times_.front();
}

}  // namespace nemtcam::spice
