// Fixed-pattern MNA assembly reused across Newton iterations and time
// steps.
//
// Device stamping is deterministic for a fixed circuit topology: every
// iteration issues the same sequence of (row, col) matrix contributions,
// only the values change. The first assembly after a (re)build runs in
// build mode — it records that sequence, accumulates triplets (keeping
// exact zeros: a conductance that happens to be 0 this iteration still
// owns its slot), and finalizes a CSR pattern with one value slot per
// distinct position plus a per-call slot map. Every later assembly just
// zeroes the value array and replays the sequence with one compare and
// one add per stamp call — no allocation, no sort, no merge.
//
// If a device ever deviates from the recorded sequence (e.g. the circuit
// switches between DC and transient stamping, which opens capacitors),
// the pass is flagged, the pattern dropped, and the caller re-stamps in
// build mode — correctness never depends on the pattern staying fixed.
//
// The cache also owns the SparseLu for the assembled system and keeps its
// symbolic analysis alive across solves: factorize() first attempts the
// cheap numeric refactorization and falls back to a full factorization
// (fresh pivot order) when a reused pivot degenerates.
//
// Solver selection: a caller that knows the circuit's block structure
// (the array fixture) installs a BbdPartition; factorize_and_solve() then
// routes through the bordered-block-diagonal solver, falling back to the
// monolithic SparseLu — with one warning — if the matrix turns out not to
// fit the partition. Paths without a partition (every single-row fixture)
// are untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/SparseLu.h"

namespace nemtcam::linalg {
class BbdSolver;
struct BbdPartition;
}  // namespace nemtcam::linalg

namespace nemtcam::util {
class ThreadPool;
}

namespace nemtcam::spice {

class AssemblyCache {
 public:
  struct Stats {
    std::uint64_t assemblies = 0;          // begin() calls
    std::uint64_t pattern_builds = 0;      // build-mode passes
    std::uint64_t full_factorizations = 0;
    std::uint64_t refactorizations = 0;
    std::uint64_t bbd_factorizations = 0;    // full BBD split + factor
    std::uint64_t bbd_refactorizations = 0;  // numeric-only BBD replays
    std::uint64_t bbd_fallbacks = 0;         // partition rejected → SparseLu
  };

  AssemblyCache();
  ~AssemblyCache();
  AssemblyCache(AssemblyCache&&) noexcept;
  AssemblyCache& operator=(AssemblyCache&&) noexcept;

  // Starts one assembly pass over an n-unknown system.
  void begin(std::size_t n);

  // One matrix contribution; accumulates at (r, c).
  void add(std::size_t r, std::size_t c, double v) {
    if (fast_) {
      if (cursor_ < seq_key_.size() && seq_key_[cursor_] == r * n_ + c) {
        vals_[seq_slot_[cursor_++]] += v;
      } else {
        fast_ = false;  // pattern changed; pass is void
      }
      return;
    }
    if (building_) {
      seq_key_.push_back(r * n_ + c);
      trip_val_.push_back(v);
    }
  }

  // Ends the pass. Returns false when a fast pass deviated from the
  // recorded pattern — the pattern is dropped and the caller must redo
  // the pass (which will run in build mode). A build pass finalizes the
  // CSR pattern and always succeeds.
  bool finish();

  bool has_pattern() const noexcept { return !row_ptr_.empty(); }
  // Drops the pattern and the factorization (topology changed).
  void invalidate();

  // View of the assembled matrix (valid after a successful finish()).
  linalg::CsrView view() const noexcept {
    return {n_, row_ptr_.data(), cols_.data(), vals_.data()};
  }

  // Factorizes the assembled system, reusing the symbolic analysis when
  // possible. Throws linalg::SingularMatrixError like SparseLu.
  linalg::SparseLu& factorize();

  // Installs (or, with nullptr, clears) a BBD partition; subsequent
  // factorize_and_solve() calls route through BbdSolver on `pool`. The
  // partition survives invalidate() — a pattern rebuild re-splits the new
  // pattern against the same partition — but Circuit drops it when the
  // topology itself changes (the unknown numbering is stale then).
  void set_partition(std::shared_ptr<const linalg::BbdPartition> partition,
                     util::ThreadPool* pool);
  void clear_partition() { set_partition(nullptr, nullptr); }
  bool using_bbd() const noexcept { return partition_ != nullptr; }

  // Factorizes the assembled system and solves in place, dispatching to
  // the BBD solver when a partition is installed (else the monolithic
  // SparseLu). If the matrix does not fit the partition, warns once,
  // drops the partition, and proceeds monolithically. Throws
  // linalg::SingularMatrixError on numeric singularity either way.
  void factorize_and_solve(std::vector<double>& rhs);

  // The BBD solver instance, when one has been used (stat inspection).
  const linalg::BbdSolver* bbd() const noexcept { return bbd_.get(); }

  const Stats& stats() const noexcept { return stats_; }

 private:
  std::size_t n_ = 0;
  bool fast_ = false;      // replaying the recorded sequence
  bool building_ = false;  // recording a new sequence
  std::size_t cursor_ = 0;

  // Recorded stamp sequence: flattened (r, c) key and CSR slot per call.
  std::vector<std::size_t> seq_key_;
  std::vector<std::size_t> seq_slot_;
  std::vector<double> trip_val_;  // build-pass values, aligned with seq_key_

  // Fixed CSR pattern + the per-pass value array.
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> cols_;
  std::vector<double> vals_;

  linalg::SparseLu lu_;
  bool lu_analyzed_ = false;  // lu_ holds a symbolic analysis of this pattern

  std::shared_ptr<const linalg::BbdPartition> partition_;
  util::ThreadPool* bbd_pool_ = nullptr;
  std::unique_ptr<linalg::BbdSolver> bbd_;
  bool bbd_ready_ = false;  // bbd_ holds a split of the current pattern

  Stats stats_;
};

}  // namespace nemtcam::spice
