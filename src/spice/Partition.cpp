#include "spice/Partition.h"

#include <cstddef>

#include "util/Expect.h"

namespace nemtcam::spice {

linalg::BbdPartition make_bbd_partition(
    const Circuit& circuit, const std::vector<int>& owner_of_device,
    int n_owners) {
  const auto& devices = circuit.devices();
  NEMTCAM_EXPECT(owner_of_device.size() == devices.size());
  NEMTCAM_EXPECT(n_owners >= 0);

  const int n_node_unknowns = circuit.node_unknowns();
  const std::size_t n_unknowns =
      static_cast<std::size_t>(circuit.unknown_count());

  linalg::BbdPartition part;
  part.n_blocks = n_owners;
  part.block_of.assign(n_unknowns, -1);

  // Node unknowns: start unclaimed (-2), settle to an owner while every
  // touching device agrees, collapse to border (-1) on the first
  // disagreement or shared device. Unclaimed nodes (touched by nothing)
  // end up border, which is always safe.
  constexpr int kUnclaimed = -2;
  std::vector<int> node_owner(static_cast<std::size_t>(n_node_unknowns),
                              kUnclaimed);

  for (std::size_t d = 0; d < devices.size(); ++d) {
    const int owner = owner_of_device[d];
    NEMTCAM_EXPECT(owner >= -1 && owner < n_owners);
    for (const auto& term : devices[d]->topology().terminals) {
      if (term.node == circuit.ground()) continue;
      int& cur = node_owner[static_cast<std::size_t>(term.node) - 1];
      if (cur == kUnclaimed)
        cur = owner;
      else if (cur != owner)
        cur = -1;
    }
  }

  for (int u = 0; u < n_node_unknowns; ++u) {
    const int owner = node_owner[static_cast<std::size_t>(u)];
    part.block_of[static_cast<std::size_t>(u)] = owner >= 0 ? owner : -1;
  }

  // Branch unknowns belong to their device's block outright — only that
  // device stamps its own branch rows/columns.
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const Device& dev = *devices[d];
    const int nb = dev.branch_count();
    if (nb == 0) continue;
    const std::size_t base = static_cast<std::size_t>(n_node_unknowns) +
                             static_cast<std::size_t>(dev.first_branch());
    for (int b = 0; b < nb; ++b)
      part.block_of[base + static_cast<std::size_t>(b)] = owner_of_device[d];
  }

  return part;
}

}  // namespace nemtcam::spice
