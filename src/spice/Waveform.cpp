#include "spice/Waveform.h"

#include <algorithm>
#include <cmath>

#include "util/Expect.h"

namespace nemtcam::spice {

PulseWave::PulseWave(double v1, double v2, double delay, double rise,
                     double fall, double width, double period)
    : v1_(v1), v2_(v2), delay_(delay), rise_(rise), fall_(fall), width_(width),
      period_(period) {
  NEMTCAM_EXPECT(rise_ > 0.0 && fall_ > 0.0);
  NEMTCAM_EXPECT(width_ >= 0.0);
  if (period_ > 0.0) NEMTCAM_EXPECT(period_ >= rise_ + width_ + fall_);
}

double PulseWave::value(double t) const {
  if (t < delay_) return v1_;
  double tc = t - delay_;
  if (period_ > 0.0) tc = std::fmod(tc, period_);
  if (tc < rise_) return v1_ + (v2_ - v1_) * (tc / rise_);
  tc -= rise_;
  if (tc < width_) return v2_;
  tc -= width_;
  if (tc < fall_) return v2_ + (v1_ - v2_) * (tc / fall_);
  return v1_;
}

std::vector<double> PulseWave::breakpoints(double t_end) const {
  std::vector<double> bps;
  const double cycle = period_ > 0.0 ? period_ : t_end + 1.0;
  for (double base = delay_; base < t_end; base += cycle) {
    for (double off : {0.0, rise_, rise_ + width_, rise_ + width_ + fall_}) {
      const double t = base + off;
      if (t > 0.0 && t < t_end) bps.push_back(t);
    }
    if (period_ <= 0.0) break;
  }
  return bps;
}

PwlWave::PwlWave(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  NEMTCAM_EXPECT(!points_.empty());
  for (std::size_t i = 1; i < points_.size(); ++i)
    NEMTCAM_EXPECT_MSG(points_[i].first >= points_[i - 1].first,
                       "PWL times must be non-decreasing");
}

double PwlWave::value(double t) const {
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double tt, const auto& p) { return tt < p.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double span = hi.first - lo.first;
  if (span <= 0.0) return hi.second;
  const double frac = (t - lo.first) / span;
  return lo.second + frac * (hi.second - lo.second);
}

std::vector<double> PwlWave::breakpoints(double t_end) const {
  std::vector<double> bps;
  for (const auto& [t, v] : points_) {
    (void)v;
    if (t > 0.0 && t < t_end) bps.push_back(t);
  }
  return bps;
}

SinWave::SinWave(double offset, double amplitude, double freq, double delay)
    : offset_(offset), amplitude_(amplitude), freq_(freq), delay_(delay) {
  NEMTCAM_EXPECT(freq_ > 0.0);
}

double SinWave::value(double t) const {
  if (t < delay_) return offset_;
  return offset_ + amplitude_ * std::sin(2.0 * M_PI * freq_ * (t - delay_));
}

}  // namespace nemtcam::spice
