#include "spice/Recovery.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/Log.h"

namespace nemtcam::spice {

const char* stage_name(LadderStage s) {
  switch (s) {
    case LadderStage::Newton: return "newton";
    case LadderStage::DampedNewton: return "damped-newton";
    case LadderStage::GminRamp: return "gmin-ramp";
    case LadderStage::SourceStepping: return "source-stepping";
    case LadderStage::FullRefactor: return "full-refactor";
  }
  return "?";
}

std::string unknown_name(const Circuit& circuit, int unknown) {
  if (unknown < 0) return {};
  if (unknown < circuit.node_unknowns())
    return circuit.node_name(static_cast<NodeId>(unknown + 1));
  // Built up in place: the one-liner `"b" + std::to_string(...)` trips a
  // GCC 12 -Wrestrict false positive (PR105329) under -Werror.
  std::string name = "b";
  name += std::to_string(unknown - circuit.node_unknowns());
  return name;
}

std::string SolverDiagnostics::summary() const {
  std::ostringstream os;
  if (recovered) {
    os << "recovered via " << stage_name(converged_stage);
    if (residual_gmin > 0.0) os << " (residual gmin=" << residual_gmin << ")";
    os << " after " << attempts.size() << " attempts";
  } else if (!attempts.empty() && attempts.back().converged) {
    os << "converged at " << stage_name(converged_stage);
  } else {
    os << "failed at " << stage_name(failure_stage);
    if (last_gmin > 0.0) os << " (gmin=" << last_gmin << ")";
    if (!worst_node.empty()) os << ", worst node '" << worst_node << "'";
    if (saw_singular) os << ", singular system seen";
  }
  return os.str();
}

namespace {

// Shared bookkeeping for one ladder run: counts the budget, records every
// attempt, and keeps the failure attribution current.
struct LadderRun {
  Circuit& circuit;
  const RecoveryOptions& recovery;
  SolverDiagnostics* diag;
  int budget;
  int total_iterations = 0;

  bool exhausted() const { return budget <= 0; }

  NewtonResult attempt(LadderStage stage, double t, double dt, bool is_dc,
                       std::vector<double>& v,
                       const std::vector<double>& v_prev,
                       const NewtonOptions& opts, Integrator integrator) {
    --budget;
    const NewtonResult r =
        solve_newton(circuit, t, dt, is_dc, v, v_prev, opts, integrator);
    total_iterations += r.iterations;
    if (diag != nullptr) {
      LadderAttempt a;
      a.stage = stage;
      a.gmin = opts.gmin;
      a.source_scale = opts.source_scale;
      a.iterations = r.iterations;
      a.max_delta = r.max_delta;
      a.converged = r.converged;
      a.singular = r.singular;
      diag->attempts.push_back(a);
      if (r.singular) diag->saw_singular = true;
      if (!r.converged) {
        diag->failure_stage = stage;
        diag->last_gmin = opts.gmin;
        diag->worst_unknown = r.worst_unknown;
        diag->worst_delta = r.max_delta;
        diag->worst_node = unknown_name(circuit, r.worst_unknown);
      }
    }
    return r;
  }

  void mark_converged(LadderStage stage, double residual_gmin) {
    if (diag == nullptr) return;
    diag->recovered = stage != LadderStage::Newton;
    diag->converged_stage = stage;
    diag->residual_gmin = residual_gmin;
  }
};

}  // namespace

NewtonResult solve_newton_recovering(Circuit& circuit, double t, double dt,
                                     bool is_dc, std::vector<double>& v,
                                     const std::vector<double>& v_prev,
                                     const NewtonOptions& opts,
                                     const RecoveryOptions& recovery,
                                     SolverDiagnostics* diag,
                                     Integrator integrator) {
  LadderRun run{circuit, recovery, diag,
                std::max(recovery.retry_budget, 1) + 1};

  // Stage 1: the caller's solve, unchanged.
  NewtonResult r =
      run.attempt(LadderStage::Newton, t, dt, is_dc, v, v_prev, opts,
                  integrator);
  if (r.converged || !recovery.enabled) {
    if (r.converged) run.mark_converged(LadderStage::Newton, 0.0);
    r.iterations = run.total_iterations;
    return r;
  }

  // Recovery stages share the tightened options.
  NewtonOptions tight = opts;
  tight.damp_limit = opts.damp_limit > 0.0
                         ? std::min(opts.damp_limit, recovery.damp_tight)
                         : recovery.damp_tight;
  tight.max_iterations =
      opts.max_iterations * std::max(recovery.max_iterations_scale, 1);

  // Stage 2: damped Newton from the committed state (the extrapolated or
  // half-updated guess the caller left behind can be poisoned).
  if (!run.exhausted()) {
    v = v_prev;
    r = run.attempt(LadderStage::DampedNewton, t, dt, is_dc, v, v_prev, tight,
                    integrator);
    if (r.converged) {
      run.mark_converged(LadderStage::DampedNewton, 0.0);
      r.iterations = run.total_iterations;
      return r;
    }
  }

  // Stage 3: gmin ramp. Solve at a strong gmin first, then relax rung by
  // rung toward the caller's own gmin, warm-starting each rung from the
  // previous one (classic gmin continuation, applied to transient steps as
  // well as DC). A rung that fails keeps the deepest converged rung's
  // solution: if only a nonzero floor converges, accept it when it is small
  // enough to be a legitimate floating-node hold.
  {
    std::vector<double> best_v;
    double best_gmin = -1.0;
    v = v_prev;
    std::vector<double> ramp = recovery.gmin_ramp;
    ramp.push_back(opts.gmin);
    double prev_rung = -1.0;
    for (double g : ramp) {
      const double rung = std::max(g, opts.gmin);
      if (rung == prev_rung) continue;  // dedupe (caller gmin inside ramp)
      prev_rung = rung;
      if (run.exhausted()) break;
      NewtonOptions nopts = tight;
      nopts.gmin = rung;
      r = run.attempt(LadderStage::GminRamp, t, dt, is_dc, v, v_prev, nopts,
                      integrator);
      if (r.converged) {
        best_v = v;
        best_gmin = rung;
      } else {
        // Restart the next rung from the best converged point, not the
        // diverged iterate.
        v = best_gmin >= 0.0 ? best_v : v_prev;
      }
    }
    if (best_gmin >= 0.0) {
      const bool full = best_gmin <= opts.gmin;
      // A residual floor is only a legitimate answer when it is tiny —
      // holding a node with milli-siemens to ground is not convergence.
      if (full || best_gmin <= 1e-9) {
        v = best_v;
        r.converged = true;
        r.iterations = run.total_iterations;
        run.mark_converged(LadderStage::GminRamp, full ? 0.0 : best_gmin);
        return r;
      }
    }
  }

  // Stage 4 (DC only): source stepping — ramp every independent source
  // from 10% to full drive, warm-starting each rung.
  if (is_dc && recovery.source_steps > 0 && !run.exhausted()) {
    v = v_prev;
    bool alive = true;
    const int steps = std::max(recovery.source_steps, 1);
    for (int k = 1; k <= steps && alive && !run.exhausted(); ++k) {
      NewtonOptions nopts = tight;
      nopts.source_scale =
          0.1 + 0.9 * static_cast<double>(k) / static_cast<double>(steps);
      r = run.attempt(LadderStage::SourceStepping, t, dt, is_dc, v, v_prev,
                      nopts, integrator);
      alive = r.converged;
      if (alive && k == steps) {
        run.mark_converged(LadderStage::SourceStepping, 0.0);
        r.iterations = run.total_iterations;
        return r;
      }
    }
  }

  // Stage 5: legacy full-refactorize path — a fresh pivot order every
  // iteration, no recorded pattern. Also drops the cached pattern so the
  // next fast-path solve rebuilds from scratch.
  if (!run.exhausted()) {
    circuit.solver_cache().invalidate();
    NewtonOptions nopts = tight;
    nopts.use_assembly_cache = false;
    v = v_prev;
    r = run.attempt(LadderStage::FullRefactor, t, dt, is_dc, v, v_prev, nopts,
                    integrator);
    if (r.converged) {
      run.mark_converged(LadderStage::FullRefactor, 0.0);
      r.iterations = run.total_iterations;
      return r;
    }
  }

  r.converged = false;
  r.iterations = run.total_iterations;
  log::warn("solver recovery ladder exhausted at t=", t,
            diag != nullptr ? " — " + diag->summary() : std::string());
  return r;
}

}  // namespace nemtcam::spice
