// Shared identifiers for the circuit simulator.
#pragma once

#include <cstddef>

namespace nemtcam::spice {

// Node identifier. Node 0 is always ground; unknown index = id - 1.
using NodeId = int;
inline constexpr NodeId kGround = 0;

// Index of an extra MNA branch-current unknown (voltage sources).
using BranchId = int;
inline constexpr BranchId kNoBranch = -1;

}  // namespace nemtcam::spice
