#include "spice/Newton.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "linalg/DenseLu.h"  // SingularMatrixError
#include "linalg/SparseLu.h"
#include "linalg/SparseMatrix.h"
#include "linalg/StructuralRank.h"
#include "spice/AssemblyCache.h"
#include "spice/Recovery.h"
#include "spice/Stamper.h"
#include "util/Log.h"

namespace nemtcam::spice {

namespace {

std::atomic<bool> g_use_assembly_cache{
    std::getenv("NEMTCAM_NO_ASSEMBLY_CACHE") == nullptr};

// Applies the damped update and checks node-voltage convergence. Returns
// true when converged.
bool apply_update(const std::vector<double>& v_new, std::vector<double>& v,
                  int n_node, const NewtonOptions& opts, NewtonResult& result) {
  const std::size_t n = v.size();
  double max_delta = 0.0;
  int worst = -1;
  bool clamped = false;
  for (std::size_t i = 0; i < n; ++i) {
    double dv = v_new[i] - v[i];
    if (opts.damp_limit > 0.0 && i < static_cast<std::size_t>(n_node)) {
      if (dv > opts.damp_limit) { dv = opts.damp_limit; clamped = true; }
      if (dv < -opts.damp_limit) { dv = -opts.damp_limit; clamped = true; }
    }
    if (i < static_cast<std::size_t>(n_node) && std::fabs(dv) > max_delta) {
      max_delta = std::fabs(dv);
      worst = static_cast<int>(i);
    }
    v[i] += dv;
  }
  result.max_delta = max_delta;
  if (worst >= 0) result.worst_unknown = worst;
  if (clamped) return false;
  // Converged when the node-voltage update is negligible.
  double tol_scale = 0.0;
  for (int i = 0; i < n_node; ++i)
    tol_scale = std::max(tol_scale, std::fabs(v[static_cast<std::size_t>(i)]));
  return max_delta <= opts.abstol + opts.reltol * tol_scale;
}

}  // namespace

bool default_use_assembly_cache() { return g_use_assembly_cache.load(); }

void set_default_use_assembly_cache(bool on) { g_use_assembly_cache.store(on); }

NewtonResult solve_newton(Circuit& circuit, double t, double dt, bool is_dc,
                          std::vector<double>& v,
                          const std::vector<double>& v_prev,
                          const NewtonOptions& opts, Integrator integrator) {
  const std::size_t n = static_cast<std::size_t>(circuit.unknown_count());
  NEMTCAM_EXPECT(v.size() == n && v_prev.size() == n);
  const int n_node = circuit.node_unknowns();

  NewtonResult result;

  if (opts.use_assembly_cache) {
    // Fast path: fixed-pattern stamping + symbolic-LU reuse.
    AssemblyCache& cache = circuit.solver_cache();
    std::vector<double> rhs(n);
    for (int iter = 0; iter < opts.max_iterations; ++iter) {
      result.iterations = iter + 1;
      // A pass that deviates from the recorded stamp pattern (topology-
      // visible mode change, e.g. DC vs transient) is redone once in
      // build mode; the second pass always succeeds.
      for (int pass = 0; pass < 2; ++pass) {
        cache.begin(n);
        std::fill(rhs.begin(), rhs.end(), 0.0);
        Stamper stamper(cache, rhs, n_node);
        StampContext ctx(t, dt, is_dc, n_node, &v, &v_prev, integrator);
        ctx.set_source_scale(opts.source_scale);
        for (const auto& dev : circuit.devices()) dev->stamp(stamper, ctx);
        if (opts.gmin > 0.0)
          for (int i = 1; i <= n_node; ++i)
            stamper.conductance(static_cast<NodeId>(i), kGround, opts.gmin);
        if (cache.finish()) break;
        NEMTCAM_ENSURE_MSG(pass == 0, "assembly pattern unstable");
      }

      try {
        // Dispatches to the BBD solver when the circuit carries a
        // partition (array fixtures), else the monolithic SparseLu.
        cache.factorize_and_solve(rhs);  // rhs becomes v_new
        if (iter == 0)
          log::debug("newton: n=", n, " nnz=", cache.view().nnz(),
                     cache.using_bbd() ? " solver=bbd" : " solver=sparselu");
      } catch (const linalg::SingularMatrixError&) {
        log::debug("Newton: singular system at t=", t, " iter=", iter);
        result.converged = false;
        result.singular = true;
        return result;
      }

      if (apply_update(rhs, v, n_node, opts, result)) {
        result.converged = true;
        return result;
      }
    }
    return result;
  }

  // Legacy path: rebuild the SparseMatrix and run a full factorization
  // every iteration. Kept for A/B benchmarking (bench_solver) and as the
  // NEMTCAM_NO_ASSEMBLY_CACHE escape hatch.
  linalg::SparseMatrix a(n, n);
  std::vector<double> rhs(n);
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    result.iterations = iter + 1;
    a.clear();
    std::fill(rhs.begin(), rhs.end(), 0.0);
    Stamper stamper(a, rhs, n_node);
    StampContext ctx(t, dt, is_dc, n_node, &v, &v_prev, integrator);
    ctx.set_source_scale(opts.source_scale);
    for (const auto& dev : circuit.devices()) dev->stamp(stamper, ctx);
    if (opts.gmin > 0.0)
      for (int i = 1; i <= n_node; ++i)
        stamper.conductance(static_cast<NodeId>(i), kGround, opts.gmin);

    std::vector<double> v_new;
    try {
      linalg::SparseLu lu(a);
      if (iter == 0)
        log::debug("newton: n=", n, " nnz=", a.nnz(), " fill=", lu.fill_nnz());
      v_new = lu.solve(rhs);
    } catch (const linalg::SingularMatrixError&) {
      log::debug("Newton: singular system at t=", t, " iter=", iter);
      result.converged = false;
      result.singular = true;
      return result;
    }

    if (apply_update(v_new, v, n_node, opts, result)) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

std::string structural_singularity_report(Circuit& circuit) {
  const std::size_t n = static_cast<std::size_t>(circuit.unknown_count());
  if (n == 0) return {};
  // Assemble the gmin-free DC pattern into a private cache (the circuit's
  // own solver cache keeps its gmin-augmented pattern). stamp() reads
  // device state but never advances it; only commit() does.
  AssemblyCache cache;
  std::vector<double> v(n, 0.0);
  std::vector<double> rhs(n, 0.0);
  cache.begin(n);
  Stamper stamper(cache, rhs, circuit.node_unknowns());
  const StampContext ctx(0.0, 0.0, /*is_dc=*/true, circuit.node_unknowns(),
                         &v, &v);
  for (const auto& dev : circuit.devices()) dev->stamp(stamper, ctx);
  cache.finish();

  const auto rank = linalg::structural_rank(cache.view());
  if (rank.full_rank(n)) return {};

  std::vector<char> flagged(n, 0);
  for (const std::size_t c : rank.unmatched_cols) flagged[c] = 1;
  for (const std::size_t r : rank.unmatched_rows) flagged[r] = 1;
  const int n_node = circuit.node_unknowns();
  std::ostringstream out;
  bool first = true;
  for (std::size_t u = 0; u < n; ++u) {
    if (!flagged[u]) continue;
    if (!first) out << "; ";
    first = false;
    if (u < static_cast<std::size_t>(n_node)) {
      out << "node '" << circuit.node_name(static_cast<NodeId>(u + 1))
          << "' is structurally undetermined at DC";
    } else {
      const int b = static_cast<int>(u) - n_node;
      const Device* owner = nullptr;
      for (const auto& dev : circuit.devices()) {
        if (dev->branch_count() > 0 && dev->first_branch() <= b &&
            b < dev->first_branch() + dev->branch_count()) {
          owner = dev.get();
          break;
        }
      }
      out << "branch current of device '" << (owner ? owner->name() : "?")
          << "' is structurally undetermined at DC";
    }
  }
  return out.str();
}

DcResult dc_operating_point(Circuit& circuit, const DcOptions& opts) {
  DcResult dc;
  dc.v = circuit.initial_state();
  const std::vector<double> v_prev = dc.v;
  std::vector<double> best = dc.v;  // deepest converged rung's solution
  bool any_rung = false;
  for (double gmin : opts.gmin_ladder) {
    NewtonOptions nopts = opts.newton;
    nopts.gmin = gmin;
    const NewtonResult r =
        solve_newton(circuit, 0.0, 0.0, /*is_dc=*/true, dc.v, v_prev, nopts);
    if (r.converged) {
      best = dc.v;
      any_rung = true;
      continue;
    }
    dc.last_gmin = gmin;
    dc.worst_unknown = r.worst_unknown;
    dc.worst_node = unknown_name(circuit, r.worst_unknown);
    if (opts.recover) {
      // Escalate through the recovery ladder at this rung (it re-ramps
      // gmin down to `gmin` itself and can fall back to source stepping
      // or a full refactorization).
      SolverDiagnostics diag;
      dc.v = any_rung ? best : v_prev;
      const NewtonResult rr = solve_newton_recovering(
          circuit, 0.0, 0.0, /*is_dc=*/true, dc.v, v_prev, nopts,
          RecoveryOptions{}, &diag);
      if (rr.converged) {
        best = dc.v;
        any_rung = true;
        dc.recovered = true;
        dc.recovery_stage = stage_name(diag.converged_stage);
        continue;
      }
      dc.last_gmin = diag.last_gmin > 0.0 ? diag.last_gmin : gmin;
      if (diag.worst_unknown >= 0) {
        dc.worst_unknown = diag.worst_unknown;
        dc.worst_node = diag.worst_node;
      }
      log::warn("dc_operating_point failed: ", diag.summary(),
                " (returning partial solution)");
    } else {
      log::warn("dc_operating_point: gmin=", gmin,
                " failed to converge, worst node '", dc.worst_node,
                "' (recovery disabled; returning partial solution)");
    }
    // Distinguish a structural defect (singular for every value
    // assignment — a netlist bug) from a numerical stall: name the
    // offending node/device via the structural-rank pass.
    dc.singular_detail = structural_singularity_report(circuit);
    if (!dc.singular_detail.empty())
      log::warn("dc_operating_point: ", dc.singular_detail);
    dc.converged = false;
    dc.v = any_rung ? best : v_prev;
    return dc;
  }
  dc.converged = true;
  dc.v = best;
  return dc;
}

}  // namespace nemtcam::spice
