#include "spice/Newton.h"

#include <algorithm>
#include <cmath>

#include "linalg/DenseLu.h"  // SingularMatrixError
#include "linalg/SparseLu.h"
#include "linalg/SparseMatrix.h"
#include "spice/Stamper.h"
#include "util/Log.h"

namespace nemtcam::spice {

NewtonResult solve_newton(Circuit& circuit, double t, double dt, bool is_dc,
                          std::vector<double>& v,
                          const std::vector<double>& v_prev,
                          const NewtonOptions& opts, Integrator integrator) {
  const std::size_t n = static_cast<std::size_t>(circuit.unknown_count());
  NEMTCAM_EXPECT(v.size() == n && v_prev.size() == n);
  const int n_node = circuit.node_unknowns();

  linalg::SparseMatrix a(n, n);
  std::vector<double> rhs(n);

  NewtonResult result;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    result.iterations = iter + 1;
    a.clear();
    std::fill(rhs.begin(), rhs.end(), 0.0);
    Stamper stamper(a, rhs, n_node);
    StampContext ctx(t, dt, is_dc, n_node, &v, &v_prev, integrator);
    for (const auto& dev : circuit.devices()) dev->stamp(stamper, ctx);
    if (opts.gmin > 0.0)
      for (int i = 1; i <= n_node; ++i)
        stamper.conductance(static_cast<NodeId>(i), kGround, opts.gmin);

    std::vector<double> v_new;
    try {
      linalg::SparseLu lu(a);
      if (iter == 0)
        log::debug("newton: n=", n, " nnz=", a.nnz(), " fill=", lu.fill_nnz());
      v_new = lu.solve(rhs);
    } catch (const linalg::SingularMatrixError&) {
      log::debug("Newton: singular system at t=", t, " iter=", iter);
      result.converged = false;
      return result;
    }

    // Damped update and convergence check over node voltages. Branch
    // currents are taken as solved (they are linear given the voltages).
    double max_delta = 0.0;
    bool clamped = false;
    for (std::size_t i = 0; i < n; ++i) {
      double dv = v_new[i] - v[i];
      if (opts.damp_limit > 0.0 && i < static_cast<std::size_t>(n_node)) {
        if (dv > opts.damp_limit) { dv = opts.damp_limit; clamped = true; }
        if (dv < -opts.damp_limit) { dv = -opts.damp_limit; clamped = true; }
      }
      if (i < static_cast<std::size_t>(n_node))
        max_delta = std::max(max_delta, std::fabs(dv));
      v[i] += dv;
    }
    result.max_delta = max_delta;
    if (!clamped) {
      // Converged when the node-voltage update is negligible.
      double tol_scale = 0.0;
      for (int i = 0; i < n_node; ++i)
        tol_scale = std::max(tol_scale, std::fabs(v[static_cast<std::size_t>(i)]));
      if (max_delta <= opts.abstol + opts.reltol * tol_scale) {
        result.converged = true;
        return result;
      }
    }
  }
  return result;
}

DcResult dc_operating_point(Circuit& circuit, const DcOptions& opts) {
  DcResult dc;
  dc.v = circuit.initial_state();
  const std::vector<double> v_prev = dc.v;
  for (double gmin : opts.gmin_ladder) {
    NewtonOptions nopts = opts.newton;
    nopts.gmin = gmin;
    const NewtonResult r =
        solve_newton(circuit, 0.0, 0.0, /*is_dc=*/true, dc.v, v_prev, nopts);
    if (!r.converged) {
      log::debug("dc_operating_point: gmin=", gmin, " failed to converge");
      dc.converged = false;
      return dc;
    }
  }
  dc.converged = true;
  return dc;
}

}  // namespace nemtcam::spice
