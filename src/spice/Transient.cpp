#include "spice/Transient.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <set>

#include "util/Expect.h"
#include "util/Log.h"

namespace nemtcam::spice {

namespace {

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr) return fallback;
  const double v = std::atof(s);
  return v > 0.0 ? v : fallback;
}

std::atomic<StepControl> g_step_control{std::getenv("NEMTCAM_FIXED_STEP")
                                            ? StepControl::FixedGrowth
                                            : StepControl::Lte};
std::atomic<double> g_reltol{env_double("NEMTCAM_RELTOL", 3e-3)};
std::atomic<double> g_abstol_v{env_double("NEMTCAM_ABSTOL", 1e-4)};
std::atomic<double> g_fixed_dt_scale{env_double("NEMTCAM_DT_SCALE", 1.0)};

// Rolling window of the last (up to) three accepted solutions, used for the
// polynomial predictor that warm-starts Newton and anchors the Milne LTE
// estimate. Reset at every discontinuity (breakpoints, located events): the
// divided differences are meaningless across a corner.
class StepHistory {
 public:
  void reset(double t, const std::vector<double>& v) {
    count_ = 1;
    t_[0] = t;
    v_[0] = v;
  }

  void push(double t, const std::vector<double>& v) {
    // Rotate storage so the oldest vector's capacity is reused for the
    // incoming copy.
    std::vector<double> recycled = std::move(v_[2]);
    v_[2] = std::move(v_[1]);
    v_[1] = std::move(v_[0]);
    recycled = v;
    v_[0] = std::move(recycled);
    t_[2] = t_[1];
    t_[1] = t_[0];
    t_[0] = t;
    if (count_ < 3) ++count_;
  }

  int points() const noexcept { return count_; }
  // Last accepted step size (valid when points() >= 2).
  double h1() const noexcept { return t_[0] - t_[1]; }
  double h2() const noexcept { return t_[1] - t_[2]; }

  // Extrapolates the Newton-form interpolating polynomial through the
  // newest min(order, points()-1)+1 stored points to time t_new.
  void predict(double t_new, int order, std::vector<double>& out) const {
    NEMTCAM_ENSURE(count_ >= 1);
    const int ord = std::min(order, count_ - 1);
    out = v_[0];
    if (ord < 1) return;
    const double dh1 = t_[0] - t_[1];
    const double a = t_new - t_[0];
    if (ord == 1) {
      for (std::size_t k = 0; k < out.size(); ++k)
        out[k] += a / dh1 * (v_[0][k] - v_[1][k]);
      return;
    }
    const double dh2 = t_[1] - t_[2];
    const double b = (t_new - t_[0]) * (t_new - t_[1]);
    for (std::size_t k = 0; k < out.size(); ++k) {
      const double d01 = (v_[0][k] - v_[1][k]) / dh1;
      const double d12 = (v_[1][k] - v_[2][k]) / dh2;
      const double d012 = (d01 - d12) / (dh1 + dh2);
      out[k] = v_[0][k] + a * d01 + b * d012;
    }
  }

 private:
  int count_ = 0;
  double t_[3] = {0.0, 0.0, 0.0};
  std::vector<double> v_[3];
};

// Milne principle: predictor and corrector errors are both proportional to
// the same solution derivative, so the corrector LTE can be read off the
// predictor–corrector difference. With step h after history steps h1, h2:
//   BE + linear predictor   (error ∝ x''):
//     x_corr − x_pred = (h² + h·h1/2)·x'',  lte = (h²/2)·x''
//       → lte = h/(2h + h1)·|corr − pred|           (1/3 at uniform steps)
//   trapezoidal + quadratic predictor  (error ∝ x'''):
//     pred err = h(h+h1)(h+h1+h2)/6·x''',  lte = (h³/12)·x'''
//       → lte = C_c/(C_p + C_c)·|corr − pred|       (1/13 at uniform steps)
// A trapezoidal corrector against a degraded (linear) predictor falls back
// to the first-order factor, which overestimates — conservative right after
// a restart, exact from the third step on.
double milne_factor(Integrator integ, int pred_order, double h, double h1,
                    double h2) {
  if (integ == Integrator::Trapezoidal && pred_order >= 2) {
    const double cp = h * (h + h1) * (h + h1 + h2) / 6.0;
    const double cc = h * h * h / 12.0;
    return cc / (cp + cc);
  }
  return h / (2.0 * h + h1);
}

// Worst per-unknown ratio of estimated LTE to its tolerance; ≤ 1 accepts.
double error_ratio(const std::vector<double>& v_new,
                   const std::vector<double>& v_old,
                   const std::vector<double>& pred, double milne, int n_node,
                   const TransientOptions& o) {
  double worst = 0.0;
  for (std::size_t k = 0; k < v_new.size(); ++k) {
    const double abstol =
        k < static_cast<std::size_t>(n_node) ? o.abstol_v : o.abstol_i;
    const double tol =
        o.lte_factor *
        (abstol + o.reltol * std::max(std::fabs(v_new[k]), std::fabs(v_old[k])));
    const double err = milne * std::fabs(v_new[k] - pred[k]);
    worst = std::max(worst, err / tol);
  }
  return worst;
}

// Gustafsson/Söderlind-style PI growth factor from the current and previous
// error ratios; clamped so one bad estimate cannot collapse or explode dt.
double pi_growth(double r, double r_prev, int order, double grow_max) {
  r = std::max(r, 1e-10);
  r_prev = std::max(r_prev, 1e-10);
  const double e = 1.0 / (order + 1.0);
  const double fac = 0.9 * std::pow(r, -0.7 * e) * std::pow(r_prev, 0.3 * e);
  return std::clamp(fac, 0.2, grow_max);
}

}  // namespace

StepControl default_step_control() { return g_step_control.load(); }
void set_default_step_control(StepControl mode) { g_step_control.store(mode); }
double default_lte_reltol() { return g_reltol.load(); }
double default_lte_abstol_v() { return g_abstol_v.load(); }
void set_default_lte_tolerances(double reltol, double abstol_v) {
  NEMTCAM_EXPECT(reltol > 0.0 && abstol_v > 0.0);
  g_reltol.store(reltol);
  g_abstol_v.store(abstol_v);
}
double default_fixed_dt_scale() { return g_fixed_dt_scale.load(); }
void set_default_fixed_dt_scale(double scale) {
  NEMTCAM_EXPECT(scale > 0.0);
  g_fixed_dt_scale.store(scale);
}

TransientOptions step_defaults(double t_end, double dt_max_fixed,
                               double dt_max_adaptive) {
  TransientOptions opts;
  opts.t_end = t_end;
  opts.dt_init = 1e-13;
  opts.step_control = default_step_control();
  if (opts.step_control == StepControl::Lte) {
    // Trapezoidal doubles the order the tolerance buys; the BE-restart rule
    // at breakpoints/events keeps the stiff switching corners L-stable.
    opts.integrator = Integrator::Trapezoidal;
    opts.dt_max = dt_max_adaptive;
  } else {
    opts.dt_max = dt_max_fixed * default_fixed_dt_scale();
  }
  return opts;
}

std::size_t TransientResult::sample_column(std::size_t unknown) const {
  if (recorded_unknowns.empty()) return unknown;
  if (column_index_.empty()) {
    column_index_.reserve(recorded_unknowns.size());
    for (std::size_t j = 0; j < recorded_unknowns.size(); ++j)
      column_index_.emplace_back(recorded_unknowns[j], j);
    std::sort(column_index_.begin(), column_index_.end());
  }
  const auto it = std::lower_bound(
      column_index_.begin(), column_index_.end(),
      std::pair<std::size_t, std::size_t>{unknown, 0});
  NEMTCAM_EXPECT_MSG(it != column_index_.end() && it->first == unknown,
                     "unknown was not probed during this transient run");
  return it->second;
}

Trace TransientResult::node_trace(NodeId n) const {
  NEMTCAM_EXPECT(n != kGround);
  NEMTCAM_EXPECT(n - 1 < n_node_unknowns);
  const std::size_t col = sample_column(static_cast<std::size_t>(n - 1));
  std::vector<double> vals;
  vals.reserve(samples.size());
  for (const auto& s : samples) vals.push_back(s[col]);
  return Trace(times, std::move(vals));
}

Trace TransientResult::branch_trace(BranchId b) const {
  NEMTCAM_EXPECT(b >= 0);
  const std::size_t col =
      sample_column(static_cast<std::size_t>(n_node_unknowns + b));
  std::vector<double> vals;
  vals.reserve(samples.size());
  for (const auto& s : samples) vals.push_back(s[col]);
  return Trace(times, std::move(vals));
}

double TransientResult::source_energy(const std::string& device_name) const {
  const auto it = source_energy_.find(device_name);
  NEMTCAM_EXPECT_MSG(it != source_energy_.end(),
                     "no energy recorded for source '" + device_name + "'");
  return it->second;
}

double TransientResult::total_source_energy() const {
  double total = 0.0;
  for (const auto& [name, e] : source_energy_) {
    (void)name;
    total += e;
  }
  return total;
}

double TransientResult::device_dissipation(const std::string& device_name) const {
  const auto it = dissipation_.find(device_name);
  NEMTCAM_EXPECT_MSG(it != dissipation_.end(),
                     "no dissipation recorded for device '" + device_name + "'");
  return it->second;
}

TransientResult run_transient(Circuit& circuit, const TransientOptions& opts) {
  return run_transient_from(circuit, circuit.initial_state(), opts);
}

TransientResult run_transient_from(Circuit& circuit, std::vector<double> v0,
                                   const TransientOptions& opts) {
  NEMTCAM_EXPECT(opts.t_end > 0.0);
  NEMTCAM_EXPECT(opts.dt_init > 0.0 && opts.dt_min > 0.0 && opts.dt_max > 0.0);
  NEMTCAM_EXPECT(v0.size() == static_cast<std::size_t>(circuit.unknown_count()));

  TransientResult result;
  result.n_node_unknowns = circuit.node_unknowns();
  const int n_node = circuit.node_unknowns();

  // Collect and sort source breakpoints. Breakpoints closer together than
  // dt_min are merged into the later one — landing on both would schedule a
  // sliver step below dt_min.
  std::set<double> bp_set;
  for (const auto& dev : circuit.devices())
    for (double t : dev->breakpoints(opts.t_end))
      if (t > 0.0 && t < opts.t_end) bp_set.insert(t);
  bp_set.insert(opts.t_end);
  std::vector<double> breakpoints;
  breakpoints.reserve(bp_set.size());
  for (auto it = bp_set.begin(); it != bp_set.end(); ++it) {
    const auto next = std::next(it);
    if (next != bp_set.end() && *next - *it < opts.dt_min) continue;
    breakpoints.push_back(*it);
  }

  std::vector<double> v_prev = std::move(v0);
  std::vector<double> v = v_prev;
  double t = 0.0;
  double dt = opts.dt_init;
  double dt_last = opts.dt_init;  // last accepted step (restart sizing)

  // Mutable Newton options: a residual gmin accepted by the recovery
  // ladder (a genuinely floating node) is folded in here so every later
  // step holds the node without re-running the ladder.
  NewtonOptions newton = opts.newton;
  double sticky_gmin = 0.0;

  // Per-device previous power sample for trapezoidal energy integration.
  std::vector<Device*> devs;
  devs.reserve(circuit.devices().size());
  for (const auto& dev : circuit.devices()) devs.push_back(dev.get());
  std::vector<double> prev_delivered(devs.size(), 0.0);
  std::vector<double> prev_dissipated(devs.size(), 0.0);
  std::vector<double> acc_delivered(devs.size(), 0.0);
  std::vector<double> acc_dissipated(devs.size(), 0.0);
  {
    StampContext ctx0(0.0, 0.0, /*is_dc=*/false, n_node, &v_prev, &v_prev);
    for (std::size_t i = 0; i < devs.size(); ++i) {
      prev_delivered[i] = devs[i]->delivered_power(ctx0);
      prev_dissipated[i] = devs[i]->power(ctx0);
    }
  }

  // Probe recording: store only the requested unknowns per step.
  if (!opts.probe_nodes.empty() || !opts.probe_branches.empty()) {
    for (NodeId n : opts.probe_nodes) {
      NEMTCAM_EXPECT(n != kGround && n - 1 < circuit.node_unknowns());
      result.recorded_unknowns.push_back(static_cast<std::size_t>(n - 1));
    }
    for (BranchId b : opts.probe_branches) {
      NEMTCAM_EXPECT(b >= 0 && b < circuit.branch_unknowns());
      result.recorded_unknowns.push_back(
          static_cast<std::size_t>(circuit.node_unknowns() + b));
    }
  }
  const auto record_sample = [&result](double time,
                                       const std::vector<double>& full) {
    result.times.push_back(time);
    if (result.recorded_unknowns.empty()) {
      result.samples.push_back(full);
      return;
    }
    std::vector<double> row;
    row.reserve(result.recorded_unknowns.size());
    for (std::size_t u : result.recorded_unknowns) row.push_back(full[u]);
    result.samples.push_back(std::move(row));
  };

  if (opts.record) record_sample(0.0, v_prev);

  const bool lte = opts.step_control == StepControl::Lte;
  const bool use_events = lte && opts.locate_events;
  StepHistory hist;
  hist.reset(0.0, v_prev);
  std::vector<double> v_pred;           // predictor evaluation for this step
  std::vector<double> f_start, f_end;   // event function values
  if (use_events) {
    f_start.resize(devs.size());
    f_end.resize(devs.size());
  }
  double r_prev = 1.0;                  // previous step's LTE ratio (PI memory)
  bool pending_restart = false;         // set when an event was landed

  std::size_t next_bp = 0;
  const double t_eps = 1e-18;

  while (t < opts.t_end - t_eps) {
    // Respect device hints.
    double dt_cap = opts.dt_max;
    for (const auto& dev : circuit.devices())
      dt_cap = std::min(dt_cap, dev->max_dt_hint());
    dt = std::min(dt, dt_cap);
    while (next_bp < breakpoints.size() && breakpoints[next_bp] <= t + t_eps)
      ++next_bp;

    // The very first step, any step right after a source breakpoint, and
    // any step right after a located event runs Backward Euler even in
    // trapezoidal mode: the trapezoidal companion needs a consistent
    // previous current, which a discontinuity invalidates — the classic
    // SPICE BE-restart rule. Under LTE control the predictor history is
    // reset too (divided differences across a corner are meaningless) and
    // dt restarts from dt_init, regrowing at dt_grow_max per step.
    const bool at_discontinuity =
        result.steps_taken == 0 || pending_restart ||
        (next_bp > 0 && next_bp <= breakpoints.size() &&
         std::fabs(t - breakpoints[next_bp - 1]) <= t_eps);
    pending_restart = false;
    if (lte && at_discontinuity) {
      hist.reset(t, v_prev);
      r_prev = 1.0;
      // Resume at a tenth of the last accepted step (the SPICE2 breakpoint
      // rule) rather than all the way down at dt_init: the solution scale
      // just past a source corner is set by the surrounding waveform, and
      // regrowing from dt_init costs ~log10(dt/dt_init) extra steps at
      // every corner. The very first step has no scale yet and starts at
      // dt_init; a wrong resume guess is caught by the next step's LTE
      // rejection.
      const double resume =
          result.steps_taken == 0
              ? opts.dt_init
              : std::max(opts.dt_init, 0.1 * dt_last);
      dt = std::min(dt, std::max(resume, opts.dt_min));
    }
    const Integrator step_integrator =
        at_discontinuity ? Integrator::BackwardEuler : opts.integrator;

    // Land exactly on the next breakpoint.
    if (next_bp < breakpoints.size()) {
      const double to_bp = breakpoints[next_bp] - t;
      if (dt >= to_bp - t_eps) dt = to_bp;
      // Avoid a sliver step right after a breakpoint landing.
      else if (to_bp - dt < opts.dt_min) dt = to_bp;
    }
    dt = std::min(dt, opts.t_end - t);
    // End-of-run sliver: when the remainder after this step would be below
    // dt_min (and no interior breakpoint sits in between), stretch the step
    // to t_end — the same merge rule breakpoint landings use.
    if (opts.t_end - t - dt < opts.dt_min &&
        (next_bp >= breakpoints.size() ||
         breakpoints[next_bp] >= opts.t_end - t_eps))
      dt = opts.t_end - t;

    // Event functions at the step start: committed state, dt → 0.
    if (use_events) {
      const StampContext ctx0(t, 0.0, /*is_dc=*/false, n_node, &v_prev,
                              &v_prev, step_integrator);
      for (std::size_t i = 0; i < devs.size(); ++i)
        f_start[i] = devs[i]->event_function(ctx0);
    }

    // Attempt the step: halve dt on Newton failure, shrink per the error
    // estimate on LTE rejection. The predictor warm-starts Newton; a step
    // that fails from the extrapolated guess is retried once from v_prev at
    // the same dt before dt is cut.
    const int corr_order =
        step_integrator == Integrator::Trapezoidal ? 2 : 1;
    bool accepted = false;
    bool predictor_guess_failed = false;
    bool have_estimate = false;
    double r = 1.0;
    int backoffs = 0;  // dt backoffs spent on this step
    while (!accepted) {
      const bool use_pred =
          lte && opts.warm_start && hist.points() >= 2 && !predictor_guess_failed;
      if (lte && hist.points() >= 2) {
        hist.predict(t + dt, corr_order, v_pred);
      }
      v = use_pred ? v_pred : v_prev;
      const NewtonResult nr = solve_newton(circuit, t + dt, dt, /*is_dc=*/false,
                                           v, v_prev, newton,
                                           step_integrator);
      result.newton_iterations += static_cast<std::size_t>(nr.iterations);
      if (!nr.converged) {
        if (use_pred) {
          // The extrapolation can overshoot a stiff corner; v_prev is the
          // robust guess. Same dt, one retry.
          predictor_guess_failed = true;
          continue;
        }
        // Backoff can't rescue everything: a singular system stays singular
        // at any dt (no step size un-floats a node), and a stall that
        // survives the backoff budget needs a stronger aid. Engage the
        // recovery ladder at the current dt instead of dying at dt_min.
        const bool engage =
            opts.recovery.enabled &&
            (nr.singular || ++backoffs >= opts.recovery.retry_budget ||
             dt * 0.25 < opts.dt_min);
        if (engage) {
          v = v_prev;
          SolverDiagnostics diag;
          const NewtonResult rr = solve_newton_recovering(
              circuit, t + dt, dt, /*is_dc=*/false, v, v_prev, newton,
              opts.recovery, &diag, step_integrator);
          result.newton_iterations += static_cast<std::size_t>(rr.iterations);
          result.diagnostics = std::move(diag);
          if (rr.converged) {
            if (result.diagnostics.residual_gmin > 0.0) {
              sticky_gmin =
                  std::max(sticky_gmin, result.diagnostics.residual_gmin);
              newton.gmin = std::max(opts.newton.gmin, sticky_gmin);
              result.residual_gmin = sticky_gmin;
            }
            ++result.steps_recovered;
            // A ladder-rescued step is treated like a discontinuity: accept
            // it blind and BE-restart the history from it.
            have_estimate = false;
            pending_restart = true;
            accepted = true;
            continue;
          }
          result.failure = "Newton failed to converge at t=" +
                           std::to_string(t) + "; recovery ladder: " +
                           result.diagnostics.summary();
          return result;
        }
        dt *= 0.25;
        if (dt < opts.dt_min) {
          result.failure = "Newton failed to converge at t=" +
                           std::to_string(t) + " with dt at dt_min";
          return result;
        }
        continue;
      }
      // LTE accept/reject. The first step after a restart has no history
      // (points() == 1) and is accepted blind — which is why restarts also
      // reset dt to dt_init.
      if (lte && hist.points() >= 2) {
        const double milne = milne_factor(step_integrator,
                                          std::min(corr_order, hist.points() - 1),
                                          dt, hist.h1(), hist.h2());
        r = error_ratio(v, v_prev, v_pred, milne, n_node, opts);
        have_estimate = true;
        if (r > 1.0 && dt > opts.dt_min * (1.0 + 1e-12)) {
          ++result.steps_rejected;
          const double shrink = std::clamp(
              0.9 * std::pow(std::max(r, 1e-10), -1.0 / (corr_order + 1)),
              0.1, 0.9);
          dt = std::max(dt * shrink, opts.dt_min);
          predictor_guess_failed = false;
          continue;
        }
      }
      accepted = true;
    }

    // Event location: a device whose event function went positive →
    // non-positive across the step has a state change inside it. Bisect dt
    // until the bracket is tighter than event_time_tol and land on the
    // upper end — just past the crossing, so the commit below latches the
    // new state — then restart like a breakpoint.
    if (use_events) {
      const auto eval_events = [&](double step, const std::vector<double>& sol) {
        const StampContext ec(t + step, step, /*is_dc=*/false, n_node, &sol,
                              &v_prev, step_integrator);
        for (std::size_t i = 0; i < devs.size(); ++i)
          f_end[i] = devs[i]->event_function(ec);
      };
      const auto crossed = [&]() {
        for (std::size_t i = 0; i < devs.size(); ++i)
          if (std::isfinite(f_start[i]) && f_start[i] > 0.0 &&
              f_end[i] <= 0.0)
            return true;
        return false;
      };
      eval_events(dt, v);
      if (crossed()) {
        double lo = 0.0;
        double hi = dt;
        std::vector<double> v_hi = v;  // converged solution at t + hi
        while (hi - lo > opts.event_time_tol) {
          const double mid = 0.5 * (lo + hi);
          if (mid <= opts.dt_min) break;
          if (lte && opts.warm_start && hist.points() >= 2)
            hist.predict(t + mid, corr_order, v);
          else
            v = v_prev;
          NewtonResult nr = solve_newton(circuit, t + mid, mid, /*is_dc=*/false,
                                         v, v_prev, newton,
                                         step_integrator);
          result.newton_iterations += static_cast<std::size_t>(nr.iterations);
          if (!nr.converged) {
            v = v_prev;
            nr = solve_newton(circuit, t + mid, mid, /*is_dc=*/false, v,
                              v_prev, newton, step_integrator);
            result.newton_iterations += static_cast<std::size_t>(nr.iterations);
          }
          if (!nr.converged) break;  // keep the current (converged) bracket
          eval_events(mid, v);
          if (crossed()) {
            hi = mid;
            v_hi = v;
          } else {
            lo = mid;
          }
        }
        dt = hi;
        v = v_hi;
        have_estimate = false;  // the landed step is shorter than judged
        ++result.events_located;
        pending_restart = true;
      }
    }

    t += dt;
    ++result.steps_taken;
    dt_last = dt;

    // Commit device state and integrate energies at the accepted point
    // (same integrator the step was solved with, so companion-current
    // state stays consistent).
    StampContext ctx(t, dt, /*is_dc=*/false, n_node, &v, &v_prev,
                     step_integrator);
    for (Device* dev : devs) dev->commit(ctx);
    for (std::size_t i = 0; i < devs.size(); ++i) {
      const double pd = devs[i]->delivered_power(ctx);
      acc_delivered[i] += 0.5 * (prev_delivered[i] + pd) * dt;
      prev_delivered[i] = pd;
      const double pp = devs[i]->power(ctx);
      acc_dissipated[i] += 0.5 * (prev_dissipated[i] + pp) * dt;
      prev_dissipated[i] = pp;
    }

    if (opts.record) record_sample(t, v);
    if (lte) hist.push(t, v);
    v_prev = v;

    if (lte) {
      const double fac = have_estimate
                             ? pi_growth(r, r_prev, corr_order, opts.dt_grow_max)
                             : opts.dt_grow_max;
      dt = std::min(dt * fac, opts.dt_max);
      if (have_estimate) r_prev = r;
    } else {
      dt = std::min(dt * opts.dt_grow, opts.dt_max);
    }
  }

  for (std::size_t i = 0; i < devs.size(); ++i) {
    if (acc_delivered[i] != 0.0 || devs[i]->branch_count() > 0)
      result.source_energy_[devs[i]->name()] += acc_delivered[i];
    if (acc_dissipated[i] != 0.0)
      result.dissipation_[devs[i]->name()] += acc_dissipated[i];
  }

  result.finished = true;
  log::info("transient done: steps=", result.steps_taken,
            " rejected=", result.steps_rejected,
            " events=", result.events_located,
            " newton_iters=", result.newton_iterations,
            " unknowns=", circuit.unknown_count());
  return result;
}

}  // namespace nemtcam::spice
