#include "spice/Transient.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/Expect.h"
#include "util/Log.h"

namespace nemtcam::spice {

namespace {

// Maps a raw unknown index to its sample column: identity when the full
// vector was recorded, else a lookup in recorded_unknowns.
std::size_t sample_column(const std::vector<std::size_t>& recorded,
                          std::size_t unknown) {
  if (recorded.empty()) return unknown;
  const auto it = std::find(recorded.begin(), recorded.end(), unknown);
  NEMTCAM_EXPECT_MSG(it != recorded.end(),
                     "unknown was not probed during this transient run");
  return static_cast<std::size_t>(it - recorded.begin());
}

}  // namespace

Trace TransientResult::node_trace(NodeId n) const {
  NEMTCAM_EXPECT(n != kGround);
  NEMTCAM_EXPECT(n - 1 < n_node_unknowns);
  const std::size_t col =
      sample_column(recorded_unknowns, static_cast<std::size_t>(n - 1));
  std::vector<double> vals;
  vals.reserve(samples.size());
  for (const auto& s : samples) vals.push_back(s[col]);
  return Trace(times, std::move(vals));
}

Trace TransientResult::branch_trace(BranchId b) const {
  NEMTCAM_EXPECT(b >= 0);
  const std::size_t col = sample_column(
      recorded_unknowns, static_cast<std::size_t>(n_node_unknowns + b));
  std::vector<double> vals;
  vals.reserve(samples.size());
  for (const auto& s : samples) vals.push_back(s[col]);
  return Trace(times, std::move(vals));
}

double TransientResult::source_energy(const std::string& device_name) const {
  const auto it = source_energy_.find(device_name);
  NEMTCAM_EXPECT_MSG(it != source_energy_.end(),
                     "no energy recorded for source '" + device_name + "'");
  return it->second;
}

double TransientResult::total_source_energy() const {
  double total = 0.0;
  for (const auto& [name, e] : source_energy_) {
    (void)name;
    total += e;
  }
  return total;
}

double TransientResult::device_dissipation(const std::string& device_name) const {
  const auto it = dissipation_.find(device_name);
  NEMTCAM_EXPECT_MSG(it != dissipation_.end(),
                     "no dissipation recorded for device '" + device_name + "'");
  return it->second;
}

TransientResult run_transient(Circuit& circuit, const TransientOptions& opts) {
  return run_transient_from(circuit, circuit.initial_state(), opts);
}

TransientResult run_transient_from(Circuit& circuit, std::vector<double> v0,
                                   const TransientOptions& opts) {
  NEMTCAM_EXPECT(opts.t_end > 0.0);
  NEMTCAM_EXPECT(opts.dt_init > 0.0 && opts.dt_min > 0.0 && opts.dt_max > 0.0);
  NEMTCAM_EXPECT(v0.size() == static_cast<std::size_t>(circuit.unknown_count()));

  TransientResult result;
  result.n_node_unknowns = circuit.node_unknowns();

  // Collect and sort source breakpoints.
  std::set<double> bp_set;
  for (const auto& dev : circuit.devices())
    for (double t : dev->breakpoints(opts.t_end))
      if (t > 0.0 && t < opts.t_end) bp_set.insert(t);
  bp_set.insert(opts.t_end);
  std::vector<double> breakpoints(bp_set.begin(), bp_set.end());

  std::vector<double> v_prev = std::move(v0);
  std::vector<double> v = v_prev;
  double t = 0.0;
  double dt = opts.dt_init;

  // Per-device previous power sample for trapezoidal energy integration.
  std::vector<Device*> devs;
  devs.reserve(circuit.devices().size());
  for (const auto& dev : circuit.devices()) devs.push_back(dev.get());
  std::vector<double> prev_delivered(devs.size(), 0.0);
  std::vector<double> prev_dissipated(devs.size(), 0.0);
  std::vector<double> acc_delivered(devs.size(), 0.0);
  std::vector<double> acc_dissipated(devs.size(), 0.0);
  {
    StampContext ctx0(0.0, 0.0, /*is_dc=*/false, circuit.node_unknowns(),
                      &v_prev, &v_prev);
    for (std::size_t i = 0; i < devs.size(); ++i) {
      prev_delivered[i] = devs[i]->delivered_power(ctx0);
      prev_dissipated[i] = devs[i]->power(ctx0);
    }
  }

  // Probe recording: store only the requested unknowns per step.
  if (!opts.probe_nodes.empty() || !opts.probe_branches.empty()) {
    for (NodeId n : opts.probe_nodes) {
      NEMTCAM_EXPECT(n != kGround && n - 1 < circuit.node_unknowns());
      result.recorded_unknowns.push_back(static_cast<std::size_t>(n - 1));
    }
    for (BranchId b : opts.probe_branches) {
      NEMTCAM_EXPECT(b >= 0 && b < circuit.branch_unknowns());
      result.recorded_unknowns.push_back(
          static_cast<std::size_t>(circuit.node_unknowns() + b));
    }
  }
  const auto record_sample = [&result](double time,
                                       const std::vector<double>& full) {
    result.times.push_back(time);
    if (result.recorded_unknowns.empty()) {
      result.samples.push_back(full);
      return;
    }
    std::vector<double> row;
    row.reserve(result.recorded_unknowns.size());
    for (std::size_t u : result.recorded_unknowns) row.push_back(full[u]);
    result.samples.push_back(std::move(row));
  };

  if (opts.record) record_sample(0.0, v_prev);

  std::size_t next_bp = 0;
  const double t_eps = 1e-18;

  while (t < opts.t_end - t_eps) {
    // Respect device hints and land exactly on the next breakpoint.
    double dt_cap = opts.dt_max;
    for (const auto& dev : circuit.devices())
      dt_cap = std::min(dt_cap, dev->max_dt_hint());
    dt = std::min(dt, dt_cap);
    while (next_bp < breakpoints.size() && breakpoints[next_bp] <= t + t_eps)
      ++next_bp;
    if (next_bp < breakpoints.size()) {
      const double to_bp = breakpoints[next_bp] - t;
      if (dt >= to_bp - t_eps) dt = to_bp;
      // Avoid a sliver step right after a breakpoint landing.
      else if (to_bp - dt < opts.dt_min) dt = to_bp;
    }
    dt = std::min(dt, opts.t_end - t);

    // The very first step (and any step right after a source breakpoint)
    // runs Backward Euler even in trapezoidal mode: the trapezoidal
    // companion needs a consistent previous current, which a discontinuity
    // invalidates — the classic SPICE BE-restart rule.
    const bool at_discontinuity =
        result.steps_taken == 0 ||
        (next_bp > 0 && next_bp <= breakpoints.size() &&
         std::fabs(t - breakpoints[next_bp - 1]) <= t_eps);
    const Integrator step_integrator =
        at_discontinuity ? Integrator::BackwardEuler : opts.integrator;

    // Attempt the step, halving on Newton failure.
    bool accepted = false;
    while (!accepted) {
      v = v_prev;  // initial guess: previous solution
      const NewtonResult nr = solve_newton(circuit, t + dt, dt, /*is_dc=*/false,
                                           v, v_prev, opts.newton,
                                           step_integrator);
      result.newton_iterations += static_cast<std::size_t>(nr.iterations);
      if (nr.converged) {
        accepted = true;
      } else {
        dt *= 0.25;
        if (dt < opts.dt_min) {
          result.failure = "Newton failed to converge at t=" +
                           std::to_string(t) + " with dt at dt_min";
          return result;
        }
      }
    }

    t += dt;
    ++result.steps_taken;

    // Commit device state and integrate energies at the accepted point
    // (same integrator the step was solved with, so companion-current
    // state stays consistent).
    StampContext ctx(t, dt, /*is_dc=*/false, circuit.node_unknowns(), &v,
                     &v_prev, step_integrator);
    for (Device* dev : devs) dev->commit(ctx);
    for (std::size_t i = 0; i < devs.size(); ++i) {
      const double pd = devs[i]->delivered_power(ctx);
      acc_delivered[i] += 0.5 * (prev_delivered[i] + pd) * dt;
      prev_delivered[i] = pd;
      const double pp = devs[i]->power(ctx);
      acc_dissipated[i] += 0.5 * (prev_dissipated[i] + pp) * dt;
      prev_dissipated[i] = pp;
    }

    if (opts.record) record_sample(t, v);
    v_prev = v;
    dt = std::min(dt * opts.dt_grow, opts.dt_max);
  }

  for (std::size_t i = 0; i < devs.size(); ++i) {
    if (acc_delivered[i] != 0.0 || devs[i]->branch_count() > 0)
      result.source_energy_[devs[i]->name()] += acc_delivered[i];
    if (acc_dissipated[i] != 0.0)
      result.dissipation_[devs[i]->name()] += acc_dissipated[i];
  }

  result.finished = true;
  log::info("transient done: steps=", result.steps_taken,
            " newton_iters=", result.newton_iterations,
            " unknowns=", circuit.unknown_count());
  return result;
}

}  // namespace nemtcam::spice
