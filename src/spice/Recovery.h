// Convergence-recovery ladder: bounded escalation when a Newton solve
// fails, with structured diagnostics instead of a bare bool.
//
// A hard circuit — a stuck relay shorting a storage node, a broken beam
// leaving a node floating, a near-singular stamp, a bistable latch solved
// from a symmetric guess — used to kill the whole analysis: solve_newton
// silently returned converged = false, or SparseLu escaped as a raw
// SingularMatrixError. The ladder retries the same solve under
// progressively stronger convergence aids, in a fixed order chosen so the
// cheap, least-intrusive aids run first:
//
//   1. Newton          — the caller's options, unchanged (the fast path).
//   2. damped-newton   — much tighter per-iteration damping and a larger
//                        iteration budget; rescues oscillating iterations
//                        (latch metastability, exponential-model overshoot).
//   3. gmin-ramp       — a conductance to ground on every node, relaxed
//                        rung by rung toward the caller's gmin. Rescues
//                        singular systems (floating nodes from stuck-open
//                        contacts) and wild exponential stamps. If only a
//                        nonzero gmin floor converges, that solution is
//                        accepted and the floor reported — the standard
//                        SPICE answer to a genuinely floating node.
//   4. source-stepping — DC only: ramp every independent source from 10%
//                        to full drive, warm-starting each rung from the
//                        last. Rescues bistable/positive-feedback circuits
//                        where full drive from a cold guess has no Newton
//                        path.
//   5. full-refactor   — the legacy no-assembly-cache path: rebuild the
//                        matrix and run a fresh full factorization (fresh
//                        pivot order) every iteration. Rescues pivot-order
//                        degeneration that the cached symbolic LU cannot.
//
// Every attempt is recorded in a SolverDiagnostics so a failure is
// attributable: which stage, which gmin, which node refused to settle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spice/Newton.h"

namespace nemtcam::spice {

enum class LadderStage {
  Newton = 0,      // plain solve with the caller's options
  DampedNewton,    // tighter damping + larger iteration budget
  GminRamp,        // gmin relaxation toward the caller's gmin
  SourceStepping,  // DC only: source continuation from 10% drive
  FullRefactor,    // legacy path: full factorization every iteration
};

const char* stage_name(LadderStage s);

// One solve attempt inside the ladder (the iteration trace).
struct LadderAttempt {
  LadderStage stage = LadderStage::Newton;
  double gmin = 0.0;          // gmin in effect for this attempt
  double source_scale = 1.0;  // source drive fraction (source stepping)
  int iterations = 0;
  double max_delta = 0.0;
  bool converged = false;
  bool singular = false;
};

struct SolverDiagnostics {
  // A stage beyond plain Newton produced the returned solution.
  bool recovered = false;
  LadderStage converged_stage = LadderStage::Newton;
  // Deepest stage tried when the whole ladder failed.
  LadderStage failure_stage = LadderStage::Newton;
  // The unknown with the largest |Δv| at the last failed attempt and its
  // node name ("b<k>" for branch unknowns); the classic "which node is
  // floating / which latch is metastable" question.
  int worst_unknown = -1;
  std::string worst_node;
  double worst_delta = 0.0;
  // gmin floor the accepted solution needed (0 = none): nonzero means a
  // genuinely floating node is being held by the ladder, not the circuit.
  double residual_gmin = 0.0;
  double last_gmin = 0.0;  // gmin in effect at the final attempt
  bool saw_singular = false;
  std::vector<LadderAttempt> attempts;

  // One-line human summary ("recovered via gmin-ramp (gmin=1e-09) after
  // 3 attempts" / "failed at source-stepping, worst node 'stg1_0'").
  std::string summary() const;
};

struct RecoveryOptions {
  bool enabled = true;
  // Upper bound on ladder solve attempts per recovery (all stages
  // combined); also bounds the per-step Newton dt backoffs in
  // run_transient before the ladder is engaged.
  int retry_budget = 12;
  // Damping limit used by the recovery stages (volts).
  double damp_tight = 0.05;
  // Iteration-budget multiplier applied to the caller's max_iterations in
  // recovery stages.
  int max_iterations_scale = 4;
  // gmin relaxation schedule, descending; the caller's own gmin is
  // appended as the final rung. If only an intermediate rung converges,
  // the smallest converging rung is accepted as a residual gmin floor.
  std::vector<double> gmin_ramp = {1e-3, 1e-5, 1e-7, 1e-9, 1e-12};
  // Number of source-continuation rungs between 10% and full drive.
  int source_steps = 6;
};

// Solves like solve_newton but escalates through the recovery ladder on
// failure. `v` carries the initial guess in and the best solution out (on
// total failure: the last partial iterate). When `diag` is non-null the
// attempt trace and failure attribution are recorded there; names are
// resolved through `circuit`.
NewtonResult solve_newton_recovering(Circuit& circuit, double t, double dt,
                                     bool is_dc, std::vector<double>& v,
                                     const std::vector<double>& v_prev,
                                     const NewtonOptions& opts,
                                     const RecoveryOptions& recovery,
                                     SolverDiagnostics* diag,
                                     Integrator integrator =
                                         Integrator::BackwardEuler);

// Resolves an unknown index to a printable name: node name for node
// unknowns, "b<k>" for branch unknowns, "" for -1.
std::string unknown_name(const Circuit& circuit, int unknown);

}  // namespace nemtcam::spice
