// Derives a bordered-block-diagonal partition of a circuit's MNA
// unknowns from device ownership.
//
// The array builder knows which devices belong to which row (and which —
// drivers, rails, line parasitics — are shared), and records an owner id
// per device in circuit order. From that, the partition falls out
// structurally via Device::topology():
//   - a node touched only by devices of one owner belongs to that
//     owner's block;
//   - a node touched by several owners, or by any shared device
//     (owner -1), is a border unknown;
//   - a branch unknown follows its device's owner (shared → border).
// Devices stamp only at their reported terminals and their own branches,
// so no matrix entry can couple two different blocks: a device of owner k
// only ever touches block-k or border unknowns. BbdSolver re-verifies
// this invariant entry-by-entry during its symbolic split.
#pragma once

#include <vector>

#include "linalg/BbdSolver.h"
#include "spice/Circuit.h"

namespace nemtcam::spice {

// owner_of_device[i] is the owner of circuit.devices()[i]: a block id in
// [0, n_owners) or -1 for shared devices. Owners need not be rows — the
// array fixture also gives each line driver its own one-branch block so
// the border holds only genuinely shared nodes.
linalg::BbdPartition make_bbd_partition(
    const Circuit& circuit, const std::vector<int>& owner_of_device,
    int n_owners);

}  // namespace nemtcam::spice
