#include "spice/Circuit.h"

namespace nemtcam::spice {

namespace {
const std::string kGroundName = "0";
}

NodeId Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = name_to_id_.find(name);
  if (it != name_to_id_.end()) return it->second;
  names_.push_back(name);
  const NodeId id = static_cast<NodeId>(names_.size());
  name_to_id_.emplace(name, id);
  return id;
}

NodeId Circuit::make_node() {
  return node("_n" + std::to_string(anon_counter_++));
}

Device* Circuit::find(const std::string& name) {
  for (const auto& dev : devices_)
    if (dev->name() == name) return dev.get();
  return nullptr;
}

bool Circuit::has_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return true;
  return name_to_id_.count(name) > 0;
}

bool Circuit::rebind_source(const std::string& name,
                            std::unique_ptr<Waveform> wave) {
  Device* dev = find(name);
  if (dev == nullptr) return false;
  return dev->rebind_wave(std::move(wave));
}

void Circuit::reset_device_states() {
  for (const auto& dev : devices_) dev->reset_state();
}

const std::string& Circuit::node_name(NodeId n) const {
  if (n == kGround) return kGroundName;
  NEMTCAM_EXPECT(n >= 1 && static_cast<std::size_t>(n) <= names_.size());
  return names_[static_cast<std::size_t>(n - 1)];
}

void Circuit::set_ic(NodeId n, double volts) {
  NEMTCAM_EXPECT_MSG(n != kGround, "cannot set an IC on ground");
  ics_[n] = volts;
}

std::vector<double> Circuit::initial_state() const {
  std::vector<double> v(static_cast<std::size_t>(unknown_count()), 0.0);
  for (const auto& [n, volts] : ics_)
    v[static_cast<std::size_t>(n - 1)] = volts;
  return v;
}

}  // namespace nemtcam::spice
