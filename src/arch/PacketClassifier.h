// Multi-field packet classifier on a ternary CAM.
//
// Rules match on (src prefix, dst prefix, protocol, dst-port range); port
// ranges are expanded into the minimal set of ternary prefixes, the
// standard TCAM range-expansion technique. First (lowest row) matching
// rule wins, so callers insert rules in priority order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/DynamicTcam.h"

namespace nemtcam::arch {

struct ClassifierRule {
  std::uint32_t src_prefix = 0;
  int src_len = 0;               // 0 = any
  std::uint32_t dst_prefix = 0;
  int dst_len = 0;
  std::optional<std::uint8_t> protocol;  // nullopt = any
  std::uint16_t port_lo = 0;
  std::uint16_t port_hi = 0xffff;
  std::string action;            // e.g. "accept", "drop", "queue:3"
};

struct PacketHeader {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint8_t protocol = 0;
  std::uint16_t dst_port = 0;
};

// Expands [lo, hi] into the minimal covering set of (value, prefix_len)
// pairs over 16-bit ports. Exposed for tests and the classifier bench.
std::vector<std::pair<std::uint16_t, int>> expand_port_range(std::uint16_t lo,
                                                             std::uint16_t hi);

class PacketClassifier {
 public:
  // Key layout: src(32) | dst(32) | proto(8) | port(16) = 88 ternary bits.
  static constexpr int kKeyWidth = 88;

  PacketClassifier(int capacity_rows,
                   core::TcamTech tech = core::TcamTech::Nem3T2N);

  // Appends a rule (lower priority than all existing ones). Returns the
  // number of TCAM rows consumed (range expansion may need several), or 0
  // if the table lacked space (no partial insert).
  int add_rule(const ClassifierRule& rule);

  // Classifies a packet; nullopt = no rule matched.
  std::optional<std::string> classify(const PacketHeader& pkt);

  int rows_used() const noexcept { return next_row_; }
  int rule_count() const noexcept { return static_cast<int>(actions_.size()); }
  const core::TcamLedger& ledger() const { return tcam_.ledger(); }

 private:
  core::TernaryWord key_of(const PacketHeader& pkt) const;

  core::DynamicTcam tcam_;
  int next_row_ = 0;
  std::vector<std::string> row_action_;  // action per TCAM row
  std::vector<std::string> actions_;     // one per logical rule
};

}  // namespace nemtcam::arch
