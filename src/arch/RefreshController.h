// Refresh-policy study: how much do refresh operations interfere with the
// normal search stream?
//
// This is the architectural argument of the paper's introduction: a
// conventional dynamic TCAM refreshes row by row (N blocking operations
// per retention period, each a read + write-back), stalling search
// traffic; one-shot refresh costs a single short operation per period.
// The controller replays a Poisson or periodic search-request trace
// against either policy and reports throughput, stall statistics, and
// refresh energy.
#pragma once

#include <cstdint>
#include <vector>

#include "core/EnergyModel.h"

namespace nemtcam::arch {

enum class RefreshPolicy {
  None,       // static technology (SRAM) or decay ignored
  RowByRow,   // N row operations spread over each retention period
  OneShot,    // single whole-array operation per retention period
};

const char* policy_name(RefreshPolicy p);

// Fault-aware scheduling knobs fed from a fault campaign's report:
// leaky (Weak) rows lose charge faster than the array's rated retention,
// so they get supplemental row refreshes on a shortened period; Dead rows
// hold no data worth refreshing and are excluded from the schedule (and
// from the one-shot op's per-row energy share). Retired rows (remapped
// onto spares by BankedTcam, or unused spares) carry no live data either
// and are excluded the same way — see BankedTcam::refresh_awareness.
struct FaultAwareness {
  std::vector<int> weak_rows;     // refreshed every weak_retention_scale·T
  std::vector<int> dead_rows;     // excluded from refresh entirely
  std::vector<int> retired_rows;  // remapped away / unused spares: excluded
  // Fraction of the rated retention time a weak row can actually hold
  // charge (gate-leak faults drain the floating gate early).
  double weak_retention_scale = 0.25;

  // Cleaned copy with the scheduling invariants enforced: each list is
  // sorted and deduplicated, out-of-range indices are dropped, and
  // precedence is applied — a row listed both weak and dead is dead (one
  // stuck cell outranks any number of leaky ones), and a retired row
  // drops out of the weak *and* dead schedules (its data lives on a spare
  // now; supplemental refreshes of the abandoned physical row would be
  // pure waste). simulate_refresh_interference normalizes internally, so
  // callers may pass raw campaign lists.
  FaultAwareness normalized(int rows) const;
};

struct RefreshSimConfig {
  core::TcamTech tech = core::TcamTech::Nem3T2N;
  RefreshPolicy policy = RefreshPolicy::OneShot;
  int rows = 64;
  int width = 64;
  double sim_time = 200e-6;         // total simulated wall-clock
  double search_rate_hz = 100e6;    // offered search load (mean rate)
  bool poisson_arrivals = true;     // false = perfectly periodic
  std::uint64_t seed = 1;
  // Row-by-row refreshes are spread uniformly over the retention period
  // (distributed refresh), as DRAM controllers do.
  FaultAwareness faults;            // empty lists = healthy array
  // Array-wide retention derating (aging: gate leakage grows with wear,
  // shrinking how long every cell holds charge). Scales the technology's
  // rated retention time before the refresh period is derived from it.
  double retention_scale = 1.0;
  // Policy knob: refresh period as a fraction of the (derated) retention
  // time. <1 refreshes early (guard band), >1 overdrives retention — a
  // lifetime-sweep axis, not a recommended operating point.
  double refresh_period_scale = 1.0;
};

struct RefreshSimResult {
  std::uint64_t searches_issued = 0;
  std::uint64_t searches_served = 0;
  std::uint64_t refresh_ops = 0;       // row ops or one-shot ops
  std::uint64_t weak_refresh_ops = 0;  // supplemental weak-row refreshes
  int rows_excluded = 0;               // dead rows dropped from the schedule
  double refresh_energy = 0.0;         // J
  double refresh_busy_time = 0.0;      // s the array was blocked refreshing
  double total_search_wait = 0.0;      // s of queueing delay due to refresh
  double max_search_wait = 0.0;        // s
  double avg_search_wait() const {
    return searches_served ? total_search_wait / searches_served : 0.0;
  }
  // Fraction of array time spent refreshing.
  double refresh_duty(double sim_time) const {
    return refresh_busy_time / sim_time;
  }
};

RefreshSimResult simulate_refresh_interference(const RefreshSimConfig& cfg);

}  // namespace nemtcam::arch
