// Refresh-policy study: how much do refresh operations interfere with the
// normal search stream?
//
// This is the architectural argument of the paper's introduction: a
// conventional dynamic TCAM refreshes row by row (N blocking operations
// per retention period, each a read + write-back), stalling search
// traffic; one-shot refresh costs a single short operation per period.
// The controller replays a Poisson or periodic search-request trace
// against either policy and reports throughput, stall statistics, and
// refresh energy.
#pragma once

#include <cstdint>
#include <vector>

#include "core/EnergyModel.h"

namespace nemtcam::arch {

enum class RefreshPolicy {
  None,       // static technology (SRAM) or decay ignored
  RowByRow,   // N row operations spread over each retention period
  OneShot,    // single whole-array operation per retention period
};

const char* policy_name(RefreshPolicy p);

struct RefreshSimConfig {
  core::TcamTech tech = core::TcamTech::Nem3T2N;
  RefreshPolicy policy = RefreshPolicy::OneShot;
  int rows = 64;
  int width = 64;
  double sim_time = 200e-6;         // total simulated wall-clock
  double search_rate_hz = 100e6;    // offered search load (mean rate)
  bool poisson_arrivals = true;     // false = perfectly periodic
  std::uint64_t seed = 1;
  // Row-by-row refreshes are spread uniformly over the retention period
  // (distributed refresh), as DRAM controllers do.
};

struct RefreshSimResult {
  std::uint64_t searches_issued = 0;
  std::uint64_t searches_served = 0;
  std::uint64_t refresh_ops = 0;       // row ops or one-shot ops
  double refresh_energy = 0.0;         // J
  double refresh_busy_time = 0.0;      // s the array was blocked refreshing
  double total_search_wait = 0.0;      // s of queueing delay due to refresh
  double max_search_wait = 0.0;        // s
  double avg_search_wait() const {
    return searches_served ? total_search_wait / searches_served : 0.0;
  }
  // Fraction of array time spent refreshing.
  double refresh_duty(double sim_time) const {
    return refresh_busy_time / sim_time;
  }
};

RefreshSimResult simulate_refresh_interference(const RefreshSimConfig& cfg);

}  // namespace nemtcam::arch
