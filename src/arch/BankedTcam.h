// Multi-bank TCAM: capacity scaling with staggered one-shot refresh.
//
// A single 3T2N array refreshes itself in one short operation, but during
// that operation it cannot serve searches. Banking lets a large table
// stagger the banks' refresh instants so that at most one bank is ever
// blocked; a search that hits the refreshing bank simply waits the
// sub-nanosecond op. Rows are striped across banks; priorities follow the
// global row index (bank-major), so lower global indices win.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/DynamicTcam.h"

namespace nemtcam::arch {

class BankedTcam {
 public:
  BankedTcam(core::TcamTech tech, int banks, int rows_per_bank, int width);

  int banks() const noexcept { return static_cast<int>(banks_.size()); }
  int rows_per_bank() const noexcept { return rows_per_bank_; }
  int capacity() const noexcept { return banks() * rows_per_bank_; }
  int width() const noexcept { return width_; }

  // Global-row addressing: row = bank * rows_per_bank + local.
  void write(int global_row, const core::TernaryWord& word);
  void erase(int global_row);

  // Parallel search across banks; global row indices, ascending.
  std::vector<int> search(const core::TernaryWord& key);
  std::optional<int> search_first(const core::TernaryWord& key);

  // Advances all banks' clocks together (staggered refreshes fire inside).
  void advance(double seconds);

  // Aggregated ledger across banks.
  core::TcamLedger total_ledger() const;

  core::DynamicTcam& bank(int i) { return *banks_.at(static_cast<std::size_t>(i)); }

 private:
  std::pair<int, int> split(int global_row) const;

  int rows_per_bank_;
  int width_;
  std::vector<std::unique_ptr<core::DynamicTcam>> banks_;
};

}  // namespace nemtcam::arch
