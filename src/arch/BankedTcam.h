// Multi-bank TCAM: capacity scaling with staggered one-shot refresh and
// spare-row graceful degradation.
//
// A single 3T2N array refreshes itself in one short operation, but during
// that operation it cannot serve searches. Banking lets a large table
// stagger the banks' refresh instants so that at most one bank is ever
// blocked; a search that hits the refreshing bank simply waits the
// sub-nanosecond op. Rows are striped across banks; priorities follow the
// global row index (bank-major), so lower global indices win.
//
// Degradation: the top `spare_rows` physical rows of the global row space
// can be held back as spares. Logical rows are addressed through a remap
// table; a row reported Dead by a fault campaign (or worn past its
// endurance rating) is retired onto the next free spare, its contents
// migrated, and the failing physical row erased so it can never match.
// When the spare pool runs dry the row stays where it is — the array
// degrades (match errors on that row) instead of failing.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "arch/Endurance.h"
#include "arch/RefreshController.h"
#include "core/DynamicTcam.h"
#include "fault/FaultModel.h"
#include "util/Expect.h"

namespace nemtcam::arch {

class BankedTcam {
 public:
  BankedTcam(core::TcamTech tech, int banks, int rows_per_bank, int width,
             int spare_rows = 0);

  int banks() const noexcept { return static_cast<int>(banks_.size()); }
  int rows_per_bank() const noexcept { return rows_per_bank_; }
  // Physical rows, spares included.
  int capacity() const noexcept { return banks() * rows_per_bank_; }
  // Rows addressable by write/erase/search.
  int logical_capacity() const noexcept { return logical_rows_; }
  int width() const noexcept { return width_; }
  int spare_rows_free() const noexcept { return capacity() - next_spare_; }
  int retired_rows() const noexcept { return retired_; }

  // --- Physical/logical bookkeeping (lifetime engine, refresh bridge) ---
  // Physical row a logical row currently lives on.
  int physical_row(int global_row) const { return physical_of(global_row); }
  // Logical row stored on a physical row; -1 for unused spares and
  // abandoned (retired-from) rows.
  int logical_at(int physical_row) const {
    NEMTCAM_EXPECT(physical_row >= 0 && physical_row < capacity());
    return logical_of_[static_cast<std::size_t>(physical_row)];
  }
  // True once a physical row has been retired from (its logical row was
  // remapped away). Distinct from "unused spare": both map to no logical
  // row, but a retired row is known-bad.
  bool retired_physical(int physical_row) const {
    NEMTCAM_EXPECT(physical_row >= 0 && physical_row < capacity());
    return retired_physical_[static_cast<std::size_t>(physical_row)];
  }

  // Logical global-row addressing (physical row = bank * rows_per_bank +
  // local after remapping).
  void write(int global_row, const core::TernaryWord& word);
  void erase(int global_row);

  // Parallel search across banks; logical global row indices, ascending.
  std::vector<int> search(const core::TernaryWord& key);
  std::optional<int> search_first(const core::TernaryWord& key);

  // --- Graceful degradation -------------------------------------------
  // Retires a logical row onto the next free spare, migrating any stored
  // word. Returns false when the spare pool is exhausted (the row keeps
  // its failing physical location).
  bool retire_row(int global_row);
  // Retires every row the fault report classifies Dead (rows containing a
  // stuck relay). Returns the number actually remapped.
  int apply_fault_report(const fault::FaultReport& report);
  // Retires every row whose worst-cell wear is at or past `wear_limit` of
  // the technology's rated cycles.
  int apply_endurance(const EnduranceTracker& tracker,
                      double wear_limit = 1.0);

  // Bridge to the refresh controller: classifies every PHYSICAL row for
  // fault-aware refresh scheduling. Rows holding no live data (abandoned
  // retired rows and still-unused spares) go to retired_rows; live rows
  // are classified by the physical-space fault report (Dead → dead_rows,
  // Weak → weak_rows). A remapped row's spare inherits the weak period iff
  // the spare itself is degraded — health follows the physical silicon,
  // not the logical address. Result is pre-normalized over capacity().
  FaultAwareness refresh_awareness(const fault::FaultReport& physical_report,
                                   double weak_retention_scale = 0.25) const;

  // Advances all banks' clocks together (staggered refreshes fire inside).
  void advance(double seconds);

  // Aggregated ledger across banks.
  core::TcamLedger total_ledger() const;

  core::DynamicTcam& bank(int i) { return *banks_.at(static_cast<std::size_t>(i)); }

 private:
  std::pair<int, int> split(int physical_row) const;
  int physical_of(int global_row) const;

  int rows_per_bank_;
  int width_;
  int logical_rows_;
  int next_spare_;   // next unused spare physical row
  int retired_ = 0;  // rows successfully remapped onto spares
  std::vector<int> remap_;       // logical → physical
  std::vector<int> logical_of_;  // physical → logical (-1 = spare/retired)
  std::vector<bool> retired_physical_;  // physical rows retired from
  std::vector<std::unique_ptr<core::DynamicTcam>> banks_;
};

}  // namespace nemtcam::arch
