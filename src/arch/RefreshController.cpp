#include "arch/RefreshController.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/Expect.h"
#include "util/Random.h"

namespace nemtcam::arch {

const char* policy_name(RefreshPolicy p) {
  switch (p) {
    case RefreshPolicy::None: return "none";
    case RefreshPolicy::RowByRow: return "row-by-row";
    case RefreshPolicy::OneShot: return "one-shot";
  }
  return "?";
}

FaultAwareness FaultAwareness::normalized(int rows) const {
  const auto clean = [rows](std::vector<int> v) {
    std::erase_if(v, [rows](int r) { return r < 0 || r >= rows; });
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };
  FaultAwareness out;
  out.weak_retention_scale = weak_retention_scale;
  out.retired_rows = clean(retired_rows);
  out.dead_rows = clean(dead_rows);
  out.weak_rows = clean(weak_rows);
  // Retired rows carry no live data: drop them from both fault schedules.
  const auto remove_all = [](std::vector<int>& from,
                             const std::vector<int>& sorted_rm) {
    std::erase_if(from, [&](int r) {
      return std::binary_search(sorted_rm.begin(), sorted_rm.end(), r);
    });
  };
  remove_all(out.dead_rows, out.retired_rows);
  remove_all(out.weak_rows, out.retired_rows);
  // Dead trumps weak: one stuck cell outranks any number of leaky ones.
  remove_all(out.weak_rows, out.dead_rows);
  return out;
}

RefreshSimResult simulate_refresh_interference(const RefreshSimConfig& cfg) {
  NEMTCAM_EXPECT(cfg.sim_time > 0.0 && cfg.search_rate_hz > 0.0);
  NEMTCAM_EXPECT(cfg.retention_scale > 0.0 && cfg.refresh_period_scale > 0.0);
  const core::EnergyModel costs(cfg.tech, cfg.width, cfg.rows);
  util::Rng rng(cfg.seed);

  // Fault classification, row-indexed for the scheduler. Normalization
  // enforces precedence (retired > dead > weak) and dedupes, so raw
  // campaign lists are safe to pass in.
  const FaultAwareness faults = cfg.faults.normalized(cfg.rows);
  const auto row_flags = [&](const std::vector<int>& rows) {
    std::vector<bool> flags(static_cast<std::size_t>(cfg.rows), false);
    for (const int r : rows) flags[static_cast<std::size_t>(r)] = true;
    return flags;
  };
  // Retired and dead rows schedule identically (no refresh, no energy
  // share); they are only reported separately.
  std::vector<bool> dead = row_flags(faults.dead_rows);
  for (const int r : faults.retired_rows)
    dead[static_cast<std::size_t>(r)] = true;
  const std::vector<bool> weak = row_flags(faults.weak_rows);
  const int n_dead = static_cast<int>(faults.dead_rows.size()) +
                     static_cast<int>(faults.retired_rows.size());
  NEMTCAM_EXPECT(faults.weak_retention_scale > 0.0 &&
                 faults.weak_retention_scale <= 1.0);

  // Build the refresh schedule.
  struct RefreshOp {
    double start;
    double duration;
    double energy;
    bool weak_extra;
  };
  std::vector<RefreshOp> refresh_ops;
  if (cfg.policy != RefreshPolicy::None && costs.needs_refresh()) {
    const double period = costs.retention_time() * cfg.retention_scale *
                          cfg.refresh_period_scale;
    const double weak_period = period * faults.weak_retention_scale;
    if (cfg.policy == RefreshPolicy::OneShot) {
      // Dead rows carry no data: the one-shot op skips their share of the
      // recharge energy (its latency is array-parallel and unchanged).
      const double energy =
          costs.refresh_energy() *
          (1.0 - static_cast<double>(n_dead) / cfg.rows);
      for (double t = period * 0.5; t < cfg.sim_time; t += period)
        refresh_ops.push_back({t, costs.refresh_latency(), energy, false});
      // Leaky rows cannot wait a full period: they get supplemental
      // row-granularity refreshes between the one-shot ops.
      for (int r = 0; r < cfg.rows; ++r) {
        if (!weak[static_cast<std::size_t>(r)]) continue;
        for (double t = weak_period * (0.5 + r * 0.01); t < cfg.sim_time;
             t += weak_period)
          refresh_ops.push_back(
              {t, costs.write_latency(), costs.write_energy(), true});
      }
    } else {
      // Distributed row-by-row: rows refreshed evenly across each period.
      // Each op is a row read + write-back ≈ one row-write latency/energy.
      // Dead rows are dropped; weak rows cycle on their own shorter period.
      const double slice = period / cfg.rows;
      for (int r = 0; r < cfg.rows; ++r) {
        if (dead[static_cast<std::size_t>(r)]) continue;
        const bool w = weak[static_cast<std::size_t>(r)];
        const double row_period = w ? weak_period : period;
        for (double t = slice * (r + 0.5); t < cfg.sim_time; t += row_period)
          refresh_ops.push_back(
              {t, costs.write_latency(), costs.write_energy(), w});
      }
      std::sort(refresh_ops.begin(), refresh_ops.end(),
                [](const RefreshOp& a, const RefreshOp& b) {
                  return a.start < b.start;
                });
    }
  }
  if (!refresh_ops.empty() && !faults.weak_rows.empty() &&
      cfg.policy == RefreshPolicy::OneShot)
    std::sort(refresh_ops.begin(), refresh_ops.end(),
              [](const RefreshOp& a, const RefreshOp& b) {
                return a.start < b.start;
              });

  // Build the search arrival trace.
  std::vector<double> arrivals;
  {
    const double mean_gap = 1.0 / cfg.search_rate_hz;
    double t = 0.0;
    while (true) {
      const double gap = cfg.poisson_arrivals
                             ? -mean_gap * std::log(rng.uniform(1e-12, 1.0))
                             : mean_gap;
      t += gap;
      if (t >= cfg.sim_time) break;
      arrivals.push_back(t);
    }
  }

  // Single-resource replay: the array serves refreshes with priority (a
  // refresh cannot be deferred past its deadline) and searches in FIFO
  // order between them.
  RefreshSimResult out;
  out.searches_issued = arrivals.size();
  out.rows_excluded = n_dead;
  std::size_t next_refresh = 0;
  std::size_t next_search = 0;
  double busy_until = 0.0;

  while (next_refresh < refresh_ops.size() || next_search < arrivals.size()) {
    const bool refresh_due =
        next_refresh < refresh_ops.size() &&
        (next_search >= arrivals.size() ||
         refresh_ops[next_refresh].start <= arrivals[next_search]);
    if (refresh_due) {
      const RefreshOp& op = refresh_ops[next_refresh++];
      const double start = std::max(op.start, busy_until);
      busy_until = start + op.duration;
      out.refresh_busy_time += op.duration;
      out.refresh_energy += op.energy;
      ++out.refresh_ops;
      if (op.weak_extra) ++out.weak_refresh_ops;
    } else {
      const double arrival = arrivals[next_search++];
      const double start = std::max(arrival, busy_until);
      const double wait = start - arrival;
      busy_until = start + costs.search_latency();
      out.total_search_wait += wait;
      out.max_search_wait = std::max(out.max_search_wait, wait);
      ++out.searches_served;
    }
  }
  return out;
}

}  // namespace nemtcam::arch
