#include "arch/RefreshController.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/Expect.h"
#include "util/Random.h"

namespace nemtcam::arch {

const char* policy_name(RefreshPolicy p) {
  switch (p) {
    case RefreshPolicy::None: return "none";
    case RefreshPolicy::RowByRow: return "row-by-row";
    case RefreshPolicy::OneShot: return "one-shot";
  }
  return "?";
}

RefreshSimResult simulate_refresh_interference(const RefreshSimConfig& cfg) {
  NEMTCAM_EXPECT(cfg.sim_time > 0.0 && cfg.search_rate_hz > 0.0);
  const core::EnergyModel costs(cfg.tech, cfg.width, cfg.rows);
  util::Rng rng(cfg.seed);

  // Build the refresh schedule.
  struct RefreshOp {
    double start;
    double duration;
    double energy;
  };
  std::vector<RefreshOp> refresh_ops;
  if (cfg.policy != RefreshPolicy::None && costs.needs_refresh()) {
    const double period = costs.retention_time();
    if (cfg.policy == RefreshPolicy::OneShot) {
      for (double t = period * 0.5; t < cfg.sim_time; t += period)
        refresh_ops.push_back({t, costs.refresh_latency(), costs.refresh_energy()});
    } else {
      // Distributed row-by-row: rows refreshed evenly across each period.
      // Each op is a row read + write-back ≈ one row-write latency/energy.
      const double slice = period / cfg.rows;
      for (double t = slice * 0.5; t < cfg.sim_time; t += slice)
        refresh_ops.push_back({t, costs.write_latency(), costs.write_energy()});
    }
  }

  // Build the search arrival trace.
  std::vector<double> arrivals;
  {
    const double mean_gap = 1.0 / cfg.search_rate_hz;
    double t = 0.0;
    while (true) {
      const double gap = cfg.poisson_arrivals
                             ? -mean_gap * std::log(rng.uniform(1e-12, 1.0))
                             : mean_gap;
      t += gap;
      if (t >= cfg.sim_time) break;
      arrivals.push_back(t);
    }
  }

  // Single-resource replay: the array serves refreshes with priority (a
  // refresh cannot be deferred past its deadline) and searches in FIFO
  // order between them.
  RefreshSimResult out;
  out.searches_issued = arrivals.size();
  std::size_t next_refresh = 0;
  std::size_t next_search = 0;
  double busy_until = 0.0;

  while (next_refresh < refresh_ops.size() || next_search < arrivals.size()) {
    const bool refresh_due =
        next_refresh < refresh_ops.size() &&
        (next_search >= arrivals.size() ||
         refresh_ops[next_refresh].start <= arrivals[next_search]);
    if (refresh_due) {
      const RefreshOp& op = refresh_ops[next_refresh++];
      const double start = std::max(op.start, busy_until);
      busy_until = start + op.duration;
      out.refresh_busy_time += op.duration;
      out.refresh_energy += op.energy;
      ++out.refresh_ops;
    } else {
      const double arrival = arrivals[next_search++];
      const double start = std::max(arrival, busy_until);
      const double wait = start - arrival;
      busy_until = start + costs.search_latency();
      out.total_search_wait += wait;
      out.max_search_wait = std::max(out.max_search_wait, wait);
      ++out.searches_served;
    }
  }
  return out;
}

}  // namespace nemtcam::arch
