// Longest-prefix-match IPv4 forwarding table on a ternary CAM.
//
// The classic TCAM application (paper ref [1]): each route prefix becomes
// one TCAM entry with the host bits stored as don't-care, entries are kept
// sorted by descending prefix length so the priority encoder's first match
// IS the longest match.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/DynamicTcam.h"

namespace nemtcam::arch {

struct Route {
  std::uint32_t prefix = 0;   // network byte-order-free host integer
  int length = 0;             // prefix length 0..32
  std::uint32_t next_hop = 0; // opaque next-hop id
};

// Parses dotted-quad "a.b.c.d" into a host integer; throws on bad input.
std::uint32_t parse_ipv4(const std::string& dotted);
std::string format_ipv4(std::uint32_t addr);

class LpmTable {
 public:
  // capacity: number of TCAM rows.
  LpmTable(int capacity, core::TcamTech tech = core::TcamTech::Nem3T2N);

  // Inserts (or replaces) a route. Keeps entries ordered by descending
  // prefix length. Returns false when the table is full.
  bool insert(const Route& route);
  // Removes an exact prefix/length; returns false if absent.
  bool remove(std::uint32_t prefix, int length);

  // Longest-prefix lookup. nullopt when no route covers the address.
  std::optional<Route> lookup(std::uint32_t addr);

  int size() const noexcept { return static_cast<int>(routes_.size()); }
  int capacity() const noexcept { return tcam_.rows(); }

  // Operation ledger of the underlying dynamic TCAM (energy, refreshes…).
  const core::TcamLedger& ledger() const { return tcam_.ledger(); }
  core::DynamicTcam& tcam() noexcept { return tcam_; }

 private:
  static core::TernaryWord key_of(std::uint32_t addr);
  static core::TernaryWord word_of(const Route& r);
  void rebuild_rows(std::size_t from_index);

  core::DynamicTcam tcam_;
  std::vector<Route> routes_;  // sorted by descending length, stable
};

}  // namespace nemtcam::arch
