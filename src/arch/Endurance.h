// Endurance accounting for the TCAM technologies.
//
// NEM relays offer "moderate endurance" (the paper, §I): each *mechanical*
// actuation wears the contact. A key subtlety modeled here: one-shot
// refresh recharges the relay gates WITHOUT moving the beams (the whole
// point of staying inside the hysteresis window), so refreshes cost zero
// endurance — only data writes that actually flip a cell do. The NVM
// baselines wear per programming pulse instead (RRAM filament cycling,
// FeFET polarization fatigue), and SRAM is effectively unlimited.
#pragma once

#include <cstdint>
#include <vector>

#include "core/EnergyModel.h"
#include "core/Ternary.h"

namespace nemtcam::arch {

struct EnduranceSpec {
  // Rated switching cycles per cell before end-of-life.
  double rated_cycles;
  // True when refresh operations consume cycles (conventional dynamic
  // memories rewrite cells; OSR does not actuate relays).
  bool refresh_wears;
};

// Literature-typical ratings per technology.
EnduranceSpec endurance_spec(core::TcamTech tech);

class EnduranceTracker {
 public:
  EnduranceTracker(core::TcamTech tech, int rows, int width);

  // Records a word write into `row`: only bits that change state cycle
  // their cell. Returns the number of cells cycled.
  int record_write(int row, const core::TernaryWord& word);

  // Records a refresh (per the spec, may or may not wear).
  void record_one_shot_refresh();
  void record_row_refresh(int row);

  // Bulk wear deposit: adds `cycles` to every cell of `row` at once. The
  // lifetime engine accrues months of behavioral traffic analytically and
  // deposits the accumulated cycles here at segment boundaries instead of
  // replaying every word write.
  void add_row_cycles(int row, std::uint64_t cycles);

  // Worst (most-cycled) cell count and its fraction of the rating.
  std::uint64_t worst_cell_cycles() const;
  double worst_wear_fraction() const;
  // Same, restricted to one row — the per-row wear signal spare-row
  // remapping retires on (see arch/BankedTcam::apply_endurance).
  std::uint64_t row_worst_cycles(int row) const;
  double row_wear_fraction(int row) const;
  // Estimated time to end-of-life at a sustained write rate (writes/s,
  // uniformly spread over rows), in seconds.
  double lifetime_at_write_rate(double writes_per_second) const;

  const EnduranceSpec& spec() const noexcept { return spec_; }
  int rows() const noexcept { return rows_; }
  int width() const noexcept { return width_; }

 private:
  EnduranceSpec spec_;
  int rows_;
  int width_;
  std::vector<std::uint64_t> cell_cycles_;  // rows × width
  std::vector<core::TernaryWord> last_;     // last written word per row
  std::vector<bool> has_last_;
};

}  // namespace nemtcam::arch
