#include "arch/BankedTcam.h"

#include "util/Expect.h"

namespace nemtcam::arch {

using core::DynamicTcam;
using core::TernaryWord;

BankedTcam::BankedTcam(core::TcamTech tech, int banks, int rows_per_bank,
                       int width)
    : rows_per_bank_(rows_per_bank), width_(width) {
  NEMTCAM_EXPECT(banks >= 1 && rows_per_bank >= 1 && width >= 1);
  banks_.reserve(static_cast<std::size_t>(banks));
  for (int b = 0; b < banks; ++b) {
    banks_.push_back(
        std::make_unique<DynamicTcam>(tech, rows_per_bank, width));
    // Stagger the refresh phases: advance each bank a different fraction
    // of the retention period before use, so their deadlines interleave.
    const auto& costs = banks_.back()->costs();
    if (costs.needs_refresh() && banks > 1) {
      banks_.back()->advance(costs.retention_time() *
                             static_cast<double>(b) / banks);
    }
  }
}

std::pair<int, int> BankedTcam::split(int global_row) const {
  NEMTCAM_EXPECT(global_row >= 0 && global_row < capacity());
  return {global_row / rows_per_bank_, global_row % rows_per_bank_};
}

void BankedTcam::write(int global_row, const TernaryWord& word) {
  const auto [b, local] = split(global_row);
  banks_[static_cast<std::size_t>(b)]->write(local, word);
}

void BankedTcam::erase(int global_row) {
  const auto [b, local] = split(global_row);
  banks_[static_cast<std::size_t>(b)]->erase(local);
}

std::vector<int> BankedTcam::search(const TernaryWord& key) {
  std::vector<int> hits;
  for (int b = 0; b < banks(); ++b) {
    for (const int local : banks_[static_cast<std::size_t>(b)]->search(key))
      hits.push_back(b * rows_per_bank_ + local);
  }
  return hits;
}

std::optional<int> BankedTcam::search_first(const TernaryWord& key) {
  for (int b = 0; b < banks(); ++b) {
    const auto hit = banks_[static_cast<std::size_t>(b)]->search_first(key);
    if (hit.has_value()) return b * rows_per_bank_ + *hit;
  }
  return std::nullopt;
}

void BankedTcam::advance(double seconds) {
  for (auto& bank : banks_) bank->advance(seconds);
}

core::TcamLedger BankedTcam::total_ledger() const {
  core::TcamLedger total;
  for (const auto& bank : banks_) {
    const auto& l = bank->ledger();
    total.writes += l.writes;
    total.searches += l.searches;
    total.refreshes += l.refreshes;
    total.row_refreshes += l.row_refreshes;
    total.retention_losses += l.retention_losses;
    total.energy += l.energy;
    total.busy_time += l.busy_time;
  }
  return total;
}

}  // namespace nemtcam::arch
