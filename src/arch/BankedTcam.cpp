#include "arch/BankedTcam.h"

#include <algorithm>

#include "util/Expect.h"
#include "util/Log.h"

namespace nemtcam::arch {

using core::DynamicTcam;
using core::TernaryWord;

BankedTcam::BankedTcam(core::TcamTech tech, int banks, int rows_per_bank,
                       int width, int spare_rows)
    : rows_per_bank_(rows_per_bank), width_(width) {
  NEMTCAM_EXPECT(banks >= 1 && rows_per_bank >= 1 && width >= 1);
  NEMTCAM_EXPECT(spare_rows >= 0 && spare_rows < banks * rows_per_bank);
  banks_.reserve(static_cast<std::size_t>(banks));
  for (int b = 0; b < banks; ++b) {
    banks_.push_back(
        std::make_unique<DynamicTcam>(tech, rows_per_bank, width));
    // Stagger the refresh phases: advance each bank a different fraction
    // of the retention period before use, so their deadlines interleave.
    const auto& costs = banks_.back()->costs();
    if (costs.needs_refresh() && banks > 1) {
      banks_.back()->advance(costs.retention_time() *
                             static_cast<double>(b) / banks);
    }
  }
  const int physical = banks * rows_per_bank;
  logical_rows_ = physical - spare_rows;
  next_spare_ = logical_rows_;
  remap_.resize(static_cast<std::size_t>(logical_rows_));
  logical_of_.assign(static_cast<std::size_t>(physical), -1);
  retired_physical_.assign(static_cast<std::size_t>(physical), false);
  for (int r = 0; r < logical_rows_; ++r) {
    remap_[static_cast<std::size_t>(r)] = r;
    logical_of_[static_cast<std::size_t>(r)] = r;
  }
}

std::pair<int, int> BankedTcam::split(int physical_row) const {
  NEMTCAM_EXPECT(physical_row >= 0 && physical_row < capacity());
  return {physical_row / rows_per_bank_, physical_row % rows_per_bank_};
}

int BankedTcam::physical_of(int global_row) const {
  NEMTCAM_EXPECT(global_row >= 0 && global_row < logical_rows_);
  return remap_[static_cast<std::size_t>(global_row)];
}

void BankedTcam::write(int global_row, const TernaryWord& word) {
  const auto [b, local] = split(physical_of(global_row));
  banks_[static_cast<std::size_t>(b)]->write(local, word);
}

void BankedTcam::erase(int global_row) {
  const auto [b, local] = split(physical_of(global_row));
  banks_[static_cast<std::size_t>(b)]->erase(local);
}

std::vector<int> BankedTcam::search(const TernaryWord& key) {
  std::vector<int> hits;
  for (int b = 0; b < banks(); ++b) {
    for (const int local : banks_[static_cast<std::size_t>(b)]->search(key)) {
      const int physical = b * rows_per_bank_ + local;
      const int logical = logical_of_[static_cast<std::size_t>(physical)];
      if (logical >= 0) hits.push_back(logical);
    }
  }
  // Priority order is the logical index; remapped rows live on spare
  // physical rows, so the raw bank order is no longer sorted.
  std::sort(hits.begin(), hits.end());
  return hits;
}

std::optional<int> BankedTcam::search_first(const TernaryWord& key) {
  const std::vector<int> hits = search(key);
  if (hits.empty()) return std::nullopt;
  return hits.front();
}

bool BankedTcam::retire_row(int global_row) {
  const int old_physical = physical_of(global_row);
  if (next_spare_ >= capacity()) {
    log::warn("BankedTcam: spare pool exhausted, row ", global_row,
              " stays on failing physical row ", old_physical);
    return false;
  }
  const int new_physical = next_spare_++;
  const auto [ob, olocal] = split(old_physical);
  const auto [nb, nlocal] = split(new_physical);
  DynamicTcam& old_bank = *banks_[static_cast<std::size_t>(ob)];
  DynamicTcam& new_bank = *banks_[static_cast<std::size_t>(nb)];
  if (old_bank.valid(olocal)) {
    new_bank.write(nlocal, old_bank.read(olocal));
    old_bank.erase(olocal);
  }
  remap_[static_cast<std::size_t>(global_row)] = new_physical;
  logical_of_[static_cast<std::size_t>(old_physical)] = -1;
  logical_of_[static_cast<std::size_t>(new_physical)] = global_row;
  retired_physical_[static_cast<std::size_t>(old_physical)] = true;
  ++retired_;
  return true;
}

int BankedTcam::apply_fault_report(const fault::FaultReport& report) {
  int remapped = 0;
  for (const int row : report.dead_rows()) {
    if (row >= logical_rows_) continue;  // fault map may cover spares too
    if (retire_row(row)) ++remapped;
  }
  return remapped;
}

int BankedTcam::apply_endurance(const EnduranceTracker& tracker,
                                double wear_limit) {
  NEMTCAM_EXPECT(wear_limit > 0.0);
  const int rows = std::min(logical_rows_, tracker.rows());
  int remapped = 0;
  for (int r = 0; r < rows; ++r) {
    if (tracker.row_wear_fraction(r) < wear_limit) continue;
    if (retire_row(r)) ++remapped;
  }
  return remapped;
}

FaultAwareness BankedTcam::refresh_awareness(
    const fault::FaultReport& physical_report,
    double weak_retention_scale) const {
  FaultAwareness out;
  out.weak_retention_scale = weak_retention_scale;
  for (int p = 0; p < capacity(); ++p) {
    if (logical_of_[static_cast<std::size_t>(p)] < 0) {
      // No live data here: abandoned retired row or still-unused spare.
      out.retired_rows.push_back(p);
      continue;
    }
    switch (physical_report.row_health(p)) {
      case fault::CellHealth::Dead: out.dead_rows.push_back(p); break;
      case fault::CellHealth::Weak: out.weak_rows.push_back(p); break;
      case fault::CellHealth::Healthy: break;
    }
  }
  return out.normalized(capacity());
}

void BankedTcam::advance(double seconds) {
  for (auto& bank : banks_) bank->advance(seconds);
}

core::TcamLedger BankedTcam::total_ledger() const {
  core::TcamLedger total;
  for (const auto& bank : banks_) {
    const auto& l = bank->ledger();
    total.writes += l.writes;
    total.searches += l.searches;
    total.refreshes += l.refreshes;
    total.row_refreshes += l.row_refreshes;
    total.retention_losses += l.retention_losses;
    total.energy += l.energy;
    total.busy_time += l.busy_time;
  }
  return total;
}

}  // namespace nemtcam::arch
