#include "arch/AssocCache.h"

#include <algorithm>

#include "util/Expect.h"

namespace nemtcam::arch {

using core::TernaryWord;

namespace {

int log2_exact(int value) {
  NEMTCAM_EXPECT_MSG(value > 0 && (value & (value - 1)) == 0,
                     "line size must be a power of two");
  int shift = 0;
  while ((1 << shift) < value) ++shift;
  return shift;
}

}  // namespace

AssocCache::AssocCache(int ways, int line_bytes, int tag_bits,
                       core::TcamTech tech)
    : tcam_(tech, ways, tag_bits), line_shift_(log2_exact(line_bytes)),
      tag_bits_(tag_bits), last_used_(static_cast<std::size_t>(ways), 0),
      occupied_(static_cast<std::size_t>(ways), false) {
  NEMTCAM_EXPECT(tag_bits >= 1 && tag_bits <= 64);
}

std::uint64_t AssocCache::tag_of(std::uint64_t address) const {
  const std::uint64_t tag = address >> line_shift_;
  if (tag_bits_ >= 64) return tag;
  return tag & ((1ull << tag_bits_) - 1ull);
}

TernaryWord AssocCache::key_of(std::uint64_t tag) const {
  return TernaryWord::from_uint(tag, static_cast<std::size_t>(tag_bits_));
}

std::optional<int> AssocCache::find(std::uint64_t tag) {
  return tcam_.search_first(key_of(tag));
}

bool AssocCache::access(std::uint64_t address) {
  ++stats_.accesses;
  ++tick_;
  const std::uint64_t tag = tag_of(address);
  if (const auto way = find(tag); way.has_value()) {
    ++stats_.hits;
    last_used_[static_cast<std::size_t>(*way)] = tick_;
    return true;
  }
  // Miss: allocate into a free way, else evict LRU.
  int victim = -1;
  for (int w = 0; w < ways(); ++w) {
    if (!occupied_[static_cast<std::size_t>(w)]) {
      victim = w;
      break;
    }
  }
  if (victim < 0) {
    victim = 0;
    for (int w = 1; w < ways(); ++w)
      if (last_used_[static_cast<std::size_t>(w)] <
          last_used_[static_cast<std::size_t>(victim)])
        victim = w;
    ++stats_.evictions;
  }
  tcam_.write(victim, key_of(tag));
  occupied_[static_cast<std::size_t>(victim)] = true;
  last_used_[static_cast<std::size_t>(victim)] = tick_;
  return false;
}

bool AssocCache::contains(std::uint64_t address) {
  return find(tag_of(address)).has_value();
}

bool AssocCache::invalidate(std::uint64_t address) {
  const auto way = find(tag_of(address));
  if (!way.has_value()) return false;
  tcam_.erase(*way);
  occupied_[static_cast<std::size_t>(*way)] = false;
  return true;
}

}  // namespace nemtcam::arch
