#include "arch/LpmTable.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "util/Expect.h"

namespace nemtcam::arch {

using core::Ternary;
using core::TernaryWord;

std::uint32_t parse_ipv4(const std::string& dotted) {
  // Hand-rolled scan so a bad literal names the offending token and octet
  // position, not just the whole string (std::invalid_argument — an input
  // error a route-file loader can catch and report per line).
  const auto bad = [&dotted](int octet_index, const std::string& token,
                             const std::string& why) -> std::uint32_t {
    throw std::invalid_argument("invalid IPv4 literal '" + dotted +
                                "': octet " + std::to_string(octet_index + 1) +
                                " ('" + token + "') " + why);
  };
  std::uint32_t out = 0;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    const std::size_t start = pos;
    while (pos < dotted.size() &&
           std::isdigit(static_cast<unsigned char>(dotted[pos])) != 0)
      ++pos;
    const std::string tok = dotted.substr(start, pos - start);
    if (tok.empty()) {
      const std::string found =
          start < dotted.size() ? dotted.substr(start, 1) : "end of string";
      return bad(i, found, "is not a decimal octet");
    }
    if (tok.size() > 3) return bad(i, tok, "is too long");
    const int octet = std::stoi(tok);
    if (octet > 255) return bad(i, tok, "exceeds 255");
    out = (out << 8) | static_cast<std::uint32_t>(octet);
    if (i < 3) {
      if (pos >= dotted.size() || dotted[pos] != '.')
        return bad(i, pos < dotted.size() ? dotted.substr(pos, 1) : tok,
                   "is not followed by '.'");
      ++pos;
    }
  }
  if (pos != dotted.size())
    throw std::invalid_argument("invalid IPv4 literal '" + dotted +
                                "': trailing characters '" +
                                dotted.substr(pos) + "'");
  return out;
}

std::string format_ipv4(std::uint32_t addr) {
  std::ostringstream os;
  os << ((addr >> 24) & 0xff) << '.' << ((addr >> 16) & 0xff) << '.'
     << ((addr >> 8) & 0xff) << '.' << (addr & 0xff);
  return os.str();
}

LpmTable::LpmTable(int capacity, core::TcamTech tech)
    : tcam_(tech, capacity, 32) {}

TernaryWord LpmTable::key_of(std::uint32_t addr) {
  return TernaryWord::from_uint(addr, 32);
}

TernaryWord LpmTable::word_of(const Route& r) {
  TernaryWord w = TernaryWord::from_uint(r.prefix, 32);
  for (int b = r.length; b < 32; ++b) w[static_cast<std::size_t>(b)] = Ternary::X;
  return w;
}

void LpmTable::rebuild_rows(std::size_t from_index) {
  for (std::size_t i = from_index; i < routes_.size(); ++i)
    tcam_.write(static_cast<int>(i), word_of(routes_[i]));
  for (std::size_t i = routes_.size();
       i < static_cast<std::size_t>(tcam_.rows()); ++i)
    tcam_.erase(static_cast<int>(i));
}

bool LpmTable::insert(const Route& route) {
  NEMTCAM_EXPECT(route.length >= 0 && route.length <= 32);
  // Normalize: zero the host bits so equality tests are well-defined.
  Route r = route;
  if (r.length < 32)
    r.prefix &= r.length == 0 ? 0u : ~((1u << (32 - r.length)) - 1u);

  // Replace in place when the exact prefix already exists.
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    if (routes_[i].prefix == r.prefix && routes_[i].length == r.length) {
      routes_[i] = r;
      tcam_.write(static_cast<int>(i), word_of(r));
      return true;
    }
  }
  if (static_cast<int>(routes_.size()) >= capacity()) return false;

  // Insert before the first shorter prefix (stable within equal lengths).
  const auto pos = std::find_if(
      routes_.begin(), routes_.end(),
      [&](const Route& existing) { return existing.length < r.length; });
  const std::size_t idx = static_cast<std::size_t>(pos - routes_.begin());
  routes_.insert(pos, r);
  rebuild_rows(idx);
  return true;
}

bool LpmTable::remove(std::uint32_t prefix, int length) {
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    if (routes_[i].prefix == prefix && routes_[i].length == length) {
      routes_.erase(routes_.begin() + static_cast<std::ptrdiff_t>(i));
      rebuild_rows(i);
      return true;
    }
  }
  return false;
}

std::optional<Route> LpmTable::lookup(std::uint32_t addr) {
  const auto hit = tcam_.search_first(key_of(addr));
  if (!hit.has_value()) return std::nullopt;
  return routes_[static_cast<std::size_t>(*hit)];
}

}  // namespace nemtcam::arch
