#include "arch/Endurance.h"

#include <algorithm>

#include "util/Expect.h"

namespace nemtcam::arch {

using core::TcamTech;
using core::Ternary;
using core::TernaryWord;

EnduranceSpec endurance_spec(TcamTech tech) {
  switch (tech) {
    case TcamTech::Sram16T:
      return {1e16, false};  // effectively unlimited
    case TcamTech::Nem3T2N:
      // Moderate mechanical endurance; OSR does not actuate the beams.
      return {1e10, false};
    case TcamTech::Rram2T2R:
      return {1e7, false};   // filamentary cycling
    case TcamTech::Fefet2F:
      return {1e9, false};   // polarization fatigue (paper §I: endurance
                             // limits fast high-voltage FeFET writes)
  }
  NEMTCAM_EXPECT_MSG(false, "unknown TcamTech");
  return {};
}

EnduranceTracker::EnduranceTracker(TcamTech tech, int rows, int width)
    : spec_(endurance_spec(tech)), rows_(rows), width_(width),
      cell_cycles_(static_cast<std::size_t>(rows) * width, 0),
      last_(static_cast<std::size_t>(rows),
            TernaryWord(static_cast<std::size_t>(width))),
      has_last_(static_cast<std::size_t>(rows), false) {
  NEMTCAM_EXPECT(rows >= 1 && width >= 1);
}

int EnduranceTracker::record_write(int row, const TernaryWord& word) {
  NEMTCAM_EXPECT(row >= 0 && row < rows_);
  NEMTCAM_EXPECT(static_cast<int>(word.size()) == width_);
  const auto r = static_cast<std::size_t>(row);
  int cycled = 0;
  for (int b = 0; b < width_; ++b) {
    const auto idx = r * static_cast<std::size_t>(width_) +
                     static_cast<std::size_t>(b);
    const bool changed =
        !has_last_[r] || last_[r][static_cast<std::size_t>(b)] !=
                             word[static_cast<std::size_t>(b)];
    if (changed) {
      ++cell_cycles_[idx];
      ++cycled;
    }
  }
  last_[r] = word;
  has_last_[r] = true;
  return cycled;
}

void EnduranceTracker::record_one_shot_refresh() {
  if (!spec_.refresh_wears) return;
  for (auto& c : cell_cycles_) ++c;
}

void EnduranceTracker::record_row_refresh(int row) {
  NEMTCAM_EXPECT(row >= 0 && row < rows_);
  if (!spec_.refresh_wears) return;
  const auto r = static_cast<std::size_t>(row);
  for (int b = 0; b < width_; ++b)
    ++cell_cycles_[r * static_cast<std::size_t>(width_) +
                   static_cast<std::size_t>(b)];
}

void EnduranceTracker::add_row_cycles(int row, std::uint64_t cycles) {
  NEMTCAM_EXPECT(row >= 0 && row < rows_);
  const auto r = static_cast<std::size_t>(row);
  for (int b = 0; b < width_; ++b)
    cell_cycles_[r * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(b)] += cycles;
}

std::uint64_t EnduranceTracker::worst_cell_cycles() const {
  return *std::max_element(cell_cycles_.begin(), cell_cycles_.end());
}

double EnduranceTracker::worst_wear_fraction() const {
  return static_cast<double>(worst_cell_cycles()) / spec_.rated_cycles;
}

std::uint64_t EnduranceTracker::row_worst_cycles(int row) const {
  NEMTCAM_EXPECT(row >= 0 && row < rows_);
  const auto begin =
      cell_cycles_.begin() +
      static_cast<std::ptrdiff_t>(row) * static_cast<std::ptrdiff_t>(width_);
  return *std::max_element(begin, begin + width_);
}

double EnduranceTracker::row_wear_fraction(int row) const {
  return static_cast<double>(row_worst_cycles(row)) / spec_.rated_cycles;
}

double EnduranceTracker::lifetime_at_write_rate(double writes_per_second) const {
  NEMTCAM_EXPECT(writes_per_second > 0.0);
  // Uniform spread over rows; worst case every bit flips on every write.
  const double cell_cycles_per_second = writes_per_second / rows_;
  return spec_.rated_cycles / cell_cycles_per_second;
}

}  // namespace nemtcam::arch
