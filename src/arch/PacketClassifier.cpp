#include "arch/PacketClassifier.h"

#include "util/Expect.h"

namespace nemtcam::arch {

using core::Ternary;
using core::TernaryWord;

std::vector<std::pair<std::uint16_t, int>> expand_port_range(std::uint16_t lo,
                                                             std::uint16_t hi) {
  NEMTCAM_EXPECT(lo <= hi);
  std::vector<std::pair<std::uint16_t, int>> out;
  std::uint32_t cur = lo;
  const std::uint32_t end = static_cast<std::uint32_t>(hi) + 1;
  while (cur < end) {
    // Largest power-of-two block starting at cur that stays within range.
    int block = 0;  // log2 of block size
    while (block < 16) {
      const std::uint32_t size = 1u << (block + 1);
      if (cur % size != 0 || cur + size > end) break;
      ++block;
    }
    out.emplace_back(static_cast<std::uint16_t>(cur), 16 - block);
    cur += 1u << block;
  }
  return out;
}

namespace {

void put_prefix(TernaryWord& w, int offset, std::uint32_t value, int total_bits,
                int prefix_len) {
  for (int b = 0; b < total_bits; ++b) {
    const auto idx = static_cast<std::size_t>(offset + b);
    if (b < prefix_len) {
      const std::uint32_t bit = (value >> (total_bits - 1 - b)) & 1u;
      w[idx] = bit ? Ternary::One : Ternary::Zero;
    } else {
      w[idx] = Ternary::X;
    }
  }
}

void put_exact(TernaryWord& w, int offset, std::uint32_t value, int bits) {
  put_prefix(w, offset, value, bits, bits);
}

}  // namespace

PacketClassifier::PacketClassifier(int capacity_rows, core::TcamTech tech)
    : tcam_(tech, capacity_rows, kKeyWidth),
      row_action_(static_cast<std::size_t>(capacity_rows)) {}

int PacketClassifier::add_rule(const ClassifierRule& rule) {
  NEMTCAM_EXPECT(rule.src_len >= 0 && rule.src_len <= 32);
  NEMTCAM_EXPECT(rule.dst_len >= 0 && rule.dst_len <= 32);
  NEMTCAM_EXPECT(rule.port_lo <= rule.port_hi);

  const auto port_prefixes = expand_port_range(rule.port_lo, rule.port_hi);
  if (next_row_ + static_cast<int>(port_prefixes.size()) > tcam_.rows())
    return 0;

  for (const auto& [port_val, port_len] : port_prefixes) {
    TernaryWord w(kKeyWidth, Ternary::X);
    put_prefix(w, 0, rule.src_prefix, 32, rule.src_len);
    put_prefix(w, 32, rule.dst_prefix, 32, rule.dst_len);
    if (rule.protocol.has_value()) put_exact(w, 64, *rule.protocol, 8);
    put_prefix(w, 72, port_val, 16, port_len);
    tcam_.write(next_row_, w);
    row_action_[static_cast<std::size_t>(next_row_)] = rule.action;
    ++next_row_;
  }
  actions_.push_back(rule.action);
  return static_cast<int>(port_prefixes.size());
}

TernaryWord PacketClassifier::key_of(const PacketHeader& pkt) const {
  TernaryWord w(kKeyWidth, Ternary::Zero);
  put_exact(w, 0, pkt.src, 32);
  put_exact(w, 32, pkt.dst, 32);
  put_exact(w, 64, pkt.protocol, 8);
  put_exact(w, 72, pkt.dst_port, 16);
  return w;
}

std::optional<std::string> PacketClassifier::classify(const PacketHeader& pkt) {
  const auto hit = tcam_.search_first(key_of(pkt));
  if (!hit.has_value()) return std::nullopt;
  return row_action_[static_cast<std::size_t>(*hit)];
}

}  // namespace nemtcam::arch
