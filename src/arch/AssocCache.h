// Fully-associative cache tag store with TCAM lookup — the "caches" use
// case from the paper's introduction.
//
// Tags live in a TCAM (exact-match entries, no wildcards); a hit returns
// the way index in one parallel search. Replacement is LRU via timestamps.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/DynamicTcam.h"

namespace nemtcam::arch {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t evictions = 0;
  double hit_rate() const {
    return accesses ? static_cast<double>(hits) / accesses : 0.0;
  }
};

class AssocCache {
 public:
  // ways: number of TCAM rows; line_bytes must be a power of two.
  AssocCache(int ways, int line_bytes, int tag_bits = 48,
             core::TcamTech tech = core::TcamTech::Nem3T2N);

  // Access an address; returns true on hit. Misses allocate (LRU evict).
  bool access(std::uint64_t address);
  // Probe without allocating or updating LRU.
  bool contains(std::uint64_t address);
  // Invalidate a line if present; returns true when something was removed.
  bool invalidate(std::uint64_t address);

  const CacheStats& stats() const noexcept { return stats_; }
  const core::TcamLedger& ledger() const { return tcam_.ledger(); }
  int ways() const noexcept { return tcam_.rows(); }

 private:
  std::uint64_t tag_of(std::uint64_t address) const;
  core::TernaryWord key_of(std::uint64_t tag) const;
  std::optional<int> find(std::uint64_t tag);

  core::DynamicTcam tcam_;
  int line_shift_;
  int tag_bits_;
  std::vector<std::uint64_t> last_used_;
  std::vector<bool> occupied_;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace nemtcam::arch
