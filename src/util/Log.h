// Minimal leveled logger.
//
// The simulator is a library, so logging defaults to Warn and writes to
// stderr; benches and examples may raise the level for progress output.
#pragma once

#include <sstream>
#include <string>

namespace nemtcam::log {

enum class Level { Trace = 0, Debug, Info, Warn, Error, Off };

// Global threshold; messages below it are dropped.
Level level() noexcept;
void set_level(Level lvl) noexcept;

void write(Level lvl, const std::string& msg);

namespace detail {

template <typename... Args>
void emit(Level lvl, Args&&... args) {
  if (lvl < level()) return;
  std::ostringstream os;
  (os << ... << args);
  write(lvl, os.str());
}

}  // namespace detail

template <typename... Args>
void trace(Args&&... args) { detail::emit(Level::Trace, std::forward<Args>(args)...); }
template <typename... Args>
void debug(Args&&... args) { detail::emit(Level::Debug, std::forward<Args>(args)...); }
template <typename... Args>
void info(Args&&... args) { detail::emit(Level::Info, std::forward<Args>(args)...); }
template <typename... Args>
void warn(Args&&... args) { detail::emit(Level::Warn, std::forward<Args>(args)...); }
template <typename... Args>
void error(Args&&... args) { detail::emit(Level::Error, std::forward<Args>(args)...); }

}  // namespace nemtcam::log
