// Deterministic parallel sweep: run N independent trials across a thread
// pool and collect results in trial order.
//
// Determinism contract: each trial receives a seed derived only from
// (base_seed, trial index) via a splitmix64 mix, and results land in a
// pre-sized vector slot — so the output is bit-identical for any thread
// count, including the serial fallback. The trial body must not share
// mutable state between trials (one Circuit per trial, never one Circuit
// on many threads — see Circuit::solver_cache).
#pragma once

#include <algorithm>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "util/Expect.h"
#include "util/ThreadPool.h"

namespace nemtcam::util {

struct SweepOptions {
  // 0 → default_thread_count(). 1 runs inline on the calling thread.
  std::size_t threads = 0;
  std::uint64_t base_seed = 0x9e3779b97f4a7c15ull;
};

// splitmix64 finalizer: decorrelates consecutive trial indices into
// independent-looking 64-bit seeds.
inline std::uint64_t sweep_trial_seed(std::uint64_t base_seed,
                                      std::size_t trial) {
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (trial + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Runs body(trial, seed) for trial in [0, n_trials) and returns the
// results ordered by trial index. Exceptions thrown by a trial are
// captured and rethrown on the calling thread (the first by trial order).
template <typename R>
std::vector<R> run_sweep(std::size_t n_trials,
                         const std::function<R(std::size_t, std::uint64_t)>& body,
                         const SweepOptions& opts = {}) {
  std::vector<R> results(n_trials);
  if (n_trials == 0) return results;
  std::vector<std::exception_ptr> errors(n_trials);

  const std::size_t threads =
      opts.threads == 0 ? default_thread_count() : opts.threads;
  if (threads == 1 || n_trials == 1) {
    for (std::size_t i = 0; i < n_trials; ++i)
      results[i] = body(i, sweep_trial_seed(opts.base_seed, i));
    return results;
  }

  {
    ThreadPool pool(std::min(threads, n_trials));
    for (std::size_t i = 0; i < n_trials; ++i) {
      pool.submit([&, i] {
        try {
          results[i] = body(i, sweep_trial_seed(opts.base_seed, i));
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (std::size_t i = 0; i < n_trials; ++i)
    if (errors[i]) std::rethrow_exception(errors[i]);
  return results;
}

// Result slot of one guarded trial: the value when the trial returned,
// or the captured failure otherwise.
template <typename R>
struct SweepItem {
  R value{};
  bool ok = false;
  std::string error;  // exception what() when !ok
};

// Like run_sweep, but a trial that throws poisons only its own slot: the
// exception is captured as a per-index failure record and the remaining
// N−1 trials still produce results. Determinism contract unchanged (slot
// by index, seed from (base_seed, trial), thread-count invariant).
template <typename R>
std::vector<SweepItem<R>> run_sweep_guarded(
    std::size_t n_trials,
    const std::function<R(std::size_t, std::uint64_t)>& body,
    const SweepOptions& opts = {}) {
  std::vector<SweepItem<R>> results(n_trials);
  if (n_trials == 0) return results;

  const auto guarded = [&](std::size_t i) {
    try {
      results[i].value = body(i, sweep_trial_seed(opts.base_seed, i));
      results[i].ok = true;
    } catch (const std::exception& e) {
      results[i].error = e.what();
    } catch (...) {
      results[i].error = "unknown exception";
    }
  };

  const std::size_t threads =
      opts.threads == 0 ? default_thread_count() : opts.threads;
  if (threads == 1 || n_trials == 1) {
    for (std::size_t i = 0; i < n_trials; ++i) guarded(i);
    return results;
  }
  ThreadPool pool(std::min(threads, n_trials));
  for (std::size_t i = 0; i < n_trials; ++i)
    pool.submit([&guarded, i] { guarded(i); });
  pool.wait_idle();
  return results;
}

}  // namespace nemtcam::util
