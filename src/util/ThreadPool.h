// Small work-stealing thread pool for embarrassingly parallel sweeps.
//
// Each worker owns a deque guarded by its own mutex: the owner pushes and
// pops at the back, idle workers steal from the front of a victim's deque.
// Tasks are submitted round-robin across workers. The pool is intended for
// coarse-grained jobs (one SPICE trial each), so per-task overhead is not
// the bottleneck; correctness and determinism of the *caller* matter more
// than queue micro-optimisation.
//
// Thread count resolution (default_thread_count): the NEMTCAM_THREADS
// environment variable when set and positive, else hardware_concurrency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nemtcam::util {

std::size_t default_thread_count();

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  // Enqueues a task. Tasks must not submit further tasks to this pool.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished running.
  void wait_idle();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  bool try_pop(std::size_t self, std::function<void()>& out);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex cv_mutex_;
  std::condition_variable cv_;        // wakes workers when work arrives
  std::condition_variable idle_cv_;   // wakes wait_idle when all work is done
  std::size_t pending_ = 0;           // submitted but not yet finished
  std::size_t queued_ = 0;            // submitted but not yet popped
  std::size_t next_queue_ = 0;        // round-robin submission cursor
  bool stop_ = false;
};

}  // namespace nemtcam::util
