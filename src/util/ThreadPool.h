// Small work-stealing thread pool for embarrassingly parallel sweeps and
// solver-internal fan-out.
//
// Each worker owns a deque guarded by its own mutex: the owner pushes and
// pops at the back, idle workers steal from the front of a victim's deque.
// Tasks are submitted round-robin across workers. The pool is intended for
// coarse-grained jobs (one SPICE trial, one BBD block factorization), so
// per-task overhead is not the bottleneck; correctness and determinism of
// the *caller* matter more than queue micro-optimisation.
//
// Nesting: tasks may submit further tasks. wait_idle() and parallel_for()
// are work-assisting — the blocked thread drains queued tasks instead of
// sleeping — so a task that fans out subtasks cannot starve the pool.
// A task must still not call wait_idle() (it waits on the *global* pending
// count, which includes the caller's own task); from inside a task, use
// parallel_for, which tracks completion per call.
//
// Thread count resolution (default_thread_count): the NEMTCAM_THREADS
// environment variable when set and positive, else hardware_concurrency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nemtcam::util {

std::size_t default_thread_count();

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  // Enqueues a task. May be called from inside a running task.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished running, assisting
  // with queued work while it waits. Must not be called from inside a
  // task (use parallel_for there).
  void wait_idle();

  // Blocked-range helper: runs fn(i) for every i in [begin, end), split
  // into contiguous chunks of at least `grain` indices distributed across
  // the pool. The calling thread assists until *this call's* chunks have
  // finished, so it is safe from inside a pool task (nested parallelism).
  // Returns after all iterations ran; the first exception thrown by fn is
  // rethrown on the calling thread. Determinism is the caller's contract:
  // fn(i) must write only to slot i state, as in run_sweep.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  bool try_pop(std::size_t self, std::function<void()>& out);
  // Steals one task from any queue and runs it on the calling thread,
  // with full pending/queued bookkeeping. False when every queue is empty.
  bool run_one_task();
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex cv_mutex_;
  std::condition_variable cv_;        // wakes workers when work arrives
  std::condition_variable idle_cv_;   // wakes wait_idle when all work is
                                      // done or new work shows up to assist
  std::size_t pending_ = 0;           // submitted but not yet finished
  std::size_t queued_ = 0;            // submitted but not yet popped
  std::size_t next_queue_ = 0;        // round-robin submission cursor
  bool stop_ = false;
};

// Process-wide lazily constructed pool (default_thread_count() workers at
// first use) shared by solver-internal parallelism — the BBD block
// factorizations of every array fixture fan out here instead of each
// fixture spinning up its own threads. Callers needing a specific thread
// count (determinism tests) construct their own ThreadPool instead.
ThreadPool& shared_pool();

}  // namespace nemtcam::util
