// Lightweight contract checks (Core Guidelines I.6/I.8 style).
//
// NEMTCAM_EXPECT checks a precondition, NEMTCAM_ENSURE a postcondition or
// internal invariant. Both throw std::logic_error with file:line context so
// violations surface in tests rather than as silent corruption. They are
// always on: this library is a simulator whose value is correctness, and the
// checks are far from any inner numeric loop.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nemtcam::detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace nemtcam::detail

#define NEMTCAM_EXPECT(cond)                                                  \
  do {                                                                        \
    if (!(cond))                                                              \
      ::nemtcam::detail::contract_fail("precondition", #cond, __FILE__,       \
                                       __LINE__, "");                         \
  } while (false)

#define NEMTCAM_EXPECT_MSG(cond, msg)                                         \
  do {                                                                        \
    if (!(cond))                                                              \
      ::nemtcam::detail::contract_fail("precondition", #cond, __FILE__,       \
                                       __LINE__, (msg));                      \
  } while (false)

#define NEMTCAM_ENSURE(cond)                                                  \
  do {                                                                        \
    if (!(cond))                                                              \
      ::nemtcam::detail::contract_fail("invariant", #cond, __FILE__,          \
                                       __LINE__, "");                         \
  } while (false)

#define NEMTCAM_ENSURE_MSG(cond, msg)                                         \
  do {                                                                        \
    if (!(cond))                                                              \
      ::nemtcam::detail::contract_fail("invariant", #cond, __FILE__,          \
                                       __LINE__, (msg));                      \
  } while (false)
