// Deterministic random-number utilities for Monte-Carlo variation studies.
//
// A thin wrapper around std::mt19937_64 so that every experiment seeds
// explicitly (reproducible runs) and draws through named distributions.
#pragma once

#include <cstdint>
#include <random>

#include "util/Expect.h"

namespace nemtcam::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    NEMTCAM_EXPECT(lo < hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    NEMTCAM_EXPECT(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  // Gaussian with the given mean and standard deviation.
  double normal(double mean, double sigma) {
    NEMTCAM_EXPECT(sigma >= 0.0);
    if (sigma == 0.0) return mean;
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  // Log-normal such that the *median* of the distribution is `median` and
  // log-domain sigma is `sigma_log` (natural log). Standard for resistance
  // variation of filamentary RRAM.
  double lognormal_median(double median, double sigma_log) {
    NEMTCAM_EXPECT(median > 0.0);
    NEMTCAM_EXPECT(sigma_log >= 0.0);
    if (sigma_log == 0.0) return median;
    return median * std::exp(normal(0.0, sigma_log));
  }

  bool bernoulli(double p) {
    NEMTCAM_EXPECT(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace nemtcam::util
