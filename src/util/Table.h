// Fixed-width ASCII table printer for bench output.
//
// Benches print the same rows/series the paper's tables and figures report;
// this keeps that output aligned and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace nemtcam::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds one row. Must have the same number of cells as there are headers.
  void add_row(std::vector<std::string> cells);

  // Renders the whole table, including a header separator, ending in '\n'.
  std::string to_string() const;

  // Convenience: render and write to stdout.
  void print() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double in engineering style with an SI prefix for the given
// unit, e.g. si_format(3.5e-13, "J") == "350.0 fJ". Covers a (atto) through
// G (giga); values outside that range fall back to scientific notation.
std::string si_format(double value, const std::string& unit, int precision = 4);

// Formats a plain ratio like "2.31x".
std::string ratio_format(double ratio, int precision = 2);

}  // namespace nemtcam::util
