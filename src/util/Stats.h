// Small statistics helpers used by Monte-Carlo benches and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace nemtcam::util {

// Single-pass accumulator (Welford) for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample set with linear interpolation; p in [0, 100].
// The input vector is copied, so callers keep their ordering.
double percentile(std::vector<double> samples, double p);

// Mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& xs);

// Sample standard deviation; 0 for fewer than two samples.
double stddev_of(const std::vector<double>& xs);

}  // namespace nemtcam::util
