// SI unit helpers for circuit quantities.
//
// All internal quantities in nemtcam are plain `double` in base SI units
// (seconds, volts, amperes, farads, ohms, joules, watts). These constants
// and user-defined literals make magnitudes readable at construction sites:
//
//   double c = 20 * units::aF;      // 2e-17 F
//   double t = 2.0_ns;              // 2e-9 s
#pragma once

namespace nemtcam::units {

// Time.
inline constexpr double s = 1.0;
inline constexpr double minute = 60.0;
inline constexpr double hour = 3600.0;
inline constexpr double day = 86400.0;
inline constexpr double year = 365.25 * 86400.0;  // Julian year
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;
inline constexpr double fs = 1e-15;

// Capacitance.
inline constexpr double F = 1.0;
inline constexpr double uF = 1e-6;
inline constexpr double nF = 1e-9;
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;
inline constexpr double aF = 1e-18;

// Resistance.
inline constexpr double Ohm = 1.0;
inline constexpr double kOhm = 1e3;
inline constexpr double MOhm = 1e6;
inline constexpr double GOhm = 1e9;

// Voltage / current.
inline constexpr double V = 1.0;
inline constexpr double mV = 1e-3;
inline constexpr double uV = 1e-6;
inline constexpr double A = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;
inline constexpr double nA = 1e-9;
inline constexpr double pA = 1e-12;

// Energy / power.
inline constexpr double J = 1.0;
inline constexpr double pJ = 1e-12;
inline constexpr double fJ = 1e-15;
inline constexpr double aJ = 1e-18;
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;
inline constexpr double nW = 1e-9;

// Length (for parasitic wire models).
inline constexpr double m = 1.0;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

}  // namespace nemtcam::units

namespace nemtcam::literals {

constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ps(long double v) { return static_cast<double>(v) * 1e-12; }

constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }

constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_aF(long double v) { return static_cast<double>(v) * 1e-18; }

constexpr double operator""_Ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_kOhm(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MOhm(long double v) { return static_cast<double>(v) * 1e6; }

constexpr double operator""_pJ(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fJ(long double v) { return static_cast<double>(v) * 1e-15; }

constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }

}  // namespace nemtcam::literals
