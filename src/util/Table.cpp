#include "util/Table.h"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "util/Expect.h"

namespace nemtcam::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NEMTCAM_EXPECT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  NEMTCAM_EXPECT_MSG(cells.size() == headers_.size(),
                     "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string si_format(double value, const std::string& unit, int precision) {
  struct Prefix {
    double scale;
    const char* name;
  };
  static constexpr Prefix kPrefixes[] = {
      {1e9, "G"}, {1e6, "M"}, {1e3, "k"},  {1.0, ""},   {1e-3, "m"},
      {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
  };
  std::ostringstream os;
  if (value == 0.0) {
    os << "0 " << unit;
    return os.str();
  }
  const double mag = std::fabs(value);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale) {
      os << std::setprecision(precision) << std::defaultfloat
         << value / p.scale << " " << p.name << unit;
      return os.str();
    }
  }
  os << std::scientific << std::setprecision(precision) << value << " " << unit;
  return os.str();
}

std::string ratio_format(double ratio, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << ratio << "x";
  return os.str();
}

}  // namespace nemtcam::util
