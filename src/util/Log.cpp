#include "util/Log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace nemtcam::log {

namespace {

std::atomic<Level> g_level{Level::Warn};
std::mutex g_mutex;

const char* name_of(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

}  // namespace

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_level(Level lvl) noexcept { g_level.store(lvl, std::memory_order_relaxed); }

void write(Level lvl, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[nemtcam %s] %s\n", name_of(lvl), msg.c_str());
}

}  // namespace nemtcam::log
