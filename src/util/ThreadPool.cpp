#include "util/ThreadPool.h"

#include <cstdlib>
#include <string>

#include "util/Expect.h"

namespace nemtcam::util {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("NEMTCAM_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool::ThreadPool(std::size_t n_threads) {
  NEMTCAM_EXPECT(n_threads > 0);
  queues_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(cv_mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(cv_mutex_);
    ++pending_;
    ++queued_;
    WorkerQueue& q = *queues_[next_queue_];
    next_queue_ = (next_queue_ + 1) % queues_.size();
    std::lock_guard<std::mutex> qlock(q.mutex);
    q.tasks.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(cv_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  // Own queue first (back: LIFO keeps caches warm), then steal from the
  // front of the others, scanning from self+1 so thieves spread out.
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& q = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      {
        std::lock_guard<std::mutex> lock(cv_mutex_);
        --queued_;
      }
      task();
      std::lock_guard<std::mutex> lock(cv_mutex_);
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(cv_mutex_);
    if (stop_) return;
    // queued_ may lag a concurrent pop by a moment; the worst case is one
    // extra scan of the queues, never a lost wakeup (submit signals under
    // the same mutex).
    cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
  }
}

}  // namespace nemtcam::util
