#include "util/ThreadPool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

#include "util/Expect.h"

namespace nemtcam::util {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("NEMTCAM_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool& shared_pool() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

ThreadPool::ThreadPool(std::size_t n_threads) {
  NEMTCAM_EXPECT(n_threads > 0);
  queues_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(cv_mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(cv_mutex_);
    ++pending_;
    ++queued_;
    WorkerQueue& q = *queues_[next_queue_];
    next_queue_ = (next_queue_ + 1) % queues_.size();
    std::lock_guard<std::mutex> qlock(q.mutex);
    q.tasks.push_back(std::move(task));
  }
  cv_.notify_one();
  // Assisting waiters (wait_idle) also watch for new queued work.
  idle_cv_.notify_all();
}

void ThreadPool::wait_idle() {
  for (;;) {
    if (run_one_task()) continue;
    std::unique_lock<std::mutex> lock(cv_mutex_);
    if (pending_ == 0) return;
    // Tasks are in flight on workers. Wake when everything drained or
    // when in-flight tasks spawn new queued work this thread can assist
    // with (submit notifies idle_cv_ too).
    idle_cv_.wait(lock, [this] { return pending_ == 0 || queued_ > 0; });
    if (pending_ == 0) return;
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  // Over-decompose a little so stolen chunks balance uneven iteration
  // costs, but never below the caller's grain.
  const std::size_t target_chunks = std::max<std::size_t>(1, thread_count() * 4);
  const std::size_t chunk =
      std::max(grain, (n + target_chunks - 1) / target_chunks);
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  if (n_chunks <= 1 || thread_count() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Completion is tracked per call, not via the global pending count, so
  // this works from inside a pool task (the caller's own task is pending
  // for its whole lifetime and would deadlock a global wait).
  struct BatchState {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<BatchState>();
  state->remaining = n_chunks;

  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    submit([state, &fn, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(state->mutex);
      if (--state->remaining == 0) state->done.notify_all();
    });
  }

  // Work-assist until this call's chunks are done. Once run_one_task
  // finds every queue empty, all our chunks have been popped (they were
  // all enqueued above) and are running elsewhere — blocking on the
  // per-call condition is then safe even if other tasks keep arriving.
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(state->mutex);
      if (state->remaining == 0) break;
    }
    if (!run_one_task()) {
      std::unique_lock<std::mutex> lk(state->mutex);
      state->done.wait(lk, [&] { return state->remaining == 0; });
      break;
    }
  }
  if (state->error) std::rethrow_exception(state->error);
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  // Own queue first (back: LIFO keeps caches warm), then steal from the
  // front of the others, scanning from self+1 so thieves spread out.
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& q = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

bool ThreadPool::run_one_task() {
  std::function<void()> task;
  bool got = false;
  for (std::size_t k = 0; k < queues_.size() && !got; ++k) {
    WorkerQueue& q = *queues_[k];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      got = true;
    }
  }
  if (!got) return false;
  {
    std::lock_guard<std::mutex> lock(cv_mutex_);
    --queued_;
  }
  task();
  {
    std::lock_guard<std::mutex> lock(cv_mutex_);
    if (--pending_ == 0) idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      {
        std::lock_guard<std::mutex> lock(cv_mutex_);
        --queued_;
      }
      task();
      std::lock_guard<std::mutex> lock(cv_mutex_);
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(cv_mutex_);
    if (stop_) return;
    // queued_ may lag a concurrent pop by a moment; the worst case is one
    // extra scan of the queues, never a lost wakeup (submit signals under
    // the same mutex).
    cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
  }
}

}  // namespace nemtcam::util
