#include "util/Stats.h"

#include <algorithm>
#include <cmath>

#include "util/Expect.h"

namespace nemtcam::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  NEMTCAM_EXPECT(!samples.empty());
  NEMTCAM_EXPECT(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - m) * (x - m);
  return std::sqrt(m2 / static_cast<double>(xs.size() - 1));
}

}  // namespace nemtcam::util
