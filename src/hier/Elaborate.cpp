#include "hier/Elaborate.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace nemtcam::hier {

namespace {

std::atomic<std::uint64_t> g_instances{0};
std::atomic<std::uint64_t> g_cards{0};

bool is_ground_name(const std::string& s) {
  return s == "0" || s == "gnd" || s == "GND";
}

// -1 when the env knob is unset, else 0/1.
int env_enabled() {
  const char* v = std::getenv("NEMTCAM_NO_HIER");
  if (v == nullptr || v[0] == '\0' || v[0] == '0') return -1;
  return 0;
}

std::atomic<int> g_enabled{-2};  // -2 = not yet initialized

}  // namespace

Stats stats() {
  Stats s;
  s.instances_elaborated = g_instances.load(std::memory_order_relaxed);
  s.cards_emitted = g_cards.load(std::memory_order_relaxed);
  return s;
}

void reset_stats() {
  g_instances.store(0, std::memory_order_relaxed);
  g_cards.store(0, std::memory_order_relaxed);
}

bool default_enabled() {
  int cur = g_enabled.load(std::memory_order_relaxed);
  if (cur == -2) {
    const int from_env = env_enabled();
    cur = (from_env == -1) ? 1 : from_env;
    g_enabled.store(cur, std::memory_order_relaxed);
  }
  return cur != 0;
}

void set_default_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::string substitute_params(const std::string& token, const ParamEnv& env) {
  std::string out;
  std::size_t i = 0;
  while (i < token.size()) {
    if (token[i] != '{') {
      out.push_back(token[i++]);
      continue;
    }
    const auto close = token.find('}', i + 1);
    if (close == std::string::npos)
      throw ElaborateError("unterminated '{' in token '" + token + "'");
    const std::string key = token.substr(i + 1, close - i - 1);
    const auto it = env.find(key);
    if (it == env.end())
      throw ElaborateError("unknown parameter '{" + key + "}' in token '" +
                           token + "'");
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", it->second);
    out += buf;
    i = close + 1;
  }
  return out;
}

InstanceHandles elaborate(spice::Circuit& ckt, const Library& lib,
                          const SubcktDef& def, const std::string& scope,
                          const std::vector<spice::NodeId>& port_ids,
                          const ParamEnv& env, const ElaborateOptions& opts) {
  if (port_ids.size() != def.ports.size())
    throw ElaborateError("subckt '" + def.name + "': " +
                         std::to_string(def.ports.size()) + " ports, " +
                         std::to_string(port_ids.size()) + " bindings");

  InstanceHandles out;
  out.scope = scope;
  for (std::size_t i = 0; i < def.ports.size(); ++i)
    out.nodes[def.ports[i]] = port_ids[i];

  const std::string prefix = scope.empty() ? std::string() : scope + ".";

  // Resolves a local node reference: ground stays global, ports map to the
  // caller's nodes, everything else becomes "<scope>.<local>".
  const NodeResolver resolve = [&](const std::string& local) -> spice::NodeId {
    if (is_ground_name(local)) return ckt.ground();
    const auto it = out.nodes.find(local);
    if (it != out.nodes.end()) return it->second;
    const spice::NodeId id = ckt.node(prefix + local);
    out.nodes.emplace(local, id);
    return id;
  };

  for (const Card& card : def.cards) {
    switch (card.kind) {
      case Card::Kind::Emit: {
        std::vector<spice::NodeId> ids;
        ids.reserve(card.nodes.size());
        for (const auto& ref : card.nodes) ids.push_back(resolve(ref));
        spice::Device& dev = card.fn(ckt, prefix + card.name, ids, env);
        out.devices[card.name] = &dev;
        g_cards.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case Card::Kind::Text: {
        if (!opts.text_emitter)
          throw ElaborateError("subckt '" + def.name +
                               "' has text cards but no text emitter was "
                               "provided");
        std::vector<std::string> tokens;
        tokens.reserve(card.tokens.size());
        for (const auto& t : card.tokens)
          tokens.push_back(substitute_params(t, env));
        const TextCardRequest req{tokens, card.line_no, scope};
        spice::Device* dev = opts.text_emitter(ckt, req, resolve);
        if (dev != nullptr && !tokens.empty())
          out.devices[tokens[0]] = dev;
        g_cards.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case Card::Kind::Sub: {
        const Instance& inst = card.sub;
        const SubcktDef* child = lib.find(inst.subckt);
        if (child == nullptr)
          throw ElaborateError("unknown subckt '" + inst.subckt +
                               "' instanced by '" + inst.name + "'");
        std::vector<spice::NodeId> child_ports;
        child_ports.reserve(inst.bindings.size());
        for (const auto& b : inst.bindings)
          child_ports.push_back(resolve(substitute_params(b, env)));
        ParamEnv child_env = child->params;
        for (const auto& [k, v] : inst.param_overrides) child_env[k] = v;
        elaborate(ckt, lib, *child, prefix + inst.name, child_ports,
                  child_env, opts);
        break;
      }
    }
  }

  g_instances.fetch_add(1, std::memory_order_relaxed);
  return out;
}

InstanceHandles elaborate(spice::Circuit& ckt, const Library& lib,
                          const Instance& inst, const ParamEnv& caller_env,
                          const std::string& parent_scope,
                          const ElaborateOptions& opts) {
  const SubcktDef* def = lib.find(inst.subckt);
  if (def == nullptr)
    throw ElaborateError("unknown subckt '" + inst.subckt +
                         "' instanced by '" + inst.name + "'");
  std::vector<spice::NodeId> port_ids;
  port_ids.reserve(inst.bindings.size());
  for (const auto& b : inst.bindings) {
    const std::string name = substitute_params(b, caller_env);
    port_ids.push_back(is_ground_name(name) ? ckt.ground() : ckt.node(name));
  }
  ParamEnv env = def->params;
  for (const auto& [k, v] : inst.param_overrides) env[k] = v;
  const std::string scope =
      parent_scope.empty() ? inst.name : parent_scope + "." + inst.name;
  return elaborate(ckt, lib, *def, scope, port_ids, env, opts);
}

}  // namespace nemtcam::hier
