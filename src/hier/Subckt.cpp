#include "hier/Subckt.h"

namespace nemtcam::hier {

bool Library::add(SubcktDef def) {
  return defs_.emplace(def.name, std::move(def)).second;
}

const SubcktDef* Library::find(const std::string& name) const {
  const auto it = defs_.find(name);
  return it == defs_.end() ? nullptr : &it->second;
}

}  // namespace nemtcam::hier
