// Elaboration: flattens a hier::Instance into a spice::Circuit.
//
// Name scoping rules (section 9 of DESIGN.md):
//  * the instance contributes one scope segment; nested scopes join with
//    '.' — "Xrow.Xcell3"
//  * a node reference inside a subckt body resolves, in order, to ground
//    ("0"/"gnd"/"GND" stay global), a port (bound to the parent's node),
//    or a cell-local node named "<scope>.<local>"
//  * devices are named "<scope>.<local-card-name>" — this is the
//    hierarchical instance path ERC findings and the fault injector see.
//
// The template-cache contract: elaborate once, replay many. After the
// first transaction the caller rebinds source waveforms
// (Circuit::rebind_source) and re-seeds device state through the returned
// InstanceHandles; neither bumps the topology revision, so the CSR stamp
// pattern and symbolic LU recorded by the AssemblyCache survive across
// transactions. stats() counts elaborations so tests can assert that a
// replayed search reconstructs nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "hier/Subckt.h"

namespace nemtcam::hier {

struct ElaborateError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// What an instantiation hands back for later rebinding: the scope prefix
// plus local-name → device / local-name → node maps (ports included).
struct InstanceHandles {
  std::string scope;
  std::unordered_map<std::string, spice::Device*> devices;
  std::unordered_map<std::string, spice::NodeId> nodes;

  spice::Device* device(const std::string& local) const {
    const auto it = devices.find(local);
    return it == devices.end() ? nullptr : it->second;
  }
  spice::NodeId node_at(const std::string& local) const {
    const auto it = nodes.find(local);
    if (it == nodes.end())
      throw ElaborateError("no node '" + local + "' in instance " + scope);
    return it->second;
  }
};

// Emits one text card into the circuit. Supplied by the netlist module
// (which owns the element grammar); receives the resolved node ids in the
// same positions a NodeResolver was asked for them. Throws on bad cards.
struct TextCardRequest {
  const std::vector<std::string>& tokens;  // post {param}-substitution
  int line_no;
  const std::string& scope;  // device-name prefix ("" at top level)
};
using NodeResolver = std::function<spice::NodeId(const std::string&)>;
using TextEmitter =
    std::function<spice::Device*(spice::Circuit&, const TextCardRequest&,
                                 const NodeResolver&)>;

struct ElaborateOptions {
  // Required when any card (at any depth) is a Text card.
  TextEmitter text_emitter;
};

// Flattens `def` into `ckt` under `scope` ("" elaborates into the global
// namespace) with its ports pre-resolved to `port_ids` (positional, must
// match def.ports.size()). `env` is the effective parameter environment.
InstanceHandles elaborate(spice::Circuit& ckt, const Library& lib,
                          const SubcktDef& def, const std::string& scope,
                          const std::vector<spice::NodeId>& port_ids,
                          const ParamEnv& env = {},
                          const ElaborateOptions& opts = {});

// Flattens `inst` resolving its string bindings in the parent scope (top
// level: global node names). Parameter resolution: def defaults, then
// inst.param_overrides, then `caller_env` entries referenced by override
// values have already been substituted by the parser.
InstanceHandles elaborate(spice::Circuit& ckt, const Library& lib,
                          const Instance& inst, const ParamEnv& caller_env = {},
                          const std::string& parent_scope = "",
                          const ElaborateOptions& opts = {});

// Substitutes "{name}" occurrences from env; unknown names throw.
std::string substitute_params(const std::string& token, const ParamEnv& env);

// Process-wide elaboration counters (monotonic; for the zero-
// reconstruction assertions and the bench report).
struct Stats {
  std::uint64_t instances_elaborated = 0;  // every scope, nested included
  std::uint64_t cards_emitted = 0;         // devices constructed
};
Stats stats();
void reset_stats();

// Process default for "route transactions through elaborated templates".
// Initialized lazily from the environment: NEMTCAM_NO_HIER=1 starts it
// off (the legacy flat builders run instead — the A/B path).
bool default_enabled();
void set_default_enabled(bool on);

}  // namespace nemtcam::hier
