// Hierarchical subcircuit IR.
//
// A SubcktDef is the reusable description of one cell/block: named ports,
// numeric parameters with defaults, and an ordered list of element cards.
// An Instance names a definition and binds its ports. elaborate() (see
// hier/Elaborate.h) flattens an Instance into a spice::Circuit with scoped
// node/device names ("Xrow.Xcell3.N1"), which is how the seven TCAM row
// builders and the netlist parser's .subckt/X cards share one mechanism.
//
// Cards come in three flavors:
//  * Emit  — a C++ closure that constructs exactly one typed device. The
//            row builders use these so an elaborated cell is device-for-
//            device identical to the legacy hand-assembled circuits
//            (bitwise-equal parameters, same construction order).
//  * Text  — raw netlist tokens ("N1 slb stg1 gs 0 closed") deferred to a
//            TextEmitter callback. The netlist module supplies the
//            emitter (hier deliberately does not depend on netlist), so
//            .subckt bodies reuse the full element-card grammar.
//  * Sub   — a nested Instance (hierarchy inside hierarchy).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "spice/Circuit.h"

namespace nemtcam::hier {

// Numeric parameter environment ({name} substitution in text cards; passed
// through to emit closures).
using ParamEnv = std::map<std::string, double>;

// Constructs one device into the circuit. `name` is the fully scoped
// instance name; `nodes` are the card's node references resolved to ids in
// the card's declared order.
using EmitFn = std::function<spice::Device&(
    spice::Circuit&, const std::string& name,
    const std::vector<spice::NodeId>& nodes, const ParamEnv& params)>;

struct Instance {
  std::string name;     // "Xcell3" — becomes a scope segment when elaborated
  std::string subckt;   // definition name looked up in the Library
  // Port bindings by position: node names resolved in the *parent* scope.
  // (The tcam template path binds ports to already-resolved NodeIds via the
  // elaborate() overload instead.)
  std::vector<std::string> bindings;
  // Per-instance parameter overrides (X card "k=v" pairs).
  ParamEnv param_overrides;
};

struct Card {
  enum class Kind { Emit, Text, Sub };
  Kind kind = Kind::Emit;

  // Emit
  std::string name;                 // local device name, scoped on emit
  std::vector<std::string> nodes;   // local node references
  EmitFn fn;

  // Text
  std::vector<std::string> tokens;  // raw element-card tokens
  int line_no = 0;                  // source line for error attribution

  // Sub
  Instance sub;
};

struct SubcktDef {
  std::string name;
  std::vector<std::string> ports;
  ParamEnv params;  // defaults, overridable per instance
  std::vector<Card> cards;

  // Appends an emit card: `fn` constructs the device from the resolved
  // nodes (given here as local names: ports or cell-local nodes).
  void emit(std::string dev_name, std::vector<std::string> node_refs,
            EmitFn fn) {
    Card c;
    c.kind = Card::Kind::Emit;
    c.name = std::move(dev_name);
    c.nodes = std::move(node_refs);
    c.fn = std::move(fn);
    cards.push_back(std::move(c));
  }

  void text(std::vector<std::string> tokens, int line_no) {
    Card c;
    c.kind = Card::Kind::Text;
    c.tokens = std::move(tokens);
    c.line_no = line_no;
    cards.push_back(std::move(c));
  }

  void sub(Instance inst) {
    Card c;
    c.kind = Card::Kind::Sub;
    c.sub = std::move(inst);
    cards.push_back(std::move(c));
  }
};

// Definition store; names are unique (redefinition is an error the parser
// reports with a line number).
class Library {
 public:
  // Returns false when a definition with this name already exists.
  bool add(SubcktDef def);
  const SubcktDef* find(const std::string& name) const;
  bool empty() const noexcept { return defs_.empty(); }

 private:
  std::map<std::string, SubcktDef> defs_;
};

}  // namespace nemtcam::hier
