// Device-fault taxonomy for the NEM-relay TCAM and the deterministic
// per-cell fault draw used by Monte-Carlo campaigns.
//
// The five fault kinds cover the dominant NEM-relay failure mechanisms
// reported for poly-SiGe / TiN relay arrays plus the CMOS periphery:
//  - RelayStuckClosed: contact stiction or micro-welding — the beam never
//    releases. The cell permanently asserts one compare branch (forced
//    mismatches on one key polarity). Dead.
//  - RelayStuckOpen: fractured or fatigued beam — the contact never
//    closes and the air gap is a true open (g_off = 0, not just small).
//    The cell silently drops one compare branch (false matches). Dead.
//  - ContactDrift: cycling wear raises the contact resistance by orders
//    of magnitude; the discharge path still exists but is too slow for
//    the sense strobe. Weak.
//  - GateLeak: a damaged gate dielectric drains the stored floating-gate
//    charge well inside the refresh period; the affected branch releases
//    before the search arrives (the cell degrades toward X). Weak.
//  - MosVthOutlier: process-tail threshold shift on a periphery MOSFET —
//    delay/energy outlier, not a logic fault. Weak.
//
// Selection is a pure function of (seed, row, col): the same seed always
// yields the same fault map at any trial parallelism, which is what makes
// campaign results reproducible and bisectable.
#pragma once

#include <cstdint>
#include <vector>

#include "core/Ternary.h"

namespace nemtcam::fault {

enum class FaultKind : std::uint8_t {
  None = 0,
  RelayStuckClosed,
  RelayStuckOpen,
  ContactDrift,
  GateLeak,
  MosVthOutlier,
};

const char* fault_kind_name(FaultKind k);

// Per-cell occurrence probabilities, one per kind.
struct FaultRates {
  double stuck_closed = 0.0;
  double stuck_open = 0.0;
  double contact_drift = 0.0;
  double gate_leak = 0.0;
  double vth_outlier = 0.0;

  double total() const {
    return stuck_closed + stuck_open + contact_drift + gate_leak + vth_outlier;
  }
  // Splits one per-cell defect rate across the kinds with a fixed mix:
  // 20% stuck-closed, 20% stuck-open, 25% drift, 20% gate leak, 15% Vth.
  static FaultRates uniform(double per_cell_rate);
};

// Fault severities applied by FaultInjector when mutating devices.
struct FaultSeverity {
  double drift_r_on = 50e3;  // drifted contact resistance (Ω; nominal 1 kΩ)
  double leak_g = 1e-9;      // gate–body leakage (S): µs-scale retention
  double vth_shift = 0.15;   // |ΔVth| (V); sign carried by the FaultSpec
  double g_off_broken = 0.0; // fractured beam: contact leakage exactly 0
};

// One cell's drawn fault.
struct FaultSpec {
  int row = 0;
  int col = 0;
  FaultKind kind = FaultKind::None;
  // Which compare branch the fault hits: N1 (the stored-1 relay, drain on
  // SL̄) or N2 (the stored-0 relay, drain on SL).
  bool on_n1 = true;
  // Sign bit for signed severities (Vth outlier direction).
  bool positive = true;
};

// splitmix64 finalizer over a (seed, row, col) mix — the deterministic
// per-cell randomness source.
std::uint64_t cell_hash(std::uint64_t seed, int row, int col);

// Draws the (possibly None) fault of one cell.
FaultSpec fault_at(std::uint64_t seed, int row, int col,
                   const FaultRates& rates);

enum class CellHealth : std::uint8_t { Healthy = 0, Weak, Dead };
CellHealth health_of(FaultKind k);

// Fault map of a rows × width array: the non-None draws plus the row
// classification consumed by spare-row remapping and fault-aware refresh.
struct FaultReport {
  std::uint64_t seed = 0;
  int rows = 0;
  int width = 0;
  std::vector<FaultSpec> faults;  // only kind != None, (row, col) ascending

  // Rows containing at least one Dead cell.
  std::vector<int> dead_rows() const;
  // Rows containing Weak cells but no Dead ones.
  std::vector<int> weak_rows() const;
  // Worst cell health in a given row.
  CellHealth row_health(int row) const;
  const FaultSpec* find(int row, int col) const;
};

FaultReport draw_faults(std::uint64_t seed, int rows, int width,
                        const FaultRates& rates);

// --- Behavioral compare under a fault (array-level campaigns) -----------
//
// The 3T2N cell discharges the matchline when an asserted searchline
// reaches a closed relay: stored 1 closes N1 on SL̄ (asserted by key 0),
// stored 0 closes N2 on SL (asserted by key 1). The fault kinds perturb
// which branch is closed, or how fast it discharges.
struct CellBehavior {
  bool discharges = false;   // pulls the ML down in time for the strobe
  double delay_scale = 1.0;  // multiplier on the cell's discharge delay
};

CellBehavior faulty_cell_compare(core::Ternary stored, core::Ternary key,
                                 FaultKind kind, bool on_n1);

// Whole-row behavioral search: `match` is the faulty sense outcome at the
// strobe; `delay_scale` the worst discharge slowdown among the cells that
// did discharge (1.0 for a clean row).
struct RowOutcome {
  bool match = true;
  double delay_scale = 1.0;
};

RowOutcome faulty_row_match(const core::TernaryWord& stored,
                            const core::TernaryWord& key,
                            const FaultReport& report, int row);

}  // namespace nemtcam::fault
