// Applies drawn FaultSpecs to a built circuit by device-name convention.
//
// Three naming conventions are understood. The legacy flat fixtures name
// per-column devices "<base>_<col>" ("N1_3", "Tw1_0", "Ts_7", …); the
// hierarchical cell templates scope them under their instance as
// "Xcell<col>.<base>" ("Xcell3.N1"); ArrayTemplate adds the row level,
// "Xrow<row>.Xcell<col>.<base>" ("Xrow2.Xcell3.N1") — there the fault's
// row must match the scope too. The injector walks the circuit's
// device list, parses the column index from either form, and mutates the
// matching devices in place through the fault hooks
// (NemRelay::force_stuck / set_contact_resistance / set_gate_leakage,
// Mosfet::set_vth_outlier) — the AssemblyCache's recorded stamp pattern
// is unaffected because the hooks only change stamp *values* (a
// stuck-open relay with g_off = 0 still stamps its zero into its recorded
// slots). Every hook is absolute, so applying the same FaultSpec twice is
// idempotent — callers may re-inject an accumulated fault list into a
// persistent circuit (lifetime engine circuit checks) without stacking
// severities.
#pragma once

#include <vector>

#include "fault/FaultModel.h"
#include "spice/Circuit.h"

namespace nemtcam::fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultSeverity severity = {})
      : severity_(severity) {}

  const FaultSeverity& severity() const noexcept { return severity_; }

  // Applies one fault to every matching device in the circuit. Relay
  // faults target "N1_<col>" or "N2_<col>" per spec.on_n1; MosVthOutlier
  // shifts every MOSFET in the column (the compare stack shares the
  // outlier's process corner). Returns the number of devices mutated.
  int apply(spice::Circuit& circuit, const FaultSpec& spec) const;

  // Applies every fault of `row` in the report to a single-row circuit.
  int apply_row(spice::Circuit& circuit, const FaultReport& report,
                int row) const;

  // Deterministically draws and applies the faults of row 0 of a
  // width-wide array (the per-trial single-row fixture path used by the
  // Monte-Carlo campaign). Returns the applied specs.
  std::vector<FaultSpec> inject(spice::Circuit& circuit, std::uint64_t seed,
                                int width, const FaultRates& rates) const;

 private:
  FaultSeverity severity_;
};

}  // namespace nemtcam::fault
