#include "fault/FaultInjector.h"

#include <cctype>
#include <string>

#include "devices/Mosfet.h"
#include "devices/NemRelay.h"
#include "util/Log.h"

namespace nemtcam::fault {

namespace {

// Parses a decimal column index out of [begin, end); returns -1 when the
// range is empty or not all digits.
int parse_col(const std::string& name, std::size_t begin, std::size_t end) {
  if (begin >= end) return -1;
  int col = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) return -1;
    col = col * 10 + (name[i] - '0');
  }
  return col;
}

// Array coordinates of a device. row is -1 when the name carries no row
// scope (flat or single-row hierarchical names match any requested row);
// col is -1 when the name matches no known convention.
struct DeviceLoc {
  int row = -1;
  int col = -1;
};

// Three naming conventions: flat "<base>_<col>" ("N1_3"), single-row
// hierarchical "Xcell<col>.<base>" ("Xcell3.N1"), and the two-level array
// scope "Xrow<row>.Xcell<col>.<base>" ("Xrow2.Xcell3.N1") produced by
// ArrayTemplate.
DeviceLoc locate(const std::string& name) {
  DeviceLoc loc;
  std::size_t pos = 0;
  if (name.rfind("Xrow", 0) == 0) {
    const std::size_t row_dot = name.find('.');
    if (row_dot == std::string::npos) return {};
    loc.row = parse_col(name, 4, row_dot);
    if (loc.row < 0) return {};
    pos = row_dot + 1;
  }
  const std::size_t dot = name.find('.', pos);
  if (dot != std::string::npos) {
    if (name.compare(pos, 5, "Xcell") != 0) return {};
    loc.col = parse_col(name, pos + 5, dot);
    return loc;
  }
  if (loc.row >= 0) return {};  // "Xrow<r>.<base>" is row hardware, not a cell
  const std::size_t us = name.rfind('_');
  if (us == std::string::npos) return {};
  loc.col = parse_col(name, us + 1, name.size());
  return loc;
}

// Local (scope-stripped) device name: everything after the last '.'.
std::string local_name(const std::string& name) {
  const std::size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

bool is_target_relay(const std::string& name, bool on_n1) {
  const char* base = on_n1 ? "N1" : "N2";
  if (name.find('.') != std::string::npos) return local_name(name) == base;
  return name.rfind(std::string(base) + "_", 0) == 0;
}

}  // namespace

int FaultInjector::apply(spice::Circuit& circuit, const FaultSpec& spec) const {
  if (spec.kind == FaultKind::None) return 0;
  int applied = 0;
  for (const auto& dev : circuit.devices()) {
    const DeviceLoc loc = locate(dev->name());
    if (loc.col != spec.col) continue;
    // Row-scoped names must match the spec's row; unscoped names come
    // from single-row circuits, where every device is the spec's row.
    if (loc.row >= 0 && loc.row != spec.row) continue;
    if (auto* relay = dynamic_cast<devices::NemRelay*>(dev.get())) {
      if (!is_target_relay(relay->name(), spec.on_n1)) continue;
      switch (spec.kind) {
        case FaultKind::RelayStuckClosed:
          relay->force_stuck(true);
          ++applied;
          break;
        case FaultKind::RelayStuckOpen:
          relay->force_stuck(false);
          relay->set_off_leakage(severity_.g_off_broken);
          ++applied;
          break;
        case FaultKind::ContactDrift:
          relay->set_contact_resistance(severity_.drift_r_on);
          ++applied;
          break;
        case FaultKind::GateLeak:
          relay->set_gate_leakage(severity_.leak_g);
          ++applied;
          break;
        default:
          break;
      }
    } else if (auto* mos = dynamic_cast<devices::Mosfet*>(dev.get())) {
      if (spec.kind != FaultKind::MosVthOutlier) continue;
      // Absolute offset from the design-nominal threshold, not a relative
      // shift: like every relay hook above this is idempotent, so callers
      // may re-apply a fault list to a persistent circuit.
      mos->set_vth_outlier(spec.positive ? severity_.vth_shift
                                         : -severity_.vth_shift);
      ++applied;
    }
  }
  if (applied == 0)
    log::debug("fault injector: no device matched ", fault_kind_name(spec.kind),
               " at col ", spec.col);
  return applied;
}

int FaultInjector::apply_row(spice::Circuit& circuit, const FaultReport& report,
                             int row) const {
  int applied = 0;
  for (const FaultSpec& f : report.faults)
    if (f.row == row) applied += apply(circuit, f);
  return applied;
}

std::vector<FaultSpec> FaultInjector::inject(spice::Circuit& circuit,
                                             std::uint64_t seed, int width,
                                             const FaultRates& rates) const {
  std::vector<FaultSpec> applied;
  for (int c = 0; c < width; ++c) {
    const FaultSpec spec = fault_at(seed, /*row=*/0, c, rates);
    if (spec.kind == FaultKind::None) continue;
    apply(circuit, spec);
    applied.push_back(spec);
  }
  return applied;
}

}  // namespace nemtcam::fault
