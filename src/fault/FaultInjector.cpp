#include "fault/FaultInjector.h"

#include <cctype>
#include <string>

#include "devices/Mosfet.h"
#include "devices/NemRelay.h"
#include "util/Log.h"

namespace nemtcam::fault {

namespace {

// Parses a decimal column index out of [begin, end); returns -1 when the
// range is empty or not all digits.
int parse_col(const std::string& name, std::size_t begin, std::size_t end) {
  if (begin >= end) return -1;
  int col = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) return -1;
    col = col * 10 + (name[i] - '0');
  }
  return col;
}

// Column index of a device under either naming convention: flat
// "<base>_<col>" ("N1_3"), or hierarchical "Xcell<col>.<base>"
// ("Xcell3.N1") as produced by the elaborated cell templates. Returns -1
// when the name matches neither.
int column_of(const std::string& name) {
  const std::size_t dot = name.find('.');
  if (dot != std::string::npos) {
    constexpr const char* kInst = "Xcell";
    constexpr std::size_t kInstLen = 5;
    if (name.rfind(kInst, 0) != 0) return -1;
    return parse_col(name, kInstLen, dot);
  }
  const std::size_t us = name.rfind('_');
  if (us == std::string::npos) return -1;
  return parse_col(name, us + 1, name.size());
}

// Local (scope-stripped) device name: everything after the last '.'.
std::string local_name(const std::string& name) {
  const std::size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

bool is_target_relay(const std::string& name, bool on_n1) {
  const char* base = on_n1 ? "N1" : "N2";
  if (name.find('.') != std::string::npos) return local_name(name) == base;
  return name.rfind(std::string(base) + "_", 0) == 0;
}

}  // namespace

int FaultInjector::apply(spice::Circuit& circuit, const FaultSpec& spec) const {
  if (spec.kind == FaultKind::None) return 0;
  int applied = 0;
  for (const auto& dev : circuit.devices()) {
    if (column_of(dev->name()) != spec.col) continue;
    if (auto* relay = dynamic_cast<devices::NemRelay*>(dev.get())) {
      if (!is_target_relay(relay->name(), spec.on_n1)) continue;
      switch (spec.kind) {
        case FaultKind::RelayStuckClosed:
          relay->force_stuck(true);
          ++applied;
          break;
        case FaultKind::RelayStuckOpen:
          relay->force_stuck(false);
          relay->set_off_leakage(severity_.g_off_broken);
          ++applied;
          break;
        case FaultKind::ContactDrift:
          relay->set_contact_resistance(severity_.drift_r_on);
          ++applied;
          break;
        case FaultKind::GateLeak:
          relay->set_gate_leakage(severity_.leak_g);
          ++applied;
          break;
        default:
          break;
      }
    } else if (auto* mos = dynamic_cast<devices::Mosfet*>(dev.get())) {
      if (spec.kind != FaultKind::MosVthOutlier) continue;
      mos->shift_vth(spec.positive ? severity_.vth_shift
                                   : -severity_.vth_shift);
      ++applied;
    }
  }
  if (applied == 0)
    log::debug("fault injector: no device matched ", fault_kind_name(spec.kind),
               " at col ", spec.col);
  return applied;
}

int FaultInjector::apply_row(spice::Circuit& circuit, const FaultReport& report,
                             int row) const {
  int applied = 0;
  for (const FaultSpec& f : report.faults)
    if (f.row == row) applied += apply(circuit, f);
  return applied;
}

std::vector<FaultSpec> FaultInjector::inject(spice::Circuit& circuit,
                                             std::uint64_t seed, int width,
                                             const FaultRates& rates) const {
  std::vector<FaultSpec> applied;
  for (int c = 0; c < width; ++c) {
    const FaultSpec spec = fault_at(seed, /*row=*/0, c, rates);
    if (spec.kind == FaultKind::None) continue;
    apply(circuit, spec);
    applied.push_back(spec);
  }
  return applied;
}

}  // namespace nemtcam::fault
