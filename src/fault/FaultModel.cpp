#include "fault/FaultModel.h"

#include <algorithm>

#include "util/Expect.h"

namespace nemtcam::fault {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::None: return "none";
    case FaultKind::RelayStuckClosed: return "relay-stuck-closed";
    case FaultKind::RelayStuckOpen: return "relay-stuck-open";
    case FaultKind::ContactDrift: return "contact-drift";
    case FaultKind::GateLeak: return "gate-leak";
    case FaultKind::MosVthOutlier: return "mos-vth-outlier";
  }
  return "?";
}

FaultRates FaultRates::uniform(double per_cell_rate) {
  NEMTCAM_EXPECT(per_cell_rate >= 0.0 && per_cell_rate <= 1.0);
  FaultRates r;
  r.stuck_closed = 0.20 * per_cell_rate;
  r.stuck_open = 0.20 * per_cell_rate;
  r.contact_drift = 0.25 * per_cell_rate;
  r.gate_leak = 0.20 * per_cell_rate;
  r.vth_outlier = 0.15 * per_cell_rate;
  return r;
}

namespace {

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double to_unit(std::uint64_t h) {
  // Top 53 bits → [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint64_t cell_hash(std::uint64_t seed, int row, int col) {
  const std::uint64_t cell =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(col));
  return splitmix64(seed ^ splitmix64(cell));
}

FaultSpec fault_at(std::uint64_t seed, int row, int col,
                   const FaultRates& rates) {
  FaultSpec spec;
  spec.row = row;
  spec.col = col;
  const std::uint64_t h = cell_hash(seed, row, col);
  const double u = to_unit(h);
  double acc = rates.stuck_closed;
  if (u < acc) {
    spec.kind = FaultKind::RelayStuckClosed;
  } else if (u < (acc += rates.stuck_open)) {
    spec.kind = FaultKind::RelayStuckOpen;
  } else if (u < (acc += rates.contact_drift)) {
    spec.kind = FaultKind::ContactDrift;
  } else if (u < (acc += rates.gate_leak)) {
    spec.kind = FaultKind::GateLeak;
  } else if (u < (acc += rates.vth_outlier)) {
    spec.kind = FaultKind::MosVthOutlier;
  } else {
    return spec;  // None
  }
  // Independent low bits pick the branch and the severity sign.
  spec.on_n1 = (h & 1u) != 0;
  spec.positive = (h & 2u) != 0;
  return spec;
}

CellHealth health_of(FaultKind k) {
  switch (k) {
    case FaultKind::None:
      return CellHealth::Healthy;
    case FaultKind::RelayStuckClosed:
    case FaultKind::RelayStuckOpen:
      return CellHealth::Dead;
    case FaultKind::ContactDrift:
    case FaultKind::GateLeak:
    case FaultKind::MosVthOutlier:
      return CellHealth::Weak;
  }
  return CellHealth::Healthy;
}

CellHealth FaultReport::row_health(int row) const {
  CellHealth worst = CellHealth::Healthy;
  for (const FaultSpec& f : faults) {
    if (f.row != row) continue;
    worst = std::max(worst, health_of(f.kind));
  }
  return worst;
}

std::vector<int> FaultReport::dead_rows() const {
  std::vector<int> out;
  for (int r = 0; r < rows; ++r)
    if (row_health(r) == CellHealth::Dead) out.push_back(r);
  return out;
}

std::vector<int> FaultReport::weak_rows() const {
  std::vector<int> out;
  for (int r = 0; r < rows; ++r)
    if (row_health(r) == CellHealth::Weak) out.push_back(r);
  return out;
}

const FaultSpec* FaultReport::find(int row, int col) const {
  for (const FaultSpec& f : faults)
    if (f.row == row && f.col == col) return &f;
  return nullptr;
}

FaultReport draw_faults(std::uint64_t seed, int rows, int width,
                        const FaultRates& rates) {
  NEMTCAM_EXPECT(rows >= 0 && width >= 0);
  NEMTCAM_EXPECT(rates.total() <= 1.0);
  FaultReport report;
  report.seed = seed;
  report.rows = rows;
  report.width = width;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < width; ++c) {
      const FaultSpec spec = fault_at(seed, r, c, rates);
      if (spec.kind != FaultKind::None) report.faults.push_back(spec);
    }
  return report;
}

CellBehavior faulty_cell_compare(core::Ternary stored, core::Ternary key,
                                 FaultKind kind, bool on_n1) {
  // Healthy closed states and asserted lines of the 3T2N compare network.
  bool n1_closed = stored == core::Ternary::One;   // drain on SL̄
  bool n2_closed = stored == core::Ternary::Zero;  // drain on SL
  const bool slb_asserted = key == core::Ternary::Zero;
  const bool sl_asserted = key == core::Ternary::One;

  double delay_scale = 1.0;
  bool drifted = false;
  switch (kind) {
    case FaultKind::None:
      break;
    case FaultKind::RelayStuckClosed:
      (on_n1 ? n1_closed : n2_closed) = true;
      break;
    case FaultKind::RelayStuckOpen:
      (on_n1 ? n1_closed : n2_closed) = false;
      break;
    case FaultKind::GateLeak:
      // The leaked branch released before the search arrived.
      (on_n1 ? n1_closed : n2_closed) = false;
      break;
    case FaultKind::ContactDrift:
      drifted = true;
      break;
    case FaultKind::MosVthOutlier:
      // Periphery-only: the compare topology is intact; the access stack
      // is marginally slower (raised Vth) or leakier/faster (lowered).
      delay_scale = 1.1;
      break;
  }

  CellBehavior b;
  const bool n1_path = n1_closed && slb_asserted;
  const bool n2_path = n2_closed && sl_asserted;
  if (drifted) {
    // The drifted branch still discharges, but ~50× slower than the sense
    // strobe budget assumes — at the strobe it reads as no discharge. The
    // other (healthy) branch of the same cell is unaffected.
    const bool healthy_path = on_n1 ? n2_path : n1_path;
    const bool drifted_path = on_n1 ? n1_path : n2_path;
    b.discharges = healthy_path;
    if (drifted_path && !healthy_path) b.delay_scale = 50.0;
    return b;
  }
  b.discharges = n1_path || n2_path;
  b.delay_scale = delay_scale;
  return b;
}

RowOutcome faulty_row_match(const core::TernaryWord& stored,
                            const core::TernaryWord& key,
                            const FaultReport& report, int row) {
  NEMTCAM_EXPECT(stored.size() == key.size());
  RowOutcome out;
  for (std::size_t c = 0; c < key.size(); ++c) {
    const FaultSpec* f = report.find(row, static_cast<int>(c));
    const CellBehavior b = faulty_cell_compare(
        stored[c], key[c], f != nullptr ? f->kind : FaultKind::None,
        f != nullptr && f->on_n1);
    if (b.discharges) {
      out.match = false;
      out.delay_scale = std::max(out.delay_scale, b.delay_scale);
    }
  }
  return out;
}

}  // namespace nemtcam::fault
