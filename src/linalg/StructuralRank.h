// Structural (generic) rank of a sparsity pattern.
//
// The structural rank of a matrix is the size of a maximum matching in the
// bipartite graph rows × columns with an edge per stored entry — the rank
// the matrix would have for generic (algebraically independent) nonzero
// values. A structurally rank-deficient MNA pattern is singular for *every*
// assignment of device values: the defect is topological (a node with no
// DC path, a capacitor-only cut set, a sense-only control node), not
// numeric, so it can be reported by name before any factorization is
// attempted. This is the row/column-cover half of a Dulmage–Mendelsohn
// decomposition; the full coarse decomposition is not needed to attribute
// the defect, the unmatched rows/columns are.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/SparseLu.h"  // CsrView

namespace nemtcam::linalg {

struct StructuralRankResult {
  std::size_t rank = 0;
  // Equations no pivot can be assigned to / unknowns no equation
  // determines. Both empty iff the pattern has full structural rank.
  std::vector<std::size_t> unmatched_rows;
  std::vector<std::size_t> unmatched_cols;

  bool full_rank(std::size_t n) const noexcept { return rank == n; }
};

// Maximum bipartite matching over the pattern of `a` (values are ignored;
// exact zeros still count as structural entries, matching the stamp-slot
// semantics of AssemblyCache). Augmenting-path matching: O(n·nnz), fine at
// MNA sizes.
StructuralRankResult structural_rank(const CsrView& a);

// Same, over a raw CSR pattern (n rows/cols, row_ptr of n+1 offsets).
StructuralRankResult structural_rank(std::size_t n,
                                     const std::size_t* row_ptr,
                                     const std::size_t* cols);

}  // namespace nemtcam::linalg
