#include "linalg/StructuralRank.h"

namespace nemtcam::linalg {

namespace {

// Kuhn's augmenting-path search: tries to match row r, displacing earlier
// matches along alternating paths. `visited` is per-outer-iteration.
bool try_match(std::size_t r, const std::size_t* row_ptr,
               const std::size_t* cols, std::vector<std::size_t>& col_match,
               std::vector<char>& visited) {
  for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
    const std::size_t c = cols[k];
    if (visited[c]) continue;
    visited[c] = 1;
    if (col_match[c] == static_cast<std::size_t>(-1) ||
        try_match(col_match[c], row_ptr, cols, col_match, visited)) {
      col_match[c] = r;
      return true;
    }
  }
  return false;
}

}  // namespace

StructuralRankResult structural_rank(std::size_t n, const std::size_t* row_ptr,
                                     const std::size_t* cols) {
  StructuralRankResult out;
  std::vector<std::size_t> col_match(n, static_cast<std::size_t>(-1));
  std::vector<char> row_matched(n, 0);
  std::vector<char> visited(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    std::fill(visited.begin(), visited.end(), 0);
    if (try_match(r, row_ptr, cols, col_match, visited)) {
      ++out.rank;
      row_matched[r] = 1;
    }
  }
  // try_match displaces matches but never unmatches a row overall, so a
  // row marked matched stays matched; recompute from col_match to be safe
  // about which rows ended up covered.
  std::fill(row_matched.begin(), row_matched.end(), 0);
  for (std::size_t c = 0; c < n; ++c) {
    if (col_match[c] != static_cast<std::size_t>(-1))
      row_matched[col_match[c]] = 1;
    else
      out.unmatched_cols.push_back(c);
  }
  for (std::size_t r = 0; r < n; ++r)
    if (!row_matched[r]) out.unmatched_rows.push_back(r);
  return out;
}

StructuralRankResult structural_rank(const CsrView& a) {
  return structural_rank(a.n, a.row_ptr, a.cols);
}

}  // namespace nemtcam::linalg
