// Row-major dense matrix, sized for MNA systems of small circuits
// (a few hundred unknowns). Larger systems use SparseMatrix/SparseLu.
#pragma once

#include <cstddef>
#include <vector>

#include "util/Expect.h"

namespace nemtcam::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols);

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    NEMTCAM_EXPECT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    NEMTCAM_EXPECT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  // Sets every entry to zero without reallocating.
  void set_zero();

  // y = A * x
  std::vector<double> multiply(const std::vector<double>& x) const;

  // Frobenius norm difference, used by tests.
  double max_abs_diff(const DenseMatrix& other) const;

  const std::vector<double>& data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Vector helpers shared by solvers and the transient engine.
double dot(const std::vector<double>& a, const std::vector<double>& b);
double norm_inf(const std::vector<double>& v);
// r = a - b
std::vector<double> subtract(const std::vector<double>& a, const std::vector<double>& b);
// a += s * b
void axpy(std::vector<double>& a, double s, const std::vector<double>& b);

}  // namespace nemtcam::linalg
