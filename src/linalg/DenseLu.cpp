#include "linalg/DenseLu.h"

#include <cmath>

namespace nemtcam::linalg {

DenseLu::DenseLu(DenseMatrix a, double pivot_tol) : lu_(std::move(a)) {
  NEMTCAM_EXPECT(lu_.rows() == lu_.cols());
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k at/below k.
    std::size_t piv = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(lu_(r, k));
      if (mag > best) {
        best = mag;
        piv = r;
      }
    }
    if (best < pivot_tol)
      throw SingularMatrixError("DenseLu: matrix is singular (pivot " +
                                std::to_string(best) + " at column " +
                                std::to_string(k) + ")");
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(piv, c));
      std::swap(perm_[k], perm_[piv]);
    }
    const double pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / pivot;
      lu_(r, k) = factor;  // store L below the diagonal
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

std::vector<double> DenseLu::solve(const std::vector<double>& b) const {
  const std::size_t n = lu_.rows();
  NEMTCAM_EXPECT(b.size() == n);
  // Apply permutation, then forward substitution (unit lower-triangular L).
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution with U.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

}  // namespace nemtcam::linalg
