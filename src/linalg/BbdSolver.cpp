#include "linalg/BbdSolver.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "linalg/DenseLu.h"  // SingularMatrixError
#include "util/Expect.h"
#include "util/ThreadPool.h"

namespace nemtcam::linalg {

namespace {

constexpr double kPivotTol = 1e-30;

// Locates `value` in a sorted vector; the caller guarantees presence.
std::size_t sorted_pos(const std::vector<std::size_t>& v, std::size_t value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  return static_cast<std::size_t>(it - v.begin());
}

}  // namespace

void BbdSolver::set_partition(std::shared_ptr<const BbdPartition> partition,
                              util::ThreadPool* pool) {
  partition_ = std::move(partition);
  pool_ = pool;
  analyzed_ = false;
  factored_ = false;
}

bool BbdSolver::split(const CsrView& a) {
  analyzed_ = false;
  factored_ = false;
  if (!partition_ || partition_->block_of.size() != a.n) return false;
  const std::vector<int>& part = partition_->block_of;
  const std::size_t k_blocks =
      static_cast<std::size_t>(std::max(partition_->n_blocks, 0));
  for (const int b : part)
    if (b < -1 || b >= static_cast<int>(k_blocks)) return false;

  n_ = a.n;
  blocks_.assign(k_blocks, Block{});
  border_idx_.clear();
  loc_.assign(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    if (part[i] < 0) {
      loc_[i] = border_idx_.size();
      border_idx_.push_back(i);
    } else {
      Block& blk = blocks_[static_cast<std::size_t>(part[i])];
      loc_[i] = blk.unknowns.size();
      blk.unknowns.push_back(i);  // ascending: i is visited in order
    }
  }
  m_ = border_idx_.size();
  block_off_.assign(k_blocks + 1, 0);
  for (std::size_t k = 0; k < k_blocks; ++k)
    block_off_[k + 1] = block_off_[k] + blocks_[k].unknowns.size();

  // Classify every entry. Destination slots are recorded symbolically
  // (kind, block, index) and resolved to pointers once storage is final.
  enum class Dest : std::uint8_t { D, B, C, E };
  struct Slot {
    Dest dest;
    std::size_t block;  // unused for E
    std::size_t idx;
  };
  std::vector<Slot> slots(a.nnz());
  // B entries are collected per block as (border pos, local row, input j)
  // and sorted into CSC once the touched sets are known.
  struct BEntry {
    std::size_t pos, row, input;
  };
  std::vector<std::vector<BEntry>> b_entries(k_blocks);
  e_base_.assign(m_ * m_, 0.0);

  for (std::size_t k = 0; k < k_blocks; ++k)
    blocks_[k].d_ptr.assign(blocks_[k].unknowns.size() + 1, 0);

  for (std::size_t r = 0; r < n_; ++r) {
    const int br = part[r];
    for (std::size_t j = a.row_ptr[r]; j < a.row_ptr[r + 1]; ++j) {
      const std::size_t c = a.cols[j];
      const int bc = part[c];
      if (br >= 0 && bc >= 0) {
        if (br != bc) return false;  // direct block-to-block coupling
        Block& blk = blocks_[static_cast<std::size_t>(br)];
        blk.d_cols.push_back(loc_[c]);
        blk.d_vals.push_back(0.0);
        slots[j] = {Dest::D, static_cast<std::size_t>(br),
                    blk.d_vals.size() - 1};
        ++blk.d_ptr[loc_[r] + 1];
      } else if (br >= 0) {  // interior row, border column → B
        b_entries[static_cast<std::size_t>(br)].push_back(
            {loc_[c], loc_[r], j});
        slots[j] = {Dest::B, static_cast<std::size_t>(br), 0};  // patched
      } else if (bc >= 0) {  // border row, interior column → C
        Block& blk = blocks_[static_cast<std::size_t>(bc)];
        blk.c_rows.push_back(loc_[r]);  // border pos; compressed below
        blk.c_cols.push_back(loc_[c]);
        blk.c_vals.push_back(0.0);
        slots[j] = {Dest::C, static_cast<std::size_t>(bc),
                    blk.c_vals.size() - 1};
      } else {  // border row and column → E
        slots[j] = {Dest::E, 0, loc_[r] * m_ + loc_[c]};
      }
    }
  }

  for (std::size_t k = 0; k < k_blocks; ++k) {
    Block& blk = blocks_[k];
    for (std::size_t r = 0; r < blk.unknowns.size(); ++r)
      blk.d_ptr[r + 1] += blk.d_ptr[r];

    // Touched border set: union of B columns and C rows.
    blk.touched.clear();
    for (const BEntry& e : b_entries[k]) blk.touched.push_back(e.pos);
    for (const std::size_t pos : blk.c_rows) blk.touched.push_back(pos);
    std::sort(blk.touched.begin(), blk.touched.end());
    blk.touched.erase(std::unique(blk.touched.begin(), blk.touched.end()),
                      blk.touched.end());
    const std::size_t tk = blk.touched.size();
    for (std::size_t& pos : blk.c_rows) pos = sorted_pos(blk.touched, pos);
    blk.rows_with_c = blk.c_rows;
    std::sort(blk.rows_with_c.begin(), blk.rows_with_c.end());
    blk.rows_with_c.erase(
        std::unique(blk.rows_with_c.begin(), blk.rows_with_c.end()),
        blk.rows_with_c.end());

    // B → CSC over the touched columns.
    std::vector<BEntry>& be = b_entries[k];
    for (BEntry& e : be) e.pos = sorted_pos(blk.touched, e.pos);
    std::sort(be.begin(), be.end(), [](const BEntry& x, const BEntry& y) {
      return x.pos != y.pos ? x.pos < y.pos : x.row < y.row;
    });
    blk.b_ptr.assign(tk + 1, 0);
    blk.b_rows.resize(be.size());
    blk.b_vals.assign(be.size(), 0.0);
    blk.cols_with_b.clear();
    for (std::size_t e = 0; e < be.size(); ++e) {
      blk.b_rows[e] = be[e].row;
      ++blk.b_ptr[be[e].pos + 1];
      slots[be[e].input] = {Dest::B, k, e};
      if (blk.cols_with_b.empty() || blk.cols_with_b.back() != be[e].pos)
        blk.cols_with_b.push_back(be[e].pos);
    }
    for (std::size_t t = 0; t < tk; ++t) blk.b_ptr[t + 1] += blk.b_ptr[t];
  }

  // Storage is final; resolve scatter pointers.
  scatter_.resize(a.nnz());
  for (std::size_t j = 0; j < a.nnz(); ++j) {
    const Slot& s = slots[j];
    switch (s.dest) {
      case Dest::D: scatter_[j] = &blocks_[s.block].d_vals[s.idx]; break;
      case Dest::B: scatter_[j] = &blocks_[s.block].b_vals[s.idx]; break;
      case Dest::C: scatter_[j] = &blocks_[s.block].c_vals[s.idx]; break;
      case Dest::E: scatter_[j] = &e_base_[s.idx]; break;
    }
  }
  in_row_ptr_.assign(a.row_ptr, a.row_ptr + n_ + 1);
  in_cols_.assign(a.cols, a.cols + a.nnz());

  // Share symbolic analyses between identically patterned blocks.
  for (std::size_t k = 0; k < k_blocks; ++k) {
    blocks_[k].tmpl = k;
    for (std::size_t p = 0; p < k; ++p) {
      if (blocks_[p].tmpl != p) continue;
      if (blocks_[p].unknowns.size() == blocks_[k].unknowns.size() &&
          blocks_[p].d_ptr == blocks_[k].d_ptr &&
          blocks_[p].d_cols == blocks_[k].d_cols) {
        blocks_[k].tmpl = p;
        ++stats_.pattern_shares;
        break;
      }
    }
  }

  int_b_.assign(block_off_.back(), 0.0);
  int_y_.assign(block_off_.back(), 0.0);
  border_b_.assign(m_, 0.0);
  s_perm_.assign(m_, 0);

  ++stats_.symbolic_builds;
  analyzed_ = true;
  return true;
}

void BbdSolver::scatter(const CsrView& a) {
  std::fill(e_base_.begin(), e_base_.end(), 0.0);
  const double* vals = a.vals;
  for (std::size_t j = 0; j < scatter_.size(); ++j) *scatter_[j] = vals[j];
}

// Precomputes the sparse-rhs Schur schedule for block k against its LU's
// current elimination order: per B column the forward ops its pattern
// activates (plus the rows to wipe afterwards), and one descending stage
// closure covering every column C reads. Structural only — valid for any
// numeric refill until the LU re-pivots.
void BbdSolver::build_schur_plan(std::size_t k) {
  Block& blk = blocks_[k];
  const SparseLu::ScheduleView sv = blk.lu.schedule();
  const std::size_t nk = blk.unknowns.size();
  const std::size_t tk = blk.touched.size();
  blk.plan_fwd_begin.assign(tk + 1, 0);
  blk.plan_fwd.clear();
  blk.plan_pat_begin.assign(tk + 1, 0);
  blk.plan_pat.clear();
  blk.plan_bwd.clear();

  // Forward reach per B column: walking stages in schedule order, a stage
  // fires when its pivot row is structurally nonzero in the rhs; its ops
  // then spread the pattern to their target rows.
  std::vector<bool> live(nk, false);
  for (std::size_t t = 0; t < tk; ++t) {
    blk.plan_fwd_begin[t] = blk.plan_fwd.size();
    blk.plan_pat_begin[t] = blk.plan_pat.size();
    if (blk.b_ptr[t] == blk.b_ptr[t + 1]) continue;
    for (std::size_t e = blk.b_ptr[t]; e < blk.b_ptr[t + 1]; ++e) {
      live[blk.b_rows[e]] = true;
      blk.plan_pat.push_back(static_cast<std::uint32_t>(blk.b_rows[e]));
    }
    for (std::size_t s = 0; s < sv.n; ++s) {
      const std::size_t piv = sv.pivot_of_stage[s];
      if (!live[piv]) continue;
      for (std::size_t oi = sv.stage_op_begin[s]; oi < sv.stage_op_begin[s + 1];
           ++oi) {
        const std::size_t tgt = sv.op_target[oi];
        if (!live[tgt]) {
          live[tgt] = true;
          blk.plan_pat.push_back(static_cast<std::uint32_t>(tgt));
        }
        blk.plan_fwd.push_back({static_cast<std::uint32_t>(tgt),
                                static_cast<std::uint32_t>(piv),
                                static_cast<std::uint32_t>(oi)});
      }
    }
    for (std::size_t e = blk.plan_pat_begin[t]; e < blk.plan_pat.size(); ++e)
      live[blk.plan_pat[e]] = false;
  }
  blk.plan_fwd_begin[tk] = blk.plan_fwd.size();
  blk.plan_pat_begin[tk] = blk.plan_pat.size();

  // Backward closure: C reads x only at its column positions; stage s
  // additionally needs x at its pivot row's active (later-stage) columns.
  // An ascending walk marks dependencies before reaching them; evaluation
  // order is descending.
  std::vector<std::size_t> stage_of_col(nk, 0);
  for (std::size_t s = 0; s < sv.n; ++s) stage_of_col[sv.col_of_stage[s]] = s;
  std::vector<bool> needed(nk, false);
  for (const std::size_t lc : blk.c_cols) needed[stage_of_col[lc]] = true;
  for (std::size_t s = 0; s < sv.n; ++s) {
    if (!needed[s]) continue;
    for (std::size_t j = sv.stage_src_begin[s]; j < sv.stage_src_begin[s + 1];
         ++j)
      needed[stage_of_col[sv.u_cols[sv.stage_src[j]]]] = true;
  }
  for (std::size_t s = sv.n; s-- > 0;)
    if (needed[s]) blk.plan_bwd.push_back(static_cast<std::uint32_t>(s));

  blk.plan_generation = blk.lu.schedule_generation();
  blk.plan_valid = true;
}

// Replays (or re-runs) this block's LU over the freshly scattered values
// and leaves S_k = C_k D_k⁻¹ B_k in `scr`, formed column-by-column via
// the sparse Schur plan. Touches only block-private and slot-private
// state, so blocks run concurrently. Returns true when the numeric
// replay sufficed (false = full LU re-run).
bool BbdSolver::block_numeric(std::size_t k, Scratch& scr, bool force_full,
                              double* s_direct) {
  Block& blk = blocks_[k];
  const std::size_t nk = blk.unknowns.size();
  const std::size_t tk = blk.touched.size();
  const CsrView dv{nk, blk.d_ptr.data(), blk.d_cols.data(),
                   blk.d_vals.data()};
  bool replayed = false;
  if (!force_full && blk.lu.factored() && blk.lu.refactorize(dv)) {
    replayed = true;
  } else {
    blk.lu.factorize(dv);  // throws SingularMatrixError on failure
  }
  if (nk == 0 || tk == 0) {
    if (s_direct == nullptr) scr.sk.assign(tk * tk, 0.0);
    return replayed;
  }
  if (!blk.plan_valid || blk.plan_generation != blk.lu.schedule_generation())
    build_schur_plan(k);

  const SparseLu::ScheduleView sv = blk.lu.schedule();
  // rhs/x are kept zero-clean by the per-column wipes below, so a matching
  // size means they are already all-zero.
  if (scr.rhs.size() != nk) scr.rhs.assign(nk, 0.0);
  if (scr.x.size() != nk) scr.x.assign(nk, 0.0);
  if (s_direct == nullptr)
    scr.sk.assign(tk * tk, 0.0);
  else if (scr.cacc.size() < tk)
    scr.cacc.resize(tk);
  scr.inv_diag.resize(blk.plan_bwd.size());
  for (std::size_t i = 0; i < blk.plan_bwd.size(); ++i)
    scr.inv_diag[i] = 1.0 / sv.u_vals[sv.diag_idx[blk.plan_bwd[i]]];
  double* y = scr.rhs.data();
  double* x = scr.x.data();
  for (const std::size_t t : blk.cols_with_b) {
    for (std::size_t e = blk.b_ptr[t]; e < blk.b_ptr[t + 1]; ++e)
      y[blk.b_rows[e]] = blk.b_vals[e];
    for (std::size_t f = blk.plan_fwd_begin[t]; f < blk.plan_fwd_begin[t + 1];
         ++f) {
      const Block::FwdOp& op = blk.plan_fwd[f];
      y[op.target] -= sv.op_factor[op.op] * y[op.pivot];
    }
    for (std::size_t i = 0; i < blk.plan_bwd.size(); ++i) {
      const std::uint32_t s = blk.plan_bwd[i];
      double acc = y[sv.pivot_of_stage[s]];
      for (std::size_t j = sv.stage_src_begin[s];
           j < sv.stage_src_begin[s + 1]; ++j) {
        const std::size_t u = sv.stage_src[j];
        acc -= sv.u_vals[u] * x[sv.u_cols[u]];
      }
      x[sv.col_of_stage[s]] = acc * scr.inv_diag[i];
    }
    if (s_direct == nullptr) {
      for (std::size_t e = 0; e < blk.c_vals.size(); ++e)
        scr.sk[blk.c_rows[e] * tk + t] += blk.c_vals[e] * x[blk.c_cols[e]];
    } else {
      // Serial path: accumulate this S_k column in a small buffer and
      // subtract it from S immediately, skipping the dense sk staging.
      // Rounding matches the batched path exactly — same add order per
      // cell, one subtraction — so thread counts stay bit-identical.
      double* cacc = scr.cacc.data();
      for (const std::size_t tr : blk.rows_with_c) cacc[tr] = 0.0;
      for (std::size_t e = 0; e < blk.c_vals.size(); ++e)
        cacc[blk.c_rows[e]] += blk.c_vals[e] * x[blk.c_cols[e]];
      const std::size_t gc = blk.touched[t];
      for (const std::size_t tr : blk.rows_with_c)
        s_direct[blk.touched[tr] * m_ + gc] -= cacc[tr];
    }
    // Wipe only what this column dirtied; the buffers stay zero-clean.
    for (std::size_t e = blk.plan_pat_begin[t]; e < blk.plan_pat_begin[t + 1];
         ++e)
      y[blk.plan_pat[e]] = 0.0;
    for (const std::uint32_t s : blk.plan_bwd) x[sv.col_of_stage[s]] = 0.0;
  }
  return replayed;
}

void BbdSolver::accumulate_schur(std::size_t k, const Scratch& scr) {
  const Block& blk = blocks_[k];
  const std::size_t tk = blk.touched.size();
  for (const std::size_t tr : blk.rows_with_c) {
    double* s_row = s_.data() + blk.touched[tr] * m_;
    const double* sk_row = scr.sk.data() + tr * tk;
    for (const std::size_t t : blk.cols_with_b)
      s_row[blk.touched[t]] -= sk_row[t];
  }
}

void BbdSolver::factor_schur() {
  for (std::size_t i = 0; i < m_; ++i) s_perm_[i] = i;
  for (std::size_t j = 0; j < m_; ++j) {
    std::size_t piv = j;
    double best = std::fabs(s_[j * m_ + j]);
    for (std::size_t r = j + 1; r < m_; ++r) {
      const double mag = std::fabs(s_[r * m_ + j]);
      if (mag > best) {
        best = mag;
        piv = r;
      }
    }
    if (best < kPivotTol)
      throw SingularMatrixError("BbdSolver: singular Schur complement");
    if (piv != j) {
      for (std::size_t c = 0; c < m_; ++c)
        std::swap(s_[j * m_ + c], s_[piv * m_ + c]);
      std::swap(s_perm_[j], s_perm_[piv]);
    }
    const double inv_piv = 1.0 / s_[j * m_ + j];
    const double* pivot_row = s_.data() + j * m_;
    for (std::size_t r = j + 1; r < m_; ++r) {
      double* row = s_.data() + r * m_;
      const double f = row[j] * inv_piv;
      row[j] = f;
      if (f == 0.0) continue;
      for (std::size_t c = j + 1; c < m_; ++c) row[c] -= f * pivot_row[c];
    }
  }
}

void BbdSolver::run_blocks(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t)>& fn) {
  if (pool_ != nullptr && pool_->thread_count() > 1 && end - begin > 1) {
    pool_->parallel_for(begin, end, fn, 1);
  } else {
    for (std::size_t k = begin; k < end; ++k) fn(k);
  }
}

// Shared numeric pass: factor/replay every block batch-wise (bounded
// scratch: one W/S_k slot per pool thread) and assemble the Schur
// complement in block order regardless of scheduling.
bool BbdSolver::numeric() {
  const std::size_t k_blocks = blocks_.size();
  s_ = e_base_;
  const std::size_t slots = std::max<std::size_t>(
      1, pool_ != nullptr ? pool_->thread_count() : 1);
  scratch_.resize(std::max<std::size_t>(
      1, std::min(slots, std::max<std::size_t>(k_blocks, 1))));
  std::atomic<std::uint64_t> full{0}, replayed{0};
  if (scratch_.size() == 1) {
    // Serial: blocks already run in order, so each one subtracts its S_k
    // from S directly (same block order and rounding as the batched path).
    for (std::size_t k = 0; k < k_blocks; ++k) {
      if (block_numeric(k, scratch_[0], /*force_full=*/false, s_.data()))
        replayed.fetch_add(1, std::memory_order_relaxed);
      else
        full.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    for (std::size_t batch = 0; batch < k_blocks; batch += scratch_.size()) {
      const std::size_t batch_end =
          std::min(k_blocks, batch + scratch_.size());
      run_blocks(batch, batch_end, [&](std::size_t k) {
        if (block_numeric(k, scratch_[k - batch], /*force_full=*/false,
                          nullptr))
          replayed.fetch_add(1, std::memory_order_relaxed);
        else
          full.fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t k = batch; k < batch_end; ++k)
        accumulate_schur(k, scratch_[k - batch]);
    }
  }
  stats_.block_factorizations += full.load();
  stats_.block_refactorizations += replayed.load();
  factor_schur();
  factored_ = true;
  return true;
}

bool BbdSolver::factorize(const CsrView& a) {
  if (!split(a)) return false;
  scatter(a);

  // One full analysis per distinct pattern, in parallel; everyone else
  // copies the template's symbolic schedule before the numeric pass.
  std::vector<std::size_t> reps;
  for (std::size_t k = 0; k < blocks_.size(); ++k)
    if (blocks_[k].tmpl == k) reps.push_back(k);
  run_blocks(0, reps.size(), [&](std::size_t i) {
    Block& blk = blocks_[reps[i]];
    const CsrView dv{blk.unknowns.size(), blk.d_ptr.data(),
                     blk.d_cols.data(), blk.d_vals.data()};
    blk.lu.factorize(dv);
  });
  stats_.block_factorizations += reps.size();
  for (std::size_t k = 0; k < blocks_.size(); ++k)
    if (blocks_[k].tmpl != k) blocks_[k].lu = blocks_[blocks_[k].tmpl].lu;

  return numeric();
}

bool BbdSolver::refactorize(const CsrView& a) {
  if (!analyzed_ || a.n != n_ || a.nnz() != in_cols_.size()) return false;
  if (!std::equal(in_row_ptr_.begin(), in_row_ptr_.end(), a.row_ptr) ||
      !std::equal(in_cols_.begin(), in_cols_.end(), a.cols))
    return false;
  factored_ = false;
  scatter(a);
  return numeric();
}

void BbdSolver::solve_inplace(std::vector<double>& b) {
  NEMTCAM_EXPECT_MSG(factored_, "BbdSolver::solve before factorize");
  NEMTCAM_EXPECT(b.size() == n_);
  const std::size_t k_blocks = blocks_.size();

  // Split the rhs into block slices and the border slice.
  for (std::size_t k = 0; k < k_blocks; ++k) {
    const Block& blk = blocks_[k];
    double* bk = int_b_.data() + block_off_[k];
    for (std::size_t r = 0; r < blk.unknowns.size(); ++r)
      bk[r] = b[blk.unknowns[r]];
  }
  for (std::size_t i = 0; i < m_; ++i) border_b_[i] = b[border_idx_[i]];

  // Block-forward: y_k = D_k⁻¹ b_k (disjoint slices → parallel-safe).
  run_blocks(0, k_blocks, [&](std::size_t k) {
    const Block& blk = blocks_[k];
    const std::size_t nk = blk.unknowns.size();
    if (nk == 0) return;
    std::copy(int_b_.begin() + block_off_[k],
              int_b_.begin() + block_off_[k] + nk,
              int_y_.begin() + block_off_[k]);
    blk.lu.solve_inplace(int_y_.data() + block_off_[k]);
  });

  // Border rhs: b_s − Σ C_k y_k, accumulated in block order.
  for (std::size_t k = 0; k < k_blocks; ++k) {
    const Block& blk = blocks_[k];
    const double* yk = int_y_.data() + block_off_[k];
    for (std::size_t e = 0; e < blk.c_vals.size(); ++e)
      border_b_[blk.touched[blk.c_rows[e]]] -=
          blk.c_vals[e] * yk[blk.c_cols[e]];
  }

  // Dense border solve: permute, forward, backward.
  xs_.resize(m_);
  std::vector<double>& xs = xs_;
  for (std::size_t i = 0; i < m_; ++i) xs[i] = border_b_[s_perm_[i]];
  for (std::size_t r = 1; r < m_; ++r) {
    const double* row = s_.data() + r * m_;
    double acc = xs[r];
    for (std::size_t c = 0; c < r; ++c) acc -= row[c] * xs[c];
    xs[r] = acc;
  }
  for (std::size_t r = m_; r-- > 0;) {
    const double* row = s_.data() + r * m_;
    double acc = xs[r];
    for (std::size_t c = r + 1; c < m_; ++c) acc -= row[c] * xs[c];
    xs[r] = acc / row[r];
  }

  // Block-backward: x_k = D_k⁻¹ (b_k − B_k x_s), reusing int_y_'s slices
  // (still disjoint per block).
  run_blocks(0, k_blocks, [&](std::size_t k) {
    const Block& blk = blocks_[k];
    const std::size_t nk = blk.unknowns.size();
    if (nk == 0) return;
    double* rhs = int_y_.data() + block_off_[k];
    std::copy(int_b_.begin() + block_off_[k],
              int_b_.begin() + block_off_[k] + nk, rhs);
    for (const std::size_t t : blk.cols_with_b) {
      const double x_border = xs[blk.touched[t]];
      if (x_border == 0.0) continue;
      for (std::size_t e = blk.b_ptr[t]; e < blk.b_ptr[t + 1]; ++e)
        rhs[blk.b_rows[e]] -= blk.b_vals[e] * x_border;
    }
    blk.lu.solve_inplace(rhs);
  });

  // Gather.
  for (std::size_t k = 0; k < k_blocks; ++k) {
    const Block& blk = blocks_[k];
    const double* xk = int_y_.data() + block_off_[k];
    for (std::size_t r = 0; r < blk.unknowns.size(); ++r)
      b[blk.unknowns[r]] = xk[r];
  }
  for (std::size_t i = 0; i < m_; ++i) b[border_idx_[i]] = xs[i];
}

}  // namespace nemtcam::linalg
