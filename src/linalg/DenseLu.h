// LU factorization with partial pivoting and solve, for dense MNA systems.
#pragma once

#include <vector>

#include "linalg/DenseMatrix.h"

namespace nemtcam::linalg {

class DenseLu {
 public:
  // Factorizes a square matrix. Throws SingularMatrixError if a pivot
  // magnitude falls below `pivot_tol`.
  explicit DenseLu(DenseMatrix a, double pivot_tol = 1e-30);

  // Solves A x = b for the original A.
  std::vector<double> solve(const std::vector<double>& b) const;

  std::size_t size() const noexcept { return lu_.rows(); }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;  // row permutation: row i of U came from perm_[i]
};

struct SingularMatrixError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace nemtcam::linalg
