#include "linalg/DenseMatrix.h"

#include <algorithm>
#include <cmath>

namespace nemtcam::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void DenseMatrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
  NEMTCAM_EXPECT(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

double DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  NEMTCAM_EXPECT(rows_ == other.rows_ && cols_ == other.cols_);
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  return worst;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  NEMTCAM_EXPECT(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm_inf(const std::vector<double>& v) {
  double worst = 0.0;
  for (double x : v) worst = std::max(worst, std::fabs(x));
  return worst;
}

std::vector<double> subtract(const std::vector<double>& a, const std::vector<double>& b) {
  NEMTCAM_EXPECT(a.size() == b.size());
  std::vector<double> r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

void axpy(std::vector<double>& a, double s, const std::vector<double>& b) {
  NEMTCAM_EXPECT(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

}  // namespace nemtcam::linalg
