#include "linalg/SparseMatrix.h"

#include <algorithm>

namespace nemtcam::linalg {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_entries_(rows) {}

void SparseMatrix::add(std::size_t r, std::size_t c, double value) {
  NEMTCAM_EXPECT(r < rows_ && c < cols_);
  if (value == 0.0) return;
  row_entries_[r].emplace_back(c, value);
  compressed_ = false;
}

void SparseMatrix::clear() {
  for (auto& row : row_entries_) row.clear();
  compressed_ = true;
}

void SparseMatrix::compress() {
  if (compressed_) return;
  for (auto& row : row_entries_) {
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t out = 0;
    for (std::size_t i = 0; i < row.size();) {
      std::size_t j = i;
      double acc = 0.0;
      while (j < row.size() && row[j].first == row[i].first) acc += row[j++].second;
      row[out++] = {row[i].first, acc};
      i = j;
    }
    row.resize(out);
  }
  compressed_ = true;
}

const std::vector<std::vector<std::pair<std::size_t, double>>>&
SparseMatrix::rows_view() {
  compress();
  return row_entries_;
}

std::vector<double> SparseMatrix::multiply(const std::vector<double>& x) {
  NEMTCAM_EXPECT(x.size() == cols_);
  compress();
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (const auto& [c, v] : row_entries_[r]) acc += v * x[c];
    y[r] = acc;
  }
  return y;
}

std::size_t SparseMatrix::nnz() {
  compress();
  std::size_t total = 0;
  for (const auto& row : row_entries_) total += row.size();
  return total;
}

}  // namespace nemtcam::linalg
