// Bordered-block-diagonal LU for array-structured MNA systems.
//
// An N×M TCAM array couples its per-row circuits only through the shared
// lines (searchline taps, VDD, the precharge rail): ordering each row's
// private unknowns first and the shared-line unknowns last gives
//
//     [ D_1          B_1 ] [x_1]   [b_1]
//     [      ...     ... ] [...] = [...]
//     [          D_K B_K ] [x_K]   [b_K]
//     [ C_1  ...  C_K  E ] [x_s]   [b_s]
//
// with sparse per-block diagonals D_k and a small border of size m. The
// solver factorizes the D_k independently (in parallel on a ThreadPool),
// forms the dense Schur complement S = E − Σ C_k D_k⁻¹ B_k on the border,
// and solves by block-forward / border / block-backward substitution.
//
// Symbolic work is shared: blocks whose D_k sparsity patterns are
// identical (all rows of one cell kind stamp identically) reuse one
// SparseLu symbolic analysis — the first such block runs the full
// fill-reducing analysis, the rest copy it and replay numerically,
// falling back to a private full factorization only when a reused pivot
// degenerates (SparseLu::refactorize's contract).
//
// Determinism: numeric results are bit-identical for every thread count.
// Per-block work writes only block-private storage, Schur contributions
// are accumulated into S sequentially in block order (batched so scratch
// stays bounded), and the border solve is serial — the same contract as
// util::run_sweep.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "linalg/SparseLu.h"

namespace nemtcam::util {
class ThreadPool;
}

namespace nemtcam::linalg {

// Maps every MNA unknown to its diagonal block, or to the border (-1).
// Valid partitions have no matrix entry coupling two different blocks;
// BbdSolver verifies this during the symbolic split and rejects the
// matrix (factorize() returns false) when the structure disagrees.
struct BbdPartition {
  std::vector<int> block_of;  // unknown index -> block id, or -1 = border
  int n_blocks = 0;
};

class BbdSolver {
 public:
  struct Stats {
    std::uint64_t symbolic_builds = 0;        // full symbolic splits
    std::uint64_t pattern_shares = 0;         // blocks reusing an analysis
    std::uint64_t block_factorizations = 0;   // full per-block LU runs
    std::uint64_t block_refactorizations = 0; // numeric-only replays
  };

  BbdSolver() = default;
  BbdSolver(const BbdSolver&) = delete;
  BbdSolver& operator=(const BbdSolver&) = delete;

  // Installs the partition and the pool block work fans out on (nullptr
  // or a 1-thread pool → serial). Drops any prior analysis.
  void set_partition(std::shared_ptr<const BbdPartition> partition,
                     util::ThreadPool* pool);
  bool has_partition() const noexcept { return partition_ != nullptr; }

  // Full symbolic split + numeric factorization. Returns false — leaving
  // the solver unusable — when the matrix does not fit the partition
  // (size mismatch or an entry coupling two blocks); the caller falls
  // back to a monolithic factorization. Throws SingularMatrixError when
  // a block or the Schur complement is numerically singular.
  bool factorize(const CsrView& a);

  // Numeric-only refactorization over the previously split pattern.
  // Returns false when the pattern changed (caller redoes factorize()).
  bool refactorize(const CsrView& a);

  bool factored() const noexcept { return factored_; }

  // Solves in place; b must have the factorized size.
  void solve_inplace(std::vector<double>& b);

  const Stats& stats() const noexcept { return stats_; }
  std::size_t border_size() const noexcept { return m_; }
  std::size_t block_count() const noexcept { return blocks_.size(); }

 private:
  struct Block {
    std::vector<std::size_t> unknowns;  // global unknown ids, ascending
    // D_k, local CSR (indices into `unknowns`).
    std::vector<std::size_t> d_ptr, d_cols;
    std::vector<double> d_vals;
    // Border positions this block touches (ascending); B columns and C
    // rows are indexed against this list ("tloc" indices).
    std::vector<std::size_t> touched;
    // B_k as CSC over the touched columns.
    std::vector<std::size_t> b_ptr;    // touched.size() + 1
    std::vector<std::size_t> b_rows;   // local row per entry
    std::vector<double> b_vals;
    std::vector<std::size_t> cols_with_b;  // tloc columns with entries
    // C_k entries (input order).
    std::vector<std::size_t> c_rows;   // tloc row
    std::vector<std::size_t> c_cols;   // local col
    std::vector<double> c_vals;
    std::vector<std::size_t> rows_with_c;  // unique tloc rows, sorted
    std::size_t tmpl = 0;  // block index whose D pattern this one shares
    SparseLu lu;

    // Sparse Schur plan over the LU's recorded schedule: each B column's
    // rhs activates only the elimination ops reachable from its nonzero
    // rows, and the back-substitution only needs the stage closure that
    // feeds the C columns — so forming C_k D_k⁻¹ B_k replays a few dozen
    // ops per border column instead of a dense nk-length solve. Rebuilt
    // whenever the block's LU re-pivots (schedule generation changes).
    struct FwdOp {
      std::uint32_t target, pivot;  // local rows
      std::uint32_t op;             // index into the schedule's op arrays
    };
    std::vector<std::size_t> plan_fwd_begin;  // touched.size() + 1
    std::vector<FwdOp> plan_fwd;
    std::vector<std::size_t> plan_pat_begin;  // touched.size() + 1
    std::vector<std::uint32_t> plan_pat;      // rhs rows to reset per column
    std::vector<std::uint32_t> plan_bwd;      // stages, descending
    std::uint64_t plan_generation = 0;
    bool plan_valid = false;
  };

  struct Scratch {
    std::vector<double> sk;   // C_k D_k⁻¹ B_k, dense tk × tk (batched path)
    std::vector<double> cacc;  // one S_k column (serial direct path)
    std::vector<double> rhs;  // forward-solve buffer (y), kept zero-clean
    std::vector<double> x;    // back-substitution buffer, kept zero-clean
    std::vector<double> inv_diag;  // 1/pivot per plan_bwd stage, per pass
  };

  bool split(const CsrView& a);       // symbolic: partition the pattern
  void scatter(const CsrView& a);     // numeric: input values → storage
  // Factors D_k (replay first, full on degeneration unless force_full),
  // then forms this block's Schur contribution: into scr.sk when
  // s_direct is null (batched/parallel path), or subtracted straight
  // from the dense S at s_direct when blocks run serially in order.
  // Returns true when the numeric replay sufficed.
  bool block_numeric(std::size_t k, Scratch& scr, bool force_full,
                     double* s_direct);
  void build_schur_plan(std::size_t k);
  void accumulate_schur(std::size_t k, const Scratch& scr);
  void factor_schur();                // dense partial-pivot LU of S
  void run_blocks(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);
  bool numeric();

  std::shared_ptr<const BbdPartition> partition_;
  util::ThreadPool* pool_ = nullptr;

  std::size_t n_ = 0;
  std::size_t m_ = 0;  // border size
  bool analyzed_ = false;
  bool factored_ = false;

  std::vector<Block> blocks_;
  std::vector<std::size_t> border_idx_;  // border pos -> global unknown
  // Global unknown -> local index (interior: within its block's
  // `unknowns`; border: position in border_idx_).
  std::vector<std::size_t> loc_;
  std::vector<std::size_t> block_off_;   // flat interior offsets, K + 1

  // Copy of the analyzed input pattern (refactorize verification).
  std::vector<std::size_t> in_row_ptr_, in_cols_;
  // Input entry j writes to *scatter_[j] (stable after split()).
  std::vector<double*> scatter_;

  std::vector<double> e_base_;   // dense m×m border block of the input
  std::vector<double> s_;        // factored Schur complement (in place)
  std::vector<std::size_t> s_perm_;

  // Solve-phase flat buffers (interior slices are disjoint per block).
  std::vector<double> int_b_, int_y_;
  std::vector<double> border_b_;
  std::vector<double> xs_;  // border solution scratch

  std::vector<Scratch> scratch_;
  Stats stats_;
};

}  // namespace nemtcam::linalg
