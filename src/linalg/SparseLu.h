// Sparse LU with partial (magnitude) pivoting via row elimination.
//
// Designed for MNA matrices of circuit netlists up to a few tens of
// thousands of unknowns: rows stay short (node degree + fill), so a
// scatter/gather row-combination with per-column candidate tracking is
// both simple and fast enough. Elimination operations are recorded so a
// factorization can be reused across many right-hand sides (one Newton
// iteration per transient step re-factorizes; the solve itself is cheap).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/SparseMatrix.h"

namespace nemtcam::linalg {

class SparseLu {
 public:
  // Factorizes; throws linalg::SingularMatrixError (see DenseLu.h) when a
  // pivot column has no usable entry.
  explicit SparseLu(SparseMatrix& a, double pivot_tol = 1e-30);

  std::vector<double> solve(const std::vector<double>& b) const;

  std::size_t size() const noexcept { return n_; }
  // Total stored nonzeros in U plus recorded L operations (fill metric).
  std::size_t fill_nnz() const noexcept;

 private:
  struct EliminationOp {
    std::size_t target_row;  // physical row index being updated
    std::size_t pivot_row;   // physical row index of the stage pivot
    double factor;           // multiplier subtracted: row_t -= f * row_p
  };

  std::size_t n_ = 0;
  // Final (upper-triangular in stage order) rows: row_entries_[p] sorted by column.
  std::vector<std::vector<std::pair<std::size_t, double>>> u_rows_;
  std::vector<std::size_t> pivot_of_stage_;  // stage k -> physical row
  std::vector<std::size_t> col_of_stage_;    // stage k -> eliminated column
  std::vector<EliminationOp> ops_;           // in elimination order
};

}  // namespace nemtcam::linalg
