// Sparse LU with partial (magnitude) pivoting via row elimination, split
// into a one-time symbolic phase and a cheap numeric refactorization.
//
// Designed for MNA matrices of circuit netlists up to a few tens of
// thousands of unknowns: rows stay short (node degree + fill), so a
// scatter/gather row-combination with per-column candidate tracking is
// both simple and fast enough.
//
// The full factorization (factorize()/constructor) picks a fill-reducing
// column order and a threshold-pivoted row per stage from the numeric
// values, but records the elimination *structurally*: every structural
// entry in a pivot column is eliminated (even if its value happens to be
// zero right now) and fill positions are kept even when values cancel.
// That makes the recorded pattern, pivot order and operation schedule
// valid for ANY matrix with the same sparsity pattern, so a Newton loop
// can call refactorize() per iteration — a flat, allocation-free replay of
// the recorded schedule — instead of re-running the full analysis.
// refactorize() watches the reused pivots and reports failure when one
// degenerates, at which point the caller runs a fresh full factorization
// (which re-picks pivots from the new values).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/SparseMatrix.h"

namespace nemtcam::linalg {

// Non-owning view of a square CSR matrix: per-row column indices sorted
// and unique. This is the hand-off format between the fixed-pattern MNA
// assembly cache and the LU, bypassing SparseMatrix entirely.
struct CsrView {
  std::size_t n = 0;
  const std::size_t* row_ptr = nullptr;  // n + 1 entries
  const std::size_t* cols = nullptr;     // row_ptr[n] entries
  const double* vals = nullptr;          // row_ptr[n] entries

  std::size_t nnz() const noexcept { return row_ptr ? row_ptr[n] : 0; }
};

class SparseLu {
 public:
  SparseLu() = default;
  // Factorizes; throws linalg::SingularMatrixError (see DenseLu.h) when a
  // pivot column has no usable entry.
  explicit SparseLu(SparseMatrix& a, double pivot_tol = 1e-30);
  explicit SparseLu(const CsrView& a, double pivot_tol = 1e-30);

  // Full symbolic + numeric factorization. Replaces any prior analysis.
  void factorize(const CsrView& a);
  void factorize(SparseMatrix& a);

  // Numeric-only refactorization over the previously analyzed pattern.
  // `a` must have exactly the sparsity pattern of the matrix last passed
  // to factorize(). Returns false — leaving the factorization unusable
  // until the next factorize() — when the pattern differs or a reused
  // pivot degenerates (|pivot| below the absolute tolerance or vanishing
  // relative to its row).
  bool refactorize(const CsrView& a);
  bool refactorize(SparseMatrix& a);

  bool factored() const noexcept { return factored_; }

  std::vector<double> solve(const std::vector<double>& b) const;
  // In-place: b is consumed and overwritten with the solution.
  void solve_inplace(std::vector<double>& bx) const;
  // Raw-pointer variant over size() doubles, allocation-free after the
  // first call (the back-substitution scratch is a reused member, so
  // concurrent solves need distinct SparseLu objects).
  void solve_inplace(double* bx) const;

  std::size_t size() const noexcept { return n_; }
  // Total stored entries in U plus recorded L operations (fill metric).
  std::size_t fill_nnz() const noexcept { return u_cols_.size() + op_target_.size(); }

  // Read-only view of the recorded elimination schedule, for callers that
  // precompute sparse-rhs solve plans over the fixed pattern (BbdSolver's
  // Schur plans). A forward solve is the op replay gated on nonzero pivot
  // rows (b[op_target[i]] -= op_factor[i] · b[pivot_of_stage]); the
  // back-substitution for stage s reads the pivot row's active entries
  // through stage_src[stage_src_begin[s]..stage_src_begin[s+1]) (indices
  // into u_cols/u_vals, all at later-stage columns) and divides by
  // u_vals[diag_idx[s]]. Pointers stay valid until the next full
  // factorize(); op_factor and u_vals refresh on every refactorize().
  struct ScheduleView {
    std::size_t n = 0;
    const std::size_t* pivot_of_stage = nullptr;
    const std::size_t* col_of_stage = nullptr;
    const std::size_t* diag_idx = nullptr;        // stage -> u_vals index
    const std::size_t* stage_op_begin = nullptr;  // n + 1
    const std::size_t* op_target = nullptr;
    const double* op_factor = nullptr;
    const std::size_t* stage_src_begin = nullptr;  // n + 1
    const std::size_t* stage_src = nullptr;        // u_cols/u_vals indices
    const std::size_t* u_cols = nullptr;
    const double* u_vals = nullptr;
  };
  ScheduleView schedule() const noexcept {
    return {n_,
            pivot_of_stage_.data(),
            col_of_stage_.data(),
            diag_idx_.data(),
            stage_op_begin_.data(),
            op_target_.data(),
            op_factor_.data(),
            stage_src_begin_.data(),
            stage_src_.data(),
            u_cols_.data(),
            u_vals_.data()};
  }
  // Bumped by every full factorize(): the pivot order (and with it any
  // schedule-derived plan) is only stable between full factorizations.
  std::uint64_t schedule_generation() const noexcept { return generation_; }

 private:
  static CsrView view_of(SparseMatrix& a, std::vector<std::size_t>& row_ptr,
                         std::vector<std::size_t>& cols,
                         std::vector<double>& vals);

  std::size_t n_ = 0;
  double pivot_tol_ = 1e-30;
  bool factored_ = false;
  std::uint64_t generation_ = 0;

  // U storage: final (post-fill) pattern of every physical row, flat CSR.
  // Values at columns eliminated from a row are exact zeros.
  std::vector<std::size_t> u_ptr_;   // n + 1
  std::vector<std::size_t> u_cols_;  // sorted per row
  std::vector<double> u_vals_;

  // Stage schedule (fixed by the symbolic phase).
  std::vector<std::size_t> pivot_of_stage_;  // stage k -> physical row
  std::vector<std::size_t> col_of_stage_;    // stage k -> eliminated column
  std::vector<std::size_t> diag_idx_;        // stage k -> index of the pivot
                                             //            value in u_vals_
  std::vector<std::size_t> stage_op_begin_;  // n + 1; ops of stage k are
                                             // [stage_op_begin_[k], [k+1])
  // Active pivot-row positions per stage (indices into u_vals_): columns
  // not yet eliminated when the row pivoted, minus the pivot column.
  std::vector<std::size_t> stage_src_begin_;  // n + 1
  std::vector<std::size_t> stage_src_;

  // Elimination operations, in schedule order. Op i subtracts
  // factor·pivot_row from target row op_target_[i]; the factor numerator
  // lives at u_vals_[op_factor_idx_[i]] and the scatter targets for the
  // pivot row's j-th entry at u_vals_[op_map_[op_map_begin_[i] + j]].
  std::vector<std::size_t> op_target_;
  std::vector<std::size_t> op_factor_idx_;
  std::vector<std::size_t> op_map_begin_;  // op count + 1
  std::vector<std::size_t> op_map_;
  std::vector<double> op_factor_;          // numeric factors (per refactor)

  // Copy of the analyzed input pattern, for refactorize() verification and
  // value scatter: input entry j lands at u_vals_[scatter_map_[j]].
  std::vector<std::size_t> in_row_ptr_;
  std::vector<std::size_t> in_cols_;
  std::vector<std::size_t> scatter_map_;

  mutable std::vector<double> x_scratch_;  // solve_inplace back-substitution
};

}  // namespace nemtcam::linalg
