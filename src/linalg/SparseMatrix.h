// Sparse matrix in triplet-accumulation form with CSR finalization.
//
// MNA stamping naturally produces duplicate (row, col) contributions that
// must accumulate; `add` supports that directly. `rows_view` exposes the
// accumulated per-row entries for the sparse LU.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/Expect.h"

namespace nemtcam::linalg {

class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  // Accumulates `value` at (r, c).
  void add(std::size_t r, std::size_t c, double value);

  // Resets all values to an empty matrix of the same shape.
  void clear();

  // Merges duplicates and sorts each row by column. Idempotent; called
  // automatically by consumers that need the normalized view.
  void compress();

  // Per-row (col, value) entries, sorted by column, duplicates merged.
  // Calls compress() if needed.
  const std::vector<std::vector<std::pair<std::size_t, double>>>& rows_view();

  // y = A * x (compresses first).
  std::vector<double> multiply(const std::vector<double>& x);

  // Number of stored nonzeros after compression.
  std::size_t nnz();

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  bool compressed_ = true;
  std::vector<std::vector<std::pair<std::size_t, double>>> row_entries_;
};

}  // namespace nemtcam::linalg
