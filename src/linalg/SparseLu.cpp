#include "linalg/SparseLu.h"

#include <algorithm>
#include <limits>
#include <cmath>

#include "linalg/DenseLu.h"  // SingularMatrixError

namespace nemtcam::linalg {

SparseLu::SparseLu(SparseMatrix& a, double pivot_tol) {
  NEMTCAM_EXPECT(a.rows() == a.cols());
  n_ = a.rows();
  u_rows_ = a.rows_view();  // copy of normalized rows; mutated in place below

  // col_candidates[c]: physical rows that may hold a nonzero in column c.
  // Entries can be stale (value eliminated or row already pivoted); they
  // are validated on use. Fill-ins push new candidates.
  std::vector<std::vector<std::size_t>> col_candidates(n_);
  for (std::size_t r = 0; r < n_; ++r)
    for (const auto& [c, v] : u_rows_[r]) {
      (void)v;
      col_candidates[c].push_back(r);
    }

  std::vector<bool> is_pivot(n_, false);
  pivot_of_stage_.assign(n_, 0);

  // Static fill-reducing column order: eliminate sparse columns first
  // (approximate minimum degree). Without this, a dense supply/ground-rail
  // column eliminated early couples every attached row and the
  // factorization goes quadratic.
  col_of_stage_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) col_of_stage_[i] = i;
  std::sort(col_of_stage_.begin(), col_of_stage_.end(),
            [&](std::size_t a, std::size_t b) {
              const auto da = col_candidates[a].size();
              const auto db = col_candidates[b].size();
              if (da != db) return da < db;
              return a < b;
            });

  // Scatter workspace for row combination.
  std::vector<double> work(n_, 0.0);
  std::vector<bool> touched(n_, false);
  std::vector<std::size_t> touched_cols;
  touched_cols.reserve(64);

  auto value_at = [&](std::size_t row, std::size_t col) -> double {
    const auto& entries = u_rows_[row];
    auto it = std::lower_bound(
        entries.begin(), entries.end(), col,
        [](const auto& e, std::size_t c) { return e.first < c; });
    if (it != entries.end() && it->first == col) return it->second;
    return 0.0;
  };

  // eliminated[c]: true once column c's stage has run (used to know which
  // entries in a pivot row are still "active" for fill bookkeeping).
  std::vector<bool> eliminated(n_, false);

  for (std::size_t stage = 0; stage < n_; ++stage) {
    const std::size_t k = col_of_stage_[stage];
    // Threshold pivoting with sparsity preference (Markowitz-style): among
    // candidates whose magnitude is within `threshold` of the column max,
    // pick the shortest row — this keeps fill near-linear on circuit
    // matrices while preserving numerical stability.
    constexpr double threshold = 0.1;
    auto& cands = col_candidates[k];
    double max_mag = 0.0;
    std::size_t out = 0;
    for (std::size_t idx = 0; idx < cands.size(); ++idx) {
      const std::size_t r = cands[idx];
      if (is_pivot[r]) continue;
      const double v = value_at(r, k);
      if (v == 0.0) continue;
      cands[out++] = r;  // keep valid candidates for the elimination pass
      max_mag = std::max(max_mag, std::fabs(v));
    }
    cands.resize(out);
    if (cands.empty() || max_mag < pivot_tol)
      throw SingularMatrixError("SparseLu: singular at column " + std::to_string(k));
    std::size_t best_row = n_;
    std::size_t best_len = std::numeric_limits<std::size_t>::max();
    double best_mag = 0.0;
    for (const std::size_t r : cands) {
      const double mag = std::fabs(value_at(r, k));
      if (mag < threshold * max_mag) continue;
      const std::size_t len = u_rows_[r].size();
      if (len < best_len || (len == best_len && mag > best_mag)) {
        best_len = len;
        best_row = r;
        best_mag = mag;
      }
    }
    NEMTCAM_ENSURE(best_row != n_);

    is_pivot[best_row] = true;
    pivot_of_stage_[stage] = best_row;
    eliminated[k] = true;
    const auto& pivot_entries = u_rows_[best_row];
    const double pivot_val = value_at(best_row, k);

    // Eliminate column k from every other valid candidate row.
    for (const std::size_t r : cands) {
      if (r == best_row) continue;
      const double target_val = value_at(r, k);
      if (target_val == 0.0) continue;  // may have been recorded before it was valid
      const double factor = target_val / pivot_val;
      ops_.push_back({r, best_row, factor});

      // row_r -= factor * pivot_row (scatter/gather), dropping column k.
      auto& row = u_rows_[r];
      touched_cols.clear();
      for (const auto& [c, v] : row) {
        work[c] = v;
        touched[c] = true;
        touched_cols.push_back(c);
      }
      for (const auto& [c, v] : pivot_entries) {
        if (!touched[c]) {
          work[c] = 0.0;
          touched[c] = true;
          touched_cols.push_back(c);
          if (!eliminated[c]) col_candidates[c].push_back(r);  // fill-in
        }
        work[c] -= factor * v;
      }
      std::sort(touched_cols.begin(), touched_cols.end());
      row.clear();
      for (const std::size_t c : touched_cols) {
        if (c != k && work[c] != 0.0) row.emplace_back(c, work[c]);
        touched[c] = false;
      }
    }
  }
}

std::vector<double> SparseLu::solve(const std::vector<double>& b) const {
  NEMTCAM_EXPECT(b.size() == n_);
  std::vector<double> y = b;
  // Forward: replay eliminations. At each recorded op the pivot row's value
  // is already final (a row is never updated after becoming a pivot).
  for (const auto& op : ops_) y[op.target_row] -= op.factor * y[op.pivot_row];

  // Backward: rows in reverse stage order form an upper-triangular system
  // (a pivot row's surviving entries belong to its own column plus
  // later-stage columns, whose unknowns are already solved).
  std::vector<double> x(n_, 0.0);
  for (std::size_t stage = n_; stage-- > 0;) {
    const std::size_t p = pivot_of_stage_[stage];
    const std::size_t k = col_of_stage_[stage];
    double acc = y[p];
    double diag = 0.0;
    for (const auto& [c, v] : u_rows_[p]) {
      if (c == k) {
        diag = v;
      } else {
        acc -= v * x[c];
      }
    }
    NEMTCAM_ENSURE_MSG(diag != 0.0, "SparseLu::solve: zero diagonal");
    x[k] = acc / diag;
  }
  return x;
}

std::size_t SparseLu::fill_nnz() const noexcept {
  std::size_t total = ops_.size();
  for (const auto& row : u_rows_) total += row.size();
  return total;
}

}  // namespace nemtcam::linalg
