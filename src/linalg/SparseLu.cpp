#include "linalg/SparseLu.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "linalg/DenseLu.h"  // SingularMatrixError

namespace nemtcam::linalg {

namespace {

// Relative floor for reused pivots: a pivot that shrinks below this
// fraction of the largest surviving entry in its row has lost the
// stability the original threshold pivoting bought, so the caller must
// re-pivot with a full factorization.
constexpr double kRefactorRelTol = 1e-12;

}  // namespace

SparseLu::SparseLu(SparseMatrix& a, double pivot_tol) : pivot_tol_(pivot_tol) {
  factorize(a);
}

SparseLu::SparseLu(const CsrView& a, double pivot_tol) : pivot_tol_(pivot_tol) {
  factorize(a);
}

CsrView SparseLu::view_of(SparseMatrix& a, std::vector<std::size_t>& row_ptr,
                          std::vector<std::size_t>& cols,
                          std::vector<double>& vals) {
  const auto& rows = a.rows_view();
  row_ptr.assign(rows.size() + 1, 0);
  cols.clear();
  vals.clear();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (const auto& [c, v] : rows[r]) {
      cols.push_back(c);
      vals.push_back(v);
    }
    row_ptr[r + 1] = cols.size();
  }
  return CsrView{rows.size(), row_ptr.data(), cols.data(), vals.data()};
}

void SparseLu::factorize(SparseMatrix& a) {
  NEMTCAM_EXPECT(a.rows() == a.cols());
  std::vector<std::size_t> row_ptr, cols;
  std::vector<double> vals;
  factorize(view_of(a, row_ptr, cols, vals));
}

bool SparseLu::refactorize(SparseMatrix& a) {
  NEMTCAM_EXPECT(a.rows() == a.cols());
  std::vector<std::size_t> row_ptr, cols;
  std::vector<double> vals;
  return refactorize(view_of(a, row_ptr, cols, vals));
}

void SparseLu::factorize(const CsrView& a) {
  n_ = a.n;
  factored_ = false;
  ++generation_;  // new pivot order: schedule-derived plans are stale

  // Keep the analyzed pattern: refactorize() verifies against it and uses
  // scatter_map_ to drop new values into the fill-extended U storage.
  in_row_ptr_.assign(a.row_ptr, a.row_ptr + n_ + 1);
  in_cols_.assign(a.cols, a.cols + a.nnz());

  // Working rows, mutated in place by the elimination below.
  std::vector<std::vector<std::pair<std::size_t, double>>> rows(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    rows[r].reserve(a.row_ptr[r + 1] - a.row_ptr[r]);
    for (std::size_t j = a.row_ptr[r]; j < a.row_ptr[r + 1]; ++j)
      rows[r].emplace_back(a.cols[j], a.vals[j]);
  }

  // col_candidates[c]: physical rows that structurally hold an entry in
  // column c (stale once the row pivots; validated on use). Fill-ins push
  // new candidates. Unlike a value-driven analysis, entries whose value is
  // currently zero still count — the schedule must stay valid for any
  // numeric refill of the same pattern.
  std::vector<std::vector<std::size_t>> col_candidates(n_);
  for (std::size_t r = 0; r < n_; ++r)
    for (const auto& [c, v] : rows[r]) {
      (void)v;
      col_candidates[c].push_back(r);
    }

  std::vector<bool> is_pivot(n_, false);
  pivot_of_stage_.assign(n_, 0);

  // Static fill-reducing column order: eliminate sparse columns first
  // (approximate minimum degree). Without this, a dense supply/ground-rail
  // column eliminated early couples every attached row and the
  // factorization goes quadratic.
  col_of_stage_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) col_of_stage_[i] = i;
  std::sort(col_of_stage_.begin(), col_of_stage_.end(),
            [&](std::size_t x, std::size_t y) {
              const auto dx = col_candidates[x].size();
              const auto dy = col_candidates[y].size();
              if (dx != dy) return dx < dy;
              return x < y;
            });

  // Scatter workspace for row combination.
  std::vector<double> work(n_, 0.0);
  std::vector<bool> touched(n_, false);
  std::vector<std::size_t> touched_cols;
  touched_cols.reserve(64);

  auto value_at = [&](std::size_t row, std::size_t col) -> double {
    const auto& entries = rows[row];
    auto it = std::lower_bound(
        entries.begin(), entries.end(), col,
        [](const auto& e, std::size_t c) { return e.first < c; });
    if (it != entries.end() && it->first == col) return it->second;
    return 0.0;
  };

  // eliminated[c]: true once column c's stage has run (used to know which
  // entries in a pivot row are still "active" for fill bookkeeping — the
  // inactive ones hold exact zeros and are skipped).
  std::vector<bool> eliminated(n_, false);

  // Schedule recording. Targets and factors go straight to members; the
  // scatter maps are resolved to flat indices after the patterns settle.
  op_target_.clear();
  op_factor_.clear();
  stage_op_begin_.assign(n_ + 1, 0);
  diag_idx_.assign(n_, 0);

  for (std::size_t stage = 0; stage < n_; ++stage) {
    const std::size_t k = col_of_stage_[stage];
    stage_op_begin_[stage] = op_target_.size();
    // Threshold pivoting with sparsity preference (Markowitz-style): among
    // candidates whose magnitude is within `threshold` of the column max,
    // pick the shortest row — this keeps fill near-linear on circuit
    // matrices while preserving numerical stability.
    constexpr double threshold = 0.1;
    auto& cands = col_candidates[k];
    double max_mag = 0.0;
    std::size_t out = 0;
    for (std::size_t idx = 0; idx < cands.size(); ++idx) {
      const std::size_t r = cands[idx];
      if (is_pivot[r]) continue;
      cands[out++] = r;  // structurally valid; kept for the elimination pass
      max_mag = std::max(max_mag, std::fabs(value_at(r, k)));
    }
    cands.resize(out);
    if (cands.empty() || max_mag < pivot_tol_)
      throw SingularMatrixError("SparseLu: singular at column " + std::to_string(k));
    std::size_t best_row = n_;
    std::size_t best_len = std::numeric_limits<std::size_t>::max();
    double best_mag = 0.0;
    for (const std::size_t r : cands) {
      const double mag = std::fabs(value_at(r, k));
      if (mag < threshold * max_mag) continue;
      const std::size_t len = rows[r].size();
      if (len < best_len || (len == best_len && mag > best_mag)) {
        best_len = len;
        best_row = r;
        best_mag = mag;
      }
    }
    NEMTCAM_ENSURE(best_row != n_);

    is_pivot[best_row] = true;
    pivot_of_stage_[stage] = best_row;
    eliminated[k] = true;
    const auto& pivot_entries = rows[best_row];
    const double pivot_val = value_at(best_row, k);

    // Eliminate column k from every other structurally valid candidate row.
    for (const std::size_t r : cands) {
      if (r == best_row) continue;
      const double factor = value_at(r, k) / pivot_val;
      op_target_.push_back(r);
      op_factor_.push_back(factor);

      // row_r -= factor * pivot_row (scatter/gather). The eliminated
      // column keeps its slot as an exact zero so the schedule can reuse
      // it as the factor position; entries the pivot row holds at columns
      // of earlier stages are exact zeros and skipped.
      auto& row = rows[r];
      touched_cols.clear();
      for (const auto& [c, v] : row) {
        work[c] = v;
        touched[c] = true;
        touched_cols.push_back(c);
      }
      for (const auto& [c, v] : pivot_entries) {
        if (eliminated[c] && c != k) continue;
        if (!touched[c]) {
          work[c] = 0.0;
          touched[c] = true;
          touched_cols.push_back(c);
          if (!eliminated[c]) col_candidates[c].push_back(r);  // fill-in
        }
        work[c] -= factor * v;
      }
      std::sort(touched_cols.begin(), touched_cols.end());
      row.clear();
      for (const std::size_t c : touched_cols) {
        // Structural slots survive numeric cancellation; only the pivot
        // column is forced to an exact zero.
        row.emplace_back(c, c == k ? 0.0 : work[c]);
        touched[c] = false;
      }
    }
  }
  stage_op_begin_[n_] = op_target_.size();

  // Flatten the final row patterns into CSR-style U storage.
  u_ptr_.assign(n_ + 1, 0);
  u_cols_.clear();
  u_vals_.clear();
  for (std::size_t r = 0; r < n_; ++r) {
    for (const auto& [c, v] : rows[r]) {
      u_cols_.push_back(c);
      u_vals_.push_back(v);
    }
    u_ptr_[r + 1] = u_cols_.size();
  }

  auto u_index = [&](std::size_t row, std::size_t col) -> std::size_t {
    const auto first = u_cols_.begin() + static_cast<std::ptrdiff_t>(u_ptr_[row]);
    const auto last = u_cols_.begin() + static_cast<std::ptrdiff_t>(u_ptr_[row + 1]);
    const auto it = std::lower_bound(first, last, col);
    NEMTCAM_ENSURE(it != last && *it == col);
    return static_cast<std::size_t>(it - u_cols_.begin());
  };

  // stage_of_col: stage at which each column was eliminated — tells which
  // pivot-row entries are active (hold live values) when the row pivots.
  std::vector<std::size_t> stage_of_col(n_);
  for (std::size_t s = 0; s < n_; ++s) stage_of_col[col_of_stage_[s]] = s;

  // Active pivot-row positions per stage (everything not eliminated in an
  // earlier stage, minus the pivot column itself, which the replay zeroes
  // through the factor slot).
  stage_src_begin_.assign(n_ + 1, 0);
  stage_src_.clear();
  for (std::size_t s = 0; s < n_; ++s) {
    stage_src_begin_[s] = stage_src_.size();
    const std::size_t p = pivot_of_stage_[s];
    for (std::size_t j = u_ptr_[p]; j < u_ptr_[p + 1]; ++j) {
      const std::size_t c = u_cols_[j];
      if (stage_of_col[c] <= s) continue;  // earlier stage (zero) or k itself
      stage_src_.push_back(j);
    }
    diag_idx_[s] = u_index(p, col_of_stage_[s]);
  }
  stage_src_begin_[n_] = stage_src_.size();

  // Per-op scatter maps: destination index in the target row for each
  // active pivot-row position of the op's stage, plus the factor slot.
  op_factor_idx_.assign(op_target_.size(), 0);
  op_map_begin_.assign(op_target_.size() + 1, 0);
  op_map_.clear();
  for (std::size_t s = 0; s < n_; ++s) {
    const std::size_t k = col_of_stage_[s];
    for (std::size_t oi = stage_op_begin_[s]; oi < stage_op_begin_[s + 1]; ++oi) {
      const std::size_t r = op_target_[oi];
      op_map_begin_[oi] = op_map_.size();
      op_factor_idx_[oi] = u_index(r, k);
      for (std::size_t j = stage_src_begin_[s]; j < stage_src_begin_[s + 1]; ++j)
        op_map_.push_back(u_index(r, u_cols_[stage_src_[j]]));
    }
  }
  op_map_begin_[op_target_.size()] = op_map_.size();

  // Input position -> U storage position, for refactorize()'s value scatter.
  scatter_map_.resize(in_cols_.size());
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t j = in_row_ptr_[r]; j < in_row_ptr_[r + 1]; ++j)
      scatter_map_[j] = u_index(r, in_cols_[j]);

  factored_ = true;
}

bool SparseLu::refactorize(const CsrView& a) {
  if (in_row_ptr_.size() != n_ + 1) return false;  // never analyzed
  factored_ = false;
  if (a.n != n_ || a.nnz() != in_cols_.size()) return false;
  if (std::memcmp(a.row_ptr, in_row_ptr_.data(),
                  (n_ + 1) * sizeof(std::size_t)) != 0)
    return false;
  if (!in_cols_.empty() &&
      std::memcmp(a.cols, in_cols_.data(),
                  in_cols_.size() * sizeof(std::size_t)) != 0)
    return false;

  // Scatter the new values into the fill-extended pattern.
  std::fill(u_vals_.begin(), u_vals_.end(), 0.0);
  for (std::size_t j = 0; j < scatter_map_.size(); ++j)
    u_vals_[scatter_map_[j]] = a.vals[j];

  // Replay the recorded schedule: pure flat-array arithmetic, no
  // allocation, no pivot search.
  for (std::size_t s = 0; s < n_; ++s) {
    const double pivot = u_vals_[diag_idx_[s]];
    const double apiv = std::fabs(pivot);
    if (apiv < pivot_tol_) return false;
    const std::size_t src_begin = stage_src_begin_[s];
    const std::size_t src_len = stage_src_begin_[s + 1] - src_begin;
    double row_max = apiv;
    for (std::size_t j = 0; j < src_len; ++j)
      row_max = std::max(row_max, std::fabs(u_vals_[stage_src_[src_begin + j]]));
    if (apiv < kRefactorRelTol * row_max) return false;  // pivot degenerated

    const double inv = 1.0 / pivot;
    for (std::size_t oi = stage_op_begin_[s]; oi < stage_op_begin_[s + 1]; ++oi) {
      const double f = u_vals_[op_factor_idx_[oi]] * inv;
      op_factor_[oi] = f;
      u_vals_[op_factor_idx_[oi]] = 0.0;
      const std::size_t* dst = op_map_.data() + op_map_begin_[oi];
      for (std::size_t j = 0; j < src_len; ++j)
        u_vals_[dst[j]] -= f * u_vals_[stage_src_[src_begin + j]];
    }
  }

  factored_ = true;
  return true;
}

void SparseLu::solve_inplace(std::vector<double>& bx) const {
  NEMTCAM_EXPECT(bx.size() == n_);
  solve_inplace(bx.data());
}

void SparseLu::solve_inplace(double* bx) const {
  NEMTCAM_EXPECT(factored_);
  double* y = bx;
  // Forward: replay eliminations. At each recorded op the pivot row's value
  // is already final (a row is never updated after becoming a pivot).
  for (std::size_t s = 0; s < n_; ++s) {
    const double yp = y[pivot_of_stage_[s]];
    if (yp == 0.0) continue;
    for (std::size_t oi = stage_op_begin_[s]; oi < stage_op_begin_[s + 1]; ++oi)
      y[op_target_[oi]] -= op_factor_[oi] * yp;
  }

  // Backward: rows in reverse stage order form an upper-triangular system
  // (a pivot row's surviving entries belong to its own column plus
  // later-stage columns, whose unknowns are already solved; earlier-stage
  // positions hold exact zeros).
  x_scratch_.assign(n_, 0.0);
  double* x = x_scratch_.data();
  for (std::size_t stage = n_; stage-- > 0;) {
    const std::size_t p = pivot_of_stage_[stage];
    const std::size_t k = col_of_stage_[stage];
    double acc = y[p];
    for (std::size_t j = u_ptr_[p]; j < u_ptr_[p + 1]; ++j) {
      const std::size_t c = u_cols_[j];
      if (c != k) acc -= u_vals_[j] * x[c];
    }
    const double diag = u_vals_[diag_idx_[stage]];
    NEMTCAM_ENSURE_MSG(diag != 0.0, "SparseLu::solve: zero diagonal");
    x[k] = acc / diag;
  }
  std::copy(x, x + n_, bx);
}

std::vector<double> SparseLu::solve(const std::vector<double>& b) const {
  std::vector<double> bx = b;
  solve_inplace(bx);
  return bx;
}

}  // namespace nemtcam::linalg
