#include "sta/Sta.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace nemtcam::sta {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

bool env_default_enabled() { return std::getenv("NEMTCAM_NO_STA") == nullptr; }
bool g_enabled = env_default_enabled();

// Engineering-notation formatter for the human-readable report.
std::string eng(double v, const char* unit) {
  char buf[64];
  const double a = std::abs(v);
  if (v == 0.0) {
    std::snprintf(buf, sizeof buf, "0 %s", unit);
  } else if (std::isinf(v)) {
    std::snprintf(buf, sizeof buf, "%sinf %s", v < 0 ? "-" : "", unit);
  } else {
    static constexpr struct { double scale; const char* prefix; } kScales[] = {
        {1e9, "G"},  {1e6, "M"},   {1e3, "k"},  {1.0, ""},    {1e-3, "m"},
        {1e-6, "u"}, {1e-9, "n"},  {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
    };
    const auto* s = &kScales[sizeof kScales / sizeof kScales[0] - 1];
    for (const auto& cand : kScales) {
      if (a >= cand.scale) {
        s = &cand;
        break;
      }
    }
    std::snprintf(buf, sizeof buf, "%.3g %s%s", v / s->scale, s->prefix, unit);
  }
  return buf;
}

// Single-pole crossing time of `v_x` from v0 toward v_inf; +inf when the
// target is never reached.
double cross_time(double v0, double v_inf, double v_x, double tau) {
  if (tau <= 0.0) return kInf;
  const double num = v0 - v_inf;
  const double den = v_x - v_inf;
  if (num <= 0.0 || den <= 0.0 || den >= num) return kInf;
  return tau * std::log(num / den);
}
}  // namespace

bool default_enabled() { return g_enabled; }
void set_default_enabled(bool on) { g_enabled = on; }

StaOptions calibrated(const StaOptions& base, double t_nom, double t_measured,
                      double band) {
  StaOptions o = base;
  if (t_nom > 0.0 && t_measured > 0.0 && std::isfinite(t_nom) &&
      std::isfinite(t_measured) && band > 1.0) {
    const double k = t_measured / t_nom;
    o.k_lo = k / band;
    o.k_hi = k * band;
  }
  return o;
}

const RetentionReport* StaReport::worst_retention() const {
  const RetentionReport* worst = nullptr;
  for (const auto& r : retention)
    if (worst == nullptr || r.t_retention < worst->t_retention) worst = &r;
  return worst;
}

StaReport analyze(spice::Circuit& circuit,
                  const std::vector<std::string>& ml_probes,
                  const StaOptions& opt) {
  StaReport rep;
  const RcGraph g(circuit);
  rep.n_nodes = g.node_count();
  rep.n_edges = static_cast<int>(g.edges().size());

  const LevelSolution init = g.solve(/*use_final=*/false);
  const LevelSolution fin = g.solve(/*use_final=*/true);

  // --- Driven-line Elmore moments (needed before the ML upper bounds:
  // the SL slew rides into t_hi). ---
  for (const auto& pin : g.pins()) {
    if (pin.r_series <= 0.0) continue;
    const RcGraph::Elmore el = g.elmore_from(pin, fin);
    LineReport lr;
    lr.driver = pin.device->name();
    lr.node = circuit.node_name(pin.node);
    lr.r_drive = pin.r_series;
    lr.c_total = el.c_total;
    lr.m1 = el.m1;
    lr.m2 = el.m2;
    lr.t_settle_hi = opt.settle_ln * el.m1;
    lr.n_nodes = el.n_nodes;
    rep.lines.push_back(std::move(lr));
    if (pin.v_final != pin.v_init)
      rep.t_sl_settle_max =
          std::max(rep.t_sl_settle_max, opt.settle_ln * el.m1);
  }

  // --- Per-matchline timing. ---
  std::vector<std::string> probes = ml_probes;
  if (probes.empty()) {
    for (int n = 1; n < g.node_count(); ++n) {
      const std::string& name =
          circuit.node_name(static_cast<spice::NodeId>(n));
      if (name.rfind("ml", 0) == 0) probes.push_back(name);
    }
  }
  for (const auto& name : probes) {
    MlReport ml;
    ml.node = name;
    if (!circuit.has_node(name)) {
      rep.mls.push_back(std::move(ml));
      continue;
    }
    const spice::NodeId n = circuit.node(name);
    const std::size_t ni = static_cast<std::size_t>(n);
    ml.valid = true;
    ml.c_node = g.cap(n);

    // Precharge: the level the ML actually reaches in t_precharge through
    // the (pre-edge) conducting path — RC-limited, so an undersized
    // precharge device shows up as v0 < vdd.
    double v0 = g.ic(n);
    if (!init.floating[ni]) {
      const double v_target = init.v[ni];
      const double r_pre = g.thevenin_r(n, init);
      const double c_pre = g.swing_cap(n, init);
      if (std::isfinite(r_pre) && r_pre > 0.0 && c_pre > 0.0) {
        const double frac = -std::expm1(-opt.t_precharge / (r_pre * c_pre));
        v0 += (v_target - v0) * frac;
      } else {
        v0 = v_target;
      }
    }
    // Aggressor-coupling boost: when the search edge fires, every pair
    // capacitance into the ML injects c·ΔV_aggressor — the rising SLs and
    // the precharge-gate turn-off kick a floating ML above the rail
    // (matched traces settle at 1.1–1.35 V on a 1 V rail). Charge-share
    // against the ML's own lump gives the level the discharge starts from.
    if (ml.c_node > 0.0) {
      double q_kick = 0.0;
      for (const int xi : g.xcaps_at(n)) {
        const RcXcap& x = g.xcaps()[static_cast<std::size_t>(xi)];
        const spice::NodeId other = x.a == n ? x.b : x.a;
        const std::size_t oi = static_cast<std::size_t>(other);
        q_kick += x.c * (fin.v[oi] - init.v[oi]);
      }
      ml.v_boost = q_kick / ml.c_node;
      v0 += ml.v_boost;
    }
    ml.v0 = v0;

    if (fin.floating[ni]) {
      // No conducting path after the edge: pure leakage droop (the
      // matched NEM row — an open relay contact holds the ML up).
      const double i_leak = g.leak_current(n, v0, fin);
      ml.r_th = kInf;
      ml.c_swing = ml.c_node;
      ml.droop_rate = i_leak > 0.0 && ml.c_node > 0.0 ? i_leak / ml.c_node : 0.0;
      ml.v_strobe_nom = v0 - ml.droop_rate * opt.t_strobe;
      ml.v_inf = ml.v_strobe_nom;
      const double t_droop =
          ml.droop_rate > 0.0 ? (v0 - opt.v_sense) / ml.droop_rate : kInf;
      ml.discharges = t_droop <= opt.t_strobe;
      ml.t_cross_nom = t_droop;
      // No static lower bound for a statically-holding ML: the observed
      // crossing (when one happens) is driven by effects outside this
      // model — the SL edge couples into the compare gates and transiently
      // boosts their overdrive, discharging an ML the DC state says is
      // held (the matched MRAM row does exactly this). Claim only the
      // leak-droop upper bound.
      ml.t_cross_lo = 0.0;
      ml.t_cross_hi = std::isfinite(t_droop)
                          ? opt.t_edge_rise + rep.t_sl_settle_max +
                                opt.k_hi * t_droop
                          : kInf;
    } else {
      ml.v_inf = fin.v[ni];
      ml.r_th = g.thevenin_r(n, fin);
      ml.c_swing = g.swing_cap(n, fin);
      ml.tau = ml.r_th * ml.c_swing;
      const double tau_fast = ml.r_th * ml.c_node;
      const double t_nom = cross_time(v0, ml.v_inf, opt.v_sense, ml.tau);
      const double t_fast = cross_time(v0, ml.v_inf, opt.v_sense, tau_fast);
      ml.t_cross_nom = t_nom;
      ml.t_cross_lo = opt.k_lo * t_fast;
      ml.t_cross_hi = std::isfinite(t_nom)
                          ? opt.t_edge_rise + rep.t_sl_settle_max +
                                opt.k_hi * t_nom
                          : kInf;
      ml.discharges = std::isfinite(t_nom);
      if (ml.tau > 0.0 && std::isfinite(ml.tau)) {
        ml.v_strobe_nom =
            ml.v_inf + (v0 - ml.v_inf) * std::exp(-opt.t_strobe / ml.tau);
      } else {
        ml.v_strobe_nom = v0;
      }
      const double i_leak = g.leak_current(n, ml.v_strobe_nom, fin);
      ml.droop_rate =
          i_leak > 0.0 && ml.c_node > 0.0 ? i_leak / ml.c_node : 0.0;
    }
    ml.sense_margin = ml.v_strobe_nom - opt.v_sense;
    rep.mls.push_back(std::move(ml));
  }

  // --- Retention bounds for every state-holding terminal. ---
  for (const auto& h : g.holds()) {
    RetentionReport rr;
    rr.device = h.device->name();
    rr.node = circuit.node_name(h.node);
    rr.c = g.cap(h.node);
    rr.v_hold = h.v_hold;
    rr.v_start = g.ic(h.node);
    if (!fin.floating[static_cast<std::size_t>(h.node)]) {
      rr.t_retention = kInf;  // actively driven: never decays
      rr.i_leak = 0.0;
    } else {
      rr.i_leak = g.leak_current(h.node, rr.v_start, fin);
      if (rr.v_start <= rr.v_hold) {
        rr.t_retention = 0.0;  // stored below the hold level: already lost
      } else if (rr.i_leak <= 0.0 || rr.c <= 0.0) {
        rr.t_retention = kInf;
      } else {
        // Linear decay at the initial leak current: conservative — the
        // current only shrinks as the node approaches its leak targets.
        rr.t_retention = rr.c * (rr.v_start - rr.v_hold) / rr.i_leak;
      }
    }
    rep.retention.push_back(std::move(rr));
  }

  // --- CV² search-energy band + static dissipation. ---
  double e_cv2 = 0.0;
  for (int n = 1; n < g.node_count(); ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    const double c = g.cap(static_cast<spice::NodeId>(n));
    if (c <= 0.0) continue;
    const double v_ic = g.ic(static_cast<spice::NodeId>(n));
    const double d1 = init.v[ni] - v_ic;          // precharge transition
    const double d2 = fin.v[ni] - init.v[ni];     // evaluate transition
    e_cv2 += c * (d1 * d1 + d2 * d2);
  }
  double p_static = 0.0;
  for (std::size_t ei = 0; ei < g.edges().size(); ++ei) {
    if (!fin.edge_on[ei]) continue;
    const RcEdge& e = g.edges()[ei];
    const double dv = fin.v[static_cast<std::size_t>(e.a)] -
                      fin.v[static_cast<std::size_t>(e.b)];
    p_static += e.g_on * dv * dv;
  }
  rep.p_static = p_static;
  rep.e_search_lo = 0.5 * e_cv2;
  rep.e_search_nom = e_cv2 + p_static * opt.t_window;
  rep.e_search_hi = opt.k_e * rep.e_search_nom;

  return rep;
}

std::string StaReport::to_string() const {
  std::string out = "STA: " + std::to_string(n_nodes) + " nodes, " +
                    std::to_string(n_edges) + " edges\n";
  for (const auto& ml : mls) {
    if (!ml.valid) {
      out += "  ML " + ml.node + ": <no such node>\n";
      continue;
    }
    out += "  ML " + ml.node + ": v0=" + eng(ml.v0, "V") +
           ", v_inf=" + eng(ml.v_inf, "V") + ", R_th=" + eng(ml.r_th, "Ohm") +
           ", C=" + eng(ml.c_swing, "F");
    if (ml.discharges) {
      out += ", t_cross=[" + eng(ml.t_cross_lo, "s") + ", " +
             eng(ml.t_cross_nom, "s") + ", " + eng(ml.t_cross_hi, "s") + "]";
    } else {
      out += ", holds (droop " + eng(ml.droop_rate, "V/s") + ")";
    }
    out += ", margin=" + eng(ml.sense_margin, "V") + "\n";
  }
  for (const auto& l : lines) {
    out += "  line " + l.node + " (" + l.driver +
           "): m1=" + eng(l.m1, "s") + ", m2=" + eng(l.m2, "s^2") +
           ", settle<" + eng(l.t_settle_hi, "s") + " over " +
           std::to_string(l.n_nodes) + " nodes\n";
  }
  for (const auto& r : retention) {
    out += "  retention " + r.device + " @ " + r.node + ": " +
           eng(r.t_retention, "s") + " (C=" + eng(r.c, "F") +
           ", leak=" + eng(r.i_leak, "A") + ")\n";
  }
  out += "  search energy [" + eng(e_search_lo, "J") + ", " +
         eng(e_search_nom, "J") + ", " + eng(e_search_hi, "J") +
         "]; static " + eng(p_static, "W") + "; SL settle < " +
         eng(t_sl_settle_max, "s") + "\n";
  return out;
}

}  // namespace nemtcam::sta
