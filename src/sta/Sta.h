// Static timing / energy / sense-margin analysis over an elaborated
// circuit — the quantitative successor to the ERC rule passes: same
// DeviceTopology substrate, zero Newton iterations.
//
// What it computes, per probed matchline:
//  - the precharge level v0 the ML actually reaches in t_precharge
//    (RC-limited through the precharge device — an undersized precharge
//    is visible here, not just as a failed transient),
//  - the post-edge Thevenin discharge equivalent (R_th from unit-current
//    injection over the conducting subgraph, v_inf from the switch-level
//    solve), hence a single-pole crossing time of the sense threshold
//    with calibrated lower/upper factors [k_lo, k_hi],
//  - for a non-discharging (matched) ML, the leakage droop at the strobe
//    — the finite-ON/OFF-ratio hazard that limits RRAM array height;
// plus, per driven line, Elmore first/second moments of the SL ladder
// (settle bound), a CV² search-energy band, and per state-holding
// terminal the retention bound behind the paper's one-shot-refresh
// inequality: t_ret = C·(v_store − v_hold)/I_leak ≥ safety·t_refresh.
//
// Bounds contract (validated by bench_sta across all seven row kinds and
// a 64×64 array): t_lo = k_lo·t_nom ≤ measured transient crossing ≤
// t_hi = t_sl_settle + k_hi·t_nom. The defaults are deliberately wide —
// the macro-model ignores bias-dependent channel current and distributed
// wire RC; calibrated() tightens the band from one transient spot-check,
// which is the serving-layer use: calibrate once per row kind, then
// evaluate delay/energy at full speed.
#pragma once

#include <string>
#include <vector>

#include "sta/RcGraph.h"

namespace nemtcam::sta {

// Process-wide default for "attach STA margin rules / fill STA metrics"
// in the harnesses. Starts true; set NEMTCAM_NO_STA in the environment to
// start false (mirrors erc::default_enforce).
bool default_enabled();
void set_default_enabled(bool on);

struct StaOptions {
  double vdd = 1.0;          // rail (V)
  double v_sense = 0.5;      // ML comparator threshold (V)
  double t_precharge = 0.5e-9;  // precharge phase length (s)
  double t_strobe = 1.0e-9;  // SL edge → sense strobe (s)
  double t_window = 2.5e-9;  // evaluation window after the edge (s)
  // Driver edge ramp (the PWL sources step over a finite rise); the
  // discharge clock starts at the edge *onset*, so the ramp rides into
  // the upper bound only.
  double t_edge_rise = 20e-12;  // s
  // Delay-band calibration factors: t_lo = k_lo·t_nom, t_hi adds the SL
  // settle bound and scales by k_hi.
  double k_lo = 0.2;
  double k_hi = 4.0;
  // Energy-band half-width factor around the CV² estimate.
  double k_e = 3.0;
  // Settle criterion for driven lines: ln(1/ε) with ε = 10 % residue.
  double settle_ln = 2.302585092994046;
  // Rule thresholds (see Rules.h). sense_margin_min is the guard band the
  // nominal ML level must clear at the strobe; refresh_period < 0
  // disables the sta.refresh-window inequality.
  double sense_margin_min = 0.05;  // V
  double refresh_period = -1.0;    // s
  double refresh_safety = 2.0;     // required t_retention / period ratio
};

// Tightened copy of `base` after one transient spot-check: the measured/
// nominal ratio re-centers the delay band, narrowed to ±`band`.
StaOptions calibrated(const StaOptions& base, double t_nom, double t_measured,
                      double band = 1.6);

struct MlReport {
  std::string node;
  bool valid = false;
  double v0 = 0.0;      // precharge level at the search edge, incl. boost (V)
  double v_boost = 0.0; // aggressor-coupling kick at the search edge (V)
  double v_inf = 0.0;   // settled post-edge level over strong paths (V)
  double r_th = 0.0;    // discharge Thevenin resistance (Ω); inf if none
  double c_node = 0.0;  // lumped C at the ML alone (F)
  double c_swing = 0.0; // C that must move with the ML (F)
  double tau = 0.0;     // R_th·c_swing (s)
  bool discharges = false;    // nominal level crosses the sense threshold
  double t_cross_lo = 0.0;    // s; +inf when the ML never crosses
  double t_cross_nom = 0.0;
  double t_cross_hi = 0.0;
  double v_strobe_nom = 0.0;  // predicted ML level at the strobe (V)
  double droop_rate = 0.0;    // leak droop when not discharging (V/s)
  double sense_margin = 0.0;  // signed distance from v_sense at strobe (V)
};

struct LineReport {
  std::string driver;   // source device name
  std::string node;     // driven node name
  double r_drive = 0.0;
  double c_total = 0.0;
  double m1 = 0.0;      // worst-sink Elmore first moment (s)
  double m2 = 0.0;      // second moment (s²)
  double t_settle_hi = 0.0;  // settle_ln·m1 90 % settle bound (s)
  int n_nodes = 0;
};

struct RetentionReport {
  std::string device;
  std::string node;
  double c = 0.0;         // storage-node capacitance (F)
  double v_start = 0.0;   // stored level (V)
  double v_hold = 0.0;    // loss threshold (V)
  double i_leak = 0.0;    // worst-case leak at the stored level (A)
  double t_retention = 0.0;  // linear decay bound (s); +inf when leak-free
};

struct StaReport {
  std::vector<MlReport> mls;
  std::vector<LineReport> lines;
  std::vector<RetentionReport> retention;
  double t_sl_settle_max = 0.0;  // worst driven-line settle bound (s)
  double e_search_lo = 0.0;      // J
  double e_search_nom = 0.0;
  double e_search_hi = 0.0;
  double p_static = 0.0;         // W at the settled post-edge levels
  int n_nodes = 0;
  int n_edges = 0;

  // Worst (smallest) retention bound, or nullptr when none tracked.
  const RetentionReport* worst_retention() const;
  // Human-readable multi-line summary (nemtcam_lint --sta).
  std::string to_string() const;
};

// Runs the full analysis. `ml_probes` are node names to treat as
// matchlines (empty → every node named "ml*" at top level is probed —
// the lint-on-a-deck heuristic). The circuit is not modified beyond
// name→id lookups.
StaReport analyze(spice::Circuit& circuit,
                  const std::vector<std::string>& ml_probes,
                  const StaOptions& opt = {});

}  // namespace nemtcam::sta
