#include "sta/RcGraph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "linalg/SparseLu.h"
#include "linalg/SparseMatrix.h"

namespace nemtcam::sta {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// The gated-edge states and the node levels must reach a joint fixpoint.
// While states are still flipping, cheap Gauss–Seidel sweeps are enough to
// drive the threshold comparisons (kStateSweeps below); once they settle,
// one exact sparse-LU solve delivers the final levels, and a last state
// re-check guards against a level landing on the other side of a gate
// threshold.
constexpr int kMaxStateIters = 8;
constexpr int kStateSweeps = 24;
}  // namespace

RcGraph::RcGraph(spice::Circuit& circuit) : circuit_(&circuit) {
  n_nodes_ = static_cast<int>(circuit.node_count());
  cap_.assign(static_cast<std::size_t>(n_nodes_), 0.0);
  pin_of_.assign(static_cast<std::size_t>(n_nodes_), -1);
  edges_.reserve(circuit.devices().size() * 2);
  xcaps_.reserve(circuit.devices().size() * 2);

  for (const auto& dev : circuit.devices()) {
    const spice::DeviceTopology t = dev->topology();
    for (const auto& term : t.terminals) {
      cap_[static_cast<std::size_t>(term.node)] += term.c_ground;
      if (term.holds_state() && term.node != spice::kGround)
        holds_.push_back({term.node, term.v_hold, dev.get()});
    }
    for (const auto& cp : t.couplings) {
      const spice::NodeId na = t.terminals[static_cast<std::size_t>(cp.a)].node;
      const spice::NodeId nb = t.terminals[static_cast<std::size_t>(cp.b)].node;
      // Pair capacitance lumps to ground at both ends: each end sees the
      // full c against a quasi-static far side (quiet-neighbor worst case).
      if (cp.c > 0.0) {
        cap_[static_cast<std::size_t>(na)] += cp.c;
        cap_[static_cast<std::size_t>(nb)] += cp.c;
        if (na != nb && (na != spice::kGround || nb != spice::kGround))
          xcaps_.push_back({na, nb, cp.c});
      }
      if (na == nb) continue;
      const bool has_r = cp.r_on >= 0.0;
      if (!has_r && cp.g_off <= 0.0) continue;  // connectivity-only edge
      RcEdge e;
      e.a = na;
      e.b = nb;
      e.has_r = has_r;
      e.g_on = has_r ? 1.0 / std::max(cp.r_on, kMinR) : 0.0;
      e.g_off = cp.g_off;
      e.switchable = cp.ctrl >= 0;
      if (e.switchable)
        e.ctrl = t.terminals[static_cast<std::size_t>(cp.ctrl)].node;
      e.v_on = cp.v_on;
      e.active_low = cp.active_low;
      e.static_on = cp.on;
      e.v_gs_ref = cp.v_gs_ref;
      e.v_slope = cp.v_slope;
      e.device = dev.get();
      edges_.push_back(e);
    }
    if (t.is_source && t.source_is_voltage && t.terminals.size() >= 2) {
      // Pin the non-ground end; a source floating between two live nodes
      // has no single pinned node and is skipped (none shipped).
      const spice::NodeId plus = t.terminals[0].node;
      const spice::NodeId minus = t.terminals[1].node;
      RcPin p;
      p.r_series = t.source_r_series;
      p.device = dev.get();
      if (minus == spice::kGround && plus != spice::kGround) {
        p.node = plus;
        p.v_init = t.source_v_init;
        p.v_final = t.source_v_final;
      } else if (plus == spice::kGround && minus != spice::kGround) {
        p.node = minus;
        p.v_init = -t.source_v_init;
        p.v_final = -t.source_v_final;
      } else {
        continue;
      }
      pin_of_[static_cast<std::size_t>(p.node)] =
          static_cast<int>(pins_.size());
      pins_.push_back(p);
    }
  }

  // Adjacency in a second, exact-sized pass: growing per-node vectors
  // inline with the device walk costs thousands of small reallocations on
  // a full-width template.
  adj_.assign(static_cast<std::size_t>(n_nodes_), {});
  xadj_.assign(static_cast<std::size_t>(n_nodes_), {});
  std::vector<int> deg(static_cast<std::size_t>(n_nodes_), 0);
  for (const auto& e : edges_) {
    ++deg[static_cast<std::size_t>(e.a)];
    ++deg[static_cast<std::size_t>(e.b)];
  }
  for (int n = 0; n < n_nodes_; ++n)
    adj_[static_cast<std::size_t>(n)].reserve(
        static_cast<std::size_t>(deg[static_cast<std::size_t>(n)]));
  for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
    adj_[static_cast<std::size_t>(edges_[ei].a)].push_back(
        static_cast<int>(ei));
    adj_[static_cast<std::size_t>(edges_[ei].b)].push_back(
        static_cast<int>(ei));
  }
  std::fill(deg.begin(), deg.end(), 0);
  for (const auto& x : xcaps_) {
    ++deg[static_cast<std::size_t>(x.a)];
    ++deg[static_cast<std::size_t>(x.b)];
  }
  for (int n = 0; n < n_nodes_; ++n)
    xadj_[static_cast<std::size_t>(n)].reserve(
        static_cast<std::size_t>(deg[static_cast<std::size_t>(n)]));
  for (std::size_t xi = 0; xi < xcaps_.size(); ++xi) {
    xadj_[static_cast<std::size_t>(xcaps_[xi].a)].push_back(
        static_cast<int>(xi));
    xadj_[static_cast<std::size_t>(xcaps_[xi].b)].push_back(
        static_cast<int>(xi));
  }
}

double RcGraph::ic(spice::NodeId n) const {
  const auto it = circuit_->ics().find(n);
  return it == circuit_->ics().end() ? 0.0 : it->second;
}

bool RcGraph::edge_conducts(const RcEdge& e,
                            const std::vector<double>& v) const {
  if (!e.has_r) return false;
  if (!e.switchable) return e.static_on;
  const double va = v[static_cast<std::size_t>(e.a)];
  const double vb = v[static_cast<std::size_t>(e.b)];
  const double vc = v[static_cast<std::size_t>(e.ctrl)];
  if (e.active_low) return vc <= std::max(va, vb) - e.v_on;
  return vc >= std::min(va, vb) + e.v_on;
}

LevelSolution RcGraph::solve(bool use_final) const {
  LevelSolution s;
  s.v.assign(static_cast<std::size_t>(n_nodes_), 0.0);
  s.edge_on.assign(edges_.size(), 0);
  s.strong.assign(edges_.size(), 0);
  s.floating.assign(static_cast<std::size_t>(n_nodes_), 0);

  for (int n = 1; n < n_nodes_; ++n)
    s.v[static_cast<std::size_t>(n)] = ic(static_cast<spice::NodeId>(n));
  for (const auto& p : pins_)
    s.v[static_cast<std::size_t>(p.node)] = use_final ? p.v_final : p.v_init;

  bool exact = false;
  std::vector<std::vector<char>> seen_states;
  for (int iter = 0; iter <= kMaxStateIters; ++iter) {
    bool states_changed = iter == 0;
    for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
      const char on = edge_conducts(edges_[ei], s.v) ? 1 : 0;
      if (on != s.edge_on[ei]) states_changed = true;
      s.edge_on[ei] = on;
      s.strong[ei] = (on != 0 && edges_[ei].g_on >= kWeakG) ? 1 : 0;
    }
    if (!states_changed && exact) break;
    // Cycle detection: a cross-coupled pair (the SRAM latch) can make the
    // switch-level states oscillate with no fixpoint. Once a state set
    // repeats, further rounds only replay the cycle — solve the current
    // states exactly and stop.
    bool cycle = false;
    if (states_changed) {
      for (const auto& prev : seen_states)
        if (prev == s.edge_on) {
          cycle = true;
          break;
        }
      if (!cycle) seen_states.push_back(s.edge_on);
    }

    // Strong reachability from ground and every pin: the nodes the window
    // can actually move. Everything else holds its IC.
    std::vector<char> reached(static_cast<std::size_t>(n_nodes_), 0);
    std::queue<spice::NodeId> q;
    reached[0] = 1;
    q.push(spice::kGround);
    for (const auto& p : pins_) {
      if (!reached[static_cast<std::size_t>(p.node)]) {
        reached[static_cast<std::size_t>(p.node)] = 1;
        q.push(p.node);
      }
    }
    while (!q.empty()) {
      const spice::NodeId n = q.front();
      q.pop();
      for (const int ei : adj_[static_cast<std::size_t>(n)]) {
        if (!s.strong[static_cast<std::size_t>(ei)]) continue;
        const RcEdge& e = edges_[static_cast<std::size_t>(ei)];
        const spice::NodeId m = e.a == n ? e.b : e.a;
        if (!reached[static_cast<std::size_t>(m)]) {
          reached[static_cast<std::size_t>(m)] = 1;
          q.push(m);
        }
      }
    }
    for (int n = 0; n < n_nodes_; ++n)
      s.floating[static_cast<std::size_t>(n)] =
          (!reached[static_cast<std::size_t>(n)] && pin_of_[static_cast<std::size_t>(n)] < 0 &&
           n != 0)
              ? 1
              : 0;
    // Reset IC on floating nodes (an earlier iteration's states may have
    // relaxed them), then relax the reachable interior.
    for (int n = 1; n < n_nodes_; ++n)
      if (s.floating[static_cast<std::size_t>(n)])
        s.v[static_cast<std::size_t>(n)] = ic(static_cast<spice::NodeId>(n));

    std::vector<int> unknown;
    unknown.reserve(static_cast<std::size_t>(n_nodes_));
    for (int n = 1; n < n_nodes_; ++n) {
      const std::size_t ni = static_cast<std::size_t>(n);
      if (reached[ni] && pin_of_[ni] < 0) unknown.push_back(n);
    }
    if (states_changed && !cycle && iter < kMaxStateIters) {
      // States still in flux: a few relaxation sweeps are accurate enough
      // to decide the next round of threshold comparisons — factorizing
      // here would be wasted on levels about to be invalidated.
      for (int sweep = 0; sweep < kStateSweeps; ++sweep) {
        double max_delta = 0.0;
        const bool forward = (sweep % 2) == 0;
        for (std::size_t k = 0; k < unknown.size(); ++k) {
          const int n =
              forward ? unknown[k] : unknown[unknown.size() - 1 - k];
          const std::size_t ni = static_cast<std::size_t>(n);
          double gsum = 0.0, isum = 0.0;
          for (const int ei : adj_[ni]) {
            if (!s.strong[static_cast<std::size_t>(ei)]) continue;
            const RcEdge& e = edges_[static_cast<std::size_t>(ei)];
            const spice::NodeId m = e.a == n ? e.b : e.a;
            gsum += e.g_on;
            isum += e.g_on * s.v[static_cast<std::size_t>(m)];
          }
          if (gsum <= 0.0) continue;
          const double v_new = isum / gsum;
          max_delta = std::max(max_delta, std::abs(v_new - s.v[ni]));
          s.v[ni] = v_new;
        }
        if (max_delta < 1e-6) break;
      }
      exact = false;
    } else {
      std::vector<double> g(edges_.size(), 0.0);
      for (std::size_t ei = 0; ei < edges_.size(); ++ei)
        if (s.strong[ei]) g[ei] = edges_[ei].g_on;
      solve_nodal(unknown, g, s.strong, spice::kGround, 0.0, s.v);
      exact = true;
      if (cycle) break;
    }
  }
  return s;
}

void RcGraph::solve_nodal(const std::vector<int>& unknown,
                          const std::vector<double>& g_edge,
                          const std::vector<char>& use_edge,
                          spice::NodeId inj_node, double i_inj,
                          std::vector<double>& v) const {
  const std::size_t n = unknown.size();
  if (n == 0) return;
  std::vector<int>& row_of = ws_row_of_;
  row_of.assign(static_cast<std::size_t>(n_nodes_), -1);
  for (std::size_t k = 0; k < n; ++k)
    row_of[static_cast<std::size_t>(unknown[k])] = static_cast<int>(k);

  // Reduced conductance graph over the unknowns: per-row neighbor list
  // (possibly with duplicates / stale entries — compacted lazily), lumped
  // boundary conductance, and the right-hand-side current (boundary
  // injection plus the explicit source). The per-row lists come from the
  // pool with their capacity intact.
  std::vector<std::vector<std::pair<int, double>>>& nbr = ws_nbr_;
  if (nbr.size() < n) nbr.resize(n);
  for (std::size_t k = 0; k < n; ++k) nbr[k].clear();
  std::vector<double>& gb = ws_gb_;
  std::vector<double>& rhs = ws_rhs_;
  gb.assign(n, 0.0);
  rhs.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const int cur = unknown[k];
    for (const int ei : adj_[static_cast<std::size_t>(cur)]) {
      const std::size_t e_idx = static_cast<std::size_t>(ei);
      if (!use_edge[e_idx]) continue;
      const double ge = g_edge[e_idx];
      if (ge <= 0.0) continue;
      const RcEdge& e = edges_[e_idx];
      const int m = static_cast<int>(e.a == cur ? e.b : e.a);
      const int rm = row_of[static_cast<std::size_t>(m)];
      if (rm >= 0)
        nbr[k].push_back({rm, ge});
      else {
        gb[k] += ge;
        rhs[k] += ge * v[static_cast<std::size_t>(m)];
      }
    }
    if (nbr[k].empty() && gb[k] <= 0.0) {
      // No active incident edge: hold the node where it is.
      gb[k] = 1.0;
      rhs[k] = v[static_cast<std::size_t>(unknown[k])];
    }
    if (static_cast<spice::NodeId>(cur) == inj_node) rhs[k] += i_inj;
  }

  // Exact degree-≤2 Gaussian elimination on the graph: series stacks and
  // wire ladders (the bulk of every template) collapse in O(n), leaving
  // only genuine hubs (the ML star, mesh joints) for the sparse LU. For a
  // Laplacian M-matrix the pivot dv = gu + gw + gb is always positive, so
  // no pivoting is needed and the reduction is exact, not approximate.
  std::vector<char>& alive = ws_alive_;
  std::vector<int>& pos = ws_pos_;
  alive.assign(n, 1);
  pos.assign(n, -1);
  auto compact = [&](std::size_t k) {
    auto& l = nbr[k];
    std::size_t w = 0;
    for (const auto& [m, ge] : l) {
      if (!alive[static_cast<std::size_t>(m)]) continue;
      if (pos[static_cast<std::size_t>(m)] < 0) {
        pos[static_cast<std::size_t>(m)] = static_cast<int>(w);
        l[w++] = {m, ge};
      } else {
        l[static_cast<std::size_t>(pos[static_cast<std::size_t>(m)])].second +=
            ge;
      }
    }
    l.resize(w);
    for (const auto& [m, ge] : l) pos[static_cast<std::size_t>(m)] = -1;
  };
  struct Elim {
    int node = -1;       // eliminated row
    int u = -1, w = -1;  // surviving neighbors (−1 when absent)
    double gu = 0.0, gw = 0.0;
    double dv = 0.0, r = 0.0;
  };
  std::vector<Elim> elims;
  elims.reserve(n);
  std::vector<int> queue;
  queue.reserve(n);
  for (std::size_t k = 0; k < n; ++k) queue.push_back(static_cast<int>(k));
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::size_t k = static_cast<std::size_t>(queue[head]);
    if (!alive[k]) continue;
    compact(k);
    const std::size_t d = nbr[k].size();
    if (d > 2) continue;  // re-queued when a neighbor's elimination drops d
    Elim el;
    el.node = static_cast<int>(k);
    el.r = rhs[k];
    el.dv = gb[k];
    if (d >= 1) {
      el.u = nbr[k][0].first;
      el.gu = nbr[k][0].second;
      el.dv += el.gu;
    }
    if (d == 2) {
      el.w = nbr[k][1].first;
      el.gw = nbr[k][1].second;
      el.dv += el.gw;
    }
    alive[k] = 0;
    if (el.u >= 0) {
      const std::size_t u = static_cast<std::size_t>(el.u);
      gb[u] += el.gu * gb[k] / el.dv;
      rhs[u] += el.gu * el.r / el.dv;
      if (el.w >= 0) {
        const std::size_t w2 = static_cast<std::size_t>(el.w);
        const double g_series = el.gu * el.gw / el.dv;
        nbr[u].push_back({el.w, g_series});
        nbr[w2].push_back({el.u, g_series});
        gb[w2] += el.gw * gb[k] / el.dv;
        rhs[w2] += el.gw * el.r / el.dv;
        queue.push_back(el.w);
      }
      queue.push_back(el.u);
    }
    elims.push_back(el);
  }

  // Whatever survives goes through the sparse LU. Every unknown component
  // reaches a Dirichlet boundary (reachability / component construction
  // guarantees it), so the reduced Laplacian is a nonsingular M-matrix.
  std::vector<int> dense_of(n, -1);
  std::vector<std::size_t> alive_rows;
  for (std::size_t k = 0; k < n; ++k) {
    if (!alive[k]) continue;
    dense_of[k] = static_cast<int>(alive_rows.size());
    alive_rows.push_back(k);
  }
  std::vector<double> x(n, 0.0);
  if (!alive_rows.empty()) {
    linalg::SparseMatrix a(alive_rows.size(), alive_rows.size());
    std::vector<double> b(alive_rows.size(), 0.0);
    for (std::size_t r = 0; r < alive_rows.size(); ++r) {
      const std::size_t k = alive_rows[r];
      compact(k);
      double diag = gb[k];
      for (const auto& [m, ge] : nbr[k]) {
        diag += ge;
        a.add(r, static_cast<std::size_t>(dense_of[static_cast<std::size_t>(m)]),
              -ge);
      }
      a.add(r, r, diag);
      b[r] = rhs[k];
    }
    linalg::SparseLu lu(a);
    const std::vector<double> xr = lu.solve(b);
    for (std::size_t r = 0; r < alive_rows.size(); ++r)
      x[alive_rows[r]] = xr[r];
  }
  // Back-substitute the eliminations in reverse: by construction a
  // record's surviving neighbors are resolved later, so their levels are
  // already known here.
  for (std::size_t i = elims.size(); i-- > 0;) {
    const Elim& el = elims[i];
    double num = el.r;
    if (el.u >= 0) num += el.gu * x[static_cast<std::size_t>(el.u)];
    if (el.w >= 0) num += el.gw * x[static_cast<std::size_t>(el.w)];
    x[static_cast<std::size_t>(el.node)] = num / el.dv;
  }
  for (std::size_t k = 0; k < n; ++k)
    v[static_cast<std::size_t>(unknown[k])] = x[k];
}

namespace {
// EKV forward-current interpolation F(x) = ln²(1 + e^{x/2}) of the
// normalized overdrive x = od/(n·v_T): quadratic in strong inversion,
// exponential below threshold. The ratio of two F values is the ratio of
// saturation currents, which is exactly the derate a partially driven
// gate needs (a divider-held gate 50 mV above V_th runs in moderate
// inversion at ~3 % of the rail-referenced chord current).
double ekv_f(double x) {
  const double h = 0.5 * x;
  const double sp = h > 40.0 ? h : std::log1p(std::exp(h));
  return sp * sp;
}
}  // namespace

double RcGraph::g_timing(int ei, const LevelSolution& s) const {
  const RcEdge& e = edges_[static_cast<std::size_t>(ei)];
  if (!e.switchable || e.v_gs_ref <= e.v_on) return e.g_on;
  const double va = s.v[static_cast<std::size_t>(e.a)];
  const double vb = s.v[static_cast<std::size_t>(e.b)];
  const double vc = s.v[static_cast<std::size_t>(e.ctrl)];
  const double od = e.active_low ? std::max(va, vb) - vc - e.v_on
                                 : vc - std::min(va, vb) - e.v_on;
  const double od_ref = e.v_gs_ref - e.v_on;
  if (od >= od_ref) return e.g_on;
  if (e.v_slope > 0.0)
    return e.g_on * ekv_f(od / e.v_slope) / ekv_f(od_ref / e.v_slope);
  // No slope model: hard square-law, floored at a weak-inversion residue
  // so a barely-on gate stays finite instead of opening the path.
  const double ratio = std::max(od, 0.0) / od_ref;
  return e.g_on * std::max(ratio * ratio, 1e-3);
}

double RcGraph::thevenin_r(spice::NodeId n, const LevelSolution& s) const {
  const std::size_t ni = static_cast<std::size_t>(n);
  if (pin_of_[ni] >= 0) return pins_[static_cast<std::size_t>(pin_of_[ni])].r_series;
  // Component of n over conducting edges, with pins/ground as shorted
  // boundary (not expanded through).
  std::vector<int> comp;
  std::vector<char> in_comp(static_cast<std::size_t>(n_nodes_), 0);
  bool touches_boundary = false;
  comp.push_back(static_cast<int>(n));
  in_comp[ni] = 1;
  for (std::size_t head = 0; head < comp.size(); ++head) {
    const int cur = comp[head];
    for (const int ei : adj_[static_cast<std::size_t>(cur)]) {
      if (!s.edge_on[static_cast<std::size_t>(ei)]) continue;
      const RcEdge& e = edges_[static_cast<std::size_t>(ei)];
      const int m = static_cast<int>(e.a == cur ? e.b : e.a);
      if (m == 0 || pin_of_[static_cast<std::size_t>(m)] >= 0) {
        touches_boundary = true;
        continue;
      }
      if (!in_comp[static_cast<std::size_t>(m)]) {
        in_comp[static_cast<std::size_t>(m)] = 1;
        comp.push_back(m);
      }
    }
  }
  if (!touches_boundary) return kInf;

  // Unit current into n, boundary at 0 V: v(n) is R_th, exactly, over the
  // overdrive-derated timing conductances.
  std::vector<double> g(edges_.size(), 0.0);
  std::vector<char> use(edges_.size(), 0);
  for (const int cur : comp) {
    for (const int ei : adj_[static_cast<std::size_t>(cur)]) {
      const std::size_t e_idx = static_cast<std::size_t>(ei);
      if (!s.edge_on[e_idx] || use[e_idx]) continue;
      use[e_idx] = 1;
      g[e_idx] = g_timing(ei, s);
    }
  }
  std::vector<double> v(static_cast<std::size_t>(n_nodes_), 0.0);
  solve_nodal(comp, g, use, n, 1.0, v);
  return v[ni];
}

double RcGraph::swing_cap(spice::NodeId n, const LevelSolution& s) const {
  std::vector<int> comp{static_cast<int>(n)};
  std::vector<char> in_comp(static_cast<std::size_t>(n_nodes_), 0);
  in_comp[static_cast<std::size_t>(n)] = 1;
  double c = 0.0;
  for (std::size_t head = 0; head < comp.size(); ++head) {
    const int cur = comp[head];
    c += cap_[static_cast<std::size_t>(cur)];
    for (const int ei : adj_[static_cast<std::size_t>(cur)]) {
      if (!s.strong[static_cast<std::size_t>(ei)]) continue;
      const RcEdge& e = edges_[static_cast<std::size_t>(ei)];
      const int m = static_cast<int>(e.a == cur ? e.b : e.a);
      if (m == 0 || pin_of_[static_cast<std::size_t>(m)] >= 0) continue;
      if (!in_comp[static_cast<std::size_t>(m)]) {
        in_comp[static_cast<std::size_t>(m)] = 1;
        comp.push_back(m);
      }
    }
  }
  return c;
}

double RcGraph::leak_current(spice::NodeId n, double v_n,
                             const LevelSolution& s) const {
  double i = 0.0;
  for (const int ei : adj_[static_cast<std::size_t>(n)]) {
    const std::size_t e_idx = static_cast<std::size_t>(ei);
    if (s.strong[e_idx]) continue;  // strong edges are timing, not leak
    const RcEdge& e = edges_[e_idx];
    const double g = s.edge_on[e_idx] ? e.g_on : e.g_off;
    if (g <= 0.0) continue;
    const spice::NodeId m = e.a == n ? e.b : e.a;
    i += g * (v_n - s.v[static_cast<std::size_t>(m)]);
  }
  return i;
}

RcGraph::Elmore RcGraph::elmore_from(const RcPin& p,
                                     const LevelSolution& s) const {
  // BFS tree over static strong edges (wire resistors, closed contacts —
  // not gated channels, whose load belongs to the matchline analysis).
  std::vector<int>& order = ws_order_;
  order.clear();
  order.push_back(static_cast<int>(p.node));
  std::vector<int>& parent = ws_parent_;
  parent.assign(static_cast<std::size_t>(n_nodes_), -1);
  std::vector<double>& r_up = ws_r_up_;
  r_up.assign(static_cast<std::size_t>(n_nodes_), 0.0);
  std::vector<char>& seen = ws_seen_;
  seen.assign(static_cast<std::size_t>(n_nodes_), 0);
  seen[static_cast<std::size_t>(p.node)] = 1;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const int cur = order[head];
    for (const int ei : adj_[static_cast<std::size_t>(cur)]) {
      const std::size_t e_idx = static_cast<std::size_t>(ei);
      const RcEdge& e = edges_[e_idx];
      if (e.switchable || !s.strong[e_idx]) continue;
      const int m = static_cast<int>(e.a == cur ? e.b : e.a);
      if (m == 0 || pin_of_[static_cast<std::size_t>(m)] >= 0) continue;
      if (seen[static_cast<std::size_t>(m)]) continue;
      seen[static_cast<std::size_t>(m)] = 1;
      parent[static_cast<std::size_t>(m)] = cur;
      r_up[static_cast<std::size_t>(m)] = 1.0 / e.g_on;
      order.push_back(m);
    }
  }

  Elmore res;
  res.n_nodes = static_cast<int>(order.size());
  res.far_node = p.node;

  // Post-order accumulation of downstream cap, then of Σ C·m1. The pooled
  // arrays are only resized, not cleared: every visited node's slot is
  // written before it is read, and unvisited slots are never touched.
  std::vector<double>& c_down = ws_c_down_;
  c_down.resize(static_cast<std::size_t>(n_nodes_));
  for (const int n : order)
    c_down[static_cast<std::size_t>(n)] = cap_[static_cast<std::size_t>(n)];
  for (std::size_t k = order.size(); k-- > 1;) {
    const int n = order[k];
    c_down[static_cast<std::size_t>(parent[static_cast<std::size_t>(n)])] +=
        c_down[static_cast<std::size_t>(n)];
  }
  res.c_total = c_down[static_cast<std::size_t>(p.node)];

  // First moment: prefix walk (driver resistance charges everything).
  std::vector<double>& m1 = ws_m1_;
  m1.resize(static_cast<std::size_t>(n_nodes_));
  m1[static_cast<std::size_t>(p.node)] = p.r_series * res.c_total;
  for (std::size_t k = 1; k < order.size(); ++k) {
    const int n = order[k];
    const std::size_t nidx = static_cast<std::size_t>(n);
    m1[nidx] = m1[static_cast<std::size_t>(parent[nidx])] +
               r_up[nidx] * c_down[nidx];
  }
  // Second moment: S_down = Σ_subtree C·m1, then the same prefix walk.
  std::vector<double>& s_down = ws_s_down_;
  s_down.resize(static_cast<std::size_t>(n_nodes_));
  for (const int n : order) {
    const std::size_t nidx = static_cast<std::size_t>(n);
    s_down[nidx] = cap_[nidx] * m1[nidx];
  }
  for (std::size_t k = order.size(); k-- > 1;) {
    const int n = order[k];
    s_down[static_cast<std::size_t>(parent[static_cast<std::size_t>(n)])] +=
        s_down[static_cast<std::size_t>(n)];
  }
  std::vector<double>& m2 = ws_m2_;
  m2.resize(static_cast<std::size_t>(n_nodes_));
  m2[static_cast<std::size_t>(p.node)] =
      p.r_series * s_down[static_cast<std::size_t>(p.node)];
  for (std::size_t k = 1; k < order.size(); ++k) {
    const int n = order[k];
    const std::size_t nidx = static_cast<std::size_t>(n);
    m2[nidx] = m2[static_cast<std::size_t>(parent[nidx])] +
               r_up[nidx] * s_down[nidx];
  }
  for (const int n : order) {
    const std::size_t nidx = static_cast<std::size_t>(n);
    if (m1[nidx] >= res.m1) {
      res.m1 = m1[nidx];
      res.m2 = m2[nidx];
      res.far_node = static_cast<spice::NodeId>(n);
    }
  }
  return res;
}

}  // namespace nemtcam::sta
