// STA-backed margin rules, enforced through the existing erc::Checker
// path — quantitative siblings of the structural tcam.* rules:
//
//   sta.sense-margin      W  a matchline's nominal STA level at the sense
//                            strobe sits inside the guard band around the
//                            comparator threshold (undersized precharge,
//                            excessive matched-row droop, or a discharge
//                            too slow to commit before the strobe)
//   sta.sl-ladder-delay   W  a driven line's Elmore settle bound exceeds
//                            the sense strobe: the key has not reached
//                            the far rows when the ML is sampled
//   sta.refresh-window    E  a state-holding terminal's retention bound
//                            C·(V_store − V_hold)/I_leak falls short of
//                            safety × refresh period — the paper's
//                            one-shot-refresh hazard as a closed-form
//                            inequality (data loss, hence an error)
//
// All three run off one analyze() pass, so the factory returns a single
// CustomRule emitting findings under the three ids. Margins use the
// *nominal* STA estimate, not the k-widened bounds: the band factors
// absorb macro-model error for bracketing, but a rule that cried wolf on
// every k_hi-padded corner would drown the real defects.
#pragma once

#include <string>
#include <vector>

#include "erc/Checker.h"
#include "sta/Sta.h"

namespace nemtcam::sta {

// One rule evaluating all sta.* margin checks over the given matchline
// probes (empty → the "ml*" heuristic of analyze()).
erc::Checker::CustomRule margin_rules(std::vector<std::string> ml_probes,
                                      StaOptions opt);

}  // namespace nemtcam::sta
