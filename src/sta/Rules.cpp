#include "sta/Rules.h"

#include <cmath>

#include "sta/Sta.h"

namespace nemtcam::sta {

namespace {

std::string volts(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3g V", v);
  return buf;
}

std::string seconds(double t) {
  char buf[32];
  if (std::isinf(t))
    std::snprintf(buf, sizeof buf, "inf");
  else
    std::snprintf(buf, sizeof buf, "%.3g ns", t * 1e9);
  return buf;
}

}  // namespace

erc::Checker::CustomRule margin_rules(std::vector<std::string> ml_probes,
                                      StaOptions opt) {
  return [probes = std::move(ml_probes), opt](spice::Circuit& c,
                                              const erc::NodeGraph&,
                                              erc::Report& report) {
    const StaReport sta = analyze(c, probes, opt);

    for (const auto& ml : sta.mls) {
      if (!ml.valid) continue;
      // The nominal strobe level must clear the comparator threshold by
      // the guard band on whichever side it lands — a level inside the
      // band means the sense amp is deciding a coin flip.
      if (std::abs(ml.sense_margin) < opt.sense_margin_min) {
        erc::Finding f;
        f.rule = "sta.sense-margin";
        f.severity = erc::Severity::Warning;
        f.message = "matchline '" + ml.node + "' sits at " +
                    volts(ml.v_strobe_nom) + " at the sense strobe, within " +
                    volts(opt.sense_margin_min) + " of the " +
                    volts(opt.v_sense) + " threshold (precharge reaches " +
                    volts(ml.v0) + ")";
        f.nodes = {ml.node};
        f.hint =
            "widen the precharge device or precharge window, slow the "
            "strobe, or reduce matchline leakage/droop";
        report.add(std::move(f));
      }
    }

    for (const auto& line : sta.lines) {
      if (line.t_settle_hi <= opt.t_strobe) continue;
      erc::Finding f;
      f.rule = "sta.sl-ladder-delay";
      f.severity = erc::Severity::Warning;
      f.message = "driven line '" + line.node + "' settles in " +
                  seconds(line.t_settle_hi) + " (Elmore m1 " +
                  seconds(line.m1) + " over " + std::to_string(line.n_nodes) +
                  " nodes), past the " + seconds(opt.t_strobe) +
                  " sense strobe";
      f.nodes = {line.node};
      f.devices = {line.driver};
      f.hint =
          "shorten or segment the line, strengthen the driver, or delay "
          "the strobe";
      report.add(std::move(f));
    }

    if (opt.refresh_period > 0.0) {
      for (const auto& r : sta.retention) {
        if (r.t_retention >= opt.refresh_safety * opt.refresh_period) continue;
        erc::Finding f;
        f.rule = "sta.refresh-window";
        f.severity = erc::Severity::Error;
        f.message = "storage node '" + r.node + "' (" + r.device +
                    ") retains for " + seconds(r.t_retention) +
                    " but the refresh period is " +
                    seconds(opt.refresh_period) + " (x" +
                    std::to_string(opt.refresh_safety).substr(0, 4) +
                    " safety): stored state decays below its hold level "
                    "before the next one-shot refresh";
        f.nodes = {r.node};
        f.devices = {r.device};
        f.hint =
            "shorten the refresh period, reduce storage-node leakage, or "
            "raise the stored level";
        report.add(std::move(f));
      }
    }
  };
}

}  // namespace nemtcam::sta
