// Ground-referenced RC view of an elaborated circuit for static analysis.
//
// Built once per analysis from the devices' DeviceTopology small-signal
// summaries (spice/Device.h): per-node lumped capacitance, resistive /
// leak edges with their gating, independent-source pins (level at t = 0
// and at the settle horizon, driver series resistance), and the list of
// state-holding terminals. Everything the sta:: engine computes — switch-
// level logic levels, Thevenin discharge equivalents, Elmore moments —
// is a traversal of this graph; no Newton iteration ever runs.
//
// Two conduction tiers matter on a search-transaction timescale:
//  - "strong" edges (conducting, g ≥ kWeakG) move charge within the
//    window and define the switch-level connectivity;
//  - everything else (off-state g_off, weak leak resistors) only matters
//    as droop/retention current — a node whose only paths are weak holds
//    its initial condition through the window and decays over micro- to
//    milliseconds, which is exactly the paper's refresh-window physics.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/Circuit.h"

namespace nemtcam::sta {

struct RcEdge {
  spice::NodeId a = spice::kGround;
  spice::NodeId b = spice::kGround;
  double g_on = 0.0;    // conductance when conducting (S); clamped finite
  double g_off = 0.0;   // worst-case leak when not conducting (S)
  bool has_r = false;   // device reported a resistance model (r_on ≥ 0)
  bool switchable = false;      // gated by a control node
  spice::NodeId ctrl = spice::kGround;
  double v_on = 0.0;
  bool active_low = false;
  bool static_on = true;        // committed state when not switchable
  double v_gs_ref = 0.0;        // gate drive r_on was summarized at; 0 = n/a
  double v_slope = 0.0;         // n·v_T for the derate interpolation; 0 = n/a
  const spice::Device* device = nullptr;
};

// Pair capacitance between two live nodes (kept alongside the both-end
// ground lumps): the aggressor-coupling term behind the matchline boost —
// a rising SL kicks a floating precharged ML above the rail through the
// compare-gate overlap caps.
struct RcXcap {
  spice::NodeId a = spice::kGround;
  spice::NodeId b = spice::kGround;
  double c = 0.0;
};

// Independent voltage pin: the node a source defines, with its drive
// levels and driver resistance.
struct RcPin {
  spice::NodeId node = spice::kGround;
  double v_init = 0.0;   // drive level at t = 0
  double v_final = 0.0;  // settled drive level
  double r_series = 0.0;
  const spice::Device* device = nullptr;
};

// Terminal that must hold its level for the device to retain state
// (closed NEM relay gate): input to the retention/refresh-window bound.
struct RcHold {
  spice::NodeId node = spice::kGround;
  double v_hold = 0.0;
  const spice::Device* device = nullptr;
};

// One static switch-level solution: per-node levels with the edge states
// that produced them.
struct LevelSolution {
  std::vector<double> v;        // per node id (index 0 = ground)
  std::vector<char> edge_on;    // per edge: conducting in this solution
  std::vector<char> strong;     // per edge: conducting with g ≥ kWeakG
  std::vector<char> floating;   // per node: no strong path to any pin
};

class RcGraph {
 public:
  // Conduction below this is "weak": it cannot move a line within a
  // search window, only leak charge over retention timescales. 10 nS
  // keeps an HRS RRAM filament (0.5 µS) strong — the finite-ON/OFF-ratio
  // matched-row droop must stay on the timing path — while an off MOS
  // channel (~pS) and a leaky relay dielectric (~nS) fall below it.
  static constexpr double kWeakG = 1e-8;
  // Floor resistance for edges reporting r_on = 0 (inductor DC short).
  static constexpr double kMinR = 1e-3;

  explicit RcGraph(spice::Circuit& circuit);

  spice::Circuit& circuit() const noexcept { return *circuit_; }
  int node_count() const noexcept { return n_nodes_; }
  const std::vector<RcEdge>& edges() const noexcept { return edges_; }
  const std::vector<RcPin>& pins() const noexcept { return pins_; }
  const std::vector<RcHold>& holds() const noexcept { return holds_; }
  // Edge indices incident on a node.
  const std::vector<int>& edges_at(spice::NodeId n) const {
    return adj_[static_cast<std::size_t>(n)];
  }
  // Lumped capacitance to ground at a node (terminal c_ground plus the
  // quiet-neighbor share of every pair coupling).
  double cap(spice::NodeId n) const {
    return cap_[static_cast<std::size_t>(n)];
  }
  bool is_pin(spice::NodeId n) const {
    return pin_of_[static_cast<std::size_t>(n)] >= 0;
  }
  // Pair-capacitance indices incident on a node.
  const std::vector<int>& xcaps_at(spice::NodeId n) const {
    return xadj_[static_cast<std::size_t>(n)];
  }
  const std::vector<RcXcap>& xcaps() const noexcept { return xcaps_; }
  // Timing conductance of an edge under a solution: g_on derated by the
  // squared overdrive ratio for partially driven gates (saturation-current
  // scaling); g_on unchanged for static edges and rail-driven gates.
  double g_timing(int ei, const LevelSolution& s) const;
  // Initial level of a node before any solve: its IC when set, else 0.
  double ic(spice::NodeId n) const;

  // Static switch-level solve: pins at v_init (use_final = false, the
  // precharge phase) or v_final (post-edge). Gated edge states and node
  // levels are relaxed to a joint fixpoint; nodes with no strong path to
  // a pin hold their IC (a floating storage node does not move within
  // the window).
  LevelSolution solve(bool use_final) const;

  // Thevenin resistance seen from `n` over the solution's conducting
  // edges with every pin (and ground) shorted — the discharge-path
  // equivalent. Computed by unit-current injection restricted to n's
  // component, so it is exact for series/parallel device stacks.
  // Returns +inf when n has no conducting path to a pin.
  double thevenin_r(spice::NodeId n, const LevelSolution& s) const;

  // Total capacitance that must swing with `n`: its own lump plus every
  // non-pin node reachable over strong edges.
  double swing_cap(spice::NodeId n, const LevelSolution& s) const;

  // Leak current out of `n` at level `v_n`: the sum over incident
  // non-conducting (or weak) edges of g·(v_n − v_neighbor).
  double leak_current(spice::NodeId n, double v_n,
                      const LevelSolution& s) const;

  // Elmore moments of the RC subtree fed by pin `p` over static (non-
  // gated) conducting edges: first and second moments at the worst sink,
  // total capacitance, and node count. Loops are broken on a BFS tree
  // (the shipped ladders are trees; a loop only tightens the true delay,
  // so the tree bound stays an upper estimate).
  struct Elmore {
    double m1 = 0.0;       // worst-sink first moment Σ R_common·C (s)
    double m2 = 0.0;       // matching second moment (s²)
    double c_total = 0.0;  // F
    int n_nodes = 0;
    spice::NodeId far_node = spice::kGround;
  };
  Elmore elmore_from(const RcPin& p, const LevelSolution& s) const;

 private:
  bool edge_conducts(const RcEdge& e, const std::vector<double>& v) const;
  // Exact nodal solve over `unknown` (node ids): for each unknown node i,
  //   Σ_incident g_edge[e]·(v_i − v_j) = i_inj·[i == inj_node],
  // every node outside `unknown` a Dirichlet boundary held at v[·].
  // Edges participate when use_edge[e] is set. Writes the solution back
  // into v at the unknown indices. Sparse LU over the reduced Laplacian —
  // the SL wire ladders are long 1-D chains where relaxation needs O(n²)
  // sweeps, so iteration does not scale past small widths.
  void solve_nodal(const std::vector<int>& unknown,
                   const std::vector<double>& g_edge,
                   const std::vector<char>& use_edge, spice::NodeId inj_node,
                   double i_inj, std::vector<double>& v) const;

  spice::Circuit* circuit_;
  int n_nodes_ = 0;
  // Scratch pools reused across the const analysis calls (an analysis
  // makes a few thousand of them on a full-width template, and the
  // allocator traffic would otherwise dominate the solve itself). A
  // consequence: RcGraph is not thread-safe — every analysis builds its
  // own instance, which is how sta::analyze uses it.
  mutable std::vector<int> ws_row_of_;
  mutable std::vector<std::vector<std::pair<int, double>>> ws_nbr_;
  mutable std::vector<double> ws_gb_, ws_rhs_;
  mutable std::vector<char> ws_alive_;
  mutable std::vector<int> ws_pos_;
  mutable std::vector<int> ws_order_, ws_parent_;
  mutable std::vector<double> ws_r_up_, ws_c_down_, ws_m1_, ws_s_down_,
      ws_m2_;
  mutable std::vector<char> ws_seen_;
  std::vector<RcEdge> edges_;
  std::vector<RcPin> pins_;
  std::vector<RcHold> holds_;
  std::vector<RcXcap> xcaps_;
  std::vector<std::vector<int>> adj_;
  std::vector<std::vector<int>> xadj_;
  std::vector<double> cap_;
  std::vector<int> pin_of_;  // node → index into pins_, −1 otherwise
};

}  // namespace nemtcam::sta
