// Ferroelectric FET compact model (2FeFET TCAM baseline).
//
// A MOSFET whose effective threshold is shifted by the ferroelectric
// polarization P ∈ [−1, +1]:
//     V_th,eff = V_th,mid − P·(V_th,high − V_th,low)/2.
// P moves only when |V_GS| exceeds the coercive voltage, at a rate
// proportional to the overdrive, saturating at ±1 — the envelope of the
// Preisach model of Ni et al. [11], which is exact for the full-swing
// ±4 V / 10 ns write pulses TCAM programming uses (no minor loops).
// The high write voltage is what makes the FeFET TCAM's write energy
// large: the bitline parasitics charge to 4 V instead of 1 V.
#pragma once

#include "devices/Mosfet.h"
#include "devices/Passive.h"

namespace nemtcam::devices {

struct FefetParams {
  MosfetParams fet = MosfetParams::nmos_lp();
  // Memory-window thresholds (Ni et al. [11]-style FeFET: ~1 V window
  // centred above VDD/2 so the HVT state is fully off at a VDD=1 V gate
  // and the LVT state conducts with moderate overdrive).
  double vth_low = 0.58;    // threshold in the low-V_th (erased, P=+1) state
  double vth_high = 1.58;   // threshold in the high-V_th (programmed, P=−1) state
  double v_coercive = 2.0;  // no polarization motion below this |V_GS| (V)
  double v_write = 4.0;     // nominal write drive (V)
  double t_write = 10e-9;   // polarization transition time at ±v_write (s)
  double c_fe = 0.05e-15;    // ferroelectric gate stack capacitance (F)
};

class Fefet final : public Device {
 public:
  Fefet(std::string name, NodeId d, NodeId g, NodeId s, FefetParams params = {});

  void stamp(Stamper& s, const StampContext& ctx) override;
  void commit(const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;
  double max_dt_hint() const override;
  double event_function(const StampContext& ctx) const override;
  double power(const StampContext& ctx) const override;

  double polarization() const noexcept { return p_; }
  void set_polarization(double p);
  // Simulation time at which polarization last crossed ±0.9 (write-latency
  // telemetry); negative if never.
  double t_program_complete() const noexcept { return t_program_; }
  double t_erase_complete() const noexcept { return t_erase_; }
  // Convenience: P=+1 (low V_th, conducts at VDD gate) or −1 (high V_th).
  void set_low_vth(bool low) { set_polarization(low ? 1.0 : -1.0); }
  // Aging hook (see lifetime/Degradation): polarization fatigue narrows the
  // memory window symmetrically toward its midpoint. Absolute setter,
  // clamped so the window never inverts (the ERC value.fefet-window defect
  // is a design error, not a state wear may reach):
  // vth_high ≥ vth_low + kWindowMin.
  void set_memory_window(double vth_low, double vth_high);
  static constexpr double kWindowMin = 0.05;  // V
  double vth_eff() const noexcept;
  bool is_low_vth() const noexcept { return p_ > 0.0; }

  void reset_state() override {
    cgfe_c_.reset();
    cgd_c_.reset();
    cdb_c_.reset();
    csb_c_.reset();
    moving_ = false;
    t_program_ = -1.0;
    t_erase_ = -1.0;
  }

  const FefetParams& params() const noexcept { return params_; }

 private:
  NodeId d_, g_, s_;
  FefetParams params_;
  CapCompanion cgfe_c_, cgd_c_, cdb_c_, csb_c_;
  double p_ = -1.0;    // polarization state
  bool moving_ = false;  // last committed step had polarization in motion
  double t_program_ = -1.0;
  double t_erase_ = -1.0;
};

}  // namespace nemtcam::devices
