#include "devices/Rram.h"

#include <algorithm>
#include <cmath>

namespace nemtcam::devices {

Rram::Rram(std::string name, NodeId top, NodeId bottom, RramParams params)
    : Device(std::move(name)), top_(top), bottom_(bottom), params_(params) {
  NEMTCAM_EXPECT(params_.r_on > 0.0 && params_.r_off > params_.r_on);
  NEMTCAM_EXPECT(params_.vth_set < params_.v_set);
  NEMTCAM_EXPECT(params_.vth_reset < params_.v_reset);
  NEMTCAM_EXPECT(params_.t_write > 0.0);
}

double Rram::resistance() const noexcept {
  const double g_on = 1.0 / params_.r_on;
  const double g_off = 1.0 / params_.r_off;
  const double g = g_off + (g_on - g_off) * std::pow(w_, params_.shape_exp);
  return 1.0 / g;
}

void Rram::stamp(Stamper& s, const StampContext&) {
  s.conductance(top_, bottom_, 1.0 / resistance());
}

void Rram::commit(const StampContext& ctx) {
  const double v = ctx.v(top_) - ctx.v(bottom_);
  const double dt = ctx.dt();
  const double w_before = w_;
  if (v > params_.vth_set) {
    const double rate =
        (v - params_.vth_set) / (params_.v_set - params_.vth_set);
    w_ += rate * dt / params_.t_write;
  } else if (v < -params_.vth_reset) {
    const double rate =
        (-v - params_.vth_reset) / (params_.v_reset - params_.vth_reset);
    w_ -= rate * dt / params_.t_write;
  }
  w_ = std::clamp(w_, 0.0, 1.0);
  moving_ = (v > params_.vth_set && w_ < 1.0) ||
            (v < -params_.vth_reset && w_ > 0.0);
  if (w_before < 0.9 && w_ >= 0.9) t_set_ = ctx.t();
  if (w_before > 0.1 && w_ <= 0.1) t_reset_ = ctx.t();
}

double Rram::max_dt_hint() const {
  // Resolve state transitions while the filament is actually in motion;
  // 1/200 of the write time keeps the trajectory smooth. An idle device
  // leaves the step free — the event function below guarantees the engine
  // lands on the threshold crossing that starts the motion, so search-scale
  // transients are no longer capped by t_write.
  if (!moving_) return std::numeric_limits<double>::infinity();
  return params_.t_write / 200.0;
}

double Rram::event_function(const StampContext& ctx) const {
  if (ctx.dc()) return std::numeric_limits<double>::infinity();
  // Which surface is armed is decided from the step-start voltage and the
  // committed state (never the iterate), so both ends of a step see the
  // same surface.
  const double v_prev = ctx.v_prev(top_) - ctx.v_prev(bottom_);
  const double v = ctx.v(top_) - ctx.v(bottom_);
  if (v_prev > params_.vth_set && w_ < 1.0) {
    // SET in progress: the event is full formation (w reaching 1),
    // projected with this step's end-point rate.
    const double rate =
        std::max(v - params_.vth_set, 0.0) / (params_.v_set - params_.vth_set);
    return 1.0 - (w_ + rate * ctx.dt() / params_.t_write);
  }
  if (v_prev < -params_.vth_reset && w_ > 0.0) {
    const double rate = std::max(-v - params_.vth_reset, 0.0) /
                        (params_.v_reset - params_.vth_reset);
    return w_ - rate * ctx.dt() / params_.t_write;
  }
  // Idle: the event is the drive crossing either write threshold.
  return std::min(params_.vth_set - v, v + params_.vth_reset);
}

double Rram::power(const StampContext& ctx) const {
  const double v = ctx.v(top_) - ctx.v(bottom_);
  return v * v / resistance();
}

void Rram::set_state(double w) {
  NEMTCAM_EXPECT(w >= 0.0 && w <= 1.0);
  w_ = w;
}

void Rram::set_resistance_window(double r_on, double r_off) {
  params_.r_on = std::max(r_on, kROnMin);
  params_.r_off = std::max(r_off, params_.r_on * kMinWindowRatio);
}


spice::DeviceTopology Rram::topology() const {
  spice::DeviceTopology t{{{"top", top_}, {"bottom", bottom_}},
                          {{0, 1, spice::DcCoupling::Conductive}}};
  // Filament-state resistance. An HRS cell is still a real (weak)
  // conduction path — which is precisely the finite ON/OFF-ratio droop
  // that limits RRAM match-line array size; the STA engine reproduces
  // that hazard only because the summary reports HRS as a resistance,
  // not as leakage on an off switch.
  t.couplings[0].r_on = resistance();
  return t;
}

}  // namespace nemtcam::devices
