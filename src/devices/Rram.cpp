#include "devices/Rram.h"

#include <algorithm>
#include <cmath>

namespace nemtcam::devices {

Rram::Rram(std::string name, NodeId top, NodeId bottom, RramParams params)
    : Device(std::move(name)), top_(top), bottom_(bottom), params_(params) {
  NEMTCAM_EXPECT(params_.r_on > 0.0 && params_.r_off > params_.r_on);
  NEMTCAM_EXPECT(params_.vth_set < params_.v_set);
  NEMTCAM_EXPECT(params_.vth_reset < params_.v_reset);
  NEMTCAM_EXPECT(params_.t_write > 0.0);
}

double Rram::resistance() const noexcept {
  const double g_on = 1.0 / params_.r_on;
  const double g_off = 1.0 / params_.r_off;
  const double g = g_off + (g_on - g_off) * std::pow(w_, params_.shape_exp);
  return 1.0 / g;
}

void Rram::stamp(Stamper& s, const StampContext&) {
  s.conductance(top_, bottom_, 1.0 / resistance());
}

void Rram::commit(const StampContext& ctx) {
  const double v = ctx.v(top_) - ctx.v(bottom_);
  const double dt = ctx.dt();
  const double w_before = w_;
  if (v > params_.vth_set) {
    const double rate =
        (v - params_.vth_set) / (params_.v_set - params_.vth_set);
    w_ += rate * dt / params_.t_write;
  } else if (v < -params_.vth_reset) {
    const double rate =
        (-v - params_.vth_reset) / (params_.v_reset - params_.vth_reset);
    w_ -= rate * dt / params_.t_write;
  }
  w_ = std::clamp(w_, 0.0, 1.0);
  if (w_before < 0.9 && w_ >= 0.9) t_set_ = ctx.t();
  if (w_before > 0.1 && w_ <= 0.1) t_reset_ = ctx.t();
}

double Rram::max_dt_hint() const {
  // Resolve state transitions; 1/200 of the write time keeps the filament
  // trajectory smooth without slowing search-scale simulations much.
  return params_.t_write / 200.0;
}

double Rram::power(const StampContext& ctx) const {
  const double v = ctx.v(top_) - ctx.v(bottom_);
  return v * v / resistance();
}

void Rram::set_state(double w) {
  NEMTCAM_EXPECT(w >= 0.0 && w <= 1.0);
  w_ = w;
}

}  // namespace nemtcam::devices
