// Linear controlled sources (SPICE E/G/F/H elements), used for behavioral
// peripheral modeling (sense amplifiers, replica drivers) and netlists.
#pragma once

#include "spice/Device.h"
#include "spice/Stamper.h"

namespace nemtcam::devices {

using spice::BranchId;
using spice::Device;
using spice::NodeId;
using spice::StampContext;
using spice::Stamper;

// E element: v(p,m) = gain · v(cp,cm).
class Vcvs final : public Device {
 public:
  Vcvs(std::string name, NodeId p, NodeId m, NodeId cp, NodeId cm, double gain);

  int branch_count() const override { return 1; }
  void stamp(Stamper& s, const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;

 private:
  NodeId p_, m_, cp_, cm_;
  double gain_;
};

// G element: i(p→m) = gm · v(cp,cm).
class Vccs final : public Device {
 public:
  Vccs(std::string name, NodeId p, NodeId m, NodeId cp, NodeId cm, double gm);

  void stamp(Stamper& s, const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;

 private:
  NodeId p_, m_, cp_, cm_;
  double gm_;
};

// F element: i(p→m) = gain · i(controlling branch). The controlling
// element must own an MNA branch (a VSource, Inductor, Vcvs or Ccvs).
class Cccs final : public Device {
 public:
  Cccs(std::string name, NodeId p, NodeId m, const Device& controlling,
       double gain);

  void stamp(Stamper& s, const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;

 private:
  NodeId p_, m_;
  const Device* controlling_;
  double gain_;
};

// H element: v(p,m) = r · i(controlling branch).
class Ccvs final : public Device {
 public:
  Ccvs(std::string name, NodeId p, NodeId m, const Device& controlling,
       double transresistance);

  int branch_count() const override { return 1; }
  void stamp(Stamper& s, const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;

 private:
  NodeId p_, m_;
  const Device* controlling_;
  double r_;
};

}  // namespace nemtcam::devices
