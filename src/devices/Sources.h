// Independent sources driven by spice::Waveform.
#pragma once

#include <memory>

#include "spice/Device.h"
#include "spice/Stamper.h"
#include "spice/Waveform.h"

namespace nemtcam::devices {

using spice::Device;
using spice::NodeId;
using spice::StampContext;
using spice::Stamper;
using spice::Waveform;

// Ideal (optionally series-resistive) voltage source. Uses one MNA branch
// unknown: the current flowing into the + terminal.
class VSource final : public Device {
 public:
  VSource(std::string name, NodeId plus, NodeId minus,
          std::unique_ptr<Waveform> wave, double series_ohms = 0.0);
  // Convenience: DC level.
  VSource(std::string name, NodeId plus, NodeId minus, double dc_volts,
          double series_ohms = 0.0);

  int branch_count() const override { return 1; }
  void stamp(Stamper& s, const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;
  double delivered_power(const StampContext& ctx) const override;
  std::vector<double> breakpoints(double t_end) const override;

  double value_at(double t) const { return wave_->value(t); }
  NodeId plus() const noexcept { return plus_; }
  NodeId minus() const noexcept { return minus_; }

  // Replaces the drive waveform (transaction drivers reuse one netlist
  // across operations).
  void set_wave(std::unique_ptr<Waveform> wave);

  bool rebind_wave(std::unique_ptr<Waveform> wave) override {
    set_wave(std::move(wave));
    return true;
  }

 private:
  NodeId plus_, minus_;
  std::unique_ptr<Waveform> wave_;
  double series_ohms_;
};

// Ideal current source: current value(t) flows from `from` to `to` through
// the source (i.e. it is injected into `to`).
class ISource final : public Device {
 public:
  ISource(std::string name, NodeId from, NodeId to,
          std::unique_ptr<Waveform> wave);
  ISource(std::string name, NodeId from, NodeId to, double dc_amps);

  void stamp(Stamper& s, const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;
  double delivered_power(const StampContext& ctx) const override;
  std::vector<double> breakpoints(double t_end) const override;

  bool rebind_wave(std::unique_ptr<Waveform> wave) override {
    wave_ = std::move(wave);
    return true;
  }

 private:
  NodeId from_, to_;
  std::unique_ptr<Waveform> wave_;
};

}  // namespace nemtcam::devices
