// Spin-transfer-torque magnetic tunnel junction (STT-MTJ) compact model —
// the storage element of the MRAM TCAM baseline the paper cites ([5],
// Matsunaga et al.).
//
// Two-terminal resistive element with magnetization state m ∈ [0,1]
// (1 = parallel/low-R). The defining limitation vs RRAM/FeFET is the low
// ON/OFF ratio: TMR ≈ 150% gives R_AP/R_P ≈ 2.5 — which is why MRAM TCAMs
// need per-cell sensing instead of bare wired-NOR matchlines. Switching is
// current-driven and threshold-gated: |I| must exceed the critical current
// I_c, with switching speed growing with overdrive (τ ∝ 1/(I/I_c − 1)).
// Positive current (top → bottom) drives toward parallel.
#pragma once

#include "spice/Device.h"
#include "spice/Stamper.h"

namespace nemtcam::devices {

using spice::Device;
using spice::NodeId;
using spice::StampContext;
using spice::Stamper;

struct MtjParams {
  double r_parallel = 3e3;        // low-resistance state (Ω)
  double r_antiparallel = 7.5e3;  // high-resistance state (Ω), TMR = 150 %
  double i_critical = 60e-6;      // STT threshold current (A)
  // Reference switching time at 1.5× overdrive: τ(I) = t_ref·0.5/(I/Ic − 1).
  double t_switch_ref = 10e-9;
};

class Mtj final : public Device {
 public:
  Mtj(std::string name, NodeId top, NodeId bottom, MtjParams params = {});

  void stamp(Stamper& s, const StampContext& ctx) override;
  void commit(const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;
  double max_dt_hint() const override;
  double power(const StampContext& ctx) const override;

  double state() const noexcept { return m_; }
  void set_state(double m);
  void set_parallel(bool parallel) { set_state(parallel ? 1.0 : 0.0); }
  bool is_parallel() const noexcept { return m_ > 0.5; }
  double resistance() const noexcept;
  // Settle telemetry (state crossing 0.9 toward P / 0.1 toward AP).
  double t_parallel_complete() const noexcept { return t_par_; }
  double t_antiparallel_complete() const noexcept { return t_ap_; }

  const MtjParams& params() const noexcept { return params_; }

  void reset_state() override {
    t_par_ = -1.0;
    t_ap_ = -1.0;
  }

 private:
  NodeId top_, bottom_;
  MtjParams params_;
  double m_ = 1.0;
  double t_par_ = -1.0;
  double t_ap_ = -1.0;
};

}  // namespace nemtcam::devices
