// Inductor with a branch-current unknown and a Backward-Euler companion.
// DC: a short (v_a = v_b). Transient: v = L·di/dt.
#pragma once

#include "spice/Device.h"
#include "spice/Stamper.h"

namespace nemtcam::devices {

using spice::Device;
using spice::NodeId;
using spice::StampContext;
using spice::Stamper;

class Inductor final : public Device {
 public:
  Inductor(std::string name, NodeId a, NodeId b, double henries);

  int branch_count() const override { return 1; }
  void stamp(Stamper& s, const StampContext& ctx) override;
  void commit(const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;

  double inductance() const noexcept { return henries_; }
  double current() const noexcept { return i_prev_; }
  void set_initial_current(double amps) { i_prev_ = amps; }

  void reset_state() override { i_prev_ = 0.0; }

 private:
  NodeId a_, b_;
  double henries_;
  double i_prev_ = 0.0;
};

}  // namespace nemtcam::devices
