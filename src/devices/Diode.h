// Junction diode (Shockley model with optional series resistance and
// junction capacitance) — completes the simulator's elementary device set
// and models the well/junction clamps in peripheral circuits.
#pragma once

#include "devices/Passive.h"
#include "spice/Device.h"
#include "spice/Stamper.h"

namespace nemtcam::devices {

using spice::Device;
using spice::NodeId;
using spice::StampContext;
using spice::Stamper;

struct DiodeParams {
  double i_sat = 1e-15;   // saturation current (A)
  double n_ideality = 1.0;
  double c_junction = 0.0;  // zero-bias junction capacitance (F), linearized
};

class Diode final : public Device {
 public:
  Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params = {});

  void stamp(Stamper& s, const StampContext& ctx) override;
  void commit(const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;
  double power(const StampContext& ctx) const override;

  // Diode current at a given forward voltage (model evaluation, for tests).
  double current_at(double v) const;

  const DiodeParams& params() const noexcept { return params_; }

  void reset_state() override { cj_c_.reset(); }

 private:
  NodeId anode_, cathode_;
  DiodeParams params_;
  CapCompanion cj_c_;
};

}  // namespace nemtcam::devices
