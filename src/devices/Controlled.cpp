#include "devices/Controlled.h"

namespace nemtcam::devices {

Vcvs::Vcvs(std::string name, NodeId p, NodeId m, NodeId cp, NodeId cm,
           double gain)
    : Device(std::move(name)), p_(p), m_(m), cp_(cp), cm_(cm), gain_(gain) {}

void Vcvs::stamp(Stamper& s, const StampContext&) {
  // Branch row: v_p − v_m − gain·(v_cp − v_cm) = 0.
  s.voltage_source(p_, m_, first_branch(), 0.0);
  s.branch_row_node(first_branch(), cp_, -gain_);
  s.branch_row_node(first_branch(), cm_, gain_);
}

Vccs::Vccs(std::string name, NodeId p, NodeId m, NodeId cp, NodeId cm,
           double gm)
    : Device(std::move(name)), p_(p), m_(m), cp_(cp), cm_(cm), gm_(gm) {}

void Vccs::stamp(Stamper& s, const StampContext&) {
  s.vccs(p_, m_, cp_, cm_, gm_);
}

Cccs::Cccs(std::string name, NodeId p, NodeId m, const Device& controlling,
           double gain)
    : Device(std::move(name)), p_(p), m_(m), controlling_(&controlling),
      gain_(gain) {
  NEMTCAM_EXPECT_MSG(controlling.branch_count() > 0,
                     "CCCS controlling element must own an MNA branch");
}

void Cccs::stamp(Stamper& s, const StampContext&) {
  s.branch_controlled_current(p_, m_, controlling_->first_branch(), gain_);
}

Ccvs::Ccvs(std::string name, NodeId p, NodeId m, const Device& controlling,
           double transresistance)
    : Device(std::move(name)), p_(p), m_(m), controlling_(&controlling),
      r_(transresistance) {
  NEMTCAM_EXPECT_MSG(controlling.branch_count() > 0,
                     "CCVS controlling element must own an MNA branch");
}

void Ccvs::stamp(Stamper& s, const StampContext&) {
  // Branch row: v_p − v_m − r·i_ctrl = 0.
  s.voltage_source(p_, m_, first_branch(), 0.0);
  s.branch_row_branch(first_branch(), controlling_->first_branch(), -r_);
}


spice::DeviceTopology Vcvs::topology() const {
  // The output branch is voltage-defined (a DC path); the control pair
  // only senses — deliberately not coupled, so a control-side island with
  // no ground reference of its own is still reported.
  return {{{"p", p_}, {"m", m_}, {"cp", cp_}, {"cm", cm_}},
          {{0, 1, spice::DcCoupling::Conductive}}};
}

spice::DeviceTopology Vccs::topology() const {
  return {{{"p", p_}, {"m", m_}, {"cp", cp_}, {"cm", cm_}},
          {{0, 1, spice::DcCoupling::Open}}};
}

spice::DeviceTopology Cccs::topology() const {
  return {{{"p", p_}, {"m", m_}}, {{0, 1, spice::DcCoupling::Open}}};
}

spice::DeviceTopology Ccvs::topology() const {
  return {{{"p", p_}, {"m", m_}}, {{0, 1, spice::DcCoupling::Conductive}}};
}

}  // namespace nemtcam::devices
