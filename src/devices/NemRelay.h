// Four-terminal nanoelectromechanical (NEM) relay compact model.
//
// Electrical behaviour (per the paper's Table I and Fig. 3/5):
//  - The gate–body capacitance C_GB depends on the beam position:
//    C_off = 15 aF when fully open, C_on = 20 aF when pulled in. The
//    companion model is charge-based so beam motion conserves charge on a
//    floating gate (this is what makes one-shot refresh analysis honest).
//  - The drain–source contact is a 1 kΩ metal contact when closed and an
//    air gap (~zero leakage, modelled as g_off = 1e-15 S) when open.
//    There is no threshold drop: the relay passes full rail.
//  - Actuation is hysteretic: the beam latches toward the gate when
//    |V_GB| ≥ V_PI (pull-in, 0.53 V) and releases when |V_GB| ≤ V_PO
//    (pull-out, 0.13 V); between the two the current mechanical target is
//    held — the hysteresis window one-shot refresh exploits.
//  - Mechanics: the normalized beam position z ∈ [0,1] traverses the gap
//    at constant rate 1/τ_mech (τ_mech = 2 ns); contact closes at z = 1.
//    Sub-step threshold crossings are located by linear interpolation of
//    V_GB inside the accepted step.
#pragma once

#include "spice/Device.h"
#include "spice/Stamper.h"

namespace nemtcam::devices {

using spice::Device;
using spice::NodeId;
using spice::StampContext;
using spice::Stamper;

struct NemRelayParams {
  double v_pi = 0.53;       // pull-in voltage (V)
  double v_po = 0.13;       // pull-out voltage (V)
  double c_on = 20e-18;     // C_GB when closed (F)
  double c_off = 15e-18;    // C_GB when open (F)
  double r_on = 1e3;        // contact resistance (Ω)
  double g_off = 1e-15;     // open-contact leakage conductance (S)
  double tau_mech = 2e-9;   // mechanical traversal time (s)
  double gate_leak_g = 0.0; // optional explicit G–B leakage (S)
  // Actuation responds to |V_GB| (electrostatic force is polarity-blind).
  bool bipolar_actuation = true;
  // Pull-in instability point: inside the hysteresis window the beam
  // continues toward contact only if it has already travelled past this
  // fraction of the gap; otherwise the spring wins and it returns to rest.
  // 1/3 of the gap is the classical electrostatic pull-in limit. This is
  // what makes the cell immune to sub-τ_mech coupling spikes on the gate
  // (e.g. the wordline edge bootstrapping the storage node): a glitch can
  // start the beam moving, but cannot commit it.
  double z_critical = 1.0 / 3.0;
};

class NemRelay final : public Device {
 public:
  NemRelay(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
           NemRelayParams params = {});

  void stamp(Stamper& s, const StampContext& ctx) override;
  void commit(const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;
  double max_dt_hint() const override;
  double event_function(const StampContext& ctx) const override;
  double power(const StampContext& ctx) const override;

  // Forces the mechanical state (used to establish stored data before an
  // experiment). Also snaps the gate charge to match a given V_GB.
  void set_state(bool closed, double v_gb = 0.0);

  // Replay: drop the contact-arrival telemetry only. Mechanical position
  // and gate charge are primary state (re-seeded via set_state by the
  // transaction binder); fault pins (stuck_) persist on purpose.
  void reset_state() override {
    t_closed_ = -1.0;
    t_opened_ = -1.0;
  }

  // --- Fault-injection / degradation hooks (see fault/FaultInjector and
  // lifetime/Degradation) ---
  // Welds the beam: stuck-closed models contact stiction/welding, stuck-
  // open a fractured beam. The mechanical state is pinned — actuation,
  // arrival events, and in-flight dt hints are disabled — while the gate
  // capacitance keeps the pinned position's value and the charge companion
  // continues to conserve charge.
  void force_stuck(bool closed);
  bool stuck() const noexcept { return stuck_; }
  // Contact-resistance drift (cycling wear): replaces r_on. Clamped to
  // [kROnMin, kROnMax] so multi-year wear integration saturates at a
  // physical bound instead of walking the contact negative or into a
  // better-than-metal value.
  void set_contact_resistance(double r_on);
  // Gate–body leakage (retention loss, clamped to [0, kLeakMax]) and
  // open-contact leakage.
  void set_gate_leakage(double g);
  void set_off_leakage(double g);
  // Dielectric-charging pull-in drift: shifts V_PI by dv (negative =
  // trapped charge assists actuation, the OSR-threatening direction).
  // Clamped so the hysteresis window stays open (V_PI ≥ V_PO + kWindowMin
  // — an inverted window is the ERC-visible value.hysteresis-inverted
  // defect, not a state aging may reach) and so the beam stays actuatable
  // in principle (V_PI ≤ kVpiMax).
  void shift_pull_in(double dv);

  // Physical saturation bounds for the degradation hooks.
  static constexpr double kROnMin = 1.0;      // Ω: ideal metal contact
  static constexpr double kROnMax = 1e9;      // Ω: contact effectively open
  static constexpr double kLeakMax = 1e-6;    // S: gate dielectric shorted
  static constexpr double kWindowMin = 0.02;  // V: minimum hysteresis window
  static constexpr double kVpiMax = 1.5;      // V: beyond any on-chip drive

  bool contact() const noexcept { return position_ >= 1.0; }
  double position() const noexcept { return position_; }
  // Direction the beam is currently headed given the last committed
  // voltage and position (true = toward contact).
  bool heading_closed() const noexcept { return target_closed_; }
  // Simulation time at which the beam last reached full contact / full
  // release (write-latency telemetry); negative if it never happened.
  double t_contact_closed() const noexcept { return t_closed_; }
  double t_contact_opened() const noexcept { return t_opened_; }
  bool actuated_target() const noexcept { return target_closed_; }
  double gate_charge() const noexcept { return q_gb_; }
  double gate_capacitance() const noexcept;

  const NemRelayParams& params() const noexcept { return params_; }

 private:
  double effective_vgb(double v_gb) const;

  // One step of the hysteretic actuation law as a pure function of the
  // committed position and the step's |V_GB| endpoints: the latched target
  // and the signed time the beam is driven (+ toward contact). commit()
  // applies it; event_function() projects it to report arrival surfaces
  // without mutating state.
  struct MechDrive {
    bool target_closed;
    double drive_time;
  };
  MechDrive drive_for(double v_now_eff, double v_before_eff, double dt) const;

  NodeId d_, g_, s_, b_;
  NemRelayParams params_;

  double position_ = 0.0;       // z ∈ [0,1]; 1 = contact closed
  bool target_closed_ = false;  // latched hysteresis target
  bool stuck_ = false;          // fault: mechanical state pinned
  double q_gb_ = 0.0;           // charge on the gate-body capacitance
  double t_closed_ = -1.0;
  double t_opened_ = -1.0;
};

}  // namespace nemtcam::devices
