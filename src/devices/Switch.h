// Ideal externally-controlled switch (testing and idealized peripherals).
#pragma once

#include "spice/Device.h"
#include "spice/Stamper.h"

namespace nemtcam::devices {

using spice::Device;
using spice::NodeId;
using spice::StampContext;
using spice::Stamper;

class Switch final : public Device {
 public:
  Switch(std::string name, NodeId a, NodeId b, double r_on = 1.0,
         double r_off = 1e12, bool closed = false);

  void stamp(Stamper& s, const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;
  double power(const StampContext& ctx) const override;

  bool closed() const noexcept { return closed_; }
  double r_on() const noexcept { return r_on_; }
  double r_off() const noexcept { return r_off_; }
  void set_closed(bool closed) noexcept { closed_ = closed; }

 private:
  NodeId a_, b_;
  double r_on_, r_off_;
  bool closed_;
};

}  // namespace nemtcam::devices
