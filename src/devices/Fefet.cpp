#include "devices/Fefet.h"

#include <algorithm>

#include "devices/Passive.h"

namespace nemtcam::devices {

Fefet::Fefet(std::string name, NodeId d, NodeId g, NodeId s, FefetParams params)
    : Device(std::move(name)), d_(d), g_(g), s_(s), params_(params) {
  NEMTCAM_EXPECT(params_.vth_low < params_.vth_high);
  NEMTCAM_EXPECT(params_.v_coercive < params_.v_write);
  NEMTCAM_EXPECT(params_.t_write > 0.0);
}

double Fefet::vth_eff() const noexcept {
  const double mid = 0.5 * (params_.vth_low + params_.vth_high);
  const double half_span = 0.5 * (params_.vth_high - params_.vth_low);
  return mid - p_ * half_span;
}

void Fefet::stamp(Stamper& s, const StampContext& ctx) {
  const double vg = ctx.v(g_);
  const double vd = ctx.v(d_);
  const double vs = ctx.v(s_);
  const MosEval e = ekv_eval(params_.fet, vth_eff(), vg, vd, vs);

  s.vccs(d_, s_, g_, spice::kGround, e.g_vg);
  s.vccs(d_, s_, d_, spice::kGround, e.g_vd);
  s.vccs(d_, s_, s_, spice::kGround, e.g_vs);
  s.current(d_, s_, e.ids - (e.g_vg * vg + e.g_vd * vd + e.g_vs * vs));

  // Ferroelectric gate stack plus the FET's own parasitics.
  stamp_linear_cap(s, ctx, g_, s_, params_.c_fe + params_.fet.cgs);
  stamp_linear_cap(s, ctx, g_, d_, params_.fet.cgd);
  stamp_linear_cap(s, ctx, d_, spice::kGround, params_.fet.cdb);
  stamp_linear_cap(s, ctx, s_, spice::kGround, params_.fet.csb);
}

void Fefet::commit(const StampContext& ctx) {
  const double vgs = ctx.v(g_) - ctx.v(s_);
  const double dt = ctx.dt();
  const double vc = params_.v_coercive;
  const double p_before = p_;
  if (vgs > vc) {
    const double rate = (vgs - vc) / (params_.v_write - vc);
    p_ += rate * dt / params_.t_write * 2.0;  // full swing is 2 (−1 → +1)
  } else if (vgs < -vc) {
    const double rate = (-vgs - vc) / (params_.v_write - vc);
    p_ -= rate * dt / params_.t_write * 2.0;
  }
  p_ = std::clamp(p_, -1.0, 1.0);
  if (p_before < 0.9 && p_ >= 0.9) t_program_ = ctx.t();
  if (p_before > -0.9 && p_ <= -0.9) t_erase_ = ctx.t();
}

double Fefet::max_dt_hint() const { return params_.t_write / 200.0; }

double Fefet::power(const StampContext& ctx) const {
  const MosEval e =
      ekv_eval(params_.fet, vth_eff(), ctx.v(g_), ctx.v(d_), ctx.v(s_));
  return e.ids * (ctx.v(d_) - ctx.v(s_));
}

void Fefet::set_polarization(double p) {
  NEMTCAM_EXPECT(p >= -1.0 && p <= 1.0);
  p_ = p;
}

}  // namespace nemtcam::devices
