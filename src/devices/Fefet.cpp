#include "devices/Fefet.h"

#include <algorithm>
#include <limits>

namespace nemtcam::devices {

Fefet::Fefet(std::string name, NodeId d, NodeId g, NodeId s, FefetParams params)
    : Device(std::move(name)), d_(d), g_(g), s_(s), params_(params),
      cgfe_c_(params.c_fe + params.fet.cgs), cgd_c_(params.fet.cgd),
      cdb_c_(params.fet.cdb), csb_c_(params.fet.csb) {
  NEMTCAM_EXPECT(params_.vth_low < params_.vth_high);
  NEMTCAM_EXPECT(params_.v_coercive < params_.v_write);
  NEMTCAM_EXPECT(params_.t_write > 0.0);
}

double Fefet::vth_eff() const noexcept {
  const double mid = 0.5 * (params_.vth_low + params_.vth_high);
  const double half_span = 0.5 * (params_.vth_high - params_.vth_low);
  return mid - p_ * half_span;
}

void Fefet::stamp(Stamper& s, const StampContext& ctx) {
  const double vg = ctx.v(g_);
  const double vd = ctx.v(d_);
  const double vs = ctx.v(s_);
  const MosEval e = ekv_eval(params_.fet, vth_eff(), vg, vd, vs);

  s.vccs(d_, s_, g_, spice::kGround, e.g_vg);
  s.vccs(d_, s_, d_, spice::kGround, e.g_vd);
  s.vccs(d_, s_, s_, spice::kGround, e.g_vs);
  s.current(d_, s_, e.ids - (e.g_vg * vg + e.g_vd * vd + e.g_vs * vs));

  // Ferroelectric gate stack plus the FET's own parasitics.
  cgfe_c_.stamp(s, ctx, g_, s_);
  cgd_c_.stamp(s, ctx, g_, d_);
  cdb_c_.stamp(s, ctx, d_, spice::kGround);
  csb_c_.stamp(s, ctx, s_, spice::kGround);
}

void Fefet::commit(const StampContext& ctx) {
  const double vgs = ctx.v(g_) - ctx.v(s_);
  const double dt = ctx.dt();
  const double vc = params_.v_coercive;
  const double p_before = p_;
  if (vgs > vc) {
    const double rate = (vgs - vc) / (params_.v_write - vc);
    p_ += rate * dt / params_.t_write * 2.0;  // full swing is 2 (−1 → +1)
  } else if (vgs < -vc) {
    const double rate = (-vgs - vc) / (params_.v_write - vc);
    p_ -= rate * dt / params_.t_write * 2.0;
  }
  p_ = std::clamp(p_, -1.0, 1.0);
  moving_ = (vgs > vc && p_ < 1.0) || (vgs < -vc && p_ > -1.0);
  if (p_before < 0.9 && p_ >= 0.9) t_program_ = ctx.t();
  if (p_before > -0.9 && p_ <= -0.9) t_erase_ = ctx.t();

  cgfe_c_.commit(ctx, g_, s_);
  cgd_c_.commit(ctx, g_, d_);
  cdb_c_.commit(ctx, d_, spice::kGround);
  csb_c_.commit(ctx, s_, spice::kGround);
}

double Fefet::max_dt_hint() const {
  // Resolve polarization motion; an idle device leaves the step free — the
  // event function guarantees a step lands on the coercive-voltage crossing
  // that starts the motion.
  if (!moving_) return std::numeric_limits<double>::infinity();
  return params_.t_write / 200.0;
}

double Fefet::event_function(const StampContext& ctx) const {
  if (ctx.dc()) return std::numeric_limits<double>::infinity();
  // Armed surface is chosen from the step-start voltage and committed
  // state, so both ends of a step evaluate the same surface.
  const double vc = params_.v_coercive;
  const double vgs_prev = ctx.v_prev(g_) - ctx.v_prev(s_);
  const double vgs = ctx.v(g_) - ctx.v(s_);
  if (vgs_prev > vc && p_ < 1.0) {
    // Erase in progress: the event is polarization saturating at +1,
    // projected with this step's end-point rate.
    const double rate = std::max(vgs - vc, 0.0) / (params_.v_write - vc);
    return 1.0 - (p_ + rate * ctx.dt() / params_.t_write * 2.0);
  }
  if (vgs_prev < -vc && p_ > -1.0) {
    const double rate = std::max(-vgs - vc, 0.0) / (params_.v_write - vc);
    return (p_ - rate * ctx.dt() / params_.t_write * 2.0) + 1.0;
  }
  // Idle: the event is the gate drive crossing either coercive threshold.
  return std::min(vc - vgs, vgs + vc);
}

double Fefet::power(const StampContext& ctx) const {
  const MosEval e =
      ekv_eval(params_.fet, vth_eff(), ctx.v(g_), ctx.v(d_), ctx.v(s_));
  return e.ids * (ctx.v(d_) - ctx.v(s_));
}

void Fefet::set_polarization(double p) {
  NEMTCAM_EXPECT(p >= -1.0 && p <= 1.0);
  p_ = p;
}

void Fefet::set_memory_window(double vth_low, double vth_high) {
  params_.vth_low = vth_low;
  params_.vth_high = std::max(vth_high, vth_low + kWindowMin);
}


spice::DeviceTopology Fefet::topology() const {
  spice::DeviceTopology t{{{"d", d_}, {"g", g_}, {"s", s_}},
                          {{0, 2, spice::DcCoupling::Conductive},
                           {1, 0, spice::DcCoupling::Capacitive},
                           {1, 2, spice::DcCoupling::Capacitive}}};
  // Same macro-model as the MOSFET, at the polarization-dependent
  // threshold: the LVT state is a real switch, the HVT state reports a
  // huge r_on plus the above-rail off-leak — the 2FeFET matched-row droop.
  auto& ch = t.couplings[0];
  ch.r_on = ekv_switch_resistance(params_.fet, vth_eff());
  ch.g_off = ekv_off_leak(params_.fet, vth_eff());
  ch.ctrl = 1;
  ch.v_on = vth_eff();
  ch.active_low = params_.fet.type == MosType::Pmos;
  ch.v_gs_ref = kSummaryRail;
  ch.v_slope = params_.fet.n_slope * kThermalVoltage;
  t.couplings[1].c = params_.fet.cgd;
  t.couplings[2].c = params_.fet.cgs + params_.c_fe;
  t.terminals[0].c_ground = params_.fet.cdb;
  t.terminals[2].c_ground = params_.fet.csb;
  return t;
}

}  // namespace nemtcam::devices
