#include "devices/Inductor.h"

namespace nemtcam::devices {

Inductor::Inductor(std::string name, NodeId a, NodeId b, double henries)
    : Device(std::move(name)), a_(a), b_(b), henries_(henries) {
  NEMTCAM_EXPECT(henries_ > 0.0);
}

void Inductor::stamp(Stamper& s, const StampContext& ctx) {
  // BE companion: v − (L/dt)·i = −(L/dt)·i_prev; trapezoidal:
  // v − (2L/dt)·i = −(2L/dt)·i_prev − v_prev. In DC the reactive term
  // vanishes and the row enforces v_a = v_b (a short).
  if (ctx.dc()) {
    s.voltage_source(a_, b_, first_branch(), 0.0);
    return;
  }
  if (ctx.integrator() == spice::Integrator::Trapezoidal) {
    const double r_eq = 2.0 * henries_ / ctx.dt();
    const double v_prev = ctx.v_prev(a_) - ctx.v_prev(b_);
    s.voltage_source(a_, b_, first_branch(), -r_eq * i_prev_ - v_prev);
    s.branch_series_resistance(first_branch(), r_eq);
    return;
  }
  const double r_eq = henries_ / ctx.dt();
  s.voltage_source(a_, b_, first_branch(), -r_eq * i_prev_);
  s.branch_series_resistance(first_branch(), r_eq);
}

void Inductor::commit(const StampContext& ctx) {
  i_prev_ = ctx.branch_current(first_branch());
}


spice::DeviceTopology Inductor::topology() const {
  // A DC short: the branch equation pins v_a = v_b. r_on = 0 is the
  // honest summary; the STA engine clamps zero-resistance edges to a
  // floor conductance instead of dividing by zero.
  spice::DeviceTopology t{{{"a", a_}, {"b", b_}},
                          {{0, 1, spice::DcCoupling::Conductive}}};
  t.couplings[0].r_on = 0.0;
  return t;
}

}  // namespace nemtcam::devices
