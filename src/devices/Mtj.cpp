#include "devices/Mtj.h"

#include <algorithm>
#include <cmath>

namespace nemtcam::devices {

Mtj::Mtj(std::string name, NodeId top, NodeId bottom, MtjParams params)
    : Device(std::move(name)), top_(top), bottom_(bottom), params_(params) {
  NEMTCAM_EXPECT(params_.r_parallel > 0.0);
  NEMTCAM_EXPECT(params_.r_antiparallel > params_.r_parallel);
  NEMTCAM_EXPECT(params_.i_critical > 0.0 && params_.t_switch_ref > 0.0);
}

double Mtj::resistance() const noexcept {
  // Conductance interpolates between the two states.
  const double g_p = 1.0 / params_.r_parallel;
  const double g_ap = 1.0 / params_.r_antiparallel;
  return 1.0 / (g_ap + (g_p - g_ap) * m_);
}

void Mtj::stamp(Stamper& s, const StampContext&) {
  s.conductance(top_, bottom_, 1.0 / resistance());
}

void Mtj::commit(const StampContext& ctx) {
  const double v = ctx.v(top_) - ctx.v(bottom_);
  const double i = v / resistance();  // + : top → bottom → drives parallel
  const double overdrive = std::fabs(i) / params_.i_critical - 1.0;
  if (overdrive <= 0.0) return;
  const double m_before = m_;
  // dm/dt such that a full transition at 1.5×Ic takes t_switch_ref.
  const double rate = overdrive / (0.5 * params_.t_switch_ref);
  m_ += (i > 0.0 ? 1.0 : -1.0) * rate * ctx.dt();
  m_ = std::clamp(m_, 0.0, 1.0);
  if (m_before < 0.9 && m_ >= 0.9) t_par_ = ctx.t();
  if (m_before > 0.1 && m_ <= 0.1) t_ap_ = ctx.t();
}

double Mtj::max_dt_hint() const { return params_.t_switch_ref / 200.0; }

double Mtj::power(const StampContext& ctx) const {
  const double v = ctx.v(top_) - ctx.v(bottom_);
  return v * v / resistance();
}

void Mtj::set_state(double m) {
  NEMTCAM_EXPECT(m >= 0.0 && m <= 1.0);
  m_ = m;
}


spice::DeviceTopology Mtj::topology() const {
  spice::DeviceTopology t{{{"top", top_}, {"bottom", bottom_}},
                          {{0, 1, spice::DcCoupling::Conductive}}};
  // State-dependent tunnel resistance: the STA engine sees the committed
  // magnetization's value, exactly as the next transient would stamp it.
  t.couplings[0].r_on = resistance();
  return t;
}

}  // namespace nemtcam::devices
