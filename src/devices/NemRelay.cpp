#include "devices/NemRelay.h"

#include <algorithm>
#include <cmath>

namespace nemtcam::devices {

NemRelay::NemRelay(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
                   NemRelayParams params)
    : Device(std::move(name)), d_(d), g_(g), s_(s), b_(b), params_(params) {
  // An inverted hysteresis window (V_PO >= V_PI) is a design-rule error,
  // not a contract violation: the ERC value pass reports it by name
  // (value.hysteresis-inverted) before any solve. The remaining checks
  // guard quantities the mechanics divide by.
  NEMTCAM_EXPECT(params_.c_on >= params_.c_off && params_.c_off > 0.0);
  NEMTCAM_EXPECT(params_.r_on > 0.0 && params_.g_off >= 0.0);
  NEMTCAM_EXPECT(params_.tau_mech > 0.0);
}

double NemRelay::gate_capacitance() const noexcept {
  return params_.c_off + (params_.c_on - params_.c_off) * position_;
}

double NemRelay::effective_vgb(double v_gb) const {
  return params_.bipolar_actuation ? std::fabs(v_gb) : v_gb;
}

void NemRelay::stamp(Stamper& s, const StampContext& ctx) {
  // Drain–source contact.
  const double g_ds = contact() ? 1.0 / params_.r_on : params_.g_off;
  s.conductance(d_, s_, g_ds);

  // Gate–body leakage, if configured.
  if (params_.gate_leak_g > 0.0) s.conductance(g_, b_, params_.gate_leak_g);

  if (ctx.dc()) return;

  // Charge-based companion for the position-dependent gate capacitance:
  //   i = (C(z)·v_gb − q_prev)/dt
  // where q_prev is the committed charge. When z changed last commit, the
  // mismatch between C(z_new)·v and q_prev drives the physically correct
  // redistribution current (or, on a floating node, a voltage change at
  // constant charge).
  const double c = gate_capacitance();
  const double g = c / ctx.dt();
  const double v_gb = ctx.v(g_) - ctx.v(b_);
  const double i = (c * v_gb - q_gb_) / ctx.dt();
  s.nonlinear_current(g_, b_, i, g, v_gb);
}

NemRelay::MechDrive NemRelay::drive_for(double v_now_eff, double v_before_eff,
                                        double dt) const {
  // Hysteretic target update with sub-step crossing interpolation: the
  // portion of the step spent past a threshold drives the beam.
  const auto crossing_fraction = [&](double level, bool rising) -> double {
    // Fraction of the step during which the signal is beyond `level`.
    const bool before =
        rising ? (v_before_eff >= level) : (v_before_eff <= level);
    const bool after = rising ? (v_now_eff >= level) : (v_now_eff <= level);
    if (before && after) return 1.0;
    if (!before && !after) return 0.0;
    const double span = v_now_eff - v_before_eff;
    if (span == 0.0) return after ? 1.0 : 0.0;
    const double frac_at_cross = (level - v_before_eff) / span;
    return after ? (1.0 - frac_at_cross) : frac_at_cross;
  };

  MechDrive md;  // drive_time signed: + toward closed, − toward open
  const double f_in = crossing_fraction(params_.v_pi, /*rising=*/true);
  const double f_out = crossing_fraction(params_.v_po, /*rising=*/false);
  if (f_in > 0.0) {
    md.target_closed = true;
    md.drive_time = f_in * dt;
  } else if (f_out > 0.0) {
    md.target_closed = false;
    md.drive_time = -f_out * dt;
  } else {
    // Inside the hysteresis window a beam heading toward contact holds its
    // course only past the pull-in instability point: beyond z_critical the
    // electrostatic force continues to (or stays at) contact, before it the
    // spring returns it to rest — a short actuation glitch cannot flip the
    // cell. A beam that has begun release keeps going regardless: once the
    // contact lets go the spring dominates until full release. (The
    // shrinking C_GB pushes a floating gate's voltage back above V_PO as
    // the beam opens — re-arming the electrostatic hold here would chatter
    // the beam at the release point forever.)
    md.target_closed = target_closed_ && position_ >= params_.z_critical;
    md.drive_time = md.target_closed ? dt : -dt;
  }
  return md;
}

void NemRelay::commit(const StampContext& ctx) {
  if (stuck_) {
    // Pinned beam: the gate charge still tracks the solved voltage (the
    // capacitor is intact), but no mechanics.
    q_gb_ = gate_capacitance() * (ctx.v(g_) - ctx.v(b_));
    return;
  }
  const double v_now = effective_vgb(ctx.v(g_) - ctx.v(b_));
  const double v_before = effective_vgb(ctx.v_prev(g_) - ctx.v_prev(b_));

  // Update the gate charge to be consistent with the capacitance used in
  // this step's stamp (charge the solved current actually delivered).
  q_gb_ = gate_capacitance() * (ctx.v(g_) - ctx.v(b_));

  const MechDrive md = drive_for(v_now, v_before, ctx.dt());
  target_closed_ = md.target_closed;

  const double pos_before = position_;
  position_ += md.drive_time / params_.tau_mech;
  position_ = std::clamp(position_, 0.0, 1.0);
  if (pos_before < 1.0 && position_ >= 1.0) t_closed_ = ctx.t();
  if (pos_before > 0.0 && position_ <= 0.0) t_opened_ = ctx.t();
}

double NemRelay::event_function(const StampContext& ctx) const {
  if (ctx.dc() || stuck_) return std::numeric_limits<double>::infinity();
  const double v_now = effective_vgb(ctx.v(g_) - ctx.v(b_));
  // Held closed: the contact breaks when |V_GB| falls through pull-out.
  if (position_ >= 1.0 && target_closed_) return v_now - params_.v_po;
  // At rest open: traversal starts when |V_GB| reaches pull-in.
  if (position_ <= 0.0 && !target_closed_) return params_.v_pi - v_now;
  // In flight: the event is arrival (contact at z = 1 when closing, full
  // release at z = 0 when opening). Project the commit this step would
  // apply; the unclamped position's overshoot is the signed distance.
  const double v_before = effective_vgb(ctx.v_prev(g_) - ctx.v_prev(b_));
  const MechDrive md = drive_for(v_now, v_before, ctx.dt());
  const double z = position_ + md.drive_time / params_.tau_mech;
  return md.target_closed ? 1.0 - z : z;
}

double NemRelay::max_dt_hint() const {
  // Resolve the traversal while the beam is in flight toward a different
  // state; otherwise leave the step free.
  const bool at_rest = stuck_ ||
                       (position_ <= 0.0 && !target_closed_) ||
                       (position_ >= 1.0 && target_closed_);
  if (at_rest) return std::numeric_limits<double>::infinity();
  return params_.tau_mech / 50.0;
}

double NemRelay::power(const StampContext& ctx) const {
  const double v_ds = ctx.v(d_) - ctx.v(s_);
  const double g_ds = contact() ? 1.0 / params_.r_on : params_.g_off;
  return v_ds * v_ds * g_ds;
}

void NemRelay::set_state(bool closed, double v_gb) {
  if (stuck_) return;  // a welded/broken beam cannot be re-seeded
  position_ = closed ? 1.0 : 0.0;
  target_closed_ = closed;
  q_gb_ = gate_capacitance() * v_gb;
}

void NemRelay::force_stuck(bool closed) {
  stuck_ = true;
  position_ = closed ? 1.0 : 0.0;
  target_closed_ = closed;
  // The beam broke in place: the floating-gate charge is untouched (the
  // capacitance change redistributes it on the next solve).
}

void NemRelay::set_contact_resistance(double r_on) {
  // Degradation hook: saturate at the physical bounds rather than assert —
  // a lifetime engine integrating wear over years must be free to push the
  // drift law past its validity range without tripping the process.
  params_.r_on = std::clamp(r_on, kROnMin, kROnMax);
}

void NemRelay::set_gate_leakage(double g) {
  params_.gate_leak_g = std::clamp(g, 0.0, kLeakMax);
}

void NemRelay::shift_pull_in(double dv) {
  params_.v_pi =
      std::clamp(params_.v_pi + dv, params_.v_po + kWindowMin, kVpiMax);
}

void NemRelay::set_off_leakage(double g) {
  NEMTCAM_EXPECT(g >= 0.0);
  params_.g_off = g;
}


spice::DeviceTopology NemRelay::topology() const {
  // The open contact still stamps its g_off leakage, so drain–source is
  // structurally conductive in either mechanical state. The gate–body
  // actuation capacitor opens at DC unless an explicit leakage is set.
  spice::DeviceTopology t{{{"d", d_}, {"g", g_}, {"s", s_}, {"b", b_}},
          {{0, 2, spice::DcCoupling::Conductive},
           {1, 3,
            params_.gate_leak_g > 0.0 ? spice::DcCoupling::Conductive
                                      : spice::DcCoupling::Capacitive}}};
  // Contact: a static switch over an STA horizon — the mechanical
  // traversal (τ_mech = 2 ns) dwarfs an ML discharge, so the committed
  // position decides conduction, not the gate level.
  auto& contact_edge = t.couplings[0];
  contact_edge.r_on = params_.r_on;
  contact_edge.g_off = params_.g_off;
  contact_edge.on = contact();
  // Actuation gap: position-dependent capacitance; a leaky dielectric
  // turns the edge into a resistor of 1/gate_leak_g.
  auto& gate_edge = t.couplings[1];
  gate_edge.c = gate_capacitance();
  if (params_.gate_leak_g > 0.0) gate_edge.r_on = 1.0 / params_.gate_leak_g;
  // A closed relay's floating gate holds the stored datum: if its level
  // decays below V_PO the beam releases. This is the paper's one-shot-
  // refresh retention hazard, declared here so the sta.refresh-window
  // rule can bound it without knowing anything relay-specific.
  if (contact() && !stuck_)
    t.terminals[1].v_hold = params_.v_po;
  return t;
}

}  // namespace nemtcam::devices
