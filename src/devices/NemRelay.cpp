#include "devices/NemRelay.h"

#include <algorithm>
#include <cmath>

namespace nemtcam::devices {

NemRelay::NemRelay(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
                   NemRelayParams params)
    : Device(std::move(name)), d_(d), g_(g), s_(s), b_(b), params_(params) {
  NEMTCAM_EXPECT(params_.v_po < params_.v_pi);
  NEMTCAM_EXPECT(params_.c_on >= params_.c_off && params_.c_off > 0.0);
  NEMTCAM_EXPECT(params_.r_on > 0.0 && params_.g_off >= 0.0);
  NEMTCAM_EXPECT(params_.tau_mech > 0.0);
}

double NemRelay::gate_capacitance() const noexcept {
  return params_.c_off + (params_.c_on - params_.c_off) * position_;
}

double NemRelay::effective_vgb(double v_gb) const {
  return params_.bipolar_actuation ? std::fabs(v_gb) : v_gb;
}

void NemRelay::stamp(Stamper& s, const StampContext& ctx) {
  // Drain–source contact.
  const double g_ds = contact() ? 1.0 / params_.r_on : params_.g_off;
  s.conductance(d_, s_, g_ds);

  // Gate–body leakage, if configured.
  if (params_.gate_leak_g > 0.0) s.conductance(g_, b_, params_.gate_leak_g);

  if (ctx.dc()) return;

  // Charge-based companion for the position-dependent gate capacitance:
  //   i = (C(z)·v_gb − q_prev)/dt
  // where q_prev is the committed charge. When z changed last commit, the
  // mismatch between C(z_new)·v and q_prev drives the physically correct
  // redistribution current (or, on a floating node, a voltage change at
  // constant charge).
  const double c = gate_capacitance();
  const double g = c / ctx.dt();
  const double v_gb = ctx.v(g_) - ctx.v(b_);
  const double i = (c * v_gb - q_gb_) / ctx.dt();
  s.nonlinear_current(g_, b_, i, g, v_gb);
}

void NemRelay::commit(const StampContext& ctx) {
  const double v_now = effective_vgb(ctx.v(g_) - ctx.v(b_));
  const double v_before = effective_vgb(ctx.v_prev(g_) - ctx.v_prev(b_));
  const double dt = ctx.dt();

  // Update the gate charge to be consistent with the capacitance used in
  // this step's stamp (charge the solved current actually delivered).
  q_gb_ = gate_capacitance() * (ctx.v(g_) - ctx.v(b_));

  // Hysteretic target update with sub-step crossing interpolation: the
  // portion of the step spent past a threshold drives the beam.
  auto crossing_fraction = [&](double level, bool rising) -> double {
    // Fraction of the step during which the signal is beyond `level`.
    const bool before = rising ? (v_before >= level) : (v_before <= level);
    const bool after = rising ? (v_now >= level) : (v_now <= level);
    if (before && after) return 1.0;
    if (!before && !after) return 0.0;
    const double span = v_now - v_before;
    if (span == 0.0) return after ? 1.0 : 0.0;
    const double frac_at_cross = (level - v_before) / span;
    return after ? (1.0 - frac_at_cross) : frac_at_cross;
  };

  double drive_time = 0.0;  // signed: + toward closed, − toward open
  const double f_in = crossing_fraction(params_.v_pi, /*rising=*/true);
  const double f_out = crossing_fraction(params_.v_po, /*rising=*/false);
  if (f_in > 0.0) {
    target_closed_ = true;
    drive_time = f_in * dt;
  } else if (f_out > 0.0) {
    target_closed_ = false;
    drive_time = -f_out * dt;
  } else {
    // Inside the hysteresis window the electrostatic force holds the beam
    // only past the pull-in instability point: beyond z_critical it
    // continues to (or stays at) contact, before it the spring returns it
    // to rest. A short actuation glitch therefore cannot flip the cell.
    target_closed_ = position_ >= params_.z_critical;
    drive_time = target_closed_ ? dt : -dt;
  }

  const double pos_before = position_;
  position_ += drive_time / params_.tau_mech;
  position_ = std::clamp(position_, 0.0, 1.0);
  if (pos_before < 1.0 && position_ >= 1.0) t_closed_ = ctx.t();
  if (pos_before > 0.0 && position_ <= 0.0) t_opened_ = ctx.t();
}

double NemRelay::max_dt_hint() const {
  // Resolve the traversal while the beam is in flight toward a different
  // state; otherwise leave the step free.
  const bool at_rest = (position_ <= 0.0 && !target_closed_) ||
                       (position_ >= 1.0 && target_closed_);
  if (at_rest) return std::numeric_limits<double>::infinity();
  return params_.tau_mech / 50.0;
}

double NemRelay::power(const StampContext& ctx) const {
  const double v_ds = ctx.v(d_) - ctx.v(s_);
  const double g_ds = contact() ? 1.0 / params_.r_on : params_.g_off;
  return v_ds * v_ds * g_ds;
}

void NemRelay::set_state(bool closed, double v_gb) {
  position_ = closed ? 1.0 : 0.0;
  target_closed_ = closed;
  q_gb_ = gate_capacitance() * v_gb;
}

}  // namespace nemtcam::devices
