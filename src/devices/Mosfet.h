// Compact MOSFET model (simplified EKV) with PTM-45nm-LP-like defaults.
//
// The charge-sheet interpolation
//   Ids = Is·[F(x_f) − F(x_r)],  F(x) = ln(1 + e^{x/2})²,
//   x_f = (V_GS − V_th)/(n·v_T),  x_r = (V_GD − V_th)/(n·v_T),
//   Is  = 2·n·v_T²·kp
// is smooth across subthreshold / triode / saturation (good Newton
// behaviour), symmetric in drain/source (pass-gate correct), and gives a
// physical exponential subthreshold leak — which is what sets the dynamic
// TCAM's retention time, so it matters here.
#pragma once

#include "devices/Passive.h"
#include "spice/Device.h"
#include "spice/Stamper.h"

namespace nemtcam::devices {

using spice::Device;
using spice::NodeId;
using spice::StampContext;
using spice::Stamper;

enum class MosType { Nmos, Pmos };

struct MosfetParams {
  MosType type = MosType::Nmos;
  double vth = 0.46;       // |threshold| (V); PTM 45 nm LP-like
  double kp = 3.0e-4;      // transconductance µCox·W/L (A/V²)
  double n_slope = 1.35;   // subthreshold slope factor
  double cgs = 0.0;        // gate-source capacitance (F)
  double cgd = 0.0;        // gate-drain capacitance (F)
  double cdb = 0.0;        // drain-bulk junction capacitance to ground (F)
  double csb = 0.0;        // source-bulk junction capacitance to ground (F)
  // Opt-in accuracy knob for LTE-controlled transients: report the V_GS =
  // V_th conduction edge through Device::event_function so the engine lands
  // a step on turn-off crossings. Off by default — the EKV interpolation is
  // smooth, so most circuits don't need the extra solves.
  bool event_on_vth = false;

  static MosfetParams nmos_lp(double width_scale = 1.0);
  static MosfetParams pmos_lp(double width_scale = 1.0);
};

// Evaluated drain current and partial derivatives (NMOS sign convention:
// current flows D→S when positive).
struct MosEval {
  double ids = 0.0;
  double g_vg = 0.0;  // ∂Ids/∂v_G
  double g_vd = 0.0;  // ∂Ids/∂v_D
  double g_vs = 0.0;  // ∂Ids/∂v_S
};

// Pure model evaluation given terminal voltages (shared with Fefet, which
// substitutes a polarization-dependent threshold).
MosEval ekv_eval(const MosfetParams& p, double vth_eff, double v_g, double v_d,
                 double v_s);

// Small-signal summary helpers behind Device::topology() (shared with
// Fefet): effective switch resistance of the fully driven channel and
// worst-case off-state leak conductance, both chord values at the
// library's nominal 1 V rail (see DeviceTopology::Coupling).
// The rail the summaries are referenced to; also published as each
// channel coupling's v_gs_ref so the STA engine can derate for partial
// gate drive.
inline constexpr double kSummaryRail = 1.0;
// v_T at 300 K, shared with the Fefet and the coupling summary's
// subthreshold-slope voltage (v_slope = n·v_T).
inline constexpr double kThermalVoltage = 0.02585;
double ekv_switch_resistance(const MosfetParams& p, double vth_eff);
double ekv_off_leak(const MosfetParams& p, double vth_eff);

class Mosfet final : public Device {
 public:
  Mosfet(std::string name, NodeId d, NodeId g, NodeId s, MosfetParams params);

  void stamp(Stamper& s, const StampContext& ctx) override;
  void commit(const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;
  double event_function(const StampContext& ctx) const override;
  double power(const StampContext& ctx) const override;

  const MosfetParams& params() const noexcept { return params_; }
  // Drain current at the given context (telemetry / tests).
  double ids(const StampContext& ctx) const;

  // Aging hook: shift |V_th| by delta volts (BTI drift). Clamped to
  // [kVthMin, kVthMax]: an extreme negative excursion degrades to
  // always-on rather than a nonsensical negative threshold, and
  // multi-year BTI accumulation saturates at a cannot-turn-on ceiling
  // instead of growing without bound.
  void shift_vth(double delta_v) {
    const double vth = params_.vth + delta_v;
    params_.vth = vth < kVthMin ? kVthMin : (vth > kVthMax ? kVthMax : vth);
  }

  // Fault-injection hook: set |V_th| to the design-nominal value plus an
  // absolute outlier offset, same clamp as shift_vth. Absolute so that
  // re-applying the same fault is idempotent — the lifetime engine
  // re-injects a row's fault list into its persistent measurement
  // template on every circuit check.
  void set_vth_outlier(double offset_v) {
    const double vth = vth_nominal_ + offset_v;
    params_.vth = vth < kVthMin ? kVthMin : (vth > kVthMax ? kVthMax : vth);
  }

  static constexpr double kVthMin = 0.01;  // V: effectively always-on
  static constexpr double kVthMax = 1.5;   // V: off at any on-chip gate drive

  void reset_state() override {
    cgs_c_.reset();
    cgd_c_.reset();
    cdb_c_.reset();
    csb_c_.reset();
  }

 private:
  NodeId d_, g_, s_;
  MosfetParams params_;
  const double vth_nominal_ = params_.vth;  // pre-aging |V_th| for outliers
  CapCompanion cgs_c_, cgd_c_, cdb_c_, csb_c_;
  // topology() summary cache: ekv_switch_resistance / ekv_off_leak are
  // pure in (params, |V_th|) but cost transcendental evaluations, and the
  // STA engine re-summarizes every device per analysis. |V_th| is the only
  // parameter the aging / fault hooks mutate, so it is the cache key.
  mutable double sum_vth_ = -1.0;
  mutable double sum_r_on_ = 0.0;
  mutable double sum_g_off_ = 0.0;
};

}  // namespace nemtcam::devices
