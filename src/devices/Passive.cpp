#include "devices/Passive.h"

namespace nemtcam::devices {

// A non-positive resistance is not rejected here: the ERC value pass
// (erc/Rules.cpp, value.nonpositive-r) reports it with the device name
// before any solve, which beats an anonymous precondition throw mid-parse.
Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms)
    : Device(std::move(name)), a_(a), b_(b), ohms_(ohms) {}

void Resistor::stamp(Stamper& s, const StampContext&) {
  s.conductance(a_, b_, 1.0 / ohms_);
}

double Resistor::power(const StampContext& ctx) const {
  const double v = ctx.v(a_) - ctx.v(b_);
  return v * v / ohms_;
}

void Resistor::set_resistance(double ohms) {
  NEMTCAM_EXPECT(ohms > 0.0);
  ohms_ = ohms;
}

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads)
    : Device(std::move(name)), a_(a), b_(b), farads_(farads) {
  NEMTCAM_EXPECT(farads_ >= 0.0);
}

double Capacitor::current_at(const StampContext& ctx) const {
  const double v_ab = ctx.v(a_) - ctx.v(b_);
  const double v_ab_prev = ctx.v_prev(a_) - ctx.v_prev(b_);
  if (ctx.integrator() == spice::Integrator::Trapezoidal)
    return 2.0 * farads_ / ctx.dt() * (v_ab - v_ab_prev) - i_prev_;
  return farads_ / ctx.dt() * (v_ab - v_ab_prev);
}

void Capacitor::stamp(Stamper& s, const StampContext& ctx) {
  if (ctx.dc() || farads_ == 0.0) return;
  const bool trap = ctx.integrator() == spice::Integrator::Trapezoidal;
  const double g = (trap ? 2.0 : 1.0) * farads_ / ctx.dt();
  const double v_ab = ctx.v(a_) - ctx.v(b_);
  s.nonlinear_current(a_, b_, current_at(ctx), g, v_ab);
}

void Capacitor::commit(const StampContext& ctx) {
  if (ctx.dc() || farads_ == 0.0) return;
  i_prev_ = current_at(ctx);
}

double Capacitor::stored_energy(const StampContext& ctx) const {
  const double v = ctx.v(a_) - ctx.v(b_);
  return 0.5 * farads_ * v * v;
}

double CapCompanion::current_at(const StampContext& ctx, NodeId a,
                                NodeId b) const {
  const double v_ab = ctx.v(a) - ctx.v(b);
  const double v_ab_prev = ctx.v_prev(a) - ctx.v_prev(b);
  if (ctx.integrator() == spice::Integrator::Trapezoidal)
    return 2.0 * farads_ / ctx.dt() * (v_ab - v_ab_prev) - i_prev_;
  return farads_ / ctx.dt() * (v_ab - v_ab_prev);
}

void CapCompanion::stamp(Stamper& s, const StampContext& ctx, NodeId a,
                         NodeId b) const {
  if (ctx.dc() || farads_ == 0.0) return;  // open in DC
  const bool trap = ctx.integrator() == spice::Integrator::Trapezoidal;
  const double g = (trap ? 2.0 : 1.0) * farads_ / ctx.dt();
  const double v_ab = ctx.v(a) - ctx.v(b);
  s.nonlinear_current(a, b, current_at(ctx, a, b), g, v_ab);
}

void CapCompanion::commit(const StampContext& ctx, NodeId a, NodeId b) {
  if (ctx.dc() || farads_ == 0.0) return;
  i_prev_ = current_at(ctx, a, b);
}


spice::DeviceTopology Resistor::topology() const {
  spice::DeviceTopology t{{{"a", a_}, {"b", b_}},
                          {{0, 1, spice::DcCoupling::Conductive}}};
  t.couplings[0].r_on = ohms_;
  return t;
}

spice::DeviceTopology Capacitor::topology() const {
  spice::DeviceTopology t{{{"a", a_}, {"b", b_}},
                          {{0, 1, spice::DcCoupling::Capacitive}}};
  t.couplings[0].c = farads_;
  return t;
}

}  // namespace nemtcam::devices
