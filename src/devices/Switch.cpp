#include "devices/Switch.h"

namespace nemtcam::devices {

Switch::Switch(std::string name, NodeId a, NodeId b, double r_on, double r_off,
               bool closed)
    : Device(std::move(name)), a_(a), b_(b), r_on_(r_on), r_off_(r_off),
      closed_(closed) {
  NEMTCAM_EXPECT(r_on > 0.0 && r_off > r_on);
}

void Switch::stamp(Stamper& s, const StampContext&) {
  s.conductance(a_, b_, closed_ ? 1.0 / r_on_ : 1.0 / r_off_);
}

double Switch::power(const StampContext& ctx) const {
  const double v = ctx.v(a_) - ctx.v(b_);
  return v * v * (closed_ ? 1.0 / r_on_ : 1.0 / r_off_);
}


spice::DeviceTopology Switch::topology() const {
  // r_off is finite, so the pair is conductive in either state.
  spice::DeviceTopology t{{{"a", a_}, {"b", b_}},
                          {{0, 1, spice::DcCoupling::Conductive}}};
  t.couplings[0].r_on = r_on_;
  t.couplings[0].g_off = 1.0 / r_off_;
  t.couplings[0].on = closed_;
  return t;
}

}  // namespace nemtcam::devices
