#include "devices/Mosfet.h"

#include <cmath>

#include "devices/Passive.h"

namespace nemtcam::devices {

namespace {

// softplus(x) = ln(1 + e^x) with overflow guard; also returns sigmoid(x)
// (its derivative).
struct Softplus {
  double value;
  double derivative;
};

Softplus softplus(double x) {
  if (x > 40.0) return {x, 1.0};
  if (x < -40.0) {
    const double e = std::exp(x);
    return {e, e};
  }
  const double e = std::exp(x);
  return {std::log1p(e), e / (1.0 + e)};
}

// F(x) = ln(1 + e^{x/2})², F'(x) = ln(1 + e^{x/2})·sigmoid(x/2).
struct FEval {
  double value;
  double derivative;
};

FEval charge_fn(double x) {
  const Softplus sp = softplus(0.5 * x);
  return {sp.value * sp.value, sp.value * sp.derivative};
}

}  // namespace

MosfetParams MosfetParams::nmos_lp(double width_scale) {
  MosfetParams p;
  p.type = MosType::Nmos;
  p.vth = 0.46;
  p.kp = 3.0e-4 * width_scale;
  p.n_slope = 1.35;
  // Minimal-size 45 nm device capacitances (gate ≈ W·L·Cox ≈ 0.18 fF plus
  // overlap, junctions ≈ 0.08 fF), scaled with width.
  p.cgs = 90e-18 * width_scale;
  p.cgd = 90e-18 * width_scale;
  p.cdb = 40e-18 * width_scale;
  p.csb = 40e-18 * width_scale;
  return p;
}

MosfetParams MosfetParams::pmos_lp(double width_scale) {
  MosfetParams p = nmos_lp(width_scale);
  p.type = MosType::Pmos;
  p.vth = 0.49;
  p.kp = 1.4e-4 * width_scale;  // hole mobility penalty
  return p;
}

MosEval ekv_eval(const MosfetParams& p, double vth_eff, double v_g, double v_d,
                 double v_s) {
  // For PMOS, mirror all voltages and negate the current.
  const double sign = (p.type == MosType::Nmos) ? 1.0 : -1.0;
  const double vg = sign * v_g;
  const double vd = sign * v_d;
  const double vs = sign * v_s;

  const double nvt = p.n_slope * kThermalVoltage;
  const double i_spec = 2.0 * p.n_slope * kThermalVoltage * kThermalVoltage * p.kp;

  const FEval ff = charge_fn((vg - vs - vth_eff) / nvt);
  const FEval fr = charge_fn((vg - vd - vth_eff) / nvt);

  MosEval e;
  const double ids = i_spec * (ff.value - fr.value);
  const double a = i_spec * ff.derivative / nvt;  // ∂/∂(vg−vs)
  const double b = i_spec * fr.derivative / nvt;  // ∂/∂(vg−vd)
  // In mirrored coordinates: ∂ids/∂vg = a − b, ∂ids/∂vd = b, ∂ids/∂vs = −a.
  // Mapping back: ids_real = sign·ids(sign·v). ∂ids_real/∂v_real =
  // sign·∂ids/∂v_mirr·sign = ∂ids/∂v_mirr.
  e.ids = sign * ids;
  e.g_vg = a - b;
  e.g_vd = b;
  e.g_vs = -a;
  return e;
}

double ekv_switch_resistance(const MosfetParams& p, double vth_eff) {
  // Mid-swing chord resistance of the fully driven channel: NMOS with the
  // gate at the rail discharging a half-rail drain (PMOS mirrored). A
  // channel that cannot turn on at rail drive (FeFET HVT state) comes out
  // astronomically resistive, which is the right macro-model answer.
  const MosEval e =
      p.type == MosType::Nmos
          ? ekv_eval(p, vth_eff, kSummaryRail, 0.5 * kSummaryRail, 0.0)
          : ekv_eval(p, vth_eff, 0.0, 0.5 * kSummaryRail, kSummaryRail);
  const double i = std::abs(e.ids);
  return i > 0.0 ? 0.5 * kSummaryRail / i : 1.0 / std::numeric_limits<double>::min();
}

double ekv_off_leak(const MosfetParams& p, double vth_eff) {
  // Worst-case off-state chord leak across the full rail. The worst gate
  // level that still leaves the channel off is 0 for a normal threshold,
  // but full rail for a vth_eff above the rail (an HVT FeFET operates
  // "off" at full gate drive, and that is its matched-search leak).
  const double vg_off = vth_eff > kSummaryRail ? kSummaryRail : 0.0;
  const MosEval e =
      p.type == MosType::Nmos
          ? ekv_eval(p, vth_eff, vg_off, kSummaryRail, 0.0)
          : ekv_eval(p, vth_eff, kSummaryRail - vg_off, 0.0, kSummaryRail);
  return std::abs(e.ids) / kSummaryRail;
}

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s,
               MosfetParams params)
    : Device(std::move(name)), d_(d), g_(g), s_(s), params_(params),
      cgs_c_(params.cgs), cgd_c_(params.cgd), cdb_c_(params.cdb),
      csb_c_(params.csb) {
  NEMTCAM_EXPECT(params_.kp > 0.0);
  NEMTCAM_EXPECT(params_.n_slope >= 1.0);
}

void Mosfet::stamp(Stamper& s, const StampContext& ctx) {
  const double vg = ctx.v(g_);
  const double vd = ctx.v(d_);
  const double vs = ctx.v(s_);
  const MosEval e = ekv_eval(params_, params_.vth, vg, vd, vs);

  // Jacobian of the D→S current w.r.t. the three terminal voltages.
  s.vccs(d_, s_, g_, spice::kGround, e.g_vg);
  s.vccs(d_, s_, d_, spice::kGround, e.g_vd);
  s.vccs(d_, s_, s_, spice::kGround, e.g_vs);
  // Equivalent current so that J·v − f is stamped consistently.
  const double i_lin = e.g_vg * vg + e.g_vd * vd + e.g_vs * vs;
  s.current(d_, s_, e.ids - i_lin);

  cgs_c_.stamp(s, ctx, g_, s_);
  cgd_c_.stamp(s, ctx, g_, d_);
  cdb_c_.stamp(s, ctx, d_, spice::kGround);
  csb_c_.stamp(s, ctx, s_, spice::kGround);
}

void Mosfet::commit(const StampContext& ctx) {
  cgs_c_.commit(ctx, g_, s_);
  cgd_c_.commit(ctx, g_, d_);
  cdb_c_.commit(ctx, d_, spice::kGround);
  csb_c_.commit(ctx, s_, spice::kGround);
}

double Mosfet::event_function(const StampContext& ctx) const {
  if (!params_.event_on_vth || ctx.dc())
    return std::numeric_limits<double>::infinity();
  // Signed distance to the conduction edge: positive while the channel is
  // on, so the engine lands a step where the gate drive falls through V_th.
  const double sign = params_.type == MosType::Nmos ? 1.0 : -1.0;
  return sign * (ctx.v(g_) - ctx.v(s_)) - params_.vth;
}

double Mosfet::power(const StampContext& ctx) const {
  const MosEval e = ekv_eval(params_, params_.vth, ctx.v(g_), ctx.v(d_), ctx.v(s_));
  return e.ids * (ctx.v(d_) - ctx.v(s_));
}

double Mosfet::ids(const StampContext& ctx) const {
  return ekv_eval(params_, params_.vth, ctx.v(g_), ctx.v(d_), ctx.v(s_)).ids;
}


spice::DeviceTopology Mosfet::topology() const {
  // The channel conducts (at least subthreshold) at DC; the gate draws no
  // DC current — a node driving only gates has no DC path through them.
  spice::DeviceTopology t{{{"d", d_}, {"g", g_}, {"s", s_}},
                          {{0, 2, spice::DcCoupling::Conductive},
                           {1, 0, spice::DcCoupling::Capacitive},
                           {1, 2, spice::DcCoupling::Capacitive}}};
  auto& ch = t.couplings[0];
  if (params_.vth != sum_vth_) {
    sum_r_on_ = ekv_switch_resistance(params_, params_.vth);
    sum_g_off_ = ekv_off_leak(params_, params_.vth);
    sum_vth_ = params_.vth;
  }
  ch.r_on = sum_r_on_;
  ch.g_off = sum_g_off_;
  ch.ctrl = 1;
  ch.v_on = params_.vth;
  ch.active_low = params_.type == MosType::Pmos;
  ch.v_gs_ref = kSummaryRail;
  ch.v_slope = params_.n_slope * kThermalVoltage;
  t.couplings[1].c = params_.cgd;
  t.couplings[2].c = params_.cgs;
  t.terminals[0].c_ground = params_.cdb;
  t.terminals[2].c_ground = params_.csb;
  return t;
}

}  // namespace nemtcam::devices
