#include "devices/Diode.h"

#include <cmath>

namespace nemtcam::devices {

namespace {
constexpr double kThermalVoltage = 0.02585;
}

Diode::Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode), params_(params),
      cj_c_(params.c_junction) {
  NEMTCAM_EXPECT(params_.i_sat > 0.0);
  NEMTCAM_EXPECT(params_.n_ideality >= 1.0);
}

double Diode::current_at(double v) const {
  const double nvt = params_.n_ideality * kThermalVoltage;
  // Exponent guard: beyond ~40·nvt, linearize to avoid overflow (the
  // Newton damping keeps iterates from ever operating there anyway).
  const double x = v / nvt;
  if (x > 40.0)
    return params_.i_sat * (std::exp(40.0) * (1.0 + (x - 40.0)) - 1.0);
  return params_.i_sat * (std::exp(x) - 1.0);
}

void Diode::stamp(Stamper& s, const StampContext& ctx) {
  const double v = ctx.v(anode_) - ctx.v(cathode_);
  const double nvt = params_.n_ideality * kThermalVoltage;
  const double i = current_at(v);
  const double x = v / nvt;
  const double g = (x > 40.0)
                       ? params_.i_sat * std::exp(40.0) / nvt
                       : params_.i_sat * std::exp(x) / nvt;
  s.nonlinear_current(anode_, cathode_, i, g, v);
  cj_c_.stamp(s, ctx, anode_, cathode_);
}

void Diode::commit(const StampContext& ctx) {
  cj_c_.commit(ctx, anode_, cathode_);
}

double Diode::power(const StampContext& ctx) const {
  const double v = ctx.v(anode_) - ctx.v(cathode_);
  return v * current_at(v);
}


spice::DeviceTopology Diode::topology() const {
  // No r_on summary: the exponential junction has no useful single switch
  // resistance, so the STA engine keeps the edge for connectivity only.
  spice::DeviceTopology t{{{"anode", anode_}, {"cathode", cathode_}},
                          {{0, 1, spice::DcCoupling::Conductive}}};
  t.couplings[0].c = params_.c_junction;
  return t;
}

}  // namespace nemtcam::devices
