#include "devices/Sources.h"

namespace nemtcam::devices {

VSource::VSource(std::string name, NodeId plus, NodeId minus,
                 std::unique_ptr<Waveform> wave, double series_ohms)
    : Device(std::move(name)), plus_(plus), minus_(minus),
      wave_(std::move(wave)), series_ohms_(series_ohms) {
  NEMTCAM_EXPECT(wave_ != nullptr);
  NEMTCAM_EXPECT(series_ohms_ >= 0.0);
}

VSource::VSource(std::string name, NodeId plus, NodeId minus, double dc_volts,
                 double series_ohms)
    : VSource(std::move(name), plus, minus,
              std::make_unique<spice::DcWave>(dc_volts), series_ohms) {}

void VSource::stamp(Stamper& s, const StampContext& ctx) {
  s.voltage_source(plus_, minus_, first_branch(),
                   ctx.source_scale() * wave_->value(ctx.t()));
  if (series_ohms_ > 0.0)
    s.branch_series_resistance(first_branch(), series_ohms_);
}

double VSource::delivered_power(const StampContext& ctx) const {
  // Branch current flows into the + terminal; power delivered is −EMF · i.
  // Using the EMF (not the terminal voltage) counts the dissipation in the
  // driver's own series resistance as energy drawn from the supply —
  // matching how SPICE benchmarking measures write/search energy.
  const double i = ctx.branch_current(first_branch());
  return -wave_->value(ctx.t()) * i;
}

std::vector<double> VSource::breakpoints(double t_end) const {
  return wave_->breakpoints(t_end);
}

void VSource::set_wave(std::unique_ptr<Waveform> wave) {
  NEMTCAM_EXPECT(wave != nullptr);
  wave_ = std::move(wave);
}

ISource::ISource(std::string name, NodeId from, NodeId to,
                 std::unique_ptr<Waveform> wave)
    : Device(std::move(name)), from_(from), to_(to), wave_(std::move(wave)) {
  NEMTCAM_EXPECT(wave_ != nullptr);
}

ISource::ISource(std::string name, NodeId from, NodeId to, double dc_amps)
    : ISource(std::move(name), from, to,
              std::make_unique<spice::DcWave>(dc_amps)) {}

void ISource::stamp(Stamper& s, const StampContext& ctx) {
  s.current(from_, to_, ctx.source_scale() * wave_->value(ctx.t()));
}

double ISource::delivered_power(const StampContext& ctx) const {
  // The source carries current i from `from_` to `to_`; like any two-
  // terminal element it absorbs v_ab·i, so it delivers −v_ab·i.
  const double i = wave_->value(ctx.t());
  return (ctx.v(to_) - ctx.v(from_)) * i;
}

std::vector<double> ISource::breakpoints(double t_end) const {
  return wave_->breakpoints(t_end);
}


spice::DeviceTopology VSource::topology() const {
  spice::DeviceTopology t{{{"plus", plus_}, {"minus", minus_}},
                   {{0, 1, spice::DcCoupling::Conductive}},
                   /*is_source=*/true};
  // Pin model for the STA engine: drive level before the first edge and
  // after the last one. All shipped waveforms (DC, PWL, single PULSE)
  // clamp at the ends, so one sample at a horizon past every transaction
  // window reads the settled level.
  constexpr double kSettleHorizon = 1.0;  // s; far beyond any transaction
  t.source_is_voltage = true;
  t.source_v_init = wave_->value(0.0);
  t.source_v_final = wave_->value(kSettleHorizon);
  t.source_r_series = series_ohms_;
  return t;
}

spice::DeviceTopology ISource::topology() const {
  // An ideal current source is a DC open: it injects current but provides
  // no path, so its nodes still need a conductive route to ground.
  spice::DeviceTopology t{{{"from", from_}, {"to", to_}},
                   {{0, 1, spice::DcCoupling::Open}},
                   /*is_source=*/true};
  return t;
}

}  // namespace nemtcam::devices
