// Linear passive elements: resistor and capacitor.
#pragma once

#include "spice/Device.h"
#include "spice/Stamper.h"

namespace nemtcam::devices {

using spice::Device;
using spice::NodeId;
using spice::StampContext;
using spice::Stamper;

class Resistor final : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms);

  void stamp(Stamper& s, const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;
  double power(const StampContext& ctx) const override;

  double resistance() const noexcept { return ohms_; }
  void set_resistance(double ohms);

 private:
  NodeId a_, b_;
  double ohms_;
};

// Linear capacitor. Backward Euler uses the previous accepted voltage
// directly (i = C·(v − v_prev)/dt); trapezoidal additionally carries the
// previous step's current (i = 2C·(v − v_prev)/dt − i_prev) for
// second-order accuracy. Open in DC analysis.
class Capacitor final : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double farads);

  void stamp(Stamper& s, const StampContext& ctx) override;
  void commit(const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;

  double capacitance() const noexcept { return farads_; }
  // Stored energy at the iterate, E = C·v²/2 (for ledgers/tests).
  double stored_energy(const StampContext& ctx) const;

  void reset_state() override { i_prev_ = 0.0; }

 private:
  double current_at(const StampContext& ctx) const;

  NodeId a_, b_;
  double farads_;
  double i_prev_ = 0.0;  // used by the trapezoidal companion
};

// Embeddable companion for a fixed linear capacitance owned by a composite
// device (MOSFET/FeFET/diode parasitics): same Backward-Euler/trapezoidal
// scheme as Capacitor, carrying the previous step's current so the
// trapezoidal form stays second-order on internal nodes too. stamp() runs
// at every Newton iterate; commit() exactly once per accepted step (the
// engine guarantees rejected steps never reach commit, so i_prev stays
// consistent under LTE step rejection).
class CapCompanion {
 public:
  explicit CapCompanion(double farads = 0.0) : farads_(farads) {}

  void stamp(Stamper& s, const StampContext& ctx, NodeId a, NodeId b) const;
  void commit(const StampContext& ctx, NodeId a, NodeId b);

  double capacitance() const noexcept { return farads_; }

  // Drops the carried current history (owner's reset_state forwards here).
  void reset() { i_prev_ = 0.0; }

 private:
  double current_at(const StampContext& ctx, NodeId a, NodeId b) const;

  double farads_;
  double i_prev_ = 0.0;  // used by the trapezoidal companion
};

}  // namespace nemtcam::devices
