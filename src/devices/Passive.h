// Linear passive elements: resistor and capacitor.
#pragma once

#include "spice/Device.h"
#include "spice/Stamper.h"

namespace nemtcam::devices {

using spice::Device;
using spice::NodeId;
using spice::StampContext;
using spice::Stamper;

class Resistor final : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms);

  void stamp(Stamper& s, const StampContext& ctx) override;
  double power(const StampContext& ctx) const override;

  double resistance() const noexcept { return ohms_; }
  void set_resistance(double ohms);

 private:
  NodeId a_, b_;
  double ohms_;
};

// Linear capacitor. Backward Euler uses the previous accepted voltage
// directly (i = C·(v − v_prev)/dt); trapezoidal additionally carries the
// previous step's current (i = 2C·(v − v_prev)/dt − i_prev) for
// second-order accuracy. Open in DC analysis.
class Capacitor final : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double farads);

  void stamp(Stamper& s, const StampContext& ctx) override;
  void commit(const StampContext& ctx) override;

  double capacitance() const noexcept { return farads_; }
  // Stored energy at the iterate, E = C·v²/2 (for ledgers/tests).
  double stored_energy(const StampContext& ctx) const;

 private:
  double current_at(const StampContext& ctx) const;

  NodeId a_, b_;
  double farads_;
  double i_prev_ = 0.0;  // used by the trapezoidal companion
};

// Shared helper: stamps the BE companion of a fixed linear capacitance
// between two nodes (used by MOSFET/FeFET internal capacitances).
void stamp_linear_cap(Stamper& s, const StampContext& ctx, NodeId a, NodeId b,
                      double farads);

}  // namespace nemtcam::devices
