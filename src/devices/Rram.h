// Bipolar filamentary RRAM compact model (2T2R TCAM baseline).
//
// Parameters follow the paper's benchmarking settings (from refs [8][20]):
// R_ON/R_OFF = 20 kΩ/2 MΩ, set/reset drive 1.8 V/1.2 V, 10 ns write.
// The filament state w ∈ [0,1] interpolates conductance linearly; state
// motion is threshold-gated and rate-proportional to overdrive so that the
// nominal write drive completes a transition in t_write. The write is
// current-driven: while the device conducts at R_ON-scale resistance under
// 1.8 V for 10 ns, it burns the ~46 pJ/row the paper reports.
#pragma once

#include "spice/Device.h"
#include "spice/Stamper.h"

namespace nemtcam::devices {

using spice::Device;
using spice::NodeId;
using spice::StampContext;
using spice::Stamper;

struct RramParams {
  double r_on = 20e3;       // low-resistance state (Ω)
  double r_off = 2e6;       // high-resistance state (Ω)
  double v_set = 1.8;       // nominal set drive, positive polarity (V)
  double v_reset = 1.2;     // nominal reset drive, negative polarity (V)
  double vth_set = 0.9;     // no set motion below this forward bias (V)
  double vth_reset = 0.6;   // no reset motion below this reverse bias (V)
  double t_write = 10e-9;   // transition time at nominal drive (s)
  // Filament conductance grows superlinearly with the state variable
  // (G ∝ w^shape_exp): the conducting path carries little current until
  // it is nearly complete. Endpoints (R_ON at w=1, R_OFF at w=0) are
  // unaffected; only the mid-transition current profile (and hence write
  // energy) depends on this.
  double shape_exp = 3.0;
};

class Rram final : public Device {
 public:
  Rram(std::string name, NodeId top, NodeId bottom, RramParams params = {});

  void stamp(Stamper& s, const StampContext& ctx) override;
  void commit(const StampContext& ctx) override;
  spice::DeviceTopology topology() const override;
  double max_dt_hint() const override;
  double event_function(const StampContext& ctx) const override;
  double power(const StampContext& ctx) const override;

  // Filament state: 1 = fully formed (R_ON), 0 = ruptured (R_OFF).
  double state() const noexcept { return w_; }
  void set_state(double w);
  // Aging hook (see lifetime/Degradation): cycling fatigue narrows the
  // resistance window — the residual filament thickens R_OFF downward and
  // oxygen-vacancy depletion raises R_ON. Absolute setter, clamped so the
  // window never inverts (the ERC value.rram-window defect is a design
  // error, not a state wear may reach): r_on ≥ kROnMin and
  // r_off ≥ kMinWindowRatio·r_on.
  void set_resistance_window(double r_on, double r_off);
  static constexpr double kROnMin = 100.0;       // Ω
  static constexpr double kMinWindowRatio = 2.0; // R_OFF/R_ON floor
  // Simulation time at which the filament last crossed 90% formed (set
  // complete) / 10% formed (reset complete); negative if never.
  double t_set_complete() const noexcept { return t_set_; }
  double t_reset_complete() const noexcept { return t_reset_; }
  double resistance() const noexcept;
  bool low_resistance() const noexcept { return w_ > 0.5; }

  void reset_state() override {
    moving_ = false;
    t_set_ = -1.0;
    t_reset_ = -1.0;
  }

  const RramParams& params() const noexcept { return params_; }

 private:
  NodeId top_, bottom_;
  RramParams params_;
  double w_ = 0.0;
  bool moving_ = false;  // last committed step had the filament in motion
  double t_set_ = -1.0;
  double t_reset_ = -1.0;
};

}  // namespace nemtcam::devices
