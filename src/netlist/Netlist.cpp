#include "netlist/Netlist.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <sstream>

#include "devices/Controlled.h"
#include "devices/Diode.h"
#include "devices/Fefet.h"
#include "devices/Inductor.h"
#include "devices/Mosfet.h"
#include "devices/NemRelay.h"
#include "devices/Passive.h"
#include "devices/Rram.h"
#include "devices/Sources.h"
#include "devices/Switch.h"
#include "hier/Elaborate.h"
#include "spice/Waveform.h"

namespace nemtcam::spice {

namespace {

using namespace nemtcam::devices;

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw NetlistError("netlist line " + std::to_string(line) + ": " + msg);
}

// Splits a line into tokens; treats '(', ')' and ',' as separators so both
// "PULSE(0 1 1n ...)" and "PULSE(0,1,1n,...)" tokenize uniformly. The
// function-name token (pulse/pwl/sin) is kept.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == '(' ||
        ch == ')' || ch == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// Parses "key=value" into {key, value}; returns false for plain tokens.
bool split_kv(const std::string& tok, std::string& key, std::string& value) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos) return false;
  key = lower(tok.substr(0, eq));
  value = tok.substr(eq + 1);
  return true;
}

struct Parser {
  int line_no = 0;

  double num(const std::string& tok) {
    try {
      return parse_spice_number(tok);
    } catch (const NetlistError& e) {
      // Make sure the offending token reaches the message even when the
      // underlying error (empty number, bad suffix) didn't quote it.
      std::string msg = e.what();
      if (msg.find("'" + tok + "'") == std::string::npos)
        msg += " (offending token '" + tok + "')";
      fail(line_no, msg);
    }
  }

  // Builds a waveform from tokens[i..]; handles DC, PULSE, PWL, SIN.
  std::unique_ptr<Waveform> waveform(const std::vector<std::string>& t,
                                     std::size_t i) {
    if (i >= t.size()) fail(line_no, "missing source value");
    const std::string head = lower(t[i]);
    if (head == "pulse") {
      if (t.size() - i - 1 < 6) fail(line_no, "PULSE needs 6-7 arguments");
      const double v1 = num(t[i + 1]);
      const double v2 = num(t[i + 2]);
      const double td = num(t[i + 3]);
      const double tr = num(t[i + 4]);
      const double tf = num(t[i + 5]);
      const double pw = num(t[i + 6]);
      const double per = (t.size() - i - 1 >= 7) ? num(t[i + 7]) : 0.0;
      return std::make_unique<PulseWave>(v1, v2, td, tr, tf, pw, per);
    }
    if (head == "pwl") {
      std::vector<std::pair<double, double>> pts;
      for (std::size_t k = i + 1; k + 1 < t.size(); k += 2)
        pts.emplace_back(num(t[k]), num(t[k + 1]));
      if (pts.empty()) fail(line_no, "PWL needs time/value pairs");
      return std::make_unique<PwlWave>(std::move(pts));
    }
    if (head == "sin") {
      if (t.size() - i - 1 < 3) fail(line_no, "SIN needs 3-4 arguments");
      const double off = num(t[i + 1]);
      const double ampl = num(t[i + 2]);
      const double freq = num(t[i + 3]);
      const double delay = (t.size() - i - 1 >= 4) ? num(t[i + 4]) : 0.0;
      return std::make_unique<SinWave>(off, ampl, freq, delay);
    }
    if (head == "dc") {
      if (i + 1 >= t.size()) fail(line_no, "DC needs a value");
      return std::make_unique<DcWave>(num(t[i + 1]));
    }
    return std::make_unique<DcWave>(num(t[i]));
  }
};

// Current-controlled sources need their controlling V element; top-level
// cards are collected and resolved after the first pass.
struct Deferred {
  int line_no;
  std::vector<std::string> tokens;
};

// Adds one element card to `circuit`. `resolve` maps a raw node token to a
// NodeId (the caller decides the namespace: global for top-level cards,
// instance-scoped during subckt elaboration); `prefix` scopes the device
// name ("x1." inside instance x1). F/H cards are deferred via `deferred`
// when non-null and rejected otherwise — a subckt body cannot name a
// controlling element across scopes. Returns the constructed device
// (nullptr for a deferred card).
Device* add_element_card(
    Parser& p, Circuit& circuit, const std::vector<std::string>& tokens,
    const std::string& prefix,
    const std::function<NodeId(const std::string&)>& resolve,
    std::vector<Deferred>* deferred) {
  const std::string head = lower(tokens[0]);
  const char kind = head[0];
  const std::string name = prefix + tokens[0];
  auto node = [&](const std::string& tok) { return resolve(tok); };
  auto need = [&](std::size_t n) {
    if (tokens.size() < n) fail(p.line_no, "too few fields for " + tokens[0]);
  };

  switch (kind) {
    case 'r': {
      need(4);
      return &circuit.add<Resistor>(name, node(tokens[1]), node(tokens[2]),
                                    p.num(tokens[3]));
    }
    case 'c': {
      need(4);
      return &circuit.add<Capacitor>(name, node(tokens[1]), node(tokens[2]),
                                     p.num(tokens[3]));
    }
    case 'l': {
      need(4);
      return &circuit.add<Inductor>(name, node(tokens[1]), node(tokens[2]),
                                    p.num(tokens[3]));
    }
    case 'd': {
      need(3);
      DiodeParams dp;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_kv(tokens[i], key, value)) continue;
        if (key == "is") dp.i_sat = p.num(value);
        else if (key == "n") dp.n_ideality = p.num(value);
        else fail(p.line_no, "unknown diode parameter '" + key + "'");
      }
      return &circuit.add<Diode>(name, node(tokens[1]), node(tokens[2]), dp);
    }
    case 'v': {
      need(4);
      return &circuit.add<VSource>(name, node(tokens[1]), node(tokens[2]),
                                   p.waveform(tokens, 3));
    }
    case 'i': {
      need(4);
      return &circuit.add<ISource>(name, node(tokens[1]), node(tokens[2]),
                                   p.waveform(tokens, 3));
    }
    case 'm': {
      need(5);
      const std::string type = lower(tokens[4]);
      double w = 1.0;
      double vth = -1.0;
      for (std::size_t i = 5; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_kv(tokens[i], key, value)) continue;
        if (key == "w") w = p.num(value);
        else if (key == "vth") vth = p.num(value);
        else fail(p.line_no, "unknown MOSFET parameter '" + key + "'");
      }
      MosfetParams mp = type == "pmos" ? MosfetParams::pmos_lp(w)
                                       : MosfetParams::nmos_lp(w);
      if (type != "nmos" && type != "pmos")
        fail(p.line_no, "MOSFET type must be NMOS or PMOS");
      if (vth > 0.0) mp.vth = vth;
      return &circuit.add<Mosfet>(name, node(tokens[1]), node(tokens[2]),
                                  node(tokens[3]), mp);
    }
    case 'e': {
      need(6);
      return &circuit.add<Vcvs>(name, node(tokens[1]), node(tokens[2]),
                                node(tokens[3]), node(tokens[4]),
                                p.num(tokens[5]));
    }
    case 'g': {
      need(6);
      return &circuit.add<Vccs>(name, node(tokens[1]), node(tokens[2]),
                                node(tokens[3]), node(tokens[4]),
                                p.num(tokens[5]));
    }
    case 'f':
    case 'h': {
      need(5);
      if (deferred == nullptr)
        fail(p.line_no,
             "current-controlled source '" + tokens[0] +
                 "' is not supported inside a .subckt body (the controlling "
                 "element lives in another scope)");
      deferred->push_back({p.line_no, tokens});
      return nullptr;
    }
    case 's': {
      need(3);
      double ron = 1.0, roff = 1e12;
      bool closed = false;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        std::string key, value;
        if (split_kv(tokens[i], key, value)) {
          if (key == "ron") ron = p.num(value);
          else if (key == "roff") roff = p.num(value);
          else fail(p.line_no, "unknown switch parameter '" + key + "'");
        } else if (lower(tokens[i]) == "on") {
          closed = true;
        } else if (lower(tokens[i]) == "off") {
          closed = false;
        }
      }
      return &circuit.add<Switch>(name, node(tokens[1]), node(tokens[2]), ron,
                                  roff, closed);
    }
    case 'n': {
      need(5);
      NemRelayParams np;
      bool closed = false;
      for (std::size_t i = 5; i < tokens.size(); ++i) {
        std::string key, value;
        if (split_kv(tokens[i], key, value)) {
          if (key == "vpi") np.v_pi = p.num(value);
          else if (key == "vpo") np.v_po = p.num(value);
          else if (key == "ron") np.r_on = p.num(value);
          else if (key == "con") np.c_on = p.num(value);
          else if (key == "coff") np.c_off = p.num(value);
          else if (key == "taumech") np.tau_mech = p.num(value);
          else fail(p.line_no, "unknown relay parameter '" + key + "'");
        } else if (lower(tokens[i]) == "closed") {
          closed = true;
        }
      }
      auto& relay = circuit.add<NemRelay>(name, node(tokens[1]),
                                          node(tokens[2]), node(tokens[3]),
                                          node(tokens[4]), np);
      if (closed) relay.set_state(true);
      return &relay;
    }
    case 'z': {
      need(3);
      double state = 0.0;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        std::string key, value;
        if (split_kv(tokens[i], key, value) && key == "state")
          state = p.num(value);
      }
      auto& rram = circuit.add<Rram>(name, node(tokens[1]), node(tokens[2]));
      rram.set_state(state);
      return &rram;
    }
    case 'q': {
      need(4);
      FefetParams fp;
      auto& fefet = circuit.add<Fefet>(name, node(tokens[1]), node(tokens[2]),
                                       node(tokens[3]), fp);
      for (std::size_t i = 4; i < tokens.size(); ++i) {
        const std::string flag = lower(tokens[i]);
        if (flag == "low") fefet.set_low_vth(true);
        else if (flag == "high") fefet.set_low_vth(false);
      }
      return &fefet;
    }
    default:
      fail(p.line_no, "unknown element '" + tokens[0] + "'");
  }
}

// Parses "Xname n1 n2 ... subname [k=v ...]" into an Instance. Parameter
// override values are evaluated against `env` (so "{p}" from an enclosing
// .param works at top level).
hier::Instance parse_x_card(Parser& p, const std::vector<std::string>& tokens,
                            const hier::ParamEnv& env) {
  hier::Instance inst;
  inst.name = lower(tokens[0]);
  std::size_t end = tokens.size();
  while (end > 1 && tokens[end - 1].find('=') != std::string::npos) --end;
  if (end < 3)
    fail(p.line_no, "X card needs at least a subckt name: X<name> "
                    "[nodes...] <subckt> [param=value...]");
  inst.subckt = lower(tokens[end - 1]);
  for (std::size_t i = 1; i + 1 < end; ++i)
    inst.bindings.push_back(lower(tokens[i]));
  for (std::size_t i = end; i < tokens.size(); ++i) {
    std::string key, value;
    if (!split_kv(tokens[i], key, value))
      fail(p.line_no, "bad X parameter '" + tokens[i] + "'");
    try {
      inst.param_overrides[key] =
          p.num(hier::substitute_params(value, env));
    } catch (const hier::ElaborateError& e) {
      fail(p.line_no, e.what());
    }
  }
  return inst;
}

}  // namespace

double parse_spice_number(const std::string& token) {
  if (token.empty()) throw NetlistError("empty number");
  const std::string t = lower(token);
  std::size_t pos = 0;
  double base = 0.0;
  try {
    base = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw NetlistError("invalid number '" + token + "'");
  }
  const std::string suffix = t.substr(pos);
  if (suffix.empty()) return base;
  static const std::map<std::string, double> kScale = {
      {"t", 1e12}, {"g", 1e9},   {"meg", 1e6}, {"k", 1e3},  {"m", 1e-3},
      {"u", 1e-6}, {"n", 1e-9},  {"p", 1e-12}, {"f", 1e-15}, {"a", 1e-18},
  };
  // SPICE rules: the scale suffix is case-insensitive ("1M" ≡ "1m" ≡
  // milli; only "meg"/"MEG" is 1e6). Trailing *unit letters* after a
  // recognized suffix are tolerated ("2.2nF", "1kOhm"); anything
  // containing further digits ("1k5", "1.5meg2") is rejected instead of
  // silently dropping the tail.
  for (const auto& [sfx, scale] : kScale) {
    if (suffix.rfind(sfx, 0) == 0) {
      // "m" must not shadow "meg".
      if (sfx == "m" && suffix.rfind("meg", 0) == 0) continue;
      const std::string rest = suffix.substr(sfx.size());
      if (!std::all_of(rest.begin(), rest.end(), [](unsigned char c) {
            return std::isalpha(c);
          }))
        throw NetlistError("invalid number '" + token +
                           "': garbage after scale suffix '" + sfx + "'");
      return base * scale;
    }
  }
  // Pure unit letters (V, s, ohm) — anything alphabetic left is a unit.
  if (std::all_of(suffix.begin(), suffix.end(), [](unsigned char c) {
        return std::isalpha(c);
      }))
    return base;
  throw NetlistError("invalid number '" + token + "'");
}

ParsedNetlist parse_netlist(const std::string& text) {
  ParsedNetlist out;
  out.circuit = std::make_unique<Circuit>();
  Parser p{};

  std::istringstream is(text);
  std::string raw;
  bool first = true;
  bool ended = false;
  std::vector<Deferred> deferred;
  std::map<std::string, Device*> by_name;

  hier::Library library;
  hier::ParamEnv global_params;
  // Top-level X instances are elaborated after the whole deck is read so a
  // .subckt may appear after its first use.
  struct PendingInstance {
    int line_no;
    hier::Instance inst;
  };
  std::vector<PendingInstance> instances;
  // .print names validated after elaboration (hierarchical nodes only
  // exist once their instance is flattened).
  struct PrintRef {
    int line_no;
    std::string name;
  };
  std::vector<PrintRef> print_refs;

  // In-progress .subckt collection (no nesting).
  hier::SubcktDef* open_subckt = nullptr;
  int open_subckt_line = 0;

  const auto resolve_global = [&](const std::string& tok) {
    return out.circuit->node(lower(tok));
  };

  while (std::getline(is, raw)) {
    ++p.line_no;
    if (first) {
      out.title = raw;
      first = false;
      continue;
    }
    if (ended) continue;
    // Strip comments: '*' at start, ';' anywhere.
    std::string line = raw;
    if (const auto sc = line.find(';'); sc != std::string::npos)
      line.resize(sc);
    if (!line.empty() && line[0] == '*') continue;
    auto tokens = tokenize(line);
    if (tokens.empty()) continue;

    const std::string head = lower(tokens[0]);

    // Inside a .subckt body: collect cards verbatim ({param} substitution
    // happens per instance at elaboration time).
    if (open_subckt != nullptr && head != ".ends") {
      if (head == ".end")
        fail(open_subckt_line,
             ".subckt '" + open_subckt->name + "' is never closed by .ends");
      if (head[0] == '.')
        fail(p.line_no, "directive '" + tokens[0] +
                            "' is not allowed inside .subckt '" +
                            open_subckt->name + "'");
      if (head[0] == 'x') {
        open_subckt->sub(parse_x_card(p, tokens, open_subckt->params));
      } else {
        open_subckt->text(tokens, p.line_no);
      }
      continue;
    }

    // Top level: apply .param substitution before interpreting the card.
    if (!global_params.empty()) {
      try {
        for (auto& t : tokens) t = hier::substitute_params(t, global_params);
      } catch (const hier::ElaborateError& e) {
        fail(p.line_no, e.what());
      }
    }

    if (head[0] == '.') {
      if (head == ".end") {
        ended = true;
      } else if (head == ".op") {
        out.analysis.kind = ParsedAnalysis::Kind::Op;
      } else if (head == ".tran") {
        if (tokens.size() < 3) fail(p.line_no, ".tran <dt_max> <t_end>");
        out.analysis.kind = ParsedAnalysis::Kind::Tran;
        out.analysis.tran_dt_max = p.num(tokens[1]);
        out.analysis.tran_t_end = p.num(tokens[2]);
      } else if (head == ".ic") {
        // .ic v(node)=value …; tokenize() split the parens, so the pattern
        // arrives as: "v" <node> "=value".
        std::size_t i = 1;
        while (i < tokens.size()) {
          if (i + 2 >= tokens.size() || lower(tokens[i]) != "v" ||
              tokens[i + 2].empty() || tokens[i + 2][0] != '=')
            fail(p.line_no, ".ic expects v(node)=value");
          out.circuit->set_ic(out.circuit->node(lower(tokens[i + 1])),
                              p.num(tokens[i + 2].substr(1)));
          i += 3;
        }
      } else if (head == ".print") {
        // .print v(node) [v(node)…] → tokens "v" <node> repeated.
        for (std::size_t i = 1; i < tokens.size();) {
          if (lower(tokens[i]) == "v" && i + 1 < tokens.size()) {
            print_refs.push_back({p.line_no, lower(tokens[i + 1])});
            i += 2;
          } else {
            print_refs.push_back({p.line_no, lower(tokens[i])});
            ++i;
          }
        }
      } else if (head == ".param") {
        // .param name=value [name=value …]; later .params may reference
        // earlier ones by {name}.
        if (tokens.size() < 2) fail(p.line_no, ".param name=value");
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          std::string key, value;
          if (!split_kv(tokens[i], key, value))
            fail(p.line_no, ".param expects name=value, got '" + tokens[i] +
                                "'");
          global_params[key] = p.num(value);
        }
      } else if (head == ".subckt") {
        if (tokens.size() < 2) fail(p.line_no, ".subckt <name> [ports...]");
        hier::SubcktDef def;
        def.name = lower(tokens[1]);
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          std::string key, value;
          if (split_kv(tokens[i], key, value)) {
            def.params[key] = p.num(value);  // parameter default
          } else {
            def.ports.push_back(lower(tokens[i]));
          }
        }
        if (!library.add(std::move(def)))
          fail(p.line_no, "subckt '" + lower(tokens[1]) + "' redefined");
        // Library::add moved the def; reopen it for card collection.
        open_subckt =
            const_cast<hier::SubcktDef*>(library.find(lower(tokens[1])));
        open_subckt_line = p.line_no;
      } else if (head == ".ends") {
        if (open_subckt == nullptr)
          fail(p.line_no, ".ends without an open .subckt");
        open_subckt = nullptr;
      } else {
        fail(p.line_no, "unsupported directive '" + tokens[0] + "'");
      }
      continue;
    }

    if (head[0] == 'x') {
      instances.push_back({p.line_no, parse_x_card(p, tokens, global_params)});
      continue;
    }

    Device* dev =
        add_element_card(p, *out.circuit, tokens, "", resolve_global,
                         &deferred);
    if (dev != nullptr) {
      by_name[lower(tokens[0])] = dev;
      out.device_lines[dev->name()] = p.line_no;
    }
  }

  if (open_subckt != nullptr)
    fail(open_subckt_line,
         ".subckt '" + open_subckt->name + "' is never closed by .ends");

  // Resolve current-controlled sources now that all V elements exist.
  for (const auto& d : deferred) {
    p.line_no = d.line_no;
    const auto& t = d.tokens;
    const auto it = by_name.find(lower(t[3]));
    if (it == by_name.end() || it->second->branch_count() == 0)
      fail(d.line_no, "controlling element '" + t[3] + "' not found or has no branch");
    if (lower(t[0])[0] == 'f') {
      out.circuit->add<Cccs>(t[0], out.circuit->node(lower(t[1])),
                             out.circuit->node(lower(t[2])), *it->second,
                             p.num(t[4]));
    } else {
      out.circuit->add<Ccvs>(t[0], out.circuit->node(lower(t[1])),
                             out.circuit->node(lower(t[2])), *it->second,
                             p.num(t[4]));
    }
    out.device_lines[t[0]] = d.line_no;
  }

  // Flatten the X instances. The emitter routes every text card back
  // through the shared element grammar with instance-scoped names.
  if (!instances.empty()) {
    hier::ElaborateOptions eopts;
    eopts.text_emitter = [&out](Circuit& ckt, const hier::TextCardRequest& req,
                                const hier::NodeResolver& resolve) -> Device* {
      Parser sub_p{};
      sub_p.line_no = req.line_no;
      const std::string prefix =
          req.scope.empty() ? std::string() : req.scope + ".";
      Device* dev = add_element_card(
          sub_p, ckt, req.tokens, prefix,
          [&](const std::string& tok) { return resolve(lower(tok)); },
          /*deferred=*/nullptr);
      if (dev != nullptr) out.device_lines[dev->name()] = req.line_no;
      return dev;
    };
    for (const auto& pending : instances) {
      try {
        hier::elaborate(*out.circuit, library, pending.inst, global_params,
                        "", eopts);
      } catch (const hier::ElaborateError& e) {
        fail(pending.line_no, e.what());
      } catch (const NetlistError&) {
        throw;  // already line-attributed by the text emitter
      }
    }
  }

  // .print names must exist somewhere in the elaborated deck — a silent
  // no-op trace helps nobody debug a typo.
  for (const auto& ref : print_refs) {
    if (!out.circuit->has_node(ref.name))
      fail(ref.line_no,
           ".print v(" + ref.name + "): node never appears in the deck");
    out.print_nodes.push_back(ref.name);
  }

  return out;
}

}  // namespace nemtcam::spice
